//===- tessla/ADT/RefCntPtr.h - Intrusive refcounting ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrusive, non-atomic reference counting for the persistent data
/// structures. Generated monitors are single-threaded (as in the paper's
/// Scala backend running one monitor per trace), so a plain counter avoids
/// the atomic-RMW cost std::shared_ptr would pay on every structural share.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ADT_REFCNTPTR_H
#define TESSLA_ADT_REFCNTPTR_H

#include <cassert>
#include <cstdint>
#include <utility>

namespace tessla {

/// CRTP base providing the intrusive reference count. Derive as
/// `class Node : public RefCountedBase<Node>`.
template <typename Derived> class RefCountedBase {
public:
  RefCountedBase() = default;
  // Copies start with a fresh count.
  RefCountedBase(const RefCountedBase &) {}
  RefCountedBase &operator=(const RefCountedBase &) { return *this; }

  void retain() const { ++RefCount; }
  void release() const {
    assert(RefCount > 0 && "over-release");
    if (--RefCount == 0)
      delete static_cast<const Derived *>(this);
  }
  uint32_t useCount() const { return RefCount; }

protected:
  ~RefCountedBase() = default;

private:
  mutable uint32_t RefCount = 0;
};

/// Smart pointer for RefCountedBase-derived objects.
template <typename T> class RefCntPtr {
public:
  RefCntPtr() = default;
  RefCntPtr(std::nullptr_t) {}
  explicit RefCntPtr(T *P) : Ptr(P) {
    if (Ptr)
      Ptr->retain();
  }
  RefCntPtr(const RefCntPtr &Other) : Ptr(Other.Ptr) {
    if (Ptr)
      Ptr->retain();
  }
  RefCntPtr(RefCntPtr &&Other) noexcept : Ptr(Other.Ptr) {
    Other.Ptr = nullptr;
  }
  ~RefCntPtr() {
    if (Ptr)
      Ptr->release();
  }

  RefCntPtr &operator=(RefCntPtr Other) noexcept {
    std::swap(Ptr, Other.Ptr);
    return *this;
  }

  T *get() const { return Ptr; }
  T &operator*() const {
    assert(Ptr && "dereferencing null RefCntPtr");
    return *Ptr;
  }
  T *operator->() const {
    assert(Ptr && "dereferencing null RefCntPtr");
    return Ptr;
  }
  explicit operator bool() const { return Ptr != nullptr; }

  /// True if this is the only reference — enables transient in-place reuse
  /// optimizations inside persistent structures.
  bool unique() const { return Ptr && Ptr->useCount() == 1; }

  void reset() {
    if (Ptr)
      Ptr->release();
    Ptr = nullptr;
  }

  friend bool operator==(const RefCntPtr &A, const RefCntPtr &B) {
    return A.Ptr == B.Ptr;
  }
  friend bool operator==(const RefCntPtr &A, std::nullptr_t) {
    return A.Ptr == nullptr;
  }

private:
  T *Ptr = nullptr;
};

/// Allocates a T and wraps it; analogous to std::make_shared.
template <typename T, typename... Args> RefCntPtr<T> makeRefCnt(Args &&...As) {
  return RefCntPtr<T>(new T(std::forward<Args>(As)...));
}

} // namespace tessla

#endif // TESSLA_ADT_REFCNTPTR_H
