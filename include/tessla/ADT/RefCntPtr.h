//===- tessla/ADT/RefCntPtr.h - Intrusive refcounting ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrusive reference counting for the persistent data structures. The
/// counter is atomic: since session fork (MonitorFleet::forkSession) shares
/// HAMT/queue nodes between lanes that live on different shard threads,
/// retain/release race across threads even though each individual monitor
/// only mutates its own handles. Relaxed increments and acq-rel decrements
/// keep the common (uncontended) case cheap; unique() uses an acquire load
/// so a thread that observes count==1 also observes every write the last
/// releasing thread made to the node.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ADT_REFCNTPTR_H
#define TESSLA_ADT_REFCNTPTR_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

namespace tessla {

/// CRTP base providing the intrusive reference count. Derive as
/// `class Node : public RefCountedBase<Node>`.
template <typename Derived> class RefCountedBase {
public:
  RefCountedBase() = default;
  // Copies start with a fresh count.
  RefCountedBase(const RefCountedBase &) {}
  RefCountedBase &operator=(const RefCountedBase &) { return *this; }

  void retain() const { RefCount.fetch_add(1, std::memory_order_relaxed); }
  void release() const {
    assert(RefCount.load(std::memory_order_relaxed) > 0 && "over-release");
    if (RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete static_cast<const Derived *>(this);
  }
  uint32_t useCount() const {
    return RefCount.load(std::memory_order_acquire);
  }

protected:
  ~RefCountedBase() = default;

private:
  mutable std::atomic<uint32_t> RefCount{0};
};

/// Smart pointer for RefCountedBase-derived objects.
template <typename T> class RefCntPtr {
public:
  RefCntPtr() = default;
  RefCntPtr(std::nullptr_t) {}
  explicit RefCntPtr(T *P) : Ptr(P) {
    if (Ptr)
      Ptr->retain();
  }
  RefCntPtr(const RefCntPtr &Other) : Ptr(Other.Ptr) {
    if (Ptr)
      Ptr->retain();
  }
  RefCntPtr(RefCntPtr &&Other) noexcept : Ptr(Other.Ptr) {
    Other.Ptr = nullptr;
  }
  ~RefCntPtr() {
    if (Ptr)
      Ptr->release();
  }

  RefCntPtr &operator=(RefCntPtr Other) noexcept {
    std::swap(Ptr, Other.Ptr);
    return *this;
  }

  T *get() const { return Ptr; }
  T &operator*() const {
    assert(Ptr && "dereferencing null RefCntPtr");
    return *Ptr;
  }
  T *operator->() const {
    assert(Ptr && "dereferencing null RefCntPtr");
    return Ptr;
  }
  explicit operator bool() const { return Ptr != nullptr; }

  /// True if this is the only reference — enables transient in-place reuse
  /// optimizations inside persistent structures.
  bool unique() const { return Ptr && Ptr->useCount() == 1; }

  void reset() {
    if (Ptr)
      Ptr->release();
    Ptr = nullptr;
  }

  friend bool operator==(const RefCntPtr &A, const RefCntPtr &B) {
    return A.Ptr == B.Ptr;
  }
  friend bool operator==(const RefCntPtr &A, std::nullptr_t) {
    return A.Ptr == nullptr;
  }

private:
  T *Ptr = nullptr;
};

/// Allocates a T and wraps it; analogous to std::make_shared.
template <typename T, typename... Args> RefCntPtr<T> makeRefCnt(Args &&...As) {
  return RefCntPtr<T>(new T(std::forward<Args>(As)...));
}

} // namespace tessla

#endif // TESSLA_ADT_REFCNTPTR_H
