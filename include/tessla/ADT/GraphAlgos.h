//===- tessla/ADT/GraphAlgos.h - Graph algorithms --------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic graph algorithms over dense adjacency lists
/// (node ids 0..N-1). Used for translation-order computation (topological
/// sorting, §III), cycle detection in the read-before-write constraint graph
/// (§IV-E step 4) and reachability during the aliasing analysis.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ADT_GRAPHALGOS_H
#define TESSLA_ADT_GRAPHALGOS_H

#include <cstdint>
#include <vector>

namespace tessla {

/// Adjacency-list graph: Adj[u] lists successors of u. Parallel edges are
/// allowed and harmless for all algorithms here.
using Adjacency = std::vector<std::vector<uint32_t>>;

/// Computes a topological order of the graph into \p Order.
///
/// Deterministic: among ready nodes the smallest index is emitted first
/// (Kahn's algorithm with a min-heap).
///
/// \returns true on success; false if the graph has a cycle (in which case
/// \p Order contains the emitted prefix).
bool topologicalSort(const Adjacency &Adj, std::vector<uint32_t> &Order);

/// Finds some cycle in the graph.
///
/// \returns the cycle as a node sequence v0 -> v1 -> ... -> vk -> v0
/// (without repeating v0 at the end), or an empty vector if the graph is
/// acyclic. Deterministic (DFS from the smallest node id, exploring
/// successors in list order).
std::vector<uint32_t> findCycle(const Adjacency &Adj);

/// Tarjan's strongly connected components, iterative.
///
/// \returns components in reverse topological order (a component is listed
/// before any component it has edges into... specifically Tarjan emission
/// order), each component's members sorted ascending.
std::vector<std::vector<uint32_t>>
stronglyConnectedComponents(const Adjacency &Adj);

/// Marks all nodes reachable from \p Start (including \p Start).
std::vector<bool> reachableFrom(const Adjacency &Adj, uint32_t Start);

/// Builds the reverse graph.
Adjacency reverseGraph(const Adjacency &Adj);

} // namespace tessla

#endif // TESSLA_ADT_GRAPHALGOS_H
