//===- tessla/ADT/UnionFind.h - Disjoint-set forest ------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-Find (disjoint-set forest) over dense unsigned indices, with path
/// compression and union by size. Step 1 of the paper's combined algorithm
/// (Fig. 8) uses it to maintain "variable families" — sets of stream
/// variables that must be all-mutable or all-persistent (consistent
/// mutability, Def. 7 rule 3).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ADT_UNIONFIND_H
#define TESSLA_ADT_UNIONFIND_H

#include <cstdint>
#include <vector>

namespace tessla {

/// Disjoint-set forest over indices 0..size()-1.
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(uint32_t NumElements) { grow(NumElements); }

  /// Extends the universe to at least \p NumElements singleton sets.
  void grow(uint32_t NumElements);

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Returns the canonical representative of \p X's set.
  uint32_t find(uint32_t X) const;

  /// Merges the sets of \p A and \p B; returns the new representative.
  uint32_t unite(uint32_t A, uint32_t B);

  /// Returns true if \p A and \p B are in the same set.
  bool connected(uint32_t A, uint32_t B) const { return find(A) == find(B); }

  /// Number of elements in \p X's set.
  uint32_t setSize(uint32_t X) const { return Size[find(X)]; }

  /// Number of distinct sets.
  uint32_t numSets() const { return NumSets; }

  /// Groups all elements by representative. The outer vector is indexed by
  /// an arbitrary but deterministic order (ascending representative); inner
  /// vectors list members in ascending order.
  std::vector<std::vector<uint32_t>> groups() const;

private:
  // Parent is mutable so find() can path-compress while staying logically
  // const.
  mutable std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
  uint32_t NumSets = 0;
};

} // namespace tessla

#endif // TESSLA_ADT_UNIONFIND_H
