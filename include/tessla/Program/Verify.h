//===- tessla/Program/Verify.h - Program IR verifier -----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program IR verifier. Checks every invariant both execution
/// backends rely on; used by the optimization pass manager after every
/// rewrite and by the bundle loader (Program/Serialize.h) as the final
/// gate on untrusted input. Lives with the IR (library tessla_program),
/// not with the passes, so frontend-free deployments can verify what
/// they load.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PROGRAM_VERIFY_H
#define TESSLA_PROGRAM_VERIFY_H

#include "tessla/Program/Program.h"
#include "tessla/Support/Diagnostics.h"

namespace tessla {
namespace opt {

/// Checks the Program IR invariants both backends rely on: slot indices
/// in range, dense unique destination slots, Args/ArgSlot agreement,
/// dispatch pointers resolved for the opcodes that call through them,
/// and last/delay tables consistent with their referencing steps.
/// Reports every violation through \p Diags; returns true if clean.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace opt
} // namespace tessla

#endif // TESSLA_PROGRAM_VERIFY_H
