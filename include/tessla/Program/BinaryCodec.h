//===- tessla/Program/BinaryCodec.h - Shared binary encoding ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little-endian binary encoding primitives shared by every
/// serialized artifact in the system: the `.tpb` program bundle
/// (Program/Serialize.h), the `.tcp` fleet checkpoint
/// (Runtime/Checkpoint.h) and the service wire format (Runtime/Wire.h).
/// One writer, one bounds-checked reader, one canonical Value encoding —
/// so a Value round-trips identically whether it travels inside a
/// program constant pool, a checkpointed monitor slot or an ingestion
/// frame, and every decoder inherits the same untrusting discipline:
/// reads never run past the buffer, aggregate counts are capped by the
/// remaining payload, nesting is bounded, and the first error wins.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PROGRAM_BINARYCODEC_H
#define TESSLA_PROGRAM_BINARYCODEC_H

#include "tessla/Runtime/Value.h"
#include "tessla/Support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tessla {
namespace bc {

/// Section/frame tags, packed as little-endian u32 four-character codes.
constexpr uint32_t fourCC(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

/// Renders a tag for diagnostics ("SPEC", "LANE", ...); non-printable
/// bytes become '?'.
std::string fourCCName(uint32_t T);

/// Nesting bound for recursive encodings (aggregate values inside
/// aggregate values, type parameters inside type parameters). Real
/// programs are nowhere near it; crafted inputs must not be able to
/// exhaust the stack.
constexpr unsigned MaxNesting = 32;

// --- Writer ---------------------------------------------------------------

/// Append-only little-endian byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) {
    for (unsigned I = 0; I != 2; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double D) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(D));
    __builtin_memcpy(&Bits, &D, sizeof(Bits));
    u64(Bits);
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void bytes(const ByteWriter &W) {
    Buf.insert(Buf.end(), W.Buf.begin(), W.Buf.end());
  }
  void raw(const uint8_t *Data, size_t Size) {
    Buf.insert(Buf.end(), Data, Data + Size);
  }

  const std::vector<uint8_t> &data() const { return Buf; }
  size_t size() const { return Buf.size(); }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

// --- Reader ---------------------------------------------------------------

/// Bounds-checked little-endian reader over one byte range. All read
/// methods return zero values once a read ran out of bytes; callers
/// check failed() at loop boundaries.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool failed() const { return Failed; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint16_t u16() { return static_cast<uint16_t>(le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(le(4)); }
  uint64_t u64() { return le(8); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double D;
    __builtin_memcpy(&D, &Bits, sizeof(D));
    return D;
  }

  std::string str() {
    uint32_t Len = u32();
    if (!need(Len))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

private:
  bool need(size_t N) {
    if (Failed || Size - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint64_t le(unsigned N) {
    if (!need(N))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += N;
    return V;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// Shared decode state: the first error wins and every decode helper
/// checks Ok before trusting anything it read.
struct DecodeContext {
  DiagnosticEngine &Diags;
  /// Prefixed to every diagnostic ("tpb", "tcp", "wire").
  const char *Scope = "tpb";
  bool Ok = true;

  bool fail(std::string Msg) {
    if (Ok) {
      Ok = false;
      Diags.error(std::string(Scope) + ": " + std::move(Msg));
    }
    return false;
  }
};

// --- Values ---------------------------------------------------------------

/// Tag byte marking a back-reference to an aggregate already encoded
/// under the same share context (structural-sharing dedup). Disjoint
/// from every Value::Kind.
constexpr uint8_t ValueBackRefTag = 0xFF;

/// Encode-side share context: maps payload identity to the pre-order
/// index of its first encoding. Thread one context across every value
/// of an artifact (all lanes of a checkpoint, all records of a frame)
/// and aggregates shared between them are encoded once, then referenced.
struct ValueEncodeShare {
  std::unordered_map<const void *, uint32_t> Index;
};

/// Decode-side share context: aggregates by the same pre-order index
/// the encoder assigned. Decoding with sharing restores shared payloads
/// as shared handles, not duplicated copies.
struct ValueDecodeShare {
  std::vector<Value> Values;
};

/// Full Value encoding: kind byte, then the payload. Aggregate elements
/// are written in canonical (compareValues) order so equal values encode
/// identically. With a non-null \p Share, an aggregate payload already
/// seen under this context encodes as a back-reference.
void writeValue(ByteWriter &W, const Value &V,
                ValueEncodeShare *Share = nullptr);

/// Decodes one Value; on malformed input reports through \p Ctx and
/// returns unit. Bounded nesting, bounded aggregate counts. \p Share
/// must mirror the encoder's (non-null iff encoding used one).
Value readValue(ByteReader &R, DecodeContext &Ctx, unsigned Depth = 0,
                ValueDecodeShare *Share = nullptr);

} // namespace bc
} // namespace tessla

#endif // TESSLA_PROGRAM_BINARYCODEC_H
