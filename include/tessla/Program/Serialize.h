//===- tessla/Program/Serialize.h - Program bundles (.tpb) -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TeSSLa Program Bundle (".tpb") format: a versioned, little-endian
/// binary serialization of a lowered (and typically -O1-optimized)
/// Program, so monitors deploy as compact artifacts that load without
/// the frontend — no lexer, parser, type checker or analysis is linked
/// by a bundle consumer (see tools/tessla-run).
///
/// Layout (all integers little-endian):
///
///   offset 0   4  magic bytes 'T' 'P' 'B' 0x1A
///   offset 4   4  u32 format version (TPBFormatVersion)
///   offset 8   8  u64 FNV-1a-64 checksum of every byte from offset 16
///                 to the end of the bundle
///   offset 16  4  u32 section count
///   then per section: u32 tag, u64 payload size, payload
///
/// Sections carry the stream table (names, kinds, types, literals),
/// the builtin-name table, the constant pool (full Value encoding,
/// aggregates included), the step table with every opcode — the
/// optimizer-introduced ConstTick/FusedLastLift/FusedLiftLift too — the
/// value/last/delay/output slot tables and the per-stream mutability
/// decisions. Builtin function pointers are never stored: steps
/// reference builtins *by name* and the loader re-resolves them through
/// builtinImpl(), rejecting names this build does not register.
///
/// Versioning policy: any change to the layout of an existing section
/// bumps TPBFormatVersion (the golden-bytes guard in SerializeTest
/// enforces the bump); loaders reject bundles with a different version.
/// Adding a *new* section is backward-compatible for readers (unknown
/// tags are skipped) but still bumps the version if old readers could
/// misexecute without it.
///
/// Loading is robust, not trusting: truncated, bit-flipped, or
/// hand-crafted inputs produce diagnostics, never undefined behavior.
/// Every read is bounds-checked, every index validated, and the decoded
/// program must pass both Spec::validate and opt::verifyProgram before
/// it is returned.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PROGRAM_SERIALIZE_H
#define TESSLA_PROGRAM_SERIALIZE_H

#include "tessla/Program/Program.h"
#include "tessla/Support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace tessla {

/// Current bundle format version. Bump on any layout change (see the
/// versioning policy in the file comment).
constexpr uint32_t TPBFormatVersion = 2;

/// The four magic bytes opening every bundle.
constexpr uint8_t TPBMagic[4] = {'T', 'P', 'B', 0x1A};

/// Byte offset of the checksum field; the checksum covers every byte
/// from TPBChecksumStart to the end of the bundle.
constexpr size_t TPBChecksumStart = 16;

/// FNV-1a-64 over \p Size bytes — the bundle content checksum. Exposed
/// so tools and tests can re-stamp a patched bundle.
uint64_t tpbChecksum(const uint8_t *Data, size_t Size);

/// Serializes \p P into a self-contained bundle. The program must be
/// verifier-clean (every Program produced by compile()/optimizeProgram()
/// is); the encoding is deterministic — equal programs yield equal
/// bytes, aggregates are emitted in canonical (sorted) order.
std::vector<uint8_t> serializeProgram(const Program &P);

/// Loads a bundle. On any structural problem — short or oversized
/// sections, checksum mismatch, unsupported format version, out-of-range
/// ids or slots, unknown builtin names, verifier violations — reports
/// through \p Diags and returns nullopt. Never exhibits undefined
/// behavior on malformed input.
std::optional<Program> loadProgram(const uint8_t *Data, size_t Size,
                                   DiagnosticEngine &Diags);
std::optional<Program> loadProgram(const std::vector<uint8_t> &Bytes,
                                   DiagnosticEngine &Diags);

/// File convenience wrappers ("spec.tpb" in, Program out and back).
bool writeProgramFile(const Program &P, const std::string &Path,
                      DiagnosticEngine &Diags);
std::optional<Program> loadProgramFile(const std::string &Path,
                                       DiagnosticEngine &Diags);

} // namespace tessla

#endif // TESSLA_PROGRAM_SERIALIZE_H
