//===- tessla/Program/Program.h - Lowered program IR -----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fully lowered, backend-neutral form of a specification — the single
/// product of the paper's translation scheme (§III): the calculation
/// section's steps in translation order with the mutability set applied,
/// plus the bookkeeping the triggering section needs (last-value slots,
/// delay scheduling, outputs).
///
/// Both execution backends consume exactly this IR:
///
///   Analysis/Pipeline ──▶ Program::compile ──┬─▶ Runtime/Monitor
///                                            └─▶ CodeGen/CppEmitter
///
/// so the interpreter and the generated C++ agree by construction — there
/// is one lowering, not two.
///
/// Lowering resolves everything the per-event hot path would otherwise
/// re-derive:
///
///  * a **dense value-slot** per event-carrying stream (nil streams share
///    one dead slot), so engine state is indexed by slot, not StreamId;
///  * dense **last slots** for streams used as the first argument of a
///    last, and dense **delay slots** for delay streams — each referencing
///    step carries its slot index directly (no per-event search);
///  * a pre-resolved **opcode** merging the stream operator with its
///    builtin's event semantics, and for lift steps a pre-resolved
///    **function pointer** for the (BuiltinId, InPlace) combination — the
///    interpreter executes one flat dispatch per step instead of nested
///    switches.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PROGRAM_PROGRAM_H
#define TESSLA_PROGRAM_PROGRAM_H

#include "tessla/Runtime/BuiltinImpls.h"
#include "tessla/Runtime/Value.h"

namespace tessla {

class AnalysisResult;

/// Engine state index. Slots are dense: 0..numValueSlots()-1 address the
/// current-timestamp value of one stream each; nil streams (which never
/// carry events) all map to the dead slot numValueSlots(), which no step
/// ever writes.
using SlotId = uint16_t;

/// Pre-resolved dispatch opcode of one program step: StreamKind and (for
/// lifts) EventSemantics folded into one flat enum so the interpreter's
/// per-step dispatch is a single switch.
///
/// The last three opcodes are never produced by Program::compile; they
/// are introduced by the optimization passes in tessla::opt (Opt/) and
/// executed by both backends.
enum class Opcode : uint8_t {
  Skip,          // Input (buffered by feed()) and Nil — no calculation
  Const,         // Const/Unit: one event at timestamp 0
  Time,          // time(s): s' timestamp as value
  Last,          // last(v, r): last-slot value when r fires
  Delay,         // delay(d, r): fire when the armed timer matches
  LiftAll,       // lift, EventSemantics::All — Impl over all arguments
  LiftMerge,     // lift, EventSemantics::Any — first present wins
  LiftFirstRest, // lift, EventSemantics::FirstAndAnyRest — Impl
  LiftFilter,    // lift, EventSemantics::Custom — pass iff condition
  // --- Opt-introduced opcodes ---
  ConstTick,     // ConstVal at timestamp 0 and whenever Args[0] fires
                 // (a collapsed held constant merge(c, last(c, t)))
  FusedLastLift, // last(v, r) fused into its LiftAll consumer: reads
                 // the last slot directly, no intermediate step/slot
  FusedLiftLift, // single-consumer LiftAll producer fused into its
                 // LiftAll consumer: Impl2 feeds Impl in one step
};

/// One lowered statement of the calculation section.
struct ProgramStep {
  Opcode Op = Opcode::Skip;
  /// Original operator (pretty-printing and code generation).
  StreamKind Kind = StreamKind::Nil;
  BuiltinId Fn = BuiltinId::Merge; // Lift only
  /// True when this stream's aggregate family is mutable: aggregate
  /// updates run destructively and fresh aggregates use the mutable
  /// representation.
  bool InPlace = false;
  uint8_t NumArgs = 0;
  /// Destination value slot.
  SlotId Dst = 0;
  /// Value slots of Args (gathered without a StreamId indirection).
  SlotId ArgSlot[3] = {0, 0, 0};
  /// Last steps: dense last-slot index of Args[0]. Delay steps: dense
  /// delay index into Program::delays(). Unused otherwise.
  SlotId Aux = 0;
  /// Pre-resolved evaluator for LiftAll/LiftFirstRest steps (and the
  /// consumer half of fused steps); null for every other opcode
  /// (merge/filter never reach an evaluator).
  BuiltinFn Impl = nullptr;
  /// The defined stream (diagnostics, printing, code generation).
  StreamId Id = 0;
  /// Stream-level operands (code generation, printing, and backward
  /// reachability in the optimizer). Per-opcode layout:
  ///  * ConstTick: {trigger} — NumArgs == 1;
  ///  * FusedLastLift: {v, r, rest...} of the fused last(v, r), so
  ///    Args.size() == NumArgs + 1 and ArgSlot[0] is r's slot followed
  ///    by the rest slots;
  ///  * FusedLiftLift: producer args then consumer rest args, aligned
  ///    with ArgSlot;
  ///  * everything else: the spec operands, aligned with ArgSlot.
  std::vector<StreamId> Args;
  Value ConstVal; // Const/ConstTick steps (always a scalar)

  // --- Fields used only by the opt-introduced opcodes. ---
  /// FusedLiftLift: evaluator/builtin/mutability of the fused producer.
  BuiltinFn Impl2 = nullptr;
  BuiltinId Fn2 = BuiltinId::Merge;
  bool InPlace2 = false;
  /// FusedLiftLift: arity of the fused producer (its argument slots are
  /// ArgSlot[0..FusedArity), the consumer's rest follows).
  uint8_t FusedArity = 0;
  /// Fused steps: the stream of the fused-away producer (printing, code
  /// generation, mutability lookups).
  StreamId FusedId = 0;
  /// True when ConstantFold rewrote this step (printing/statistics).
  bool Folded = false;
};

/// One *_last slot: the most recent value of Source, updated at the end
/// of every timestamp where Source fired.
struct LastSlot {
  StreamId Source;
  SlotId ValueSlot; // Source's value slot
};

/// One delay stream with pre-resolved operand slots.
struct DelaySlot {
  StreamId Id;
  StreamId DelaysArg;
  StreamId ResetArg;
  SlotId ValueSlot;  // the delay stream's own value slot
  SlotId DelaysSlot; // value slot of the delays argument
  SlotId ResetSlot;  // value slot of the reset argument
};

/// One output-marked stream.
struct OutputSlot {
  StreamId Id;
  SlotId ValueSlot;
};

/// The lowered program; shares ownership of the spec with the analysis
/// result. Compile once, execute from any backend.
class Program {
public:
  /// Lowers \p Analysis' spec using its translation order and mutability
  /// set. Pass a baseline AnalysisResult (Optimize=false) for the paper's
  /// all-persistent reference program. Defined in Program/Lower.cpp
  /// (library tessla_lower): the Program data structure itself, its
  /// verifier and its serialized form (Program/Serialize.h) are
  /// frontend-free, so shipped monitors link neither the parser nor the
  /// analyses.
  static Program compile(const AnalysisResult &Analysis);

  const Spec &spec() const { return *S; }
  /// Shared spec handle for consumers whose artifacts outlive the
  /// program object (the abstract-interpretation fact store keeps the
  /// spec alive for name rendering).
  std::shared_ptr<const Spec> sharedSpec() const { return S; }
  const std::vector<ProgramStep> &steps() const { return Steps; }
  /// Dense *_last slots (streams used as first argument of some last).
  const std::vector<LastSlot> &lastSlots() const { return LastSlots; }
  const std::vector<DelaySlot> &delays() const { return Delays; }
  const std::vector<OutputSlot> &outputs() const { return Outputs; }

  uint32_t numStreams() const { return S->numStreams(); }
  /// Number of live value slots. Engines must size their state to
  /// numValueSlots() + 1: the extra entry is the shared dead slot of nil
  /// streams, which stays never-present forever.
  SlotId numValueSlots() const { return NumValueSlots; }
  /// The value slot of \p Id (the dead slot numValueSlots() for nil).
  SlotId valueSlot(StreamId Id) const { return ValueSlots[Id]; }
  /// Whether \p Id's aggregate family is implemented destructively.
  bool isMutable(StreamId Id) const { return Mutable[Id]; }

  /// Number of steps executing destructive aggregate updates (stats).
  uint32_t inPlaceStepCount() const;

  /// Renders the lowered program, one step per line with its slot
  /// assignment and in-place/folded/fused markers, followed by the
  /// last/delay/output slot tables — the single human-readable form of
  /// what both backends execute.
  std::string str() const;

  /// Mutable access to the IR tables for the optimization passes in
  /// tessla::opt. Invariants (dense slot ranges, dispatch pointers,
  /// Args/ArgSlot agreement) are re-checked by opt::verifyProgram after
  /// every pass; all other code must treat Program as immutable.
  struct OptView {
    std::vector<ProgramStep> &Steps;
    std::vector<LastSlot> &LastSlots;
    std::vector<DelaySlot> &Delays;
    std::vector<OutputSlot> &Outputs;
    std::vector<SlotId> &ValueSlots;
    SlotId &NumValueSlots;
  };
  OptView optView() {
    return {Steps, LastSlots, Delays, Outputs, ValueSlots, NumValueSlots};
  }

private:
  /// The bundle reader/writer (Program/Serialize.cpp) reconstructs every
  /// table directly, including the spec handle and the mutability set
  /// that OptView deliberately does not expose.
  friend class ProgramSerializer;

  std::shared_ptr<const Spec> S;
  std::vector<ProgramStep> Steps;
  std::vector<LastSlot> LastSlots;
  std::vector<DelaySlot> Delays;
  std::vector<OutputSlot> Outputs;
  std::vector<SlotId> ValueSlots; // indexed by StreamId
  std::vector<bool> Mutable;      // indexed by StreamId
  SlotId NumValueSlots = 0;
};

} // namespace tessla

#endif // TESSLA_PROGRAM_PROGRAM_H
