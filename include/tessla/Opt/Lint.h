//===- tessla/Opt/Lint.h - Specification linter ----------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spec-level lint diagnostics, surfaced through `tesslac --lint`. The
/// linter reports against the Spec (so warnings carry the original
/// source locations and names), but every firing-dependent verdict comes
/// from the abstract-interpretation fact store (Analysis/AbsInt.h)
/// computed over the baseline-compiled program — a "never" verdict is a
/// proof, so there are no false "statically nil" positives on specs
/// whose streams can fire.
///
/// Rules:
///
///  * `unused-stream`      — a defined, non-output stream no other stream
///                           reads (prefix the name with '_' to silence);
///  * `nil-output`         — an output that provably never carries an
///                           event, under any input;
///  * `uninitialized-last` — a self-referential last whose value side can
///                           never produce the event its own reset side
///                           demands, so it stays silent forever;
///  * `shadows-builtin`    — a stream named like a builtin function,
///                           shadowing it for later definitions;
///  * `unreachable-step`   — any other named definition that provably
///                           never fires (message carries the proving
///                           facts; '_' prefix silences);
///  * `unbounded-queue-growth` — a queueEnq whose element-count bound
///                           widened to unbounded, with the growth cycle;
///  * `clock-mismatch`     — a merge arm whose clock formula is covered
///                           by the earlier arms, so it can never win the
///                           first-present-wins race.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_OPT_LINT_H
#define TESSLA_OPT_LINT_H

#include "tessla/Lang/Spec.h"
#include "tessla/Support/Diagnostics.h"

namespace tessla {
namespace opt {

struct LintOptions {
  /// Report lint findings as errors instead of warnings (`--werror`).
  bool WarningsAsErrors = false;
};

/// Runs every lint rule over \p S, appending findings to \p Diags.
/// Returns the number of findings.
unsigned lintSpec(const Spec &S, DiagnosticEngine &Diags,
                  const LintOptions &Opts = {});

} // namespace opt
} // namespace tessla

#endif // TESSLA_OPT_LINT_H
