//===- tessla/Opt/PassManager.h - Program pass framework -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pass framework over the lowered Program IR: a pass is
/// a semantics-preserving in-place rewrite of the step/slot tables; the
/// manager runs a pipeline, records per-pass statistics, and re-verifies
/// the IR invariants after every pass so a broken rewrite surfaces as a
/// diagnostic instead of a miscompile.
///
/// Every pass receives the AnalysisResult the program was compiled from —
/// the clock-aware rewrites (constant folding under AND/OR event
/// semantics, step fusion on provably identical clocks) consult the
/// triggering approximation ev' (§IV-C) for their soundness proofs.
///
/// The standard pipeline behind `tesslac -O1` is
///
///   constant-fold  →  step-fusion  →  dead-step-elim
///
/// with verification between passes; see DESIGN.md §3b for ordering and
/// the clock-soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_OPT_PASSMANAGER_H
#define TESSLA_OPT_PASSMANAGER_H

#include "tessla/Analysis/AbsInt.h"
#include "tessla/Analysis/Statistics.h"
#include "tessla/Program/Program.h"
#include "tessla/Program/Verify.h"

#include <memory>

namespace tessla {
namespace opt {

/// One in-place rewrite of a Program. Passes must keep the program
/// executable and byte-identical in observable behavior at every pass
/// boundary (each pass is individually semantics-preserving).
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  /// Rewrites \p P. \p A must be the analysis result \p P was compiled
  /// from (the pass consults spec-level clock facts); \p Facts is the
  /// abstract-interpretation fact store computed over \p P at this pass
  /// boundary — the single source of tick/constant/range/bound truth
  /// (passes must not re-derive these with private scans). Counters go
  /// into \p Stats; internal failures are reported through \p Diags and
  /// return false.
  virtual bool run(Program &P, AnalysisResult &A,
                   absint::AnalysisFacts &Facts, PassStatistics &Stats,
                   DiagnosticEngine &Diags) = 0;
};

std::unique_ptr<Pass> createConstantFoldPass();
std::unique_ptr<Pass> createStepFusionPass();
std::unique_ptr<Pass> createDeadStepEliminationPass();

// verifyProgram lives with the IR in tessla/Program/Verify.h (included
// above) so the frontend-free bundle loader can use it as well; it keeps
// its tessla::opt name for the pass-framework callers.

/// Runs a pass pipeline with per-pass statistics and verification.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Runs every pass in order. When \p Verify is set, verifyProgram runs
  /// after each pass and a violation aborts the pipeline with an error
  /// diagnostic naming the offending pass. \p Stats (optional) receives
  /// one PassStatistics entry per executed pass.
  bool run(Program &P, AnalysisResult &A, DiagnosticEngine &Diags,
           OptStatistics *Stats = nullptr, bool Verify = true);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Optimization driver options (the `tesslac -O<level>` surface).
struct OptOptions {
  /// 0 = no passes; 1 = constant-fold + step-fusion + dead-step-elim.
  unsigned Level = 1;
  /// Re-verify IR invariants after every pass.
  bool Verify = true;
};

/// Builds and runs the standard pipeline for \p Opts.Level over \p P.
/// Returns false (with diagnostics) on pass or verification failure; the
/// program must not be executed in that case.
bool optimizeProgram(Program &P, AnalysisResult &A, const OptOptions &Opts,
                     DiagnosticEngine &Diags,
                     OptStatistics *Stats = nullptr);

} // namespace opt
} // namespace tessla

#endif // TESSLA_OPT_PASSMANAGER_H
