//===- tessla/SAT/BoolExpr.h - Positive boolean formulas -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed positive (negation-free) boolean formulas over numbered
/// atoms. The triggering-behavior approximation of §IV-C maps every stream
/// to such a formula (ev'); the aliasing analysis then asks whether
/// ev'(u) -> ev'(v) is a tautology.
///
/// Formulas are built through a BoolExprContext that maximally shares
/// structurally identical subterms, so the compositional construction of
/// ev' over a specification yields a DAG, not a tree — the paper notes the
/// formulas "may have an exponential size in terms of the specification
/// length in the worst case" when expanded; sharing keeps construction
/// linear and defers the cost to the (coNP-complete) implication check.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SAT_BOOLEXPR_H
#define TESSLA_SAT_BOOLEXPR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tessla {

/// Opaque handle to a formula node inside a BoolExprContext.
using BoolExprRef = uint32_t;

/// Node kind of a positive boolean formula.
enum class BoolExprKind : uint8_t { False, True, Atom, And, Or };

/// Arena and uniquing table for positive boolean formulas.
///
/// Construction applies cheap local simplifications: neutral/absorbing
/// constants, flattening of nested conjunction/disjunction, duplicate-child
/// removal, and child sorting (for canonical form). It does NOT apply
/// absorption or distribution — those are the SAT solver's job.
class BoolExprContext {
public:
  BoolExprContext();

  BoolExprRef falseExpr() const { return FalseRef; }
  BoolExprRef trueExpr() const { return TrueRef; }

  /// Returns the unique node for atom \p AtomId.
  BoolExprRef atom(uint32_t AtomId);

  /// Conjunction of \p Children (empty -> true).
  BoolExprRef conj(std::vector<BoolExprRef> Children);
  BoolExprRef conj(BoolExprRef A, BoolExprRef B) { return conj({A, B}); }

  /// Disjunction of \p Children (empty -> false).
  BoolExprRef disj(std::vector<BoolExprRef> Children);
  BoolExprRef disj(BoolExprRef A, BoolExprRef B) { return disj({A, B}); }

  BoolExprKind kind(BoolExprRef E) const { return Nodes[E].Kind; }
  /// Atom id of an Atom node.
  uint32_t atomId(BoolExprRef E) const;
  /// Children of an And/Or node.
  const std::vector<BoolExprRef> &children(BoolExprRef E) const;

  /// Evaluates \p E under \p Assignment (indexed by atom id; missing atoms
  /// read as false).
  bool evaluate(BoolExprRef E, const std::vector<bool> &Assignment) const;

  /// Collects the distinct atom ids occurring in \p E, ascending.
  std::vector<uint32_t> atoms(BoolExprRef E) const;

  /// Number of distinct DAG nodes reachable from \p E (incl. E itself).
  size_t dagSize(BoolExprRef E) const;

  /// Renders \p E using \p AtomName for atoms (defaults to "a<i>").
  std::string
  str(BoolExprRef E,
      const std::vector<std::string> *AtomNames = nullptr) const;

  size_t numNodes() const { return Nodes.size(); }

private:
  struct Node {
    BoolExprKind Kind;
    uint32_t AtomId = 0;             // Atom only
    std::vector<BoolExprRef> Kids;   // And/Or only
  };

  BoolExprRef internNary(BoolExprKind K, std::vector<BoolExprRef> Children);

  std::vector<Node> Nodes;
  BoolExprRef FalseRef = 0;
  BoolExprRef TrueRef = 1;
  std::unordered_map<uint32_t, BoolExprRef> AtomCache;
  // Uniquing key: kind byte followed by sorted child refs.
  std::unordered_map<std::string, BoolExprRef> NaryCache;
};

} // namespace tessla

#endif // TESSLA_SAT_BOOLEXPR_H
