//===- tessla/SAT/Solver.h - DPLL SAT solver -------------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact DPLL solver (two-watched-literal unit propagation,
/// chronological backtracking) and the positive-formula implication check
/// built on top of it. Instances coming from triggering analyses are tiny;
/// DPLL without clause learning is more than sufficient and easy to audit.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SAT_SOLVER_H
#define TESSLA_SAT_SOLVER_H

#include "tessla/SAT/CNF.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace tessla {

/// Result of a SAT query.
enum class SatResult : uint8_t { Sat, Unsat };

/// DPLL solver. Construct, then call solve(); model() is valid after a
/// Sat answer.
class SatSolver {
public:
  /// Decides satisfiability of \p Formula.
  SatResult solve(const CNF &Formula);

  /// Variable assignment of the last Sat answer, indexed by variable
  /// (entry 0 unused).
  const std::vector<bool> &model() const { return Model; }

  /// Number of decisions made in the last solve() — exposed for the
  /// compile-time ablation benchmark.
  uint64_t lastDecisions() const { return Decisions; }

private:
  std::vector<bool> Model;
  uint64_t Decisions = 0;
};

/// Decides tautology of the implication F -> G for positive formulas via
/// UNSAT(F & !G), with syntactic fast paths. Caches results per (F, G)
/// pair, as the aliasing analysis re-queries the same pairs while walking
/// paths (§IV-E steps 2-3).
class ImplicationChecker {
public:
  explicit ImplicationChecker(const BoolExprContext &Ctx) : Ctx(Ctx) {}

  /// Returns true iff F -> G holds under every atom assignment.
  bool implies(BoolExprRef F, BoolExprRef G);

  /// Queries answered by the syntactic fast path vs. full SAT (for the
  /// ablation benchmark).
  uint64_t fastPathHits() const { return FastHits; }
  uint64_t satQueries() const { return SatQueries; }

private:
  const BoolExprContext &Ctx;
  std::unordered_map<uint64_t, bool> Cache;
  uint64_t FastHits = 0;
  uint64_t SatQueries = 0;

  std::optional<bool> syntacticCheck(BoolExprRef F, BoolExprRef G) const;
};

} // namespace tessla

#endif // TESSLA_SAT_SOLVER_H
