//===- tessla/SAT/CNF.h - CNF and Tseitin encoding -------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clause database plus the Tseitin transformation from positive boolean
/// formulas. Implication validity of positive formulas (the paper's
/// coNP-complete triggering check, §IV-C/E2) is decided by encoding
/// f AND NOT g and asking the DPLL solver for unsatisfiability.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SAT_CNF_H
#define TESSLA_SAT_CNF_H

#include "tessla/SAT/BoolExpr.h"

#include <vector>

namespace tessla {

/// A CNF literal: variable index (1-based) with sign; -v is the negation
/// of v.
using Lit = int32_t;

/// Conjunction of clauses over variables 1..NumVars.
struct CNF {
  uint32_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;

  /// Allocates a fresh variable and returns its (positive) index.
  uint32_t newVar() { return ++NumVars; }

  void addClause(std::vector<Lit> Clause) {
    Clauses.push_back(std::move(Clause));
  }
  void addUnit(Lit L) { Clauses.push_back({L}); }
  void addBinary(Lit A, Lit B) { Clauses.push_back({A, B}); }
};

/// Incremental Tseitin encoder mapping BoolExpr DAG nodes to CNF variables.
///
/// Atoms of the formula context are mapped consistently across multiple
/// encode() calls, so two formulas encoded into the same TseitinEncoder
/// share their atom variables — exactly what the implication check needs.
class TseitinEncoder {
public:
  explicit TseitinEncoder(const BoolExprContext &Ctx) : Ctx(Ctx) {}

  /// Encodes \p E and returns the CNF literal that is equivalent to E.
  Lit encode(BoolExprRef E);

  CNF &cnf() { return Formula; }
  const CNF &cnf() const { return Formula; }

  /// CNF variable backing atom \p AtomId, allocating it if necessary.
  uint32_t atomVar(uint32_t AtomId);

private:
  const BoolExprContext &Ctx;
  CNF Formula;
  std::unordered_map<BoolExprRef, Lit> NodeLit;
  std::unordered_map<uint32_t, uint32_t> AtomVars;
  // Lazily created variable fixed to true (for True/False leaves).
  uint32_t TrueVar = 0;

  Lit trueLit();
};

} // namespace tessla

#endif // TESSLA_SAT_CNF_H
