//===- tessla/Analysis/Statistics.h - Analysis statistics ------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregated statistics over one analysis run: sizes of the structures
/// the paper's algorithm operates on (edges by class, variable families,
/// aliases, constraints, implication queries). Consumed by the compile-
/// time ablation and by tooling output; also a stable surface for tests
/// that pin the analysis' shape without depending on internals.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_STATISTICS_H
#define TESSLA_ANALYSIS_STATISTICS_H

#include "tessla/Analysis/Pipeline.h"

namespace tessla {

/// Counts describing one analyzed specification.
struct AnalysisStatistics {
  uint32_t Streams = 0;
  uint32_t AggregateStreams = 0;
  uint32_t Edges = 0;
  uint32_t WriteEdges = 0;
  uint32_t ReadEdges = 0;
  uint32_t PassEdges = 0;
  uint32_t LastEdges = 0;
  uint32_t SpecialEdges = 0;
  /// Variable families containing at least one aggregate stream.
  uint32_t AggregateFamilies = 0;
  uint32_t MutableStreams = 0;
  uint32_t PersistentFamilies = 0;
  uint32_t ReadBeforeWriteConstraints = 0;
  /// Triggering-implication queries answered syntactically / via SAT.
  uint64_t ImplicationFastPath = 0;
  uint64_t ImplicationSat = 0;

  /// Key-value rendering, one "name: value" per line.
  std::string str() const;
};

/// Collects statistics from a finished analysis.
AnalysisStatistics collectStatistics(AnalysisResult &Analysis);

/// Before/after counts of one optimization pass over a Program
/// (`tesslac --dump-passes`). Plain data: filled in by the pass manager
/// in Opt/, rendered here.
struct PassStatistics {
  std::string Pass;
  uint32_t StepsBefore = 0;
  uint32_t StepsAfter = 0;
  /// Steps rewritten to Const/ConstTick/Skip by constant folding.
  uint32_t Folded = 0;
  /// Producer steps merged into their consumer by step fusion.
  uint32_t Fused = 0;
  /// Steps removed by dead-step elimination.
  uint32_t Eliminated = 0;
  uint32_t ValueSlotsBefore = 0;
  uint32_t ValueSlotsAfter = 0;
  uint32_t LastSlotsBefore = 0;
  uint32_t LastSlotsAfter = 0;
  uint32_t DelaySlotsBefore = 0;
  uint32_t DelaySlotsAfter = 0;

  /// One-line rendering: "pass: steps N -> M (folded F, fused U, ...)".
  std::string str() const;
};

/// The statistics of one full pipeline run.
struct OptStatistics {
  std::vector<PassStatistics> Passes;

  uint32_t totalFolded() const;
  uint32_t totalFused() const;
  uint32_t totalEliminated() const;

  /// One line per pass plus a slot-table summary line.
  std::string str() const;
};

} // namespace tessla

#endif // TESSLA_ANALYSIS_STATISTICS_H
