//===- tessla/Analysis/TranslationOrder.h - Def. 2 orders ------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation orders (Def. 2): total orders of the streams in which no
/// non-special usage edge points backwards, optionally extended with the
/// read-before-write constraints of §IV-E step 4.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_TRANSLATIONORDER_H
#define TESSLA_ANALYSIS_TRANSLATIONORDER_H

#include "tessla/Analysis/UsageGraph.h"

#include <optional>

namespace tessla {

/// Computes a translation order of \p G's streams respecting all
/// non-special edges plus \p ExtraEdges (each pair (a, b) forces a before
/// b). Deterministic (smallest stream id first among ready nodes).
///
/// \returns nullopt if the combined constraints are cyclic.
std::optional<std::vector<StreamId>> computeTranslationOrder(
    const UsageGraph &G,
    const std::vector<std::pair<StreamId, StreamId>> &ExtraEdges = {});

} // namespace tessla

#endif // TESSLA_ANALYSIS_TRANSLATIONORDER_H
