//===- tessla/Analysis/AbsInt.h - Abstract interpretation ------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock-calculus abstract-interpretation framework over the lowered
/// Program IR: a worklist fixpoint engine running a set of cooperating
/// analyses whose per-stream facts land in one shared AnalysisFacts
/// store. Four concrete analyses ship with the engine:
///
///  * **clock domination** — the ev' triggering formulas of §IV-C,
///    recomputed over Program opcodes (including the opt-introduced
///    ConstTick/FusedLastLift/FusedLiftLift) together with a timestamp-0
///    companion formula, so subset/superset/equality of tick sets can be
///    decided *including* the initial timestamp;
///  * **nil/undef reachability** — a Never/Unit/Var tick lattice plus a
///    provably-initialized-at-0 bit: can a slot ever be read before its
///    first event, can it ever carry an event at all;
///  * **interval/constant range** — an interval domain over Int values
///    (held-constant aware: a ConstTick's payload is a range fact even
///    though the stream ticks often), a two-point Bool domain, and exact
///    scalar constants, with widening at merge/last cycles;
///  * **delay/queue bound inference** — static element-count bounds per
///    aggregate stream (so a session's memory footprint is bounded), or
///    top = unbounded with the offending growth cycle reported.
///
/// The lattice fixpoint runs first (tick/range/bound are mutually
/// recursive: a condition's range decides a filter's clock, a trim
/// argument's range caps a queue's bound); the clock formulas are then
/// built in one forward pass over the converged facts.
///
/// Facts are *semantic*: they hold for every execution of the program,
/// so any semantics-preserving rewrite keeps an AnalysisFacts valid for
/// the rewritten program. The optimization passes (Opt/) consume a facts
/// instance computed at each pass boundary; the linter and the
/// `tesslac --dump-analysis` surface render the same facts; and the
/// soundness-oracle test harness checks every observed execution against
/// them. See DESIGN.md §3e.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_ABSINT_H
#define TESSLA_ANALYSIS_ABSINT_H

#include "tessla/Program/Program.h"
#include "tessla/SAT/BoolExpr.h"
#include "tessla/SAT/Solver.h"

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tessla {
namespace absint {

/// When can the stream carry events? Ordered lattice: Never < Unit < Var.
enum class TickKind : uint8_t {
  Never, ///< provably no events, ever
  Unit,  ///< exactly one event, at timestamp 0 (a unit-clock constant)
  Var,   ///< anything else
};

/// Abstract value carried by a stream's events. Bottom until the first
/// provable event; Int streams get an interval (with +-infinity encoded
/// as the int64 limits), Bool streams a may-be-true/may-be-false pair,
/// everything else collapses to Top (the exact-constant channel lives
/// separately in AnalysisFacts::knownValue).
struct ValueRange {
  enum class Kind : uint8_t { Bottom, Int, Bool, Top };
  static constexpr int64_t NegInf = std::numeric_limits<int64_t>::min();
  static constexpr int64_t PosInf = std::numeric_limits<int64_t>::max();

  Kind K = Kind::Bottom;
  int64_t Lo = 0, Hi = 0;              // Int only
  bool CanTrue = false, CanFalse = false; // Bool only

  static ValueRange bottom() { return {}; }
  static ValueRange top() { return {Kind::Top, 0, 0, false, false}; }
  static ValueRange interval(int64_t Lo, int64_t Hi) {
    return {Kind::Int, Lo, Hi, false, false};
  }
  static ValueRange intConst(int64_t V) { return interval(V, V); }
  static ValueRange boolRange(bool CanTrue, bool CanFalse) {
    return {Kind::Bool, 0, 0, CanTrue, CanFalse};
  }
  static ValueRange boolConst(bool B) { return boolRange(B, !B); }

  bool isBottom() const { return K == Kind::Bottom; }
  /// Every event of the stream provably carries `true`.
  bool alwaysTrue() const { return K == Kind::Bool && CanTrue && !CanFalse; }
  /// Every event of the stream provably carries `false`.
  bool alwaysFalse() const { return K == Kind::Bool && !CanTrue && CanFalse; }
  /// True when \p V (an observed event value) is contained in the range.
  bool contains(const Value &V) const;

  /// Least upper bound.
  ValueRange join(const ValueRange &O) const;
  /// Standard interval widening against the previous value \p Old:
  /// unstable bounds jump to the respective infinity.
  ValueRange widen(const ValueRange &Old) const;

  friend bool operator==(const ValueRange &A, const ValueRange &B) {
    return A.K == B.K && A.Lo == B.Lo && A.Hi == B.Hi &&
           A.CanTrue == B.CanTrue && A.CanFalse == B.CanFalse;
  }
  friend bool operator!=(const ValueRange &A, const ValueRange &B) {
    return !(A == B);
  }

  std::string str() const;
};

/// Static element-count bound of an aggregate (set/map/queue) stream, or
/// unbounded with the stream where the growth cycle was detected.
struct SizeBound {
  bool Unbounded = false;
  uint64_t Max = 0; ///< meaningful when !Unbounded

  std::string str() const;
  friend bool operator==(const SizeBound &A, const SizeBound &B) {
    return A.Unbounded == B.Unbounded && (A.Unbounded || A.Max == B.Max);
  }
};

/// Relation between two streams' tick sets (past timestamp 0; the
/// *Incl0 queries below fold timestamp 0 in).
enum class ClockRel : uint8_t { Equal, Subset, Superset, Unknown };

/// The shared fact store: one entry per StreamId of the analyzed
/// program's spec. Streams the (possibly optimized) program no longer
/// computes a step for are Never/bottom — they provably carry no events
/// in *this* program.
///
/// Clock queries go through an ImplicationChecker (syntactic fast path +
/// SAT) and cache per formula pair, hence non-const.
class AnalysisFacts {
public:
  /// Runs the combined lattice fixpoint and the clock-formula pass over
  /// \p P. The result borrows \p P's spec for names only; it remains
  /// valid across semantics-preserving rewrites of \p P.
  static AnalysisFacts compute(const Program &P);

  AnalysisFacts(AnalysisFacts &&) = default;
  AnalysisFacts &operator=(AnalysisFacts &&) = default;

  // --- Nil / undef reachability -------------------------------------
  /// May the stream ever carry an event? A false answer is a proof of
  /// silence (the tick lattice is a may-over-approximation).
  bool canFire(StreamId Id) const { return tick(Id) != TickKind::Never; }
  TickKind tick(StreamId Id) const { return Facts[Id].Tick; }
  /// Provably carries an event at timestamp 0 under every input (so a
  /// `last` reading it past timestamp 0 never reads undef).
  bool alwaysInitialized(StreamId Id) const { return Facts[Id].At0; }
  /// Unit clock: exactly one event, at timestamp 0.
  bool unitClock(StreamId Id) const {
    return tick(Id) == TickKind::Unit && alwaysInitialized(Id);
  }

  // --- Constant / range ---------------------------------------------
  /// The exact value every event of the stream provably carries, or
  /// null. May be an aggregate (propagated for size folding but never
  /// materialized into a rewritten step).
  const Value *knownValue(StreamId Id) const {
    return Facts[Id].HasKnown ? &Facts[Id].Known : nullptr;
  }
  const ValueRange &range(StreamId Id) const { return Facts[Id].Range; }

  // --- Delay / queue bounds -----------------------------------------
  /// Element-count bound of an aggregate stream (0 for scalar streams).
  const SizeBound &sizeBound(StreamId Id) const { return Facts[Id].Bound; }
  /// Streams whose bound analysis widened to unbounded, with the growth
  /// cycle (stream names joined by " -> ") for diagnostics. Empty when
  /// every aggregate is statically bounded.
  struct UnboundedGrowth {
    StreamId Id;
    std::string Cycle;
  };
  const std::vector<UnboundedGrowth> &unboundedStreams() const {
    return Unbounded;
  }
  /// A self-re-arming delay (its reset side depends on its own events):
  /// the drain at finish() needs a horizon. Periodic specs do this on
  /// purpose; the fact is surfaced, not linted.
  bool delaySelfArming(StreamId Id) const { return Facts[Id].SelfArming; }

  // --- Clock domination ---------------------------------------------
  /// ev'(Id) for t >= 1 over StreamId atoms, and the timestamp-0
  /// companion formula (atoms: inputs that may or may not tick at 0).
  BoolExprRef clockFormula(StreamId Id) const { return Facts[Id].Clock; }
  BoolExprRef clockAt0Formula(StreamId Id) const { return Facts[Id].At0F; }

  /// Proves ev(U) \ {0} is a subset of ev(V): every event of U past
  /// timestamp 0 is accompanied by an event of V.
  bool clockSubset(StreamId U, StreamId V);
  /// clockSubset including timestamp 0.
  bool clockSubsetIncl0(StreamId U, StreamId V);
  /// Best provable relation between the two tick sets (incl. t = 0).
  ClockRel clockRelation(StreamId U, StreamId V);
  /// Exact refutation: true when there provably *exists* an input under
  /// which U ticks without V at some t >= 1 — requires both formulas to
  /// range over free input atoms only (no filter/delay/uninitialized-
  /// last atoms), so the found assignment is realizable.
  bool provablyTicksWithout(StreamId U, StreamId V);
  /// Proves every event of U (timestamp 0 included) is accompanied by an
  /// event of at least one stream in \p Vs — the dead-merge-arm side
  /// condition (U's events always lose to an earlier arm). False for an
  /// empty \p Vs unless U is provably silent.
  bool clockCoveredBy(StreamId U, const std::vector<StreamId> &Vs);

  // --- Rendering ----------------------------------------------------
  /// One-line fact summary of a stream: clock formula, tick kind, range,
  /// bound (the proving facts the linter attaches to its diagnostics).
  std::string factString(StreamId Id) const;
  /// Per-slot dump of the whole program (`tesslac --dump-analysis`),
  /// ending with the per-session memory-bound summary.
  std::string str() const;
  /// The clock formula with stream names substituted for atom ids.
  std::string formulaString(StreamId Id) const;

  /// Fast-path/SAT query counters of the implication checker.
  uint64_t implicationFastPathHits() const;
  uint64_t implicationSatQueries() const;

  const Spec &spec() const { return *S; }

private:
  AnalysisFacts() = default;
  friend class FactsBuilder;

  struct StreamFacts {
    TickKind Tick = TickKind::Never;
    bool At0 = false;      // provably fires at timestamp 0
    bool HasKnown = false; // every event carries Known
    bool KnownDamaged = false; // conflicting constants seen; stay unknown
    Value Known;
    ValueRange Range;
    SizeBound Bound;
    bool SelfArming = false; // Delay streams only
    BoolExprRef Clock = 0;   // ev', t >= 1
    BoolExprRef At0F = 0;    // ticks-at-0 formula
    bool InputAtomsOnly = false; // both formulas range over inputs only
  };

  std::shared_ptr<const Spec> S;
  std::vector<StreamFacts> Facts;
  std::vector<UnboundedGrowth> Unbounded;
  std::unique_ptr<BoolExprContext> Ctx;
  std::unique_ptr<ImplicationChecker> Checker;
};

/// One cooperating analysis run by the fixpoint engine: a monotone
/// transfer per program step into the shared fact store. The engine
/// revisits a step whenever a fact of one of its operand streams
/// changed; widen() is invoked instead of a plain join once a step has
/// been recomputed more than the widening threshold, and must jump the
/// step's facts to a post-fixpoint (top is always sound).
///
/// The four shipped analyses are internal (src/Analysis/AbsInt.cpp);
/// the interface is the extension point for further derived analyses.
class Analysis {
public:
  virtual ~Analysis() = default;
  virtual std::string_view name() const = 0;
  /// Recomputes stream facts from the operands' facts; returns true when
  /// anything changed (the engine then re-queues the dependents).
  virtual bool transfer(const ProgramStep &Step) = 0;
  /// Accelerated transfer past the widening threshold.
  virtual bool widen(const ProgramStep &Step) = 0;
  /// Number of recomputations of one step after which the engine calls
  /// widen() instead of transfer(). Domains with short chains (Int
  /// intervals) widen early; the size-bound domain climbs linearly to a
  /// queueTrim cap, so it gets more rope before giving up to unbounded.
  virtual unsigned widenAfter() const { return 8; }
};

/// Runs \p Analyses over \p P's steps to a combined fixpoint: a shared
/// worklist seeded in translation order; a step whose facts changed under
/// any analysis re-queues every step reading one of its streams. Returns
/// the number of transfer invocations (for tests pinning convergence).
size_t runFixpoint(const Program &P,
                   const std::vector<Analysis *> &Analyses);

} // namespace absint
} // namespace tessla

#endif // TESSLA_ANALYSIS_ABSINT_H
