//===- tessla/Analysis/TriggerFormula.h - ev' approximation ----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static approximation of triggering behavior (§IV-C): a positive
/// boolean formula ev'(s) per stream over atom streams (inputs, delays,
/// value-dependent lifts, uninitialized lasts) such that a tautological
/// implication ev'(u) -> ev'(v) proves that every event of u (past
/// timestamp 0) coincides with an event of v:
///
///   ev'(u) -> ev'(v) in TAUT  =>  for all inputs:
///       ev(u) \ {0} is a subset of ev(v)
///
/// Also provides the "always initialized at timestamp 0" analysis the
/// last-rule depends on, and replicating-last detection (Def. 5).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_TRIGGERFORMULA_H
#define TESSLA_ANALYSIS_TRIGGERFORMULA_H

#include "tessla/Lang/Spec.h"
#include "tessla/SAT/BoolExpr.h"
#include "tessla/SAT/Solver.h"

#include <memory>

namespace tessla {

/// Computes and caches ev' formulas, initialization facts and implication
/// queries for one specification.
class TriggerAnalysis {
public:
  explicit TriggerAnalysis(const Spec &S);

  /// The positive formula ev'(s). Atom ids are StreamIds.
  BoolExprRef formula(StreamId S) const { return Formulas[S]; }

  /// True if the stream provably has an event at timestamp 0 under every
  /// input (unit, constants, and lifts/merges of such).
  bool alwaysInitialized(StreamId S) const { return Initialized[S]; }

  /// True iff ev'(U) -> ev'(V) is a tautology, i.e. every event of U
  /// (past timestamp 0) is provably accompanied by an event of V.
  bool implies(StreamId U, StreamId V);

  /// Replicating-last detection (Def. 5, over-approximated): a last is
  /// replicating unless we can prove its events are a subset of its value
  /// stream's events. Non-last streams are never replicating.
  bool isReplicatingLast(StreamId S);

  const BoolExprContext &context() const { return Ctx; }
  BoolExprContext &context() { return Ctx; }

  /// Renders ev'(s) with stream names, for tests and reports.
  std::string formulaString(StreamId S) const;

  /// Counters for the compile-time ablation benchmark.
  uint64_t implicationFastPathHits() const {
    return Checker.fastPathHits();
  }
  uint64_t implicationSatQueries() const { return Checker.satQueries(); }

private:
  const Spec &S;
  BoolExprContext Ctx;
  ImplicationChecker Checker;
  std::vector<bool> Initialized;
  std::vector<BoolExprRef> Formulas;

  void computeInitialized();
  void computeFormulas();
};

} // namespace tessla

#endif // TESSLA_ANALYSIS_TRIGGERFORMULA_H
