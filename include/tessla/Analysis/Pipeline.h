//===- tessla/Analysis/Pipeline.h - One-call analysis driver ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience driver running the full compiler-phase pipeline of the
/// paper over a (validated, type-checked) specification: usage graph,
/// triggering approximation, aliasing, mutability set and translation
/// order. This is what the monitor planner and the code generator consume.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_PIPELINE_H
#define TESSLA_ANALYSIS_PIPELINE_H

#include "tessla/Analysis/Mutability.h"

#include <memory>

namespace tessla {

/// All analysis artifacts for one specification. Owns (a copy of) the
/// spec, so the result is freely movable and outlives the caller's Spec.
class AnalysisResult {
public:
  AnalysisResult(std::shared_ptr<const Spec> S,
                 const MutabilityOptions &Opts);

  const Spec &spec() const { return *S; }
  /// Shared handle for consumers that must extend the spec's lifetime
  /// (monitor plans, generated code drivers).
  std::shared_ptr<const Spec> sharedSpec() const { return S; }
  const UsageGraph &graph() const { return *Graph; }
  TriggerAnalysis &triggers() { return *Triggers; }
  AliasAnalysis &aliases() { return *Aliases; }
  const MutabilityResult &mutability() const { return Mutability; }

  /// Shorthands.
  bool isMutable(StreamId Id) const { return Mutability.Mutable[Id]; }
  const std::vector<StreamId> &order() const { return Mutability.Order; }

  std::string report() const { return Mutability.report(*S); }

private:
  std::shared_ptr<const Spec> S;
  std::unique_ptr<UsageGraph> Graph;
  std::unique_ptr<TriggerAnalysis> Triggers;
  std::unique_ptr<AliasAnalysis> Aliases;
  MutabilityResult Mutability;
};

/// Runs the full pipeline over (a copy of) \p S. \p Opts.Optimize=false
/// yields the paper's baseline configuration (all aggregates persistent).
AnalysisResult analyzeSpec(Spec S, const MutabilityOptions &Opts = {});

} // namespace tessla

#endif // TESSLA_ANALYSIS_PIPELINE_H
