//===- tessla/Analysis/UsageGraph.h - Usage graph (Def. 1/3) ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TeSSLa usage graph of a flat specification (paper Definition 1)
/// with the edge classification of Definition 3:
///
///  * nodes are the specification's streams;
///  * (u, v) is an edge iff u is used in the expression defining v;
///  * an edge is *special* iff v is a last/delay and u its first argument;
///  * edges whose source has an aggregate type are classified as Write,
///    Read, Last or Pass according to how the defining expression accesses
///    the value; all other edges are Plain (uncategorized).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_USAGEGRAPH_H
#define TESSLA_ANALYSIS_USAGEGRAPH_H

#include "tessla/ADT/GraphAlgos.h"
#include "tessla/Lang/Spec.h"

namespace tessla {

/// Classification of a usage edge (Def. 3). Plain edges carry scalar
/// values or pure trigger/reset positions and play no role in the
/// mutability analysis.
enum class EdgeKind : uint8_t { Plain, Write, Read, Last, Pass };

/// Returns "W", "R", "L", "P" or "-".
std::string_view edgeKindName(EdgeKind K);

/// One classified edge of the usage graph.
struct UsageEdge {
  StreamId From;
  StreamId To;
  EdgeKind Kind;
  bool Special; // first argument of last/delay (S of Def. 1)
};

/// The usage graph of one specification. Assumes the spec type-checked
/// (edge classification consults operand types).
class UsageGraph {
public:
  explicit UsageGraph(const Spec &S);

  const Spec &spec() const { return S; }
  const std::vector<UsageEdge> &edges() const { return Edges; }
  uint32_t numNodes() const { return S.numStreams(); }

  /// Indices into edges() of edges leaving / entering a node.
  const std::vector<uint32_t> &outEdges(StreamId U) const { return Out[U]; }
  const std::vector<uint32_t> &inEdges(StreamId V) const { return In[V]; }

  const UsageEdge &edge(uint32_t Index) const { return Edges[Index]; }

  /// Adjacency of the graph without special edges — the constraint graph
  /// whose topological orders are the valid translation orders (Def. 2).
  const Adjacency &nonSpecialAdjacency() const { return NonSpecial; }

  /// Adjacency restricted to Pass and Last edges — the value-flow subgraph
  /// the aliasing analysis walks (Def. 6).
  const Adjacency &passLastAdjacency() const { return PassLast; }
  /// Reverse of passLastAdjacency().
  const Adjacency &passLastReverse() const { return PassLastRev; }

  /// Renders "u -K-> v" lines for tests and debugging.
  std::string str() const;

private:
  const Spec &S;
  std::vector<UsageEdge> Edges;
  std::vector<std::vector<uint32_t>> Out, In;
  Adjacency NonSpecial, PassLast, PassLastRev;
};

} // namespace tessla

#endif // TESSLA_ANALYSIS_USAGEGRAPH_H
