//===- tessla/Analysis/GraphWriter.h - DOT output --------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GraphViz (DOT) rendering of classified usage graphs — the tool-side
/// equivalent of the paper's Fig. 3/Fig. 7 diagrams. Write edges are
/// red, Read edges blue, Pass edges green, Last edges dashed; when a
/// mutability result is supplied, mutable streams are drawn as filled
/// boxes and the read-before-write constraints appear as dotted blue
/// edges (Fig. 7's ordering constraint).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_GRAPHWRITER_H
#define TESSLA_ANALYSIS_GRAPHWRITER_H

#include "tessla/Analysis/AbsInt.h"
#include "tessla/Analysis/Mutability.h"

#include <string>

namespace tessla {

/// Renders \p G as a DOT digraph. \p Mutability may be null (edges
/// only).
std::string writeUsageGraphDot(const UsageGraph &G,
                               const MutabilityResult *Mutability = nullptr);

/// Renders \p G annotated with the abstract-interpretation facts of each
/// stream (tick kind, known value, range, size bound): provably-silent
/// streams are grayed out, unbounded aggregates drawn red — the
/// `tesslac --dump-analysis=dot` artifact.
std::string writeAnalysisFactsDot(const UsageGraph &G,
                                  const absint::AnalysisFacts &Facts);

} // namespace tessla

#endif // TESSLA_ANALYSIS_GRAPHWRITER_H
