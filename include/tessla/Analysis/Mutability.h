//===- tessla/Analysis/Mutability.h - Mutability set (Def. 7) --*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's combined algorithm (§IV-E, Fig. 8): computes the optimal
/// mutability set of a specification and the translation order realizing
/// it.
///
///  1. Variable families: union all endpoints of Write/Pass/Last edges
///     (rule 3 of Def. 7, consistent mutability).
///  2. For every write edge u -W-> v and every potential alias u' of u,
///     another write or last edge from u' forces u's family persistent
///     (rule 1, no double write/reproduction).
///  3. A read edge u' -R-> v' from an alias records the read-before-write
///     constraint (v', v) (rule 2).
///  4. Minimum-weight removal: find the cheapest set of families (weight =
///     family size) whose constraints may be dropped (they become
///     persistent) so that the constraint graph is acyclic — exact
///     branch-and-bound (the problem is NP-complete, kin to Feedback Arc
///     Set) with a greedy fallback for large instances.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_MUTABILITY_H
#define TESSLA_ANALYSIS_MUTABILITY_H

#include "tessla/ADT/UnionFind.h"
#include "tessla/Analysis/Aliasing.h"

namespace tessla {

/// Tuning knobs for computeMutability().
struct MutabilityOptions {
  /// false = paper's baseline: every aggregate persistent, plain
  /// translation order.
  bool Optimize = true;
  /// Use exact branch-and-bound in step 4 (falls back to greedy above
  /// MaxExactCandidates).
  bool ExactEdgeRemoval = true;
  /// Candidate-family limit for the exact search.
  uint32_t MaxExactCandidates = 24;
};

/// Why a family was forced persistent.
enum class PersistentReason : uint8_t {
  DoubleWrite,    // rule 1 violation
  OrderConflict,  // removed in step 4 (read-before-write cycle)
};

/// Output of the combined algorithm.
struct MutabilityResult {
  /// Per stream: true iff the stream has aggregate type and its family is
  /// in the mutability set M (implement with a mutable structure).
  std::vector<bool> Mutable;
  /// Per stream: union-find representative of its variable family.
  std::vector<uint32_t> FamilyRep;
  /// Translation order used by the generated monitor.
  std::vector<StreamId> Order;
  /// All discovered read-before-write constraints (reader, writer).
  std::vector<std::pair<StreamId, StreamId>> ReadBeforeWrite;
  /// Families forced persistent, by representative, with reasons.
  std::vector<std::pair<uint32_t, PersistentReason>> PersistentFamilies;
  /// Whether step 4 ran the exact search (vs. greedy).
  bool UsedExactRemoval = true;

  /// True iff stream \p Id carries an aggregate implemented persistently.
  bool isPersistentAggregate(const Spec &S, StreamId Id) const {
    return S.stream(Id).Ty.isComplex() && !Mutable[Id];
  }

  /// Number of mutable aggregate streams (|M| restricted to aggregates).
  uint32_t mutableCount() const;

  /// Human-readable analysis report (families, M, order).
  std::string report(const Spec &S) const;
};

/// Runs the combined algorithm over \p G.
MutabilityResult computeMutability(const UsageGraph &G,
                                   TriggerAnalysis &Triggers,
                                   AliasAnalysis &Aliases,
                                   const MutabilityOptions &Opts = {});

} // namespace tessla

#endif // TESSLA_ANALYSIS_MUTABILITY_H
