//===- tessla/Analysis/Aliasing.h - Aliasing analysis (Def. 6) -*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determines which stream variables may carry the *same* aggregate value
/// at the *same* timestamp (potential aliases, §IV-B). Two variables are
/// aliasing-safe when, for every common ancestor in the Pass/Last value
/// flow and every pair of paths, one path provably runs at least one
/// `last` "behind" the other: the longer path's cut points must
/// trigger-imply the shorter path's last nodes (§IV-C approximation) and
/// the shorter path's lasts must be non-replicating (Def. 5). Everything
/// not provably safe is a potential alias.
///
/// Conservative fallbacks (both sound — they only cost optimization):
///  * if the Pass/Last region around a variable contains a cycle
///    (recursive hold patterns), all P/L-connected variables are treated
///    as potential aliases;
///  * if path enumeration exceeds a budget, likewise.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_ANALYSIS_ALIASING_H
#define TESSLA_ANALYSIS_ALIASING_H

#include "tessla/Analysis/TriggerFormula.h"
#include "tessla/Analysis/UsageGraph.h"

#include <unordered_map>

namespace tessla {

/// Aliasing analysis over one usage graph.
class AliasAnalysis {
public:
  /// Budget on enumerated Pass/Last paths per ancestor before falling back
  /// to "everything aliases".
  static constexpr size_t DefaultMaxPaths = 4096;

  AliasAnalysis(const UsageGraph &G, TriggerAnalysis &Triggers,
                size_t MaxPaths = DefaultMaxPaths)
      : G(G), Triggers(Triggers), MaxPaths(MaxPaths) {}

  /// All potential aliases of \p U (sorted ascending; always contains U
  /// itself). Cached per stream.
  const std::vector<StreamId> &potentialAliases(StreamId U);

  /// True if \p A and \p B are potential aliases (the relation is
  /// symmetric by construction of Def. 6).
  bool mayAlias(StreamId A, StreamId B);

  /// True when the conservative cycle/budget fallback fired for \p U —
  /// surfaced in analysis reports.
  bool usedFallback(StreamId U);

private:
  const UsageGraph &G;
  TriggerAnalysis &Triggers;
  size_t MaxPaths;

  struct Result {
    std::vector<StreamId> Aliases;
    bool Fallback = false;
  };
  std::unordered_map<StreamId, Result> Cache;

  const Result &compute(StreamId U);

  /// The sequence of last-defined nodes along one Pass/Last path.
  using LastSeq = std::vector<StreamId>;

  /// Checks the Def. 6 structure for one path pair (both orientations).
  bool safePair(const LastSeq &A, const LastSeq &B);
  /// One orientation: Long must run >= 1 last behind Short.
  bool safeOriented(const LastSeq &Long, const LastSeq &Short);
};

} // namespace tessla

#endif // TESSLA_ANALYSIS_ALIASING_H
