//===- tessla/Support/SourceLocation.h - Source positions ------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
// Reproduction of "Aggregate Update Problem for Multi-clocked Dataflow
// Languages" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column positions used by the lexer, parser and
/// diagnostics. Lines and columns are 1-based; a default-constructed
/// location is "unknown".
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SUPPORT_SOURCELOCATION_H
#define TESSLA_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace tessla {

/// A position in a specification source text.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLocation() = default;
  constexpr SourceLocation(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  /// Returns true unless this is the unknown location.
  constexpr bool isValid() const { return Line != 0; }

  /// Renders "line:col", or "<unknown>" for the unknown location.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend constexpr bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace tessla

#endif // TESSLA_SUPPORT_SOURCELOCATION_H
