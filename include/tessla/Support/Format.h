//===- tessla/Support/Format.h - Small string helpers ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal string formatting helpers shared across the library: printf-style
/// formatting into std::string, joining, and number rendering used by trace
/// I/O and the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SUPPORT_FORMAT_H
#define TESSLA_SUPPORT_FORMAT_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace tessla {

/// printf-style formatting that returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

// The three rendering helpers below are header-only on purpose: they are
// called by CodeGen/RuntimeSupport.h, which generated monitors include as
// a standalone header (compiled with just `-I include`, no link against
// the tessla libraries). The native tier builds such monitors into shared
// objects, so every symbol the canonical value rendering needs must be
// available without Format.cpp.

/// Joins \p Parts with \p Sep in between ("a, b, c" style).
inline std::string join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

/// Renders a double so that it round-trips and prints integral values
/// without a trailing ".0"-explosion ("1.5", "2", "0.25").
inline std::string formatDouble(double V) {
  // %.17g round-trips but is ugly; try increasing precision until the value
  // round-trips exactly.
  char Buf[64];
  for (int Precision = 6; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// Escapes a string for inclusion in double quotes ("a\"b" -> a\"b, with
/// \n, \t, \\ handled).
inline std::string escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Returns true and writes to \p Out if \p S parses completely as a signed
/// 64-bit integer.
bool parseInt64(std::string_view S, int64_t &Out);

/// Returns true and writes to \p Out if \p S parses completely as a double.
bool parseDouble(std::string_view S, double &Out);

} // namespace tessla

#endif // TESSLA_SUPPORT_FORMAT_H
