//===- tessla/Support/Format.h - Small string helpers ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal string formatting helpers shared across the library: printf-style
/// formatting into std::string, joining, and number rendering used by trace
/// I/O and the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SUPPORT_FORMAT_H
#define TESSLA_SUPPORT_FORMAT_H

#include <string>
#include <string_view>
#include <vector>

namespace tessla {

/// printf-style formatting that returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep in between ("a, b, c" style).
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Renders a double so that it round-trips and prints integral values
/// without a trailing ".0"-explosion ("1.5", "2", "0.25").
std::string formatDouble(double V);

/// Escapes a string for inclusion in double quotes ("a\"b" -> a\"b, with
/// \n, \t, \\ handled).
std::string escapeString(std::string_view S);

/// Returns true and writes to \p Out if \p S parses completely as a signed
/// 64-bit integer.
bool parseInt64(std::string_view S, int64_t &Out);

/// Returns true and writes to \p Out if \p S parses completely as a double.
bool parseDouble(std::string_view S, double &Out);

} // namespace tessla

#endif // TESSLA_SUPPORT_FORMAT_H
