//===- tessla/Support/Diagnostics.h - Diagnostic engine --------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics collected while parsing, type checking or analyzing a
/// specification. The library never throws; fallible phases report through a
/// DiagnosticEngine and return empty/unchanged results on hard errors.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SUPPORT_DIAGNOSTICS_H
#define TESSLA_SUPPORT_DIAGNOSTICS_H

#include "tessla/Support/SourceLocation.h"

#include <string>
#include <vector>

namespace tessla {

/// Severity of a single diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// One reported problem, optionally anchored to a source position.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders "error 3:7: message" style text.
  std::string str() const;
};

/// Accumulates diagnostics for one front-end or analysis run.
///
/// The engine is deliberately simple: phases append, callers inspect. Errors
/// are sticky — hasErrors() stays true until clear().
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void error(std::string Message) { error(SourceLocation(), std::move(Message)); }

  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void warning(std::string Message) {
    warning(SourceLocation(), std::move(Message));
  }

  void note(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// All diagnostics rendered one per line; handy for test assertions and
  /// tool error output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace tessla

#endif // TESSLA_SUPPORT_DIAGNOSTICS_H
