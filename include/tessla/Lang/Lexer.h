//===- tessla/Lang/Lexer.h - Specification lexer ---------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the TeSSLa-like surface syntax:
///
/// \code
///   in i: Int
///   def yl := last(y, i)
///   def y  := setAdd(default(yl, setEmpty()), i)   -- comment
///   out s
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_LEXER_H
#define TESSLA_LANG_LEXER_H

#include "tessla/Support/Diagnostics.h"
#include "tessla/Support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tessla {

/// Token kinds of the surface syntax.
enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  // Keywords
  KwIn, KwDef, KwOut, KwIf, KwThen, KwElse, KwTrue, KwFalse,
  KwUnit, KwNil, KwTime, KwLast, KwDelay, KwDefault,
  // Punctuation / operators
  LParen, RParen, LBracket, RBracket, Comma, Colon, Define /* := */,
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Lt, LtEq, Gt, GtEq,
  AndAnd, OrOr, Bang,
};

/// One token with its source range and (for literals/identifiers) text.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string Text;    // identifier or string literal contents
  int64_t IntValue = 0;
  double FloatValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes \p Source. Lexical errors are reported to \p Diags; the
/// returned vector always ends with an Eof token.
std::vector<Token> tokenize(std::string_view Source, DiagnosticEngine &Diags);

/// Human-readable token kind name ("':='", "identifier", ...).
std::string_view tokenKindName(TokenKind K);

} // namespace tessla

#endif // TESSLA_LANG_LEXER_H
