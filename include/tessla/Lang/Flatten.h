//===- tessla/Lang/Flatten.h - AST lowering / flattening -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed module into the flat Spec IR, introducing fresh
/// identifiers for sub-expressions — the "flattening" of §II that all
/// later phases assume. Desugars on the way:
///
///  * scalar literals become Const streams (one event at timestamp 0),
///    cached per distinct literal;
///  * nullary aggregate constructors setEmpty()/mapEmpty()/queueEmpty()
///    become lifts applied to a shared unit stream (the f_emptyset pattern
///    from the paper's running example);
///  * "def a := b" aliases become merge(b, b), which is semantically the
///    identity and carries the correct Pass edges for the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_FLATTEN_H
#define TESSLA_LANG_FLATTEN_H

#include "tessla/Lang/Parser.h"
#include "tessla/Lang/Spec.h"

namespace tessla {

/// Lowers \p M to a validated (but not yet type-checked) flat Spec.
/// Returns nullopt and reports to \p Diags on failure.
std::optional<Spec> lowerModule(const ast::Module &M,
                                DiagnosticEngine &Diags);

} // namespace tessla

#endif // TESSLA_LANG_FLATTEN_H
