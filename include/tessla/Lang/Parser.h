//===- tessla/Lang/Parser.h - Surface syntax parser ------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the TeSSLa-like surface syntax, producing
/// a nested-expression AST. Flattening into the Spec IR (fresh identifiers
/// for sub-expressions, as in §II "every specification can be transformed
/// into a flat one") happens in Lang/Flatten.h.
///
/// Grammar sketch:
/// \code
///   module   := { decl }
///   decl     := "in" ident ":" type | "def" ident ":=" expr | "out" ident
///   type     := "Int" | "Float" | "Bool" | "String" | "Unit"
///             | "Set" "[" type "]" | "Map" "[" type "," type "]"
///             | "Queue" "[" type "]"
///   expr     := orExpr | "if" expr "then" expr "else" expr
///   orExpr   := andExpr { "||" andExpr }
///   andExpr  := cmpExpr { "&&" cmpExpr }
///   cmpExpr  := addExpr [ ("=="|"!="|"<"|"<="|">"|">=") addExpr ]
///   addExpr  := mulExpr { ("+"|"-") mulExpr }
///   mulExpr  := unary { ("*"|"/"|"%") unary }
///   unary    := ("-"|"!") unary | primary
///   primary  := literal | "unit" | "nil" | ident [ "(" args ")" ]
///             | "time"|"last"|"delay"|"default" "(" args ")"
///             | "(" expr ")"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_PARSER_H
#define TESSLA_LANG_PARSER_H

#include "tessla/Lang/Spec.h"
#include "tessla/Support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string_view>

namespace tessla {
namespace ast {

/// Kind of an AST expression node. Operators are desugared to Call nodes
/// with builtin names during parsing ("a + b" -> Call("add", [a, b])).
enum class ExprKind : uint8_t {
  Ident,   // stream reference
  Call,    // builtin or operator application (by surface name)
  TimeOp,  // time(e)
  LastOp,  // last(v, r)
  DelayOp, // delay(d, r)
  Literal, // scalar constant
  UnitVal, // 'unit'
  NilVal,  // 'nil'
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Nested surface expression.
struct Expr {
  ExprKind Kind;
  SourceLocation Loc;
  std::string Callee;         // Call: surface builtin name; Ident: name
  std::vector<ExprPtr> Args;  // Call/TimeOp/LastOp/DelayOp
  ConstantLit Lit;            // Literal
};

/// "in name : Type".
struct InputDecl {
  std::string Name;
  Type Ty;
  SourceLocation Loc;
};

/// "def name := expr".
struct StreamDecl {
  std::string Name;
  ExprPtr Body;
  SourceLocation Loc;
};

/// "out name".
struct OutputDecl {
  std::string Name;
  SourceLocation Loc;
};

/// A parsed module.
struct Module {
  std::vector<InputDecl> Inputs;
  std::vector<StreamDecl> Defs;
  std::vector<OutputDecl> Outputs;
};

} // namespace ast

/// Parses \p Source into an AST. Errors go to \p Diags; returns nullopt
/// if any were produced.
std::optional<ast::Module> parseModule(std::string_view Source,
                                       DiagnosticEngine &Diags);

/// Convenience front-end driver: parse, flatten/lower, validate and
/// typecheck. Returns nullopt (with diagnostics) on any failure.
std::optional<Spec> parseSpec(std::string_view Source,
                              DiagnosticEngine &Diags);

} // namespace tessla

#endif // TESSLA_LANG_PARSER_H
