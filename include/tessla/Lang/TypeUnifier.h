//===- tessla/Lang/TypeUnifier.h - Type unification ------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-order unification over Type terms, used by the type checker to
/// solve stream types against generic builtin signatures
/// (Hindley-Milner-style inference restricted to rank-0 stream equations).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_TYPEUNIFIER_H
#define TESSLA_LANG_TYPEUNIFIER_H

#include "tessla/Lang/Type.h"

#include <unordered_map>

namespace tessla {

/// Maintains a substitution from type variables to types and unifies type
/// terms against it.
class TypeUnifier {
public:
  /// Allocates a fresh type variable.
  Type freshVar() { return Type::var(NextVar++); }

  /// Instantiates \p T by renaming the variables 0..k it mentions to fresh
  /// ones, consistently across one call sequence sharing \p Renaming.
  /// Builtin signatures use small fixed variable ids; instantiate per use.
  Type instantiate(const Type &T,
                   std::unordered_map<uint32_t, Type> &Renaming);

  /// Unifies \p A with \p B, extending the substitution. Returns false on
  /// clash or occurs-check failure (substitution may be partially
  /// extended; callers report an error and stop).
  bool unify(const Type &A, const Type &B);

  /// Applies the substitution exhaustively to \p T.
  Type apply(const Type &T) const;

private:
  /// Resolves a variable chain one step at a time to its binding root.
  Type resolve(Type T) const;

  std::unordered_map<uint32_t, Type> Subst;
  uint32_t NextVar = 1000; // leave room for signature-local variables
};

} // namespace tessla

#endif // TESSLA_LANG_TYPEUNIFIER_H
