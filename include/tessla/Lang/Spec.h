//===- tessla/Lang/Spec.h - Flat TeSSLa specification IR -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat specification IR (§II): a set of equations, each defining one
/// stream by a single basic operator over stream *names* — exactly the
/// "flat TeSSLa specification" the paper's translation and analyses work
/// on. Nested surface expressions are flattened during lowering
/// (Lang/Flatten.h).
///
/// Operators: input streams, nil, unit, scalar constants (sugar: one event
/// at timestamp 0), time(s), lift(f)(s1..sn), last(v, r), delay(d, r).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_SPEC_H
#define TESSLA_LANG_SPEC_H

#include "tessla/Lang/Builtins.h"
#include "tessla/Lang/Type.h"
#include "tessla/Support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace tessla {

/// Dense stream index into Spec::streams().
using StreamId = uint32_t;

/// Timestamps. The time domain T is the non-negative integers.
using Time = int64_t;

/// Scalar literal for constant streams (one event at timestamp 0).
struct ConstantLit {
  // monostate renders the unit value.
  std::variant<std::monostate, bool, int64_t, double, std::string> V;

  std::string str() const;
  friend bool operator==(const ConstantLit &, const ConstantLit &) = default;
};

/// The defining operator of a stream.
enum class StreamKind : uint8_t {
  Input, // external input stream
  Nil,   // no events
  Unit,  // single unit event at timestamp 0
  Const, // scalar literal at timestamp 0 (sugar, §II)
  Time,  // Args = {s}: s's timestamps as values
  Lift,  // Args = {s1..sn}, Fn: lifted function application
  Last,  // Args = {value, trigger}: strictly-last value of `value`
  Delay, // Args = {delays, reset}: event `delays` after a reset
};

/// One equation of a flat specification.
struct StreamDef {
  std::string Name;
  StreamKind Kind = StreamKind::Nil;
  /// Value type; declared for inputs, inferred for the rest (TypeCheck).
  Type Ty;
  BuiltinId Fn = BuiltinId::Merge; // Lift only
  ConstantLit Literal;             // Const only
  std::vector<StreamId> Args;
  bool IsOutput = false;
  SourceLocation Loc;
};

/// A flat TeSSLa specification: equations indexed by StreamId.
///
/// Construct through SpecBuilder (Lang/Builder.h) or the parser; then run
/// typecheck() (Lang/TypeCheck.h) before analysis or execution.
class Spec {
public:
  const std::vector<StreamDef> &streams() const { return Defs; }
  const StreamDef &stream(StreamId Id) const { return Defs[Id]; }
  StreamDef &stream(StreamId Id) { return Defs[Id]; }
  uint32_t numStreams() const { return static_cast<uint32_t>(Defs.size()); }

  /// Id of the stream named \p Name, or nullopt.
  std::optional<StreamId> lookup(std::string_view Name) const;

  /// Input stream ids in definition order.
  std::vector<StreamId> inputs() const;
  /// Output-marked stream ids in definition order.
  std::vector<StreamId> outputs() const;

  /// Structural well-formedness (§II): arities match operators, argument
  /// ids are in range, every recursion passes through the first parameter
  /// of a last or delay (i.e. the usage graph minus special edges is
  /// acyclic), and delay delays are Int-typed once types are known.
  /// Reports through \p Diags; returns !Diags.hasErrors() for this run.
  bool validate(DiagnosticEngine &Diags) const;

  /// Renders the spec as flat equations, one per line — used in tests and
  /// by the code generator's header comment.
  std::string str() const;

  /// Rebuilds a spec from raw equations — the deserialization path of
  /// Program bundles (Program/Serialize.h), where the stream table comes
  /// from an untrusted file rather than the parser or SpecBuilder.
  /// Rejects duplicate or empty names and anything validate() rejects;
  /// reports through \p Diags and returns nullopt on any error.
  static std::optional<Spec> fromDefs(std::vector<StreamDef> Defs,
                                      DiagnosticEngine &Diags);

private:
  friend class SpecBuilder;
  std::vector<StreamDef> Defs;
  std::unordered_map<std::string, StreamId> ByName;
};

} // namespace tessla

#endif // TESSLA_LANG_SPEC_H
