//===- tessla/Lang/PrintSource.h - Parseable spec printing -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a flat specification back as surface syntax that the parser
/// accepts, such that parse(print(S)) is structurally identical to S
/// (stream order, names, operators, outputs). Used by tooling to persist
/// lowered specifications and by round-trip property tests.
///
/// One canonicalization: unit-valued constant streams print as `unit`
/// (a constant unit event at timestamp 0 and the unit stream are the
/// same stream).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_PRINTSOURCE_H
#define TESSLA_LANG_PRINTSOURCE_H

#include "tessla/Lang/Spec.h"

namespace tessla {

/// Renders \p S as parseable surface syntax.
std::string printSpecSource(const Spec &S);

} // namespace tessla

#endif // TESSLA_LANG_PRINTSOURCE_H
