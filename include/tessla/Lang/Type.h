//===- tessla/Lang/Type.h - Stream value types -----------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of stream values. Scalars (Unit, Bool, Int, Float, String) and the
/// aggregate ("complex", in the paper's wording) types Set[T], Map[K,V],
/// Queue[T] whose implementation — mutable vs persistent — the aggregate
/// update analysis decides. Type variables support the generic builtin
/// signatures (e.g. setAdd: (Set[A], A) -> Set[A]).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_TYPE_H
#define TESSLA_LANG_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace tessla {

/// Kind of a stream value type.
enum class TypeKind : uint8_t {
  Unit,
  Bool,
  Int,    // also used for timestamps
  Float,
  String,
  Set,    // Set[Elem]
  Map,    // Map[Key, Val]
  Queue,  // Queue[Elem]
  Var,    // type variable (unification)
};

/// A value type. Small value class; aggregate types carry their parameter
/// types by value.
class Type {
public:
  /// Defaults to a fresh-looking but invalid Var(0); prefer the named
  /// constructors.
  Type() : Kind(TypeKind::Var) {}

  static Type unit() { return Type(TypeKind::Unit); }
  static Type boolean() { return Type(TypeKind::Bool); }
  static Type integer() { return Type(TypeKind::Int); }
  static Type floating() { return Type(TypeKind::Float); }
  static Type string() { return Type(TypeKind::String); }
  static Type set(Type Elem) { return Type(TypeKind::Set, {std::move(Elem)}); }
  static Type map(Type Key, Type Val) {
    return Type(TypeKind::Map, {std::move(Key), std::move(Val)});
  }
  static Type queue(Type Elem) {
    return Type(TypeKind::Queue, {std::move(Elem)});
  }
  static Type var(uint32_t Id) {
    Type T(TypeKind::Var);
    T.VarId = Id;
    return T;
  }

  TypeKind kind() const { return Kind; }
  uint32_t varId() const { return VarId; }
  const std::vector<Type> &params() const { return Params; }

  /// True for the aggregate types whose mutability the paper's analysis
  /// decides (sets, maps, queues).
  bool isComplex() const {
    return Kind == TypeKind::Set || Kind == TypeKind::Map ||
           Kind == TypeKind::Queue;
  }

  bool isVar() const { return Kind == TypeKind::Var; }

  /// True if no type variable occurs anywhere in this type.
  bool isConcrete() const;

  /// True if the variable \p Id occurs in this type (occurs check).
  bool contains(uint32_t Id) const;

  /// "Int", "Set[Int]", "Map[Int, Float]", "'3" (variables).
  std::string str() const;

  friend bool operator!=(const Type &A, const Type &B) { return !(A == B); }

private:
  explicit Type(TypeKind K, std::vector<Type> Params = {})
      : Kind(K), Params(std::move(Params)) {}

  friend bool operator==(const Type &A, const Type &B);

  TypeKind Kind;
  uint32_t VarId = 0;
  std::vector<Type> Params;
};

/// Structural type equality.
bool operator==(const Type &A, const Type &B);

} // namespace tessla

#endif // TESSLA_LANG_TYPE_H
