//===- tessla/Lang/Builtins.h - Lifted function registry -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of built-in lifted functions. Each builtin carries the
/// metadata the paper's analyses consume:
///
///  * Event semantics (§IV-C): whether the lift produces an event iff ALL
///    inputs have one (basic operators), iff ANY input has one (merge), or
///    under a value-dependent condition (filter) that the triggering
///    approximation must treat as an opaque atom.
///  * Per-argument access class (§IV-A, Def. 3): whether the function
///    performs a Read or a Write access on an aggregate argument, or may
///    Pass the argument's value through unchanged to the result (merge,
///    if-then-else, filter). Scalar arguments are irrelevant to edge
///    classification and marked None.
///  * A generic type signature over type variables '0, '1 used by the type
///    checker (e.g. setAdd: (Set['0], '0) -> Set['0]).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_BUILTINS_H
#define TESSLA_LANG_BUILTINS_H

#include "tessla/Lang/Type.h"

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace tessla {

/// Identifiers of built-in lifted functions.
enum class BuiltinId : uint8_t {
  // Event combination
  Merge, // merge(a, b): a's event wins (f_merge of §II)
  Ite,   // ite(c, a, b): a if c else b
  Filter, // filter(a, c): a's event if c is true at this timestamp

  // Arithmetic (Int or Float, dynamically checked)
  Add, Sub, Mul, Div, Mod, Neg, Abs, Min, Max,
  // Comparisons
  Eq, Neq, Lt, Leq, Gt, Geq,
  // Boolean
  LAnd, LOr, LNot,
  // Conversions
  ToFloat, ToInt,

  // Set[T]
  SetEmpty, SetAdd, SetRemove, SetContains, SetSize,
  // setToggle(s, x): remove x if contained, else add (the Seen Set
  // workload's single-write update, §V-A)
  SetToggle,
  // setUpdate(s, add, rem): add/remove whichever of the optional scalar
  // events is present (models TeSSLa's lifts over Option arguments; the
  // DBAccessConstraint workload needs one write for two event kinds)
  SetUpdate,
  // setUnion/setDiff(a, b): writes a, reads b — one lift with both a
  // Write and a Read aggregate argument (exercises rule 2 with the read
  // and write in the same expression)
  SetUnion, SetDiff,
  // Map[K,V]
  MapEmpty, MapPut, MapRemove, MapGet, MapGetOrElse, MapContains, MapSize,
  // Queue[T]
  QueueEmpty, QueueEnq, QueueDeq, QueueFront, QueueSize,
  // queueTrim(q, n): dequeue from the front until size <= n (bounded
  // sliding windows without a conditional double write)
  QueueTrim,
  // Strings
  StrConcat, StrLen,
};

/// Number of distinct BuiltinId values.
constexpr unsigned NumBuiltins = static_cast<unsigned>(BuiltinId::StrLen) + 1;

/// When does lift(f)(s1..sn) produce an event? (§IV-C)
enum class EventSemantics : uint8_t {
  All,    // event iff all inputs have events: ev' = /\ ev'(si)
  Any,    // event iff any input has an event:  ev' = \/ ev'(si)
  // event iff the first input and at least one other input have events:
  // ev' = ev'(s1) /\ (ev'(s2) \/ ... \/ ev'(sn)); models lifted partial
  // functions over Option arguments (setUpdate)
  FirstAndAnyRest,
  Custom, // value-dependent (filter): ev' treats the stream as an atom
};

/// How the function accesses one argument (Def. 3 edge classes; applied
/// only when the argument's type is an aggregate).
enum class ArgAccess : uint8_t {
  None,  // value not retained or scalar-only position
  Read,  // inspects the aggregate (contains, size, get, ...)
  Write, // produces a modified version of the aggregate
  Pass,  // may return the aggregate unchanged (merge, ite, filter)
};

/// Static description of one builtin.
struct BuiltinInfo {
  BuiltinId Id;
  std::string_view Name; // surface syntax name
  uint8_t Arity;
  EventSemantics Events;
  ArgAccess Access[3]; // indexed by argument position (arity <= 3)
  Type ParamTypes[3];  // generic, over Type::var(0..1)
  Type ResultType;
};

/// Returns the descriptor for \p Id.
const BuiltinInfo &builtinInfo(BuiltinId Id);

/// Looks a builtin up by its surface name; nullopt if unknown.
std::optional<BuiltinId> builtinByName(std::string_view Name);

/// All builtins, for enumeration in tests and docs.
const std::vector<BuiltinInfo> &allBuiltins();

} // namespace tessla

#endif // TESSLA_LANG_BUILTINS_H
