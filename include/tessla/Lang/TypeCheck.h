//===- tessla/Lang/TypeCheck.h - Stream type inference ---------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type inference and checking over a flat specification. Every stream
/// gets a type variable; equations contribute unification constraints
/// (builtin signatures are instantiated per use). On success, the concrete
/// types are written back into the StreamDefs.
///
/// A deliberate restriction: aggregate element/key/value types must be
/// scalar (no Set[Set[Int]]). Extracting a nested aggregate from inside
/// another one would create aliasing invisible to the paper's stream-level
/// analysis; the paper's workloads never nest aggregates either.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_TYPECHECK_H
#define TESSLA_LANG_TYPECHECK_H

#include "tessla/Lang/Spec.h"
#include "tessla/Support/Diagnostics.h"

namespace tessla {

/// Infers and checks stream types, writing results into \p S.
/// \returns true on success; reports errors through \p Diags otherwise.
bool typecheck(Spec &S, DiagnosticEngine &Diags);

} // namespace tessla

#endif // TESSLA_LANG_TYPECHECK_H
