//===- tessla/Lang/Builder.h - Programmatic spec construction --*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of flat specifications. Supports the forward
/// references recursive equations need:
///
/// \code
///   SpecBuilder B;
///   StreamId I = B.input("i", Type::integer());
///   StreamId Y = B.declare("y");                    // defined below
///   StreamId U = B.unit("u");
///   StreamId E = B.lift("empty", BuiltinId::SetEmpty, {U});
///   StreamId M = B.lift("m", BuiltinId::Merge, {Y, E});
///   StreamId YL = B.last("yl", M, I);
///   B.defineLift(Y, BuiltinId::SetAdd, {YL, I});
///   StreamId S = B.lift("s", BuiltinId::SetContains, {YL, I});
///   B.markOutput(S);
///   Spec Spec = B.finish(Diags);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_LANG_BUILDER_H
#define TESSLA_LANG_BUILDER_H

#include "tessla/Lang/Spec.h"

namespace tessla {

/// Builds a Spec equation by equation.
class SpecBuilder {
public:
  /// Declares an input stream with a concrete value type.
  StreamId input(std::string Name, Type Ty,
                 SourceLocation Loc = SourceLocation());

  /// Forward-declares a stream to be defined later with one of the
  /// define*() methods.
  StreamId declare(std::string Name, SourceLocation Loc = SourceLocation());

  StreamId nil(std::string Name, SourceLocation Loc = SourceLocation());
  StreamId unit(std::string Name, SourceLocation Loc = SourceLocation());
  StreamId constant(std::string Name, ConstantLit Lit,
                    SourceLocation Loc = SourceLocation());
  StreamId time(std::string Name, StreamId Arg,
                SourceLocation Loc = SourceLocation());
  StreamId lift(std::string Name, BuiltinId Fn, std::vector<StreamId> Args,
                SourceLocation Loc = SourceLocation());
  StreamId last(std::string Name, StreamId Value, StreamId Trigger,
                SourceLocation Loc = SourceLocation());
  StreamId delay(std::string Name, StreamId Delays, StreamId Reset,
                 SourceLocation Loc = SourceLocation());

  /// Fills in a forward-declared stream.
  void defineNil(StreamId Id);
  void defineUnit(StreamId Id);
  void defineConstant(StreamId Id, ConstantLit Lit);
  void defineTime(StreamId Id, StreamId Arg);
  void defineLift(StreamId Id, BuiltinId Fn, std::vector<StreamId> Args);
  void defineLast(StreamId Id, StreamId Value, StreamId Trigger);
  void defineDelay(StreamId Id, StreamId Delays, StreamId Reset);

  void markOutput(StreamId Id) { Built.stream(Id).IsOutput = true; }

  /// Generates a fresh internal name ("_tN") — used by lowering when
  /// flattening nested expressions.
  std::string freshName();

  /// Id of a (possibly implicitly created) canonical unit stream, used for
  /// constant/empty-aggregate desugaring.
  StreamId canonicalUnit();

  /// Finalizes: all declared streams must be defined; runs
  /// Spec::validate(). On error, reports to \p Diags and still returns the
  /// (invalid) spec for inspection.
  Spec finish(DiagnosticEngine &Diags);

  /// Lookup during construction.
  std::optional<StreamId> lookup(std::string_view Name) const {
    return Built.lookup(Name);
  }
  uint32_t numStreams() const { return Built.numStreams(); }

private:
  StreamId addStream(std::string Name, SourceLocation Loc);
  void define(StreamId Id, StreamKind K, std::vector<StreamId> Args);

  Spec Built;
  std::vector<bool> Defined;
  uint32_t NextTemp = 0;
  std::optional<StreamId> UnitStream;
};

} // namespace tessla

#endif // TESSLA_LANG_BUILDER_H
