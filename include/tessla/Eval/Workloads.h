//===- tessla/Eval/Workloads.h - Evaluation specifications -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's worked examples (Fig. 1, Fig. 4) and evaluation workloads
/// (§V: Seen Set, Map Window, Queue Window; Table I: DBAccessConstraint,
/// DBTimeConstraint, PeakDetection, SpectrumCalculation) as ready-made,
/// type-checked specifications — shared by the test suite, the examples
/// and the benchmark harness.
///
/// All builders abort on internal errors (the sources are compiled in).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_EVAL_WORKLOADS_H
#define TESSLA_EVAL_WORKLOADS_H

#include "tessla/Lang/Spec.h"

#include <cstdint>

namespace tessla {
namespace workloads {

/// Parses and type-checks a compiled-in source; aborts on failure.
Spec buildSpec(std::string_view Source);

/// Figure 1 (§I/§II): accumulate inputs into a set, report membership.
Spec figure1();
/// Figure 4 upper: accumulate on i1, reproduce & read on i2 (all
/// updates in-place).
Spec figure4Upper();
/// Figure 4 lower: the reproduced set is modified twice (must stay
/// persistent).
Spec figure4Lower();

/// §V-A Seen Set: toggle membership per input, report prior containment.
Spec seenSet();
/// §V-A Map Window over \p N entries (ring buffer keyed by counter mod N).
Spec mapWindow(int64_t N);
/// §V-A Queue Window over \p N entries (enqueue, emit & drop the front
/// when full).
Spec queueWindow(int64_t N);

/// Table I DBAccessConstraint: accesses outside insert..delete lifetimes.
Spec dbAccessConstraint();
/// Table I DBTimeConstraint: db3 inserts within 60 time units of db2.
Spec dbTimeConstraint();
/// Table I PeakDetection with a window of \p W samples.
Spec peakDetection(int64_t W);
/// Table I SpectrumCalculation: value histogram + above-threshold count.
Spec spectrumCalculation();

} // namespace workloads
} // namespace tessla

#endif // TESSLA_EVAL_WORKLOADS_H
