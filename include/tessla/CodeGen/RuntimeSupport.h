//===- tessla/CodeGen/RuntimeSupport.h - Generated-code helpers -*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers included by monitors the CppEmitter generates. Rendering
/// matches tessla::Value::str() exactly, so generated monitors and the
/// interpreter produce byte-identical output traces.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_CODEGEN_RUNTIMESUPPORT_H
#define TESSLA_CODEGEN_RUNTIMESUPPORT_H

#include "tessla/Persistent/HAMT.h"
#include "tessla/Persistent/Queue.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tessla {
namespace cgen {

/// The unit value in generated code.
struct UnitV {
  friend bool operator==(UnitV, UnitV) { return true; }
  friend bool operator<(UnitV, UnitV) { return false; }
};

struct UnitHash {
  size_t operator()(UnitV) const { return 0; }
};

/// Carries a generated-monitor runtime error (division by zero etc.) to
/// the host when the monitor is embedded rather than standalone. The
/// message is a static string owned by the generated code.
struct FailError {
  const char *Message;
};

/// Generated monitors abort with a message on runtime errors — they are
/// standalone tools, not library code. The native tier compiles the same
/// monitor into a shared object embedded in a host process, where abort()
/// would take the host down: defining TESSLA_CGEN_FAIL_THROWS makes fail()
/// throw FailError instead, and the extern "C" shim catches it at the
/// library boundary and converts it into the session error state.
#ifdef TESSLA_CGEN_FAIL_THROWS
[[noreturn]] inline void fail(const char *Message) { throw FailError{Message}; }
#else
[[noreturn]] inline void fail(const char *Message) {
  std::fprintf(stderr, "monitor runtime error: %s\n", Message);
  std::abort();
}
#endif

inline int64_t checkedDiv(int64_t A, int64_t B) {
  if (B == 0)
    fail("integer division by zero");
  return A / B;
}
inline int64_t checkedMod(int64_t A, int64_t B) {
  if (B == 0)
    fail("integer modulo by zero");
  return A % B;
}

// --- getOrElse / get over both map representations ----------------------

template <typename K, typename V, typename H>
V getOrElse(const std::unordered_map<K, V, H> &M, const K &Key,
            const V &Default) {
  auto It = M.find(Key);
  return It == M.end() ? Default : It->second;
}
template <typename K, typename V, typename H>
V getOrElse(const HamtMap<K, V, H> &M, const K &Key, const V &Default) {
  const V *Found = M.find(Key);
  return Found ? *Found : Default;
}
template <typename K, typename V, typename H>
V mapGet(const std::unordered_map<K, V, H> &M, const K &Key) {
  auto It = M.find(Key);
  if (It == M.end())
    fail("mapGet: key not present");
  return It->second;
}
template <typename K, typename V, typename H>
V mapGet(const HamtMap<K, V, H> &M, const K &Key) {
  const V *Found = M.find(Key);
  if (!Found)
    fail("mapGet: key not present");
  return *Found;
}

// --- queue helpers -------------------------------------------------------

template <typename T> T queueFront(const std::deque<T> &Q) {
  if (Q.empty())
    fail("queueFront on empty queue");
  return Q.front();
}
template <typename T> T queueFront(const PQueue<T> &Q) {
  if (Q.empty())
    fail("queueFront on empty queue");
  return Q.front();
}
template <typename T> void queuePop(std::deque<T> &Q) {
  if (Q.empty())
    fail("queueDeq on empty queue");
  Q.pop_front();
}
template <typename T> PQueue<T> queuePopped(const PQueue<T> &Q) {
  if (Q.empty())
    fail("queueDeq on empty queue");
  return Q.dequeue();
}
template <typename T> PQueue<T> queueTrimmed(PQueue<T> Q, int64_t Bound) {
  if (Bound < 0)
    Bound = 0;
  while (Q.size() > static_cast<size_t>(Bound))
    Q = Q.dequeue();
  return Q;
}
template <typename T> void queueTrim(std::deque<T> &Q, int64_t Bound) {
  if (Bound < 0)
    Bound = 0;
  while (Q.size() > static_cast<size_t>(Bound))
    Q.pop_front();
}

// --- set union / difference across representations -----------------------

template <typename T, typename H>
std::vector<T> setItems(const std::unordered_set<T, H> &S) {
  return std::vector<T>(S.begin(), S.end());
}
template <typename T, typename H>
std::vector<T> setItems(const HamtSet<T, H> &S) {
  return S.items();
}

/// Destructive union/difference into a mutable set; the source is
/// materialized first, so degenerate self-application stays defined.
template <typename Dst, typename Src>
void setUnionInto(Dst &D, const Src &S) {
  for (auto &V : setItems(S))
    D.insert(V);
}
template <typename Dst, typename Src>
void setDiffInto(Dst &D, const Src &S) {
  for (auto &V : setItems(S))
    D.erase(V);
}

/// Persistent union/difference (source may use either representation —
/// arguments can come from different variable families).
template <typename T, typename H, typename Src>
HamtSet<T, H> setUnionOf(HamtSet<T, H> D, const Src &S) {
  for (auto &V : setItems(S))
    D = D.insert(V);
  return D;
}
template <typename T, typename H, typename Src>
HamtSet<T, H> setDiffOf(HamtSet<T, H> D, const Src &S) {
  for (auto &V : setItems(S))
    D = D.erase(V);
  return D;
}

// --- canonical rendering (matches tessla::Value::str()) ------------------

inline std::string str(UnitV) { return "()"; }
inline std::string str(bool B) { return B ? "true" : "false"; }
inline std::string str(int64_t I) { return std::to_string(I); }
inline std::string str(double D) { return formatDouble(D); }
inline std::string str(const std::string &S) {
  return "\"" + escapeString(S) + "\"";
}

// Elements are sorted by value (operator<), matching the canonical order
// tessla::Value::str() uses, then rendered.
template <typename Range> std::string strSorted(const Range &Items,
                                                char Open, char Close) {
  using Elem = std::decay_t<decltype(*std::begin(Items))>;
  std::vector<Elem> Sorted(std::begin(Items), std::end(Items));
  std::sort(Sorted.begin(), Sorted.end());
  std::vector<std::string> Parts;
  for (const auto &V : Sorted)
    Parts.push_back(str(V));
  std::string Out(1, Open);
  Out += join(Parts, ", ");
  Out += Close;
  return Out;
}

template <typename T, typename H>
std::string str(const std::unordered_set<T, H> &S) {
  return strSorted(S, '{', '}');
}
template <typename T, typename H>
std::string str(const std::shared_ptr<std::unordered_set<T, H>> &S) {
  return str(*S);
}
template <typename T, typename H> std::string str(const HamtSet<T, H> &S) {
  return strSorted(S.items(), '{', '}');
}

template <typename Pairs> std::string strMapItems(Pairs Items) {
  std::sort(Items.begin(), Items.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<std::string> Parts;
  for (const auto &[Key, Val] : Items)
    Parts.push_back(str(Key) + " -> " + str(Val));
  return "{" + join(Parts, ", ") + "}";
}

template <typename K, typename V, typename H>
std::string str(const std::unordered_map<K, V, H> &M) {
  return strMapItems(std::vector<std::pair<K, V>>(M.begin(), M.end()));
}
template <typename K, typename V, typename H>
std::string str(const std::shared_ptr<std::unordered_map<K, V, H>> &M) {
  return str(*M);
}
template <typename K, typename V, typename H>
std::string str(const HamtMap<K, V, H> &M) {
  return strMapItems(M.items());
}

template <typename T> std::string str(const std::deque<T> &Q) {
  std::vector<std::string> Parts;
  for (const auto &V : Q)
    Parts.push_back(str(V));
  return "<" + join(Parts, ", ") + ">";
}
template <typename T>
std::string str(const std::shared_ptr<std::deque<T>> &Q) {
  return str(*Q);
}
template <typename T> std::string str(const PQueue<T> &Q) {
  std::vector<std::string> Parts;
  Q.forEach([&Parts](const T &V) { Parts.push_back(str(V)); });
  return "<" + join(Parts, ", ") + ">";
}

} // namespace cgen
} // namespace tessla

#endif // TESSLA_CODEGEN_RUNTIMESUPPORT_H
