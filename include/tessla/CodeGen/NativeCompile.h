//===- tessla/CodeGen/NativeCompile.h - compiled execution tier *- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier: drives CodeGen/CppEmitter output (with the
/// tessla_native_* extern "C" shim) through the system C++ compiler into
/// a shared object, dlopen()s it, and wraps the entry points in a
/// ShardEngine so the fleet and the sequential tools can run compiled
/// monitors interchangeably with the interpreter engines.
///
/// ## Build pipeline
///
/// compileNative() is hermetic and cached:
///
///   1. The Program is serialized (deterministic .tpb bytes) and
///      checksummed (FNV-1a-64). The cache key mixes that checksum with
///      the shim ABI version and the compiler + flags string, so a
///      toolchain change never resurrects a stale binary.
///   2. On a cache miss the shim translation unit is emitted into a
///      fresh mkdtemp() directory, compiled there (-fPIC -shared), and
///      the resulting .so is rename()d into the cache — concurrent
///      builders race benignly toward identical bytes.
///   3. The library is dlopen()ed and verified: tessla_native_abi()
///      must match NativeShimAbiVersion and tessla_native_checksum()
///      must match the Program's checksum. A cached file that fails
///      verification (corrupt, or copied from another program's slot)
///      is unlinked and rebuilt once.
///
/// Every failure — no compiler on PATH, compiler error, dlopen/verify
/// failure — is reported as a diagnostic string so callers can fall
/// back to the interpreter instead of dying.
///
/// ## Environment
///
///   TESSLA_NATIVE_CXX        compiler to invoke (default: the compiler
///                            that built this library, then `c++`)
///   TESSLA_NATIVE_CACHE_DIR  cache directory (default:
///                            $TMPDIR/tessla-native-cache)
///   TESSLA_NATIVE_INCLUDE    include root holding tessla/CodeGen/
///                            RuntimeSupport.h (default: baked in at
///                            build time)
///
/// ## Migration contract
///
/// The native engine does not implement extractLane()/insertLane():
/// monitor state lives inside the shared object behind an opaque
/// instance pointer, so supportsMigration() is false, the fleet's work
/// stealing is inert for native shards, and FleetMode::Auto never
/// switches into (or out of) the native tier. Everything else of the
/// ShardEngine contract — feed validation order, error texts, output
/// bytes, output counting without a handler — is byte-identical to
/// Monitor; the host side re-runs Monitor::feed's checks before
/// crossing the C boundary because the generated feed keeps only a
/// weaker ordering backstop.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_CODEGEN_NATIVECOMPILE_H
#define TESSLA_CODEGEN_NATIVECOMPILE_H

#include "tessla/Program/Program.h"
#include "tessla/Runtime/ExecutionEngine.h"

#include <memory>
#include <string>

namespace tessla {

struct NativeCompileOptions {
  /// Compiler executable; empty means $TESSLA_NATIVE_CXX, then the
  /// build-time default, then "c++".
  std::string Compiler;
  /// Cache directory; empty means $TESSLA_NATIVE_CACHE_DIR, then
  /// $TMPDIR/tessla-native-cache.
  std::string CacheDir;
  /// Extra compiler flags, appended after the defaults (and salted into
  /// the cache key).
  std::string ExtraFlags;
  /// Rebuild even when the cache holds a verified binary.
  bool Force = false;
};

/// A dlopen()d native monitor library with its entry points resolved.
/// Engines share ownership so dlclose() cannot run while any live
/// session still executes code from the object.
class NativeMonitorLibrary {
public:
  ~NativeMonitorLibrary();
  NativeMonitorLibrary(const NativeMonitorLibrary &) = delete;
  NativeMonitorLibrary &operator=(const NativeMonitorLibrary &) = delete;

  /// Resolved tessla_native_* entry points (see the shim emitted by
  /// CppEmitterOptions::EmitNativeShim).
  using OutputFn = void (*)(void *Ctx, int64_t Ts, const char *Stream,
                            const char *Value);
  void *(*create)(OutputFn Fn, void *Ctx) = nullptr;
  int32_t (*feed)(void *Inst, int32_t Input, int64_t Ts, int64_t IntV,
                  double FloatV, const char *StrV, int32_t BoolV) = nullptr;
  int32_t (*finish)(void *Inst, int64_t Horizon, int32_t HasHorizon) = nullptr;
  const char *(*error)(void *Inst) = nullptr;
  uint64_t (*numOutputs)(void *Inst) = nullptr;
  void (*destroy)(void *Inst) = nullptr;
  int32_t (*numInputs)() = nullptr;
  const char *(*inputName)(int32_t Idx) = nullptr;

  /// The Program checksum the library was built from (== the stamp the
  /// loader verified).
  uint64_t checksum() const { return Checksum; }
  /// Path of the cached shared object.
  const std::string &path() const { return Path; }

  /// dlopen()s \p Path, resolves the entry points and verifies the ABI
  /// version and the \p WantChecksum stamp. Returns nullptr with a
  /// diagnostic on any failure. compileNative() treats a verification
  /// failure on a cached file as "stale: rebuild".
  static std::shared_ptr<NativeMonitorLibrary>
  open(const std::string &Path, uint64_t WantChecksum,
       std::string &ErrorOut);

private:
  NativeMonitorLibrary() = default;

  void *Handle = nullptr;
  uint64_t Checksum = 0;
  std::string Path;
};

/// The cache slot compileNative() would use for \p P under \p Opts —
/// exposed so tests can plant stale or corrupt binaries.
std::string nativeCachePathFor(const Program &P,
                               const NativeCompileOptions &Opts);

/// Emits, compiles, caches, loads and verifies the native monitor for
/// \p P. Returns nullptr with a one-line diagnostic in \p ErrorOut on
/// any failure (callers fall back to an interpreter engine).
std::shared_ptr<NativeMonitorLibrary>
compileNative(const Program &P, const NativeCompileOptions &Opts,
              std::string &ErrorOut);

/// Wraps a loaded library in an EngineFactory for FleetOptions::
/// NativeFactory or runEngineSingle(). The factory (and every engine it
/// makes) keeps the library alive.
EngineFactory makeNativeEngineFactory(std::shared_ptr<NativeMonitorLibrary> Lib);

/// Convenience: compileNative() + makeNativeEngineFactory(). Returns an
/// empty factory with a diagnostic when compilation fails.
EngineFactory makeNativeEngineFactory(const Program &P,
                                      const NativeCompileOptions &Opts,
                                      std::string &ErrorOut);

} // namespace tessla

#endif // TESSLA_CODEGEN_NATIVECOMPILE_H
