//===- tessla/CodeGen/CppEmitter.h - C++ monitor emission ------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a lowered Program as a standalone C++ monitor class — the
/// paper's translation scheme (§III) with the aggregate update
/// optimization (§IV) applied: one typed variable per stream, the
/// calculation section in the program's step order, destructive container
/// updates for mutable families and persistent structures for the rest.
/// (The paper's implementation emits Scala; §I notes "the same scheme
/// could also be used for translation to other imperative languages".)
///
/// The emitter consumes the same Program IR the interpreter executes
/// (see tessla/Program/Program.h), so both backends follow one lowering.
///
/// Generated code depends only on tessla/CodeGen/RuntimeSupport.h (and
/// through it on the persistent containers).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_CODEGEN_CPPEMITTER_H
#define TESSLA_CODEGEN_CPPEMITTER_H

#include "tessla/Program/Program.h"
#include "tessla/Support/Diagnostics.h"

#include <optional>
#include <string>

namespace tessla {

/// Options for emitCppMonitor().
struct CppEmitterOptions {
  std::string ClassName = "GeneratedMonitor";
  /// Also emit a main() that reads a textual trace from stdin and prints
  /// outputs — makes the generated file a complete tool.
  bool EmitMain = false;
  /// Instead of the stdin driver, emit a self-measuring benchmark main:
  /// `./monitor <count> <domain> <seed>` feeds uniform random Int events
  /// into the first input stream at timestamps 1..count, counts outputs,
  /// and prints the elapsed monitoring seconds — the compiled-monitor
  /// analogue of the paper's synthetic evaluation (trace "generated in
  /// memory during the benchmark's execution", artifact appendix).
  /// Requires exactly one Int-typed input. Overrides EmitMain.
  bool EmitBenchMain = false;
  /// Emit the `tessla_native_*` extern "C" entry points so the file can
  /// be compiled into a shared object and dlopen'd by the native
  /// execution engine (CodeGen/NativeCompile.h). Implies throwing
  /// failure handling (TESSLA_CGEN_FAIL_THROWS) so a monitor runtime
  /// error surfaces as a recoverable per-instance error string —
  /// rendered `at t=<ts>, stream '<name>': <msg>`, byte-identical to
  /// Monitor::failAt — instead of abort()ing the host process.
  /// Incompatible with EmitMain/EmitBenchMain (the shim is the driver).
  bool EmitNativeShim = false;
  /// Program checksum stamped into the shim (tessla_native_checksum());
  /// the loader rejects a cached .so whose stamp does not match the
  /// Program it is about to serve. Only read when EmitNativeShim.
  uint64_t ShimChecksum = 0;
};

/// ABI version of the emitted native shim; tessla_native_abi() returns
/// this and the loader refuses anything else. Bump on any change to the
/// extern "C" surface below.
inline constexpr int64_t NativeShimAbiVersion = 1;

/// Emits \p P as a C++ translation unit, following the program's step
/// order and mutability set.
///
/// \returns the source text, or nullopt (with diagnostics) for the few
/// constructs the typed backend does not support (aggregate-typed inputs,
/// ordering/equality comparisons between aggregates).
std::optional<std::string> emitCppMonitor(const Program &P,
                                          const CppEmitterOptions &Opts,
                                          DiagnosticEngine &Diags);

} // namespace tessla

#endif // TESSLA_CODEGEN_CPPEMITTER_H
