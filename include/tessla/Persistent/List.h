//===- tessla/Persistent/List.h - Persistent cons list ---------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent singly-linked (cons) list with structural sharing. O(1) cons,
/// head and tail; the spine is shared between versions. Building block of
/// the two-list persistent queue (Persistent/Queue.h) that the paper's
/// baseline uses for the Queue Window workload (§V-A).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PERSISTENT_LIST_H
#define TESSLA_PERSISTENT_LIST_H

#include "tessla/ADT/RefCntPtr.h"

#include <cassert>
#include <cstddef>

namespace tessla {

/// Immutable cons list. Copying a PList is O(1) (shares the spine).
template <typename T> class PList {
  struct Node : RefCountedBase<Node> {
    T Head;
    RefCntPtr<Node> Tail;
    size_t Size;

    Node(T Head, RefCntPtr<Node> Tail, size_t Size)
        : Head(std::move(Head)), Tail(std::move(Tail)), Size(Size) {}

    // Release the spine iteratively: the default (recursive) destruction
    // of long uniquely-owned chains would overflow the stack.
    ~Node() {
      RefCntPtr<Node> Cur = std::move(Tail);
      while (Cur && Cur.unique()) {
        RefCntPtr<Node> Next = std::move(Cur->Tail);
        Cur = std::move(Next); // drops the last ref; Tail already empty
      }
    }
  };

  RefCntPtr<Node> First;

  explicit PList(RefCntPtr<Node> First) : First(std::move(First)) {}

public:
  /// The empty list.
  PList() = default;

  bool empty() const { return !First; }
  size_t size() const { return First ? First->Size : 0; }

  /// Returns a new list with \p Value prepended. O(1).
  PList cons(T Value) const {
    return PList(makeRefCnt<Node>(std::move(Value), First, size() + 1));
  }

  /// First element. Precondition: !empty().
  const T &head() const {
    assert(First && "head of empty list");
    return First->Head;
  }

  /// List without the first element. Precondition: !empty(). O(1).
  PList tail() const {
    assert(First && "tail of empty list");
    return PList(First->Tail);
  }

  /// Returns the list reversed. O(n).
  PList reverse() const {
    PList Out;
    for (const Node *N = First.get(); N; N = N->Tail.get())
      Out = Out.cons(N->Head);
    return Out;
  }

  /// Calls \p Fn on each element front to back.
  template <typename Fn> void forEach(Fn &&Callback) const {
    for (const Node *N = First.get(); N; N = N->Tail.get())
      Callback(N->Head);
  }

  /// Walks the spine nodes for memory accounting. Callback(node pointer,
  /// resident bytes, refcount) returns true to keep walking — false stops,
  /// so a cross-value walker can cut off at the first already-visited node
  /// (the rest of the spine was visited through the same share).
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    for (const Node *N = First.get(); N; N = N->Tail.get())
      if (!Callback(static_cast<const void *>(N), sizeof(Node),
                    static_cast<uint32_t>(N->useCount())))
        return;
  }

  /// Structural equality (element-wise ==). O(n), O(1) when spines shared.
  friend bool operator==(const PList &A, const PList &B) {
    const Node *X = A.First.get(), *Y = B.First.get();
    while (X != Y) {
      if (!X || !Y || !(X->Head == Y->Head))
        return false;
      X = X->Tail.get();
      Y = Y->Tail.get();
    }
    return true;
  }

  /// Minimal forward iterator (enough for range-for in tests).
  class iterator {
    const Node *N = nullptr;

  public:
    iterator() = default;
    explicit iterator(const Node *N) : N(N) {}
    const T &operator*() const { return N->Head; }
    iterator &operator++() {
      N = N->Tail.get();
      return *this;
    }
    bool operator==(const iterator &O) const { return N == O.N; }
  };

  iterator begin() const { return iterator(First.get()); }
  iterator end() const { return iterator(); }
};

} // namespace tessla

#endif // TESSLA_PERSISTENT_LIST_H
