//===- tessla/Persistent/Queue.h - Persistent two-list queue ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent FIFO queue described in the paper's evaluation (§V-A):
/// "two lists, one is used for appending elements, the other one for
/// removing elements; if the list for removing elements runs empty the
/// other one is reverted". Enqueue is O(1); dequeue is amortized O(1) with
/// an O(n) reversal when the front list runs dry. The paper observes this
/// structure loses less against its mutable counterpart than the HAMT does
/// — the Queue Window speedups in Fig. 9 depend on exactly this design.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PERSISTENT_QUEUE_H
#define TESSLA_PERSISTENT_QUEUE_H

#include "tessla/Persistent/List.h"

namespace tessla {

/// Immutable FIFO queue. Copying is O(1).
template <typename T> class PQueue {
  PList<T> Front; // dequeue side
  PList<T> Back;  // enqueue side, stored reversed

  PQueue(PList<T> Front, PList<T> Back)
      : Front(std::move(Front)), Back(std::move(Back)) {}

public:
  PQueue() = default;

  bool empty() const { return Front.empty() && Back.empty(); }
  size_t size() const { return Front.size() + Back.size(); }

  /// Returns a new queue with \p Value appended at the back. O(1).
  PQueue enqueue(T Value) const {
    return PQueue(Front, Back.cons(std::move(Value)));
  }

  /// Oldest element. Precondition: !empty(). O(n) worst case when the
  /// front list is empty (peek must look at the bottom of Back).
  const T &front() const {
    assert(!empty() && "front of empty queue");
    if (!Front.empty())
      return Front.head();
    // Reach the last element of Back (== first enqueued).
    PList<T> Cur = Back;
    while (!Cur.tail().empty())
      Cur = Cur.tail();
    return Cur.head();
  }

  /// Returns the queue without its oldest element. Precondition: !empty().
  /// Amortized O(1): when Front runs empty, Back is reversed once.
  PQueue dequeue() const {
    assert(!empty() && "dequeue of empty queue");
    if (!Front.empty())
      return PQueue(Front.tail(), Back);
    PList<T> Reversed = Back.reverse();
    return PQueue(Reversed.tail(), PList<T>());
  }

  /// Calls \p Fn on each element oldest-to-newest.
  template <typename Fn> void forEach(Fn &&Callback) const {
    Front.forEach(Callback);
    Back.reverse().forEach(Callback);
  }

  /// Walks both spines' nodes for memory accounting (see PList).
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    Front.forEachNode(Callback);
    Back.forEachNode(Callback);
  }

  /// Element-wise equality in queue order. O(n).
  friend bool operator==(const PQueue &A, const PQueue &B) {
    if (A.size() != B.size())
      return false;
    PQueue X = A, Y = B;
    while (!X.empty()) {
      if (!(X.front() == Y.front()))
        return false;
      X = X.dequeue();
      Y = Y.dequeue();
    }
    return true;
  }
};

} // namespace tessla

#endif // TESSLA_PERSISTENT_QUEUE_H
