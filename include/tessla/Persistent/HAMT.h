//===- tessla/Persistent/HAMT.h - Hash-array mapped trie -------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent hash map/set as a bitmap-compressed hash-array mapped trie
/// (HAMT), following Bagwell's "Ideal Hash Trees" and the compaction rules
/// of Steindorfer & Vinju's CHAMP — the paper's references [24] and [25],
/// and the structure behind Scala's immutable HashSet/HashMap that the
/// paper's baseline monitors use.
///
/// Updates copy the O(log32 n) path from the root and share everything
/// else; old versions remain valid and unchanged. This "restructuring
/// after a modification" is precisely the overhead the aggregate-update
/// optimization removes for mutable variables (§V-A).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_PERSISTENT_HAMT_H
#define TESSLA_PERSISTENT_HAMT_H

#include "tessla/ADT/RefCntPtr.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <variant>
#include <vector>

// GCC's -Wmaybe-uninitialized mis-fires on std::vector::insert of variant
// entries holding RefCntPtr alternatives (the element-shifting moves read
// "uninitialized" freshly-grown slots). The code is sound; silence the
// false positive for this header.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace tessla {

/// Persistent hash map with structural sharing. Copying is O(1).
///
/// \tparam K key type (copyable, hashable via \p Hash, comparable via \p Eq)
/// \tparam V mapped type (copyable)
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class HamtMap {
  static constexpr unsigned BitsPerLevel = 5;
  static constexpr uint64_t LevelMask = 31;
  // With a 64-bit hash, shifts 0,5,...,60 are usable; below that, equal
  // hashes collide into a collision node.
  static constexpr unsigned MaxShift = 60;

  struct Node;

  struct Leaf {
    K Key;
    V Val;
  };

  // An entry of a bitmap node: inline key/value pair or a subtree.
  using Entry = std::variant<Leaf, RefCntPtr<Node>>;

  struct Node : RefCountedBase<Node> {
    // Bitmap nodes: Bitmap has one bit per occupied branch and Entries is
    // popcount(Bitmap) long. Collision nodes: Bitmap == 0, Collision true,
    // all Entries are leaves whose keys share CollisionHash.
    uint32_t Bitmap = 0;
    bool Collision = false;
    uint64_t CollisionHash = 0;
    std::vector<Entry> Entries;
  };

  using NodePtr = RefCntPtr<Node>;

  NodePtr Root;
  size_t Count = 0;

  HamtMap(NodePtr Root, size_t Count) : Root(std::move(Root)), Count(Count) {}

  static uint32_t bitpos(uint64_t HashValue, unsigned Shift) {
    return uint32_t{1} << ((HashValue >> Shift) & LevelMask);
  }
  static unsigned sparseIndex(uint32_t Bitmap, uint32_t Bit) {
    return std::popcount(Bitmap & (Bit - 1));
  }

  static NodePtr singleLeafNode(Leaf L, uint64_t HashValue, unsigned Shift) {
    NodePtr N = makeRefCnt<Node>();
    N->Bitmap = bitpos(HashValue, Shift);
    N->Entries.push_back(std::move(L));
    return N;
  }

  /// Builds the smallest subtree containing two distinct keys.
  static NodePtr mergeLeaves(Leaf A, uint64_t HashA, Leaf B, uint64_t HashB,
                             unsigned Shift) {
    if (Shift > MaxShift || HashA == HashB) {
      assert(HashA == HashB && "hash fragments exhausted before full hash");
      NodePtr N = makeRefCnt<Node>();
      N->Collision = true;
      N->CollisionHash = HashA;
      N->Entries.push_back(std::move(A));
      N->Entries.push_back(std::move(B));
      return N;
    }
    uint32_t BitA = bitpos(HashA, Shift), BitB = bitpos(HashB, Shift);
    NodePtr N = makeRefCnt<Node>();
    if (BitA == BitB) {
      N->Bitmap = BitA;
      N->Entries.push_back(mergeLeaves(std::move(A), HashA, std::move(B),
                                       HashB, Shift + BitsPerLevel));
      return N;
    }
    N->Bitmap = BitA | BitB;
    if (BitA < BitB) {
      N->Entries.push_back(std::move(A));
      N->Entries.push_back(std::move(B));
    } else {
      N->Entries.push_back(std::move(B));
      N->Entries.push_back(std::move(A));
    }
    return N;
  }

  const V *findImpl(const Node *N, uint64_t HashValue, unsigned Shift,
                    const K &Key) const {
    while (N) {
      if (N->Collision) {
        if (N->CollisionHash != HashValue)
          return nullptr;
        for (const Entry &E : N->Entries) {
          const Leaf &L = std::get<Leaf>(E);
          if (Eq{}(L.Key, Key))
            return &L.Val;
        }
        return nullptr;
      }
      uint32_t Bit = bitpos(HashValue, Shift);
      if (!(N->Bitmap & Bit))
        return nullptr;
      const Entry &E = N->Entries[sparseIndex(N->Bitmap, Bit)];
      if (const Leaf *L = std::get_if<Leaf>(&E))
        return Eq{}(L->Key, Key) ? &L->Val : nullptr;
      N = std::get<NodePtr>(E).get();
      Shift += BitsPerLevel;
    }
    return nullptr;
  }

  // Returns the new subtree; sets Added=true when the key was new.
  static NodePtr insertImpl(const Node *N, uint64_t HashValue, unsigned Shift,
                            Leaf NewLeaf, bool &Added) {
    if (!N) {
      Added = true;
      return singleLeafNode(std::move(NewLeaf), HashValue, Shift);
    }
    if (N->Collision) {
      if (N->CollisionHash == HashValue) {
        NodePtr Copy = makeRefCnt<Node>(*N);
        for (Entry &E : Copy->Entries) {
          Leaf &L = std::get<Leaf>(E);
          if (Eq{}(L.Key, NewLeaf.Key)) {
            L.Val = std::move(NewLeaf.Val);
            Added = false;
            return Copy;
          }
        }
        Copy->Entries.push_back(std::move(NewLeaf));
        Added = true;
        return Copy;
      }
      // Hashes differ: split by pushing the collision node one level down.
      // (Can only happen when Shift <= MaxShift, since equal 64-bit hashes
      // are required to reach a collision node below MaxShift.)
      NodePtr Parent = makeRefCnt<Node>();
      Parent->Bitmap = bitpos(N->CollisionHash, Shift);
      Parent->Entries.push_back(NodePtr(const_cast<Node *>(N)));
      return insertImpl(Parent.get(), HashValue, Shift, std::move(NewLeaf),
                        Added);
    }
    uint32_t Bit = bitpos(HashValue, Shift);
    unsigned Idx = sparseIndex(N->Bitmap, Bit);
    NodePtr Copy = makeRefCnt<Node>(*N);
    if (!(N->Bitmap & Bit)) {
      Copy->Bitmap |= Bit;
      Copy->Entries.insert(Copy->Entries.begin() + Idx, std::move(NewLeaf));
      Added = true;
      return Copy;
    }
    Entry &E = Copy->Entries[Idx];
    if (Leaf *L = std::get_if<Leaf>(&E)) {
      if (Eq{}(L->Key, NewLeaf.Key)) {
        L->Val = std::move(NewLeaf.Val);
        Added = false;
        return Copy;
      }
      // Move the existing leaf out before overwriting the variant slot it
      // lives in.
      Leaf Existing = std::move(*L);
      uint64_t ExistingHash = Hash{}(Existing.Key);
      E = mergeLeaves(std::move(Existing), ExistingHash, std::move(NewLeaf),
                      HashValue, Shift + BitsPerLevel);
      Added = true;
      return Copy;
    }
    E = insertImpl(std::get<NodePtr>(E).get(), HashValue,
                   Shift + BitsPerLevel, std::move(NewLeaf), Added);
    return Copy;
  }

  // Result of a recursive erase: unchanged, removed-with-new-subtree,
  // removed-and-collapsed-to-single-leaf, or removed-and-now-empty.
  struct EraseResult {
    bool Removed = false;
    bool IsLeaf = false;
    bool Empty = false;
    NodePtr N;
    Leaf L{};
  };

  static EraseResult eraseImpl(const Node *N, uint64_t HashValue,
                               unsigned Shift, const K &Key) {
    EraseResult R;
    if (!N)
      return R;
    if (N->Collision) {
      if (N->CollisionHash != HashValue)
        return R;
      for (size_t I = 0, E = N->Entries.size(); I != E; ++I) {
        const Leaf &L = std::get<Leaf>(N->Entries[I]);
        if (!Eq{}(L.Key, Key))
          continue;
        R.Removed = true;
        if (N->Entries.size() == 2) {
          // Lift the surviving leaf into the parent.
          R.IsLeaf = true;
          R.L = std::get<Leaf>(N->Entries[I ^ 1]);
          return R;
        }
        NodePtr Copy = makeRefCnt<Node>(*N);
        Copy->Entries.erase(Copy->Entries.begin() + I);
        R.N = std::move(Copy);
        return R;
      }
      return R;
    }
    uint32_t Bit = bitpos(HashValue, Shift);
    if (!(N->Bitmap & Bit))
      return R;
    unsigned Idx = sparseIndex(N->Bitmap, Bit);
    const Entry &E = N->Entries[Idx];
    if (const Leaf *L = std::get_if<Leaf>(&E)) {
      if (!Eq{}(L->Key, Key))
        return R;
      R.Removed = true;
      if (N->Entries.size() == 1) {
        R.Empty = true;
        return R;
      }
      if (N->Entries.size() == 2 && Shift > 0) {
        // If the sibling is a leaf, collapse this node into it.
        if (const Leaf *Sibling =
                std::get_if<Leaf>(&N->Entries[Idx ^ 1])) {
          R.IsLeaf = true;
          R.L = *Sibling;
          return R;
        }
      }
      NodePtr Copy = makeRefCnt<Node>(*N);
      Copy->Bitmap &= ~Bit;
      Copy->Entries.erase(Copy->Entries.begin() + Idx);
      R.N = std::move(Copy);
      return R;
    }
    EraseResult Sub = eraseImpl(std::get<NodePtr>(E).get(), HashValue,
                                Shift + BitsPerLevel, Key);
    if (!Sub.Removed)
      return R;
    R.Removed = true;
    NodePtr Copy = makeRefCnt<Node>(*N);
    if (Sub.IsLeaf) {
      if (N->Entries.size() == 1 && Shift > 0) {
        // Propagate the lone leaf further up.
        R.IsLeaf = true;
        R.L = std::move(Sub.L);
        return R;
      }
      Copy->Entries[Idx] = std::move(Sub.L);
    } else {
      assert(!Sub.Empty && "child erase cannot empty a subtree");
      Copy->Entries[Idx] = std::move(Sub.N);
    }
    R.N = std::move(Copy);
    return R;
  }

  template <typename Fn> static void forEachImpl(const Node *N, Fn &Callback) {
    if (!N)
      return;
    for (const Entry &E : N->Entries) {
      if (const Leaf *L = std::get_if<Leaf>(&E))
        Callback(L->Key, L->Val);
      else
        forEachImpl(std::get<NodePtr>(E).get(), Callback);
    }
  }

  // Transient insert: mutates uniquely-owned nodes in place and falls back
  // to the persistent path-copy (insertImpl) the moment a shared node is
  // reached. Taking \p N by value preserves the caller's reference while
  // the uniqueness check runs; copied nodes retain their children, so a
  // subtree reachable from any other root can never be mutated.
  static NodePtr insertMutImpl(NodePtr N, uint64_t HashValue, unsigned Shift,
                               Leaf NewLeaf, bool &Added) {
    if (!N) {
      Added = true;
      return singleLeafNode(std::move(NewLeaf), HashValue, Shift);
    }
    if (!N.unique())
      return insertImpl(N.get(), HashValue, Shift, std::move(NewLeaf), Added);
    Node *M = N.get();
    if (M->Collision) {
      if (M->CollisionHash == HashValue) {
        for (Entry &E : M->Entries) {
          Leaf &L = std::get<Leaf>(E);
          if (Eq{}(L.Key, NewLeaf.Key)) {
            L.Val = std::move(NewLeaf.Val);
            Added = false;
            return N;
          }
        }
        M->Entries.push_back(std::move(NewLeaf));
        Added = true;
        return N;
      }
      NodePtr Parent = makeRefCnt<Node>();
      Parent->Bitmap = bitpos(M->CollisionHash, Shift);
      Parent->Entries.push_back(std::move(N));
      return insertMutImpl(std::move(Parent), HashValue, Shift,
                           std::move(NewLeaf), Added);
    }
    uint32_t Bit = bitpos(HashValue, Shift);
    unsigned Idx = sparseIndex(M->Bitmap, Bit);
    if (!(M->Bitmap & Bit)) {
      M->Bitmap |= Bit;
      M->Entries.insert(M->Entries.begin() + Idx, std::move(NewLeaf));
      Added = true;
      return N;
    }
    Entry &E = M->Entries[Idx];
    if (Leaf *L = std::get_if<Leaf>(&E)) {
      if (Eq{}(L->Key, NewLeaf.Key)) {
        L->Val = std::move(NewLeaf.Val);
        Added = false;
        return N;
      }
      Leaf Existing = std::move(*L);
      uint64_t ExistingHash = Hash{}(Existing.Key);
      E = mergeLeaves(std::move(Existing), ExistingHash, std::move(NewLeaf),
                      HashValue, Shift + BitsPerLevel);
      Added = true;
      return N;
    }
    NodePtr Child = std::move(std::get<NodePtr>(E));
    E = insertMutImpl(std::move(Child), HashValue, Shift + BitsPerLevel,
                      std::move(NewLeaf), Added);
    return N;
  }

  // Transient erase. \p Slot is the owning reference being erased through:
  // on a plain removal the new subtree is installed into it (in place when
  // uniquely owned, path-copied otherwise); collapse results (IsLeaf,
  // Empty) are reported to the caller exactly like eraseImpl, leaving the
  // caller to replace its entry.
  static EraseResult eraseMutImpl(NodePtr &Slot, uint64_t HashValue,
                                  unsigned Shift, const K &Key) {
    EraseResult R;
    Node *N = Slot.get();
    if (!N)
      return R;
    if (!Slot.unique()) {
      EraseResult S = eraseImpl(N, HashValue, Shift, Key);
      if (S.Removed && !S.IsLeaf && !S.Empty)
        Slot = std::move(S.N);
      R.Removed = S.Removed;
      R.IsLeaf = S.IsLeaf;
      R.Empty = S.Empty;
      R.L = std::move(S.L);
      return R;
    }
    if (N->Collision) {
      if (N->CollisionHash != HashValue)
        return R;
      for (size_t I = 0, E = N->Entries.size(); I != E; ++I) {
        const Leaf &L = std::get<Leaf>(N->Entries[I]);
        if (!Eq{}(L.Key, Key))
          continue;
        R.Removed = true;
        if (N->Entries.size() == 2) {
          R.IsLeaf = true;
          R.L = std::move(std::get<Leaf>(N->Entries[I ^ 1]));
          return R;
        }
        N->Entries.erase(N->Entries.begin() + I);
        return R;
      }
      return R;
    }
    uint32_t Bit = bitpos(HashValue, Shift);
    if (!(N->Bitmap & Bit))
      return R;
    unsigned Idx = sparseIndex(N->Bitmap, Bit);
    Entry &E = N->Entries[Idx];
    if (Leaf *L = std::get_if<Leaf>(&E)) {
      if (!Eq{}(L->Key, Key))
        return R;
      R.Removed = true;
      if (N->Entries.size() == 1) {
        R.Empty = true;
        return R;
      }
      if (N->Entries.size() == 2 && Shift > 0) {
        if (Leaf *Sibling = std::get_if<Leaf>(&N->Entries[Idx ^ 1])) {
          R.IsLeaf = true;
          R.L = std::move(*Sibling);
          return R;
        }
      }
      N->Bitmap &= ~Bit;
      N->Entries.erase(N->Entries.begin() + Idx);
      return R;
    }
    NodePtr &Child = std::get<NodePtr>(E);
    EraseResult Sub = eraseMutImpl(Child, HashValue, Shift + BitsPerLevel,
                                   Key);
    if (!Sub.Removed)
      return R;
    R.Removed = true;
    assert(!Sub.Empty && "child erase cannot empty a subtree");
    if (Sub.IsLeaf) {
      if (N->Entries.size() == 1 && Shift > 0) {
        R.IsLeaf = true;
        R.L = std::move(Sub.L);
        return R;
      }
      E = std::move(Sub.L);
    }
    return R;
  }

  // Node walk for memory accounting. Callback(node pointer, resident
  // bytes, refcount) returns true to descend into the node's children —
  // returning false lets a cross-value walker skip subtrees it has
  // already visited through another root.
  template <typename Fn>
  static void forEachNodeImpl(const Node *N, Fn &Callback) {
    if (!N)
      return;
    if (!Callback(static_cast<const void *>(N),
                  sizeof(Node) + N->Entries.capacity() * sizeof(Entry),
                  static_cast<uint32_t>(N->useCount())))
      return;
    for (const Entry &E : N->Entries)
      if (const NodePtr *C = std::get_if<NodePtr>(&E))
        forEachNodeImpl(C->get(), Callback);
  }

public:
  /// The empty map.
  HamtMap() = default;

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  /// Pointer to the value mapped to \p Key, or nullptr. O(log32 n).
  const V *find(const K &Key) const {
    return findImpl(Root.get(), Hash{}(Key), 0, Key);
  }

  bool contains(const K &Key) const { return find(Key) != nullptr; }

  /// Returns a map where \p Key maps to \p Value (inserted or replaced).
  /// This map is unchanged. O(log32 n) copied nodes.
  HamtMap set(K Key, V Value) const {
    bool Added = false;
    // Hash before building the Leaf: the move must not race the hashing
    // within one argument list (evaluation order is unspecified).
    uint64_t H = Hash{}(Key);
    NodePtr NewRoot = insertImpl(
        Root.get(), H, 0, Leaf{std::move(Key), std::move(Value)}, Added);
    return HamtMap(std::move(NewRoot), Count + (Added ? 1 : 0));
  }

  /// Returns a map without \p Key (unchanged copy if absent).
  HamtMap erase(const K &Key) const {
    EraseResult R = eraseImpl(Root.get(), Hash{}(Key), 0, Key);
    if (!R.Removed)
      return *this;
    if (R.Empty)
      return HamtMap();
    if (R.IsLeaf) {
      uint64_t H = Hash{}(R.L.Key);
      return HamtMap(singleLeafNode(std::move(R.L), H, 0), Count - 1);
    }
    return HamtMap(std::move(R.N), Count - 1);
  }

  /// Transient insert-or-replace: mutates this map, reusing every node
  /// this map owns exclusively and path-copying shared ones. Other maps
  /// sharing structure with this one are never affected. O(log32 n).
  void setMut(K Key, V Value) {
    bool Added = false;
    uint64_t H = Hash{}(Key);
    Root = insertMutImpl(std::move(Root), H, 0,
                         Leaf{std::move(Key), std::move(Value)}, Added);
    if (Added)
      ++Count;
  }

  /// Transient erase with the same sharing discipline as setMut.
  /// Returns true when the key was present.
  bool eraseMut(const K &Key) {
    EraseResult R = eraseMutImpl(Root, Hash{}(Key), 0, Key);
    if (!R.Removed)
      return false;
    if (R.Empty) {
      Root.reset();
    } else if (R.IsLeaf) {
      uint64_t H = Hash{}(R.L.Key);
      Root = singleLeafNode(std::move(R.L), H, 0);
    }
    --Count;
    return true;
  }

  /// Calls Callback(key, value) for every entry (unspecified order).
  template <typename Fn> void forEach(Fn &&Callback) const {
    forEachImpl(Root.get(), Callback);
  }

  /// Walks the trie nodes for memory accounting; see forEachNodeImpl.
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    forEachNodeImpl(Root.get(), Callback);
  }

  /// Collects all entries into a vector (unspecified order).
  std::vector<std::pair<K, V>> items() const {
    std::vector<std::pair<K, V>> Out;
    Out.reserve(Count);
    forEach([&Out](const K &Key, const V &Val) {
      Out.emplace_back(Key, Val);
    });
    return Out;
  }
};

/// Persistent hash set on top of HamtMap.
template <typename K, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class HamtSet {
  struct Unit {};
  HamtMap<K, Unit, Hash, Eq> Map;

  explicit HamtSet(HamtMap<K, Unit, Hash, Eq> Map) : Map(std::move(Map)) {}

public:
  HamtSet() = default;

  bool empty() const { return Map.empty(); }
  size_t size() const { return Map.size(); }
  bool contains(const K &Key) const { return Map.contains(Key); }

  /// Returns a set containing \p Key.
  HamtSet insert(K Key) const { return HamtSet(Map.set(std::move(Key), {})); }
  /// Returns a set without \p Key.
  HamtSet erase(const K &Key) const { return HamtSet(Map.erase(Key)); }

  /// Transient insert/erase (see HamtMap::setMut/eraseMut).
  void insertMut(K Key) { Map.setMut(std::move(Key), {}); }
  bool eraseMut(const K &Key) { return Map.eraseMut(Key); }

  template <typename Fn> void forEach(Fn &&Callback) const {
    Map.forEach([&Callback](const K &Key, const auto &) { Callback(Key); });
  }

  /// Walks the trie nodes for memory accounting.
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    Map.forEachNode(std::forward<Fn>(Callback));
  }

  std::vector<K> items() const {
    std::vector<K> Out;
    Out.reserve(size());
    forEach([&Out](const K &Key) { Out.push_back(Key); });
    return Out;
  }
};

} // namespace tessla

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif // TESSLA_PERSISTENT_HAMT_H
