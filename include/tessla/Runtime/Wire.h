//===- tessla/Runtime/Wire.h - Service wire format -------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned binary wire format of the monitor service: how
/// EventBatches, checkpoints, outputs and control messages travel
/// between a FleetClient and a FleetServer over any byte-stream
/// transport (Runtime/Transport.h). Built on the same little-endian
/// primitives as the `.tpb`/`.tcp` artifacts (Program/BinaryCodec.h) and
/// decoded with the same untrusting discipline.
///
/// ## Framing
///
/// Every message is one frame:
///
///   offset 0   4  magic bytes 'T' 'W' 'F' 0x1A
///   offset 4   1  u8 frame type (FrameType)
///   offset 5   4  u32 payload size (<= WireMaxPayload)
///   offset 9   8  u64 FNV-1a-64 checksum of the payload bytes
///   offset 17  N  payload
///
/// The stream decoder (FrameDecoder) resynchronizes never: any malformed
/// header, oversized payload or checksum mismatch is a hard connection
/// error — a stream transport either delivers bytes intact and in order
/// or the connection is dead.
///
/// ## Conversation
///
/// Connections open with Hello (client) / HelloAck (server). The
/// HelloAck carries the server program's checksum so a client feeding
/// the wrong monitor fails fast, before any data frame.
///
///   Hello        c->s  u32 wire version
///   HelloAck     s->c  u32 wire version, u64 program checksum,
///                      u32 shard count
///   Batch        c->s  one EventBatch (records only; Seq/Close are
///                      fan-in internals assigned server-side)
///   Busy         s->c  u64 backlog hint — the shard rings are full;
///                      the batch IS still accepted (blocking feed), the
///                      frame surfaces the stall so clients can pace
///   Snapshot     c->s  (empty) checkpoint request
///   SnapshotAck  s->c  the serialized `.tcp` checkpoint bytes
///   Restore      c->s  serialized `.tcp` checkpoint bytes
///   RestoreAck   s->c  u64 lanes restored
///   Finish       c->s  u64 scope — FinishScopeProducer (0): this
///                      connection's producer is done, close its handle
///                      and ack; FinishScopeFleet (1): end-of-input for
///                      the whole fleet (every producer must be closed)
///   Outputs      s->c  a run of output records (session, ts, stream,
///                      value); zero or more precede a fleet FinishAck
///   FinishAck    s->c  u64 failed sessions, u64 total outputs (both
///                      zero for a producer-scope ack)
///   Stats        c->s  (empty) stats request
///   StatsAck     s->c  the rendered FleetStats::str() text
///   Error        s->c  human-readable string; the connection closes
///   Shutdown     c->s  (empty) stop the server process
///   ShutdownAck  s->c  (empty) acknowledged, server is exiting
///   ForkSession  c->s  u64 source session, u64 destination session —
///                      O(1) snapshot-fork of a live session's state
///                      into a new lane (structural sharing, no copy)
///   ForkAck      s->c  (empty) the fork was adopted
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_WIRE_H
#define TESSLA_RUNTIME_WIRE_H

#include "tessla/Runtime/TraceIO.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tessla {

/// Current wire format version. Bump on any frame-layout change.
constexpr uint32_t WireFormatVersion = 2;

/// The four magic bytes opening every frame.
constexpr uint8_t WireMagic[4] = {'T', 'W', 'F', 0x1A};

/// Frame header size: magic + type + payload size + payload checksum.
constexpr size_t WireHeaderSize = 17;

/// Hard per-frame payload cap — a hostile peer must not be able to make
/// the decoder allocate unbounded memory from one header.
constexpr uint32_t WireMaxPayload = 64u << 20;

/// Wire frame types (see the conversation table in the file comment).
enum class FrameType : uint8_t {
  Hello = 1,
  HelloAck = 2,
  Batch = 3,
  Busy = 4,
  Snapshot = 5,
  SnapshotAck = 6,
  Restore = 7,
  RestoreAck = 8,
  Finish = 9,
  Outputs = 10,
  FinishAck = 11,
  Stats = 12,
  StatsAck = 13,
  Error = 14,
  Shutdown = 15,
  ShutdownAck = 16,
  ForkSession = 17,
  ForkAck = 18,
};

/// Frame-type name for diagnostics ("Batch", "Busy", ...).
const char *frameTypeName(FrameType T);

/// Finish-frame scopes (u64 payload).
constexpr uint64_t FinishScopeProducer = 0;
constexpr uint64_t FinishScopeFleet = 1;

/// One decoded frame.
struct WireFrame {
  FrameType Type = FrameType::Error;
  std::vector<uint8_t> Payload;
};

/// Encodes one frame (header + payload), ready for Transport::send.
std::vector<uint8_t> encodeFrame(FrameType Type, const uint8_t *Payload,
                                 size_t Size);
std::vector<uint8_t> encodeFrame(FrameType Type,
                                 const std::vector<uint8_t> &Payload);

/// Incremental frame decoder over a byte stream: append() received
/// bytes, then next() until it returns nullopt. A malformed stream
/// (bad magic, unknown type, oversized payload, checksum mismatch)
/// poisons the decoder — failed() stays true and next() returns nullopt
/// forever; the connection must be dropped.
class FrameDecoder {
public:
  /// Appends received bytes.
  void append(const uint8_t *Data, size_t Size);

  /// Extracts the next complete frame; nullopt when more bytes are
  /// needed or the stream is poisoned (check failed()).
  std::optional<WireFrame> next();

  bool failed() const { return Failed; }
  const std::string &error() const { return Err; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0; // consumed prefix of Buf
  bool Failed = false;
  std::string Err;
};

// --- Payload codecs -------------------------------------------------------
//
// Each decode* treats its payload as hostile: bounds-checked reads,
// validated counts, nullopt + ErrorOut on any problem.

/// Batch: the records of one EventBatch (Seq/Close stay host-local).
std::vector<uint8_t> encodeEventBatch(const EventBatch &B);
std::optional<EventBatch> decodeEventBatch(const uint8_t *Data, size_t Size,
                                           std::string &ErrorOut);

/// Outputs: a run of session-attributed output events.
struct WireOutputRecord {
  SessionId Session = 0;
  Time Ts = 0;
  StreamId Stream = 0;
  Value V;
};
std::vector<uint8_t>
encodeOutputs(const std::vector<WireOutputRecord> &Events);
std::optional<std::vector<WireOutputRecord>>
decodeOutputs(const uint8_t *Data, size_t Size, std::string &ErrorOut);

/// Hello / HelloAck.
std::vector<uint8_t> encodeHello();
bool decodeHello(const uint8_t *Data, size_t Size, uint32_t &VersionOut,
                 std::string &ErrorOut);
struct WireHelloAck {
  uint32_t Version = 0;
  uint64_t ProgramChecksum = 0;
  uint32_t Shards = 0;
};
std::vector<uint8_t> encodeHelloAck(const WireHelloAck &A);
std::optional<WireHelloAck> decodeHelloAck(const uint8_t *Data, size_t Size,
                                           std::string &ErrorOut);

/// FinishAck.
struct WireFinishAck {
  uint64_t FailedSessions = 0;
  uint64_t TotalOutputs = 0;
};
std::vector<uint8_t> encodeFinishAck(const WireFinishAck &A);
std::optional<WireFinishAck> decodeFinishAck(const uint8_t *Data,
                                             size_t Size,
                                             std::string &ErrorOut);

/// Single-u64 payloads (Busy backlog hint, RestoreAck lane count).
std::vector<uint8_t> encodeU64(uint64_t V);
std::optional<uint64_t> decodeU64(const uint8_t *Data, size_t Size,
                                  std::string &ErrorOut);

/// ForkSession payload: source and destination session ids.
struct WireForkSession {
  SessionId Src = 0;
  SessionId Dst = 0;
};
std::vector<uint8_t> encodeForkSession(const WireForkSession &F);
std::optional<WireForkSession> decodeForkSession(const uint8_t *Data,
                                                 size_t Size,
                                                 std::string &ErrorOut);

/// String payloads (StatsAck, Error).
std::vector<uint8_t> encodeString(const std::string &S);
std::optional<std::string> decodeString(const uint8_t *Data, size_t Size,
                                        std::string &ErrorOut);

} // namespace tessla

#endif // TESSLA_RUNTIME_WIRE_H
