//===- tessla/Runtime/TraceIO.h - Textual event traces ---------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing TeSSLa-style textual traces, one event per line:
///
/// \code
///   0: i = 7
///   3: i = 9
///   3: ready = ()
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_TRACEIO_H
#define TESSLA_RUNTIME_TRACEIO_H

#include "tessla/Runtime/Monitor.h"
#include "tessla/Support/Diagnostics.h"

#include <tuple>

namespace tessla {

/// One parsed/generated input event.
using TraceEvent = std::tuple<StreamId, Time, Value>;

/// Parses a textual trace against \p S's input streams. Events must be
/// listed in non-decreasing timestamp order (checked by the monitor, not
/// here). Lines that are empty or start with '#'/"--" are skipped.
/// Returns nullopt and reports through \p Diags on malformed lines or
/// unknown stream names.
std::optional<std::vector<TraceEvent>>
parseTrace(std::string_view Text, const Spec &S, DiagnosticEngine &Diags);

/// Parses one scalar value literal (42, 1.5, true, "s", ()).
std::optional<Value> parseValueLiteral(std::string_view Text);

/// Renders one output event as "ts: name = value".
std::string formatEvent(const Spec &S, const OutputEvent &E);

/// Renders a whole output trace, one event per line.
std::string formatOutputs(const Spec &S,
                          const std::vector<OutputEvent> &Events);

} // namespace tessla

#endif // TESSLA_RUNTIME_TRACEIO_H
