//===- tessla/Runtime/TraceIO.h - Textual event traces ---------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing TeSSLa-style textual traces, one event per line:
///
/// \code
///   0: i = 7
///   3: i = 9
///   3: ready = ()
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_TRACEIO_H
#define TESSLA_RUNTIME_TRACEIO_H

#include "tessla/Runtime/Monitor.h"
#include "tessla/Support/Diagnostics.h"

#include <tuple>

namespace tessla {

/// One parsed/generated input event.
using TraceEvent = std::tuple<StreamId, Time, Value>;

/// Identifies one monitoring session (e.g. one user/connection) in the
/// multi-session runtime (Runtime/MonitorFleet.h). Single-session
/// helpers use session 0.
using SessionId = uint64_t;

/// One input record as it travels through the ingestion machinery: a
/// trace event attributed to its session. This is the single record
/// shape shared by the sequential replay helpers below and by the
/// fleet's producer rings — there is deliberately no second,
/// fleet-internal representation.
struct EventRecord {
  SessionId Session = 0;
  StreamId Input = 0;
  Time Ts = 0;
  Value V;
};

/// The shared ingestion batch: a run of records plus the two fields the
/// fleet's fan-in needs on the wire. `Seq` is the batch's position in
/// the fleet-wide hand-off order (monotone per producer; shards merge
/// producer rings by ascending Seq), `Close` marks a producer's
/// end-of-input sentinel. Sequential consumers ignore both.
struct EventBatch {
  std::vector<EventRecord> Records;
  uint64_t Seq = 0;
  bool Close = false;

  bool empty() const { return Records.empty(); }
  size_t size() const { return Records.size(); }
  void clear() {
    Records.clear();
    Close = false;
  }
};

/// Wraps time-ordered trace events into one batch attributed to
/// \p Session.
EventBatch toBatch(const std::vector<TraceEvent> &Events,
                   SessionId Session = 0);

/// Feeds every record of \p B into \p M in order (sessions are ignored;
/// the caller picked the monitor). Stops early and returns false once
/// the monitor fails.
bool feedBatch(Monitor &M, const EventBatch &B);

/// Runs one batch through a fresh monitor over \p Prog, collecting
/// deep-copied outputs — the EventBatch flavour of runMonitor()
/// (Runtime/Monitor.h).
std::vector<OutputEvent>
runMonitor(const Program &Prog, const EventBatch &Batch,
           std::optional<Time> Horizon = std::nullopt,
           std::string *ErrorOut = nullptr);

/// Parses a textual trace against \p S's input streams. Events must be
/// listed in non-decreasing timestamp order (checked by the monitor, not
/// here). Lines that are empty or start with '#'/"--" are skipped.
/// Returns nullopt and reports through \p Diags on malformed lines or
/// unknown stream names.
std::optional<std::vector<TraceEvent>>
parseTrace(std::string_view Text, const Spec &S, DiagnosticEngine &Diags);

/// Parses one scalar value literal (42, 1.5, true, "s", ()).
std::optional<Value> parseValueLiteral(std::string_view Text);

/// Parses one full value rendering as produced by Value::str(): scalars
/// plus sets "{1, 2}", maps "{1 -> 2}", queues "<1, 2>", arbitrarily
/// nested. Aggregates are rebuilt in the mutable representation, and
/// "{}" parses as an empty set (empty sets and maps render identically)
/// — callers compare renderings, not representations. The native tier
/// uses this to lift generated-monitor output text back into Values.
std::optional<Value> parseValueText(std::string_view Text);

/// Renders one output event as "ts: name = value".
std::string formatEvent(const Spec &S, const OutputEvent &E);

/// Renders a whole output trace, one event per line.
std::string formatOutputs(const Spec &S,
                          const std::vector<OutputEvent> &Events);

} // namespace tessla

#endif // TESSLA_RUNTIME_TRACEIO_H
