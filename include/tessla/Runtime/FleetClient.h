//===- tessla/Runtime/FleetClient.h - Unified session surface --*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one session-lifecycle surface every ingest path programs against:
/// open producers, feed records, checkpoint/restore live monitor state,
/// finish and collect outputs — identically whether the fleet runs in
/// this process (makeInProcessClient wraps MonitorFleet directly) or
/// behind a FleetServer on the far end of a transport (makeRemoteClient
/// speaks the Runtime/Wire.h frames). This replaces the old pattern of
/// tools talking to MonitorFleet::feed()/finish() directly.
///
/// Contract (all implementations):
///  - producer() opens an ingestion endpoint; any number may be open
///    concurrently, each used by one thread at a time.
///  - snapshot()/restore()/finish()/statsText() are control operations,
///    called from one controlling thread while NO producer is open —
///    they fail otherwise. snapshot() is *live*: it serializes the
///    current monitor state as a `.tcp` checkpoint and the fleet keeps
///    running (in-process this is suspend + rebuild + restore under the
///    hood). restore() injects checkpointed sessions and is only valid
///    before the first producer was opened on the current fleet state.
///  - finish() is terminal: end-of-input for every session, returns the
///    deterministic merged outputs and counters.
///
/// Backpressure: feed() always accepts (blocking when a shard ring is
/// full) but every stall is counted; busySignals() exposes the count —
/// remote producers learn it from wire-level Busy frames drained
/// opportunistically after each batch.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_FLEETCLIENT_H
#define TESSLA_RUNTIME_FLEETCLIENT_H

#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/Transport.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tessla {

/// One ingestion endpoint (the FleetClient face of ProducerHandle).
/// Close (or destroy) every producer before control operations.
class ClientProducer {
public:
  virtual ~ClientProducer() = default;

  /// Feeds one record. Blocks under backpressure (the stall is counted,
  /// never dropped). False on a closed endpoint or transport error —
  /// check error().
  virtual bool feed(SessionId Session, StreamId Input, Time Ts,
                    Value V) = 0;

  /// Hands off partially filled batches now.
  virtual bool flush() = 0;

  /// Flushes and signals this producer's end-of-input. Idempotent; the
  /// destructor calls it. False if the endpoint died early.
  virtual bool close() = 0;

  /// Backpressure stalls observed so far (remote: Busy frames received;
  /// final after close()).
  virtual uint64_t busySignals() const = 0;

  /// The first error this endpoint hit; empty while healthy.
  virtual const std::string &error() const = 0;
};

/// The result of FleetClient::finish().
struct FleetFinish {
  /// Deterministic merged output trace. A remote client receives these
  /// through Outputs frames; ordering is identical to the in-process
  /// MonitorFleet::takeOutputs().
  std::vector<SessionOutputEvent> Outputs;
  /// Failed sessions with diagnostics (in-process only; the wire carries
  /// the count, not the messages).
  std::vector<SessionError> Errors;
  uint64_t FailedSessions = 0;
  uint64_t TotalOutputs = 0;
};

/// The unified session-lifecycle surface (see the file comment).
class FleetClient {
public:
  virtual ~FleetClient() = default;

  /// Opens a new ingestion endpoint. Nullptr with \p ErrorOut set when
  /// the fleet is finished or out of producer slots.
  virtual std::unique_ptr<ClientProducer>
  producer(std::string *ErrorOut = nullptr) = 0;

  /// Live checkpoint: the current monitor state as `.tcp` bytes; the
  /// fleet keeps running with the same sessions. Requires all producers
  /// closed. Nullopt with \p ErrorOut set on failure (e.g. a
  /// non-migratable native engine).
  virtual std::optional<std::vector<uint8_t>>
  snapshot(std::string *ErrorOut = nullptr) = 0;

  /// Restores a `.tcp` checkpoint into the fleet; returns the number of
  /// lanes restored. Only valid before the first producer was opened.
  virtual std::optional<uint64_t>
  restore(const std::vector<uint8_t> &Checkpoint,
          std::string *ErrorOut = nullptr) = 0;

  /// O(1) snapshot-fork of live session \p Src into new session \p Dst
  /// (MonitorFleet::forkSession): the copy shares all aggregate state
  /// structurally under COW and diverges under its own input. A control
  /// operation — requires all producers closed, so the fork point is
  /// deterministic. False with \p ErrorOut set when \p Src is not live,
  /// \p Dst already is, or the engine cannot fork (native).
  virtual bool forkSession(SessionId Src, SessionId Dst,
                           std::string *ErrorOut = nullptr) = 0;

  /// Terminal end-of-input: finishes every session, returns outputs and
  /// counters. Requires all producers closed.
  virtual std::optional<FleetFinish>
  finish(std::string *ErrorOut = nullptr) = 0;

  /// The rendered fleet stats (ShardStats::str() per shard after a
  /// finish or snapshot; a one-line running summary before).
  virtual std::optional<std::string>
  statsText(std::string *ErrorOut = nullptr) = 0;

  /// Asks a remote server process to exit (no-op true in-process).
  virtual bool shutdownServer(std::string *ErrorOut = nullptr) = 0;
};

/// Wraps a MonitorFleet running in this process. \p Prog must outlive
/// the client. This is also the engine room of FleetServer — the server
/// is a frame translator over exactly this object.
std::unique_ptr<FleetClient> makeInProcessClient(const Program &Prog,
                                                 FleetOptions Opts = {});

/// Opens one connection to a server (the control connection for this
/// client, plus one more per producer()).
using TransportDialer =
    std::function<std::unique_ptr<Transport>(std::string *ErrorOut)>;

/// Connects to a FleetServer through \p Dial (called once immediately
/// for the control connection, then once per producer()). Performs the
/// Hello handshake and verifies the wire version. Nullptr with
/// \p ErrorOut set on connect/handshake failure. If \p ProgramChecksumOut
/// is non-null it receives the server program's checksum from the
/// HelloAck.
std::unique_ptr<FleetClient>
makeRemoteClient(TransportDialer Dial, std::string *ErrorOut = nullptr,
                 uint64_t *ProgramChecksumOut = nullptr);

/// Convenience: a remote client dialing the Unix-domain socket at
/// \p Path.
std::unique_ptr<FleetClient>
makeUnixSocketClient(const std::string &Path,
                     std::string *ErrorOut = nullptr,
                     uint64_t *ProgramChecksumOut = nullptr);

} // namespace tessla

#endif // TESSLA_RUNTIME_FLEETCLIENT_H
