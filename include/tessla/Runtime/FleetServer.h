//===- tessla/Runtime/FleetServer.h - Monitor service loop -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running monitor service: accepts transport connections and
/// translates Runtime/Wire.h frames into calls on one in-process
/// FleetClient. Thread-per-connection; every connection may feed (its
/// first Batch frame lazily opens a ClientProducer) and any connection
/// may drive the control surface (Snapshot/Restore/Finish/Stats/
/// Shutdown) — the shared FleetClient enforces the quiescence rules and
/// misuse comes back as wire-level Error frames.
///
/// Lifecycle: construct over a Program, then serve() a Listener until a
/// Shutdown frame arrives (it closes the listener and every live
/// connection, then joins). handleConnection() is also public so tests
/// and pipe setups can drive a server without a listener.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_FLEETSERVER_H
#define TESSLA_RUNTIME_FLEETSERVER_H

#include "tessla/Runtime/FleetClient.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace tessla {

class FleetServer {
public:
  /// \p Prog must outlive the server.
  FleetServer(const Program &Prog, FleetOptions Opts = {});

  /// Accepts and serves connections until shutdownRequested(); joins
  /// every connection thread before returning. Blocks.
  void serve(Listener &L);

  /// Serves one connected transport until it closes (blocks; callable
  /// from any thread).
  void handleConnection(std::unique_ptr<Transport> T);

  /// Set by a Shutdown frame, or directly (e.g. on a signal): closes
  /// the active listener and interrupts every live connection.
  void requestShutdown();
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// The shared session surface (e.g. for host-side checkpoints of an
  /// embedded server).
  FleetClient &client() { return *Client; }

private:
  struct Registration;
  bool handleFrame(Transport &T, WireFrame F,
                   std::unique_ptr<ClientProducer> &Prod,
                   uint64_t &BusySent);

  std::unique_ptr<FleetClient> Client;
  uint64_t ProgramCk = 0;
  uint32_t Shards = 1;
  std::atomic<bool> Shutdown{false};

  // Live-connection registry: requestShutdown() interrupts registered
  // transports under ConnMu; a connection deregisters before closing its
  // transport, so interrupt() never races a close.
  std::mutex ConnMu;
  std::vector<Transport *> LiveConns;
  Listener *ActiveListener = nullptr;
};

} // namespace tessla

#endif // TESSLA_RUNTIME_FLEETSERVER_H
