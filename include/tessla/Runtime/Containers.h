//===- tessla/Runtime/Containers.h - Aggregate payloads --------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregate payloads behind Value handles, and the two faces through
/// which the runtime touches them:
///
///  - views (SetView/MapView/QueueView): immutable, read-only windows onto
///    a payload — the only way to inspect an aggregate.
///  - COW handles (SetCow/MapCow/QueueCow): single-use mutation handles
///    obtained from Value::setCow()/mapCow()/queueCow(). Every payload is
///    one persistent structure (HAMT / banker's queue) whose nodes carry
///    refcounts; the paper's two update regimes are two tiers of this one
///    representation. When the mutability analysis proved exclusivity
///    (InPlace) *and* the wrapper is uniquely owned, the handle reuses the
///    wrapper and the transient HAMT ops mutate uniquely-owned nodes
///    destructively; otherwise the handle starts from an O(1) copy of the
///    wrapper (sharing the whole node tree) and every update path-copies
///    the O(log32 n) spine, leaving all sharers untouched.
///
/// The static InPlace verdict is required — dynamic uniqueness alone is
/// unsound because a program can re-read a slot after deriving two values
/// from it (s2 = setAdd(s1, x); s3 = setAdd(s1, y)): at the first update
/// the s1 wrapper is uniquely owned, yet s1 must survive.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_CONTAINERS_H
#define TESSLA_RUNTIME_CONTAINERS_H

#include "tessla/Persistent/HAMT.h"
#include "tessla/Persistent/Queue.h"
#include "tessla/Runtime/Value.h"

#include <memory>
#include <utility>
#include <vector>

namespace tessla {

/// Set payload: a persistent HAMT of elements.
struct SetData {
  HamtSet<Value, ValueHash> Elems;

  size_t size() const { return Elems.size(); }
  bool contains(const Value &V) const { return Elems.contains(V); }
  /// Elements in unspecified order.
  std::vector<Value> items() const { return Elems.items(); }
};

/// Map payload: a persistent HAMT of entries.
struct MapData {
  HamtMap<Value, Value, ValueHash> Entries;

  size_t size() const { return Entries.size(); }
  /// nullptr if absent. The pointer is invalidated by any update.
  const Value *find(const Value &Key) const { return Entries.find(Key); }
  /// Entries in unspecified order.
  std::vector<std::pair<Value, Value>> items() const {
    return Entries.items();
  }
};

/// FIFO queue payload: a persistent two-list queue.
struct QueueData {
  PQueue<Value> Elems;

  size_t size() const { return Elems.size(); }
  bool empty() const { return Elems.empty(); }
  /// Elements front (oldest) first.
  std::vector<Value> items() const {
    std::vector<Value> Out;
    Out.reserve(Elems.size());
    Elems.forEach([&Out](const Value &V) { Out.push_back(V); });
    return Out;
  }
};

// --- Views ----------------------------------------------------------------

/// Read-only window onto a set payload. Valid while the Value it came
/// from is alive and not destructively updated.
class SetView {
public:
  explicit SetView(const SetData *D) : D(D) {}

  size_t size() const { return D->size(); }
  bool empty() const { return D->size() == 0; }
  bool contains(const Value &V) const { return D->contains(V); }
  std::vector<Value> items() const { return D->items(); }
  template <typename Fn> void forEach(Fn &&Callback) const {
    D->Elems.forEach(std::forward<Fn>(Callback));
  }
  /// Memory-accounting walk over the payload's trie nodes (see
  /// HamtMap::forEachNode).
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    D->Elems.forEachNode(std::forward<Fn>(Callback));
  }

private:
  const SetData *D;
};

/// Read-only window onto a map payload.
class MapView {
public:
  explicit MapView(const MapData *D) : D(D) {}

  size_t size() const { return D->size(); }
  bool empty() const { return D->size() == 0; }
  bool contains(const Value &Key) const { return D->find(Key) != nullptr; }
  /// nullptr if absent. The pointer is invalidated by any update.
  const Value *find(const Value &Key) const { return D->find(Key); }
  std::vector<std::pair<Value, Value>> items() const { return D->items(); }
  template <typename Fn> void forEach(Fn &&Callback) const {
    D->Entries.forEach(std::forward<Fn>(Callback));
  }
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    D->Entries.forEachNode(std::forward<Fn>(Callback));
  }

private:
  const MapData *D;
};

/// Read-only window onto a queue payload.
class QueueView {
public:
  explicit QueueView(const QueueData *D) : D(D) {}

  size_t size() const { return D->size(); }
  bool empty() const { return D->empty(); }
  /// Oldest element. Precondition: !empty().
  const Value &front() const { return D->Elems.front(); }
  std::vector<Value> items() const { return D->items(); }
  template <typename Fn> void forEach(Fn &&Callback) const {
    D->Elems.forEach(std::forward<Fn>(Callback));
  }
  template <typename Fn> void forEachNode(Fn &&Callback) const {
    D->Elems.forEachNode(std::forward<Fn>(Callback));
  }

private:
  const QueueData *D;
};

// --- COW mutation handles -------------------------------------------------

/// Single-use mutation handle for a set (see the file comment for the
/// two-tier semantics). Obtain via Value::setCow(); consume with
/// std::move(handle).finish().
class SetCow {
public:
  explicit SetCow(std::shared_ptr<SetData> D) : D(std::move(D)) {}

  void add(Value V) { D->Elems.insertMut(std::move(V)); }
  /// Returns true when the element was present.
  bool remove(const Value &V) { return D->Elems.eraseMut(V); }
  size_t size() const { return D->size(); }
  bool contains(const Value &V) const { return D->contains(V); }

  /// The resulting value; the handle is spent.
  Value finish() && { return Value::set(std::move(D)); }

private:
  std::shared_ptr<SetData> D;
};

/// Single-use mutation handle for a map.
class MapCow {
public:
  explicit MapCow(std::shared_ptr<MapData> D) : D(std::move(D)) {}

  void put(Value Key, Value Val) {
    D->Entries.setMut(std::move(Key), std::move(Val));
  }
  /// Returns true when the key was present.
  bool remove(const Value &Key) { return D->Entries.eraseMut(Key); }
  size_t size() const { return D->size(); }
  const Value *find(const Value &Key) const { return D->find(Key); }

  Value finish() && { return Value::map(std::move(D)); }

private:
  std::shared_ptr<MapData> D;
};

/// Single-use mutation handle for a queue. The banker's queue is already
/// O(1) per operation in its persistent form, so both tiers use the
/// persistent ops; the handle still distinguishes wrapper reuse so the
/// in-place verdict keeps handle identity (and skips a wrapper
/// allocation).
class QueueCow {
public:
  explicit QueueCow(std::shared_ptr<QueueData> D) : D(std::move(D)) {}

  void enqueue(Value V) { D->Elems = D->Elems.enqueue(std::move(V)); }
  /// Drops the oldest element. Precondition: !empty().
  void dequeue() { D->Elems = D->Elems.dequeue(); }
  size_t size() const { return D->size(); }
  bool empty() const { return D->empty(); }
  const Value &front() const { return D->Elems.front(); }

  Value finish() && { return Value::queue(std::move(D)); }

private:
  std::shared_ptr<QueueData> D;
};

} // namespace tessla

#endif // TESSLA_RUNTIME_CONTAINERS_H
