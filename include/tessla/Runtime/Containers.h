//===- tessla/Runtime/Containers.h - Aggregate payloads --------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregate payloads behind Value handles. Each payload is either
/// persistent (our HAMT / banker's queue — the paper's baseline, safe
/// under arbitrary sharing) or mutable (hash set/map, deque — the
/// optimized representation, safe only where the mutability analysis
/// proved exclusivity). A family of streams uses one representation
/// consistently (Def. 7 rule 3), so the two never mix within a value's
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_CONTAINERS_H
#define TESSLA_RUNTIME_CONTAINERS_H

#include "tessla/Persistent/HAMT.h"
#include "tessla/Persistent/Queue.h"
#include "tessla/Runtime/Value.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace tessla {

/// Set payload: one of the two representations is active per IsMutable.
struct SetData {
  bool IsMutable;
  HamtSet<Value, ValueHash> Persistent;
  std::unordered_set<Value, ValueHash> Mutable;

  explicit SetData(bool IsMutable) : IsMutable(IsMutable) {}

  size_t size() const {
    return IsMutable ? Mutable.size() : Persistent.size();
  }
  bool contains(const Value &V) const {
    return IsMutable ? Mutable.count(V) != 0 : Persistent.contains(V);
  }
  /// Elements in unspecified order.
  std::vector<Value> items() const;
};

/// Map payload.
struct MapData {
  bool IsMutable;
  HamtMap<Value, Value, ValueHash> Persistent;
  std::unordered_map<Value, Value, ValueHash> Mutable;

  explicit MapData(bool IsMutable) : IsMutable(IsMutable) {}

  size_t size() const {
    return IsMutable ? Mutable.size() : Persistent.size();
  }
  /// nullptr if absent. The pointer is invalidated by any update.
  const Value *find(const Value &Key) const;
  /// Entries in unspecified order.
  std::vector<std::pair<Value, Value>> items() const;
};

/// FIFO queue payload.
struct QueueData {
  bool IsMutable;
  PQueue<Value> Persistent;
  std::deque<Value> Mutable;

  explicit QueueData(bool IsMutable) : IsMutable(IsMutable) {}

  size_t size() const {
    return IsMutable ? Mutable.size() : Persistent.size();
  }
  bool empty() const { return size() == 0; }
  /// Elements front (oldest) first.
  std::vector<Value> items() const;
};

/// Fresh empty payloads in the requested representation.
std::shared_ptr<SetData> makeSetData(bool IsMutable);
std::shared_ptr<MapData> makeMapData(bool IsMutable);
std::shared_ptr<QueueData> makeQueueData(bool IsMutable);

} // namespace tessla

#endif // TESSLA_RUNTIME_CONTAINERS_H
