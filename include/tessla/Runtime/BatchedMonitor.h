//===- tessla/Runtime/BatchedMonitor.h - SoA lockstep engine ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A same-spec multi-session execution engine: N session *lanes* over one
/// Program, with all engine state laid out structure-of-arrays — every
/// value/last/delay slot becomes a per-slot row indexed by lane — and the
/// calculation section executed as a *lockstep sweep*: each ProgramStep's
/// opcode is decoded once and applied to every active lane before moving
/// to the next step. Compared to running one Monitor per session this
/// amortizes the per-step dispatch over all lanes of a shard and turns
/// the per-slot state walk into contiguous row traversals (cache-friendly
/// now, SIMD-able next).
///
/// ## Observational identity
///
/// The engine is required to be *byte-identical* to running each session
/// through its own independent Monitor: same outputs, same per-session
/// emission order, same failure points and messages. Lanes share no
/// state — a sweep is just a reordering of per-session work that was
/// already independent — and every feed-time check of Monitor::feed is
/// re-applied (deferred to the sweep loop) per lane. The differential
/// corpus harness (tests/Integration/BatchedDifferentialTest.cpp)
/// enforces this against the per-session engine on random specs, both
/// optimization levels and both mutability modes.
///
/// Lanes advance on *their own* timelines: a sweep runs each active lane
/// at that lane's next due timestamp (pending input timestamp or delay
/// firing), so lockstep does not require sessions to share a clock —
/// only a spec.
///
/// ## Usage
///
/// \code
///   BatchedMonitor BM(Prog);
///   unsigned L = BM.addLane(SessionId);   // sessions may join any time
///   BM.feed(L, InputId, 3, Value::integer(7));   // buffers
///   BM.pump();                            // lockstep sweeps
///   BM.finishAll(Horizon);
///   for (OutputEvent &E : BM.takeLaneOutputs(L)) ...
/// \endcode
///
/// ## Migration
///
/// A lane is migrated between engines (the fleet's work stealing moves
/// lanes between shards' batched groups) by extractLane()/insertLane():
/// the LaneState snapshot carries the lane's complete engine state —
/// slot values and presence, last slots, armed delay timers, the
/// pending-timestamp cursor, recorded outputs, counters and any
/// unconsumed buffered records. As with Monitor hand-off, the transfer
/// must synchronize (release/acquire happens-before the new owner's
/// first use) and the old owner retains nothing derived from the lane.
///
/// Not thread-safe; one instance per shard/thread.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_BATCHEDMONITOR_H
#define TESSLA_RUNTIME_BATCHEDMONITOR_H

#include "tessla/Runtime/ExecutionEngine.h"
#include "tessla/Runtime/Monitor.h"
#include "tessla/Runtime/TraceIO.h"

#include <optional>
#include <string>
#include <vector>

namespace tessla {

class BatchedMonitor : public ShardEngine {
public:
  /// \p CollectOutputs mirrors FleetOptions::CollectOutputs: when false,
  /// outputs are only counted, never recorded.
  explicit BatchedMonitor(const Program &Prog, bool CollectOutputs = true);

  /// One buffered input record of a lane (not yet validated/applied; the
  /// checks of Monitor::feed run when the pump loop consumes it). The
  /// record and snapshot types live in Runtime/ExecutionEngine.h — the
  /// migration contract is engine-agnostic — but keep their historical
  /// names here.
  using PendingRecord = EnginePendingRecord;

  /// A whole lane's engine state, extracted for migration; movable
  /// across threads under the usual synchronized hand-off contract.
  using LaneState = EngineLaneState;

  /// Adds a fresh lane for \p Session (identical to constructing a new
  /// Monitor: its timestamp-0 calculation runs before its first event's
  /// timestamp). Lanes of extracted sessions are reused. Returns the
  /// lane index, stable until extractLane().
  unsigned addLane(SessionId Session) override;

  /// Buffers one input record for \p Lane. Validation (timestamp order,
  /// duplicate events, negative timestamps) is deferred to pump(), where
  /// it fails the lane exactly like Monitor::feed would. \returns false
  /// if the lane already failed or the engine is finished.
  bool feed(unsigned Lane, StreamId Input, Time Ts, Value V) override;

  /// Runs lockstep sweeps until every lane has consumed its buffered
  /// records (a lane mid-timestamp keeps its partial state buffered,
  /// like a Monitor between feeds).
  void pump() override;

  /// End of input for every lane (Monitor::finish semantics, shared
  /// \p Horizon): pending timestamps run, armed delays drain — in
  /// lockstep across lanes until no lane has work left.
  void finishAll(std::optional<Time> Horizon = std::nullopt) override;

  bool supportsMigration() const override { return true; }

  /// Extracts \p Lane for migration and frees its index for reuse.
  LaneState extractLane(unsigned Lane) override;
  /// Inserts a migrated lane; returns its new lane index.
  unsigned insertLane(LaneState State) override;
  /// Copies \p Lane's state non-destructively (the fork primitive);
  /// aggregate values are shared structurally.
  LaneState snapshotLane(unsigned Lane) const override;
  /// Visits every Value of every live lane (memory accounting).
  void visitValues(
      const std::function<void(const Value &)> &Fn) const override;

  // --- Per-lane observers (valid for live lanes). ---
  SessionId laneSession(unsigned Lane) const override {
    return Session[Lane];
  }
  bool laneFailed(unsigned Lane) const override { return Failed[Lane] != 0; }
  const std::string &laneError(unsigned Lane) const override {
    return ErrMsg[Lane];
  }
  /// Accepted input records (the fleet's steal heuristic).
  uint64_t laneInputEvents(unsigned Lane) const override {
    return NumFed[Lane];
  }
  uint64_t laneOutputEvents(unsigned Lane) const override {
    return NumOutputs[Lane];
  }
  /// True when the lane has no unconsumed buffered records (always true
  /// after pump(); donation only migrates idle lanes).
  bool laneIdle(unsigned Lane) const override {
    return QueuePos[Lane] == Queue[Lane].size();
  }
  /// Moves out the lane's recorded outputs (emission order).
  std::vector<OutputEvent> takeLaneOutputs(unsigned Lane) override {
    return std::move(Outputs[Lane]);
  }

  /// Live lanes.
  size_t laneCount() const override { return NumLive; }
  /// Lockstep sweeps executed (each replaces `active lanes` many
  /// per-session calculation runs).
  uint64_t sweeps() const override { return NumSweeps; }

  const char *name() const override { return "batched"; }

private:
  /// Sweep strip-mining width: pump()/finishAll() drain lanes in tiles
  /// of this many, each tile swept to completion before the next. Wide
  /// enough to amortize the per-step opcode dispatch, small enough that
  /// a tile's working set — its engine rows plus the hot paths of the
  /// aggregates its lanes carry — stays cache-resident across all of
  /// the tile's sweeps. The aggregates dominate that budget (a lane's
  /// set/map/queue is touched once per sweep), which is why the best
  /// width is much smaller than what the row arrays alone would allow;
  /// one maximal sweep over a thousand lanes reloads every lane's
  /// aggregate path from L2/DRAM on every step.
  static constexpr size_t TileLanes = 8;

  const Program &Prog;
  const bool CollectOutputs;
  const uint32_t NumSlots;   // numValueSlots() + 1 (dead slot included)
  size_t LaneCap = 0;        // row stride of the SoA arrays
  unsigned NumLanes = 0;     // high-water lane count (Live[] gates reuse)
  size_t NumLive = 0;
  bool EngineFinished = false;
  bool AnyFailed = false; // fast path: skip per-lane Failed checks
  uint64_t NumSweeps = 0;

  // SoA engine state: index = Slot * LaneCap + Lane, so one step's sweep
  // walks contiguous rows.
  std::vector<Value> Cur;      // [NumSlots  x LaneCap]
  std::vector<char> Present;   // [NumSlots  x LaneCap]
  std::vector<Value> LastVal;  // [lastSlots x LaneCap]
  std::vector<char> LastInit;  // [lastSlots x LaneCap]
  std::vector<Time> NextTs;    // [delays    x LaneCap]
  std::vector<char> NextTsSet; // [delays    x LaneCap]

  // Per-lane control state (plain per-lane vectors).
  std::vector<SessionId> Session;
  std::vector<char> Live;
  std::vector<char> Failed;
  std::vector<char> CalcDone;
  std::vector<char> FinishedL;
  std::vector<Time> PendingTs;
  std::vector<Time> RunTs; // the timestamp the current sweep runs at
  std::vector<std::string> ErrMsg;
  std::vector<uint64_t> NumFed;
  std::vector<uint64_t> NumOutputs;
  std::vector<uint64_t> NumCalcRuns;
  std::vector<std::vector<PendingRecord>> Queue;
  std::vector<size_t> QueuePos;
  std::vector<std::vector<SlotId>> Touched;
  std::vector<std::vector<OutputEvent>> Outputs;

  std::vector<uint32_t> FreeLanes;
  std::vector<uint32_t> Active; // lanes of the current sweep
  // Worklist of lanes with unconsumed buffered records: pump() is
  // O(dirty lanes), not O(all lanes) — feeding 4 sessions of a
  // 1000-lane group must not scan the other 996.
  std::vector<uint32_t> DirtyLanes;
  std::vector<char> InDirty;

  size_t idx(SlotId Slot, uint32_t Lane) const {
    return static_cast<size_t>(Slot) * LaneCap + Lane;
  }
  void setLane(SlotId Slot, uint32_t Lane, Value V);
  void growLanes(size_t NewCap);
  unsigned allocLane(SessionId Id);
  void clearLaneRows(uint32_t Lane);
  bool prepareLane(uint32_t Lane);
  std::optional<Time> minNextDelay(uint32_t Lane) const;
  void sweep();
  void failLaneAt(uint32_t Lane, Time Ts, StreamId Id,
                  const std::string &Message);
  void failLane(uint32_t Lane, std::string Message);
};

} // namespace tessla

#endif // TESSLA_RUNTIME_BATCHEDMONITOR_H
