//===- tessla/Runtime/Transport.h - Byte-stream transports -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream transports the monitor service speaks over: a minimal
/// blocking send/recv interface plus the two concrete carriers the
/// server supports — Unix-domain sockets (cross-process) and socketpair
/// pipes (parent/child or same-process loopback). Transports move opaque
/// bytes; framing and meaning live one layer up in Runtime/Wire.h.
///
/// All operations block. send() writes the whole buffer or fails;
/// recv() returns at least one byte, zero on orderly peer close, and -1
/// on error. Both ends of a transport may be used from different
/// threads, but each direction belongs to one thread at a time.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_TRANSPORT_H
#define TESSLA_RUNTIME_TRANSPORT_H

#include "tessla/Runtime/Wire.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tessla {

/// One connected byte stream. Close is idempotent; the destructor
/// closes.
class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all \p Size bytes (retrying short writes). False on error
  /// or closed peer.
  virtual bool send(const uint8_t *Data, size_t Size) = 0;
  bool send(const std::vector<uint8_t> &Bytes) {
    return send(Bytes.data(), Bytes.size());
  }

  /// Reads up to \p Size bytes into \p Data, blocking until at least
  /// one arrives. Returns the count, 0 on orderly close, -1 on error.
  virtual ptrdiff_t recv(uint8_t *Data, size_t Size) = 0;

  /// Non-blocking recv: bytes read (> 0), 0 when nothing is available
  /// right now, -1 on error or closed peer. Lets a write-mostly peer
  /// (a batch producer) drain asynchronous Busy frames without ever
  /// blocking on the read side.
  virtual ptrdiff_t tryRecv(uint8_t *Data, size_t Size) = 0;

  /// Shuts the stream down; any blocked peer recv() sees end-of-stream.
  virtual void close() = 0;

  /// Kills the stream without releasing it: this transport's own
  /// blocked recv()/send() unblock with end-of-stream/error, but the
  /// underlying descriptor stays owned until close(). Lets another
  /// thread interrupt a connection it does not own — the caller must
  /// ensure the owner cannot concurrently close() (see FleetServer's
  /// registry discipline).
  virtual void interrupt() = 0;
};

/// A listening endpoint producing connected transports.
class Listener {
public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; nullptr once closed or on error.
  virtual std::unique_ptr<Transport> accept() = 0;

  /// Unblocks any pending accept() and refuses further connections.
  virtual void close() = 0;
};

/// Wraps an already-connected file descriptor (socket or pipe end).
/// Takes ownership: the transport closes \p Fd.
std::unique_ptr<Transport> makeFdTransport(int Fd);

/// An in-process connected pair (socketpair): bytes sent on one end
/// arrive on the other. The loopback carrier for tests and for driving
/// a server thread without touching the filesystem.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makePipeTransportPair();

/// Binds and listens on a Unix-domain socket at \p Path (unlinking any
/// stale socket file first). Nullptr with \p ErrorOut set on failure.
std::unique_ptr<Listener> listenUnixSocket(const std::string &Path,
                                           std::string *ErrorOut = nullptr);

/// Connects to the Unix-domain socket at \p Path.
std::unique_ptr<Transport> connectUnixSocket(const std::string &Path,
                                             std::string *ErrorOut = nullptr);

// --- Frame helpers --------------------------------------------------------

/// Encodes and sends one frame. False on transport error.
bool sendFrame(Transport &T, FrameType Type,
               const std::vector<uint8_t> &Payload);
bool sendFrame(Transport &T, FrameType Type);

/// Receives the next complete frame through \p Dec, pulling bytes from
/// \p T as needed. Nullopt with \p ErrorOut set on malformed stream,
/// transport error, or clean end-of-stream ("connection closed").
std::optional<WireFrame> recvFrame(Transport &T, FrameDecoder &Dec,
                                   std::string &ErrorOut);

} // namespace tessla

#endif // TESSLA_RUNTIME_TRANSPORT_H
