//===- tessla/Runtime/ExecutionEngine.h - Pluggable engines ----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-engine abstraction: one interface over the three ways a
/// shard (or a sequential tool) can run sessions of a Program —
///
///   * per-session  — one interpreter Monitor per lane (the reference
///                    engine; Runtime/Monitor.h),
///   * batched      — SoA lockstep sweeps across all lanes
///                    (Runtime/BatchedMonitor.h),
///   * native       — sessions run compiled monitor code loaded from a
///                    shared object (CodeGen/NativeCompile.h; the
///                    factory is injected so the runtime library never
///                    links the code generator).
///
/// All engines are *observationally identical* per session: same outputs
/// in the same per-session order, same failure points and messages as a
/// lone Monitor over the same records. The differential corpus
/// (tests/Integration/BatchedDifferentialTest.cpp) enforces this
/// three-way.
///
/// ## Lanes and the migration contract
///
/// A lane is one session's seat inside an engine. Lane indices are
/// engine-local and stable until extractLane() frees them. Engines that
/// report supportsMigration() implement the fleet's work-stealing
/// hand-off: extractLane() moves a lane's complete engine state into an
/// EngineLaneState snapshot and insertLane() revives it — in the *same
/// or any other* migratable engine over the same Program (per-session ↔
/// batched hand-offs are exercised by the fleet's Auto heuristic). As
/// with Monitor hand-off, the transfer must synchronize (release/acquire
/// happens-before the new owner's first use) and the old owner retains
/// nothing derived from the lane.
///
/// Engines are not thread-safe; one instance per shard/thread.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_EXECUTIONENGINE_H
#define TESSLA_RUNTIME_EXECUTIONENGINE_H

#include "tessla/Runtime/Monitor.h"
#include "tessla/Runtime/TraceIO.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tessla {

/// One buffered input record of a lane (not yet validated/applied; the
/// feed-time checks of Monitor::feed run when the engine consumes it).
struct EnginePendingRecord {
  EnginePendingRecord() = default;
  EnginePendingRecord(StreamId Input_, Time Ts_, Value V_)
      : Input(Input_), Ts(Ts_), V(std::move(V_)) {}
  StreamId Input = 0;
  Time Ts = 0;
  Value V;
};

/// A whole lane's engine state, extracted for migration. The snapshot is
/// engine-agnostic: it carries exactly the state a lone Monitor holds
/// between feeds (slot values and presence, last slots, armed delay
/// timers, the pending-timestamp cursor, counters), plus the session
/// attribution, recorded outputs and any unconsumed buffered records.
/// Movable across threads under the usual synchronized hand-off
/// contract.
struct EngineLaneState {
  SessionId Session = 0;
  Time PendingTs = 0;
  bool CalcDone = false;
  bool Failed = false;
  std::string Error;
  uint64_t NumFed = 0;
  uint64_t NumOutputs = 0;
  uint64_t NumCalcRuns = 0;
  std::vector<Value> Cur;      // [numValueSlots()+1]
  std::vector<char> Present;   // [numValueSlots()+1]
  std::vector<Value> LastVal;  // [lastSlots()]
  std::vector<char> LastInit;  // [lastSlots()]
  std::vector<Time> NextTs;    // [delays()]
  std::vector<char> NextTsSet; // [delays()]
  std::vector<EnginePendingRecord> Queue; // unconsumed buffered records
  std::vector<OutputEvent> Outputs;
};

/// The shard execution engine interface. Mirrors BatchedMonitor's lane
/// API, which is the superset: eager engines implement pump() as a no-op
/// and report lanes as always idle.
class ShardEngine {
public:
  virtual ~ShardEngine() = default;

  /// Adds a fresh lane for \p Session (identical to constructing a new
  /// Monitor). Returns the lane index, stable until extractLane().
  virtual unsigned addLane(SessionId Session) = 0;

  /// Feeds one input record into \p Lane. Buffering engines defer the
  /// Monitor::feed validation to pump(); eager engines apply it here.
  /// \returns false if the lane already failed or the engine finished.
  virtual bool feed(unsigned Lane, StreamId Input, Time Ts, Value V) = 0;

  /// Drains buffered records (no-op for eager engines).
  virtual void pump() = 0;

  /// End of input for every lane (Monitor::finish semantics, shared
  /// \p Horizon).
  virtual void finishAll(std::optional<Time> Horizon = std::nullopt) = 0;

  /// Whether extractLane()/insertLane() are implemented. The fleet only
  /// steals work from/into migratable engines.
  virtual bool supportsMigration() const { return false; }

  /// Extracts \p Lane for migration and frees its index for reuse.
  /// Only idle lanes (laneIdle()) of migratable engines may be
  /// extracted.
  virtual EngineLaneState extractLane(unsigned Lane);
  /// Inserts a migrated lane; returns its new lane index.
  virtual unsigned insertLane(EngineLaneState State);

  /// The non-destructive sibling of extractLane(): copies \p Lane's
  /// complete state into a snapshot while the lane stays live. Aggregate
  /// values are shared structurally (O(1) handle copies, sound under the
  /// copy-on-write runtime representation) — this is the fleet's session
  /// fork primitive. Only idle lanes of migratable engines may be
  /// snapshotted.
  virtual EngineLaneState snapshotLane(unsigned Lane) const;

  /// Visits every runtime Value the engine holds across all live lanes
  /// (slot state, buffered records, recorded outputs) — the fleet's
  /// aggregate-memory accounting walk. Engines whose state lives outside
  /// the Value representation (native) keep the no-op default.
  virtual void visitValues(const std::function<void(const Value &)> &) const {
  }

  // --- Per-lane observers (valid for live lanes). ---
  virtual SessionId laneSession(unsigned Lane) const = 0;
  virtual bool laneFailed(unsigned Lane) const = 0;
  virtual const std::string &laneError(unsigned Lane) const = 0;
  /// Accepted input records (the fleet's steal heuristic).
  virtual uint64_t laneInputEvents(unsigned Lane) const = 0;
  virtual uint64_t laneOutputEvents(unsigned Lane) const = 0;
  /// True when the lane has no unconsumed buffered records.
  virtual bool laneIdle(unsigned Lane) const = 0;
  /// Moves out the lane's recorded outputs (emission order).
  virtual std::vector<OutputEvent> takeLaneOutputs(unsigned Lane) = 0;

  /// Live lanes.
  virtual size_t laneCount() const = 0;
  /// Lockstep sweeps executed (0 for engines that don't sweep).
  virtual uint64_t sweeps() const { return 0; }
  /// Short engine name for stats/diagnostics ("per-session", "batched",
  /// "native").
  virtual const char *name() const = 0;
};

/// Creates a shard engine over \p Prog. The fleet instantiates one per
/// shard; sequential tools use a single instance. \p CollectOutputs
/// mirrors FleetOptions::CollectOutputs: when false, outputs are only
/// counted, never recorded.
using EngineFactory = std::function<std::unique_ptr<ShardEngine>(
    const Program &Prog, bool CollectOutputs)>;

/// One interpreter Monitor per lane — the reference engine. Migratable.
std::unique_ptr<ShardEngine> makePerSessionEngine(const Program &Prog,
                                                  bool CollectOutputs = true);

/// SoA lockstep BatchedMonitor. Migratable.
std::unique_ptr<ShardEngine> makeBatchedEngine(const Program &Prog,
                                               bool CollectOutputs = true);

/// Sequential convenience: replays \p Batch through one lane of
/// \p Engine (sessions are ignored; the caller picked the engine), then
/// finishes it — the ShardEngine flavour of runMonitor(). Returns the
/// lane's outputs; \p ErrorOut receives the failure message or "".
std::vector<OutputEvent>
runEngineSingle(ShardEngine &Engine, const EventBatch &Batch,
                std::optional<Time> Horizon = std::nullopt,
                std::string *ErrorOut = nullptr);

} // namespace tessla

#endif // TESSLA_RUNTIME_EXECUTIONENGINE_H
