//===- tessla/Runtime/TraceGen.h - Synthetic workload traces ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic trace generators for the paper's evaluation
/// (§V). The synthetic workloads generate random input data "directly by
/// the generated monitor" in the paper; here the generators produce the
/// equivalent event streams:
///
///  * randomInts — uniform values driving Seen Set / Map Window / Queue
///    Window; the value domain bounds the structure size.
///  * dbLog — substitute for the Nokia RV-competition database log
///    (insert/delete/access operations over record ids).
///  * powerSignal — substitute for the ReNuBiL power-consumption log
///    (base load + daily sinusoid + noise + injected peaks).
///
/// All generators are pure functions of their seeds.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_TRACEGEN_H
#define TESSLA_RUNTIME_TRACEGEN_H

#include "tessla/Runtime/TraceIO.h"

namespace tessla {
namespace tracegen {

/// \p Count uniform values from [0, Domain) on stream \p Id at timestamps
/// 1, 2, 3, ...
std::vector<TraceEvent> randomInts(StreamId Id, size_t Count,
                                   int64_t Domain, uint64_t Seed);

/// Configuration of the synthetic database-operation log.
struct DbLogConfig {
  size_t Count = 100000;      ///< total operations (one per timestamp)
  double InsertProb = 0.45;   ///< P(insert); remainder splits below
  double DeleteProb = 0.10;   ///< P(delete existing record)
  double BadAccessProb = 0.01; ///< P(access references a missing record)
  uint64_t Seed = 1;
};

/// Insert/delete/access operations over record ids: inserts mint fresh
/// ids, deletes and accesses draw from the live set (accesses occasionally
/// miss, producing the violations DBAccessConstraint reports). Exactly
/// one operation per timestamp.
std::vector<TraceEvent> dbLog(StreamId Insert, StreamId Delete,
                              StreamId Access, const DbLogConfig &Config);

/// Two-table insert log for DBTimeConstraint: db2 inserts an id, and db3
/// inserts usually follow within \p MaxLag time units (violations appear
/// with \p LateProb).
struct DbPairConfig {
  size_t Count = 100000;
  Time MaxLag = 60;
  double LateProb = 0.02;
  uint64_t Seed = 1;
};
std::vector<TraceEvent> dbPairLog(StreamId Db2, StreamId Db3,
                                  const DbPairConfig &Config);

/// Configuration of the synthetic power-consumption signal.
struct PowerConfig {
  size_t Count = 100000;   ///< samples
  Time Period = 60;        ///< sampling period (time units)
  double Base = 40.0;      ///< base load (kW)
  double DailyAmp = 15.0;  ///< daily sinusoid amplitude
  double Noise = 2.0;      ///< gaussian noise sigma
  double PeakProb = 0.001; ///< probability of an injected peak per sample
  double PeakScale = 3.0;  ///< peak multiplier
  uint64_t Seed = 1;
};

/// Float samples on stream \p Id at timestamps Period, 2*Period, ...
std::vector<TraceEvent> powerSignal(StreamId Id, const PowerConfig &Config);

} // namespace tracegen
} // namespace tessla

#endif // TESSLA_RUNTIME_TRACEGEN_H
