//===- tessla/Runtime/Monitor.h - Monitor execution engine -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a lowered Program: the calculation section runs the program
/// steps in translation order for one timestamp; the triggering section
/// (§III-B) drives it — once per timestamp with buffered input events,
/// plus once per firing delay in the gaps between input timestamps.
///
/// The engine is deliberately thin: every step carries its pre-resolved
/// opcode, argument slots and builtin function pointer, so the per-event
/// work is one flat dispatch per step over dense slot arrays.
///
/// Usage:
/// \code
///   Monitor M(Prog);
///   M.setOutputHandler([](Time T, StreamId Id, const Value &V) { ... });
///   M.feed(InputId, 3, Value::integer(7));   // time-ordered
///   M.feed(InputId, 5, Value::integer(9));
///   M.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_MONITOR_H
#define TESSLA_RUNTIME_MONITOR_H

#include "tessla/Program/Program.h"

#include <functional>
#include <optional>

namespace tessla {

/// One output event (also used for recorded traces).
struct OutputEvent {
  Time Ts;
  StreamId Id;
  Value V;
};

struct EngineLaneState; // Runtime/ExecutionEngine.h

/// The monitor engine. Not thread-safe; one instance per trace run.
///
/// Migration: a Monitor may be handed off between threads (the fleet's
/// work stealing moves whole sessions this way) provided the transfer
/// synchronizes (the release/acquire hand-off happens-before the new
/// owner's first call) and the old owner retains nothing derived from
/// it — in particular no borrowed output-handler Values. All slot state
/// (current values, *_last slots, scheduled delays) is ordinary owned
/// data, so moving the object is the whole migration; there is no
/// thread-affine hidden state.
class Monitor {
public:
  using OutputHandler =
      std::function<void(Time, StreamId, const Value &)>;

  explicit Monitor(const Program &Prog);

  /// Called for every event on an output-marked stream; emission happens
  /// once per timestamp after the calculation section, in stream
  /// definition order. Storing the Value (a handle copy) is safe and
  /// O(1): a handler-held handle is a sharer, so later in-place-verdict
  /// updates path-copy around it instead of mutating through it.
  void setOutputHandler(OutputHandler Handler) {
    this->Handler = std::move(Handler);
  }

  /// Feeds one input event. Events must arrive in non-decreasing
  /// timestamp order; at most one event per stream and timestamp.
  /// \returns false if the monitor already failed or the event was
  /// rejected (the error message tells why).
  bool feed(StreamId Input, Time Ts, Value V);

  /// Signals end of input (t = infinity in §III-B): processes the pending
  /// timestamp and drains scheduled delays. \p Horizon bounds the drain
  /// (inclusive) — required for self-resetting periodic delays, which
  /// would otherwise fire forever.
  void finish(std::optional<Time> Horizon = std::nullopt);

  bool failed() const { return Err.Failed; }
  const std::string &errorMessage() const { return Err.Message; }

  /// Number of calculation-section executions so far (statistics).
  uint64_t calcRuns() const { return NumCalcRuns; }
  /// Number of emitted output events so far.
  uint64_t outputEvents() const { return NumOutputs; }
  /// Number of accepted input events so far. The fleet's steal heuristic
  /// uses this as the "hot session" signal.
  uint64_t inputEvents() const { return NumFed; }

  /// Moves the monitor's complete engine state into a migratable lane
  /// snapshot (the fleet's engine-agnostic migration contract,
  /// Runtime/ExecutionEngine.h). Fills only the fields the monitor owns
  /// — session attribution, buffered records and recorded outputs are
  /// the surrounding engine's to fill (the monitor is eager and
  /// unbuffered, so Queue stays empty). The monitor must not be used
  /// afterwards.
  void extractState(EngineLaneState &Out);

  /// Restores a snapshot produced by extractState() — or by any other
  /// migratable engine over the same Program — into this freshly
  /// constructed monitor, consuming the snapshot's engine fields.
  void restoreState(EngineLaneState &State);

  /// The non-destructive sibling of extractState(): copies the complete
  /// engine state into \p Out while the monitor stays live. Aggregate
  /// values are shared structurally (O(1) handle copies) — sound under
  /// the copy-on-write runtime representation, where a later destructive
  /// update on either side sees the sharing and path-copies instead.
  /// This is the primitive behind session forking.
  void snapshotState(EngineLaneState &Out) const;

  /// Visits every Value the monitor holds (current-value slots and
  /// *_last slots) — the fleet's aggregate-memory accounting walk.
  void visitValues(const std::function<void(const Value &)> &Fn) const;

private:
  const Program &Prog;
  OutputHandler Handler;
  EvalError Err;

  // Current-timestamp value slots (the paper's per-stream variables),
  // indexed by the program's dense SlotId; the trailing entry is the
  // never-present dead slot shared by nil streams.
  std::vector<Value> Cur;
  std::vector<char> Present;
  std::vector<SlotId> Touched;

  // *_last slots, indexed like Program::lastSlots().
  std::vector<Value> LastVal;
  std::vector<char> LastInit;

  // *_nextTs slots per delay (indexed like Program::delays()).
  std::vector<Time> NextTs;
  std::vector<char> NextTsSet;

  Time PendingTs = 0;
  bool CalcDoneForPending = false;
  bool Finished = false;

  uint64_t NumCalcRuns = 0;
  uint64_t NumOutputs = 0;
  uint64_t NumFed = 0;

  void setValue(SlotId Slot, Value V);
  void runCalc(Time Ts);
  /// Runs the pending timestamp's calculation and all delay firings
  /// strictly before \p T.
  void flushBefore(Time T);
  std::optional<Time> minNextDelay() const;
  void failAt(Time Ts, StreamId Id, const std::string &Message);
};

/// Runs \p Events (already time-ordered) through a fresh monitor over
/// \p Prog, collecting outputs. Convenience for tests and benchmarks.
std::vector<OutputEvent>
runMonitor(const Program &Prog,
           const std::vector<std::tuple<StreamId, Time, Value>> &Events,
           std::optional<Time> Horizon = std::nullopt,
           std::string *ErrorOut = nullptr);

} // namespace tessla

#endif // TESSLA_RUNTIME_MONITOR_H
