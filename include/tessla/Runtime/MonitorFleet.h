//===- tessla/Runtime/MonitorFleet.h - Sharded multi-session runtime -*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-session monitor runtime: one Program served to many
/// concurrent trace sessions across N worker shards. Each session runs
/// on exactly one worker thread at a time, so everything the
/// single-session engine relies on for speed — non-atomic RefCntPtr
/// spines, destructively updated mutable aggregates — stays strictly
/// single-threaded per session. No session state is ever shared between
/// threads; sessions move between threads only through synchronized
/// whole-object hand-offs (work stealing).
///
/// Within a shard, FleetOptions::Mode picks the execution engine behind
/// the ShardEngine interface (Runtime/ExecutionEngine.h): one
/// independent Monitor per session (PerSession), one SoA BatchedMonitor
/// per shard whose lanes are the shard's sessions (Batched), or
/// compiled monitor code loaded from a shared object (Native; the
/// engine factory is injected through FleetOptions::NativeFactory so
/// this library never links the code generator). Auto starts every
/// shard Batched and watches the arrival pattern: interleaved traffic
/// stays batched (wide lockstep sweeps), while chunky single-session
/// replay — which regresses under batching — migrates the shard's lanes
/// to a per-session engine once observed. All engines produce
/// byte-identical output.
///
/// ## Ingestion: producer handles (multi-producer fan-in)
///
/// Ingestion is multi-producer: every producer thread obtains its own
/// ProducerHandle, which owns one bounded lock-free SPSC ring into each
/// shard. feed() buffers records per shard and hands full batches to
/// the owning shard's ring — no locks and no shared mutable state on
/// the hot path, so N threads feed concurrently without contending.
/// Batches carry a fleet-wide monotone sequence number; a shard always
/// drains the lowest-sequence batch available across its producer
/// rings, so a *handed-off* session (producer A flushes/closes, then —
/// synchronized externally — producer B continues the same session)
/// keeps its event order.
///
/// \code
///   MonitorFleet Fleet(Prog, {.Shards = 4});
///   std::thread T1([&] {
///     ProducerHandle P = Fleet.producer();
///     P.feed(SessionA, InputId, 3, Value::integer(7));
///     P.close();                      // or let the destructor close
///   });
///   std::thread T2([&] {
///     ProducerHandle P = Fleet.producer();
///     P.feed(SessionB, InputId, 1, Value::integer(9));
///   });
///   T1.join(); T2.join();
///   Fleet.finish();
///   for (const SessionOutputEvent &E : Fleet.takeOutputs()) ...
///   Fleet.stats().str();              // per-shard counters
/// \endcode
///
/// Threading contract:
///  - producer() may be called from any thread (it takes a short
///    registration lock); each returned handle must then be used from
///    one thread at a time. Handles must be closed (or destroyed, or
///    quiescent) before finish(), and must not outlive the fleet.
///  - At most one producer may feed a given session at a time. A
///    hand-off between producers must be externally synchronized:
///    A.flush() (or close()) happens-before B's first feed of that
///    session.
///  - finish()/suspend()/takeOutputs()/errors()/stats() are called from
///    one controlling thread after the producers quiesced. (The old
///    single-producer feed() shim is gone — every ingest path holds an
///    explicit ProducerHandle, or a FleetClient wrapping one.)
///
/// ## Checkpoint / restore
///
/// suspend() is the checkpointing twin of finish(): it drains every ring
/// and inbox exactly like finish(), but instead of running end-of-input
/// semantics it extracts every live session through the engine migration
/// contract (ShardEngine::extractLane) and returns the lane snapshots,
/// sorted by session id. Serialized as a `.tcp` checkpoint
/// (Runtime/Checkpoint.h) they can be restored — into a fresh fleet of
/// *any* shard count, in this or another process — with restore(), which
/// injects each lane into its home shard through the same migration
/// inboxes work stealing uses and waits until the workers adopted them.
/// restore() must complete before any producer feeds the restored
/// sessions; outputs recorded before the suspend travel inside the lane
/// snapshots, so run-to-T + suspend + restore + run-to-end is
/// byte-identical to an uninterrupted run.
///
/// ## Work stealing
///
/// Session-to-shard placement starts at hash(session) % shards, but is
/// not fixed: an idle worker posts standing steal requests to its
/// peers, and an overloaded worker (ring backlog over
/// FleetOptions::StealBacklog records) donates one whole session —
/// Monitor state plus recorded outputs — at a batch boundary through
/// the thief's migration inbox. The home shard keeps forwarding that
/// session's subsequent records to the thief (single forwarder, FIFO
/// channel), so per-session event order is preserved; a stolen session
/// is pinned to its thief (no re-steal), which keeps the forwarding
/// topology single-hop. The migration inbox is mutex-guarded and
/// unbounded — it only carries rare hand-offs plus forwarded records
/// already admitted through the bounded producer rings.
///
/// ## Determinism
///
/// Outputs are collected per session and merged by ascending session
/// id, then per-session emission order (timestamp, then stream
/// definition order). Since each session's records are fed to its
/// monitor in producer order regardless of which shard executes them,
/// fleet output is byte-identical for every shard count, producer
/// count, and steal schedule — enforced against the sequential engine
/// by tests/Runtime/MonitorFleetTest.cpp and
/// tests/Runtime/FleetProducerTest.cpp (TSan-clean).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_MONITORFLEET_H
#define TESSLA_RUNTIME_MONITORFLEET_H

#include "tessla/Runtime/ExecutionEngine.h"
#include "tessla/Runtime/Monitor.h"
#include "tessla/Runtime/TraceIO.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tessla {

class MonitorFleet;

/// How the shards execute their sessions.
enum class FleetMode : uint8_t {
  /// Pick automatically: every shard starts Batched and observes its
  /// arrival pattern over the first FleetOptions::AutoObservationRecords
  /// records — interleaved traffic (short same-session runs) stays
  /// batched, chunky replay (long runs, which batching slows down)
  /// migrates the shard's lanes to a per-session engine. The verdict is
  /// per shard and visible in ShardStats::Engine.
  Auto,
  /// One independent Monitor per session (the original path; kept for
  /// heterogeneous fleets and as the differential reference).
  PerSession,
  /// One BatchedMonitor per shard: sessions become SoA lanes and every
  /// Program step sweeps all active lanes in lockstep (see
  /// Runtime/BatchedMonitor.h). Byte-identical outputs, amortized
  /// dispatch. Work stealing migrates whole lanes between the shards'
  /// batched groups.
  Batched,
  /// Compiled monitor code (CodeGen/NativeCompile.h) behind
  /// FleetOptions::NativeFactory. Native lanes are not migratable, so
  /// work stealing is inert in this mode. Falls back to PerSession —
  /// with the reason in MonitorFleet::engineFallbackReason() — when no
  /// factory was injected.
  Native,
};

/// Fleet construction knobs.
struct FleetOptions {
  /// Worker shards (threads). 0 is clamped to 1.
  unsigned Shards = 1;
  /// Events buffered per (producer, shard) before the batch is handed to
  /// the worker. Larger batches amortize queue traffic; smaller ones cut
  /// latency.
  size_t BatchSize = 256;
  /// Bounded SPSC ring capacity, in batches, per (producer, shard). A
  /// producer blocks when a shard falls this far behind (backpressure).
  size_t QueueCapacity = 64;
  /// Producer-handle slots. producer() beyond this returns an invalid
  /// handle. Slots are preallocated so workers can discover new
  /// producers without locks.
  unsigned MaxProducers = 16;
  /// Enables session work stealing between shards.
  bool WorkStealing = true;
  /// Backlog (buffered records bound for one shard) at which an idle
  /// peer's steal request is honoured. 0 means 4 * BatchSize.
  size_t StealBacklog = 0;
  /// Horizon handed to every session's Monitor::finish() — required for
  /// specs with self-resetting periodic delays.
  std::optional<Time> Horizon;
  /// Record per-session outputs (deep-copied) for takeOutputs(). Turn
  /// off for throughput benchmarks that only need the counters.
  bool CollectOutputs = true;
  /// Execution engine selection (see FleetMode).
  FleetMode Mode = FleetMode::Auto;
  /// Engine factory for FleetMode::Native, injected by the tool layer
  /// (e.g. makeNativeEngineFactory() after tessla::compileNative()); the
  /// runtime library itself never links the code generator. Null means
  /// Native falls back to PerSession.
  EngineFactory NativeFactory;
  /// Auto mode: records a shard routes before deciding its engine. The
  /// verdict uses exactly this many records, so the choice is a
  /// deterministic function of the shard's record sequence.
  uint64_t AutoObservationRecords = 4096;
  /// Auto mode: mean same-session run length (records between session
  /// switches) at or above which a shard counts as *chunky* and
  /// migrates to the per-session engine.
  double AutoChunkThreshold = 16.0;
};

/// Counters of one worker shard (written by the worker, read after
/// finish()).
struct ShardStats {
  uint64_t EventsProcessed = 0;  ///< records fed into session monitors here
  uint64_t BatchesDrained = 0;   ///< producer batches popped from the rings
  uint64_t QueueHighWater = 0;   ///< max batches in flight in any one ring
  uint64_t Sessions = 0;         ///< sessions that finished on this shard
  uint64_t OutputsEmitted = 0;   ///< sum of session monitor outputs
  uint64_t FailedSessions = 0;   ///< sessions whose monitor failed
  uint64_t SessionsStolenIn = 0; ///< sessions migrated onto this shard
  uint64_t SessionsStolenOut = 0; ///< sessions donated to idle peers
  uint64_t RecordsForwarded = 0; ///< records relayed to a session's thief
  uint64_t LockstepSweeps = 0;   ///< batched mode: lockstep sweeps run
  uint64_t BackpressureStalls = 0; ///< producer blocks on this shard's rings
  uint64_t SessionsForkedIn = 0; ///< sessions created here by forkSession()
  uint64_t AggregateBytes = 0;   ///< resident aggregate node bytes (each
                                 ///< shared node counted once)
  uint64_t AggregateNodesUnique = 0; ///< aggregate nodes with one owner
  uint64_t AggregateNodesShared = 0; ///< aggregate nodes with >1 owner
                                     ///< (structural sharing from COW
                                     ///< updates and session forks)
  std::string Engine;            ///< final engine ("per-session", "batched",
                                 ///< "native"); Auto shards show their verdict

  /// Stable self-describing "key=value key=value ..." rendering — one
  /// format shared by `tessla-run --stats`, FleetStats::str() and the
  /// service stats frame. Keys are append-only across releases.
  std::string str() const;
};

/// Aggregated observability report for one fleet run.
struct FleetStats {
  std::vector<ShardStats> Shards;
  uint64_t Producers = 0; ///< producer handles registered over the run

  uint64_t totalEvents() const;
  uint64_t totalOutputs() const;
  uint64_t totalSessions() const;
  uint64_t totalFailedSessions() const;
  uint64_t totalSessionsStolen() const;

  /// Renders the per-shard table plus totals.
  std::string str() const;
};

/// One output event attributed to its session.
struct SessionOutputEvent {
  SessionId Session;
  OutputEvent Event;
};

/// A failed session's diagnostic.
struct SessionError {
  SessionId Session;
  std::string Message;
};

/// Result of a non-blocking ProducerHandle::tryFeed().
enum class FeedStatus : uint8_t {
  Ok,         ///< the record was buffered/handed off
  WouldBlock, ///< the target shard's ring is full (backpressure); retry
              ///< later or fall back to the blocking feed()
  Closed,     ///< invalid or closed handle — the record was rejected
};

/// One producer's ingestion endpoint: a movable handle owning a private
/// ring into every shard (see the file comment for the threading
/// contract). Obtained from MonitorFleet::producer(); an
/// default-constructed or moved-from handle is invalid and rejects
/// feed().
class ProducerHandle {
public:
  ProducerHandle() = default;
  ProducerHandle(ProducerHandle &&O) noexcept
      : Fleet(O.Fleet), Lane(O.Lane) {
    O.Fleet = nullptr;
  }
  ProducerHandle &operator=(ProducerHandle &&O) noexcept {
    if (this != &O) {
      close();
      Fleet = O.Fleet;
      Lane = O.Lane;
      O.Fleet = nullptr;
    }
    return *this;
  }
  ~ProducerHandle() { close(); }

  ProducerHandle(const ProducerHandle &) = delete;
  ProducerHandle &operator=(const ProducerHandle &) = delete;

  /// True for a live handle obtained from producer().
  bool valid() const { return Fleet != nullptr; }

  /// Buffers one input event for \p Session. Events of one session must
  /// arrive in non-decreasing timestamp order (the per-session Monitor
  /// enforces it; violations fail that session only). Blocks when the
  /// target shard's ring is full. \returns false on an invalid/closed
  /// handle.
  bool feed(SessionId Session, StreamId Input, Time Ts, Value V);

  /// Non-blocking feed(): refuses — without buffering the record — when
  /// accepting it could force a blocking ring push (the shard's ring is
  /// full and the pending batch is at capacity). The service layer turns
  /// WouldBlock into a wire-level Busy frame instead of silently
  /// stalling the client.
  FeedStatus tryFeed(SessionId Session, StreamId Input, Time Ts, Value V);

  /// Hands off all partially filled batches now (e.g. before a session
  /// hand-off to another producer).
  void flush();

  /// Flushes, then signals this producer's end-of-input to every shard.
  /// Idempotent; the destructor calls it.
  void close();

private:
  friend class MonitorFleet;
  ProducerHandle(MonitorFleet *F, unsigned LaneIdx)
      : Fleet(F), Lane(LaneIdx) {}

  MonitorFleet *Fleet = nullptr;
  unsigned Lane = 0;
};

/// The sharded multi-session runtime. See the file comment for the
/// threading contract.
class MonitorFleet {
public:
  MonitorFleet(const Program &Prog, FleetOptions Opts = FleetOptions());
  ~MonitorFleet();

  MonitorFleet(const MonitorFleet &) = delete;
  MonitorFleet &operator=(const MonitorFleet &) = delete;

  /// Registers a new producer and returns its handle. Thread-safe.
  /// Returns an invalid handle once finish() ran or all
  /// FleetOptions::MaxProducers slots are taken.
  ProducerHandle producer();

  /// Closes any producer handles still open (requires them quiescent),
  /// drains all rings, signals end-of-input to every session
  /// (Monitor::finish with the configured horizon) and joins the
  /// workers. Idempotent.
  void finish();

  /// Checkpointing twin of finish(): drains everything, then *extracts*
  /// every live session instead of finishing it — lane snapshots (state,
  /// recorded outputs, unconsumed records) sorted by session id, ready
  /// for serializeCheckpoint() and a later restore() into any fleet over
  /// the same Program. Requires a migratable engine (not Native; see
  /// engineFallbackReason() conventions) — with a non-migratable engine
  /// the shards finish normally and suspend() returns an empty vector
  /// with \p ErrorOut set. Terminal like finish(): the fleet accepts no
  /// further input afterwards.
  std::vector<EngineLaneState> suspend(std::string *ErrorOut = nullptr);

  /// Injects checkpointed lane snapshots into their home shards (through
  /// the same migration inboxes work stealing uses) and waits until the
  /// workers adopted them. Must complete before any producer feeds the
  /// restored sessions; restoring a session that is already live is a
  /// caller error. \returns false on a finished fleet, a non-migratable
  /// engine, or duplicate session ids in \p Lanes.
  bool restore(std::vector<EngineLaneState> Lanes);

  /// O(1) snapshot-fork of live session \p Src into new session \p Dst:
  /// the worker executing \p Src snapshots its lane at a quiescent point
  /// (ShardEngine::snapshotLane — aggregate state is shared structurally
  /// under COW, never deep-copied) and the copy is adopted on \p Dst's
  /// home shard, ready to diverge under its own input. The fork cost is
  /// independent of the session's state size. Records fed to \p Src
  /// concurrently with the fork land on either side of the fork point
  /// nondeterministically — quiesce \p Src's producer first for a
  /// deterministic fork. Called from the controlling thread (serialized
  /// with finish()/suspend()/restore()). \returns false — with
  /// \p ErrorOut set — when \p Src is not live, \p Dst already is,
  /// \p Src == \p Dst, the engine is not migratable (Native), or the
  /// fleet already finished.
  bool forkSession(SessionId Src, SessionId Dst,
                   std::string *ErrorOut = nullptr);

  /// True once finish() ran and at least one session's monitor failed.
  bool failed() const;

  /// Failed sessions in ascending session-id order. Valid after
  /// finish().
  std::vector<SessionError> errors() const;

  /// The deterministic merged output trace: sessions in ascending id
  /// order, each session's events in emission order (timestamp, then
  /// stream definition order). Valid after finish(); moves the events
  /// out.
  std::vector<SessionOutputEvent> takeOutputs();

  /// Per-shard counters. Valid after finish().
  const FleetStats &stats() const { return Stats; }

  unsigned shardCount() const { return static_cast<unsigned>(Workers.size()); }

  /// The resolved execution mode (never Auto): the engine every shard
  /// *starts* with. Under FleetMode::Auto this is Batched — shards that
  /// observe chunky arrivals then migrate themselves to per-session,
  /// which ShardStats::Engine reports.
  FleetMode mode() const { return Mode; }

  /// Non-empty when the requested mode could not be honoured (e.g.
  /// Native without a NativeFactory) and the fleet fell back to
  /// PerSession.
  const std::string &engineFallbackReason() const { return EngineFallback; }

  /// The shard a session's records are ingested through (its *home*
  /// shard): hash(session) % shards, with a bit-mixing hash so
  /// sequential ids spread evenly. Work stealing may execute the
  /// session elsewhere; the home shard then forwards.
  unsigned shardOf(SessionId Session) const;

private:
  friend class ProducerHandle;

  struct Shard;
  struct ProducerLane;

  const Program &Prog;
  FleetOptions Opts;
  FleetMode Mode = FleetMode::PerSession; // resolved, never Auto
  bool AutoMode = false; // shards may re-decide their engine
  std::string EngineFallback;
  std::vector<std::unique_ptr<Shard>> Workers;

  // Producer fan-in: preallocated lane slots (no reallocation, so
  // workers index lanes below LaneCount without locks). AdminMu guards
  // registration and lane close; the feed hot path takes no lock.
  std::vector<std::unique_ptr<ProducerLane>> Lanes;
  std::atomic<unsigned> LaneCount{0};
  std::atomic<uint64_t> NextBatchSeq{0};
  std::atomic<bool> Finishing{false};
  std::atomic<bool> Suspending{false};
  std::atomic<unsigned> DrainedWorkers{0};
  std::atomic<uint64_t> RestoresAdopted{0};
  // One fork in flight at a time (ForkMu); outcome codes: 0 pending,
  // 1 adopted, -1 source not live, -2 destination already live.
  std::atomic<int> ForkOutcome{0};
  std::mutex ForkMu;
  std::mutex AdminMu;

  FleetStats Stats;
  bool Finished = false;

  void joinAndCollect();
  bool laneFeed(unsigned LaneIdx, SessionId Session, StreamId Input,
                Time Ts, Value V);
  FeedStatus laneTryFeed(unsigned LaneIdx, SessionId Session,
                         StreamId Input, Time Ts, Value V);
  void laneFlush(unsigned LaneIdx);
  void laneFlushShard(ProducerLane &L, unsigned ShardIdx);
  void laneClose(unsigned LaneIdx);
  void bumpSignal(unsigned ShardIdx);
  void finishFork(int Outcome);
};

} // namespace tessla

#endif // TESSLA_RUNTIME_MONITORFLEET_H
