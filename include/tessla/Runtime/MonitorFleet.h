//===- tessla/Runtime/MonitorFleet.h - Sharded multi-session runtime -*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-session monitor runtime: one Program served to many
/// concurrent trace sessions across N worker shards. Each session id is
/// pinned to a shard (hash(session) % shards) and runs its own
/// independent Monitor, so everything the single-session engine relies
/// on for speed — non-atomic RefCntPtr spines, destructively updated
/// mutable aggregates — stays strictly single-threaded *within* a shard.
/// No monitor state is ever shared between threads.
///
/// Ingestion is batched: the (single) caller thread buffers
/// (session, event) records per shard and hands full batches to the
/// shard's worker over a bounded lock-free SPSC ring. Outputs are
/// collected per session and merged deterministically — by session id,
/// then per-session emission order (timestamp, then stream definition
/// order) — so fleet output is byte-identical regardless of the shard
/// count. The determinism property is enforced by
/// tests/Runtime/MonitorFleetTest.cpp against the sequential engine.
///
/// Usage:
/// \code
///   MonitorFleet Fleet(Prog, {.Shards = 4});
///   Fleet.feed(SessionA, InputId, 3, Value::integer(7));
///   Fleet.feed(SessionB, InputId, 1, Value::integer(9));
///   Fleet.finish();
///   for (const SessionOutputEvent &E : Fleet.takeOutputs()) ...
///   Fleet.stats().str();   // per-shard counters
/// \endcode
///
/// Threading contract: feed()/finish()/takeOutputs() must be called from
/// one thread (the ingest thread); the fleet owns its worker threads.
/// Per-session event order is preserved; cross-session order within a
/// shard follows the ingest interleaving, which is invisible in the
/// output because sessions are independent.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_MONITORFLEET_H
#define TESSLA_RUNTIME_MONITORFLEET_H

#include "tessla/Runtime/Monitor.h"

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

namespace tessla {

/// Identifies one monitoring session (e.g. one user/connection).
using SessionId = uint64_t;

/// Fleet construction knobs.
struct FleetOptions {
  /// Worker shards (threads). 0 is clamped to 1.
  unsigned Shards = 1;
  /// Events buffered per shard before the batch is handed to the worker.
  /// Larger batches amortize queue traffic; smaller ones cut latency.
  size_t BatchSize = 256;
  /// Bounded SPSC ring capacity, in batches, per shard. The ingest
  /// thread blocks when a shard falls this far behind (backpressure).
  size_t QueueCapacity = 64;
  /// Horizon handed to every session's Monitor::finish() — required for
  /// specs with self-resetting periodic delays.
  std::optional<Time> Horizon;
  /// Record per-session outputs (deep-copied) for takeOutputs(). Turn
  /// off for throughput benchmarks that only need the counters.
  bool CollectOutputs = true;
};

/// Counters of one worker shard (written by the worker, read after
/// finish()).
struct ShardStats {
  uint64_t EventsProcessed = 0; ///< records fed into session monitors
  uint64_t BatchesDrained = 0;  ///< batches popped from the ring
  uint64_t QueueHighWater = 0;  ///< max batches in flight in the ring
  uint64_t Sessions = 0;        ///< distinct sessions pinned here
  uint64_t OutputsEmitted = 0;  ///< sum of session monitor outputs
  uint64_t FailedSessions = 0;  ///< sessions whose monitor failed
};

/// Aggregated observability report for one fleet run.
struct FleetStats {
  std::vector<ShardStats> Shards;

  uint64_t totalEvents() const;
  uint64_t totalOutputs() const;
  uint64_t totalSessions() const;
  uint64_t totalFailedSessions() const;

  /// Renders the per-shard table plus totals.
  std::string str() const;
};

/// One output event attributed to its session.
struct SessionOutputEvent {
  SessionId Session;
  OutputEvent Event;
};

/// A failed session's diagnostic.
struct SessionError {
  SessionId Session;
  std::string Message;
};

/// The sharded multi-session runtime. See the file comment for the
/// threading contract.
class MonitorFleet {
public:
  MonitorFleet(const Program &Prog, FleetOptions Opts = FleetOptions());
  ~MonitorFleet();

  MonitorFleet(const MonitorFleet &) = delete;
  MonitorFleet &operator=(const MonitorFleet &) = delete;

  /// Buffers one input event for \p Session. Events of one session must
  /// arrive in non-decreasing timestamp order (the per-session Monitor
  /// enforces it; violations fail that session only). \returns false
  /// after finish().
  bool feed(SessionId Session, StreamId Input, Time Ts, Value V);

  /// Flushes all buffered batches, signals end-of-input to every
  /// session (Monitor::finish with the configured horizon) and joins
  /// the workers. Idempotent.
  void finish();

  /// True once finish() ran and at least one session's monitor failed.
  bool failed() const;

  /// Failed sessions in ascending session-id order. Valid after
  /// finish().
  std::vector<SessionError> errors() const;

  /// The deterministic merged output trace: sessions in ascending id
  /// order, each session's events in emission order (timestamp, then
  /// stream definition order). Valid after finish(); moves the events
  /// out.
  std::vector<SessionOutputEvent> takeOutputs();

  /// Per-shard counters. Valid after finish().
  const FleetStats &stats() const { return Stats; }

  unsigned shardCount() const { return static_cast<unsigned>(Workers.size()); }

  /// The shard a session is pinned to: hash(session) % shards, with a
  /// bit-mixing hash so sequential ids spread evenly.
  unsigned shardOf(SessionId Session) const;

private:
  struct Shard;

  const Program &Prog;
  FleetOptions Opts;
  std::vector<std::unique_ptr<Shard>> Workers;
  FleetStats Stats;
  bool Finished = false;

  void flushPending(unsigned ShardIdx);
};

} // namespace tessla

#endif // TESSLA_RUNTIME_MONITORFLEET_H
