//===- tessla/Runtime/BuiltinImpls.h - Lifted function eval ----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation of built-in lifted functions over runtime values. Every
/// aggregate-writing builtin has two modes selected by the mutability
/// analysis:
///
///  * persistent (InPlace = false): the argument payload is left
///    untouched; the result is a fresh handle around the persistent
///    structure's updated version (path copying);
///  * destructive (InPlace = true): the mutable payload is updated in
///    place and the argument handle is returned as the result — the
///    "destructive update" of §I.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_BUILTINIMPLS_H
#define TESSLA_RUNTIME_BUILTINIMPLS_H

#include "tessla/Runtime/Containers.h"

namespace tessla {

/// Collects the first runtime evaluation error (division by zero, missing
/// map key, empty queue, dynamic type mismatch).
struct EvalError {
  bool Failed = false;
  std::string Message;

  void fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      Message = std::move(Msg);
    }
  }
};

/// Uniform evaluator signature shared by every builtin: \p Args holds the
/// argument pointers (entries may be null only for builtins with optional
/// presence, i.e. EventSemantics::FirstAndAnyRest); \p InPlace selects the
/// destructive mode for aggregate updates and the representation of
/// freshly created aggregates. On error, sets \p Err and returns unit.
using BuiltinFn = Value (*)(const Value *const *Args, bool InPlace,
                            EvalError &Err);

/// Returns the evaluator for \p Fn — the compile-time half of the
/// interpreter's dispatch. Program::compile resolves every lift step to
/// its function pointer once, so the per-event hot path never switches
/// over BuiltinId.
BuiltinFn builtinImpl(BuiltinId Fn);

/// One-shot convenience wrapper: builtinImpl(Fn)(Args, InPlace, Err).
Value applyBuiltin(BuiltinId Fn, const Value *const *Args, unsigned NumArgs,
                   bool InPlace, EvalError &Err);

} // namespace tessla

#endif // TESSLA_RUNTIME_BUILTINIMPLS_H
