//===- tessla/Runtime/Checkpoint.h - Fleet checkpoints (.tcp) --*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TeSSLa Checkpoint (".tcp") format: a versioned, little-endian
/// binary serialization of live monitor state — the EngineLaneState
/// snapshots MonitorFleet::suspend() extracts through the engine
/// migration contract — so sessions survive their process. A checkpoint
/// restores into a fresh fleet of *any* shard count over the same
/// Program (MonitorFleet::restore), in this process or another, and the
/// resumed run is byte-identical to an uninterrupted one.
///
/// Layout mirrors the `.tpb` bundle (Program/Serialize.h), built on the
/// same Program/BinaryCodec.h primitives:
///
///   offset 0   4  magic bytes 'T' 'C' 'P' 0x1A
///   offset 4   4  u32 format version (TCPFormatVersion)
///   offset 8   8  u64 FNV-1a-64 checksum of every byte from offset 16
///                 to the end of the checkpoint
///   offset 16  4  u32 section count
///   then per section: u32 tag, u64 payload size, payload
///
/// Sections:
///   META  u64 program checksum (tpbChecksum over the serialized
///         Program — a checkpoint is only valid against the exact
///         program it was taken from), u32 source shard count
///         (informational), u64 lane count
///   LANE  the lane snapshots: per lane the full EngineLaneState —
///         session id, cursor/flags/counters, slot values and presence,
///         last slots, armed delay timers, unconsumed buffered records,
///         and the outputs recorded before the suspend
///
/// Loading is untrusting, exactly like the `.tpb` loader: every read is
/// bounds-checked, every array length is validated against the Program
/// the caller loaded (slot counts, last/delay table sizes, stream ids),
/// the program checksum must match, and truncated/bit-flipped inputs
/// produce diagnostics, never undefined behavior. Any layout change
/// bumps TCPFormatVersion.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_CHECKPOINT_H
#define TESSLA_RUNTIME_CHECKPOINT_H

#include "tessla/Program/Program.h"
#include "tessla/Runtime/ExecutionEngine.h"
#include "tessla/Support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace tessla {

class MonitorFleet;

/// Current checkpoint format version. Bump on any layout change.
constexpr uint32_t TCPFormatVersion = 2;

/// The four magic bytes opening every checkpoint.
constexpr uint8_t TCPMagic[4] = {'T', 'C', 'P', 0x1A};

/// Byte offset of the checksum field; the checksum covers every byte
/// from TCPChecksumStart to the end of the checkpoint.
constexpr size_t TCPChecksumStart = 16;

/// One suspended fleet: the program it ran (by checksum), the shard
/// count it ran with (informational — restore may pick any) and every
/// live session's lane snapshot, sorted by session id.
struct FleetCheckpoint {
  uint64_t ProgramChecksum = 0;
  uint32_t SourceShards = 0;
  std::vector<EngineLaneState> Lanes;
};

/// The identity a checkpoint binds to: the FNV-1a-64 checksum of \p P's
/// canonical `.tpb` serialization. Deterministic encoding makes this a
/// stable program fingerprint.
uint64_t programChecksum(const Program &P);

/// Serializes \p C into a self-contained checkpoint. Deterministic:
/// equal checkpoints yield equal bytes.
std::vector<uint8_t> serializeCheckpoint(const FleetCheckpoint &C);

/// Loads a checkpoint and validates it against \p P: magic, version,
/// content checksum, program checksum, and every lane's array sizes and
/// stream ids. Reports through \p Diags and returns nullopt on any
/// problem; never exhibits undefined behavior on malformed input.
std::optional<FleetCheckpoint> loadCheckpoint(const uint8_t *Data,
                                              size_t Size, const Program &P,
                                              DiagnosticEngine &Diags);
std::optional<FleetCheckpoint> loadCheckpoint(
    const std::vector<uint8_t> &Bytes, const Program &P,
    DiagnosticEngine &Diags);

/// File convenience wrappers ("fleet.tcp" in/out).
bool writeCheckpointFile(const FleetCheckpoint &C, const std::string &Path,
                         DiagnosticEngine &Diags);
std::optional<FleetCheckpoint> loadCheckpointFile(const std::string &Path,
                                                  const Program &P,
                                                  DiagnosticEngine &Diags);

/// Convenience: suspends \p Fleet (terminal — see MonitorFleet::suspend)
/// and serializes the result against \p P. Returns nullopt with
/// \p ErrorOut set when the fleet cannot be checkpointed (e.g. native
/// engine).
std::optional<std::vector<uint8_t>>
checkpointFleet(MonitorFleet &Fleet, const Program &P,
                std::string *ErrorOut = nullptr);

} // namespace tessla

#endif // TESSLA_RUNTIME_CHECKPOINT_H
