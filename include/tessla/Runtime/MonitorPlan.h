//===- tessla/Runtime/MonitorPlan.h - Compiled monitor plan ----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable form of a specification: the calculation section's steps
/// in translation order (§III-A), plus the bookkeeping the triggering
/// section needs (last-value slots, delay scheduling, outputs). This is
/// the interpreter analogue of the paper's generated Scala code; the
/// CodeGen library emits the same plan as C++ source instead.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_MONITORPLAN_H
#define TESSLA_RUNTIME_MONITORPLAN_H

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Runtime/Value.h"

namespace tessla {

/// One statement of the calculation section.
struct PlanStep {
  StreamId Id;
  StreamKind Kind;
  BuiltinId Fn = BuiltinId::Merge;          // Lift only
  EventSemantics Events = EventSemantics::All; // Lift only (cached)
  /// True when this stream's aggregate family is mutable: aggregate
  /// updates run destructively and fresh aggregates use the mutable
  /// representation.
  bool InPlace = false;
  std::vector<StreamId> Args;
  Value ConstVal; // Const steps (also Unit's payload)
};

/// A delay stream with its operand slots.
struct DelayInfo {
  StreamId Id;
  StreamId DelaysArg;
  StreamId ResetArg;
};

/// Compiled plan; shares ownership of the spec with the analysis result.
class MonitorPlan {
public:
  /// Compiles \p Analysis' spec using its translation order and
  /// mutability set. Pass a baseline AnalysisResult (Optimize=false) for
  /// the paper's all-persistent reference monitor.
  static MonitorPlan compile(const AnalysisResult &Analysis);

  const Spec &spec() const { return *S; }
  const std::vector<PlanStep> &steps() const { return Steps; }
  /// Streams used as the first argument of some last (need a *_last slot).
  const std::vector<StreamId> &lastValueSources() const {
    return LastSources;
  }
  const std::vector<DelayInfo> &delays() const { return Delays; }
  const std::vector<StreamId> &outputs() const { return Outputs; }
  uint32_t numStreams() const { return S->numStreams(); }

  /// Number of steps executing destructive aggregate updates (stats).
  uint32_t inPlaceStepCount() const;

  /// Renders the calculation section's steps, one per line, with the
  /// in-place markers — the interpreter-side analogue of reading the
  /// generated code.
  std::string str() const;

private:
  std::shared_ptr<const Spec> S;
  std::vector<PlanStep> Steps;
  std::vector<StreamId> LastSources;
  std::vector<DelayInfo> Delays;
  std::vector<StreamId> Outputs;
};

} // namespace tessla

#endif // TESSLA_RUNTIME_MONITORPLAN_H
