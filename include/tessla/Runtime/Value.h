//===- tessla/Runtime/Value.h - Runtime stream values ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value carried by one stream event: a scalar (unit, bool,
/// int, float, string) or a handle to an aggregate (set, map, queue).
/// Aggregate payloads live behind shared_ptr handles so that values can be
/// passed between streams in O(1); whether a handle's payload is a
/// persistent structure (copied-on-update, baseline) or a mutable one
/// (updated in place, optimized) is decided per stream family by the
/// aggregate update analysis.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_VALUE_H
#define TESSLA_RUNTIME_VALUE_H

#include "tessla/Lang/Spec.h"

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

namespace tessla {

struct SetData;
struct MapData;
struct QueueData;

/// Runtime value. Cheap to copy (scalars by value, aggregates by handle).
class Value {
public:
  enum class Kind : uint8_t { Unit, Bool, Int, Float, String, Set, Map,
                              Queue };

  /// Defaults to the unit value.
  Value() = default;
  ~Value();
  Value(const Value &) = default;
  Value(Value &&) noexcept = default;
  Value &operator=(const Value &) = default;
  Value &operator=(Value &&) noexcept = default;

  static Value unit() { return Value(); }
  static Value boolean(bool B) { return Value(Payload(B)); }
  static Value integer(int64_t I) { return Value(Payload(I)); }
  static Value floating(double D) { return Value(Payload(D)); }
  static Value string(std::string S) { return Value(Payload(std::move(S))); }
  static Value set(std::shared_ptr<SetData> D) {
    return Value(Payload(std::move(D)));
  }
  static Value map(std::shared_ptr<MapData> D) {
    return Value(Payload(std::move(D)));
  }
  static Value queue(std::shared_ptr<QueueData> D) {
    return Value(Payload(std::move(D)));
  }

  /// Builds a value from a specification literal.
  static Value fromLiteral(const ConstantLit &Lit);

  Kind kind() const { return static_cast<Kind>(V.index()); }
  bool isAggregate() const {
    return kind() == Kind::Set || kind() == Kind::Map ||
           kind() == Kind::Queue;
  }

  bool getBool() const { return std::get<bool>(V); }
  int64_t getInt() const { return std::get<int64_t>(V); }
  double getFloat() const { return std::get<double>(V); }
  const std::string &getString() const { return std::get<std::string>(V); }
  const std::shared_ptr<SetData> &getSet() const {
    return std::get<std::shared_ptr<SetData>>(V);
  }
  const std::shared_ptr<MapData> &getMap() const {
    return std::get<std::shared_ptr<MapData>>(V);
  }
  const std::shared_ptr<QueueData> &getQueue() const {
    return std::get<std::shared_ptr<QueueData>>(V);
  }

  /// Returns a value unaffected by future destructive updates: mutable
  /// aggregate payloads are cloned, persistent ones (immutable by
  /// construction) and scalars are shared. Required when storing values
  /// received from a monitor output handler beyond the callback.
  Value deepCopy() const;

  /// Deep structural equality (aggregates compared element-wise,
  /// independent of representation).
  friend bool operator==(const Value &A, const Value &B);
  friend bool operator!=(const Value &A, const Value &B) {
    return !(A == B);
  }

  /// Total order across all values: by kind, then by content. Gives
  /// aggregates a canonical (sorted) rendering so optimized and baseline
  /// monitors print byte-identical traces.
  friend int compareValues(const Value &A, const Value &B);

  /// Deep hash consistent with operator==.
  size_t hash() const;

  /// Canonical rendering: 42, 1.5, true, "s", (), {1, 2}, {1 -> 2},
  /// <1, 2, 3> (queue front first).
  std::string str() const;

private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   std::shared_ptr<SetData>, std::shared_ptr<MapData>,
                   std::shared_ptr<QueueData>>;

  explicit Value(Payload P) : V(std::move(P)) {}

  Payload V;
};

/// Deep structural equality across representations.
bool operator==(const Value &A, const Value &B);
/// Total order over values (see the friend declaration above).
int compareValues(const Value &A, const Value &B);

/// Hash functor for containers of Values.
struct ValueHash {
  size_t operator()(const Value &V) const { return V.hash(); }
};

/// Human-readable kind name ("Int", "Set", ...).
std::string_view valueKindName(Value::Kind K);

} // namespace tessla

#endif // TESSLA_RUNTIME_VALUE_H
