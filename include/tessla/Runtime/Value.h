//===- tessla/Runtime/Value.h - Runtime stream values ----------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value carried by one stream event: a scalar (unit, bool,
/// int, float, string) or a handle to an aggregate (set, map, queue).
/// Aggregate payloads live behind shared_ptr handles so values pass
/// between streams in O(1). Every payload is one persistent structure
/// (HAMT / banker's queue) with refcounted nodes; reads go through
/// immutable views (asSet/asMap/asQueue) and updates through
/// copy-on-write mutation handles (setCow/mapCow/queueCow) that apply
/// the aggregate update analysis's in-place verdict as a destructive
/// fast tier over the same representation — see Runtime/Containers.h.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_RUNTIME_VALUE_H
#define TESSLA_RUNTIME_VALUE_H

#include "tessla/Lang/Spec.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>

namespace tessla {

struct SetData;
struct MapData;
struct QueueData;
class SetView;
class MapView;
class QueueView;
class SetCow;
class MapCow;
class QueueCow;

/// Runtime value. Cheap to copy (scalars by value, aggregates by handle).
class Value {
public:
  enum class Kind : uint8_t { Unit, Bool, Int, Float, String, Set, Map,
                              Queue };

  /// Defaults to the unit value.
  Value() = default;
  ~Value();
  Value(const Value &) = default;
  Value(Value &&) noexcept = default;
  Value &operator=(const Value &) = default;
  Value &operator=(Value &&) noexcept = default;

  static Value unit() { return Value(); }
  static Value boolean(bool B) { return Value(Payload(B)); }
  static Value integer(int64_t I) { return Value(Payload(I)); }
  static Value floating(double D) { return Value(Payload(D)); }
  static Value string(std::string S) { return Value(Payload(std::move(S))); }
  static Value set(std::shared_ptr<SetData> D) {
    return Value(Payload(std::move(D)));
  }
  static Value map(std::shared_ptr<MapData> D) {
    return Value(Payload(std::move(D)));
  }
  static Value queue(std::shared_ptr<QueueData> D) {
    return Value(Payload(std::move(D)));
  }

  /// Builds a value from a specification literal.
  static Value fromLiteral(const ConstantLit &Lit);

  Kind kind() const { return static_cast<Kind>(V.index()); }
  bool isAggregate() const {
    return kind() == Kind::Set || kind() == Kind::Map ||
           kind() == Kind::Queue;
  }

  bool getBool() const { return std::get<bool>(V); }
  int64_t getInt() const { return std::get<int64_t>(V); }
  double getFloat() const { return std::get<double>(V); }
  const std::string &getString() const { return std::get<std::string>(V); }

  /// Fresh empty aggregates.
  static Value emptySet();
  static Value emptyMap();
  static Value emptyQueue();

  /// Immutable views onto aggregate payloads (Runtime/Containers.h) —
  /// the only way to read an aggregate. Precondition: matching kind().
  /// The view is valid while this value (or a copy of its handle) lives.
  SetView asSet() const;
  MapView asMap() const;
  QueueView asQueue() const;

  /// Copy-on-write mutation handles. \p InPlace is the mutability
  /// analysis's verdict for the updated stream family: when it proved
  /// exclusivity and this value's handle is dynamically unique, the
  /// handle mutates the payload destructively (the paper's in-place
  /// regime); otherwise it starts from an O(1) wrapper copy that shares
  /// the node tree and every update path-copies — all other sharers are
  /// unaffected. Precondition: matching kind().
  SetCow setCow(bool InPlace) const;
  MapCow mapCow(bool InPlace) const;
  QueueCow queueCow(bool InPlace) const;

  /// The payload pointer of an aggregate (nullptr for scalars): stable
  /// identity for structural-sharing detection (serialization dedup,
  /// equality fast paths, memory accounting).
  const void *aggregateIdentity() const;

  /// Memory-accounting walk: reports the payload wrapper and every
  /// persistent node of an aggregate as (pointer, resident bytes,
  /// refcount); the callback returns true to descend, false to skip a
  /// subtree it has already visited through another root. Top-level
  /// payload only — aggregates nested inside elements are not walked.
  /// No-op for scalars.
  void forEachAggregateNode(
      const std::function<bool(const void *, size_t, uint32_t)> &Callback)
      const;

  /// Historical name from the dual-representation era, when mutable
  /// payloads had to be cloned before outliving a handler callback.
  /// Payloads are persistent now: sharing the handle is always safe (a
  /// later destructive update sees the share and path-copies), so this
  /// is the identity — O(1).
  Value deepCopy() const { return *this; }

  /// Deep structural equality (aggregates compared element-wise,
  /// independent of representation).
  friend bool operator==(const Value &A, const Value &B);
  friend bool operator!=(const Value &A, const Value &B) {
    return !(A == B);
  }

  /// Total order across all values: by kind, then by content. Gives
  /// aggregates a canonical (sorted) rendering so optimized and baseline
  /// monitors print byte-identical traces.
  friend int compareValues(const Value &A, const Value &B);

  /// Deep hash consistent with operator==.
  size_t hash() const;

  /// Canonical rendering: 42, 1.5, true, "s", (), {1, 2}, {1 -> 2},
  /// <1, 2, 3> (queue front first).
  std::string str() const;

private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   std::shared_ptr<SetData>, std::shared_ptr<MapData>,
                   std::shared_ptr<QueueData>>;

  explicit Value(Payload P) : V(std::move(P)) {}

  Payload V;
};

/// Deep structural equality across representations.
bool operator==(const Value &A, const Value &B);
/// Total order over values (see the friend declaration above).
int compareValues(const Value &A, const Value &B);

/// Hash functor for containers of Values.
struct ValueHash {
  size_t operator()(const Value &V) const { return V.hash(); }
};

/// Human-readable kind name ("Int", "Set", ...).
std::string_view valueKindName(Value::Kind K);

} // namespace tessla

#endif // TESSLA_RUNTIME_VALUE_H
