//===- tessla/Compiler/Compiler.h - One-call embedding API -----*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified embedding API: one call from TeSSLa source (or an already
/// type-checked flat spec) to an executable, optionally optimized
/// Program. Everything in between — parsing, flattening, type checking,
/// the aggregate update analysis, lowering, the -O1 pass pipeline — is
/// driven internally, so embedders write
///
/// \code
///   DiagnosticEngine Diags;
///   auto P = tessla::compileSpec(Source, {}, Diags);
///   if (!P) { report(Diags); return; }
///   Monitor M(*P);                       // or MonitorFleet(*P, FOpts)
/// \endcode
///
/// and never hand-chain pipeline stages. Programs round-trip through the
/// .tpb bundle format (Program/Serialize.h) for deployment without any
/// of this — a bundle consumer links only the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_COMPILER_COMPILER_H
#define TESSLA_COMPILER_COMPILER_H

#include "tessla/Opt/PassManager.h"
#include "tessla/Program/Program.h"
#include "tessla/Support/Diagnostics.h"

#include <optional>
#include <string_view>

namespace tessla {

/// Knobs for compileSpec. The defaults mirror the paper's optimized
/// configuration at -O0: the aggregate update analysis on, no
/// program-level passes.
struct CompileOptions {
  /// The aggregate update optimization (§IV). False reproduces the
  /// paper's baseline: every aggregate stays persistent.
  bool Optimize = true;
  /// Program-level optimization: 0 = lower only, 1 = constant folding,
  /// step fusion and dead step elimination (Opt/PassManager.h).
  unsigned OptLevel = 0;
  /// Run the IR verifier after every pass (cheap; leave on outside
  /// hot compile loops).
  bool Verify = true;
};

/// Compiles TeSSLa source into an executable Program: parse, flatten,
/// typecheck, analyze, lower and (per \p Opts.OptLevel) optimize.
/// Reports through \p Diags and returns nullopt on any error. \p Stats,
/// when given, receives per-pass statistics of the -O1 pipeline.
std::optional<Program> compileSpec(std::string_view Source,
                                   const CompileOptions &Opts,
                                   DiagnosticEngine &Diags,
                                   OptStatistics *Stats = nullptr);

/// Same, from an already flattened and type-checked spec (e.g. built
/// with SpecBuilder + typecheck(), or Eval workloads). Analysis runs on
/// a copy; \p S is not modified.
std::optional<Program> compileSpec(const Spec &S,
                                   const CompileOptions &Opts,
                                   DiagnosticEngine &Diags,
                                   OptStatistics *Stats = nullptr);

} // namespace tessla

#endif // TESSLA_COMPILER_COMPILER_H
