//===- tests/RandomSpecGen.h - Random specification generator ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random valid specifications for property tests: layered
/// (acyclic) definitions over two Int inputs mixing scalar and aggregate
/// operators, accumulator (write-into-last) loops, and — optionally —
/// delay streams. Shared by the differential suite (optimized vs
/// baseline), the semantics oracle (delay-free subset; the oracle's
/// timestamp universe is the input timestamps) and the fleet determinism
/// suite (fleet vs sequential engine).
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_TESTS_RANDOMSPECGEN_H
#define TESSLA_TESTS_RANDOMSPECGEN_H

#include "tessla/Lang/Builder.h"
#include "tessla/Lang/TypeCheck.h"
#include "tessla/Runtime/TraceIO.h"

#include <gtest/gtest.h>

#include <random>

namespace tessla {
namespace testrandom {

struct RandomSpecOptions {
  /// Also generate delay streams. Amounts are taken from time(reset), so
  /// they are positive whenever input timestamps start at 1, and every
  /// armed timer fires at most once per re-arm — finish() terminates
  /// without a horizon.
  bool WithDelay = false;
  /// Also generate queueDeq/queueFront (guarded by a fresh enqueue so
  /// the queue is never empty at evaluation time).
  bool WithQueueOps = true;
};

/// Generates a random valid specification over two Int inputs "a" and
/// "b", with every scalar stream marked as output. Pure function of
/// \p Seed and \p Opts.
inline Spec randomSpec(uint64_t Seed,
                       const RandomSpecOptions &Opts = RandomSpecOptions()) {
  std::mt19937_64 Rng(Seed);
  SpecBuilder B;
  std::vector<StreamId> Ints;
  std::vector<StreamId> Bools;
  std::vector<StreamId> Sets;
  std::vector<StreamId> Maps;
  std::vector<StreamId> Queues;

  Ints.push_back(B.input("a", Type::integer()));
  Ints.push_back(B.input("b", Type::integer()));
  StreamId Unit = B.unit("u");
  Sets.push_back(B.lift("e0", BuiltinId::SetEmpty, {Unit}));
  Maps.push_back(B.lift("em0", BuiltinId::MapEmpty, {Unit}));
  Queues.push_back(B.lift("eq0", BuiltinId::QueueEmpty, {Unit}));
  Ints.push_back(B.constant("c0", ConstantLit{int64_t{3}}));

  auto Pick = [&Rng](const std::vector<StreamId> &Pool) {
    return Pool[Rng() % Pool.size()];
  };

  unsigned NumCases = 16 + (Opts.WithQueueOps ? 1 : 0) +
                      (Opts.WithDelay ? 1 : 0);
  unsigned NumDefs = 8 + Rng() % 20;
  for (unsigned I = 0; I != NumDefs; ++I) {
    std::string Name = "s" + std::to_string(I);
    switch (Rng() % NumCases) {
    case 0:
      Ints.push_back(B.lift(Name, BuiltinId::Add, {Pick(Ints),
                                                   Pick(Ints)}));
      break;
    case 1:
      Ints.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Ints),
                                                     Pick(Ints)}));
      break;
    case 2:
      Ints.push_back(B.time(Name, Pick(Ints)));
      break;
    case 3:
      Ints.push_back(B.last(Name, Pick(Ints), Pick(Ints)));
      break;
    case 4:
      Bools.push_back(B.lift(Name, BuiltinId::SetContains,
                             {Pick(Sets), Pick(Ints)}));
      break;
    case 5:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetAdd
                                      : BuiltinId::SetToggle,
                            {Pick(Sets), Pick(Ints)}));
      break;
    case 6:
      Sets.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Sets),
                                                     Pick(Sets)}));
      break;
    case 7:
      Sets.push_back(B.last(Name, Pick(Sets), Pick(Ints)));
      break;
    case 8:
      Maps.push_back(B.lift(Name, BuiltinId::MapPut,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 9:
      Ints.push_back(B.lift(Name, BuiltinId::MapGetOrElse,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 10:
      Queues.push_back(B.lift(Name, BuiltinId::QueueEnq,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 11:
      if (!Bools.empty()) {
        Sets.push_back(B.lift(Name, BuiltinId::Filter,
                              {Pick(Sets), Pick(Bools)}));
      } else {
        Ints.push_back(B.lift(Name, BuiltinId::SetSize, {Pick(Sets)}));
      }
      break;
    case 12:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetUnion
                                      : BuiltinId::SetDiff,
                            {Pick(Sets), Pick(Sets)}));
      break;
    case 13:
      Queues.push_back(B.lift(Name, BuiltinId::QueueTrim,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 14:
      Maps.push_back(B.lift(Name, BuiltinId::MapRemove,
                            {Pick(Maps), Pick(Ints)}));
      break;
    case 15:
      Ints.push_back(B.lift(Name, BuiltinId::QueueSize, {Pick(Queues)}));
      break;
    case 16: {
      // queueDeq/queueFront error on empty queues, so guard them with a
      // fresh enqueue: whenever the composite fires, the queue holds at
      // least the just-enqueued element.
      StreamId NonEmpty = B.lift(Name + "e", BuiltinId::QueueEnq,
                                 {Pick(Queues), Pick(Ints)});
      if (Rng() % 2)
        Queues.push_back(B.lift(Name, BuiltinId::QueueDeq, {NonEmpty}));
      else
        Ints.push_back(B.lift(Name, BuiltinId::QueueFront, {NonEmpty}));
      break;
    }
    case 17: {
      // delay(time(r), r): every event of r re-arms the timer to fire
      // at 2*t(r). The reset must be one of the raw inputs — derived
      // streams can fire at t=0 (via constants), where time() is 0 and
      // delay amounts must be positive. Traces start at t >= 1
      // (randomSpecTrace guarantees it), and a firing never re-arms
      // itself, so the drain at finish() is finite.
      StreamId Reset = Ints[Rng() % 2];
      StreamId Amount = B.time(Name + "t", Reset);
      StreamId D = B.delay(Name, Amount, Reset);
      B.markOutput(D);
      Ints.push_back(B.time(Name + "dt", D));
      break;
    }
    }
  }
  // Anchor the empty-aggregate constructors with one concrete use each so
  // their element types are always inferable.
  B.lift("anchorS", BuiltinId::SetAdd, {Sets[0], Ints[0]});
  B.lift("anchorM", BuiltinId::MapPut, {Maps[0], Ints[0], Ints[0]});
  B.lift("anchorQ", BuiltinId::QueueEnq, {Queues[0], Ints[0]});

  // Also build one accumulator (write-into-last loop) to exercise the
  // interesting mutability pattern.
  StreamId Acc = B.declare("acc");
  StreamId M = B.lift("accm", BuiltinId::Merge,
                      {Acc, B.lift("acce", BuiltinId::SetEmpty, {Unit})});
  StreamId Prev = B.last("accprev", M, Ints[0]);
  B.defineLift(Acc, BuiltinId::SetAdd, {Prev, Ints[0]});
  StreamId Probe = B.lift("accprobe", BuiltinId::SetContains,
                          {Prev, Ints[1 % Ints.size()]});

  // Outputs: every scalar result plus sizes of aggregates (canonical
  // rendering of whole aggregates is exercised separately; sizes keep
  // traces compact).
  for (StreamId Id : Bools)
    B.markOutput(Id);
  for (StreamId Id : Ints)
    B.markOutput(Id);
  B.markOutput(Probe);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  DiagnosticEngine TDiags;
  EXPECT_TRUE(typecheck(S, TDiags)) << TDiags.str();
  return S;
}

/// A random interleaved trace over the two inputs of a randomSpec():
/// \p Count events at strictly positive, non-decreasing timestamps.
inline std::vector<TraceEvent> randomSpecTrace(const Spec &S, size_t Count,
                                               uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<TraceEvent> Events;
  Events.reserve(Count);
  Time Ts = 0;
  for (size_t I = 0; I != Count; ++I) {
    Ts += 1 + Rng() % 3;
    StreamId In = Rng() % 2 ? *S.lookup("a") : *S.lookup("b");
    Events.emplace_back(In, Ts,
                        Value::integer(static_cast<int64_t>(Rng() % 50)));
  }
  return Events;
}

} // namespace testrandom
} // namespace tessla

#endif // TESSLA_TESTS_RANDOMSPECGEN_H
