//===- tests/RandomSpecGen.h - Random specification generator ---*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random valid specifications for property tests: layered
/// (acyclic) definitions over two Int inputs mixing scalar and aggregate
/// operators, accumulator (write-into-last) loops, and — optionally —
/// delay streams. Shared by the differential suite (optimized vs
/// baseline), the semantics oracle (delay-free subset; the oracle's
/// timestamp universe is the input timestamps) and the fleet determinism
/// suite (fleet vs sequential engine).
///
/// Also hosts the *corpus driver*: seed and spec count of a randomized
/// corpus are overridable through TESSLA_CORPUS_SEED /
/// TESSLA_CORPUS_SPECS (so CI can widen a sweep and a developer can
/// replay one seed), and minimizeAndReport() shrinks a failing
/// (spec, trace) pair — source-line delta debugging on the printed spec,
/// prefix bisection plus greedy chunk removal on the trace — then writes
/// the minimized pair next to the test and renders a standalone tesslac
/// repro command.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_TESTS_RANDOMSPECGEN_H
#define TESSLA_TESTS_RANDOMSPECGEN_H

#include "tessla/Lang/Builder.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Lang/PrintSource.h"
#include "tessla/Lang/TypeCheck.h"
#include "tessla/Runtime/TraceIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>

namespace tessla {
namespace testrandom {

struct RandomSpecOptions {
  /// Also generate delay streams. Amounts are taken from time(reset), so
  /// they are positive whenever input timestamps start at 1, and every
  /// armed timer fires at most once per re-arm — finish() terminates
  /// without a horizon.
  bool WithDelay = false;
  /// Also generate queueDeq/queueFront (guarded by a fresh enqueue so
  /// the queue is never empty at evaluation time).
  bool WithQueueOps = true;
};

/// Generates a random valid specification over two Int inputs "a" and
/// "b", with every scalar stream marked as output. Pure function of
/// \p Seed and \p Opts.
inline Spec randomSpec(uint64_t Seed,
                       const RandomSpecOptions &Opts = RandomSpecOptions()) {
  std::mt19937_64 Rng(Seed);
  SpecBuilder B;
  std::vector<StreamId> Ints;
  std::vector<StreamId> Bools;
  std::vector<StreamId> Sets;
  std::vector<StreamId> Maps;
  std::vector<StreamId> Queues;

  Ints.push_back(B.input("a", Type::integer()));
  Ints.push_back(B.input("b", Type::integer()));
  StreamId Unit = B.unit("u");
  Sets.push_back(B.lift("e0", BuiltinId::SetEmpty, {Unit}));
  Maps.push_back(B.lift("em0", BuiltinId::MapEmpty, {Unit}));
  Queues.push_back(B.lift("eq0", BuiltinId::QueueEmpty, {Unit}));
  Ints.push_back(B.constant("c0", ConstantLit{int64_t{3}}));

  auto Pick = [&Rng](const std::vector<StreamId> &Pool) {
    return Pool[Rng() % Pool.size()];
  };

  unsigned NumCases = 16 + (Opts.WithQueueOps ? 1 : 0) +
                      (Opts.WithDelay ? 1 : 0);
  unsigned NumDefs = 8 + Rng() % 20;
  for (unsigned I = 0; I != NumDefs; ++I) {
    std::string Name = "s" + std::to_string(I);
    switch (Rng() % NumCases) {
    case 0:
      Ints.push_back(B.lift(Name, BuiltinId::Add, {Pick(Ints),
                                                   Pick(Ints)}));
      break;
    case 1:
      Ints.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Ints),
                                                     Pick(Ints)}));
      break;
    case 2:
      Ints.push_back(B.time(Name, Pick(Ints)));
      break;
    case 3:
      Ints.push_back(B.last(Name, Pick(Ints), Pick(Ints)));
      break;
    case 4:
      Bools.push_back(B.lift(Name, BuiltinId::SetContains,
                             {Pick(Sets), Pick(Ints)}));
      break;
    case 5:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetAdd
                                      : BuiltinId::SetToggle,
                            {Pick(Sets), Pick(Ints)}));
      break;
    case 6:
      Sets.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Sets),
                                                     Pick(Sets)}));
      break;
    case 7:
      Sets.push_back(B.last(Name, Pick(Sets), Pick(Ints)));
      break;
    case 8:
      Maps.push_back(B.lift(Name, BuiltinId::MapPut,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 9:
      Ints.push_back(B.lift(Name, BuiltinId::MapGetOrElse,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 10:
      Queues.push_back(B.lift(Name, BuiltinId::QueueEnq,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 11:
      if (!Bools.empty()) {
        Sets.push_back(B.lift(Name, BuiltinId::Filter,
                              {Pick(Sets), Pick(Bools)}));
      } else {
        Ints.push_back(B.lift(Name, BuiltinId::SetSize, {Pick(Sets)}));
      }
      break;
    case 12:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetUnion
                                      : BuiltinId::SetDiff,
                            {Pick(Sets), Pick(Sets)}));
      break;
    case 13:
      Queues.push_back(B.lift(Name, BuiltinId::QueueTrim,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 14:
      Maps.push_back(B.lift(Name, BuiltinId::MapRemove,
                            {Pick(Maps), Pick(Ints)}));
      break;
    case 15:
      Ints.push_back(B.lift(Name, BuiltinId::QueueSize, {Pick(Queues)}));
      break;
    case 16: {
      // queueDeq/queueFront error on empty queues, so guard them with a
      // fresh enqueue: whenever the composite fires, the queue holds at
      // least the just-enqueued element.
      StreamId NonEmpty = B.lift(Name + "e", BuiltinId::QueueEnq,
                                 {Pick(Queues), Pick(Ints)});
      if (Rng() % 2)
        Queues.push_back(B.lift(Name, BuiltinId::QueueDeq, {NonEmpty}));
      else
        Ints.push_back(B.lift(Name, BuiltinId::QueueFront, {NonEmpty}));
      break;
    }
    case 17: {
      // delay(time(r), r): every event of r re-arms the timer to fire
      // at 2*t(r). The reset must be one of the raw inputs — derived
      // streams can fire at t=0 (via constants), where time() is 0 and
      // delay amounts must be positive. Traces start at t >= 1
      // (randomSpecTrace guarantees it), and a firing never re-arms
      // itself, so the drain at finish() is finite.
      StreamId Reset = Ints[Rng() % 2];
      StreamId Amount = B.time(Name + "t", Reset);
      StreamId D = B.delay(Name, Amount, Reset);
      B.markOutput(D);
      Ints.push_back(B.time(Name + "dt", D));
      break;
    }
    }
  }
  // Anchor the empty-aggregate constructors with one concrete use each so
  // their element types are always inferable.
  B.lift("anchorS", BuiltinId::SetAdd, {Sets[0], Ints[0]});
  B.lift("anchorM", BuiltinId::MapPut, {Maps[0], Ints[0], Ints[0]});
  B.lift("anchorQ", BuiltinId::QueueEnq, {Queues[0], Ints[0]});

  // Also build one accumulator (write-into-last loop) to exercise the
  // interesting mutability pattern.
  StreamId Acc = B.declare("acc");
  StreamId M = B.lift("accm", BuiltinId::Merge,
                      {Acc, B.lift("acce", BuiltinId::SetEmpty, {Unit})});
  StreamId Prev = B.last("accprev", M, Ints[0]);
  B.defineLift(Acc, BuiltinId::SetAdd, {Prev, Ints[0]});
  StreamId Probe = B.lift("accprobe", BuiltinId::SetContains,
                          {Prev, Ints[1 % Ints.size()]});

  // Outputs: every scalar result plus sizes of aggregates (canonical
  // rendering of whole aggregates is exercised separately; sizes keep
  // traces compact).
  for (StreamId Id : Bools)
    B.markOutput(Id);
  for (StreamId Id : Ints)
    B.markOutput(Id);
  B.markOutput(Probe);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  DiagnosticEngine TDiags;
  EXPECT_TRUE(typecheck(S, TDiags)) << TDiags.str();
  return S;
}

/// A random interleaved trace over the two inputs of a randomSpec():
/// \p Count events at strictly positive, non-decreasing timestamps.
inline std::vector<TraceEvent> randomSpecTrace(const Spec &S, size_t Count,
                                               uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<TraceEvent> Events;
  Events.reserve(Count);
  Time Ts = 0;
  for (size_t I = 0; I != Count; ++I) {
    Ts += 1 + Rng() % 3;
    StreamId In = Rng() % 2 ? *S.lookup("a") : *S.lookup("b");
    Events.emplace_back(In, Ts,
                        Value::integer(static_cast<int64_t>(Rng() % 50)));
  }
  return Events;
}

// --- Corpus driver --------------------------------------------------------

/// First generator seed of the corpus (TESSLA_CORPUS_SEED, default 1).
inline uint64_t corpusSeed() {
  if (const char *Env = std::getenv("TESSLA_CORPUS_SEED"))
    return std::strtoull(Env, nullptr, 10);
  return 1;
}

/// Number of random specs in the corpus (TESSLA_CORPUS_SPECS, default
/// \p Default). Seeds run corpusSeed() .. corpusSeed()+N-1.
inline size_t corpusSpecs(size_t Default) {
  if (const char *Env = std::getenv("TESSLA_CORPUS_SPECS"))
    if (long N = std::strtol(Env, nullptr, 10); N > 0)
      return static_cast<size_t>(N);
  return Default;
}

/// One corpus input record. Streams are referenced *by name*, not id:
/// the minimizer reparses shrunken spec sources, which renumbers ids.
struct CorpusRecord {
  SessionId Session = 0;
  std::string Input;
  Time Ts = 0;
  Value V;
};

/// True while the failure still reproduces on (spec, records). Records
/// naming streams the shrunken spec no longer declares are dropped
/// before the call.
using CorpusPredicate =
    std::function<bool(const Spec &, const std::vector<CorpusRecord> &)>;

/// Identifies the failing corpus configuration for the repro command.
struct CorpusFailure {
  uint64_t Seed = 0;      ///< generator seed of the failing spec
  bool Baseline = false;  ///< mutability optimization disabled?
  unsigned OptLevel = 0;  ///< program optimization level (-O0/-O1)
  const char *TestBinary = "the failing test binary";
};

namespace corpusdetail {

inline std::optional<Spec> parseValidSpec(const std::string &Source) {
  DiagnosticEngine PDiags;
  auto S = parseSpec(Source, PDiags);
  if (!S)
    return std::nullopt;
  DiagnosticEngine TDiags;
  if (!typecheck(*S, TDiags))
    return std::nullopt;
  if (S->inputs().empty() || S->outputs().empty())
    return std::nullopt; // vacuous candidate; keep shrinking elsewhere
  return S;
}

inline std::vector<CorpusRecord>
liveRecords(const Spec &S, const std::vector<CorpusRecord> &Records) {
  std::vector<CorpusRecord> Out;
  Out.reserve(Records.size());
  for (const CorpusRecord &R : Records) {
    std::optional<StreamId> Id = S.lookup(R.Input);
    if (Id && S.stream(*Id).Kind == StreamKind::Input)
      Out.push_back(R);
  }
  return Out;
}

inline std::string renderTrace(const std::vector<CorpusRecord> &Records) {
  std::ostringstream Out;
  for (const CorpusRecord &R : Records)
    Out << static_cast<long long>(R.Ts) << ": " << R.Input << " = "
        << R.V.str() << "\n";
  return Out.str();
}

} // namespace corpusdetail

/// Shrinks a failing (spec, records) pair while \p Fails keeps holding,
/// writes the minimized spec + per-session traces to temp files and
/// returns a human-readable report ending in a standalone tesslac repro
/// command (exact for a single surviving session: tesslac replays one
/// trace per session). Call as ADD_FAILURE() << minimizeAndReport(...).
inline std::string minimizeAndReport(const Spec &Original,
                                     std::vector<CorpusRecord> Records,
                                     const CorpusPredicate &Fails,
                                     const CorpusFailure &Info) {
  using namespace corpusdetail;
  // The shrink loops re-run the full differential comparison per
  // candidate; bound the total work so a pathological failure still
  // reports in reasonable time.
  size_t Budget = 250;
  auto StillFails = [&](const Spec &S,
                        const std::vector<CorpusRecord> &R) {
    if (Budget == 0)
      return false;
    --Budget;
    return Fails(S, liveRecords(S, R));
  };

  std::ostringstream Report;
  Spec S = Original;
  if (!StillFails(S, Records)) {
    Report << "failure did not reproduce on re-run (timing-dependent?); "
              "skipping minimization.\n";
  } else {
    // 1. Spec shrink: delta-debug the printed source line by line. A
    // candidate must reparse and typecheck (removing a referenced def
    // fails the parse and is skipped automatically).
    std::vector<std::string> Lines;
    {
      std::istringstream In(printSpecSource(S));
      for (std::string Line; std::getline(In, Line);)
        if (!Line.empty())
          Lines.push_back(Line);
    }
    bool Shrunk = true;
    while (Shrunk && Budget) {
      Shrunk = false;
      for (size_t I = Lines.size(); I-- && Budget;) {
        std::vector<std::string> Candidate;
        Candidate.reserve(Lines.size() - 1);
        for (size_t J = 0; J != Lines.size(); ++J)
          if (J != I)
            Candidate.push_back(Lines[J]);
        std::string Src;
        for (const std::string &L : Candidate)
          Src += L + "\n";
        std::optional<Spec> C = parseValidSpec(Src);
        if (!C || !StillFails(*C, Records))
          continue;
        Lines = std::move(Candidate);
        S = std::move(*C);
        Shrunk = true;
      }
    }
    Records = liveRecords(S, Records);

    // 2. Trace shrink: prefix bisection first (cheap halving), then
    // greedy chunk removal down to single records.
    while (Records.size() > 1 && Budget) {
      std::vector<CorpusRecord> Half(Records.begin(),
                                     Records.begin() + Records.size() / 2);
      if (!StillFails(S, Half))
        break;
      Records = std::move(Half);
    }
    for (size_t Chunk = std::max<size_t>(Records.size() / 2, 1);
         Chunk >= 1 && Budget; Chunk /= 2) {
      for (size_t Start = 0; Start < Records.size() && Budget;) {
        std::vector<CorpusRecord> Candidate;
        Candidate.reserve(Records.size());
        for (size_t I = 0; I != Records.size(); ++I)
          if (I < Start || I >= Start + Chunk)
            Candidate.push_back(Records[I]);
        if (Candidate.size() < Records.size() &&
            StillFails(S, Candidate))
          Records = std::move(Candidate);
        else
          Start += Chunk;
      }
      if (Chunk == 1)
        break;
    }
  }

  // 3. Write the (possibly unshrunken) repro pair and render commands.
  const char *Tmp = std::getenv("TMPDIR");
  std::string Dir = Tmp && *Tmp ? Tmp : "/tmp";
  std::string Stem =
      Dir + "/batched_corpus_seed" + std::to_string(Info.Seed);
  std::string SpecPath = Stem + ".tessla";
  std::ofstream(SpecPath) << printSpecSource(S);

  std::vector<SessionId> Sessions;
  for (const CorpusRecord &R : Records)
    if (std::find(Sessions.begin(), Sessions.end(), R.Session) ==
        Sessions.end())
      Sessions.push_back(R.Session);

  Report << "minimized spec (" << S.numStreams() << " streams, "
         << Records.size() << " records over " << Sessions.size()
         << " session(s)): " << SpecPath << "\n";
  const char *OptFlag = Info.OptLevel ? "-O1" : "-O0";
  std::string BaseFlag = Info.Baseline ? " --baseline" : "";
  for (SessionId Session : Sessions) {
    std::vector<CorpusRecord> Of;
    for (const CorpusRecord &R : Records)
      if (R.Session == Session)
        Of.push_back(R);
    std::string TracePath =
        Stem + "_s" + std::to_string(Session) + ".txt";
    std::ofstream(TracePath) << renderTrace(Of);
    Report << "repro (session " << Session << "; diff the two engines):\n"
           << "  tesslac " << SpecPath << " " << OptFlag << BaseFlag
           << " --run " << TracePath << " --fleet 4 --batched\n"
           << "  tesslac " << SpecPath << " " << OptFlag << BaseFlag
           << " --run " << TracePath << " --fleet 4 --per-session\n";
  }
  if (Sessions.size() > 1)
    Report << "note: " << Sessions.size()
           << " sessions survived minimization; the one-command repro "
              "replays each session's trace separately, which may lose a "
              "cross-session interleaving. Full repro:\n";
  else
    Report << "gtest repro:\n";
  Report << "  TESSLA_CORPUS_SEED=" << Info.Seed
         << " TESSLA_CORPUS_SPECS=1 " << Info.TestBinary << "\n";
  return Report.str();
}

} // namespace testrandom
} // namespace tessla

#endif // TESSLA_TESTS_RANDOMSPECGEN_H
