//===- tests/Opt/PassesTest.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Golden and structural tests for the optimization pass framework:
/// exact Program::str() renderings after -O1 (fused opcodes, folded
/// constants, compacted slot tables), per-pass statistics on the paper's
/// evaluation workloads, and the program verifier catching corrupted
/// programs.
///
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

Program optimized(const Spec &S, OptStatistics *Stats = nullptr,
                  unsigned Level = 1) {
  MutabilityOptions MOpts;
  MOpts.Optimize = true;
  AnalysisResult A = analyzeSpec(S, MOpts);
  Program P = Program::compile(A);
  opt::OptOptions OOpts;
  OOpts.Level = Level;
  DiagnosticEngine Diags;
  EXPECT_TRUE(opt::optimizeProgram(P, A, OOpts, Diags, Stats))
      << Diags.str();
  return P;
}

} // namespace

// --- Golden renderings ----------------------------------------------------

TEST(OptPassesTest, SeenSetGoldenPlan) {
  // Both lift consumers of the (multi-use) last fuse; the orphaned last
  // step is eliminated and the value slots compact from 7 to 6.
  Program P = optimized(seenSet());
  EXPECT_EQ(P.str(),
            "0: x = input   @0\n"
            "1: seen = setContains(last(_t2, x), x)   [fused]   @1 "
            "last[0]\n"
            "2: y = setToggle(last(_t2, x), x)   [in-place]   [fused]   "
            "@2 last[0]\n"
            "3: _t0_unit = unit   @3\n"
            "4: _t1 = setEmpty(_t0_unit)   [in-place]   @4\n"
            "5: _t2 = merge(y, _t1)   [in-place]   @5\n"
            "slots: value=6 last=1 delay=0\n"
            "last[0]: _t2 @5\n"
            "outputs: seen@1\n");
}

TEST(OptPassesTest, HeldConstantFoldsToConstTick) {
  // `x + 1` flattens to a held constant merge(c, last(c, x)); constant
  // folding collapses the whole ensemble into one ConstTick step and
  // dead-step elimination reaps the const/last/merge triple, dropping
  // the last-slot table to zero.
  Spec S = parseOrDie(R"(
    in x: Int
    def y := x + 1
    out y
  )");
  OptStatistics Stats;
  Program P = optimized(S, &Stats);
  EXPECT_EQ(P.str(), "0: x = input   @0\n"
                     "1: _t2 = const 1 on x   [folded]   @2\n"
                     "2: y = add(x, _t2)   @1\n"
                     "slots: value=3 last=0 delay=0\n"
                     "outputs: y@1\n");
  EXPECT_EQ(Stats.totalFolded(), 1u);
  EXPECT_EQ(Stats.totalEliminated(), 2u);
}

TEST(OptPassesTest, NeverStreamsFoldAndOutputsSurvive) {
  // A statically-silent output keeps its output entry (reading the dead
  // slot) so the output table stays aligned with the spec.
  Spec S = parseOrDie(R"(
    in x: Int
    def a := 1
    def quiet := last(a, a)
    out quiet
    out x
  )");
  Program P = optimized(S);
  // last(a, a) has a non-varying reset clock, so it can never fire; the
  // whole chain folds away and `quiet` reads the shared dead slot (@1 ==
  // numValueSlots).
  EXPECT_EQ(P.str(), "0: x = input   @0\n"
                     "slots: value=1 last=0 delay=0\n"
                     "outputs: x@0 quiet@1\n");
}

TEST(OptPassesTest, TautologicalFilterFoldsToPassThrough) {
  // filter(x, x == x): the range domain proves the condition true at
  // every event (same-stream comparison) and the clock checker proves
  // the condition ticks whenever the value does, so the filter rewrites
  // to a single-arm merge and dead-step elimination reaps the orphaned
  // comparison. The pre-facts folder had no range or clock channel and
  // left this spec untouched at -O1.
  Spec S = parseOrDie(R"(
    in x: Int
    def keep := filter(x, x == x)
    out keep
  )");
  OptStatistics Stats;
  Program P = optimized(S, &Stats);
  EXPECT_EQ(P.str(), "0: x = input   @0\n"
                     "1: keep = merge(x)   [folded]   @1\n"
                     "slots: value=2 last=0 delay=0\n"
                     "outputs: keep@1\n");
  EXPECT_GE(Stats.totalFolded(), 1u) << Stats.str();
  EXPECT_GE(Stats.totalEliminated(), 1u) << Stats.str();
}

TEST(OptPassesTest, RangeProvenDeadFilterEliminates) {
  // The branch condition is a held `false`: the range channel proves the
  // filter silent and dead-step elimination removes the whole chain
  // feeding it (the old reachability-only DSE kept every step alive).
  Spec S = parseOrDie(R"(
    in x: Int
    def dead := filter(x + 1, false)
    out dead
    out x
  )");
  Program P = optimized(S);
  EXPECT_EQ(P.str(), "0: x = input   @0\n"
                     "slots: value=1 last=0 delay=0\n"
                     "outputs: x@0 dead@1\n");
}

// --- Per-pass statistics on the evaluation workloads ----------------------

TEST(OptPassesTest, MapWindowExercisesAllThreePasses) {
  OptStatistics Stats;
  optimized(mapWindow(4), &Stats);
  EXPECT_GT(Stats.totalFolded(), 0u) << Stats.str();
  EXPECT_GT(Stats.totalFused(), 0u) << Stats.str();
  EXPECT_GT(Stats.totalEliminated(), 0u) << Stats.str();
  ASSERT_EQ(Stats.Passes.size(), 3u);
  EXPECT_EQ(Stats.Passes[0].Pass, "constant-fold");
  EXPECT_EQ(Stats.Passes[1].Pass, "step-fusion");
  EXPECT_EQ(Stats.Passes[2].Pass, "dead-step-elim");
  // Slot tables shrink, never grow.
  const PassStatistics &Last = Stats.Passes.back();
  EXPECT_LT(Last.ValueSlotsAfter, Stats.Passes.front().ValueSlotsBefore);
  EXPECT_LT(Last.LastSlotsAfter, Stats.Passes.front().LastSlotsBefore);
}

TEST(OptPassesTest, QueueWindowExercisesAllThreePasses) {
  OptStatistics Stats;
  optimized(queueWindow(4), &Stats);
  EXPECT_GT(Stats.totalFolded(), 0u) << Stats.str();
  EXPECT_GT(Stats.totalFused(), 0u) << Stats.str();
  EXPECT_GT(Stats.totalEliminated(), 0u) << Stats.str();
}

TEST(OptPassesTest, SeenSetFusesBothLastConsumers) {
  OptStatistics Stats;
  optimized(seenSet(), &Stats);
  EXPECT_EQ(Stats.totalFused(), 2u) << Stats.str();
  EXPECT_GT(Stats.totalEliminated(), 0u) << Stats.str();
}

TEST(OptPassesTest, LevelZeroIsIdentity) {
  Spec S = seenSet();
  MutabilityOptions MOpts;
  MOpts.Optimize = true;
  AnalysisResult A = analyzeSpec(S, MOpts);
  Program P = Program::compile(A);
  std::string Before = P.str();
  opt::OptOptions OOpts;
  OOpts.Level = 0;
  DiagnosticEngine Diags;
  OptStatistics Stats;
  ASSERT_TRUE(opt::optimizeProgram(P, A, OOpts, Diags, &Stats));
  EXPECT_EQ(P.str(), Before);
  EXPECT_TRUE(Stats.Passes.empty());
}

TEST(OptPassesTest, StatisticsRendering) {
  OptStatistics Stats;
  optimized(seenSet(), &Stats);
  std::string Text = Stats.str();
  EXPECT_NE(Text.find("step-fusion: steps 7 -> 7 (fused 2)"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("total: steps 7 -> 6"), std::string::npos) << Text;
}

// --- The verifier ---------------------------------------------------------

TEST(OptPassesTest, VerifierAcceptsCompiledAndOptimizedPrograms) {
  for (const Spec &S :
       {seenSet(), mapWindow(4), queueWindow(4), dbAccessConstraint()}) {
    MutabilityOptions MOpts;
    MOpts.Optimize = true;
    AnalysisResult A = analyzeSpec(S, MOpts);
    Program P = Program::compile(A);
    DiagnosticEngine Diags;
    EXPECT_TRUE(opt::verifyProgram(P, Diags)) << Diags.str();
    opt::OptOptions OOpts;
    ASSERT_TRUE(opt::optimizeProgram(P, A, OOpts, Diags));
    EXPECT_TRUE(opt::verifyProgram(P, Diags)) << Diags.str();
  }
}

TEST(OptPassesTest, VerifierRejectsCorruptedDst) {
  Program P = optimized(seenSet());
  Program::OptView View = P.optView();
  // Point a step's destination at a foreign slot.
  View.Steps[1].Dst = View.Steps[2].Dst;
  DiagnosticEngine Diags;
  EXPECT_FALSE(opt::verifyProgram(P, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(OptPassesTest, VerifierRejectsArgCountMismatch) {
  Program P = optimized(seenSet());
  Program::OptView View = P.optView();
  for (ProgramStep &Step : View.Steps)
    if (Step.Op == Opcode::LiftMerge || Step.Op == Opcode::LiftAll) {
      Step.Args.push_back(Step.Args[0]);
      break;
    }
  DiagnosticEngine Diags;
  EXPECT_FALSE(opt::verifyProgram(P, Diags));
}

TEST(OptPassesTest, VerifierRejectsStaleArgSlot) {
  Program P = optimized(mapWindow(4));
  Program::OptView View = P.optView();
  for (ProgramStep &Step : View.Steps)
    if (Step.Op == Opcode::LiftAll && Step.NumArgs >= 2) {
      Step.ArgSlot[1] = static_cast<SlotId>(Step.ArgSlot[1] + 1);
      break;
    }
  DiagnosticEngine Diags;
  EXPECT_FALSE(opt::verifyProgram(P, Diags));
}
