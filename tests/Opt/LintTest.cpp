//===- tests/Opt/LintTest.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Golden tests for the spec linter: exact diagnostic text and source
/// locations for every rule, the --werror promotion, and silence on
/// clean specifications (the linter's can-fire analysis is a may-
/// approximation, so a warning is always a proof).
///
//===----------------------------------------------------------------------===//

#include "tessla/Opt/Lint.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// Lints \p Source and returns (findings, rendered diagnostics).
std::pair<unsigned, std::string> lint(std::string_view Source,
                                      bool Werror = false) {
  Spec S = parseOrDie(Source);
  DiagnosticEngine Diags;
  opt::LintOptions Opts;
  Opts.WarningsAsErrors = Werror;
  unsigned Findings = opt::lintSpec(S, Diags, Opts);
  return {Findings, Diags.str()};
}

// Line/column layout matters for the location goldens: no leading
// newline, definitions at column 1.
const char *BadSource = "in x: Int\n"
                        "def unused := x + 1\n"
                        "def abs := x * 2\n"
                        "def selfy := last(selfy + 1, x)\n"
                        "out selfy\n"
                        "out abs\n";

} // namespace

TEST(LintTest, AllRulesWithLocations) {
  auto [Findings, Text] = lint(BadSource);
  EXPECT_EQ(Findings, 4u);
  EXPECT_EQ(
      Text,
      "warning 2:1: stream 'unused' is never read and not an output; "
      "prefix the name with '_' to silence [unused-stream]\n"
      "warning 3:1: stream 'abs' shadows the builtin function of the "
      "same name [shadows-builtin]\n"
      "warning 4:1: output 'selfy' can never produce an event "
      "[nil-output]\n"
      "warning 4:1: last 'selfy' can never fire: its value side depends "
      "on itself and has no initial event [uninitialized-last]\n");
}

TEST(LintTest, WerrorPromotesToErrors) {
  auto [Findings, Text] = lint(BadSource, /*Werror=*/true);
  EXPECT_EQ(Findings, 4u);
  EXPECT_NE(Text.find("error 2:1: stream 'unused'"), std::string::npos)
      << Text;
  EXPECT_EQ(Text.find("warning"), std::string::npos) << Text;
}

TEST(LintTest, UnderscorePrefixSilencesUnused) {
  auto [Findings, Text] = lint("in x: Int\n"
                               "def _scratch := x + 1\n"
                               "out x\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, InitializedLastIsSilent) {
  // The classic counter: the self-referential last is seeded by the
  // merge's constant arm, so it can fire and no rule applies.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def c := merge(last(c, x) + 1, 0)\n"
                               "out c\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, NilPropagatesToDependentOutputs) {
  // An uninitialized last silences everything downstream; the output
  // depending on it gets its own nil-output diagnostic.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def selfy := last(selfy + 1, x)\n"
                               "def doubled := selfy * 2\n"
                               "out doubled\n");
  EXPECT_EQ(Findings, 2u);
  EXPECT_EQ(
      Text,
      "warning 2:1: last 'selfy' can never fire: its value side depends "
      "on itself and has no initial event [uninitialized-last]\n"
      "warning 3:1: output 'doubled' can never produce an event "
      "[nil-output]\n");
}

TEST(LintTest, EvaluationWorkloadsAreClean) {
  for (const Spec &S : {seenSet(), mapWindow(8), queueWindow(8),
                        dbAccessConstraint(), dbTimeConstraint(),
                        peakDetection(8), spectrumCalculation()}) {
    DiagnosticEngine Diags;
    EXPECT_EQ(opt::lintSpec(S, Diags), 0u) << Diags.str();
  }
}
