//===- tests/Opt/LintTest.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Golden tests for the spec linter: exact diagnostic text and source
/// locations for every rule, the --werror promotion, and silence on
/// clean specifications (the linter's can-fire analysis is a may-
/// approximation, so a warning is always a proof).
///
//===----------------------------------------------------------------------===//

#include "tessla/Opt/Lint.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// Lints \p Source and returns (findings, rendered diagnostics).
std::pair<unsigned, std::string> lint(std::string_view Source,
                                      bool Werror = false) {
  Spec S = parseOrDie(Source);
  DiagnosticEngine Diags;
  opt::LintOptions Opts;
  Opts.WarningsAsErrors = Werror;
  unsigned Findings = opt::lintSpec(S, Diags, Opts);
  return {Findings, Diags.str()};
}

// Line/column layout matters for the location goldens: no leading
// newline, definitions at column 1.
const char *BadSource = "in x: Int\n"
                        "def unused := x + 1\n"
                        "def abs := x * 2\n"
                        "def selfy := last(selfy + 1, x)\n"
                        "out selfy\n"
                        "out abs\n";

} // namespace

TEST(LintTest, AllRulesWithLocations) {
  auto [Findings, Text] = lint(BadSource);
  EXPECT_EQ(Findings, 4u);
  EXPECT_EQ(
      Text,
      "warning 2:1: stream 'unused' is never read and not an output; "
      "prefix the name with '_' to silence [unused-stream]\n"
      "warning 3:1: stream 'abs' shadows the builtin function of the "
      "same name [shadows-builtin]\n"
      "warning 4:1: output 'selfy' can never produce an event "
      "[nil-output]\n"
      "warning 4:1: last 'selfy' can never fire: its value side depends "
      "on itself and has no initial event [uninitialized-last]\n");
}

TEST(LintTest, WerrorPromotesToErrors) {
  auto [Findings, Text] = lint(BadSource, /*Werror=*/true);
  EXPECT_EQ(Findings, 4u);
  EXPECT_NE(Text.find("error 2:1: stream 'unused'"), std::string::npos)
      << Text;
  EXPECT_EQ(Text.find("warning"), std::string::npos) << Text;
}

TEST(LintTest, UnderscorePrefixSilencesUnused) {
  auto [Findings, Text] = lint("in x: Int\n"
                               "def _scratch := x + 1\n"
                               "out x\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, InitializedLastIsSilent) {
  // The classic counter: the self-referential last is seeded by the
  // merge's constant arm, so it can fire and no rule applies.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def c := merge(last(c, x) + 1, 0)\n"
                               "out c\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, NilPropagatesToDependentOutputs) {
  // An uninitialized last silences everything downstream; the output
  // depending on it gets its own nil-output diagnostic.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def selfy := last(selfy + 1, x)\n"
                               "def doubled := selfy * 2\n"
                               "out doubled\n");
  EXPECT_EQ(Findings, 2u);
  EXPECT_EQ(
      Text,
      "warning 2:1: last 'selfy' can never fire: its value side depends "
      "on itself and has no initial event [uninitialized-last]\n"
      "warning 3:1: output 'doubled' can never produce an event "
      "[nil-output]\n");
}

// --- Framework-powered rules (abstract-interpretation facts) --------------

TEST(LintTest, UnreachableStepCarriesProvingFacts) {
  // A range-proven-silent non-output definition: the condition is a held
  // `false`, so the filter can never pass an event. The old boolean
  // reachability could not prove this; the diagnostic carries the facts.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def dead := filter(x, false)\n"
                               "def use := merge(dead, x)\n"
                               "out use\n");
  EXPECT_EQ(Findings, 1u) << Text;
  EXPECT_NE(Text.find("stream 'dead' can never produce an event"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("tick=never"), std::string::npos) << Text;
  EXPECT_NE(Text.find("[unreachable-step]"), std::string::npos) << Text;
}

TEST(LintTest, UnreachableStepYieldsToPrimaryDiagnosis) {
  // When another rule already diagnosed the silent stream (nil-output,
  // uninitialized-last), unreachable-step stays quiet — one finding per
  // root cause.
  auto [Findings, Text] = lint("in x: Int\n"
                               "def selfy := last(selfy + 1, x)\n"
                               "out selfy\n");
  EXPECT_EQ(Findings, 2u) << Text;
  EXPECT_EQ(Text.find("[unreachable-step]"), std::string::npos) << Text;
}

TEST(LintTest, UnboundedQueueGrowthNamesTheCycle) {
  // An enqueue accumulator with no trim: the bound analysis widens to
  // unbounded and the diagnostic names the growth cycle.
  auto [Findings, Text] =
      lint("in x: Int\n"
           "def q := last(merge(grow, queueEmpty()), x)\n"
           "def grow := queueEnq(q, x)\n"
           "def n := queueSize(grow)\n"
           "out n\n");
  EXPECT_EQ(Findings, 1u) << Text;
  EXPECT_NE(Text.find("queue 'grow' grows without bound"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("growth cycle: "), std::string::npos) << Text;
  EXPECT_NE(Text.find("[unbounded-queue-growth]"), std::string::npos)
      << Text;
}

TEST(LintTest, TrimmedQueueIsNotFlagged) {
  auto [Findings, Text] =
      lint("in x: Int\n"
           "def q := last(merge(w, queueEmpty()), x)\n"
           "def w := queueTrim(queueEnq(q, x), 8)\n"
           "def n := queueSize(w)\n"
           "out n\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, DeadMergeArmIsAClockMismatch) {
  // merge(m, a): the second arm's clock is covered by the first (m
  // already merges a and b), so arm 2 can never win the first-present-
  // wins race.
  auto [Findings, Text] = lint("in a: Int\n"
                               "in b: Int\n"
                               "def m := merge(a, b)\n"
                               "def r := merge(m, a)\n"
                               "out r\n");
  EXPECT_EQ(Findings, 1u) << Text;
  EXPECT_NE(Text.find("merge arm 2 of 'r' can never win"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("[clock-mismatch]"), std::string::npos) << Text;
}

TEST(LintTest, IndependentMergeArmsAreClean) {
  // Arms over independent input clocks can each win; and the held-
  // constant seeding idiom (constant second arm, losing past t=0 by
  // design) must not be flagged either.
  auto [Findings, Text] = lint("in a: Int\n"
                               "in b: Int\n"
                               "def m := merge(a, b)\n"
                               "def c := merge(last(c, a) + 1, 0)\n"
                               "out m\n"
                               "out c\n");
  EXPECT_EQ(Findings, 0u) << Text;
}

TEST(LintTest, EvaluationWorkloadsAreClean) {
  for (const Spec &S : {seenSet(), mapWindow(8), queueWindow(8),
                        dbAccessConstraint(), dbTimeConstraint(),
                        peakDetection(8), spectrumCalculation()}) {
    DiagnosticEngine Diags;
    EXPECT_EQ(opt::lintSpec(S, Diags), 0u) << Diags.str();
  }
}
