//===- tests/Opt/DifferentialOptTest.cpp ------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The optimizer's correctness contract: every pass is clock-exact, so
/// the optimized program must produce byte-identical output traces to
/// the unoptimized one — on the paper's evaluation workloads and on a
/// corpus of randomly generated specifications (with and without delay
/// streams, under both aggregate representations).
///
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"
#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string runLevel(const Spec &S, const std::vector<TraceEvent> &Events,
                     unsigned Level, bool MutOptimize,
                     OptStatistics *Stats = nullptr) {
  MutabilityOptions MOpts;
  MOpts.Optimize = MutOptimize;
  AnalysisResult A = analyzeSpec(S, MOpts);
  Program P = Program::compile(A);
  if (Level >= 1) {
    opt::OptOptions OOpts;
    OOpts.Level = Level;
    DiagnosticEngine Diags;
    EXPECT_TRUE(opt::optimizeProgram(P, A, OOpts, Diags, Stats))
        << Diags.str();
  }
  std::string Error;
  auto Out = runMonitor(P, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(P.spec(), Out);
}

void expectLevelsAgree(const Spec &S,
                       const std::vector<TraceEvent> &Events) {
  for (bool MutOptimize : {true, false}) {
    std::string Unopt = runLevel(S, Events, 0, MutOptimize);
    std::string Opt = runLevel(S, Events, 1, MutOptimize);
    EXPECT_EQ(Opt, Unopt) << "mutability optimize=" << MutOptimize;
    EXPECT_FALSE(Unopt.empty()) << "vacuous comparison";
  }
}

} // namespace

// --- Evaluation workloads (Fig. 9 / Fig. 10 / Table I) --------------------

TEST(DifferentialOptTest, Figure1) {
  Spec S = figure1();
  expectLevelsAgree(S, tracegen::randomInts(*S.lookup("i"), 2000, 40, 1));
}

TEST(DifferentialOptTest, SeenSet) {
  Spec S = seenSet();
  expectLevelsAgree(S,
                    tracegen::randomInts(*S.lookup("x"), 5000, 60, 2));
}

TEST(DifferentialOptTest, MapWindow) {
  Spec S = mapWindow(16);
  expectLevelsAgree(S,
                    tracegen::randomInts(*S.lookup("x"), 5000, 1000, 3));
}

TEST(DifferentialOptTest, QueueWindow) {
  Spec S = queueWindow(16);
  expectLevelsAgree(S,
                    tracegen::randomInts(*S.lookup("x"), 5000, 1000, 4));
}

TEST(DifferentialOptTest, DbAccessConstraint) {
  Spec S = dbAccessConstraint();
  tracegen::DbLogConfig Config;
  Config.Count = 5000;
  Config.Seed = 5;
  expectLevelsAgree(S, tracegen::dbLog(*S.lookup("ins"), *S.lookup("del"),
                                       *S.lookup("acc"), Config));
}

TEST(DifferentialOptTest, DbTimeConstraint) {
  Spec S = dbTimeConstraint();
  tracegen::DbPairConfig Config;
  Config.Count = 3000;
  Config.Seed = 6;
  expectLevelsAgree(
      S, tracegen::dbPairLog(*S.lookup("db2"), *S.lookup("db3"), Config));
}

TEST(DifferentialOptTest, PeakDetection) {
  Spec S = peakDetection(16);
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.PeakProb = 0.01;
  Config.Seed = 7;
  expectLevelsAgree(S, tracegen::powerSignal(*S.lookup("p"), Config));
}

TEST(DifferentialOptTest, SpectrumCalculation) {
  Spec S = spectrumCalculation();
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.Seed = 8;
  expectLevelsAgree(S, tracegen::powerSignal(*S.lookup("p"), Config));
}

TEST(DifferentialOptTest, TautologicalFilterPassThroughAgrees) {
  // The widening showcase (specs/filter_passthrough.tessla): the facts-
  // driven folder rewrites filter(x, x == x) to a pass-through merge —
  // byte-identity proves the rewrite clock- and value-exact, including
  // at timestamp 0.
  Spec S = parseOrDie(R"(
    in x: Int
    def keep := filter(x, x == x)
    def both := merge(keep, time(keep))
    out keep
    out both
  )");
  expectLevelsAgree(S,
                    tracegen::randomInts(*S.lookup("x"), 2000, 50, 11));
}

TEST(DifferentialOptTest, WholeAggregateOutputsAgree) {
  Spec S = parseOrDie(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def y := setToggle(prev, x)
    def qprev := last(merge(q, queueEmpty()), x)
    def q := queueTrim(queueEnq(qprev, x), 5)
    def mprev := last(merge(m, mapEmpty()), x)
    def m := mapPut(mprev, x % 7, x)
    out y
    out q
    out m
  )");
  expectLevelsAgree(S,
                    tracegen::randomInts(*S.lookup("x"), 500, 25, 9));
}

// --- Randomized specifications --------------------------------------------

TEST(DifferentialOptTest, RandomSpecsAgree) {
  // 40 delay-free random specs; together with the delay batch below the
  // corpus is 55 specs strong.
  uint32_t TotalRewrites = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    Spec S = testrandom::randomSpec(Seed);
    auto Events = testrandom::randomSpecTrace(S, 600, Seed * 977);
    bool MutOptimize = Seed % 2 == 0;
    OptStatistics Stats;
    std::string Unopt = runLevel(S, Events, 0, MutOptimize);
    std::string Opt = runLevel(S, Events, 1, MutOptimize, &Stats);
    EXPECT_EQ(Opt, Unopt) << "seed " << Seed << "\n" << S.str();
    EXPECT_FALSE(Unopt.empty()) << "vacuous comparison at seed " << Seed;
    TotalRewrites +=
        Stats.totalFolded() + Stats.totalFused() + Stats.totalEliminated();
  }
  // The corpus as a whole must exercise the passes, otherwise the
  // equality above proves nothing about them.
  EXPECT_GT(TotalRewrites, 0u) << "no pass ever rewrote anything";
}

TEST(DifferentialOptTest, RandomDelaySpecsAgree) {
  // Delay streams make the triggering section fire between input
  // timestamps; optimizations must not change the firing schedule.
  testrandom::RandomSpecOptions Opts;
  Opts.WithDelay = true;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    Spec S = testrandom::randomSpec(Seed, Opts);
    auto Events = testrandom::randomSpecTrace(S, 400, Seed * 1313);
    bool MutOptimize = Seed % 2 == 1;
    std::string Unopt = runLevel(S, Events, 0, MutOptimize);
    std::string Opt = runLevel(S, Events, 1, MutOptimize);
    EXPECT_EQ(Opt, Unopt) << "seed " << Seed << "\n" << S.str();
    EXPECT_FALSE(Unopt.empty()) << "vacuous comparison at seed " << Seed;
  }
}
