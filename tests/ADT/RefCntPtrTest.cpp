//===- tests/ADT/RefCntPtrTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/RefCntPtr.h"

#include <gtest/gtest.h>

using namespace tessla;

namespace {
struct Tracked : RefCountedBase<Tracked> {
  static int Alive;
  int Payload;
  explicit Tracked(int Payload) : Payload(Payload) { ++Alive; }
  Tracked(const Tracked &Other)
      : RefCountedBase<Tracked>(Other), Payload(Other.Payload) {
    ++Alive;
  }
  ~Tracked() { --Alive; }
};
int Tracked::Alive = 0;
} // namespace

TEST(RefCntPtrTest, LifetimeFollowsReferences) {
  ASSERT_EQ(Tracked::Alive, 0);
  {
    RefCntPtr<Tracked> P = makeRefCnt<Tracked>(7);
    EXPECT_EQ(Tracked::Alive, 1);
    EXPECT_EQ(P->Payload, 7);
    EXPECT_TRUE(P.unique());
    {
      RefCntPtr<Tracked> Q = P;
      EXPECT_EQ(Tracked::Alive, 1);
      EXPECT_FALSE(P.unique());
      EXPECT_EQ(Q.get(), P.get());
    }
    EXPECT_TRUE(P.unique());
  }
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RefCntPtrTest, MoveTransfersOwnership) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(1);
  RefCntPtr<Tracked> Q = std::move(P);
  EXPECT_FALSE(P);
  EXPECT_TRUE(Q);
  EXPECT_EQ(Tracked::Alive, 1);
  Q.reset();
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RefCntPtrTest, AssignmentReleasesOld) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(1);
  RefCntPtr<Tracked> Q = makeRefCnt<Tracked>(2);
  EXPECT_EQ(Tracked::Alive, 2);
  P = Q;
  EXPECT_EQ(Tracked::Alive, 1);
  EXPECT_EQ(P->Payload, 2);
  P = P; // self-assignment is safe
  EXPECT_EQ(Tracked::Alive, 1);
}

TEST(RefCntPtrTest, CopyOfObjectGetsFreshCount) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(3);
  RefCntPtr<Tracked> Q = P;
  // Copy the pointee: new object must start at refcount 0, retained to 1.
  RefCntPtr<Tracked> Copy = makeRefCnt<Tracked>(*P);
  EXPECT_EQ(Copy->useCount(), 1u);
  EXPECT_EQ(P->useCount(), 2u);
  EXPECT_EQ(Copy->Payload, 3);
}
