//===- tests/ADT/RefCntPtrTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/RefCntPtr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace tessla;

namespace {
struct Tracked : RefCountedBase<Tracked> {
  static int Alive;
  int Payload;
  explicit Tracked(int Payload) : Payload(Payload) { ++Alive; }
  Tracked(const Tracked &Other)
      : RefCountedBase<Tracked>(Other), Payload(Other.Payload) {
    ++Alive;
  }
  ~Tracked() { --Alive; }
};
int Tracked::Alive = 0;
} // namespace

TEST(RefCntPtrTest, LifetimeFollowsReferences) {
  ASSERT_EQ(Tracked::Alive, 0);
  {
    RefCntPtr<Tracked> P = makeRefCnt<Tracked>(7);
    EXPECT_EQ(Tracked::Alive, 1);
    EXPECT_EQ(P->Payload, 7);
    EXPECT_TRUE(P.unique());
    {
      RefCntPtr<Tracked> Q = P;
      EXPECT_EQ(Tracked::Alive, 1);
      EXPECT_FALSE(P.unique());
      EXPECT_EQ(Q.get(), P.get());
    }
    EXPECT_TRUE(P.unique());
  }
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RefCntPtrTest, MoveTransfersOwnership) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(1);
  RefCntPtr<Tracked> Q = std::move(P);
  EXPECT_FALSE(P);
  EXPECT_TRUE(Q);
  EXPECT_EQ(Tracked::Alive, 1);
  Q.reset();
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RefCntPtrTest, AssignmentReleasesOld) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(1);
  RefCntPtr<Tracked> Q = makeRefCnt<Tracked>(2);
  EXPECT_EQ(Tracked::Alive, 2);
  P = Q;
  EXPECT_EQ(Tracked::Alive, 1);
  EXPECT_EQ(P->Payload, 2);
  P = P; // self-assignment is safe
  EXPECT_EQ(Tracked::Alive, 1);
}

TEST(RefCntPtrTest, CopyOfObjectGetsFreshCount) {
  RefCntPtr<Tracked> P = makeRefCnt<Tracked>(3);
  RefCntPtr<Tracked> Q = P;
  // Copy the pointee: new object must start at refcount 0, retained to 1.
  RefCntPtr<Tracked> Copy = makeRefCnt<Tracked>(*P);
  EXPECT_EQ(Copy->useCount(), 1u);
  EXPECT_EQ(P->useCount(), 2u);
  EXPECT_EQ(Copy->Payload, 3);
}

TEST(RefCntPtrTest, ConcurrentRetainReleaseIsExact) {
  // Forked sessions share aggregate nodes across shard threads: the
  // count must be atomic so concurrent handle copies on different
  // threads neither leak nor double-free.
  ASSERT_EQ(Tracked::Alive, 0);
  {
    RefCntPtr<Tracked> P = makeRefCnt<Tracked>(1);
    constexpr int Threads = 8;
    constexpr int Iters = 20000;
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T)
      Pool.emplace_back([&P] {
        for (int I = 0; I != Iters; ++I) {
          RefCntPtr<Tracked> Local = P; // retain
          RefCntPtr<Tracked> Second = Local;
          EXPECT_EQ(Second->Payload, 1);
        } // release
      });
    for (std::thread &T : Pool)
      T.join();
    EXPECT_EQ(Tracked::Alive, 1);
    EXPECT_TRUE(P.unique()) << "all transient references released";
  }
  EXPECT_EQ(Tracked::Alive, 0);
}

TEST(RefCntPtrTest, ConcurrentReleaseOfLastReferences) {
  // Hand one reference each to N threads and let them all drop at once:
  // exactly one destruction.
  for (int Round = 0; Round != 50; ++Round) {
    ASSERT_EQ(Tracked::Alive, 0);
    constexpr int Threads = 8;
    std::vector<RefCntPtr<Tracked>> Refs(
        Threads, makeRefCnt<Tracked>(Round));
    std::atomic<int> Gate{0};
    std::vector<std::thread> Pool;
    for (int T = 0; T != Threads; ++T)
      Pool.emplace_back([&Gate, &Refs, T] {
        Gate.fetch_add(1);
        while (Gate.load() != Threads) {
        }
        Refs[T].reset();
      });
    for (std::thread &T : Pool)
      T.join();
    EXPECT_EQ(Tracked::Alive, 0);
  }
}
