//===- tests/ADT/UnionFindTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/UnionFind.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

using namespace tessla;

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind UF(5);
  EXPECT_EQ(UF.numSets(), 5u);
  for (uint32_t I = 0; I != 5; ++I) {
    EXPECT_EQ(UF.find(I), I);
    EXPECT_EQ(UF.setSize(I), 1u);
  }
}

TEST(UnionFindTest, UniteMergesSets) {
  UnionFind UF(4);
  UF.unite(0, 1);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 2));
  EXPECT_EQ(UF.numSets(), 3u);
  EXPECT_EQ(UF.setSize(0), 2u);
  UF.unite(2, 3);
  UF.unite(1, 3);
  EXPECT_TRUE(UF.connected(0, 2));
  EXPECT_EQ(UF.numSets(), 1u);
  EXPECT_EQ(UF.setSize(3), 4u);
}

TEST(UnionFindTest, UniteIsIdempotent) {
  UnionFind UF(3);
  UF.unite(0, 1);
  uint32_t Rep = UF.find(0);
  EXPECT_EQ(UF.unite(0, 1), Rep);
  EXPECT_EQ(UF.numSets(), 2u);
}

TEST(UnionFindTest, GrowAddsSingletons) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(4);
  EXPECT_EQ(UF.numSets(), 3u);
  EXPECT_FALSE(UF.connected(1, 3));
}

TEST(UnionFindTest, GroupsListsAllMembersSorted) {
  UnionFind UF(6);
  UF.unite(0, 3);
  UF.unite(3, 5);
  UF.unite(1, 2);
  auto Groups = UF.groups();
  ASSERT_EQ(Groups.size(), 3u);
  // Every element appears exactly once, groups internally sorted.
  std::vector<uint32_t> All;
  for (const auto &G : Groups) {
    EXPECT_TRUE(std::is_sorted(G.begin(), G.end()));
    All.insert(All.end(), G.begin(), G.end());
  }
  std::sort(All.begin(), All.end());
  std::vector<uint32_t> Expected(6);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(All, Expected);
}

/// Property: union-find agrees with a naive labeling under random unions.
TEST(UnionFindTest, MatchesNaiveLabelsUnderRandomUnions) {
  std::mt19937 Rng(42);
  for (int Round = 0; Round != 20; ++Round) {
    uint32_t N = 1 + Rng() % 64;
    UnionFind UF(N);
    std::vector<uint32_t> Label(N);
    std::iota(Label.begin(), Label.end(), 0);
    for (int Op = 0; Op != 100; ++Op) {
      uint32_t A = Rng() % N, B = Rng() % N;
      UF.unite(A, B);
      uint32_t From = Label[B], To = Label[A];
      for (uint32_t &L : Label)
        if (L == From)
          L = To;
    }
    for (uint32_t I = 0; I != N; ++I)
      for (uint32_t J = 0; J != N; ++J)
        EXPECT_EQ(UF.connected(I, J), Label[I] == Label[J])
            << "round " << Round << " pair " << I << "," << J;
  }
}
