//===- tests/ADT/GraphAlgosTest.cpp -----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/GraphAlgos.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace tessla;

TEST(TopologicalSortTest, EmptyGraph) {
  std::vector<uint32_t> Order;
  EXPECT_TRUE(topologicalSort({}, Order));
  EXPECT_TRUE(Order.empty());
}

TEST(TopologicalSortTest, Chain) {
  Adjacency Adj{{1}, {2}, {}};
  std::vector<uint32_t> Order;
  ASSERT_TRUE(topologicalSort(Adj, Order));
  EXPECT_EQ(Order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(TopologicalSortTest, DeterministicSmallestFirst) {
  // 2 -> 0, 2 -> 1; among ready nodes the smallest id is emitted first.
  Adjacency Adj{{}, {}, {0, 1}};
  std::vector<uint32_t> Order;
  ASSERT_TRUE(topologicalSort(Adj, Order));
  EXPECT_EQ(Order, (std::vector<uint32_t>{2, 0, 1}));
}

TEST(TopologicalSortTest, DetectsCycle) {
  Adjacency Adj{{1}, {2}, {0}};
  std::vector<uint32_t> Order;
  EXPECT_FALSE(topologicalSort(Adj, Order));
}

TEST(TopologicalSortTest, RespectsAllEdges) {
  std::mt19937 Rng(7);
  for (int Round = 0; Round != 30; ++Round) {
    // Random DAG: edges only from lower to higher shuffled rank.
    uint32_t N = 2 + Rng() % 20;
    std::vector<uint32_t> Rank(N);
    for (uint32_t I = 0; I != N; ++I)
      Rank[I] = I;
    std::shuffle(Rank.begin(), Rank.end(), Rng);
    Adjacency Adj(N);
    for (uint32_t U = 0; U != N; ++U)
      for (uint32_t V = 0; V != N; ++V)
        if (Rank[U] < Rank[V] && Rng() % 4 == 0)
          Adj[U].push_back(V);
    std::vector<uint32_t> Order;
    ASSERT_TRUE(topologicalSort(Adj, Order));
    std::vector<uint32_t> Position(N);
    for (uint32_t I = 0; I != N; ++I)
      Position[Order[I]] = I;
    for (uint32_t U = 0; U != N; ++U)
      for (uint32_t V : Adj[U])
        EXPECT_LT(Position[U], Position[V]);
  }
}

TEST(FindCycleTest, AcyclicReturnsEmpty) {
  Adjacency Adj{{1, 2}, {2}, {}};
  EXPECT_TRUE(findCycle(Adj).empty());
}

TEST(FindCycleTest, SelfLoop) {
  Adjacency Adj{{0}};
  auto Cycle = findCycle(Adj);
  EXPECT_EQ(Cycle, (std::vector<uint32_t>{0}));
}

TEST(FindCycleTest, ReturnsActualCycle) {
  // 0 -> 1 -> 2 -> 3 -> 1.
  Adjacency Adj{{1}, {2}, {3}, {1}};
  auto Cycle = findCycle(Adj);
  ASSERT_FALSE(Cycle.empty());
  // Consecutive elements (cyclically) must be edges.
  for (size_t I = 0; I != Cycle.size(); ++I) {
    uint32_t U = Cycle[I], V = Cycle[(I + 1) % Cycle.size()];
    bool HasEdge =
        std::find(Adj[U].begin(), Adj[U].end(), V) != Adj[U].end();
    EXPECT_TRUE(HasEdge) << U << " -> " << V;
  }
}

TEST(SCCTest, ChainGivesSingletons) {
  Adjacency Adj{{1}, {2}, {}};
  auto Comps = stronglyConnectedComponents(Adj);
  EXPECT_EQ(Comps.size(), 3u);
}

TEST(SCCTest, CycleIsOneComponent) {
  Adjacency Adj{{1}, {2}, {0}, {0}};
  auto Comps = stronglyConnectedComponents(Adj);
  ASSERT_EQ(Comps.size(), 2u);
  // The 3-cycle forms one component; node 3 is a singleton.
  std::set<std::vector<uint32_t>> Set(Comps.begin(), Comps.end());
  EXPECT_TRUE(Set.count({0, 1, 2}));
  EXPECT_TRUE(Set.count({3}));
}

TEST(ReachabilityTest, ForwardOnly) {
  Adjacency Adj{{1}, {2}, {}, {0}};
  auto Seen = reachableFrom(Adj, 0);
  EXPECT_TRUE(Seen[0]);
  EXPECT_TRUE(Seen[1]);
  EXPECT_TRUE(Seen[2]);
  EXPECT_FALSE(Seen[3]);
}

TEST(ReverseGraphTest, FlipsEdges) {
  Adjacency Adj{{1, 2}, {2}, {}};
  Adjacency Rev = reverseGraph(Adj);
  EXPECT_EQ(Rev[2], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(Rev[1], (std::vector<uint32_t>{0}));
  EXPECT_TRUE(Rev[0].empty());
}
