//===- tests/Analysis/StatisticsTest.cpp ------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Statistics.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

TEST(StatisticsTest, Figure1Shape) {
  AnalysisResult A = analyzeSpec(figure1());
  AnalysisStatistics Stats = collectStatistics(A);
  EXPECT_EQ(Stats.Streams, 7u); // i, m, yl, y, s + unit + setEmpty temps
  EXPECT_EQ(Stats.AggregateStreams, 4u); // m, yl, y, empty
  EXPECT_EQ(Stats.WriteEdges, 1u);       // yl -W-> y
  EXPECT_EQ(Stats.ReadEdges, 1u);        // yl -R-> s
  EXPECT_EQ(Stats.LastEdges, 1u);        // m -L-> yl
  EXPECT_EQ(Stats.PassEdges, 2u);        // y -P-> m, empty -P-> m
  EXPECT_EQ(Stats.SpecialEdges, 1u);
  EXPECT_EQ(Stats.AggregateFamilies, 1u);
  EXPECT_EQ(Stats.MutableStreams, 4u);
  EXPECT_EQ(Stats.PersistentFamilies, 0u);
  EXPECT_EQ(Stats.ReadBeforeWriteConstraints, 1u);
}

TEST(StatisticsTest, Figure4LowerCountsPersistentFamily) {
  AnalysisResult A = analyzeSpec(figure4Lower());
  AnalysisStatistics Stats = collectStatistics(A);
  EXPECT_EQ(Stats.MutableStreams, 0u);
  EXPECT_GE(Stats.PersistentFamilies, 1u);
  EXPECT_EQ(Stats.WriteEdges, 2u); // the double write
}

TEST(StatisticsTest, RenderingMentionsEverything) {
  AnalysisResult A = analyzeSpec(seenSet());
  std::string Text = collectStatistics(A).str();
  for (const char *Needle :
       {"streams:", "edges:", "aggregate families:", "mutable streams:",
        "read-before-write", "implication checks:"})
    EXPECT_NE(Text.find(Needle), std::string::npos) << Text;
}

TEST(StatisticsTest, BaselineReportsNoMutables) {
  MutabilityOptions Opts;
  Opts.Optimize = false;
  AnalysisResult A = analyzeSpec(figure1(), Opts);
  EXPECT_EQ(collectStatistics(A).MutableStreams, 0u);
}
