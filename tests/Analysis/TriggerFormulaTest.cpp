//===- tests/Analysis/TriggerFormulaTest.cpp --------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/TriggerFormula.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

TEST(TriggerFormulaTest, Figure1WorkedExample) {
  // §IV-C: ev'(yl) = i and ev'(m) = (i & i) | u; the implication
  // ev'(yl) -> ev'(m) is a tautology, so yl is a non-replicating last.
  Spec S = figure1();
  TriggerAnalysis TA(S);
  StreamId I = *S.lookup("i"), YL = *S.lookup("yl"), M = *S.lookup("m");
  EXPECT_EQ(TA.formulaString(YL), "i");
  EXPECT_TRUE(TA.implies(YL, M));
  EXPECT_FALSE(TA.implies(M, YL));
  EXPECT_FALSE(TA.isReplicatingLast(YL));
  EXPECT_TRUE(TA.implies(YL, I));
}

TEST(TriggerFormulaTest, AlwaysInitialized) {
  Spec S = figure1();
  TriggerAnalysis TA(S);
  // m = merge(y, empty) has the empty-set constant at timestamp 0.
  EXPECT_TRUE(TA.alwaysInitialized(*S.lookup("m")));
  // y = setAdd(yl, i) needs yl which starts uninitialized.
  EXPECT_FALSE(TA.alwaysInitialized(*S.lookup("y")));
  EXPECT_FALSE(TA.alwaysInitialized(*S.lookup("i")));
  EXPECT_FALSE(TA.alwaysInitialized(*S.lookup("yl")));
}

TEST(TriggerFormulaTest, NilAndTime) {
  Spec S = parseOrDie(R"(
    in a: Int
    def n := merge(a, nil)
    def t := time(n)
    out t
  )");
  TriggerAnalysis TA(S);
  // merge(a, nil): ev' = a | false = a; time passes through.
  EXPECT_EQ(TA.formulaString(*S.lookup("n")), "a");
  EXPECT_EQ(TA.formulaString(*S.lookup("t")), "a");
}

TEST(TriggerFormulaTest, AllLiftIsConjunction) {
  Spec S = parseOrDie(R"(
    in a: Int
    in b: Int
    def x := a + b
    out x
  )");
  TriggerAnalysis TA(S);
  StreamId X = *S.lookup("x");
  EXPECT_TRUE(TA.implies(X, *S.lookup("a")));
  EXPECT_TRUE(TA.implies(X, *S.lookup("b")));
  EXPECT_FALSE(TA.implies(*S.lookup("a"), X));
}

TEST(TriggerFormulaTest, FilterBecomesAtom) {
  Spec S = parseOrDie(R"(
    in a: Int
    in c: Bool
    def f := filter(a, c)
    out f
  )");
  TriggerAnalysis TA(S);
  StreamId F = *S.lookup("f");
  // f's events depend on c's *values*: only f -> a/c holds... not even
  // that, the formula is an opaque atom.
  EXPECT_EQ(TA.formulaString(F), "f");
  EXPECT_FALSE(TA.implies(*S.lookup("a"), F));
}

TEST(TriggerFormulaTest, UninitializedLastIsAtom) {
  // last(v, t) with v an input: no timestamp-0 guarantee, so ev' cannot
  // equate the last with its trigger.
  Spec S = parseOrDie(R"(
    in v: Int
    in t: Int
    def l := last(v, t)
    out l
  )");
  TriggerAnalysis TA(S);
  EXPECT_EQ(TA.formulaString(*S.lookup("l")), "l");
}

TEST(TriggerFormulaTest, InitializedLastTicksWithTrigger) {
  Spec S = parseOrDie(R"(
    in t: Int
    def v := default(t, 0)
    def l := last(v, t)
    out l
  )");
  TriggerAnalysis TA(S);
  EXPECT_EQ(TA.formulaString(*S.lookup("l")), "t");
  EXPECT_FALSE(TA.isReplicatingLast(*S.lookup("l")));
}

TEST(TriggerFormulaTest, ReplicatingLastDetected) {
  // The accumulator ticks only on i, but the last reproduces on i or j:
  // j-only timestamps replicate the value (Def. 5).
  Spec S = parseOrDie(R"(
    in i: Int
    in j: Int
    def trig := merge(i, j)
    def m := merge(y, setEmpty())
    def yl := last(m, trig)
    def y := setAdd(yl, i)
    out y
  )");
  TriggerAnalysis TA(S);
  EXPECT_TRUE(TA.isReplicatingLast(*S.lookup("yl")));
}

TEST(TriggerFormulaTest, DbAccessPrevIsReplicating) {
  // Table I DBAccessConstraint: the live-set last also ticks on accesses,
  // which do not produce new set versions.
  Spec S = dbAccessConstraint();
  TriggerAnalysis TA(S);
  EXPECT_TRUE(TA.isReplicatingLast(*S.lookup("prev")));
}

TEST(TriggerFormulaTest, SeenSetPrevNotReplicating) {
  // Every trigger (x) also toggles the set: no replication.
  Spec S = seenSet();
  TriggerAnalysis TA(S);
  EXPECT_FALSE(TA.isReplicatingLast(*S.lookup("prev")));
}

TEST(TriggerFormulaTest, SetUpdateSemantics) {
  Spec S = dbAccessConstraint();
  TriggerAnalysis TA(S);
  // live = setUpdate(prev, ins, del): fires on prev & (ins | del); an
  // insert implies a live-set event but an access alone does not.
  StreamId Live = *S.lookup("live");
  EXPECT_TRUE(TA.implies(*S.lookup("ins"),
                         *S.lookup("anyOp"))); // sanity for the trigger
  EXPECT_TRUE(TA.implies(Live, *S.lookup("prev")));
  EXPECT_FALSE(TA.implies(*S.lookup("acc"), Live));
}

TEST(TriggerFormulaTest, DelayIsAtom) {
  Spec S = parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    out d
  )");
  TriggerAnalysis TA(S);
  EXPECT_EQ(TA.formulaString(*S.lookup("d")), "d");
}

TEST(TriggerFormulaTest, CountersExposed) {
  Spec S = figure1();
  TriggerAnalysis TA(S);
  (void)TA.isReplicatingLast(*S.lookup("yl"));
  EXPECT_GE(TA.implicationFastPathHits() + TA.implicationSatQueries(), 1u);
}
