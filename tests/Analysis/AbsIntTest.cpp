//===- tests/Analysis/AbsIntTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the abstract-interpretation framework (Analysis/
/// AbsInt.h): the tick/constant, range and bound lattices on hand-written
/// specifications, the must-fire-at-0 proofs, the clock-domination
/// queries, the fixpoint engine's convergence/widening contract, and the
/// rendering entry points the linter and `tesslac --dump-analysis` share.
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/AbsInt.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::absint;
using namespace tessla::testspecs;

namespace {

/// Baseline-compiles \p Source and computes the fact store over it.
struct Analyzed {
  Program P;
  AnalysisFacts Facts;

  explicit Analyzed(std::string_view Source, unsigned OptLevel = 0)
      : P(compileOrDie(parseOrDie(Source), /*Optimize=*/false, OptLevel)),
        Facts(AnalysisFacts::compute(P)) {}

  StreamId id(const char *Name) const {
    auto Id = P.spec().lookup(Name);
    EXPECT_TRUE(Id) << "no stream named " << Name;
    return Id ? *Id : 0;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Tick / nil reachability
//===----------------------------------------------------------------------===//

TEST(AbsIntTest, InputsAndConstantsTick) {
  Analyzed A(R"(
    in x: Int
    def c := 42
    def t := time(x)
    out c
    out t
  )");
  EXPECT_EQ(A.Facts.tick(A.id("x")), TickKind::Var);
  EXPECT_FALSE(A.Facts.alwaysInitialized(A.id("x")));
  EXPECT_TRUE(A.Facts.unitClock(A.id("c")));
  EXPECT_TRUE(A.Facts.alwaysInitialized(A.id("c")));
  ASSERT_NE(A.Facts.knownValue(A.id("c")), nullptr);
  EXPECT_EQ(A.Facts.knownValue(A.id("c"))->getInt(), 42);
  // time(x) ticks exactly with x.
  EXPECT_EQ(A.Facts.tick(A.id("t")), TickKind::Var);
  EXPECT_EQ(A.Facts.clockRelation(A.id("t"), A.id("x")), ClockRel::Equal);
}

TEST(AbsIntTest, RangeProvenFalseFilterIsNever) {
  // The condition is a held `false`: the range channel proves the filter
  // silent, which the boolean reachability of the old linter could not.
  Analyzed A(R"(
    in x: Int
    def dead := filter(x, false)
    out dead
  )");
  EXPECT_FALSE(A.Facts.canFire(A.id("dead")));
  EXPECT_TRUE(A.Facts.canFire(A.id("x")));
}

TEST(AbsIntTest, UninitializedSelfLastIsNever) {
  Analyzed A(R"(
    in x: Int
    def selfy := last(selfy + 1, x)
    out selfy
  )");
  EXPECT_FALSE(A.Facts.canFire(A.id("selfy")));
}

//===----------------------------------------------------------------------===//
// Constant / range
//===----------------------------------------------------------------------===//

TEST(AbsIntTest, HeldConstantIsKnownEverywhere) {
  // The held-constant idiom ticks with x yet provably always carries 7.
  Analyzed A(R"(
    in x: Int
    def h := merge(last(h, x), 7)
    out h
  )");
  StreamId H = A.id("h");
  EXPECT_EQ(A.Facts.tick(H), TickKind::Var);
  ASSERT_NE(A.Facts.knownValue(H), nullptr);
  EXPECT_EQ(A.Facts.knownValue(H)->getInt(), 7);
  EXPECT_TRUE(A.Facts.alwaysInitialized(H));
}

TEST(AbsIntTest, CounterRangeWidensToHalfLine) {
  Analyzed A(R"(
    in x: Int
    def c := merge(last(c, x) + 1, 0)
    out c
  )");
  const ValueRange &R = A.Facts.range(A.id("c"));
  ASSERT_EQ(R.K, ValueRange::Kind::Int);
  EXPECT_EQ(R.Lo, 0);
  EXPECT_EQ(R.Hi, ValueRange::PosInf);
  EXPECT_TRUE(R.contains(Value::integer(12345)));
  EXPECT_FALSE(R.contains(Value::integer(-1)));
}

TEST(AbsIntTest, SameStreamComparisonFoldsToBool) {
  // x == x over the same Int stream is provably true at every event.
  Analyzed A(R"(
    in x: Int
    def eq := x == x
    def ne := x != x
    out eq
    out ne
  )");
  EXPECT_TRUE(A.Facts.range(A.id("eq")).alwaysTrue());
  EXPECT_TRUE(A.Facts.range(A.id("ne")).alwaysFalse());
}

TEST(AbsIntTest, ValueRangeLatticeOps) {
  ValueRange A = ValueRange::interval(0, 10);
  ValueRange B = ValueRange::interval(5, 20);
  ValueRange J = A.join(B);
  EXPECT_EQ(J, ValueRange::interval(0, 20));
  EXPECT_EQ(J.join(ValueRange::bottom()), J);
  EXPECT_EQ(J.join(ValueRange::top()).K, ValueRange::Kind::Top);
  // Widening jumps only the unstable bound.
  ValueRange W = ValueRange::interval(0, 30).widen(A);
  EXPECT_EQ(W.Lo, 0);
  EXPECT_EQ(W.Hi, ValueRange::PosInf);
  EXPECT_EQ(ValueRange::boolConst(true)
                .join(ValueRange::boolConst(false))
                .str(),
            "{true, false}");
}

//===----------------------------------------------------------------------===//
// Size bounds
//===----------------------------------------------------------------------===//

TEST(AbsIntTest, TrimmedQueueIsBounded) {
  Spec S = queueWindow(8);
  Program P = compileOrDie(S, /*Optimize=*/false);
  AnalysisFacts Facts = AnalysisFacts::compute(P);
  EXPECT_TRUE(Facts.unboundedStreams().empty());
  bool SawAggregate = false;
  for (StreamId Id = 0; Id != P.numStreams(); ++Id)
    if (P.spec().stream(Id).Ty.isComplex()) {
      SawAggregate = true;
      EXPECT_FALSE(Facts.sizeBound(Id).Unbounded)
          << "stream " << P.spec().stream(Id).Name;
    }
  EXPECT_TRUE(SawAggregate);
}

TEST(AbsIntTest, GrowingSetWidensToUnboundedWithCycle) {
  Spec S = seenSet();
  Program P = compileOrDie(S, /*Optimize=*/false);
  AnalysisFacts Facts = AnalysisFacts::compute(P);
  ASSERT_FALSE(Facts.unboundedStreams().empty());
  // The growth cycle threads through the accumulator loop.
  bool FoundCycle = false;
  for (const AnalysisFacts::UnboundedGrowth &U : Facts.unboundedStreams())
    FoundCycle |= U.Cycle.find(" -> ") != std::string::npos;
  EXPECT_TRUE(FoundCycle);
}

//===----------------------------------------------------------------------===//
// Clock domination
//===----------------------------------------------------------------------===//

TEST(AbsIntTest, ClockQueriesOnMergeAndLift) {
  Analyzed A(R"(
    in a: Int
    in b: Int
    def m := merge(a, b)
    def s := a + b
    def f := filter(a, a > 0)
    out m
    out s
    out f
  )");
  StreamId IdA = A.id("a"), IdB = A.id("b");
  StreamId M = A.id("m"), Sum = A.id("s"), F = A.id("f");

  EXPECT_TRUE(A.Facts.clockSubset(IdA, M));
  EXPECT_FALSE(A.Facts.clockSubset(M, IdA));
  EXPECT_EQ(A.Facts.clockRelation(IdA, M), ClockRel::Subset);
  EXPECT_EQ(A.Facts.clockRelation(M, IdA), ClockRel::Superset);
  EXPECT_EQ(A.Facts.clockRelation(M, M), ClockRel::Equal);

  // a + b ticks only when both tick — a subset of each input's clock.
  EXPECT_TRUE(A.Facts.clockSubset(Sum, IdA));
  EXPECT_TRUE(A.Facts.clockSubset(Sum, IdB));
  EXPECT_EQ(A.Facts.clockRelation(Sum, IdA), ClockRel::Subset);

  // Exact refutation over free input atoms: a can tick without b.
  EXPECT_TRUE(A.Facts.provablyTicksWithout(IdA, IdB));
  EXPECT_FALSE(A.Facts.provablyTicksWithout(Sum, IdA));

  // The filter carries an opaque condition atom: still a subset of its
  // argument's clock, but not exactly refutable.
  EXPECT_TRUE(A.Facts.clockSubset(F, IdA));
  EXPECT_FALSE(A.Facts.provablyTicksWithout(IdA, F));

  // Covered-by: every merge event coincides with one of the arms.
  EXPECT_TRUE(A.Facts.clockCoveredBy(M, {IdA, IdB}));
  EXPECT_FALSE(A.Facts.clockCoveredBy(M, {IdA}));
}

TEST(AbsIntTest, AlwaysTrueFilterHasExactClock) {
  // The condition is provably true at every event, so the filter's clock
  // is exactly conj(a, cond) with no opaque gate — equal to a's clock.
  Analyzed A(R"(
    in a: Int
    def keep := filter(a, a == a)
    out keep
  )");
  EXPECT_EQ(A.Facts.clockRelation(A.id("keep"), A.id("a")),
            ClockRel::Equal);
}

TEST(AbsIntTest, SelfArmingDelayIsFlagged) {
  // The periodic idiom: the held delay amount re-arms on the delay's own
  // events, so the drain at finish() needs a horizon.
  Spec S = parseOrDie(R"(
    in x: Int
    def p := delay(10, unit)
    def q := delay(time(x) + 1, x)
    out p
    out q
  )");
  Program P = compileOrDie(S, /*Optimize=*/false);
  AnalysisFacts Facts = AnalysisFacts::compute(P);
  EXPECT_TRUE(Facts.delaySelfArming(*S.lookup("p")));
  EXPECT_FALSE(Facts.delaySelfArming(*S.lookup("q")));
}

//===----------------------------------------------------------------------===//
// Fixpoint engine contract
//===----------------------------------------------------------------------===//

namespace {

/// A no-op analysis: every step is visited exactly once.
struct NullAnalysis final : Analysis {
  std::string_view name() const override { return "null"; }
  bool transfer(const ProgramStep &) override { return false; }
  bool widen(const ProgramStep &) override { return false; }
};

/// Never stabilizes under transfer(); only widen() stops it. Exercises
/// the engine's per-step visit counters and the widening hand-off.
struct RestlessAnalysis final : Analysis {
  unsigned Widened = 0;
  std::string_view name() const override { return "restless"; }
  bool transfer(const ProgramStep &) override { return true; }
  bool widen(const ProgramStep &) override {
    ++Widened;
    return false;
  }
  unsigned widenAfter() const override { return 3; }
};

} // namespace

TEST(AbsIntTest, FixpointVisitsEveryStepOnce) {
  Program P = compileOrDie(parseOrDie(R"(
    in a: Int
    def b := a + 1
    def c := merge(a, b)
    out c
  )"),
                           /*Optimize=*/false);
  NullAnalysis N;
  EXPECT_EQ(runFixpoint(P, {&N}), P.steps().size());
}

TEST(AbsIntTest, FixpointWidensRestlessSteps) {
  Program P = compileOrDie(parseOrDie(R"(
    in x: Int
    def c := merge(last(c, x) + 1, 0)
    out c
  )"),
                           /*Optimize=*/false);
  RestlessAnalysis R;
  size_t Transfers = runFixpoint(P, {&R});
  // Terminated (or we would not be here), visited more than once per
  // step, and the cyclic steps crossed the widening threshold.
  EXPECT_GT(Transfers, P.steps().size());
  EXPECT_GT(R.Widened, 0u);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(AbsIntTest, FactStringCarriesProvingFacts) {
  Analyzed A(R"(
    in x: Int
    def dead := filter(x, false)
    out dead
  )");
  std::string FS = A.Facts.factString(A.id("dead"));
  EXPECT_NE(FS.find("tick=never"), std::string::npos) << FS;
  EXPECT_NE(FS.find("clock="), std::string::npos) << FS;
}

TEST(AbsIntTest, DumpNamesStreamsAndSummarizesMemory) {
  Spec S = queueWindow(4);
  Program P = compileOrDie(S, /*Optimize=*/false);
  AnalysisFacts Facts = AnalysisFacts::compute(P);
  std::string Dump = Facts.str();
  EXPECT_NE(Dump.find("analysis facts:"), std::string::npos);
  EXPECT_NE(Dump.find("memory: bounded, <= "), std::string::npos) << Dump;
}
