//===- tests/Analysis/GraphWriterTest.cpp -----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/GraphWriter.h"
#include "tessla/Analysis/Pipeline.h"
#include "tessla/Support/Format.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

TEST(GraphWriterTest, EmitsWellFormedDot) {
  Spec S = figure1();
  UsageGraph G(S);
  std::string Dot = writeUsageGraphDot(G);
  EXPECT_EQ(Dot.substr(0, 14), "digraph usage ");
  EXPECT_EQ(Dot.substr(Dot.size() - 2), "}\n");
  // One node line per stream.
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    EXPECT_NE(Dot.find("\"" + S.stream(Id).Name + "\\n"),
              std::string::npos)
        << S.stream(Id).Name;
}

TEST(GraphWriterTest, EdgeStyling) {
  Spec S = figure1();
  UsageGraph G(S);
  std::string Dot = writeUsageGraphDot(G);
  // Write edge yl -> y in red with label W.
  StreamId YL = *S.lookup("yl"), Y = *S.lookup("y"), M = *S.lookup("m");
  EXPECT_NE(Dot.find(formatString("n%u -> n%u [color=red, label=\"W\"]",
                                  YL, Y)),
            std::string::npos)
      << Dot;
  // Special last edge m -> yl dashed.
  EXPECT_NE(Dot.find(formatString(
                "n%u -> n%u [color=black, label=\"L\", style=dashed]", M,
                YL)),
            std::string::npos)
      << Dot;
}

TEST(GraphWriterTest, MutabilityColorsAndConstraints) {
  Spec S = figure1();
  AnalysisResult A = analyzeSpec(S);
  std::string Dot = writeUsageGraphDot(A.graph(), &A.mutability());
  EXPECT_NE(Dot.find("fillcolor=palegreen"), std::string::npos)
      << "mutable aggregates highlighted";
  EXPECT_NE(Dot.find("label=\"before\""), std::string::npos)
      << "read-before-write constraint rendered";
  // Figure 4 lower: persistent aggregates in the other color.
  Spec S2 = figure4Lower();
  AnalysisResult A2 = analyzeSpec(S2);
  std::string Dot2 = writeUsageGraphDot(A2.graph(), &A2.mutability());
  EXPECT_NE(Dot2.find("fillcolor=mistyrose"), std::string::npos);
}
