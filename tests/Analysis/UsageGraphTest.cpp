//===- tests/Analysis/UsageGraphTest.cpp ------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/UsageGraph.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// Finds the edge u -> v, failing the test if absent.
const UsageEdge *edgeBetween(const UsageGraph &G, const Spec &S,
                             const char *From, const char *To) {
  StreamId U = *S.lookup(From), V = *S.lookup(To);
  for (uint32_t EI : G.outEdges(U))
    if (G.edge(EI).To == V)
      return &G.edge(EI);
  ADD_FAILURE() << "no edge " << From << " -> " << To;
  return nullptr;
}

} // namespace

TEST(UsageGraphTest, Figure3EdgeClassification) {
  // The classified usage graph of the paper's Fig. 1 / Fig. 3:
  //   y -P-> m, empty -P-> m, m -L*-> yl, yl -W-> y, yl -R-> s,
  //   i -> yl (trigger, plain), i -> y, i -> s (scalar args, plain).
  Spec S = figure1();
  UsageGraph G(S);

  const UsageEdge *E = edgeBetween(G, S, "y", "m");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Pass);
  EXPECT_FALSE(E->Special);

  E = edgeBetween(G, S, "m", "yl");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Last);
  EXPECT_TRUE(E->Special);

  E = edgeBetween(G, S, "yl", "y");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Write);

  E = edgeBetween(G, S, "yl", "s");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Read);

  E = edgeBetween(G, S, "i", "yl");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Plain);
  EXPECT_FALSE(E->Special);

  E = edgeBetween(G, S, "i", "y");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Plain);
}

TEST(UsageGraphTest, ScalarLastEdgesAreNotLastKind) {
  // Edge kinds only apply to aggregate-typed sources (Def. 3 note).
  Spec S = parseOrDie(R"(
    in i: Int
    def l := last(i, i)
    out l
  )");
  UsageGraph G(S);
  const UsageEdge *E = edgeBetween(G, S, "i", "l");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, EdgeKind::Plain);
  EXPECT_TRUE(E->Special);
}

TEST(UsageGraphTest, NonSpecialAdjacencyExcludesLastValueEdges) {
  Spec S = figure1();
  UsageGraph G(S);
  StreamId M = *S.lookup("m"), YL = *S.lookup("yl");
  const Adjacency &Adj = G.nonSpecialAdjacency();
  EXPECT_TRUE(std::find(Adj[M].begin(), Adj[M].end(), YL) == Adj[M].end())
      << "special edge must not constrain the translation order";
  // The non-special graph of a valid spec is acyclic.
  std::vector<uint32_t> Order;
  EXPECT_TRUE(topologicalSort(Adj, Order));
}

TEST(UsageGraphTest, PassLastSubgraph) {
  Spec S = figure1();
  UsageGraph G(S);
  StreamId Y = *S.lookup("y"), M = *S.lookup("m"), YL = *S.lookup("yl");
  const Adjacency &PL = G.passLastAdjacency();
  EXPECT_TRUE(std::find(PL[Y].begin(), PL[Y].end(), M) != PL[Y].end());
  EXPECT_TRUE(std::find(PL[M].begin(), PL[M].end(), YL) != PL[M].end());
  // Write edges are not value-flow edges for aliasing.
  EXPECT_TRUE(std::find(PL[YL].begin(), PL[YL].end(), Y) == PL[YL].end());
  // Reverse graph mirrors it.
  const Adjacency &Rev = G.passLastReverse();
  EXPECT_TRUE(std::find(Rev[M].begin(), Rev[M].end(), Y) != Rev[M].end());
}

TEST(UsageGraphTest, DelayEdges) {
  Spec S = parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    out d
  )");
  UsageGraph G(S);
  StreamId R = *S.lookup("r"), D = *S.lookup("d");
  bool SawSpecial = false, SawPlain = false;
  for (uint32_t EI : G.outEdges(R)) {
    if (G.edge(EI).To != D)
      continue;
    (G.edge(EI).Special ? SawSpecial : SawPlain) = true;
  }
  EXPECT_TRUE(SawSpecial) << "delay amount edge is special";
  EXPECT_TRUE(SawPlain) << "delay reset edge is plain";
}

TEST(UsageGraphTest, ParallelIdenticalEdgesDeduplicated) {
  Spec S = parseOrDie(R"(
    in a: Int
    def b := a
    out b
  )");
  // Alias lowering produces merge(a, a); identical pass edges collapse.
  UsageGraph G(S);
  StreamId A = *S.lookup("a"), B = *S.lookup("b");
  unsigned Count = 0;
  for (uint32_t EI : G.outEdges(A))
    if (G.edge(EI).To == B)
      ++Count;
  EXPECT_EQ(Count, 1u);
}

TEST(UsageGraphTest, RendersClassifiedEdges) {
  Spec S = figure1();
  UsageGraph G(S);
  std::string Text = G.str();
  EXPECT_NE(Text.find("yl -W-> y"), std::string::npos) << Text;
  EXPECT_NE(Text.find("m -L*-> yl"), std::string::npos) << Text;
  EXPECT_NE(Text.find("yl -R-> s"), std::string::npos) << Text;
}
