//===- tests/Analysis/MutabilityTest.cpp ------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

bool isMutable(const AnalysisResult &A, const char *Name) {
  return A.isMutable(*A.spec().lookup(Name));
}

size_t orderPos(const AnalysisResult &A, const char *Name) {
  StreamId Id = *A.spec().lookup(Name);
  const auto &Order = A.order();
  return std::find(Order.begin(), Order.end(), Id) - Order.begin();
}

} // namespace

TEST(MutabilityTest, Figure1AllAggregatesMutable) {
  // Fig. 7 (right): the optimal order reads s before writing y, making
  // the whole family {empty, m, y, yl} mutable.
  Spec S = figure1();
  AnalysisResult A = analyzeSpec(S);
  EXPECT_TRUE(isMutable(A, "y"));
  EXPECT_TRUE(isMutable(A, "yl"));
  EXPECT_TRUE(isMutable(A, "m"));
  // Scalars are never "mutable".
  EXPECT_FALSE(isMutable(A, "i"));
  EXPECT_FALSE(isMutable(A, "s"));
  // The read-before-write constraint orders s before y (Fig. 7's dotted
  // edge).
  EXPECT_LT(orderPos(A, "s"), orderPos(A, "y"));
  auto &RBW = A.mutability().ReadBeforeWrite;
  EXPECT_EQ(RBW.size(), 1u);
  EXPECT_EQ(A.spec().stream(RBW[0].first).Name, "s");
  EXPECT_EQ(A.spec().stream(RBW[0].second).Name, "y");
}

TEST(MutabilityTest, Figure1FamilyIsOneUnion) {
  Spec S = figure1();
  AnalysisResult A = analyzeSpec(S);
  const auto &Rep = A.mutability().FamilyRep;
  StreamId Y = *S.lookup("y"), M = *S.lookup("m"), YL = *S.lookup("yl");
  EXPECT_EQ(Rep[Y], Rep[M]);
  EXPECT_EQ(Rep[M], Rep[YL]);
  EXPECT_NE(Rep[Y], Rep[*S.lookup("i")]);
}

TEST(MutabilityTest, BaselineModeMakesEverythingPersistent) {
  Spec S = figure1();
  MutabilityOptions Opts;
  Opts.Optimize = false;
  AnalysisResult A = analyzeSpec(S, Opts);
  EXPECT_FALSE(isMutable(A, "y"));
  EXPECT_FALSE(isMutable(A, "yl"));
  // The baseline still has a valid translation order.
  EXPECT_EQ(A.order().size(), S.numStreams());
}

TEST(MutabilityTest, Figure4UpperMutable) {
  Spec S = figure4Upper();
  AnalysisResult A = analyzeSpec(S);
  EXPECT_TRUE(isMutable(A, "y"));
  EXPECT_TRUE(isMutable(A, "yl"));
  EXPECT_TRUE(isMutable(A, "yr"));
}

TEST(MutabilityTest, Figure4LowerPersistentByDoubleWrite) {
  // The reproduced set is modified twice (y and s): rule 1 of Def. 7.
  Spec S = figure4Lower();
  AnalysisResult A = analyzeSpec(S);
  EXPECT_FALSE(isMutable(A, "y"));
  EXPECT_FALSE(isMutable(A, "yl"));
  EXPECT_FALSE(isMutable(A, "yr"));
  bool SawDoubleWrite = false;
  for (auto [Rep, Reason] : A.mutability().PersistentFamilies)
    SawDoubleWrite |= Reason == PersistentReason::DoubleWrite;
  EXPECT_TRUE(SawDoubleWrite);
}

TEST(MutabilityTest, UnsatisfiableReadBeforeWriteForcesPersistent) {
  // s reads yl but also *depends on* the written stream y: the constraint
  // "s before y" cycles with the data dependency "y before s"; step 4
  // must drop the family to persistent.
  Spec S = parseOrDie(R"(
    in i: Int
    def m := merge(y, setEmpty())
    def yl := last(m, i)
    def y := setAdd(yl, i)
    def s := setContains(yl, setSize(y))
    out s
  )");
  AnalysisResult A = analyzeSpec(S);
  EXPECT_FALSE(isMutable(A, "y"));
  bool SawOrderConflict = false;
  for (auto [Rep, Reason] : A.mutability().PersistentFamilies)
    SawOrderConflict |= Reason == PersistentReason::OrderConflict;
  EXPECT_TRUE(SawOrderConflict);
  // A valid order still exists (with the constraint dropped).
  EXPECT_EQ(A.order().size(), S.numStreams());
}

TEST(MutabilityTest, Step4PrefersDroppingTheLighterFamily) {
  // Two independent families with conflicting read-before-write
  // constraints; the optimal solution keeps the bigger family mutable.
  //
  // Family A (3 aggregate streams: ma, ya, yla) and family B (2 streams:
  // yb, ylb, via a direct input-trigger accumulator without merge-init
  // would be awkward; build B small). Cross constraints:
  //   - sa reads yla and feeds yb's write value -> (sa, ya) and base
  //     path ya ... -> none. We build the conflict inside each family
  //     against the other's reader.
  Spec S = parseOrDie(R"(
    in i: Int
    def ma := merge(ya, setEmpty())
    def yla := last(ma, i)
    def mb := merge(yb, setEmpty())
    def ylb := last(mb, i)
    def ra := setSize(yla)
    def rb := setSize(ylb)
    def ya := setAdd(yla, rb)
    def yb := setAdd(ylb, setSize(ya))
    out ra
  )");
  // Constraints: (ra, ya), (rb, yb). Base: rb -> ya (arg), ya -> t ->
  // yb. Cycle: yb's constraint (rb... actually: reader rb must precede
  // writer yb, but yb's value depends on ya which depends on rb; and
  // ya's reader ra is independent. Family A stays mutable; whether B
  // survives depends on the cycle structure.
  AnalysisResult A = analyzeSpec(S);
  uint32_t MutableAgg = A.mutability().mutableCount();
  // At least one of the two families must stay mutable; the optimum
  // keeps the heavier one.
  EXPECT_GE(MutableAgg, 3u);
  EXPECT_TRUE(A.mutability().UsedExactRemoval);
}

TEST(MutabilityTest, WorkloadSpecsAreMutable) {
  // The paper's speedups require the evaluation workloads' aggregates to
  // be in the mutability set.
  {
    AnalysisResult A = analyzeSpec(seenSet());
    EXPECT_TRUE(isMutable(A, "y")) << A.report();
    EXPECT_TRUE(isMutable(A, "prev")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(mapWindow(10));
    EXPECT_TRUE(isMutable(A, "m")) << A.report();
    EXPECT_TRUE(isMutable(A, "prev")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(queueWindow(10));
    EXPECT_TRUE(isMutable(A, "q")) << A.report();
    EXPECT_TRUE(isMutable(A, "qenq")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(dbAccessConstraint());
    EXPECT_TRUE(isMutable(A, "live")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(dbTimeConstraint());
    EXPECT_TRUE(isMutable(A, "times")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(peakDetection(30));
    EXPECT_TRUE(isMutable(A, "q")) << A.report();
  }
  {
    AnalysisResult A = analyzeSpec(spectrumCalculation());
    EXPECT_TRUE(isMutable(A, "hist")) << A.report();
  }
}

TEST(MutabilityTest, SetUnionOfIndependentFamiliesStaysMutable) {
  // setUnion writes its first argument and reads its second; with two
  // independent accumulators the destructive union is safe.
  Spec S = parseOrDie(R"(
    in i: Int
    in j: Int
    def aprev := last(merge(a, setEmpty()), i)
    def a := setAdd(aprev, i)
    def bprev := last(merge(b, setEmpty()), j)
    def b := setAdd(bprev, j)
    def u := setUnion(setAdd(setEmpty(), i), bprev)
    out u
  )");
  AnalysisResult A = analyzeSpec(S);
  EXPECT_TRUE(isMutable(A, "a")) << A.report();
  EXPECT_TRUE(isMutable(A, "u")) << A.report();
}

TEST(MutabilityTest, SetUnionOnAliasedArgumentsForcesPersistent) {
  // Both arguments of the union are the same structure: the read and the
  // write happen in one expression, so no order can separate them (the
  // rule-2 constraint degenerates to a self-loop).
  Spec S = parseOrDie(R"(
    in i: Int
    def prev := last(merge(y, setAdd(setEmpty(), i)), i)
    def y := setUnion(prev, prev)
    out i
  )");
  AnalysisResult A = analyzeSpec(S);
  EXPECT_FALSE(isMutable(A, "y")) << A.report();
}

TEST(MutabilityTest, GreedyFallbackStillSound) {
  Spec S = figure1();
  MutabilityOptions Opts;
  Opts.ExactEdgeRemoval = false;
  AnalysisResult A = analyzeSpec(S, Opts);
  EXPECT_FALSE(A.mutability().UsedExactRemoval);
  // On Fig. 1 greedy and exact agree (no conflict to resolve).
  EXPECT_TRUE(isMutable(A, "y"));
  EXPECT_EQ(A.order().size(), S.numStreams());
}

TEST(MutabilityTest, OrderRespectsNonSpecialEdges) {
  Spec S = figure1();
  AnalysisResult A = analyzeSpec(S);
  const auto &Order = A.order();
  std::vector<size_t> Pos(S.numStreams());
  for (size_t I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;
  for (const UsageEdge &E : A.graph().edges()) {
    if (!E.Special) {
      EXPECT_LT(Pos[E.From], Pos[E.To])
          << S.stream(E.From).Name << " -> " << S.stream(E.To).Name;
    }
  }
}

TEST(MutabilityTest, ReportMentionsFamiliesAndOrder) {
  Spec S = figure1();
  AnalysisResult A = analyzeSpec(S);
  std::string Report = A.report();
  EXPECT_NE(Report.find("mutable"), std::string::npos) << Report;
  EXPECT_NE(Report.find("translation order"), std::string::npos);
  EXPECT_NE(Report.find("read-before-write"), std::string::npos);
}

TEST(MutabilityTest, HoldWithOneShotWriteStaysMutable) {
  // A recursive hold of a structure that is written only once (at
  // timestamp 0, before the hold starts replicating it): the write
  // source is not Pass/Last-connected to the hold cycle, so the analysis
  // correctly keeps the family mutable.
  Spec S = parseOrDie(R"(
    in i: Int
    def x := setAdd(setEmpty(), i)
    def h := merge(x, last(h, i))
    def r := setContains(h, i)
    out r
  )");
  AnalysisResult A = analyzeSpec(S);
  EXPECT_TRUE(isMutable(A, "h")) << A.report();
}

TEST(MutabilityTest, WrittenHoldPatternConservativelyPersistent) {
  // The held value itself is written every round: the Pass/Last cycle
  // triggers the conservative all-alias fallback, and the hold's Last
  // edge then violates rule 1 -> persistent (sound, possibly
  // over-conservative).
  Spec S = parseOrDie(R"(
    in i: Int
    def hl := last(h, i)
    def h := merge(y, hl)
    def y := setAdd(merge(hl, setEmpty()), i)
    def r := setContains(hl, i)
    out r
  )");
  AnalysisResult A = analyzeSpec(S);
  EXPECT_FALSE(isMutable(A, "h")) << A.report();
  EXPECT_FALSE(isMutable(A, "y")) << A.report();
}
