//===- tests/Analysis/AliasingTest.cpp --------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Aliasing.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

struct Fixture {
  Spec S;
  UsageGraph G;
  TriggerAnalysis TA;
  AliasAnalysis AA;

  explicit Fixture(Spec Spec_)
      : S(std::move(Spec_)), G(S), TA(S), AA(G, TA) {}

  bool aliases(const char *A, const char *B) {
    return AA.mayAlias(*S.lookup(A), *S.lookup(B));
  }
};

} // namespace

TEST(AliasingTest, SelfAliasAlways) {
  Fixture F(figure1());
  EXPECT_TRUE(F.aliases("yl", "yl"));
  EXPECT_TRUE(F.aliases("m", "m"));
}

TEST(AliasingTest, Figure1LastSeparatesTimestamps) {
  // yl runs one last behind m/y/empty: never the same event at the same
  // timestamp (the structure behind Fig. 7's optimal order).
  Fixture F(figure1());
  EXPECT_FALSE(F.aliases("yl", "m"));
  EXPECT_FALSE(F.aliases("yl", "y"));
  StreamId YL = *F.S.lookup("yl");
  EXPECT_EQ(F.AA.potentialAliases(YL).size(), 1u)
      << "yl only aliases itself";
  EXPECT_FALSE(F.AA.usedFallback(YL));
}

TEST(AliasingTest, PassEdgesAliasAtSameTimestamp) {
  // m = merge(y, empty) passes y's event through unchanged: same value,
  // same timestamp.
  Fixture F(figure1());
  EXPECT_TRUE(F.aliases("y", "m"));
}

TEST(AliasingTest, ParallelLastsWithIndependentTriggersAlias) {
  // Two lasts reproduce the same source; with independent triggers they
  // can fire at the same timestamp carrying the same structure.
  Fixture F(parseOrDie(R"(
    in i: Int
    in j: Int
    def e := setAdd(setEmpty(), 0)
    def a := last(e, i)
    def b := last(e, j)
    def ra := setContains(a, i)
    def rb := setContains(b, j)
    out ra
    out rb
  )"));
  EXPECT_TRUE(F.aliases("a", "b"));
}

TEST(AliasingTest, ChainOneLastLongerWithImplicationIsSafe) {
  // Figure 5's pattern: the longer chain runs one last further and every
  // cut point's trigger implies the shorter chain's corresponding last
  // trigger, so the longer chain is always strictly behind.
  //
  // A fresh (empty) set is minted at every i|j event (uk is a unit-typed
  // repeater; scalar lasts are not Last edges and don't disturb the
  // aggregate value flow).
  Fixture F(parseOrDie(R"(
    in i: Int
    in j: Int
    def both := merge(i, j)
    def uk := last(unit, both)
    def c := setEmpty(uk)
    def m := merge(c, setEmpty())
    def b := last(m, both)
    def a := last(m, i)
    def c2 := last(a, j)
    def ra := setContains(c2, i)
    def rb := setContains(b, j)
    out ra
    out rb
  )"));
  // ev'(a) = i implies ev'(b) = i|j, and c2 adds the extra last: safe.
  EXPECT_FALSE(F.aliases("c2", "b"));
  // a and b both run one last behind m: they can coincide.
  EXPECT_TRUE(F.aliases("a", "b"));

  // Without the implication (b triggered by j only) the pairing fails.
  Fixture F2(parseOrDie(R"(
    in i: Int
    in j: Int
    def both := merge(i, j)
    def uk := last(unit, both)
    def c := setEmpty(uk)
    def m := merge(c, setEmpty())
    def b := last(m, j)
    def a := last(m, i)
    def c2 := last(a, j)
    def ra := setContains(c2, i)
    def rb := setContains(b, j)
    out ra
    out rb
  )"));
  EXPECT_TRUE(F2.aliases("c2", "b"));
}

TEST(AliasingTest, ReplicatingLastOnShorterPathBreaksSafety) {
  // Same shape as the safe chain, but the shorter path's last b is
  // replicating (fresh sets only appear on i, yet b also ticks on j):
  // Def. 6's second condition rejects the safety proof even though the
  // trigger implication would hold.
  Fixture F(parseOrDie(R"(
    in i: Int
    in j: Int
    def both := merge(i, j)
    def uk := last(unit, i)
    def c := setEmpty(uk)
    def m := merge(c, setEmpty())
    def b := last(m, both)
    def a := last(m, i)
    def c2 := last(a, j)
    def ra := setContains(c2, i)
    def rb := setContains(b, j)
    out ra
    out rb
  )"));
  TriggerAnalysis &TA = F.TA;
  ASSERT_TRUE(TA.isReplicatingLast(*F.S.lookup("b")));
  ASSERT_FALSE(TA.isReplicatingLast(*F.S.lookup("a")));
  EXPECT_TRUE(F.aliases("c2", "b"));
}

TEST(AliasingTest, RecursiveHoldPatternFallsBackConservatively) {
  // h = merge(x, last(h, t)) forms a Pass/Last cycle; the analysis
  // conservatively treats the whole region as aliasing.
  Fixture F(parseOrDie(R"(
    in i: Int
    def x := setAdd(setEmpty(), i)
    def h := merge(x, last(h, i))
    def r := setContains(h, i)
    out r
  )"));
  StreamId X = *F.S.lookup("x");
  EXPECT_TRUE(F.AA.usedFallback(X));
  EXPECT_TRUE(F.aliases("x", "h"));
}

TEST(AliasingTest, DisconnectedStructuresNeverAlias) {
  Fixture F(parseOrDie(R"(
    in i: Int
    def s1 := setAdd(setEmpty(), i)
    def s2 := setAdd(setEmpty(), i)
    out i
  )"));
  // Distinct empty-constructors mint distinct structures... but both
  // lifts read the *same* empty-set temp stream? No: each setEmpty()
  // call lowers to its own temp, and setAdd copies. The write sources
  // are the two distinct temps.
  const StreamDef &S1 = F.S.stream(*F.S.lookup("s1"));
  const StreamDef &S2 = F.S.stream(*F.S.lookup("s2"));
  EXPECT_NE(S1.Args[0], S2.Args[0]);
  EXPECT_FALSE(F.AA.mayAlias(S1.Args[0], S2.Args[0]));
}

TEST(AliasingTest, SeenSetPrevOnlyAliasesItself) {
  Fixture F(seenSet());
  StreamId Prev = *F.S.lookup("prev");
  EXPECT_EQ(F.AA.potentialAliases(Prev),
            (std::vector<StreamId>{Prev}));
}

TEST(AliasingTest, QueueWindowEnqAliasesFilteredView) {
  Fixture F(queueWindow(10));
  // filter(qenq, ...) passes qenq's value at the same timestamp.
  StreamId QEnq = *F.S.lookup("qenq");
  const std::vector<StreamId> &Aliases = F.AA.potentialAliases(QEnq);
  // qenq aliases itself and the filter temp; q (post-trim, behind a last
  // next round) is reached only through the write edge, not Pass/Last.
  EXPECT_TRUE(std::binary_search(Aliases.begin(), Aliases.end(), QEnq));
  EXPECT_FALSE(F.aliases("qenq", "qpre"));
}
