//===- tests/SAT/SolverTest.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/SAT/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace tessla;

TEST(SatSolverTest, EmptyFormulaIsSat) {
  CNF F;
  SatSolver S;
  EXPECT_EQ(S.solve(F), SatResult::Sat);
}

TEST(SatSolverTest, UnitClauses) {
  CNF F;
  uint32_t A = F.newVar(), B = F.newVar();
  F.addUnit(static_cast<Lit>(A));
  F.addUnit(-static_cast<Lit>(B));
  SatSolver S;
  ASSERT_EQ(S.solve(F), SatResult::Sat);
  EXPECT_TRUE(S.model()[A]);
  EXPECT_FALSE(S.model()[B]);
}

TEST(SatSolverTest, ContradictoryUnitsAreUnsat) {
  CNF F;
  uint32_t A = F.newVar();
  F.addUnit(static_cast<Lit>(A));
  F.addUnit(-static_cast<Lit>(A));
  SatSolver S;
  EXPECT_EQ(S.solve(F), SatResult::Unsat);
}

TEST(SatSolverTest, PropagationChain) {
  // (a) & (!a | b) & (!b | c) & (!c | !a) -> UNSAT
  CNF F;
  Lit A = static_cast<Lit>(F.newVar());
  Lit B = static_cast<Lit>(F.newVar());
  Lit C = static_cast<Lit>(F.newVar());
  F.addUnit(A);
  F.addBinary(-A, B);
  F.addBinary(-B, C);
  F.addBinary(-C, -A);
  SatSolver S;
  EXPECT_EQ(S.solve(F), SatResult::Unsat);
}

TEST(SatSolverTest, TautologicalClauseIgnored) {
  CNF F;
  Lit A = static_cast<Lit>(F.newVar());
  F.addClause({A, -A});
  SatSolver S;
  EXPECT_EQ(S.solve(F), SatResult::Sat);
}

TEST(SatSolverTest, ModelSatisfiesAllClauses) {
  std::mt19937 Rng(11);
  for (int Round = 0; Round != 50; ++Round) {
    CNF F;
    uint32_t N = 3 + Rng() % 10;
    for (uint32_t I = 0; I != N; ++I)
      F.newVar();
    uint32_t NumClauses = 1 + Rng() % 30;
    for (uint32_t C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      uint32_t Len = 1 + Rng() % 3;
      for (uint32_t L = 0; L != Len; ++L) {
        Lit V = static_cast<Lit>(1 + Rng() % N);
        Clause.push_back(Rng() % 2 ? V : -V);
      }
      F.addClause(Clause);
    }
    SatSolver S;
    if (S.solve(F) != SatResult::Sat)
      continue; // UNSAT verified indirectly by the brute-force test below
    for (const auto &Clause : F.Clauses) {
      bool Satisfied = false;
      for (Lit L : Clause) {
        bool Val = S.model()[std::abs(L)];
        if ((L > 0) == Val)
          Satisfied = true;
      }
      EXPECT_TRUE(Satisfied);
    }
  }
}

/// Property: solver result agrees with brute-force enumeration.
TEST(SatSolverTest, AgreesWithBruteForce) {
  std::mt19937 Rng(23);
  for (int Round = 0; Round != 200; ++Round) {
    CNF F;
    uint32_t N = 1 + Rng() % 8;
    for (uint32_t I = 0; I != N; ++I)
      F.newVar();
    uint32_t NumClauses = 1 + Rng() % 16;
    for (uint32_t C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      uint32_t Len = 1 + Rng() % 4;
      for (uint32_t L = 0; L != Len; ++L) {
        Lit V = static_cast<Lit>(1 + Rng() % N);
        Clause.push_back(Rng() % 2 ? V : -V);
      }
      F.addClause(Clause);
    }
    bool BruteSat = false;
    for (uint32_t Mask = 0; Mask != (1u << N) && !BruteSat; ++Mask) {
      bool AllClauses = true;
      for (const auto &Clause : F.Clauses) {
        bool Satisfied = false;
        for (Lit L : Clause) {
          bool Val = (Mask >> (std::abs(L) - 1)) & 1;
          if ((L > 0) == Val)
            Satisfied = true;
        }
        if (!Satisfied) {
          AllClauses = false;
          break;
        }
      }
      BruteSat = AllClauses;
    }
    SatSolver S;
    EXPECT_EQ(S.solve(F) == SatResult::Sat, BruteSat) << "round " << Round;
  }
}

// --- Tseitin + implication checking --------------------------------------

namespace {

/// Builds a random positive formula over atoms [0, NumAtoms).
BoolExprRef randomPositive(BoolExprContext &Ctx, std::mt19937 &Rng,
                           uint32_t NumAtoms, int Depth) {
  if (Depth == 0 || Rng() % 3 == 0)
    return Ctx.atom(Rng() % NumAtoms);
  std::vector<BoolExprRef> Kids;
  uint32_t Num = 2 + Rng() % 2;
  for (uint32_t I = 0; I != Num; ++I)
    Kids.push_back(randomPositive(Ctx, Rng, NumAtoms, Depth - 1));
  return Rng() % 2 ? Ctx.conj(std::move(Kids)) : Ctx.disj(std::move(Kids));
}

bool bruteImplies(const BoolExprContext &Ctx, BoolExprRef F, BoolExprRef G,
                  uint32_t NumAtoms) {
  for (uint32_t Mask = 0; Mask != (1u << NumAtoms); ++Mask) {
    std::vector<bool> Assign(NumAtoms);
    for (uint32_t I = 0; I != NumAtoms; ++I)
      Assign[I] = (Mask >> I) & 1;
    if (Ctx.evaluate(F, Assign) && !Ctx.evaluate(G, Assign))
      return false;
  }
  return true;
}

} // namespace

TEST(ImplicationTest, PaperWorkedExample) {
  // ev'(yl) = i, ev'(m) = (i & i) | u; i -> (i & i) | u is a tautology
  // (§IV-C example).
  BoolExprContext Ctx;
  BoolExprRef I = Ctx.atom(0), U = Ctx.atom(1);
  BoolExprRef M = Ctx.disj(Ctx.conj(I, I), U);
  ImplicationChecker Check(Ctx);
  EXPECT_TRUE(Check.implies(I, M));
  // The converse is not valid: u alone triggers m but not yl.
  EXPECT_FALSE(Check.implies(M, I));
}

TEST(ImplicationTest, BasicCases) {
  BoolExprContext Ctx;
  BoolExprRef A = Ctx.atom(0), B = Ctx.atom(1);
  ImplicationChecker Check(Ctx);
  EXPECT_TRUE(Check.implies(A, A));
  EXPECT_TRUE(Check.implies(Ctx.falseExpr(), A));
  EXPECT_TRUE(Check.implies(A, Ctx.trueExpr()));
  EXPECT_FALSE(Check.implies(Ctx.trueExpr(), A));
  EXPECT_FALSE(Check.implies(A, Ctx.falseExpr()));
  EXPECT_TRUE(Check.implies(Ctx.conj(A, B), A));
  EXPECT_TRUE(Check.implies(A, Ctx.disj(A, B)));
  EXPECT_FALSE(Check.implies(Ctx.disj(A, B), A));
  EXPECT_FALSE(Check.implies(A, Ctx.conj(A, B)));
}

TEST(ImplicationTest, AgreesWithBruteForceOnRandomFormulas) {
  std::mt19937 Rng(31);
  BoolExprContext Ctx;
  ImplicationChecker Check(Ctx);
  constexpr uint32_t NumAtoms = 6;
  for (int Round = 0; Round != 300; ++Round) {
    BoolExprRef F = randomPositive(Ctx, Rng, NumAtoms, 3);
    BoolExprRef G = randomPositive(Ctx, Rng, NumAtoms, 3);
    EXPECT_EQ(Check.implies(F, G), bruteImplies(Ctx, F, G, NumAtoms))
        << "round " << Round << ": " << Ctx.str(F) << " -> " << Ctx.str(G);
  }
}

TEST(ImplicationTest, CacheAndFastPathCounters) {
  BoolExprContext Ctx;
  ImplicationChecker Check(Ctx);
  BoolExprRef A = Ctx.atom(0), B = Ctx.atom(1);
  BoolExprRef F = Ctx.disj(Ctx.conj(A, B), B);
  EXPECT_TRUE(Check.implies(F, Ctx.disj(A, B)));
  uint64_t Queries = Check.satQueries() + Check.fastPathHits();
  // Same query again: served from cache, no new counters.
  EXPECT_TRUE(Check.implies(F, Ctx.disj(A, B)));
  EXPECT_EQ(Check.satQueries() + Check.fastPathHits(), Queries);
}
