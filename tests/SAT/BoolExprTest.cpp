//===- tests/SAT/BoolExprTest.cpp -------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/SAT/BoolExpr.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(BoolExprTest, ConstantsAndAtoms) {
  BoolExprContext Ctx;
  EXPECT_EQ(Ctx.kind(Ctx.trueExpr()), BoolExprKind::True);
  EXPECT_EQ(Ctx.kind(Ctx.falseExpr()), BoolExprKind::False);
  BoolExprRef A = Ctx.atom(3);
  EXPECT_EQ(Ctx.kind(A), BoolExprKind::Atom);
  EXPECT_EQ(Ctx.atomId(A), 3u);
  // Atoms are uniqued.
  EXPECT_EQ(Ctx.atom(3), A);
  EXPECT_NE(Ctx.atom(4), A);
}

TEST(BoolExprTest, ConjunctionSimplifications) {
  BoolExprContext Ctx;
  BoolExprRef A = Ctx.atom(0), B = Ctx.atom(1);
  EXPECT_EQ(Ctx.conj({}), Ctx.trueExpr());
  EXPECT_EQ(Ctx.conj(A, Ctx.trueExpr()), A);
  EXPECT_EQ(Ctx.conj(A, Ctx.falseExpr()), Ctx.falseExpr());
  // Idempotence: a & a == a (the i & i of the paper's worked example).
  EXPECT_EQ(Ctx.conj(A, A), A);
  // Commutativity through canonical child order.
  EXPECT_EQ(Ctx.conj(A, B), Ctx.conj(B, A));
  // Flattening: (a & b) & a == a & b.
  EXPECT_EQ(Ctx.conj(Ctx.conj(A, B), A), Ctx.conj(A, B));
}

TEST(BoolExprTest, DisjunctionSimplifications) {
  BoolExprContext Ctx;
  BoolExprRef A = Ctx.atom(0), B = Ctx.atom(1);
  EXPECT_EQ(Ctx.disj({}), Ctx.falseExpr());
  EXPECT_EQ(Ctx.disj(A, Ctx.falseExpr()), A);
  EXPECT_EQ(Ctx.disj(A, Ctx.trueExpr()), Ctx.trueExpr());
  EXPECT_EQ(Ctx.disj(A, A), A);
  EXPECT_EQ(Ctx.disj(A, B), Ctx.disj(B, A));
  EXPECT_EQ(Ctx.disj(Ctx.disj(A, B), B), Ctx.disj(A, B));
}

TEST(BoolExprTest, HashConsingSharesStructure) {
  BoolExprContext Ctx;
  BoolExprRef A = Ctx.atom(0), B = Ctx.atom(1), C = Ctx.atom(2);
  BoolExprRef X = Ctx.conj(Ctx.disj(A, B), C);
  BoolExprRef Y = Ctx.conj(C, Ctx.disj(B, A));
  EXPECT_EQ(X, Y);
  size_t Before = Ctx.numNodes();
  (void)Ctx.conj(Ctx.disj(A, B), C); // identical term: no new nodes
  EXPECT_EQ(Ctx.numNodes(), Before);
}

TEST(BoolExprTest, Evaluate) {
  BoolExprContext Ctx;
  BoolExprRef F =
      Ctx.disj(Ctx.conj(Ctx.atom(0), Ctx.atom(1)), Ctx.atom(2));
  EXPECT_FALSE(Ctx.evaluate(F, {false, false, false}));
  EXPECT_TRUE(Ctx.evaluate(F, {true, true, false}));
  EXPECT_TRUE(Ctx.evaluate(F, {false, false, true}));
  EXPECT_FALSE(Ctx.evaluate(F, {true, false, false}));
  // Missing atoms read as false.
  EXPECT_FALSE(Ctx.evaluate(F, {}));
}

TEST(BoolExprTest, AtomsCollection) {
  BoolExprContext Ctx;
  BoolExprRef F =
      Ctx.conj(Ctx.disj(Ctx.atom(5), Ctx.atom(2)), Ctx.atom(5));
  EXPECT_EQ(Ctx.atoms(F), (std::vector<uint32_t>{2, 5}));
  EXPECT_TRUE(Ctx.atoms(Ctx.trueExpr()).empty());
}

TEST(BoolExprTest, Rendering) {
  BoolExprContext Ctx;
  // Intern atoms in a fixed sequence so the canonical (ref-ordered) child
  // order is deterministic for this test.
  BoolExprRef I = Ctx.atom(0);
  BoolExprRef J = Ctx.atom(1);
  BoolExprRef U = Ctx.atom(2);
  BoolExprRef F = Ctx.disj(Ctx.conj(I, J), U);
  std::vector<std::string> Names = {"i", "j", "u"};
  EXPECT_EQ(Ctx.str(F, &Names), "(u | (i & j))");
  EXPECT_EQ(Ctx.str(Ctx.falseExpr(), &Names), "false");
  EXPECT_EQ(Ctx.str(Ctx.trueExpr(), &Names), "true");
  // Without names, atoms render by id.
  EXPECT_EQ(Ctx.str(I), "a0");
}

TEST(BoolExprTest, DagSizeCountsSharedNodesOnce) {
  BoolExprContext Ctx;
  BoolExprRef AB = Ctx.conj(Ctx.atom(0), Ctx.atom(1));
  BoolExprRef F = Ctx.disj(AB, Ctx.conj(AB, Ctx.atom(2)));
  // Nodes: a0, a1, a2, AB, (AB & a2), top. AB counted once.
  EXPECT_EQ(Ctx.dagSize(F), 6u);
}
