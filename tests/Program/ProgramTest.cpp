//===- tests/Program/ProgramTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Golden tests pinning the lowered Program IR: str() is the single
// human-readable rendering of what both backends execute, so its exact
// shape — step lines with slot assignments and in-place markers, the
// last/delay slot tables, the output table — is locked here.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/Program.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

Program compile(const Spec &S, bool Optimize) {
  return compileOrDie(S, Optimize);
}

// One spec exercising every slot table: an in-place aggregate family
// (last + setAdd), a scalar projection, and a delay.
const char *GoldenSource = R"(
in i: Int
in d: Int
def s := setAdd(last(s, i), i)
def sz := setSize(s)
def t := delay(d, i)
out sz
out t
)";

} // namespace

TEST(ProgramTest, GoldenOptimized) {
  Program P = compile(parseOrDie(GoldenSource), /*Optimize=*/true);
  EXPECT_EQ(P.str(),
            "0: i = input   @0\n"
            "1: d = input   @1\n"
            "2: t = delay(d, i)   @4 delay[0]\n"
            "3: _t0 = last(s, i)   @5 last[0]\n"
            "4: s = setAdd(_t0, i)   [in-place]   @2\n"
            "5: sz = setSize(s)   @3\n"
            "slots: value=6 last=1 delay=1\n"
            "last[0]: s @2\n"
            "delay[0]: t @4 delays=d@1 reset=i@0\n"
            "outputs: sz@3 t@4\n");
  EXPECT_EQ(P.inPlaceStepCount(), 1u);
}

TEST(ProgramTest, GoldenBaselineHasNoInPlaceMarkers) {
  Program P = compile(parseOrDie(GoldenSource), /*Optimize=*/false);
  EXPECT_EQ(P.str().find("[in-place]"), std::string::npos);
  EXPECT_EQ(P.inPlaceStepCount(), 0u);
}

TEST(ProgramTest, NilStreamsShareTheDeadSlot) {
  Program P = compile(parseOrDie(R"(
in i: Int
def n := nil
def m := merge(i, n)
out m
)"),
                      /*Optimize=*/true);
  EXPECT_EQ(P.str(),
            "0: i = input   @0\n"
            "1: n = nil\n"
            "2: m = merge(i, n)   @1\n"
            "slots: value=2 last=0 delay=0\n"
            "outputs: m@1\n");
  // The nil stream maps to the dead slot past the live range; engines
  // size their state numValueSlots() + 1 and the slot is never written.
  StreamId Nil = 0;
  for (StreamId Id = 0; Id != P.numStreams(); ++Id)
    if (P.spec().stream(Id).Kind == StreamKind::Nil)
      Nil = Id;
  EXPECT_EQ(P.valueSlot(Nil), P.numValueSlots());
  for (const ProgramStep &Step : P.steps())
    if (Step.Op != Opcode::Skip)
      EXPECT_NE(Step.Dst, P.numValueSlots());
}

TEST(ProgramTest, DispatchIsPreResolved) {
  Program P = compile(parseOrDie(GoldenSource), /*Optimize=*/true);
  for (const ProgramStep &Step : P.steps()) {
    switch (Step.Op) {
    case Opcode::LiftAll:
    case Opcode::LiftFirstRest:
      // The hot path calls through this pointer; it must match the
      // registry's resolution for the builtin.
      EXPECT_EQ(Step.Impl, builtinImpl(Step.Fn));
      break;
    default:
      EXPECT_EQ(Step.Impl, nullptr);
      break;
    }
  }
}
