//===- tests/Program/SerializeTest.cpp --------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The .tpb bundle format (Program/Serialize.h): round-trip fidelity
/// over a random-spec corpus in every compile configuration, robustness
/// against truncated and bit-flipped input, builtin re-resolution by
/// name, and the golden-bytes guard that forces a TPBFormatVersion bump
/// on any layout change.
///
//===----------------------------------------------------------------------===//

#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/Monitor.h"
#include "tessla/Runtime/TraceGen.h"
#include "tessla/Runtime/TraceIO.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

using namespace tessla;
using namespace tessla::testrandom;
using namespace tessla::testspecs;

namespace {

/// Writes \p V little-endian into Bytes[Off..Off+8).
void patchU64(std::vector<uint8_t> &Bytes, size_t Off, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Bytes[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

void patchU32(std::vector<uint8_t> &Bytes, size_t Off, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Bytes[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Re-stamps the content checksum after a deliberate payload patch, so
/// tests reach the validation layer *behind* the checksum.
void restamp(std::vector<uint8_t> &Bytes) {
  patchU64(Bytes, 8,
           tpbChecksum(Bytes.data() + TPBChecksumStart,
                       Bytes.size() - TPBChecksumStart));
}

/// Loads and expects failure; returns the collected diagnostics.
std::string expectLoadFails(const std::vector<uint8_t> &Bytes) {
  DiagnosticEngine Diags;
  auto P = loadProgram(Bytes, Diags);
  EXPECT_FALSE(P);
  EXPECT_FALSE(Diags.str().empty());
  return Diags.str();
}

/// The heart of the suite: compile \p S under the given configuration,
/// serialize, load, and require (a) the loaded program's interpreter
/// output to be byte-identical to the original's on \p Events, and
/// (b) re-serialization of the loaded program to reproduce the exact
/// bundle bytes (the encoding is canonical).
void expectRoundTrip(uint64_t Seed, const Spec &S, bool Optimize,
                     unsigned OptLevel,
                     const std::vector<TraceEvent> &Events) {
  Program P = compileOrDie(S, Optimize, OptLevel);
  std::vector<uint8_t> Bytes = serializeProgram(P);

  DiagnosticEngine Diags;
  auto Loaded = loadProgram(Bytes, Diags);
  ASSERT_TRUE(Loaded) << "seed " << Seed << "\n" << Diags.str();
  EXPECT_EQ(serializeProgram(*Loaded), Bytes)
      << "re-serialization diverged at seed " << Seed;

  std::string Error;
  auto Ref = runMonitor(P, Events, std::nullopt, &Error);
  ASSERT_EQ(Error, "") << "seed " << Seed;
  auto Out = runMonitor(*Loaded, Events, std::nullopt, &Error);
  ASSERT_EQ(Error, "") << "seed " << Seed;
  EXPECT_EQ(formatOutputs(S, Out), formatOutputs(S, Ref))
      << "loaded program diverged at seed " << Seed << "\n" << S.str();
}

void roundTripCorpus(uint64_t FirstSeed, uint64_t LastSeed,
                     const RandomSpecOptions &Opts) {
  for (uint64_t Seed = FirstSeed; Seed <= LastSeed; ++Seed) {
    Spec S = randomSpec(Seed, Opts);
    auto Events = randomSpecTrace(S, 150, Seed * 37 + 5);
    // Sweep the full configuration grid: both mutability modes, both
    // optimization levels. Every cell must survive the round trip.
    for (bool Optimize : {false, true})
      for (unsigned OptLevel : {0u, 1u})
        expectRoundTrip(Seed, S, Optimize, OptLevel, Events);
  }
}

/// A fixed bundle for the corruption suites: the seen-set workload at
/// -O1 exercises fused steps, last slots, aggregates and the pool.
std::vector<uint8_t> workloadBundle() {
  Program P = compileOrDie(seenSet(), /*Optimize=*/true, /*OptLevel=*/1);
  return serializeProgram(P);
}

} // namespace

// --- Round-trip corpus ------------------------------------------------------

TEST(SerializeTest, RoundTripRandomSpecs) {
  // 8 specs x 4 configurations = 32 round trips.
  roundTripCorpus(1, 8, RandomSpecOptions());
}

TEST(SerializeTest, RoundTripRandomDelaySpecs) {
  RandomSpecOptions Opts;
  Opts.WithDelay = true;
  // 5 specs x 4 configurations = 20 round trips; the delay table and
  // queue builtins ride along (WithQueueOps defaults on).
  roundTripCorpus(101, 105, Opts);
}

TEST(SerializeTest, RoundTripWorkloads) {
  uint64_t Seed = 500;
  for (const Spec &S : {seenSet(), mapWindow(4), queueWindow(4)}) {
    auto Events = tracegen::randomInts(*S.lookup("x"), 300, 13, ++Seed);
    for (bool Optimize : {false, true})
      for (unsigned OptLevel : {0u, 1u})
        expectRoundTrip(Seed, S, Optimize, OptLevel, Events);
  }
}

TEST(SerializeTest, FileRoundTrip) {
  Program P = compileOrDie(seenSet(), true, 1);
  std::string Path = ::testing::TempDir() + "serialize_roundtrip.tpb";
  DiagnosticEngine Diags;
  ASSERT_TRUE(writeProgramFile(P, Path, Diags)) << Diags.str();
  auto Loaded = loadProgramFile(Path, Diags);
  ASSERT_TRUE(Loaded) << Diags.str();
  EXPECT_EQ(serializeProgram(*Loaded), serializeProgram(P));
  std::remove(Path.c_str());
}

TEST(SerializeTest, MissingFileReportsDiagnostic) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(loadProgramFile("/definitely/not/here.tpb", Diags));
  EXPECT_FALSE(Diags.str().empty());
}

// --- Aggregate constants in the pool ---------------------------------------

TEST(SerializeTest, AggregateConstantsRoundTrip) {
  // ConstantFold never folds aggregate constants into ConstVal, so reach
  // through OptView and plant them directly: a set, a map and a queue,
  // built through both update tiers (destructive and path-copying — the
  // encoded bytes must not depend on how the structure was built). The
  // canonical re-serialization equality proves the recursive Value codec
  // (sorted aggregate encoding included) is lossless.
  for (bool InPlace : {false, true}) {
    Program P = compileOrDie(seenSet(), /*Optimize=*/InPlace);
    auto View = P.optView();
    ASSERT_GE(View.Steps.size(), 3u);

    SetCow SC = Value::emptySet().setCow(InPlace);
    SC.add(Value::integer(3));
    SC.add(Value::integer(-7));
    MapCow MC = Value::emptyMap().mapCow(InPlace);
    MC.put(Value::integer(1), Value::string("one"));
    QueueCow QC = Value::emptyQueue().queueCow(InPlace);
    QC.enqueue(Value::boolean(true));
    QC.enqueue(Value::floating(2.5));
    View.Steps[0].ConstVal = std::move(SC).finish();
    View.Steps[1].ConstVal = std::move(MC).finish();
    View.Steps[2].ConstVal = std::move(QC).finish();

    std::vector<uint8_t> Bytes = serializeProgram(P);
    DiagnosticEngine Diags;
    auto Loaded = loadProgram(Bytes, Diags);
    ASSERT_TRUE(Loaded) << Diags.str();
    EXPECT_EQ(serializeProgram(*Loaded), Bytes) << "inplace=" << InPlace;

    const auto &Steps = Loaded->steps();
    ASSERT_GE(Steps.size(), 3u);
    EXPECT_EQ(compareValues(Steps[0].ConstVal, View.Steps[0].ConstVal), 0);
    EXPECT_EQ(compareValues(Steps[1].ConstVal, View.Steps[1].ConstVal), 0);
    EXPECT_EQ(compareValues(Steps[2].ConstVal, View.Steps[2].ConstVal), 0);
  }
}

// --- Robust loading: truncation and corruption ------------------------------

TEST(SerializeTest, EveryTruncationFailsCleanly) {
  std::vector<uint8_t> Bytes = workloadBundle();
  ASSERT_GT(Bytes.size(), 64u);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    DiagnosticEngine Diags;
    auto P = loadProgram(Prefix, Diags);
    EXPECT_FALSE(P) << "truncation to " << Len << " bytes loaded";
    EXPECT_FALSE(Diags.str().empty()) << "silent failure at " << Len;
  }
}

TEST(SerializeTest, EveryBitFlipFailsCleanly) {
  // The checksum covers every byte past offset 16 and the header fields
  // are validated individually, so no single-bit corruption anywhere in
  // the bundle may load — and none may crash.
  std::vector<uint8_t> Bytes = workloadBundle();
  for (size_t Off = 0; Off != Bytes.size(); ++Off) {
    for (unsigned Bit = 0; Bit < 8; Bit += 3) { // bits 0, 3, 6
      std::vector<uint8_t> Flipped = Bytes;
      Flipped[Off] ^= static_cast<uint8_t>(1u << Bit);
      DiagnosticEngine Diags;
      auto P = loadProgram(Flipped, Diags);
      EXPECT_FALSE(P) << "bit " << Bit << " at offset " << Off;
      EXPECT_FALSE(Diags.str().empty());
    }
  }
}

TEST(SerializeTest, PostChecksumValidationStillFires) {
  // Corrupt a payload byte *and* re-stamp the checksum: the structural
  // validators behind the checksum must still catch it or the program
  // must still verify — never crash. Sweep every byte with a 0xFF smash.
  std::vector<uint8_t> Bytes = workloadBundle();
  size_t Loaded = 0;
  for (size_t Off = TPBChecksumStart; Off != Bytes.size(); ++Off) {
    std::vector<uint8_t> Patched = Bytes;
    Patched[Off] ^= 0xFF;
    restamp(Patched);
    DiagnosticEngine Diags;
    auto P = loadProgram(Patched, Diags);
    if (P)
      ++Loaded; // benign patch (e.g. a name byte) — fine, it verified
    else
      EXPECT_FALSE(Diags.str().empty()) << "silent failure at " << Off;
  }
  // The vast majority of single-byte smashes must be rejected.
  EXPECT_LT(Loaded, Bytes.size() / 4) << "validators are too permissive";
}

TEST(SerializeTest, EmptyAndGarbageInputs) {
  DiagnosticEngine D1;
  EXPECT_FALSE(loadProgram(std::vector<uint8_t>{}, D1));
  EXPECT_NE(D1.str().find("truncated"), std::string::npos) << D1.str();

  std::vector<uint8_t> Garbage(256, 0xAB);
  DiagnosticEngine D2;
  EXPECT_FALSE(loadProgram(Garbage, D2));
  EXPECT_NE(D2.str().find("magic"), std::string::npos) << D2.str();
}

// --- Version, builtin names, and the format guard ---------------------------

TEST(SerializeTest, VersionMismatchIsRejected) {
  std::vector<uint8_t> Bytes = workloadBundle();
  patchU32(Bytes, 4, TPBFormatVersion + 1);
  std::string Diag = expectLoadFails(Bytes);
  EXPECT_NE(Diag.find("version"), std::string::npos) << Diag;
}

TEST(SerializeTest, UnknownBuiltinNameIsRejectedByName) {
  // Rename a builtin inside the BLTN section to a same-length unknown
  // name and re-stamp the checksum: the loader must reject the bundle
  // with a diagnostic naming the offending builtin — not dereference a
  // null evaluator at run time.
  std::vector<uint8_t> Bytes = workloadBundle();
  const char Needle[] = "setToggle";
  const char Patch[] = "setTogglZ";
  auto It = std::search(Bytes.begin(), Bytes.end(), Needle,
                        Needle + sizeof(Needle) - 1);
  ASSERT_NE(It, Bytes.end()) << "expected builtin name in the bundle";
  std::memcpy(&*It, Patch, sizeof(Patch) - 1);
  restamp(Bytes);
  std::string Diag = expectLoadFails(Bytes);
  EXPECT_NE(Diag.find("setTogglZ"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("unknown builtin"), std::string::npos) << Diag;
}

TEST(SerializeTest, ChecksumDetectsPayloadCorruption) {
  std::vector<uint8_t> Bytes = workloadBundle();
  Bytes[Bytes.size() / 2] ^= 0x01;
  std::string Diag = expectLoadFails(Bytes);
  EXPECT_NE(Diag.find("checksum"), std::string::npos) << Diag;
}

TEST(SerializeTest, DeterministicEncoding) {
  // Equal programs produce equal bytes — compile the same spec twice.
  Spec S = randomSpec(42);
  auto A = serializeProgram(compileOrDie(S, true, 1));
  auto B = serializeProgram(compileOrDie(S, true, 1));
  EXPECT_EQ(A, B);
}

TEST(SerializeTest, FormatChangeForcesVersionBump) {
  // Golden-bytes guard: this hash pins the current format version's
  // exact byte layout for a fixed program. If an intentional layout
  // change lands, this test fails — bump TPBFormatVersion and update the
  // constants below TOGETHER, so old readers reject new bundles instead
  // of misdecoding them. (v2: aggregate back-references in the value
  // codec.)
  Spec S = parseOrDie("in x: Int\n"
                      "def y := x + 1\n"
                      "out y\n");
  std::vector<uint8_t> Bytes =
      serializeProgram(compileOrDie(S, /*Optimize=*/false, /*OptLevel=*/0));
  uint64_t Hash = tpbChecksum(Bytes.data(), Bytes.size());

  constexpr uint32_t PinnedVersion = 2;
  constexpr uint64_t PinnedSize = 507;
  constexpr uint64_t PinnedHash = 6444314416503829693ull;
  ASSERT_EQ(TPBFormatVersion, PinnedVersion)
      << "TPBFormatVersion changed: re-pin the golden constants";
  EXPECT_EQ(Bytes.size(), PinnedSize)
      << "bundle layout changed without a TPBFormatVersion bump";
  EXPECT_EQ(Hash, PinnedHash)
      << "bundle layout changed without a TPBFormatVersion bump";
}
