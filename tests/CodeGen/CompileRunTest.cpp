//===- tests/CodeGen/CompileRunTest.cpp -------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end validation of the C++ backend: the generated monitor is
/// compiled with the system compiler, run on a trace, and its output is
/// compared byte-for-byte with the interpreter's.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/CppEmitter.h"
#include "tessla/Runtime/TraceGen.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string tempDir() {
  std::string Dir = ::testing::TempDir() + "tessla_cgen_XXXXXX";
  std::vector<char> Buf(Dir.begin(), Dir.end());
  Buf.push_back('\0');
  const char *Result = mkdtemp(Buf.data());
  EXPECT_NE(Result, nullptr);
  return Result ? Result : std::string();
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
  ASSERT_TRUE(Out.good());
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Emits, compiles and runs \p S on \p Events, returning the generated
/// monitor's stdout.
std::string compileAndRun(const Spec &S, bool Optimize,
                          const std::vector<TraceEvent> &Events) {
  CppEmitterOptions Opts;
  Opts.EmitMain = true;
  DiagnosticEngine Diags;
  auto Source = emitCppMonitor(compileOrDie(S, Optimize), Opts, Diags);
  EXPECT_TRUE(Source) << Diags.str();
  if (!Source)
    return "";

  std::string Dir = tempDir();
  writeFile(Dir + "/monitor.cpp", *Source);

  std::string TraceText;
  for (const auto &[Id, Ts, V] : Events)
    TraceText += std::to_string(Ts) + ": " + S.stream(Id).Name + " = " +
                 V.str() + "\n";
  writeFile(Dir + "/trace.txt", TraceText);

  std::string Compile = "c++ -std=c++20 -O1 -I " TESSLA_INCLUDE_DIR " " +
                        Dir + "/monitor.cpp -o " + Dir +
                        "/monitor 2> " + Dir + "/compile.log";
  int CompileRc = std::system(Compile.c_str());
  EXPECT_EQ(CompileRc, 0) << readFile(Dir + "/compile.log") << "\n"
                          << *Source;
  if (CompileRc != 0)
    return "";

  std::string Run = Dir + "/monitor < " + Dir + "/trace.txt > " + Dir +
                    "/out.txt";
  EXPECT_EQ(std::system(Run.c_str()), 0);
  return readFile(Dir + "/out.txt");
}

/// Interpreter reference output.
std::string interpret(const Spec &S, const std::vector<TraceEvent> &Events) {
  Program Plan = compileOrDie(S);
  std::string Error;
  auto Out = runMonitor(Plan, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(Plan.spec(), Out);
}

} // namespace

TEST(CompileRunTest, SeenSetGeneratedMatchesInterpreter) {
  Spec S = seenSet();
  auto Events = tracegen::randomInts(*S.lookup("x"), 400, 30, 31);
  std::string Expected = interpret(S, Events);
  ASSERT_FALSE(Expected.empty());
  EXPECT_EQ(compileAndRun(S, /*Optimize=*/true, Events), Expected);
  EXPECT_EQ(compileAndRun(S, /*Optimize=*/false, Events), Expected);
}

TEST(CompileRunTest, QueueWindowGeneratedMatchesInterpreter) {
  Spec S = queueWindow(6);
  auto Events = tracegen::randomInts(*S.lookup("x"), 300, 100, 32);
  std::string Expected = interpret(S, Events);
  ASSERT_FALSE(Expected.empty());
  EXPECT_EQ(compileAndRun(S, /*Optimize=*/true, Events), Expected);
}

TEST(CompileRunTest, MapWindowGeneratedMatchesInterpreter) {
  Spec S = mapWindow(6);
  auto Events = tracegen::randomInts(*S.lookup("x"), 300, 100, 33);
  std::string Expected = interpret(S, Events);
  ASSERT_FALSE(Expected.empty());
  EXPECT_EQ(compileAndRun(S, /*Optimize=*/true, Events), Expected);
}
