//===- tests/CodeGen/CppEmitterTest.cpp -------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/CppEmitter.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string emit(const Spec &S, bool Optimize, bool EmitMain = false) {
  CppEmitterOptions Opts;
  Opts.EmitMain = EmitMain;
  DiagnosticEngine Diags;
  auto Source = emitCppMonitor(compileOrDie(S, Optimize), Opts, Diags);
  EXPECT_TRUE(Source) << Diags.str();
  return Source ? *Source : std::string();
}

} // namespace

TEST(CppEmitterTest, OptimizedFigure1UsesMutableContainers) {
  std::string Source = emit(figure1(), /*Optimize=*/true);
  EXPECT_NE(Source.find("class GeneratedMonitor"), std::string::npos);
  // Mutable family: shared_ptr<unordered_set> with destructive insert.
  EXPECT_NE(Source.find("std::shared_ptr<std::unordered_set<int64_t"),
            std::string::npos)
      << Source;
  EXPECT_NE(Source.find("->insert("), std::string::npos);
  // No persistent set should appear in the optimized Fig. 1 monitor.
  EXPECT_EQ(Source.find("tessla::HamtSet"), std::string::npos);
  // Input feed method and the triggering section.
  EXPECT_NE(Source.find("void feed_i(int64_t Ts, int64_t Value)"),
            std::string::npos);
  EXPECT_NE(Source.find("minNextDelay"), std::string::npos);
  EXPECT_NE(Source.find("flushBefore"), std::string::npos);
}

TEST(CppEmitterTest, BaselineFigure1UsesPersistentContainers) {
  std::string Source = emit(figure1(), /*Optimize=*/false);
  EXPECT_NE(Source.find("tessla::HamtSet<int64_t"), std::string::npos)
      << Source;
  EXPECT_NE(Source.find(".insert("), std::string::npos);
  EXPECT_EQ(Source.find("std::shared_ptr<std::unordered_set"),
            std::string::npos);
}

TEST(CppEmitterTest, CalcSectionFollowsTranslationOrder) {
  std::string Source = emit(figure1(), /*Optimize=*/true);
  // The read (s = setContains) must be emitted before the write
  // (y = setAdd) — Fig. 7's optimal order.
  size_t ReadPos = Source.find("// s = setContains(...)");
  size_t WritePos = Source.find("// y = setAdd(...)");
  ASSERT_NE(ReadPos, std::string::npos);
  ASSERT_NE(WritePos, std::string::npos);
  EXPECT_LT(ReadPos, WritePos);
}

TEST(CppEmitterTest, HeaderDocumentsSpecAndMutability) {
  std::string Source = emit(figure1(), /*Optimize=*/true);
  EXPECT_NE(Source.find("// Flat specification:"), std::string::npos);
  EXPECT_NE(Source.find("yl = last(m, i)"), std::string::npos);
  EXPECT_NE(Source.find("// Mutable aggregate streams:"),
            std::string::npos);
}

TEST(CppEmitterTest, LastAndDelaySlots) {
  Spec S = parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    def l := last(time(r), r)
    out l
    out d
  )");
  std::string Source = emit(S, true);
  EXPECT_NE(Source.find("_last_init"), std::string::npos);
  EXPECT_NE(Source.find("_nextTs_set"), std::string::npos);
  EXPECT_NE(Source.find("delay amounts must be positive"),
            std::string::npos);
}

TEST(CppEmitterTest, MapAndQueueTypes) {
  std::string Source = emit(mapWindow(10), true);
  EXPECT_NE(Source.find("std::unordered_map<int64_t, int64_t"),
            std::string::npos)
      << Source;
  std::string QSource = emit(queueWindow(10), true);
  EXPECT_NE(QSource.find("std::deque<int64_t>"), std::string::npos);
  EXPECT_NE(QSource.find("tessla::cgen::queueTrim"), std::string::npos);
  std::string QBase = emit(queueWindow(10), false);
  EXPECT_NE(QBase.find("tessla::PQueue<int64_t>"), std::string::npos);
}

TEST(CppEmitterTest, EmitMainProducesDriver) {
  std::string Source = emit(figure1(), true, /*EmitMain=*/true);
  EXPECT_NE(Source.find("int main()"), std::string::npos);
  EXPECT_NE(Source.find("feed_i(Ts"), std::string::npos);
}

TEST(CppEmitterTest, UnsupportedConstructsReported) {
  // Aggregate-typed input.
  {
    Spec S = parseOrDie(R"(
      in s: Set[Int]
      def r := setSize(s)
      out r
    )");
    DiagnosticEngine Diags;
    EXPECT_FALSE(
        emitCppMonitor(compileOrDie(S), CppEmitterOptions(), Diags));
    EXPECT_TRUE(Diags.hasErrors());
  }
  // Aggregate equality.
  {
    Spec S = parseOrDie(R"(
      in i: Int
      def a := setAdd(setEmpty(), i)
      def b := setAdd(setEmpty(), i)
      def e := a == b
      out e
    )");
    DiagnosticEngine Diags;
    EXPECT_FALSE(
        emitCppMonitor(compileOrDie(S), CppEmitterOptions(), Diags));
    EXPECT_TRUE(Diags.hasErrors());
  }
}
