//===- tests/Lang/ParserFuzzTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Robustness: the front end must never crash or hang — every input
/// either parses or produces diagnostics. Random byte soup, random token
/// soup, and truncations of valid specifications.
///
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace tessla;

namespace {

/// Parses and returns whether diagnostics were produced; the test only
/// cares that we return at all and that failure implies diagnostics.
void parseAnything(const std::string &Source) {
  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  if (!S) {
    EXPECT_TRUE(Diags.hasErrors())
        << "silent failure on input: " << Source;
  }
}

} // namespace

TEST(ParserFuzzTest, RandomBytes) {
  std::mt19937_64 Rng(71);
  for (int Round = 0; Round != 500; ++Round) {
    size_t Length = Rng() % 200;
    std::string Source;
    for (size_t I = 0; I != Length; ++I)
      Source += static_cast<char>(32 + Rng() % 95); // printable ASCII
    parseAnything(Source);
  }
}

TEST(ParserFuzzTest, RandomTokenSoup) {
  const char *Tokens[] = {"in",   "def",  "out",    "if",    "then",
                          "else", "unit", "nil",    "time",  "last",
                          "delay", ":=",  ":",      "(",     ")",
                          "[",    "]",    ",",      "+",     "-",
                          "*",    "/",    "%",      "==",    "!=",
                          "<",    "<=",   ">",      ">=",    "&&",
                          "||",   "!",    "x",      "y",     "Int",
                          "Set",  "42",   "3.5",    "true",  "\"s\"",
                          "merge", "setAdd", "hold", "default"};
  std::mt19937_64 Rng(72);
  for (int Round = 0; Round != 500; ++Round) {
    size_t Length = 1 + Rng() % 40;
    std::string Source;
    for (size_t I = 0; I != Length; ++I) {
      Source += Tokens[Rng() % (sizeof(Tokens) / sizeof(*Tokens))];
      Source += Rng() % 8 ? " " : "\n";
    }
    parseAnything(Source);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidSpec) {
  const std::string Valid = R"(
in x: Int
def prev := last(merge(y, setEmpty()), x)
def seen := setContains(prev, x)
def y    := setToggle(prev, x)
def c    := merge(last(c, x) + 1, 0)
out seen
out c
)";
  for (size_t Length = 0; Length <= Valid.size(); ++Length)
    parseAnything(Valid.substr(0, Length));
}

TEST(ParserFuzzTest, PathologicalNesting) {
  // Deep parenthesization must not blow the stack unreasonably.
  std::string Source = "in a: Int\ndef x := ";
  for (int I = 0; I != 200; ++I)
    Source += "(";
  Source += "a";
  for (int I = 0; I != 200; ++I)
    Source += ")";
  Source += "\nout x";
  parseAnything(Source);

  // Long operator chain.
  std::string Chain = "in a: Int\ndef x := a";
  for (int I = 0; I != 2000; ++I)
    Chain += " + a";
  Chain += "\nout x";
  parseAnything(Chain);
}

TEST(ParserFuzzTest, UnterminatedConstructs) {
  for (const char *Source :
       {"in", "in x", "in x:", "in x: Set[", "def", "def x", "def x :=",
        "def x := if a then", "def x := merge(a", "out",
        "def x := \"abc", "in x: Map[Int", "def x := last(a,"})
    parseAnything(Source);
}
