//===- tests/Lang/SpecFilesTest.cpp -----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Every bundled specs/*.tessla file must parse, type-check and analyze
/// (the repository-level analogue of the artifact's src/examples).
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Lang/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tessla;

namespace {

std::vector<std::filesystem::path> specFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(TESSLA_SPECS_DIR))
    if (Entry.path().extension() == ".tessla")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

class SpecFilesTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(SpecFilesTest, ParsesAndAnalyzes) {
  std::ifstream In(GetParam());
  ASSERT_TRUE(In) << GetParam();
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto S = parseSpec(Buffer.str(), Diags);
  ASSERT_TRUE(S) << GetParam() << "\n" << Diags.str();
  AnalysisResult A = analyzeSpec(*S);
  EXPECT_EQ(A.order().size(), S->numStreams());
  EXPECT_FALSE(S->outputs().empty()) << "specs should declare outputs";
}

INSTANTIATE_TEST_SUITE_P(
    AllBundledSpecs, SpecFilesTest, ::testing::ValuesIn(specFiles()),
    [](const ::testing::TestParamInfo<std::filesystem::path> &Info) {
      std::string Name = Info.param.stem().string();
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
