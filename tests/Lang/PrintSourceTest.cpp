//===- tests/Lang/PrintSourceTest.cpp ---------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/PrintSource.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// parse(print(S)) must be structurally identical to S.
void expectRoundTrip(const Spec &S) {
  std::string Printed = printSpecSource(S);
  DiagnosticEngine Diags;
  auto Reparsed = parseSpec(Printed, Diags);
  ASSERT_TRUE(Reparsed) << Diags.str() << "\nsource:\n" << Printed;
  ASSERT_EQ(Reparsed->numStreams(), S.numStreams()) << Printed;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &A = S.stream(Id);
    const StreamDef &B = Reparsed->stream(Id);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Ty, B.Ty) << A.Name;
    EXPECT_EQ(A.Args, B.Args) << A.Name;
    EXPECT_EQ(A.IsOutput, B.IsOutput) << A.Name;
    if (A.Kind == StreamKind::Lift) {
      EXPECT_EQ(A.Fn, B.Fn) << A.Name;
    }
  }
  // Printing again reaches a fixpoint.
  EXPECT_EQ(printSpecSource(*Reparsed), Printed);
}

} // namespace

TEST(PrintSourceTest, RoundTripsAllWorkloads) {
  expectRoundTrip(figure1());
  expectRoundTrip(figure4Upper());
  expectRoundTrip(figure4Lower());
  expectRoundTrip(seenSet());
  expectRoundTrip(mapWindow(10));
  expectRoundTrip(queueWindow(10));
  expectRoundTrip(dbAccessConstraint());
  expectRoundTrip(dbTimeConstraint());
  expectRoundTrip(peakDetection(30));
  expectRoundTrip(spectrumCalculation());
}

TEST(PrintSourceTest, RoundTripsOperatorsAndLiterals) {
  expectRoundTrip(parseOrDie(R"(
    in a: Int
    in b: Float
    in s: String
    def x := a * 2 + 1
    def y := if a > 0 then a else -a
    def z := b / 2.5
    def w := strConcat(s, "suffix")
    def t := time(a)
    def d := delay(a, a)
    def n := merge(a, nil)
    out x
    out w
    out d
  )"));
}

TEST(PrintSourceTest, RoundTripsHoldSugar) {
  Spec S = parseOrDie(R"(
    in a: Int
    in t: Int
    def h := hold(a, t)
    out h
  )");
  // hold desugars to merge(a, last(a, t)).
  const StreamDef &H = S.stream(*S.lookup("h"));
  EXPECT_EQ(H.Kind, StreamKind::Lift);
  EXPECT_EQ(H.Fn, BuiltinId::Merge);
  const StreamDef &LastA = S.stream(H.Args[1]);
  EXPECT_EQ(LastA.Kind, StreamKind::Last);
  expectRoundTrip(S);
}

TEST(PrintSourceTest, OutputIsParseableText) {
  std::string Printed = printSpecSource(figure1());
  EXPECT_NE(Printed.find("in i: Int"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("def yl := last(m, i)"), std::string::npos);
  EXPECT_NE(Printed.find("out s"), std::string::npos);
}
