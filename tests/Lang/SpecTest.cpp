//===- tests/Lang/SpecTest.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Builder.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(SpecBuilderTest, BasicConstruction) {
  SpecBuilder B;
  StreamId I = B.input("i", Type::integer());
  StreamId T = B.time("t", I);
  B.markOutput(T);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(S.numStreams(), 2u);
  EXPECT_EQ(S.inputs(), (std::vector<StreamId>{I}));
  EXPECT_EQ(S.outputs(), (std::vector<StreamId>{T}));
  EXPECT_EQ(*S.lookup("t"), T);
  EXPECT_FALSE(S.lookup("missing"));
}

TEST(SpecBuilderTest, ForwardDeclarationSupportsRecursion) {
  // The Fig. 1 recursion: y -> m -> yl -> y through last's first arg.
  SpecBuilder B;
  StreamId I = B.input("i", Type::integer());
  StreamId Y = B.declare("y");
  StreamId U = B.unit("u");
  StreamId E = B.lift("empty", BuiltinId::SetEmpty, {U});
  StreamId M = B.lift("m", BuiltinId::Merge, {Y, E});
  StreamId YL = B.last("yl", M, I);
  B.defineLift(Y, BuiltinId::SetAdd, {YL, I});
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(S.stream(Y).Kind, StreamKind::Lift);
}

TEST(SpecBuilderTest, UndefinedDeclarationReported) {
  SpecBuilder B;
  B.declare("ghost");
  DiagnosticEngine Diags;
  B.finish(Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SpecValidateTest, RejectsRecursionWithoutLast) {
  // x = merge(x, u): a cycle through a non-special edge.
  SpecBuilder B;
  StreamId X = B.declare("x");
  StreamId U = B.unit("u");
  B.defineLift(X, BuiltinId::Merge, {X, U});
  DiagnosticEngine Diags;
  B.finish(Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("recursion"), std::string::npos)
      << Diags.str();
}

TEST(SpecValidateTest, RecursionThroughLastTriggerRejected) {
  // s = last(v, s') where s' depends on s: the trigger edge is not
  // special, so this cycle is invalid.
  SpecBuilder B;
  StreamId V = B.input("v", Type::integer());
  StreamId S1 = B.declare("s1");
  StreamId L = B.last("l", V, S1);
  B.defineLift(S1, BuiltinId::Add, {L, L});
  DiagnosticEngine Diags;
  B.finish(Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SpecValidateTest, RecursionThroughDelayFirstArgAllowed) {
  // Periodic clock: the delay amount recurses through the delay's first
  // argument (its events re-arm the timer; the delay stream itself is an
  // implicit reset, §III-B).
  SpecBuilder B;
  StreamId D = B.declare("d");
  StreamId U = B.unit("u");
  StreamId C = B.constant("five", ConstantLit{int64_t{5}});
  StreamId LastAmt = B.last("lastAmt", C, D);
  StreamId Amt = B.lift("amt", BuiltinId::Merge, {C, LastAmt});
  B.defineDelay(D, Amt, U);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  (void)S;
}

TEST(SpecValidateTest, RecursionThroughDelayResetRejected) {
  // The reset argument is not special (Def. 1): a cycle through it alone
  // is invalid.
  SpecBuilder B;
  StreamId D = B.declare("d");
  StreamId U = B.unit("u");
  StreamId C = B.constant("five", ConstantLit{int64_t{5}});
  StreamId R = B.lift("r", BuiltinId::Merge, {U, D});
  B.defineDelay(D, C, R);
  DiagnosticEngine Diags;
  B.finish(Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(SpecTest, RendersFlatEquations) {
  SpecBuilder B;
  StreamId I = B.input("i", Type::integer());
  StreamId T = B.time("t", I);
  B.markOutput(T);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  std::string Text = S.str();
  EXPECT_NE(Text.find("i = <input Int>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("out t = time(i)"), std::string::npos) << Text;
}

TEST(ConstantLitTest, Rendering) {
  EXPECT_EQ(ConstantLit{std::monostate{}}.str(), "()");
  EXPECT_EQ(ConstantLit{true}.str(), "true");
  EXPECT_EQ(ConstantLit{int64_t{-3}}.str(), "-3");
  EXPECT_EQ(ConstantLit{1.5}.str(), "1.5");
  EXPECT_EQ(ConstantLit{std::string("a\"b")}.str(), "\"a\\\"b\"");
}
