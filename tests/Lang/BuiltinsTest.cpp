//===- tests/Lang/BuiltinsTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Builtins.h"

#include <gtest/gtest.h>

#include <set>

using namespace tessla;

TEST(BuiltinsTest, TableIsCompleteAndConsistent) {
  const auto &All = allBuiltins();
  EXPECT_EQ(All.size(), NumBuiltins);
  std::set<std::string_view> Names;
  std::set<BuiltinId> Ids;
  for (const BuiltinInfo &Info : All) {
    EXPECT_TRUE(Names.insert(Info.Name).second)
        << "duplicate name " << Info.Name;
    EXPECT_TRUE(Ids.insert(Info.Id).second);
    EXPECT_GE(Info.Arity, 1u);
    EXPECT_LE(Info.Arity, 3u);
  }
}

TEST(BuiltinsTest, LookupByName) {
  auto Id = builtinByName("setAdd");
  ASSERT_TRUE(Id);
  EXPECT_EQ(*Id, BuiltinId::SetAdd);
  EXPECT_FALSE(builtinByName("definitelyNotABuiltin"));
}

TEST(BuiltinsTest, InfoRoundTrip) {
  for (const BuiltinInfo &Info : allBuiltins())
    EXPECT_EQ(builtinInfo(Info.Id).Name, Info.Name);
}

TEST(BuiltinsTest, MergeIsAnyWithPassAccess) {
  const BuiltinInfo &Merge = builtinInfo(BuiltinId::Merge);
  EXPECT_EQ(Merge.Events, EventSemantics::Any);
  EXPECT_EQ(Merge.Access[0], ArgAccess::Pass);
  EXPECT_EQ(Merge.Access[1], ArgAccess::Pass);
}

TEST(BuiltinsTest, FilterIsCustomWithPassAccess) {
  const BuiltinInfo &Filter = builtinInfo(BuiltinId::Filter);
  EXPECT_EQ(Filter.Events, EventSemantics::Custom);
  EXPECT_EQ(Filter.Access[0], ArgAccess::Pass);
}

TEST(BuiltinsTest, SetUpdateIsFirstAndAnyRest) {
  const BuiltinInfo &Update = builtinInfo(BuiltinId::SetUpdate);
  EXPECT_EQ(Update.Events, EventSemantics::FirstAndAnyRest);
  EXPECT_EQ(Update.Access[0], ArgAccess::Write);
}

TEST(BuiltinsTest, AccessClassesForAggregateOps) {
  // Writers.
  for (BuiltinId Id : {BuiltinId::SetAdd, BuiltinId::SetRemove,
                       BuiltinId::SetToggle, BuiltinId::SetUnion,
                       BuiltinId::SetDiff, BuiltinId::MapPut,
                       BuiltinId::MapRemove, BuiltinId::QueueEnq,
                       BuiltinId::QueueDeq, BuiltinId::QueueTrim})
    EXPECT_EQ(builtinInfo(Id).Access[0], ArgAccess::Write)
        << builtinInfo(Id).Name;
  // setUnion/setDiff also *read* their second argument.
  EXPECT_EQ(builtinInfo(BuiltinId::SetUnion).Access[1], ArgAccess::Read);
  EXPECT_EQ(builtinInfo(BuiltinId::SetDiff).Access[1], ArgAccess::Read);
  // Readers.
  for (BuiltinId Id : {BuiltinId::SetContains, BuiltinId::SetSize,
                       BuiltinId::MapGet, BuiltinId::MapGetOrElse,
                       BuiltinId::MapContains, BuiltinId::MapSize,
                       BuiltinId::QueueFront, BuiltinId::QueueSize})
    EXPECT_EQ(builtinInfo(Id).Access[0], ArgAccess::Read)
        << builtinInfo(Id).Name;
}

TEST(BuiltinsTest, SignatureSanity) {
  // Every parameter/result type mentions only variables 0 and 1.
  for (const BuiltinInfo &Info : allBuiltins()) {
    for (unsigned I = 0; I != Info.Arity; ++I)
      for (uint32_t Var = 2; Var != 8; ++Var)
        EXPECT_FALSE(Info.ParamTypes[I].contains(Var));
    for (uint32_t Var = 2; Var != 8; ++Var)
      EXPECT_FALSE(Info.ResultType.contains(Var));
  }
}
