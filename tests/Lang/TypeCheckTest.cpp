//===- tests/Lang/TypeCheckTest.cpp -----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/TypeCheck.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;

namespace {
Type typeOf(const Spec &S, const char *Name) {
  auto Id = S.lookup(Name);
  EXPECT_TRUE(Id) << Name;
  return Id ? S.stream(*Id).Ty : Type();
}
} // namespace

TEST(TypeCheckTest, Figure1Types) {
  Spec S = testspecs::figure1();
  EXPECT_EQ(typeOf(S, "i"), Type::integer());
  EXPECT_EQ(typeOf(S, "y"), Type::set(Type::integer()));
  EXPECT_EQ(typeOf(S, "yl"), Type::set(Type::integer()));
  EXPECT_EQ(typeOf(S, "m"), Type::set(Type::integer()));
  EXPECT_EQ(typeOf(S, "s"), Type::boolean());
}

TEST(TypeCheckTest, GenericBuiltinsInstantiatePerUse) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    in b: String
    def sa := setAdd(setEmpty(), a)
    def sb := setAdd(setEmpty(), b)
    out sa
    out sb
  )");
  EXPECT_EQ(typeOf(S, "sa"), Type::set(Type::integer()));
  EXPECT_EQ(typeOf(S, "sb"), Type::set(Type::string()));
}

TEST(TypeCheckTest, MapKeyValueInference) {
  Spec S = testspecs::parseOrDie(R"(
    in k: Int
    in v: Float
    def m := mapPut(mapEmpty(), k, v)
    def got := mapGetOrElse(m, k, 0.0)
    out got
  )");
  EXPECT_EQ(typeOf(S, "m"), Type::map(Type::integer(), Type::floating()));
  EXPECT_EQ(typeOf(S, "got"), Type::floating());
}

TEST(TypeCheckTest, TimeAndDelayTypes) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def t := time(a)
    def d := delay(a, a)
    out t
    out d
  )");
  EXPECT_EQ(typeOf(S, "t"), Type::integer());
  EXPECT_EQ(typeOf(S, "d"), Type::unit());
}

TEST(TypeCheckTest, LastHasValueType) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Float
    in t: Int
    def l := last(a, t)
    out l
  )");
  EXPECT_EQ(typeOf(S, "l"), Type::floating());
}

TEST(TypeCheckTest, MismatchReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec(R"(
    in a: Int
    in b: Bool
    def x := a + b
    out x
  )",
                         Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(TypeCheckTest, DelayAmountMustBeInt) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec(R"(
    in a: Float
    def d := delay(a, a)
    out d
  )",
                         Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(TypeCheckTest, UnconstrainedTypeReported) {
  DiagnosticEngine Diags;
  // nil's type has no constraining use.
  EXPECT_FALSE(parseSpec("def x := nil\nout x", Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(TypeCheckTest, NilInfersFromUse) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def x := merge(a, nil)
    out x
  )");
  EXPECT_EQ(typeOf(S, "x"), Type::integer());
}

TEST(TypeCheckTest, NestedAggregatesRejected) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec(R"(
    in a: Int
    def inner := setAdd(setEmpty(), a)
    def outer := setAdd(setEmpty(), inner)
    out outer
  )",
                         Diags));
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("nested aggregate"), std::string::npos)
      << Diags.str();
}

TEST(TypeCheckTest, FilterConditionMustBeBool) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec(R"(
    in a: Int
    def x := filter(a, a)
    out x
  )",
                         Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(TypeCheckTest, AllWorkloadSpecsTypecheck) {
  // Smoke: every bundled workload builds and typechecks.
  testspecs::figure1();
  testspecs::figure4Upper();
  testspecs::figure4Lower();
  testspecs::seenSet();
  testspecs::mapWindow(10);
  testspecs::queueWindow(10);
  testspecs::dbAccessConstraint();
  testspecs::dbTimeConstraint();
  testspecs::peakDetection(30);
  testspecs::spectrumCalculation();
}
