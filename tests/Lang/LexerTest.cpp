//===- tests/Lang/LexerTest.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Lexer.h"

#include <gtest/gtest.h>

using namespace tessla;

namespace {
std::vector<TokenKind> kinds(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = tokenize(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}
} // namespace

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::Eof}));
  EXPECT_EQ(kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::Eof}));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto K = kinds("in def out if then else unit nil time last delay foo");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::KwIn, TokenKind::KwDef, TokenKind::KwOut,
                   TokenKind::KwIf, TokenKind::KwThen, TokenKind::KwElse,
                   TokenKind::KwUnit, TokenKind::KwNil, TokenKind::KwTime,
                   TokenKind::KwLast, TokenKind::KwDelay,
                   TokenKind::Identifier, TokenKind::Eof}));
}

TEST(LexerTest, Numbers) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("42 3.25 1e3 2.5e-2 7", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 3.25);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 1000.0);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[3].FloatValue, 0.025);
  EXPECT_EQ(Tokens[4].IntValue, 7);
}

TEST(LexerTest, Strings) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize(R"("hello" "a\nb" "q\"q")", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "a\nb");
  EXPECT_EQ(Tokens[2].Text, "q\"q");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto K = kinds(":= : ( ) [ ] , + - * / % == != < <= > >= && || !");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::Define, TokenKind::Colon, TokenKind::LParen,
                   TokenKind::RParen, TokenKind::LBracket,
                   TokenKind::RBracket, TokenKind::Comma, TokenKind::Plus,
                   TokenKind::Minus, TokenKind::Star, TokenKind::Slash,
                   TokenKind::Percent, TokenKind::EqEq, TokenKind::NotEq,
                   TokenKind::Lt, TokenKind::LtEq, TokenKind::Gt,
                   TokenKind::GtEq, TokenKind::AndAnd, TokenKind::OrOr,
                   TokenKind::Bang, TokenKind::Eof}));
}

TEST(LexerTest, Comments) {
  auto K = kinds("def -- trailing comment\n# whole line\nx");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::KwDef,
                                       TokenKind::Identifier,
                                       TokenKind::Eof}));
}

TEST(LexerTest, MinusVsCommentDisambiguation) {
  // A single '-' is minus; "--" starts a comment.
  auto K = kinds("a - b");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Minus,
                                       TokenKind::Identifier,
                                       TokenKind::Eof}));
}

TEST(LexerTest, SourceLocations) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("ab\n  cd", Diags);
  EXPECT_EQ(Tokens[0].Loc, SourceLocation(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLocation(2, 3));
}

TEST(LexerTest, ErrorsReported) {
  DiagnosticEngine Diags;
  tokenize("a ? b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  tokenize("\"unterminated", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
  DiagnosticEngine Diags3;
  tokenize("a = b", Diags3); // '=' instead of ':='
  EXPECT_TRUE(Diags3.hasErrors());
}
