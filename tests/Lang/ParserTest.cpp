//===- tests/Lang/ParserTest.cpp --------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Parser.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(ParserTest, InputDeclarations) {
  DiagnosticEngine Diags;
  auto M = parseModule("in x: Int\nin s: Set[Int]\nin m: Map[Int, Float]",
                       Diags);
  ASSERT_TRUE(M) << Diags.str();
  ASSERT_EQ(M->Inputs.size(), 3u);
  EXPECT_EQ(M->Inputs[0].Ty, Type::integer());
  EXPECT_EQ(M->Inputs[1].Ty, Type::set(Type::integer()));
  EXPECT_EQ(M->Inputs[2].Ty, Type::map(Type::integer(), Type::floating()));
}

TEST(ParserTest, OperatorPrecedence) {
  DiagnosticEngine Diags;
  auto M = parseModule("in a: Int\ndef x := a + a * a", Diags);
  ASSERT_TRUE(M) << Diags.str();
  const ast::Expr &Body = *M->Defs[0].Body;
  ASSERT_EQ(Body.Kind, ast::ExprKind::Call);
  EXPECT_EQ(Body.Callee, "add");
  EXPECT_EQ(Body.Args[1]->Callee, "mul");
}

TEST(ParserTest, ComparisonDoesNotChain) {
  DiagnosticEngine Diags;
  // "a < b < c" would parse as (a<b) < c with chaining; we stop after one.
  auto M = parseModule("in a: Int\ndef x := a < a", Diags);
  ASSERT_TRUE(M) << Diags.str();
  EXPECT_EQ(M->Defs[0].Body->Callee, "lt");
}

TEST(ParserTest, IfThenElse) {
  DiagnosticEngine Diags;
  auto M = parseModule(
      "in a: Int\ndef x := if a > 0 then a else -a", Diags);
  ASSERT_TRUE(M) << Diags.str();
  EXPECT_EQ(M->Defs[0].Body->Callee, "ite");
  EXPECT_EQ(M->Defs[0].Body->Args.size(), 3u);
}

TEST(ParserTest, UnaryOperators) {
  DiagnosticEngine Diags;
  auto M = parseModule("in a: Bool\ndef x := !a\ndef y := -5", Diags);
  ASSERT_TRUE(M) << Diags.str();
  EXPECT_EQ(M->Defs[0].Body->Callee, "not");
  // Negative literals fold.
  ASSERT_EQ(M->Defs[1].Body->Kind, ast::ExprKind::Literal);
  EXPECT_EQ(std::get<int64_t>(M->Defs[1].Body->Lit.V), -5);
}

TEST(ParserTest, CoreOperators) {
  DiagnosticEngine Diags;
  auto M = parseModule(
      "in a: Int\ndef t := time(a)\ndef l := last(t, a)\n"
      "def d := delay(l, a)\ndef u := unit\ndef n := nil",
      Diags);
  ASSERT_TRUE(M) << Diags.str();
  EXPECT_EQ(M->Defs[0].Body->Kind, ast::ExprKind::TimeOp);
  EXPECT_EQ(M->Defs[1].Body->Kind, ast::ExprKind::LastOp);
  EXPECT_EQ(M->Defs[2].Body->Kind, ast::ExprKind::DelayOp);
  EXPECT_EQ(M->Defs[3].Body->Kind, ast::ExprKind::UnitVal);
  EXPECT_EQ(M->Defs[4].Body->Kind, ast::ExprKind::NilVal);
}

TEST(ParserTest, DefaultDesugarsToMerge) {
  DiagnosticEngine Diags;
  auto M = parseModule("in a: Int\ndef x := default(a, 0)", Diags);
  ASSERT_TRUE(M) << Diags.str();
  EXPECT_EQ(M->Defs[0].Body->Callee, "merge");
}

TEST(ParserTest, ErrorsRecoverPerDeclaration) {
  DiagnosticEngine Diags;
  auto M = parseModule("def x := (1 +\nin ok: Int\n", Diags);
  EXPECT_FALSE(M);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ReportsArityErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseModule("in a: Int\ndef x := time(a, a)", Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

// --- Lowering / flattening ------------------------------------------------

TEST(LoweringTest, Figure1FlattensToPaperForm) {
  Spec S = testspecs::figure1();
  // The named streams all exist.
  for (const char *Name : {"i", "m", "yl", "y", "s"})
    EXPECT_TRUE(S.lookup(Name)) << Name;
  // yl = last(m, i).
  const StreamDef &YL = S.stream(*S.lookup("yl"));
  EXPECT_EQ(YL.Kind, StreamKind::Last);
  EXPECT_EQ(S.stream(YL.Args[0]).Name, "m");
  EXPECT_EQ(S.stream(YL.Args[1]).Name, "i");
  // m = merge(y, <setEmpty temp>).
  const StreamDef &MDef = S.stream(*S.lookup("m"));
  EXPECT_EQ(MDef.Kind, StreamKind::Lift);
  EXPECT_EQ(MDef.Fn, BuiltinId::Merge);
  EXPECT_EQ(S.stream(MDef.Args[0]).Name, "y");
  EXPECT_EQ(S.stream(MDef.Args[1]).Fn, BuiltinId::SetEmpty);
  // The setEmpty temp feeds on the shared unit stream.
  const StreamDef &Empty = S.stream(MDef.Args[1]);
  EXPECT_EQ(S.stream(Empty.Args[0]).Kind, StreamKind::Unit);
  // s is an output.
  EXPECT_TRUE(S.stream(*S.lookup("s")).IsOutput);
}

TEST(LoweringTest, NestedExpressionsGetFreshTemps) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def x := (a + a) * (a + a)
    out x
  )");
  // (a + a) appears twice; lowering introduces temps per occurrence.
  const StreamDef &X = S.stream(*S.lookup("x"));
  EXPECT_EQ(X.Fn, BuiltinId::Mul);
  EXPECT_EQ(S.stream(X.Args[0]).Fn, BuiltinId::Add);
  EXPECT_EQ(S.stream(X.Args[1]).Fn, BuiltinId::Add);
}

TEST(LoweringTest, AliasDefBecomesIdentityMerge) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def b := a
    out b
  )");
  const StreamDef &B = S.stream(*S.lookup("b"));
  EXPECT_EQ(B.Kind, StreamKind::Lift);
  EXPECT_EQ(B.Fn, BuiltinId::Merge);
  EXPECT_EQ(B.Args[0], *S.lookup("a"));
  EXPECT_EQ(B.Args[1], *S.lookup("a"));
}

TEST(LoweringTest, LiteralsSharedAcrossUses) {
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def x := default(a, 7)
    def y := default(a, 7)
    out x
    out y
  )");
  const StreamDef &X = S.stream(*S.lookup("x"));
  const StreamDef &Y = S.stream(*S.lookup("y"));
  EXPECT_EQ(X.Args[1], Y.Args[1]) << "same literal -> same const stream";
}

TEST(LoweringTest, LiteralOperandsAreHeld) {
  // a + 1: the literal is wrapped as merge(c, last(c, a)) so the addition
  // fires at every a event, not only at timestamp 0.
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def x := a + 1
    out x
  )");
  const StreamDef &X = S.stream(*S.lookup("x"));
  ASSERT_EQ(X.Fn, BuiltinId::Add);
  const StreamDef &Held = S.stream(X.Args[1]);
  EXPECT_EQ(Held.Fn, BuiltinId::Merge);
  EXPECT_EQ(S.stream(Held.Args[0]).Kind, StreamKind::Const);
  const StreamDef &Last = S.stream(Held.Args[1]);
  EXPECT_EQ(Last.Kind, StreamKind::Last);
  EXPECT_EQ(Last.Args[1], *S.lookup("a"));
}

TEST(LoweringTest, MergeKeepsRawLiterals) {
  // default(x, 0) == merge(x, 0) must keep the plain timestamp-0 constant.
  Spec S = testspecs::parseOrDie(R"(
    in a: Int
    def x := default(a, 0)
    out x
  )");
  const StreamDef &X = S.stream(*S.lookup("x"));
  EXPECT_EQ(X.Fn, BuiltinId::Merge);
  EXPECT_EQ(S.stream(X.Args[1]).Kind, StreamKind::Const);
}

TEST(LoweringTest, UnknownNamesReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec("def x := nope\nout x", Diags));
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  EXPECT_FALSE(parseSpec("in a: Int\nout missing", Diags2));
  DiagnosticEngine Diags3;
  EXPECT_FALSE(parseSpec("in a: Int\ndef x := frobnicate(a)", Diags3));
}

TEST(LoweringTest, DuplicateNamesReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseSpec("in a: Int\ndef a := 1", Diags));
  EXPECT_TRUE(Diags.hasErrors());
}
