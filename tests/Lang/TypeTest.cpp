//===- tests/Lang/TypeTest.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/TypeUnifier.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(TypeTest, Rendering) {
  EXPECT_EQ(Type::integer().str(), "Int");
  EXPECT_EQ(Type::set(Type::integer()).str(), "Set[Int]");
  EXPECT_EQ(Type::map(Type::integer(), Type::floating()).str(),
            "Map[Int, Float]");
  EXPECT_EQ(Type::queue(Type::string()).str(), "Queue[String]");
  EXPECT_EQ(Type::var(3).str(), "'3");
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::integer(), Type::integer());
  EXPECT_NE(Type::integer(), Type::floating());
  EXPECT_EQ(Type::set(Type::integer()), Type::set(Type::integer()));
  EXPECT_NE(Type::set(Type::integer()), Type::set(Type::boolean()));
  EXPECT_EQ(Type::var(1), Type::var(1));
  EXPECT_NE(Type::var(1), Type::var(2));
}

TEST(TypeTest, ComplexPredicate) {
  EXPECT_FALSE(Type::integer().isComplex());
  EXPECT_FALSE(Type::unit().isComplex());
  EXPECT_TRUE(Type::set(Type::integer()).isComplex());
  EXPECT_TRUE(Type::map(Type::integer(), Type::integer()).isComplex());
  EXPECT_TRUE(Type::queue(Type::integer()).isComplex());
}

TEST(TypeTest, ConcretenessAndOccurs) {
  EXPECT_TRUE(Type::set(Type::integer()).isConcrete());
  EXPECT_FALSE(Type::set(Type::var(0)).isConcrete());
  EXPECT_TRUE(Type::map(Type::integer(), Type::var(7)).contains(7));
  EXPECT_FALSE(Type::map(Type::integer(), Type::var(7)).contains(8));
}

TEST(TypeUnifierTest, BindsVariables) {
  TypeUnifier U;
  Type V = U.freshVar();
  EXPECT_TRUE(U.unify(V, Type::integer()));
  EXPECT_EQ(U.apply(V), Type::integer());
}

TEST(TypeUnifierTest, UnifiesStructurally) {
  TypeUnifier U;
  Type A = U.freshVar(), B = U.freshVar();
  EXPECT_TRUE(U.unify(Type::map(A, Type::floating()),
                      Type::map(Type::integer(), B)));
  EXPECT_EQ(U.apply(A), Type::integer());
  EXPECT_EQ(U.apply(B), Type::floating());
}

TEST(TypeUnifierTest, RejectsClashes) {
  TypeUnifier U;
  EXPECT_FALSE(U.unify(Type::integer(), Type::floating()));
  EXPECT_FALSE(
      U.unify(Type::set(Type::integer()), Type::queue(Type::integer())));
}

TEST(TypeUnifierTest, OccursCheck) {
  TypeUnifier U;
  Type V = U.freshVar();
  EXPECT_FALSE(U.unify(V, Type::set(V)));
}

TEST(TypeUnifierTest, ChainsResolve) {
  TypeUnifier U;
  Type A = U.freshVar(), B = U.freshVar(), C = U.freshVar();
  EXPECT_TRUE(U.unify(A, B));
  EXPECT_TRUE(U.unify(B, C));
  EXPECT_TRUE(U.unify(C, Type::string()));
  EXPECT_EQ(U.apply(A), Type::string());
}

TEST(TypeUnifierTest, InstantiateRenamesConsistently) {
  TypeUnifier U;
  std::unordered_map<uint32_t, Type> Renaming;
  // setAdd-like signature: (Set['0], '0) -> Set['0].
  Type P0 = U.instantiate(Type::set(Type::var(0)), Renaming);
  Type P1 = U.instantiate(Type::var(0), Renaming);
  // Same source variable maps to the same fresh one.
  EXPECT_EQ(P0.params()[0], P1);
  // Fresh variables differ between instantiations.
  std::unordered_map<uint32_t, Type> Renaming2;
  Type Q1 = U.instantiate(Type::var(0), Renaming2);
  EXPECT_NE(P1, Q1);
}
