//===- tests/Persistent/QueueTest.cpp ---------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Persistent/Queue.h"

#include <gtest/gtest.h>

#include <deque>
#include <random>

using namespace tessla;

TEST(PQueueTest, EmptyQueue) {
  PQueue<int> Q;
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.size(), 0u);
}

TEST(PQueueTest, FifoOrder) {
  PQueue<int> Q;
  for (int I = 0; I != 5; ++I)
    Q = Q.enqueue(I);
  for (int I = 0; I != 5; ++I) {
    ASSERT_FALSE(Q.empty());
    EXPECT_EQ(Q.front(), I);
    Q = Q.dequeue();
  }
  EXPECT_TRUE(Q.empty());
}

TEST(PQueueTest, PersistenceOldVersionUnchanged) {
  PQueue<int> Q = PQueue<int>().enqueue(1).enqueue(2);
  PQueue<int> Dequeued = Q.dequeue();
  PQueue<int> Extended = Q.enqueue(3);
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.front(), 1);
  EXPECT_EQ(Dequeued.size(), 1u);
  EXPECT_EQ(Dequeued.front(), 2);
  EXPECT_EQ(Extended.size(), 3u);
  EXPECT_EQ(Extended.front(), 1);
}

TEST(PQueueTest, FrontAcrossReversalBoundary) {
  // Front list empty, back holds everything: front() must find the
  // oldest element at the bottom of the back list.
  PQueue<int> Q = PQueue<int>().enqueue(10).enqueue(20).enqueue(30);
  EXPECT_EQ(Q.front(), 10);
  Q = Q.dequeue(); // forces the reversal
  EXPECT_EQ(Q.front(), 20);
  Q = Q.enqueue(40);
  EXPECT_EQ(Q.front(), 20);
  Q = Q.dequeue();
  EXPECT_EQ(Q.front(), 30);
  Q = Q.dequeue();
  EXPECT_EQ(Q.front(), 40);
}

TEST(PQueueTest, ForEachOldestFirst) {
  PQueue<int> Q =
      PQueue<int>().enqueue(1).enqueue(2).dequeue().enqueue(3).enqueue(4);
  std::vector<int> Items;
  Q.forEach([&Items](int V) { Items.push_back(V); });
  EXPECT_EQ(Items, (std::vector<int>{2, 3, 4}));
}

TEST(PQueueTest, Equality) {
  PQueue<int> A = PQueue<int>().enqueue(1).enqueue(2);
  // Same contents through a different operation history (different
  // front/back split).
  PQueue<int> B =
      PQueue<int>().enqueue(0).enqueue(1).dequeue().enqueue(2);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == A.dequeue());
}

/// Property: behaves exactly like std::deque under random op sequences,
/// including persistence of snapshots.
TEST(PQueueTest, MatchesDequeUnderRandomOps) {
  std::mt19937 Rng(5);
  for (int Round = 0; Round != 20; ++Round) {
    PQueue<int> Q;
    std::deque<int> Ref;
    std::vector<std::pair<PQueue<int>, std::deque<int>>> Snapshots;
    for (int Op = 0; Op != 300; ++Op) {
      int Choice = Rng() % 10;
      if (Choice < 6 || Ref.empty()) {
        int V = static_cast<int>(Rng() % 1000);
        Q = Q.enqueue(V);
        Ref.push_back(V);
      } else {
        ASSERT_EQ(Q.front(), Ref.front());
        Q = Q.dequeue();
        Ref.pop_front();
      }
      if (Op % 50 == 0)
        Snapshots.push_back({Q, Ref});
      ASSERT_EQ(Q.size(), Ref.size());
    }
    // All snapshots must still match their reference copies.
    for (auto &[SnapQ, SnapRef] : Snapshots) {
      std::vector<int> Items;
      SnapQ.forEach([&Items](int V) { Items.push_back(V); });
      EXPECT_EQ(Items,
                std::vector<int>(SnapRef.begin(), SnapRef.end()));
    }
  }
}
