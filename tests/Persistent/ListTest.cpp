//===- tests/Persistent/ListTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Persistent/List.h"

#include <gtest/gtest.h>

#include <string>

using namespace tessla;

TEST(PListTest, EmptyList) {
  PList<int> L;
  EXPECT_TRUE(L.empty());
  EXPECT_EQ(L.size(), 0u);
  EXPECT_EQ(L.begin(), L.end());
}

TEST(PListTest, ConsHeadTail) {
  PList<int> L = PList<int>().cons(3).cons(2).cons(1);
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.head(), 1);
  EXPECT_EQ(L.tail().head(), 2);
  EXPECT_EQ(L.tail().tail().head(), 3);
  EXPECT_TRUE(L.tail().tail().tail().empty());
}

TEST(PListTest, PersistenceOldVersionUnchanged) {
  PList<int> Old = PList<int>().cons(1);
  PList<int> New = Old.cons(0);
  EXPECT_EQ(Old.size(), 1u);
  EXPECT_EQ(Old.head(), 1);
  EXPECT_EQ(New.size(), 2u);
  EXPECT_EQ(New.head(), 0);
  // The spine is shared: Old is New's tail structurally.
  EXPECT_TRUE(Old == New.tail());
}

TEST(PListTest, Reverse) {
  PList<int> L = PList<int>().cons(3).cons(2).cons(1); // [1,2,3]
  PList<int> R = L.reverse();                          // [3,2,1]
  EXPECT_EQ(R.head(), 3);
  EXPECT_EQ(R.tail().head(), 2);
  EXPECT_EQ(R.tail().tail().head(), 1);
  EXPECT_EQ(L.head(), 1) << "reverse must not mutate the original";
  EXPECT_TRUE(PList<int>().reverse().empty());
}

TEST(PListTest, ForEachAndIteration) {
  PList<std::string> L =
      PList<std::string>().cons("c").cons("b").cons("a");
  std::string Joined;
  L.forEach([&Joined](const std::string &S) { Joined += S; });
  EXPECT_EQ(Joined, "abc");
  std::string Ranged;
  for (const std::string &S : L)
    Ranged += S;
  EXPECT_EQ(Ranged, "abc");
}

TEST(PListTest, Equality) {
  PList<int> A = PList<int>().cons(2).cons(1);
  PList<int> B = PList<int>().cons(2).cons(1);
  PList<int> C = PList<int>().cons(3).cons(1);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  EXPECT_FALSE(A == A.tail());
}

TEST(PListTest, DeepSpineNoStackOverflowOnDestruction) {
  // Destruction is iterative only if the spine refcounts release one by
  // one... our nodes release recursively through RefCntPtr; keep the
  // depth moderate but large enough to catch quadratic/abusive behavior.
  PList<int> L;
  for (int I = 0; I != 100000; ++I)
    L = L.cons(I);
  EXPECT_EQ(L.size(), 100000u);
  SUCCEED();
}
