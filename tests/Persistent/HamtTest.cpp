//===- tests/Persistent/HamtTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Persistent/HAMT.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>

using namespace tessla;

TEST(HamtMapTest, EmptyMap) {
  HamtMap<int, int> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.find(1), nullptr);
}

TEST(HamtMapTest, SetAndFind) {
  HamtMap<int, std::string> M;
  M = M.set(1, "one").set(2, "two");
  EXPECT_EQ(M.size(), 2u);
  ASSERT_NE(M.find(1), nullptr);
  EXPECT_EQ(*M.find(1), "one");
  ASSERT_NE(M.find(2), nullptr);
  EXPECT_EQ(*M.find(2), "two");
  EXPECT_EQ(M.find(3), nullptr);
}

TEST(HamtMapTest, OverwriteKeepsSize) {
  HamtMap<int, int> M;
  M = M.set(7, 1).set(7, 2);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_EQ(*M.find(7), 2);
}

TEST(HamtMapTest, EraseRemoves) {
  HamtMap<int, int> M;
  M = M.set(1, 10).set(2, 20).set(3, 30);
  M = M.erase(2);
  EXPECT_EQ(M.size(), 2u);
  EXPECT_EQ(M.find(2), nullptr);
  EXPECT_NE(M.find(1), nullptr);
  EXPECT_NE(M.find(3), nullptr);
  // Erasing an absent key is a no-op.
  M = M.erase(99);
  EXPECT_EQ(M.size(), 2u);
}

TEST(HamtMapTest, PersistenceOldVersionsValid) {
  HamtMap<int, int> V0;
  HamtMap<int, int> V1 = V0.set(1, 100);
  HamtMap<int, int> V2 = V1.set(2, 200);
  HamtMap<int, int> V3 = V2.erase(1);
  EXPECT_EQ(V0.size(), 0u);
  EXPECT_EQ(V1.size(), 1u);
  EXPECT_EQ(V2.size(), 2u);
  EXPECT_EQ(V3.size(), 1u);
  EXPECT_EQ(*V1.find(1), 100);
  EXPECT_EQ(*V2.find(1), 100);
  EXPECT_EQ(V3.find(1), nullptr);
  EXPECT_EQ(*V3.find(2), 200);
}

namespace {
/// Hash functor with deliberate collisions to exercise collision nodes.
struct BadHash {
  size_t operator()(int X) const { return static_cast<size_t>(X % 3); }
};
} // namespace

TEST(HamtMapTest, CollisionsHandled) {
  HamtMap<int, int, BadHash> M;
  // All keys with equal remainder collide completely under BadHash.
  for (int I = 0; I != 60; ++I)
    M = M.set(I * 3, I);
  EXPECT_EQ(M.size(), 60u);
  for (int I = 0; I != 60; ++I) {
    ASSERT_NE(M.find(I * 3), nullptr) << I;
    EXPECT_EQ(*M.find(I * 3), I);
  }
  for (int I = 0; I != 30; ++I)
    M = M.erase(I * 3);
  EXPECT_EQ(M.size(), 30u);
  for (int I = 30; I != 60; ++I)
    EXPECT_NE(M.find(I * 3), nullptr);
  for (int I = 0; I != 30; ++I)
    EXPECT_EQ(M.find(I * 3), nullptr);
}

TEST(HamtMapTest, ItemsEnumeratesAll) {
  HamtMap<int, int> M;
  for (int I = 0; I != 100; ++I)
    M = M.set(I, I * I);
  auto Items = M.items();
  EXPECT_EQ(Items.size(), 100u);
  std::map<int, int> Sorted(Items.begin(), Items.end());
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Sorted[I], I * I);
}

/// Property: agrees with std::map under random operations; snapshots stay
/// intact (the persistence property the baseline monitors rely on).
TEST(HamtMapTest, MatchesStdMapUnderRandomOps) {
  std::mt19937 Rng(17);
  for (int Round = 0; Round != 10; ++Round) {
    HamtMap<int, int> M;
    std::map<int, int> Ref;
    std::vector<std::pair<HamtMap<int, int>, std::map<int, int>>> Snaps;
    for (int Op = 0; Op != 2000; ++Op) {
      int Key = static_cast<int>(Rng() % 500);
      if (Rng() % 3 != 0) {
        int Val = static_cast<int>(Rng());
        M = M.set(Key, Val);
        Ref[Key] = Val;
      } else {
        M = M.erase(Key);
        Ref.erase(Key);
      }
      ASSERT_EQ(M.size(), Ref.size());
      if (Op % 500 == 0)
        Snaps.push_back({M, Ref});
    }
    for (auto &[K, V] : Ref) {
      ASSERT_NE(M.find(K), nullptr);
      EXPECT_EQ(*M.find(K), V);
    }
    for (auto &[SnapM, SnapRef] : Snaps) {
      EXPECT_EQ(SnapM.size(), SnapRef.size());
      for (auto &[K, V] : SnapRef) {
        ASSERT_NE(SnapM.find(K), nullptr);
        EXPECT_EQ(*SnapM.find(K), V);
      }
    }
  }
}

TEST(HamtSetTest, InsertContainsErase) {
  HamtSet<std::string> S;
  S = S.insert("a").insert("b");
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains("a"));
  EXPECT_FALSE(S.contains("c"));
  S = S.erase("a");
  EXPECT_FALSE(S.contains("a"));
  EXPECT_TRUE(S.contains("b"));
}

TEST(HamtSetTest, DuplicateInsertKeepsSize) {
  HamtSet<int> S;
  S = S.insert(1).insert(1).insert(1);
  EXPECT_EQ(S.size(), 1u);
}

TEST(HamtSetTest, MatchesStdSetUnderRandomOps) {
  std::mt19937 Rng(29);
  HamtSet<int> S;
  std::set<int> Ref;
  for (int Op = 0; Op != 5000; ++Op) {
    int V = static_cast<int>(Rng() % 1000);
    if (Rng() % 2) {
      S = S.insert(V);
      Ref.insert(V);
    } else {
      S = S.erase(V);
      Ref.erase(V);
    }
    ASSERT_EQ(S.size(), Ref.size());
  }
  for (int V : Ref)
    EXPECT_TRUE(S.contains(V));
  auto Items = S.items();
  EXPECT_EQ(std::set<int>(Items.begin(), Items.end()), Ref);
}

TEST(HamtSetTest, LargeScaleGrowShrink) {
  HamtSet<int> S;
  for (int I = 0; I != 20000; ++I)
    S = S.insert(I);
  EXPECT_EQ(S.size(), 20000u);
  for (int I = 0; I != 20000; I += 2)
    S = S.erase(I);
  EXPECT_EQ(S.size(), 10000u);
  for (int I = 0; I != 20000; ++I)
    EXPECT_EQ(S.contains(I), I % 2 == 1) << I;
}

// --- Transient (COW) operations --------------------------------------------

TEST(HamtMapTest, TransientSetMutatesUniqueNodesInPlace) {
  HamtMap<int, int> M;
  for (int I = 0; I != 100; ++I)
    M.setMut(I, I * 2);
  EXPECT_EQ(M.size(), 100u);
  for (int I = 0; I != 100; ++I) {
    ASSERT_NE(M.find(I), nullptr) << I;
    EXPECT_EQ(*M.find(I), I * 2);
  }
  for (int I = 0; I != 100; I += 2)
    EXPECT_TRUE(M.eraseMut(I));
  EXPECT_FALSE(M.eraseMut(0)) << "already erased";
  EXPECT_EQ(M.size(), 50u);
}

TEST(HamtMapTest, TransientOpsLeaveSnapshotsIntact) {
  // The COW guarantee: a transient update on a trie whose nodes are
  // shared with a snapshot must path-copy around the shared nodes, never
  // write through them.
  HamtMap<int, int> M;
  for (int I = 0; I != 500; ++I)
    M.setMut(I, I);
  HamtMap<int, int> Snap = M; // shares every node
  for (int I = 0; I != 500; ++I)
    M.setMut(I, -I);
  for (int I = 250; I != 300; ++I)
    M.eraseMut(I);
  EXPECT_EQ(Snap.size(), 500u);
  for (int I = 0; I != 500; ++I) {
    ASSERT_NE(Snap.find(I), nullptr) << I;
    EXPECT_EQ(*Snap.find(I), I) << "snapshot observed a transient write";
  }
  EXPECT_EQ(M.size(), 450u);
  ASSERT_NE(M.find(3), nullptr);
  EXPECT_EQ(*M.find(3), -3);
}

TEST(HamtMapTest, TransientMatchesPersistentUnderRandomOps) {
  std::mt19937 Rng(53);
  HamtMap<int, int> T;
  HamtMap<int, int> P;
  std::vector<HamtMap<int, int>> Snaps;
  for (int Op = 0; Op != 4000; ++Op) {
    int Key = static_cast<int>(Rng() % 400);
    if (Rng() % 3 != 0) {
      int Val = static_cast<int>(Rng());
      T.setMut(Key, Val);
      P = P.set(Key, Val);
    } else {
      bool Was = T.eraseMut(Key);
      EXPECT_EQ(Was, P.find(Key) != nullptr);
      P = P.erase(Key);
    }
    ASSERT_EQ(T.size(), P.size());
    if (Op % 1000 == 0)
      Snaps.push_back(T); // forces the shared-node fallback afterwards
  }
  for (auto &[K, V] : P.items()) {
    ASSERT_NE(T.find(K), nullptr);
    EXPECT_EQ(*T.find(K), V);
  }
}

TEST(HamtSetTest, TransientInsertEraseWithCollisions) {
  HamtSet<int, BadHash> S;
  for (int I = 0; I != 90; ++I)
    S.insertMut(I);
  EXPECT_EQ(S.size(), 90u);
  HamtSet<int, BadHash> Snap = S;
  for (int I = 0; I != 45; ++I)
    EXPECT_TRUE(S.eraseMut(I)) << I;
  EXPECT_EQ(S.size(), 45u);
  EXPECT_EQ(Snap.size(), 90u) << "collision-node snapshot mutated";
  for (int I = 0; I != 90; ++I) {
    EXPECT_EQ(S.contains(I), I >= 45) << I;
    EXPECT_TRUE(Snap.contains(I)) << I;
  }
}

TEST(HamtSetTest, ForEachNodeCountsSharing) {
  HamtSet<int> S;
  for (int I = 0; I != 1000; ++I)
    S.insertMut(I);
  size_t Nodes = 0, Bytes = 0;
  S.forEachNode([&](const void *P, size_t B, uint32_t Owners) {
    EXPECT_NE(P, nullptr);
    EXPECT_GT(B, 0u);
    EXPECT_EQ(Owners, 1u) << "unshared trie reports owner count 1";
    ++Nodes;
    Bytes += B;
    return true;
  });
  EXPECT_GT(Nodes, 1u);
  EXPECT_GT(Bytes, Nodes); // every node has a nonzero footprint

  // A full copy shares the root: the walk must now report owners > 1 at
  // the top, and a false return must prune the descent.
  HamtSet<int> Copy = S;
  size_t Visited = 0;
  bool SawShared = false;
  S.forEachNode([&](const void *, size_t, uint32_t Owners) {
    ++Visited;
    if (Owners > 1)
      SawShared = true;
    return false; // prune: only the root is visited
  });
  EXPECT_EQ(Visited, 1u);
  EXPECT_TRUE(SawShared);
  (void)Copy;
}
