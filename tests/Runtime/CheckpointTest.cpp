//===- tests/Runtime/CheckpointTest.cpp -------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The `.tcp` checkpoint format (Runtime/Checkpoint.h): suspend a live
/// fleet, serialize, load, restore — into a different shard count, in
/// the middle of an armed delay — and the resumed run is byte-identical
/// to an uninterrupted one. The corruption half mirrors the `.tpb`
/// SerializeTest suite name for name: every truncation and bit flip must
/// fail with a diagnostic, the structural validators behind the checksum
/// must hold on re-stamped payload smashes, a checkpoint from a
/// different program (or format version) is rejected, and the encoding
/// is deterministic. The randomized-corpus byte-identity sweep lives in
/// Integration/CheckpointDifferentialTest.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Checkpoint.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

void patchU64(std::vector<uint8_t> &Bytes, size_t Off, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Bytes[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

void patchU32(std::vector<uint8_t> &Bytes, size_t Off, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Bytes[Off + I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Re-stamps the content checksum after a deliberate payload patch, so
/// tests reach the validation layer *behind* the checksum.
void restamp(std::vector<uint8_t> &Bytes) {
  patchU64(Bytes, 8,
           tpbChecksum(Bytes.data() + TCPChecksumStart,
                       Bytes.size() - TCPChecksumStart));
}

std::string expectLoadFails(const std::vector<uint8_t> &Bytes,
                            const Program &P) {
  DiagnosticEngine Diags;
  auto C = loadCheckpoint(Bytes, P, Diags);
  EXPECT_FALSE(C);
  EXPECT_FALSE(Diags.str().empty());
  return Diags.str();
}

/// One record of the workload trace: (session, ts, value).
struct Rec {
  SessionId Session;
  Time Ts;
  int64_t V;
};

/// The stateful workload for the corruption suites and the round trips:
/// the seen-set spec at -O1 (aggregate state, last slots, pool values)
/// fed by four sessions.
Program workloadProgram() {
  return compileOrDie(seenSet(), /*Optimize=*/true, /*OptLevel=*/1);
}

std::vector<Rec> workloadTrace() {
  std::vector<Rec> Recs;
  for (int64_t I = 1; I <= 24; ++I)
    for (SessionId S = 1; S <= 4; ++S)
      Recs.push_back({S, I, (I * 7 + static_cast<int64_t>(S)) % 13});
  return Recs;
}

std::string renderOutputs(const Spec &S,
                          std::vector<SessionOutputEvent> Outputs) {
  std::string Out;
  for (const SessionOutputEvent &E : Outputs)
    Out += "s" + std::to_string(E.Session) + "| " +
           formatEvent(S, E.Event) + "\n";
  return Out;
}

/// Runs the whole trace straight through a fleet: the reference.
std::string uninterruptedRun(const Program &P, const std::vector<Rec> &Recs,
                             unsigned Shards, StreamId Input,
                             std::optional<Time> Horizon = std::nullopt) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.Horizon = Horizon;
  MonitorFleet Fleet(P, Opts);
  ProducerHandle Prod = Fleet.producer();
  for (const Rec &R : Recs)
    EXPECT_TRUE(Prod.feed(R.Session, Input, R.Ts, Value::integer(R.V)));
  Prod.close();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed());
  return renderOutputs(P.spec(), Fleet.takeOutputs());
}

/// Feeds records with Ts <= SplitTs into a fleet of \p ShardsA shards,
/// suspends, serializes; returns the bytes.
std::vector<uint8_t> checkpointAt(const Program &P,
                                  const std::vector<Rec> &Recs,
                                  Time SplitTs, unsigned ShardsA,
                                  StreamId Input) {
  FleetOptions Opts;
  Opts.Shards = ShardsA;
  MonitorFleet Fleet(P, Opts);
  ProducerHandle Prod = Fleet.producer();
  for (const Rec &R : Recs) {
    if (R.Ts > SplitTs)
      continue;
    EXPECT_TRUE(Prod.feed(R.Session, Input, R.Ts, Value::integer(R.V)));
  }
  Prod.close();
  std::string Err;
  FleetCheckpoint C;
  C.ProgramChecksum = programChecksum(P);
  C.SourceShards = ShardsA;
  C.Lanes = Fleet.suspend(&Err);
  EXPECT_EQ(Err, "");
  EXPECT_FALSE(C.Lanes.empty());
  return serializeCheckpoint(C);
}

/// Loads \p Bytes, restores into a fresh fleet of \p ShardsB shards,
/// feeds the records with Ts > SplitTs and renders the full output
/// trace (pre-suspend outputs travel inside the lane snapshots).
std::string resumeRun(const Program &P, const std::vector<uint8_t> &Bytes,
                      const std::vector<Rec> &Recs, Time SplitTs,
                      unsigned ShardsB, StreamId Input,
                      std::optional<Time> Horizon = std::nullopt) {
  DiagnosticEngine Diags;
  auto C = loadCheckpoint(Bytes, P, Diags);
  EXPECT_TRUE(C) << Diags.str();
  if (!C)
    return std::string();
  FleetOptions Opts;
  Opts.Shards = ShardsB;
  Opts.Horizon = Horizon;
  MonitorFleet Fleet(P, Opts);
  EXPECT_TRUE(Fleet.restore(std::move(C->Lanes)));
  ProducerHandle Prod = Fleet.producer();
  for (const Rec &R : Recs) {
    if (R.Ts <= SplitTs)
      continue;
    EXPECT_TRUE(Prod.feed(R.Session, Input, R.Ts, Value::integer(R.V)));
  }
  Prod.close();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed());
  return renderOutputs(P.spec(), Fleet.takeOutputs());
}

/// A fixed checkpoint for the corruption suites.
std::vector<uint8_t> workloadCheckpoint(const Program &P) {
  return checkpointAt(P, workloadTrace(), 12, 2,
                      *P.spec().lookup("x"));
}

} // namespace

// --- Round trips ------------------------------------------------------------

TEST(CheckpointTest, RestoreIntoDifferentShardCounts) {
  Program P = workloadProgram();
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace();
  std::string Reference = uninterruptedRun(P, Recs, 2, X);
  ASSERT_FALSE(Reference.empty());

  // 2 shards -> {1, 2, 4} shards: the lane snapshots re-home by session
  // hash, and the resumed trace is byte-identical either way.
  std::vector<uint8_t> Bytes = checkpointAt(P, Recs, 12, 2, X);
  for (unsigned ShardsB : {1u, 2u, 4u})
    EXPECT_EQ(resumeRun(P, Bytes, Recs, 12, ShardsB, X), Reference)
        << "restore into " << ShardsB << " shard(s) diverged";

  // And up from one shard.
  std::vector<uint8_t> From1 = checkpointAt(P, Recs, 12, 1, X);
  EXPECT_EQ(resumeRun(P, From1, Recs, 12, 3, X), Reference);
}

TEST(CheckpointTest, MidDelayArmingSurvivesTheCheckpoint) {
  // Suspend while a delay timer is armed but has not fired: x=5 at t=10
  // arms the timer for t=15; the checkpoint is cut at t=12, so the
  // firing happens in the *resumed* fleet. The armed-timer table must
  // travel in the lane snapshot or the t=15 event is silently lost.
  Program P = compileOrDie(parseOrDie(R"(
    in x: Int
    def fire := delay(x, x)
    out fire
  )"));
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = {{1, 10, 5}, {2, 10, 4}, {1, 20, 3}, {2, 21, 2}};
  std::string Reference = uninterruptedRun(P, Recs, 2, X, /*Horizon=*/100);
  ASSERT_NE(Reference.find("15: fire"), std::string::npos) << Reference;

  std::vector<uint8_t> Bytes = checkpointAt(P, Recs, 12, 2, X);
  std::string Resumed =
      resumeRun(P, Bytes, Recs, 12, 3, X, /*Horizon=*/100);
  EXPECT_EQ(Resumed, Reference);
}

TEST(CheckpointTest, DeterministicEncoding) {
  Program P = workloadProgram();
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace();
  // Two identical suspended fleets serialize to identical bytes, and a
  // load/serialize round trip reproduces them exactly.
  std::vector<uint8_t> A = checkpointAt(P, Recs, 12, 2, X);
  std::vector<uint8_t> B = checkpointAt(P, Recs, 12, 2, X);
  EXPECT_EQ(A, B) << "checkpoint encoding is not canonical";

  DiagnosticEngine Diags;
  auto C = loadCheckpoint(A, P, Diags);
  ASSERT_TRUE(C) << Diags.str();
  EXPECT_EQ(serializeCheckpoint(*C), A)
      << "re-serialization diverged from the original bytes";
}

TEST(CheckpointTest, RestoreRejectsDuplicateAndLiveSessions) {
  Program P = workloadProgram();
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace();
  std::vector<uint8_t> Bytes = checkpointAt(P, Recs, 12, 2, X);
  DiagnosticEngine Diags;
  auto C = loadCheckpoint(Bytes, P, Diags);
  ASSERT_TRUE(C) << Diags.str();

  // Duplicate session ids in one restore batch are rejected outright.
  {
    auto Dup = C->Lanes;
    Dup.push_back(Dup.front());
    FleetOptions Opts;
    Opts.Shards = 2;
    MonitorFleet Fleet(P, Opts);
    EXPECT_FALSE(Fleet.restore(std::move(Dup)));
    Fleet.finish();
  }

  // A finished fleet accepts no restore.
  {
    FleetOptions Opts;
    Opts.Shards = 2;
    MonitorFleet Fleet(P, Opts);
    Fleet.finish();
    EXPECT_FALSE(Fleet.restore(std::move(C->Lanes)));
  }
}

// --- Robust loading: truncation and corruption ------------------------------

TEST(CheckpointTest, EveryTruncationFailsCleanly) {
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  ASSERT_GT(Bytes.size(), 64u);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    DiagnosticEngine Diags;
    auto C = loadCheckpoint(Prefix, P, Diags);
    EXPECT_FALSE(C) << "truncation to " << Len << " bytes loaded";
    EXPECT_FALSE(Diags.str().empty()) << "silent failure at " << Len;
  }
}

TEST(CheckpointTest, EveryBitFlipFailsCleanly) {
  // The checksum covers every byte past offset 16 and the header fields
  // are validated individually, so no single-bit corruption anywhere in
  // the checkpoint may load — and none may crash.
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  for (size_t Off = 0; Off != Bytes.size(); ++Off) {
    for (unsigned Bit = 0; Bit < 8; Bit += 3) { // bits 0, 3, 6
      std::vector<uint8_t> Flipped = Bytes;
      Flipped[Off] ^= static_cast<uint8_t>(1u << Bit);
      DiagnosticEngine Diags;
      auto C = loadCheckpoint(Flipped, P, Diags);
      EXPECT_FALSE(C) << "bit " << Bit << " at offset " << Off;
      EXPECT_FALSE(Diags.str().empty());
    }
  }
}

TEST(CheckpointTest, PostChecksumValidationStillFires) {
  // Corrupt a payload byte *and* re-stamp the checksum: the structural
  // validators behind the checksum must catch it, or the checkpoint must
  // still verify (a benign smash inside a value payload) — never crash.
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  size_t Rejected = 0;
  for (size_t Off = TCPChecksumStart; Off != Bytes.size(); ++Off) {
    std::vector<uint8_t> Patched = Bytes;
    Patched[Off] ^= 0xFF;
    restamp(Patched);
    DiagnosticEngine Diags;
    auto C = loadCheckpoint(Patched, P, Diags);
    if (!C) {
      ++Rejected;
      EXPECT_FALSE(Diags.str().empty()) << "silent failure at " << Off;
    }
  }
  // Lane payloads are value-dense, so single-byte smashes can decode to
  // different-but-valid state; the structural layer must still reject a
  // solid share (section table, sizes, stream ids, program binding).
  EXPECT_GT(Rejected, (Bytes.size() - TCPChecksumStart) / 4)
      << "validators are too permissive";
}

TEST(CheckpointTest, EmptyAndGarbageInputs) {
  Program P = workloadProgram();
  EXPECT_NE(expectLoadFails({}, P).find("truncated"), std::string::npos);
  std::vector<uint8_t> Garbage(256, 0xAB);
  EXPECT_NE(expectLoadFails(Garbage, P).find("magic"), std::string::npos);
}

TEST(CheckpointTest, VersionMismatchIsRejected) {
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  patchU32(Bytes, 4, TCPFormatVersion + 1);
  EXPECT_NE(expectLoadFails(Bytes, P).find("version"), std::string::npos);
}

TEST(CheckpointTest, ProgramChecksumMismatchIsRejected) {
  // A checkpoint restores only against the exact program it was taken
  // from: same spec at a different optimization level is already a
  // different program.
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  Program Other = compileOrDie(seenSet(), /*Optimize=*/false,
                               /*OptLevel=*/0);
  ASSERT_NE(programChecksum(Other), programChecksum(P));
  EXPECT_NE(expectLoadFails(Bytes, Other).find("different program"),
            std::string::npos);
}

TEST(CheckpointTest, ChecksumDetectsPayloadCorruption) {
  Program P = workloadProgram();
  std::vector<uint8_t> Bytes = workloadCheckpoint(P);
  Bytes[Bytes.size() / 2] ^= 0x40;
  EXPECT_NE(expectLoadFails(Bytes, P).find("checksum"), std::string::npos);
}

TEST(CheckpointTest, FileRoundTripAndMissingFile) {
  Program P = workloadProgram();
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace();
  std::vector<uint8_t> Bytes = checkpointAt(P, Recs, 12, 2, X);
  DiagnosticEngine LDiags;
  auto C = loadCheckpoint(Bytes, P, LDiags);
  ASSERT_TRUE(C) << LDiags.str();

  std::string Path = ::testing::TempDir() + "tessla_ck_" +
                     std::to_string(::getpid()) + ".tcp";
  DiagnosticEngine WDiags;
  ASSERT_TRUE(writeCheckpointFile(*C, Path, WDiags)) << WDiags.str();
  DiagnosticEngine RDiags;
  auto Loaded = loadCheckpointFile(Path, P, RDiags);
  ASSERT_TRUE(Loaded) << RDiags.str();
  EXPECT_EQ(serializeCheckpoint(*Loaded), Bytes);
  std::remove(Path.c_str());

  DiagnosticEngine MDiags;
  EXPECT_FALSE(loadCheckpointFile(Path + ".missing", P, MDiags));
  EXPECT_FALSE(MDiags.str().empty());
}

// --- Structural sharing across the round trip -------------------------------

TEST(CheckpointTest, ForkedSessionsShareStructureAcrossRoundTrip) {
  // forkSession() shares every aggregate handle between the two lanes;
  // the checkpoint codec must encode the shared payload once (back-refs)
  // and the decoder must restore the *same* sharing, not two equal
  // copies — that property is what keeps a checkpoint of N forks O(1)
  // in N on the aggregate bytes.
  Program P = workloadProgram();
  StreamId X = *P.spec().lookup("x");
  FleetOptions Opts;
  Opts.Shards = 2;
  MonitorFleet Fleet(P, Opts);
  {
    ProducerHandle Prod = Fleet.producer();
    for (int64_t I = 1; I <= 64; ++I)
      ASSERT_TRUE(Prod.feed(1, X, I, Value::integer((I * 11) % 50)));
    Prod.close();
  }
  std::string Err;
  ASSERT_TRUE(Fleet.forkSession(1, 2, &Err)) << Err;

  FleetCheckpoint C;
  C.ProgramChecksum = programChecksum(P);
  C.SourceShards = 2;
  C.Lanes = Fleet.suspend(&Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(C.Lanes.size(), 2u);

  auto laneOf = [](std::vector<EngineLaneState> &Lanes, SessionId S)
      -> EngineLaneState & {
    for (EngineLaneState &L : Lanes)
      if (L.Session == S)
        return L;
    ADD_FAILURE() << "session " << S << " missing";
    return Lanes.front();
  };
  auto aggIdentities = [](const EngineLaneState &L) {
    std::vector<const void *> Ids;
    for (const Value &V : L.Cur)
      if (V.isAggregate())
        Ids.push_back(V.aggregateIdentity());
    for (const Value &V : L.LastVal)
      if (V.isAggregate())
        Ids.push_back(V.aggregateIdentity());
    return Ids;
  };

  auto IdsA = aggIdentities(laneOf(C.Lanes, 1));
  auto IdsB = aggIdentities(laneOf(C.Lanes, 2));
  ASSERT_FALSE(IdsA.empty()) << "workload carries no aggregate state";
  EXPECT_EQ(IdsA, IdsB) << "fork did not share the aggregate handles";

  std::vector<uint8_t> Shared = serializeCheckpoint(C);

  DiagnosticEngine Diags;
  auto Loaded = loadCheckpoint(Shared, P, Diags);
  ASSERT_TRUE(Loaded) << Diags.str();
  ASSERT_EQ(Loaded->Lanes.size(), 2u);
  auto ReIdsA = aggIdentities(laneOf(Loaded->Lanes, 1));
  auto ReIdsB = aggIdentities(laneOf(Loaded->Lanes, 2));
  ASSERT_FALSE(ReIdsA.empty());
  EXPECT_EQ(ReIdsA, ReIdsB)
      << "decode produced equal copies instead of shared structure";
  EXPECT_EQ(serializeCheckpoint(*Loaded), Shared)
      << "re-serialization with back-references is not canonical";

  // Same monitor content built as two *independent* sessions encodes
  // every aggregate twice — strictly larger than the shared encoding.
  MonitorFleet Indep(P, Opts);
  {
    ProducerHandle Prod = Indep.producer();
    for (int64_t I = 1; I <= 64; ++I)
      for (SessionId S = 1; S <= 2; ++S)
        ASSERT_TRUE(Prod.feed(S, X, I, Value::integer((I * 11) % 50)));
    Prod.close();
  }
  FleetCheckpoint CI;
  CI.ProgramChecksum = programChecksum(P);
  CI.SourceShards = 2;
  CI.Lanes = Indep.suspend(&Err);
  ASSERT_EQ(Err, "");
  EXPECT_LT(Shared.size(), serializeCheckpoint(CI).size())
      << "shared aggregates were not deduplicated on the wire";

  Fleet.finish();
  Indep.finish();
}
