//===- tests/Runtime/MonitorTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Operator and triggering-section semantics (§II, §III) through the
/// interpreter engine, in both optimized and baseline configurations.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

struct Runner {
  Spec S;
  Program Plan;

  Runner(Spec Spec_, bool Optimize = true)
      : S(std::move(Spec_)), Plan(compileOrDie(S, Optimize)) {}

  /// Runs events given as (name, ts, value) and renders the output trace.
  std::string run(
      const std::vector<std::tuple<std::string, Time, Value>> &Events,
      std::optional<Time> Horizon = std::nullopt) {
    std::vector<TraceEvent> Mapped;
    for (const auto &[Name, Ts, V] : Events)
      Mapped.emplace_back(*S.lookup(Name), Ts, V);
    std::string Error;
    auto Out = runMonitor(Plan, Mapped, Horizon, &Error);
    EXPECT_EQ(Error, "");
    return formatOutputs(Plan.spec(), Out);
  }
};

} // namespace

TEST(MonitorTest, UnitAndConstFireAtZero) {
  Runner R(parseOrDie(R"(
    in a: Int
    def u := unit
    def c := default(a, 41)
    out u
    out c
  )"));
  EXPECT_EQ(R.run({{"a", 5, Value::integer(7)}}),
            "0: u = ()\n0: c = 41\n5: c = 7\n");
}

TEST(MonitorTest, UnitFiresWithoutAnyInput) {
  Runner R(parseOrDie(R"(
    in a: Int
    def u := unit
    out u
  )"));
  EXPECT_EQ(R.run({}), "0: u = ()\n");
}

TEST(MonitorTest, TimeOperator) {
  Runner R(parseOrDie(R"(
    in a: Int
    def t := time(a)
    out t
  )"));
  EXPECT_EQ(R.run({{"a", 3, Value::integer(100)},
                   {"a", 8, Value::integer(200)}}),
            "3: t = 3\n8: t = 8\n");
}

TEST(MonitorTest, LiftAllNeedsAllArguments) {
  Runner R(parseOrDie(R"(
    in a: Int
    in b: Int
    def x := a + b
    out x
  )"));
  EXPECT_EQ(R.run({{"a", 1, Value::integer(10)},
                   {"b", 2, Value::integer(5)},
                   {"a", 3, Value::integer(1)},
                   {"b", 3, Value::integer(2)}}),
            "3: x = 3\n");
}

TEST(MonitorTest, MergePrioritizesFirstStream) {
  Runner R(parseOrDie(R"(
    in a: Int
    in b: Int
    def m := merge(a, b)
    out m
  )"));
  EXPECT_EQ(R.run({{"a", 1, Value::integer(1)},
                   {"b", 2, Value::integer(2)},
                   {"a", 3, Value::integer(3)},
                   {"b", 3, Value::integer(99)}}),
            "1: m = 1\n2: m = 2\n3: m = 3\n");
}

TEST(MonitorTest, LastIsStrict) {
  Runner R(parseOrDie(R"(
    in v: Int
    in t: Int
    def l := last(v, t)
    out l
  )"));
  // t at 1: v uninitialized -> no event. t at 4: last v value is 10 (the
  // value at 2, not the simultaneous one at 4).
  EXPECT_EQ(R.run({{"t", 1, Value::integer(0)},
                   {"v", 2, Value::integer(10)},
                   {"v", 4, Value::integer(20)},
                   {"t", 4, Value::integer(0)},
                   {"t", 5, Value::integer(0)}}),
            "4: l = 10\n5: l = 20\n");
}

TEST(MonitorTest, FilterPassesOnTrueOnly) {
  Runner R(parseOrDie(R"(
    in a: Int
    def f := filter(a, a % 2 == 0)
    out f
  )"));
  EXPECT_EQ(R.run({{"a", 1, Value::integer(3)},
                   {"a", 2, Value::integer(4)},
                   {"a", 3, Value::integer(5)}}),
            "2: f = 4\n");
}

TEST(MonitorTest, CounterRecursion) {
  // The standard TeSSLa counting idiom (recursion through last).
  Runner R(parseOrDie(R"(
    in x: Int
    def c := merge(last(c, x) + 1, 0)
    out c
  )"));
  EXPECT_EQ(R.run({{"x", 2, Value::integer(0)},
                   {"x", 5, Value::integer(0)},
                   {"x", 9, Value::integer(0)}}),
            "0: c = 0\n2: c = 1\n5: c = 2\n9: c = 3\n");
}

TEST(MonitorTest, HeldLiteralArithmetic) {
  Runner R(parseOrDie(R"(
    in a: Int
    def x := a * 2 + 1
    out x
  )"));
  EXPECT_EQ(R.run({{"a", 1, Value::integer(3)},
                   {"a", 7, Value::integer(10)}}),
            "1: x = 7\n7: x = 21\n");
}

TEST(MonitorTest, DelayFiresAfterReset) {
  Runner R(parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    out d
  )"));
  // r=5 at t=10 arms the timer for t=15; no reset in between.
  EXPECT_EQ(R.run({{"r", 10, Value::integer(5)},
                   {"r", 30, Value::integer(100)}},
                  /*Horizon=*/200),
            "15: d = ()\n130: d = ()\n");
}

TEST(MonitorTest, DelayCancelledByReset) {
  Runner R(parseOrDie(R"(
    in r: Int
    in c: Int
    def d := delay(r, merge(time(r), time(c)))
    out d
  )"));
  // Armed at 10 (+50 -> 60), but the reset at 20 carries no delay value:
  // cancelled. Re-armed at 40 (+5 -> fires at 45).
  EXPECT_EQ(R.run({{"r", 10, Value::integer(50)},
                   {"c", 20, Value::integer(0)},
                   {"r", 40, Value::integer(5)}},
                  /*Horizon=*/1000),
            "45: d = ()\n");
}

TEST(MonitorTest, DelayGeneratesBetweenInputs) {
  // The triggering section must run calculation steps at delay
  // timestamps that fall between input events (§III-B).
  Runner R(parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    def both := merge(time(d), time(r))
    out both
  )"));
  EXPECT_EQ(R.run({{"r", 10, Value::integer(3)},
                   {"r", 20, Value::integer(100)}},
                  /*Horizon=*/50),
            "10: both = 10\n13: both = 13\n20: both = 20\n");
}

TEST(MonitorTest, PeriodicDelayWithHorizon) {
  // Periodic clock: the delay stream itself is an implicit reset
  // (§III-B), so delay(10, unit) keeps firing every 10 units after the
  // unit kick-off, bounded by the finish horizon.
  Runner R(parseOrDie(R"(
    def tick := delay(10, unit)
    def t := time(tick)
    out t
  )"));
  EXPECT_EQ(R.run({}, /*Horizon=*/35), "10: t = 10\n20: t = 20\n30: t = 30\n");
}

TEST(MonitorTest, SeenSetBehavior) {
  Runner R(seenSet());
  EXPECT_EQ(R.run({{"x", 1, Value::integer(7)},
                   {"x", 2, Value::integer(7)},
                   {"x", 3, Value::integer(7)},
                   {"x", 4, Value::integer(9)}}),
            "1: seen = false\n2: seen = true\n3: seen = false\n"
            "4: seen = false\n");
}

TEST(MonitorTest, Figure1SetAccumulation) {
  Runner R(figure1());
  EXPECT_EQ(R.run({{"i", 1, Value::integer(1)},
                   {"i", 2, Value::integer(2)},
                   {"i", 3, Value::integer(1)}}),
            "1: s = false\n2: s = false\n3: s = true\n");
}

TEST(MonitorTest, BaselineProducesSameOutputs) {
  Runner Opt(figure1(), /*Optimize=*/true);
  Runner Base(figure1(), /*Optimize=*/false);
  std::vector<std::tuple<std::string, Time, Value>> Events;
  for (int I = 0; I != 50; ++I)
    Events.push_back({"i", I + 1, Value::integer(I % 7)});
  std::string Optimized = Opt.run(Events);
  std::string Baseline = Base.run(Events);
  EXPECT_EQ(Optimized, Baseline);
  EXPECT_FALSE(Optimized.empty()) << "vacuous comparison";
  EXPECT_GT(Opt.Plan.inPlaceStepCount(), 0u);
  EXPECT_EQ(Base.Plan.inPlaceStepCount(), 0u);
}

// Pins the output-handler contract documented in Monitor.h: storing the
// Value shallowly is safe. A handler-held handle is a sharer, so a later
// in-place-verdict update sees the share and path-copies instead of
// mutating through it — the stored value never changes, in either
// regime, and deepCopy() is the O(1) identity.
TEST(MonitorTest, OutputHandlerValuesAreStableSnapshots) {
  Spec S = parseOrDie(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def y := setAdd(prev, x)
    out y
  )");
  auto RunAndSnapshot = [&](bool Optimize, Value &Shallow, Value &Deep) {
    Program Plan = compileOrDie(S, Optimize);
    EXPECT_EQ(Plan.inPlaceStepCount() > 0, Optimize)
        << "mutability premise broken; test is vacuous";
    Monitor M(Plan);
    bool First = true;
    M.setOutputHandler([&](Time, StreamId, const Value &V) {
      if (!First)
        return;
      First = false;
      Shallow = V;            // shares the aggregate handle
      Deep = V.deepCopy();    // snapshot
    });
    for (int I = 0; I != 5; ++I)
      M.feed(*S.lookup("x"), I + 1, Value::integer(I));
    M.finish();
    EXPECT_FALSE(M.failed()) << M.errorMessage();
  };

  Value Shallow, Deep;
  RunAndSnapshot(/*Optimize=*/true, Shallow, Deep);
  // The first emission was {0}; the four later adds path-copied because
  // the handler's handle kept the old version alive.
  EXPECT_EQ(Deep.str(), "{0}");
  EXPECT_EQ(Shallow.str(), "{0}");
  EXPECT_EQ(Shallow, Deep);
  EXPECT_EQ(Shallow.aggregateIdentity(), Deep.aggregateIdentity())
      << "deepCopy shares the handle";

  // Baseline: every update path-copies anyway.
  RunAndSnapshot(/*Optimize=*/false, Shallow, Deep);
  EXPECT_EQ(Deep.str(), "{0}");
  EXPECT_EQ(Shallow.str(), "{0}");
  EXPECT_EQ(Shallow, Deep);
}

TEST(MonitorTest, OutOfOrderInputRejected) {
  Spec S = parseOrDie("in a: Int\ndef t := time(a)\nout t");
  Program Plan = compileOrDie(S);
  Monitor M(Plan);
  EXPECT_TRUE(M.feed(*S.lookup("a"), 10, Value::integer(1)));
  EXPECT_FALSE(M.feed(*S.lookup("a"), 5, Value::integer(2)));
  EXPECT_TRUE(M.failed());
  EXPECT_NE(M.errorMessage().find("order"), std::string::npos);
}

TEST(MonitorTest, DuplicateEventSameTimestampRejected) {
  Spec S = parseOrDie("in a: Int\ndef t := time(a)\nout t");
  Program Plan = compileOrDie(S);
  Monitor M(Plan);
  EXPECT_TRUE(M.feed(*S.lookup("a"), 10, Value::integer(1)));
  EXPECT_FALSE(M.feed(*S.lookup("a"), 10, Value::integer(2)));
  EXPECT_TRUE(M.failed());
}

TEST(MonitorTest, RuntimeErrorsSurface) {
  Spec S = parseOrDie(R"(
    in a: Int
    def x := 10 / a
    out x
  )");
  Program Plan = compileOrDie(S);
  Monitor M(Plan);
  M.feed(*S.lookup("a"), 1, Value::integer(0));
  M.finish();
  EXPECT_TRUE(M.failed());
  EXPECT_NE(M.errorMessage().find("division by zero"), std::string::npos)
      << M.errorMessage();
}

TEST(MonitorTest, FeedAfterFinishRejected) {
  Spec S = parseOrDie("in a: Int\ndef t := time(a)\nout t");
  Program Plan = compileOrDie(S);
  Monitor M(Plan);
  M.finish();
  EXPECT_FALSE(M.feed(*S.lookup("a"), 1, Value::integer(1)));
}

TEST(MonitorTest, PlanPrintingShowsOrderAndInPlaceMarkers) {
  Runner R(figure1());
  std::string Text = R.Plan.str();
  // Steps in translation order: the read (s) precedes the write (y).
  size_t ReadPos = Text.find("s = setContains");
  size_t WritePos = Text.find("y = setAdd");
  ASSERT_NE(ReadPos, std::string::npos) << Text;
  ASSERT_NE(WritePos, std::string::npos);
  EXPECT_LT(ReadPos, WritePos);
  EXPECT_NE(Text.find("[in-place]"), std::string::npos);
  // Baseline plan has no in-place markers.
  Runner Base(figure1(), /*Optimize=*/false);
  EXPECT_EQ(Base.Plan.str().find("[in-place]"), std::string::npos);
}

TEST(MonitorTest, StatsCounters) {
  Runner R(figure1());
  Monitor M(R.Plan);
  M.feed(*R.S.lookup("i"), 1, Value::integer(1));
  M.feed(*R.S.lookup("i"), 2, Value::integer(2));
  M.finish();
  EXPECT_FALSE(M.failed());
  EXPECT_GE(M.calcRuns(), 3u); // t=0 implicit + two input timestamps
  EXPECT_EQ(M.outputEvents(), 2u);
}
