//===- tests/Runtime/FleetServiceTest.cpp -----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The monitor service end to end: a FleetServer driven through real
/// transports (socketpair pipes and a Unix-domain socket) by the remote
/// FleetClient, held against the in-process client over the same
/// workload — byte-identical outputs, identical counters. Covers the
/// full session lifecycle over the wire (handshake, multi-producer
/// feed, snapshot, restore into a fresh server, finish, stats,
/// shutdown), wire-level backpressure (Busy frames reaching
/// busySignals()), and the protocol error paths: version mismatch,
/// control operations while producers are open, restore after feeding.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/FleetClient.h"
#include "tessla/Runtime/FleetServer.h"
#include "tessla/Runtime/Checkpoint.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// One record of the workload trace.
struct Rec {
  SessionId Session;
  Time Ts;
  int64_t V;
};

std::vector<Rec> workloadTrace(unsigned Sessions, int64_t Events) {
  std::vector<Rec> Recs;
  for (int64_t I = 1; I <= Events; ++I)
    for (SessionId S = 1; S <= Sessions; ++S)
      Recs.push_back({S, I, (I * 7 + static_cast<int64_t>(S)) % 23});
  return Recs;
}

std::string renderFinish(const Spec &S, const FleetFinish &R) {
  std::string Out;
  for (const SessionOutputEvent &E : R.Outputs)
    Out += "s" + std::to_string(E.Session) + "| " +
           formatEvent(S, E.Event) + "\n";
  return Out;
}

/// Pipe-backed server harness: each dial spins up a server-side
/// connection thread over one end of a fresh socketpair and hands the
/// other end to the client. The harness joins the connection threads on
/// destruction (after the client closed its ends).
class PipeServer {
public:
  PipeServer(const Program &P, FleetOptions Opts = {})
      : Server(P, std::move(Opts)) {}

  ~PipeServer() {
    for (std::thread &T : Threads)
      T.join();
  }

  TransportDialer dialer() {
    return [this](std::string *) -> std::unique_ptr<Transport> {
      auto [ClientEnd, ServerEnd] = makePipeTransportPair();
      std::lock_guard<std::mutex> L(Mu);
      Threads.emplace_back(
          [this, End = std::move(ServerEnd)]() mutable {
            Server.handleConnection(std::move(End));
          });
      return std::move(ClientEnd);
    };
  }

  FleetServer Server;

private:
  std::mutex Mu;
  std::vector<std::thread> Threads;
};

/// Runs \p Recs through \p Client over \p Producers endpoints
/// (sessions partitioned round-robin) and finishes; returns the
/// rendered outputs.
std::string runWorkload(FleetClient &Client, const Spec &S, StreamId X,
                        const std::vector<Rec> &Recs, unsigned Producers,
                        uint64_t *BusyOut = nullptr) {
  std::vector<std::thread> Threads;
  std::vector<uint64_t> Busy(Producers, 0);
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      std::string Err;
      auto Prod = Client.producer(&Err);
      ASSERT_TRUE(Prod) << Err;
      for (const Rec &R : Recs) {
        if (R.Session % Producers != P)
          continue;
        ASSERT_TRUE(Prod->feed(R.Session, X, R.Ts, Value::integer(R.V)))
            << Prod->error();
      }
      ASSERT_TRUE(Prod->close()) << Prod->error();
      Busy[P] = Prod->busySignals();
    });
  for (std::thread &T : Threads)
    T.join();
  if (BusyOut)
    for (uint64_t B : Busy)
      *BusyOut += B;
  std::string Err;
  auto R = Client.finish(&Err);
  EXPECT_TRUE(R) << Err;
  if (!R)
    return std::string();
  EXPECT_EQ(R->FailedSessions, 0u);
  EXPECT_EQ(R->TotalOutputs, R->Outputs.size());
  return renderFinish(S, *R);
}

} // namespace

TEST(FleetServiceTest, RemoteMatchesInProcessByteForByte) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace(6, 30);

  FleetOptions Opts;
  Opts.Shards = 2;
  auto InProc = makeInProcessClient(P, Opts);
  std::string Reference = runWorkload(*InProc, P.spec(), X, Recs, 2);
  ASSERT_FALSE(Reference.empty());

  PipeServer Server(P, Opts);
  std::string Err;
  uint64_t RemoteChecksum = 0;
  auto Remote = makeRemoteClient(Server.dialer(), &Err, &RemoteChecksum);
  ASSERT_TRUE(Remote) << Err;
  EXPECT_EQ(RemoteChecksum, programChecksum(P))
      << "HelloAck must carry the server program's identity";
  EXPECT_EQ(runWorkload(*Remote, P.spec(), X, Recs, 2), Reference);
}

TEST(FleetServiceTest, SnapshotRestoreOverTheWire) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace(4, 24);
  const Time SplitTs = 12;

  FleetOptions Opts;
  Opts.Shards = 2;
  auto InProc = makeInProcessClient(P, Opts);
  std::string Reference = runWorkload(*InProc, P.spec(), X, Recs, 1);

  // Server 1: feed the head over the wire, take a live snapshot.
  PipeServer ServerA(P, Opts);
  std::string Err;
  auto RemoteA = makeRemoteClient(ServerA.dialer(), &Err);
  ASSERT_TRUE(RemoteA) << Err;
  {
    auto Prod = RemoteA->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    for (const Rec &R : Recs)
      if (R.Ts <= SplitTs)
        ASSERT_TRUE(Prod->feed(R.Session, X, R.Ts, Value::integer(R.V)));
    ASSERT_TRUE(Prod->close()) << Prod->error();
  }
  auto Bytes = RemoteA->snapshot(&Err);
  ASSERT_TRUE(Bytes) << Err;
  EXPECT_FALSE(Bytes->empty());

  // The snapshot is *live*: server 1 keeps running and finishes the
  // whole trace itself...
  {
    auto Prod = RemoteA->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    for (const Rec &R : Recs)
      if (R.Ts > SplitTs)
        ASSERT_TRUE(Prod->feed(R.Session, X, R.Ts, Value::integer(R.V)));
    ASSERT_TRUE(Prod->close()) << Prod->error();
  }
  auto FinishA = RemoteA->finish(&Err);
  ASSERT_TRUE(FinishA) << Err;
  EXPECT_EQ(renderFinish(P.spec(), *FinishA), Reference);

  // ...while server 2 — a different process in production, a fresh
  // fleet with a different shard count here — resumes from the bytes
  // and produces the identical trace.
  FleetOptions OptsB;
  OptsB.Shards = 3;
  PipeServer ServerB(P, OptsB);
  auto RemoteB = makeRemoteClient(ServerB.dialer(), &Err);
  ASSERT_TRUE(RemoteB) << Err;
  auto Lanes = RemoteB->restore(*Bytes, &Err);
  ASSERT_TRUE(Lanes) << Err;
  EXPECT_EQ(*Lanes, 4u);
  {
    auto Prod = RemoteB->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    for (const Rec &R : Recs)
      if (R.Ts > SplitTs)
        ASSERT_TRUE(Prod->feed(R.Session, X, R.Ts, Value::integer(R.V)));
    ASSERT_TRUE(Prod->close()) << Prod->error();
  }
  auto FinishB = RemoteB->finish(&Err);
  ASSERT_TRUE(FinishB) << Err;
  EXPECT_EQ(renderFinish(P.spec(), *FinishB), Reference);

  // Stats render after a finish (the ShardStats::str() key-value form).
  auto Stats = RemoteB->statsText(&Err);
  ASSERT_TRUE(Stats) << Err;
  EXPECT_NE(Stats->find("sessions"), std::string::npos) << *Stats;
}

TEST(FleetServiceTest, BusyFramesSurfaceBackpressure) {
  // Tiny rings, one shard doing aggregate work, a producer hammering
  // batches of one record: the shard falls behind, the in-process feed
  // blocks (counted), and the count must travel back as Busy frames to
  // the remote producer's busySignals().
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  FleetOptions Opts;
  Opts.Shards = 1;
  Opts.BatchSize = 1;
  Opts.QueueCapacity = 4;
  PipeServer Server(P, Opts);
  std::string Err;
  auto Remote = makeRemoteClient(Server.dialer(), &Err);
  ASSERT_TRUE(Remote) << Err;

  std::vector<Rec> Recs = workloadTrace(4, 800);
  uint64_t Busy = 0;
  std::string Out = runWorkload(*Remote, P.spec(), X, Recs, 1, &Busy);
  ASSERT_FALSE(Out.empty());
  EXPECT_GT(Busy, 0u)
      << "3200 records through a 4-batch ring never stalled; "
         "backpressure reporting is vacuous";
}

TEST(FleetServiceTest, WrongWireVersionIsRefused) {
  Program P = compileOrDie(seenSet(), true, 1);
  PipeServer Server(P);
  auto Dial = Server.dialer();
  auto Conn = Dial(nullptr);
  ASSERT_TRUE(Conn);

  // A Hello from the future: u32 version nobody implements.
  uint32_t Bad = WireFormatVersion + 7;
  std::vector<uint8_t> Payload(4);
  for (unsigned I = 0; I != 4; ++I)
    Payload[I] = static_cast<uint8_t>(Bad >> (8 * I));
  ASSERT_TRUE(Conn->send(encodeFrame(FrameType::Hello, Payload)));

  FrameDecoder Dec;
  std::string Err;
  auto Frame = recvFrame(*Conn, Dec, Err);
  ASSERT_TRUE(Frame) << Err;
  EXPECT_EQ(Frame->Type, FrameType::Error);
  auto Msg = decodeString(Frame->Payload.data(), Frame->Payload.size(), Err);
  ASSERT_TRUE(Msg) << Err;
  EXPECT_NE(Msg->find("version"), std::string::npos) << *Msg;

  // The server drops the connection after any Error frame.
  uint8_t Byte;
  EXPECT_EQ(Conn->recv(&Byte, 1), 0);
  Conn->close();
}

TEST(FleetServiceTest, ControlRequiresQuiescence) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");

  // In-process: the rejection is synchronous and the client survives.
  auto Client = makeInProcessClient(P);
  std::string Err;
  auto Prod = Client->producer(&Err);
  ASSERT_TRUE(Prod) << Err;
  EXPECT_FALSE(Client->snapshot(&Err));
  EXPECT_NE(Err.find("producer"), std::string::npos) << Err;
  EXPECT_FALSE(Client->finish(&Err));
  ASSERT_TRUE(Prod->feed(1, X, 1, Value::integer(3)));
  ASSERT_TRUE(Prod->close());
  // Quiescent again: control operations work.
  auto R = Client->finish(&Err);
  ASSERT_TRUE(R) << Err;
  EXPECT_GT(R->TotalOutputs, 0u);
}

TEST(FleetServiceTest, RemoteControlWhileProducerOpenGetsErrorFrame) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  PipeServer Server(P);
  std::string Err;
  auto Remote = makeRemoteClient(Server.dialer(), &Err);
  ASSERT_TRUE(Remote) << Err;

  auto Prod = Remote->producer(&Err);
  ASSERT_TRUE(Prod) << Err;
  ASSERT_TRUE(Prod->feed(1, X, 1, Value::integer(3)));
  ASSERT_TRUE(Prod->flush());

  // The server-side producer materializes when the Batch frame is
  // *processed*, on the connection thread — wait until the running
  // stats show it.
  for (int I = 0; I != 5000; ++I) {
    auto S = Remote->statsText(&Err);
    ASSERT_TRUE(S) << Err;
    if (S->find("producers-open=1") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Snapshot with an open producer: an Error frame, and the control
  // connection is gone afterwards (wire errors are fatal per
  // connection).
  EXPECT_FALSE(Remote->snapshot(&Err));
  EXPECT_NE(Err.find("producer"), std::string::npos) << Err;
  EXPECT_FALSE(Remote->statsText(&Err));

  // The producer connection is unaffected; its lifecycle completes.
  ASSERT_TRUE(Prod->close()) << Prod->error();
}

TEST(FleetServiceTest, RestoreAfterFeedingIsRejected) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");

  // Build a valid checkpoint first.
  auto Donor = makeInProcessClient(P);
  std::string Err;
  {
    auto Prod = Donor->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    ASSERT_TRUE(Prod->feed(1, X, 1, Value::integer(3)));
    ASSERT_TRUE(Prod->close());
  }
  auto Bytes = Donor->snapshot(&Err);
  ASSERT_TRUE(Bytes) << Err;

  // A client that already fed is no longer fresh: restore is refused,
  // in-process and over the wire alike.
  auto Client = makeInProcessClient(P);
  {
    auto Prod = Client->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    ASSERT_TRUE(Prod->feed(2, X, 1, Value::integer(4)));
    ASSERT_TRUE(Prod->close());
  }
  EXPECT_FALSE(Client->restore(*Bytes, &Err));
  EXPECT_FALSE(Err.empty());

  PipeServer Server(P);
  auto Remote = makeRemoteClient(Server.dialer(), &Err);
  ASSERT_TRUE(Remote) << Err;
  {
    auto Prod = Remote->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    ASSERT_TRUE(Prod->feed(2, X, 1, Value::integer(4)));
    ASSERT_TRUE(Prod->close());
  }
  EXPECT_FALSE(Remote->restore(*Bytes, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(FleetServiceTest, GarbageBytesPoisonTheConnection) {
  Program P = compileOrDie(seenSet(), true, 1);
  PipeServer Server(P);
  auto Dial = Server.dialer();
  auto Conn = Dial(nullptr);
  ASSERT_TRUE(Conn);

  std::vector<uint8_t> Garbage(64, 0xAB);
  ASSERT_TRUE(Conn->send(Garbage));

  // The server answers a malformed stream with an Error frame (or just
  // hangs up); either way the connection reaches end-of-stream without
  // the server crashing.
  FrameDecoder Dec;
  std::string Err;
  auto Frame = recvFrame(*Conn, Dec, Err);
  if (Frame)
    EXPECT_EQ(Frame->Type, FrameType::Error);
  uint8_t Byte;
  EXPECT_LE(Conn->recv(&Byte, 1), 0);
  Conn->close();
}

TEST(FleetServiceTest, UnixSocketLifecycleWithShutdown) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace(4, 20);

  FleetOptions Opts;
  Opts.Shards = 2;
  auto InProc = makeInProcessClient(P, Opts);
  std::string Reference = runWorkload(*InProc, P.spec(), X, Recs, 2);

  std::string Path = ::testing::TempDir() + "tessla_svc_" +
                     std::to_string(::getpid()) + ".sock";
  std::string Err;
  auto L = listenUnixSocket(Path, &Err);
  ASSERT_TRUE(L) << Err;
  FleetServer Server(P, Opts);
  std::thread Serve([&] { Server.serve(*L); });

  uint64_t Checksum = 0;
  auto Remote = makeUnixSocketClient(Path, &Err, &Checksum);
  ASSERT_TRUE(Remote) << Err;
  EXPECT_EQ(Checksum, programChecksum(P));
  EXPECT_EQ(runWorkload(*Remote, P.spec(), X, Recs, 2), Reference);

  EXPECT_TRUE(Remote->shutdownServer(&Err)) << Err;
  Serve.join();
  EXPECT_TRUE(Server.shutdownRequested());
}

namespace {

/// Drives the fork workload through \p Client: session 1 gets the head
/// of the trace, forkSession(1, 9) snapshots it into a new lane, and
/// both sessions then receive the identical tail. Returns the rendered
/// finish output.
std::string runForkWorkload(FleetClient &Client, const Spec &S, StreamId X,
                            const std::vector<Rec> &Recs, Time SplitTs) {
  std::string Err;
  {
    auto Prod = Client.producer(&Err);
    EXPECT_TRUE(Prod) << Err;
    if (!Prod)
      return std::string();
    for (const Rec &R : Recs)
      if (R.Session == 1 && R.Ts <= SplitTs)
        EXPECT_TRUE(Prod->feed(R.Session, X, R.Ts, Value::integer(R.V)));
    EXPECT_TRUE(Prod->close()) << Prod->error();
  }
  EXPECT_TRUE(Client.forkSession(1, 9, &Err)) << Err;
  {
    auto Prod = Client.producer(&Err);
    EXPECT_TRUE(Prod) << Err;
    if (!Prod)
      return std::string();
    for (const Rec &R : Recs)
      if (R.Session == 1 && R.Ts > SplitTs) {
        EXPECT_TRUE(Prod->feed(1, X, R.Ts, Value::integer(R.V)));
        EXPECT_TRUE(Prod->feed(9, X, R.Ts, Value::integer(R.V)));
      }
    EXPECT_TRUE(Prod->close()) << Prod->error();
  }
  auto R = Client.finish(&Err);
  EXPECT_TRUE(R) << Err;
  if (!R)
    return std::string();
  EXPECT_EQ(R->FailedSessions, 0u);
  return renderFinish(S, *R);
}

} // namespace

TEST(FleetServiceTest, ForkSessionMatchesReplayInProcessAndOverTheWire) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");
  std::vector<Rec> Recs = workloadTrace(1, 40);
  const Time SplitTs = 20;

  // Replay reference: two independent sessions each fed the *full*
  // trace. A fork at the split must be indistinguishable from this —
  // the forked lane replays the head via its copied recorded outputs
  // and then diverges-by-zero on the identical tail.
  FleetOptions Opts;
  Opts.Shards = 2;
  std::string Reference;
  {
    auto Client = makeInProcessClient(P, Opts);
    std::string Err;
    auto Prod = Client->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    for (const Rec &R : Recs) {
      ASSERT_TRUE(Prod->feed(1, X, R.Ts, Value::integer(R.V)));
      ASSERT_TRUE(Prod->feed(9, X, R.Ts, Value::integer(R.V)));
    }
    ASSERT_TRUE(Prod->close()) << Prod->error();
    auto R = Client->finish(&Err);
    ASSERT_TRUE(R) << Err;
    Reference = renderFinish(P.spec(), *R);
  }
  ASSERT_FALSE(Reference.empty());

  auto InProc = makeInProcessClient(P, Opts);
  EXPECT_EQ(runForkWorkload(*InProc, P.spec(), X, Recs, SplitTs), Reference);

  PipeServer Server(P, Opts);
  std::string Err;
  auto Remote = makeRemoteClient(Server.dialer(), &Err);
  ASSERT_TRUE(Remote) << Err;
  EXPECT_EQ(runForkWorkload(*Remote, P.spec(), X, Recs, SplitTs), Reference);
}

TEST(FleetServiceTest, ForkErrorPathsInProcessAndOverTheWire) {
  Program P = compileOrDie(seenSet(), true, 1);
  StreamId X = *P.spec().lookup("x");

  // In-process: rejections are synchronous and the client survives.
  auto Client = makeInProcessClient(P);
  std::string Err;
  {
    auto Prod = Client->producer(&Err);
    ASSERT_TRUE(Prod) << Err;
    ASSERT_TRUE(Prod->feed(1, X, 1, Value::integer(3)));
    ASSERT_TRUE(Prod->close());
  }
  EXPECT_FALSE(Client->forkSession(2, 3, &Err));
  EXPECT_NE(Err.find("not live"), std::string::npos) << Err;
  EXPECT_FALSE(Client->forkSession(1, 1, &Err));
  EXPECT_NE(Err.find("differ"), std::string::npos) << Err;
  ASSERT_TRUE(Client->forkSession(1, 2, &Err)) << Err;
  EXPECT_FALSE(Client->forkSession(1, 2, &Err));
  EXPECT_NE(Err.find("already live"), std::string::npos) << Err;
  auto R = Client->finish(&Err);
  ASSERT_TRUE(R) << Err;

  // Over the wire: a failed fork elicits an Error frame, and wire
  // errors are fatal per connection (same contract as every other
  // control operation).
  PipeServer Server(P);
  auto Remote = makeRemoteClient(Server.dialer(), &Err);
  ASSERT_TRUE(Remote) << Err;
  EXPECT_FALSE(Remote->forkSession(5, 6, &Err));
  EXPECT_NE(Err.find("not live"), std::string::npos) << Err;
  EXPECT_FALSE(Remote->statsText(&Err));
}
