//===- tests/Runtime/FleetRaceRegressionTest.cpp ----------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Regression pins for two ordering races fixed in the shard worker
/// loop, so the fixes are guarded by deterministic assertions rather
/// than only by TSan luck:
///
///  1. *Shutdown with in-flight forwarded records.* The worker exit
///     check used to snapshot its migration inbox before loading the
///     drained-workers count; a peer could forward records for a stolen
///     session in between, and the worker exited on the stale
///     empty-inbox read, silently dropping the forwarded events. The
///     fix loads the count first, making an empty-inbox observation
///     final. Pinned here by racing finish() against active stealing
///     and asserting no record (and no output) is ever lost.
///
///  2. *Cross-producer lowest-seq hand-off.* The lowest-sequence batch
///     merge popped after a single scan, so a lower-seq batch becoming
///     visible mid-scan (the earlier half of a cross-producer session
///     hand-off) could be processed after a higher-seq one, feeding a
///     session's later records first — which fails the session's
///     monitor with a timestamp-order error. The fix re-scans until the
///     selection is stable. Pinned here by hammering externally
///     synchronized A-flush-then-B hand-offs at BatchSize 1 (every
///     record its own sequence number) and asserting order-clean runs.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceGen.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

std::string sequentialReference(
    const Program &Plan,
    const std::map<SessionId, std::vector<TraceEvent>> &Traces) {
  std::string Out;
  for (const auto &[Session, Events] : Traces) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, std::nullopt, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Session ids that all hash-pin to shard 0 under \p Shards shards, so
/// the other shards are idle and steal (then the home shard forwards).
std::vector<SessionId> pinnedSessions(const Program &Plan, unsigned Shards,
                                      size_t Count) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  MonitorFleet Probe(Plan, Opts);
  std::vector<SessionId> Ids;
  for (SessionId Id = 0; Ids.size() < Count && Id < 100000; ++Id)
    if (Probe.shardOf(Id) == 0)
      Ids.push_back(Id);
  EXPECT_EQ(Ids.size(), Count);
  Probe.finish();
  return Ids;
}

} // namespace

// Race 1: finish() while stolen sessions still have records being
// forwarded home-shard -> thief. Every record fed must be processed and
// every output emitted, under both execution engines. The feed loop
// hands records over and calls finish() immediately, so the drain race
// window (peers announcing completion while forwards are in flight) is
// hit on essentially every iteration; before the fix this dropped
// forwarded records, which the totalEvents() and byte-identity
// assertions catch deterministically.
TEST(FleetRaceRegressionTest, NoForwardedRecordLostAtShutdown) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, true);
  std::vector<SessionId> Sessions = pinnedSessions(Plan, 4, 8);

  std::map<SessionId, std::vector<TraceEvent>> Traces;
  size_t TotalRecords = 0;
  for (size_t I = 0; I != Sessions.size(); ++I) {
    Traces[Sessions[I]] = tracegen::randomInts(X, 40, 30, 1000 + I);
    TotalRecords += Traces[Sessions[I]].size();
  }
  std::string Reference = sequentialReference(Plan, Traces);
  ASSERT_FALSE(Reference.empty()) << "vacuous comparison";

  uint64_t Steals = 0;
  for (unsigned Round = 0; Round != 30; ++Round) {
    FleetMode Mode =
        Round % 2 ? FleetMode::PerSession : FleetMode::Batched;
    FleetOptions Opts;
    Opts.Shards = 4;
    Opts.BatchSize = 2;     // many small batches: forwards stay in flight
    Opts.QueueCapacity = 4;
    Opts.StealBacklog = 1;  // hair trigger: steal on any backlog
    Opts.Mode = Mode;
    MonitorFleet Fleet(Plan, Opts);
    {
      ProducerHandle P = Fleet.producer();
      for (const auto &[Session, Events] : Traces)
        for (const auto &[Id, Ts, V] : Events)
          ASSERT_TRUE(P.feed(Session, Id, Ts, V));
    } // handle closes; finish() races the in-flight forwards
    Fleet.finish();
    ASSERT_FALSE(Fleet.failed())
        << (Fleet.errors().empty() ? std::string()
                                   : Fleet.errors().front().Message);
    EXPECT_EQ(Fleet.stats().totalEvents(), TotalRecords)
        << "round " << Round << ": records were dropped";
    std::string Out;
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      Out += renderLine(Plan.spec(), E.Session, E.Event);
    EXPECT_EQ(Out, Reference) << "round " << Round;
    Steals += Fleet.stats().totalSessionsStolen();
  }
  EXPECT_GT(Steals, 0u)
      << "no session was ever stolen; the regression is not exercised";
}

// Race 2: externally synchronized cross-producer session hand-off.
// Producer A feeds the first half of each session's trace and closes
// (flush happens-before B's first feed); producer B continues the same
// sessions. With BatchSize 1 every record is its own globally sequenced
// batch, so any unstable lowest-seq selection feeds some session a
// later record first — its monitor then fails with a timestamp-order
// error, which (with byte-identity) is the deterministic observable.
TEST(FleetRaceRegressionTest, CrossProducerHandOffKeepsSessionOrder) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, true);

  std::map<SessionId, std::vector<TraceEvent>> Traces;
  for (SessionId Session = 0; Session != 12; ++Session)
    Traces[Session * 31 + 5] =
        tracegen::randomInts(X, 30, 25, 2000 + Session);
  std::string Reference = sequentialReference(Plan, Traces);
  ASSERT_FALSE(Reference.empty()) << "vacuous comparison";

  for (unsigned Round = 0; Round != 20; ++Round) {
    FleetMode Mode =
        Round % 2 ? FleetMode::PerSession : FleetMode::Batched;
    FleetOptions Opts;
    Opts.Shards = 1 + Round % 4;
    Opts.BatchSize = 1; // one record per sequenced batch
    Opts.QueueCapacity = 4;
    Opts.Mode = Mode;
    MonitorFleet Fleet(Plan, Opts);
    {
      ProducerHandle A = Fleet.producer();
      for (const auto &[Session, Events] : Traces)
        for (size_t I = 0; I != Events.size() / 2; ++I) {
          const auto &[Id, Ts, V] = Events[I];
          ASSERT_TRUE(A.feed(Session, Id, Ts, V));
        }
      A.close(); // happens-before B's feeds (same thread)
      ProducerHandle B = Fleet.producer();
      for (const auto &[Session, Events] : Traces)
        for (size_t I = Events.size() / 2; I != Events.size(); ++I) {
          const auto &[Id, Ts, V] = Events[I];
          ASSERT_TRUE(B.feed(Session, Id, Ts, V));
        }
    }
    Fleet.finish();
    // An unstable merge manifests as a failed session (out-of-order
    // feed), so byte-identity plus failure-freedom pins the fix.
    ASSERT_FALSE(Fleet.failed())
        << "round " << Round << ": "
        << (Fleet.errors().empty() ? std::string()
                                   : Fleet.errors().front().Message);
    std::string Out;
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      Out += renderLine(Plan.spec(), E.Session, E.Event);
    EXPECT_EQ(Out, Reference) << "round " << Round;
  }
}
