//===- tests/Runtime/TraceGenTest.cpp ---------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace tessla;
using namespace tessla::tracegen;

TEST(TraceGenTest, RandomIntsShape) {
  auto Events = randomInts(/*Id=*/0, /*Count=*/1000, /*Domain=*/20,
                           /*Seed=*/7);
  ASSERT_EQ(Events.size(), 1000u);
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(std::get<1>(Events[I]), static_cast<Time>(I + 1));
    int64_t V = std::get<2>(Events[I]).getInt();
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 20);
  }
}

TEST(TraceGenTest, Deterministic) {
  EXPECT_EQ(randomInts(0, 100, 10, 42), randomInts(0, 100, 10, 42));
  EXPECT_NE(randomInts(0, 100, 10, 42), randomInts(0, 100, 10, 43));
}

TEST(TraceGenTest, DbLogInvariants) {
  DbLogConfig Config;
  Config.Count = 5000;
  Config.Seed = 3;
  auto Events = dbLog(/*Insert=*/0, /*Delete=*/1, /*Access=*/2, Config);
  ASSERT_EQ(Events.size(), Config.Count);
  std::set<int64_t> Live;
  size_t BadAccesses = 0, Inserts = 0, Deletes = 0;
  for (const auto &[Stream, Ts, V] : Events) {
    int64_t Id = V.getInt();
    switch (Stream) {
    case 0:
      EXPECT_FALSE(Live.count(Id)) << "fresh ids only";
      Live.insert(Id);
      ++Inserts;
      break;
    case 1:
      EXPECT_TRUE(Live.count(Id)) << "deletes target live records";
      Live.erase(Id);
      ++Deletes;
      break;
    case 2:
      if (!Live.count(Id))
        ++BadAccesses;
      break;
    default:
      FAIL();
    }
  }
  EXPECT_GT(Inserts, 1000u);
  EXPECT_GT(Deletes, 100u);
  EXPECT_GT(BadAccesses, 0u) << "violations must occur";
  EXPECT_LT(BadAccesses, 300u) << "...but rarely";
}

TEST(TraceGenTest, DbPairLogOrderedAndMostlyTimely) {
  DbPairConfig Config;
  Config.Count = 2000;
  Config.Seed = 5;
  auto Events = dbPairLog(/*Db2=*/0, /*Db3=*/1, Config);
  Time Prev = 0;
  std::map<int64_t, Time> Db2Times;
  size_t Late = 0, Db3Count = 0;
  for (const auto &[Stream, Ts, V] : Events) {
    EXPECT_GE(Ts, Prev) << "global timestamp order";
    Prev = Ts;
    if (Stream == 0) {
      Db2Times[V.getInt()] = Ts;
    } else {
      ++Db3Count;
      auto It = Db2Times.find(V.getInt());
      if (It == Db2Times.end() || Ts - It->second > Config.MaxLag)
        ++Late;
    }
  }
  EXPECT_GT(Db3Count, 1500u);
  EXPECT_GT(Late, 0u);
  EXPECT_LT(static_cast<double>(Late) / Db3Count, 0.1);
}

TEST(TraceGenTest, PowerSignalShape) {
  PowerConfig Config;
  Config.Count = 2000;
  Config.Seed = 11;
  auto Events = powerSignal(/*Id=*/0, Config);
  ASSERT_EQ(Events.size(), Config.Count);
  double Sum = 0;
  size_t Peaks = 0;
  Time Prev = 0;
  for (const auto &[Stream, Ts, V] : Events) {
    EXPECT_EQ(Ts, Prev + Config.Period) << "fixed sampling period";
    Prev = Ts;
    double X = V.getFloat();
    Sum += X;
    if (X > Config.Base + Config.DailyAmp + 5 * Config.Noise)
      ++Peaks;
  }
  double Mean = Sum / Config.Count;
  EXPECT_NEAR(Mean, Config.Base, 5.0) << "sinusoid averages out";
  EXPECT_GT(Peaks, 0u) << "injected peaks present";
}
