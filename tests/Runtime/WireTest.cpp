//===- tests/Runtime/WireTest.cpp -------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The service wire format (Runtime/Wire.h): frame round-trips through
/// the incremental FrameDecoder (whole-buffer and byte-at-a-time),
/// hard poisoning on every malformed header, the bit-flip invariant (no
/// corrupted payload ever reaches a caller), and the payload codecs'
/// round-trip fidelity plus their rejection of truncated and hostile
/// inputs. Mirrors the untrusting-loader discipline of
/// Program/SerializeTest.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace tessla;

namespace {

/// A batch exercising every scalar value kind plus an empty-ish record.
EventBatch sampleBatch() {
  EventBatch B;
  B.Records.push_back({7, 0, -5, Value::integer(42)});
  B.Records.push_back({7, 1, 0, Value::unit()});
  B.Records.push_back({123456789012345ull, 2, 9, Value::boolean(true)});
  B.Records.push_back({0, 3, 17, Value::floating(2.5)});
  B.Records.push_back({1, 4, 17, Value::string("hello wire")});
  B.Records.push_back({1, 5, 18, Value::string(std::string("\0x\xff", 3))});
  return B;
}

void expectBatchEq(const EventBatch &A, const EventBatch &B) {
  ASSERT_EQ(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != A.Records.size(); ++I) {
    EXPECT_EQ(A.Records[I].Session, B.Records[I].Session) << I;
    EXPECT_EQ(A.Records[I].Input, B.Records[I].Input) << I;
    EXPECT_EQ(A.Records[I].Ts, B.Records[I].Ts) << I;
    EXPECT_EQ(compareValues(A.Records[I].V, B.Records[I].V), 0) << I;
  }
}

/// Decodes exactly one frame from \p Bytes fed in one append.
std::optional<WireFrame> decodeOne(const std::vector<uint8_t> &Bytes) {
  FrameDecoder D;
  D.append(Bytes.data(), Bytes.size());
  auto F = D.next();
  EXPECT_FALSE(D.failed()) << D.error();
  return F;
}

} // namespace

// --- Framing ----------------------------------------------------------------

TEST(WireTest, FrameRoundTrip) {
  std::vector<uint8_t> Payload = encodeEventBatch(sampleBatch());
  std::vector<uint8_t> Bytes = encodeFrame(FrameType::Batch, Payload);
  ASSERT_EQ(Bytes.size(), WireHeaderSize + Payload.size());
  EXPECT_EQ(std::memcmp(Bytes.data(), WireMagic, 4), 0);

  auto F = decodeOne(Bytes);
  ASSERT_TRUE(F);
  EXPECT_EQ(F->Type, FrameType::Batch);
  EXPECT_EQ(F->Payload, Payload);
}

TEST(WireTest, EmptyPayloadFrames) {
  for (FrameType T : {FrameType::Snapshot, FrameType::Stats,
                      FrameType::Shutdown, FrameType::ShutdownAck}) {
    auto F = decodeOne(encodeFrame(T, {}));
    ASSERT_TRUE(F) << frameTypeName(T);
    EXPECT_EQ(F->Type, T);
    EXPECT_TRUE(F->Payload.empty());
  }
}

TEST(WireTest, ByteAtATimeDecoding) {
  // Three back-to-back frames dribbled in one byte at a time: each frame
  // must pop out exactly when its last byte arrives, never earlier.
  std::vector<uint8_t> Stream;
  auto AppendFrame = [&](FrameType T, const std::vector<uint8_t> &P) {
    std::vector<uint8_t> F = encodeFrame(T, P);
    Stream.insert(Stream.end(), F.begin(), F.end());
  };
  AppendFrame(FrameType::Hello, encodeHello());
  AppendFrame(FrameType::Batch, encodeEventBatch(sampleBatch()));
  AppendFrame(FrameType::Busy, encodeU64(99));

  FrameDecoder D;
  std::vector<WireFrame> Frames;
  for (uint8_t Byte : Stream) {
    D.append(&Byte, 1);
    while (auto F = D.next())
      Frames.push_back(std::move(*F));
    ASSERT_FALSE(D.failed()) << D.error();
  }
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_EQ(Frames[0].Type, FrameType::Hello);
  EXPECT_EQ(Frames[1].Type, FrameType::Batch);
  EXPECT_EQ(Frames[2].Type, FrameType::Busy);
  std::string Err;
  auto Busy = decodeU64(Frames[2].Payload.data(), Frames[2].Payload.size(),
                        Err);
  ASSERT_TRUE(Busy) << Err;
  EXPECT_EQ(*Busy, 99u);
}

TEST(WireTest, MultipleFramesOneAppend) {
  std::vector<uint8_t> Stream;
  for (unsigned I = 0; I != 10; ++I) {
    std::vector<uint8_t> F = encodeFrame(FrameType::Busy, encodeU64(I));
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  FrameDecoder D;
  D.append(Stream.data(), Stream.size());
  for (unsigned I = 0; I != 10; ++I) {
    auto F = D.next();
    ASSERT_TRUE(F) << I;
    EXPECT_EQ(F->Type, FrameType::Busy);
  }
  EXPECT_FALSE(D.next());
  EXPECT_FALSE(D.failed());
}

TEST(WireTest, TruncatedFrameJustWaits) {
  // A prefix of a valid frame is not an error at the stream layer — the
  // rest of the bytes may simply not have arrived yet.
  std::vector<uint8_t> Bytes =
      encodeFrame(FrameType::Batch, encodeEventBatch(sampleBatch()));
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    FrameDecoder D;
    D.append(Bytes.data(), Len);
    EXPECT_FALSE(D.next()) << "frame from a " << Len << "-byte prefix";
    EXPECT_FALSE(D.failed()) << "poisoned by a " << Len << "-byte prefix";
  }
}

TEST(WireTest, BadMagicPoisonsForever) {
  std::vector<uint8_t> Bytes = encodeFrame(FrameType::Stats, {});
  Bytes[0] ^= 0x01;
  FrameDecoder D;
  D.append(Bytes.data(), Bytes.size());
  EXPECT_FALSE(D.next());
  EXPECT_TRUE(D.failed());
  EXPECT_NE(D.error().find("magic"), std::string::npos) << D.error();

  // The decoder never resynchronizes: a pristine frame appended after
  // the poison must not come out.
  std::vector<uint8_t> Good = encodeFrame(FrameType::Stats, {});
  D.append(Good.data(), Good.size());
  EXPECT_FALSE(D.next());
  EXPECT_TRUE(D.failed());
}

TEST(WireTest, UnknownFrameTypePoisons) {
  for (uint8_t Type : {uint8_t{0}, uint8_t{19}, uint8_t{200}}) {
    std::vector<uint8_t> Bytes = encodeFrame(FrameType::Stats, {});
    Bytes[4] = Type;
    FrameDecoder D;
    D.append(Bytes.data(), Bytes.size());
    EXPECT_FALSE(D.next());
    EXPECT_TRUE(D.failed()) << unsigned(Type);
    EXPECT_NE(D.error().find("unknown frame type"), std::string::npos)
        << D.error();
  }
}

TEST(WireTest, OversizedPayloadPoisons) {
  // A hostile header advertising a payload beyond the cap must poison
  // immediately — before any allocation of that size.
  std::vector<uint8_t> Bytes = encodeFrame(FrameType::Stats, {});
  uint32_t Huge = WireMaxPayload + 1;
  for (unsigned I = 0; I != 4; ++I)
    Bytes[5 + I] = static_cast<uint8_t>(Huge >> (8 * I));
  FrameDecoder D;
  D.append(Bytes.data(), Bytes.size());
  EXPECT_FALSE(D.next());
  EXPECT_TRUE(D.failed());
  EXPECT_NE(D.error().find("cap"), std::string::npos) << D.error();
}

TEST(WireTest, PayloadChecksumMismatchPoisons) {
  std::vector<uint8_t> Bytes =
      encodeFrame(FrameType::Busy, encodeU64(12345));
  Bytes.back() ^= 0xFF; // payload byte; checksum in the header now lies
  FrameDecoder D;
  D.append(Bytes.data(), Bytes.size());
  EXPECT_FALSE(D.next());
  EXPECT_TRUE(D.failed());
  EXPECT_NE(D.error().find("checksum"), std::string::npos) << D.error();
}

TEST(WireTest, EveryBitFlipIsContained) {
  // The invariant over single-bit corruption anywhere in a frame: the
  // decoder either poisons, keeps waiting (a size-field flip asking for
  // more bytes), or — when the flip lands in the type byte and happens
  // to name another valid type — emits a frame whose payload is still
  // the *original*, checksum-verified bytes. A corrupted payload never
  // reaches the caller, and nothing crashes.
  std::vector<uint8_t> Original = encodeEventBatch(sampleBatch());
  std::vector<uint8_t> Bytes = encodeFrame(FrameType::Batch, Original);
  for (size_t Off = 0; Off != Bytes.size(); ++Off) {
    for (unsigned Bit = 0; Bit < 8; Bit += 3) { // bits 0, 3, 6
      std::vector<uint8_t> Flipped = Bytes;
      Flipped[Off] ^= static_cast<uint8_t>(1u << Bit);
      FrameDecoder D;
      D.append(Flipped.data(), Flipped.size());
      auto F = D.next();
      if (F)
        EXPECT_EQ(F->Payload, Original)
            << "bit " << Bit << " at offset " << Off
            << " let a corrupted payload through";
      else if (D.failed())
        EXPECT_FALSE(D.error().empty()) << "silent poison at " << Off;
    }
  }
}

TEST(WireTest, FrameTypeNamesAreDistinct) {
  std::set<std::string> Names;
  for (uint8_t T = 1; T <= 16; ++T)
    Names.insert(frameTypeName(static_cast<FrameType>(T)));
  EXPECT_EQ(Names.size(), 16u);
}

// --- Payload codecs ---------------------------------------------------------

TEST(WireTest, EventBatchRoundTrip) {
  EventBatch B = sampleBatch();
  std::vector<uint8_t> Bytes = encodeEventBatch(B);
  std::string Err;
  auto Decoded = decodeEventBatch(Bytes.data(), Bytes.size(), Err);
  ASSERT_TRUE(Decoded) << Err;
  expectBatchEq(B, *Decoded);

  // Deterministic: equal batches encode to equal bytes.
  EXPECT_EQ(encodeEventBatch(B), Bytes);

  EventBatch Empty;
  std::vector<uint8_t> EmptyBytes = encodeEventBatch(Empty);
  auto DecodedEmpty =
      decodeEventBatch(EmptyBytes.data(), EmptyBytes.size(), Err);
  ASSERT_TRUE(DecodedEmpty) << Err;
  EXPECT_TRUE(DecodedEmpty->empty());
}

TEST(WireTest, EventBatchEveryTruncationFailsCleanly) {
  std::vector<uint8_t> Bytes = encodeEventBatch(sampleBatch());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::string Err;
    auto Decoded = decodeEventBatch(Bytes.data(), Len, Err);
    EXPECT_FALSE(Decoded) << "decoded from a " << Len << "-byte prefix";
    EXPECT_FALSE(Err.empty()) << "silent failure at " << Len;
  }
}

TEST(WireTest, EventBatchHostileCountRejected) {
  // A count field promising more records than the payload can hold must
  // fail on the count, not by over-reading.
  std::vector<uint8_t> Bytes = encodeEventBatch(sampleBatch());
  uint32_t Huge = 0x7FFFFFFF;
  for (unsigned I = 0; I != 4; ++I)
    Bytes[I] = static_cast<uint8_t>(Huge >> (8 * I));
  std::string Err;
  EXPECT_FALSE(decodeEventBatch(Bytes.data(), Bytes.size(), Err));
  EXPECT_NE(Err.find("record count"), std::string::npos) << Err;
}

TEST(WireTest, EventBatchTrailingBytesRejected) {
  std::vector<uint8_t> Bytes = encodeEventBatch(sampleBatch());
  Bytes.push_back(0xAB);
  std::string Err;
  EXPECT_FALSE(decodeEventBatch(Bytes.data(), Bytes.size(), Err));
  EXPECT_NE(Err.find("trailing"), std::string::npos) << Err;
}

TEST(WireTest, OutputsRoundTrip) {
  std::vector<WireOutputRecord> Events;
  Events.push_back({1, -3, 0, Value::integer(7)});
  Events.push_back({99, 0, 5, Value::string("out")});
  Events.push_back({99, 12, 1, Value::boolean(false)});
  std::vector<uint8_t> Bytes = encodeOutputs(Events);
  std::string Err;
  auto Decoded = decodeOutputs(Bytes.data(), Bytes.size(), Err);
  ASSERT_TRUE(Decoded) << Err;
  ASSERT_EQ(Decoded->size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ((*Decoded)[I].Session, Events[I].Session);
    EXPECT_EQ((*Decoded)[I].Ts, Events[I].Ts);
    EXPECT_EQ((*Decoded)[I].Stream, Events[I].Stream);
    EXPECT_EQ(compareValues((*Decoded)[I].V, Events[I].V), 0);
  }

  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    auto D = decodeOutputs(Bytes.data(), Len, Err);
    EXPECT_FALSE(D) << Len;
    EXPECT_FALSE(Err.empty()) << Len;
  }
}

TEST(WireTest, HandshakeCodecsRoundTrip) {
  std::vector<uint8_t> Hello = encodeHello();
  uint32_t Version = 0;
  std::string Err;
  ASSERT_TRUE(decodeHello(Hello.data(), Hello.size(), Version, Err)) << Err;
  EXPECT_EQ(Version, WireFormatVersion);

  WireHelloAck Ack;
  Ack.Version = WireFormatVersion;
  Ack.ProgramChecksum = 0xDEADBEEFCAFEF00Dull;
  Ack.Shards = 12;
  std::vector<uint8_t> AckBytes = encodeHelloAck(Ack);
  auto DecodedAck = decodeHelloAck(AckBytes.data(), AckBytes.size(), Err);
  ASSERT_TRUE(DecodedAck) << Err;
  EXPECT_EQ(DecodedAck->Version, Ack.Version);
  EXPECT_EQ(DecodedAck->ProgramChecksum, Ack.ProgramChecksum);
  EXPECT_EQ(DecodedAck->Shards, Ack.Shards);

  WireFinishAck Fin{3, 1234567};
  std::vector<uint8_t> FinBytes = encodeFinishAck(Fin);
  auto DecodedFin = decodeFinishAck(FinBytes.data(), FinBytes.size(), Err);
  ASSERT_TRUE(DecodedFin) << Err;
  EXPECT_EQ(DecodedFin->FailedSessions, 3u);
  EXPECT_EQ(DecodedFin->TotalOutputs, 1234567u);

  std::vector<uint8_t> U = encodeU64(~0ull);
  auto DecodedU = decodeU64(U.data(), U.size(), Err);
  ASSERT_TRUE(DecodedU) << Err;
  EXPECT_EQ(*DecodedU, ~0ull);

  std::string Text = "shard 0: sessions=4\nwith \0 byte";
  std::vector<uint8_t> S = encodeString(Text);
  auto DecodedS = decodeString(S.data(), S.size(), Err);
  ASSERT_TRUE(DecodedS) << Err;
  EXPECT_EQ(*DecodedS, Text);
}

TEST(WireTest, ControlCodecsRejectTruncation) {
  std::string Err;
  for (const std::vector<uint8_t> &Bytes :
       {encodeHelloAck({1, 2, 3}), encodeFinishAck({1, 2}), encodeU64(7),
        encodeString("stats text")}) {
    for (size_t Len = 0; Len != Bytes.size(); ++Len) {
      bool AnyOk = decodeHelloAck(Bytes.data(), Len, Err).has_value() ||
                   decodeFinishAck(Bytes.data(), Len, Err).has_value() ||
                   decodeU64(Bytes.data(), Len, Err).has_value() ||
                   decodeString(Bytes.data(), Len, Err).has_value();
      // A prefix may still parse under a *smaller* codec (a u64 is a
      // prefix of a HelloAck) — what matters is that the matching codec
      // rejects its own truncations, checked below.
      (void)AnyOk;
    }
  }

  std::vector<uint8_t> Ack = encodeHelloAck({1, 2, 3});
  for (size_t Len = 0; Len != Ack.size(); ++Len)
    EXPECT_FALSE(decodeHelloAck(Ack.data(), Len, Err)) << Len;
  std::vector<uint8_t> Fin = encodeFinishAck({1, 2});
  for (size_t Len = 0; Len != Fin.size(); ++Len)
    EXPECT_FALSE(decodeFinishAck(Fin.data(), Len, Err)) << Len;
  std::vector<uint8_t> U = encodeU64(7);
  for (size_t Len = 0; Len != U.size(); ++Len)
    EXPECT_FALSE(decodeU64(U.data(), Len, Err)) << Len;
}

TEST(WireTest, FormatChangeForcesVersionBump) {
  // Golden bytes for an empty-batch frame: any layout change must show
  // up here and force a WireFormatVersion bump (see Wire.h). v2 added
  // aggregate back-references inside value payloads; the empty-batch
  // frame itself is unchanged.
  ASSERT_EQ(WireFormatVersion, 2u)
      << "wire format changed; re-derive the golden bytes below";
  std::vector<uint8_t> Bytes =
      encodeFrame(FrameType::Batch, encodeEventBatch(EventBatch()));
  // Header: magic, type 3, size 4, FNV-1a-64 of the 4 zero count bytes,
  // then the u32 record count 0.
  const std::vector<uint8_t> Golden = {
      'T',  'W',  'F',  0x1A, // magic
      3,                      // FrameType::Batch
      4,    0,    0,    0,    // payload size
      0xF5, 0x13, 0xCE, 0x9D, 0x7F, 0x76, 0x25, 0x4D, // payload checksum
      0,    0,    0,    0,                            // record count
  };
  if (Bytes != Golden) {
    // Render the actual bytes so the test is self-updating on purposeful
    // format changes.
    std::string Hex;
    for (uint8_t B : Bytes) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "%02X ", B);
      Hex += Buf;
    }
    FAIL() << "frame layout changed — bump WireFormatVersion and update "
              "the golden bytes. Actual: "
           << Hex;
  }
}
