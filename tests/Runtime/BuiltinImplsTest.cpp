//===- tests/Runtime/BuiltinImplsTest.cpp -----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/BuiltinImpls.h"

#include <gtest/gtest.h>

using namespace tessla;

namespace {

/// Applies a builtin over concrete values (all present).
Value apply(BuiltinId Fn, std::vector<Value> Args, bool InPlace,
            EvalError &Err) {
  const Value *Ptrs[3] = {nullptr, nullptr, nullptr};
  for (size_t I = 0; I != Args.size(); ++I)
    Ptrs[I] = &Args[I];
  return applyBuiltin(Fn, Ptrs, static_cast<unsigned>(Args.size()),
                      InPlace, Err);
}

Value apply(BuiltinId Fn, std::vector<Value> Args) {
  EvalError Err;
  Value V = apply(Fn, std::move(Args), false, Err);
  EXPECT_FALSE(Err.Failed) << Err.Message;
  return V;
}

Value emptySet(bool InPlace) {
  EvalError Err;
  return apply(BuiltinId::SetEmpty, {Value::unit()}, InPlace, Err);
}

/// Applies a builtin destructively over the caller's own values. The
/// arguments are NOT copied — the in-place tier additionally requires
/// dynamic uniqueness, which a by-value helper would defeat.
Value applyInPlace(BuiltinId Fn, std::initializer_list<const Value *> Args,
                   EvalError &Err) {
  const Value *Ptrs[3] = {nullptr, nullptr, nullptr};
  unsigned N = 0;
  for (const Value *A : Args)
    Ptrs[N++] = A;
  return applyBuiltin(Fn, Ptrs, N, /*InPlace=*/true, Err);
}

} // namespace

TEST(BuiltinImplsTest, IntArithmetic) {
  EXPECT_EQ(apply(BuiltinId::Add, {Value::integer(2), Value::integer(3)})
                .getInt(),
            5);
  EXPECT_EQ(apply(BuiltinId::Sub, {Value::integer(2), Value::integer(3)})
                .getInt(),
            -1);
  EXPECT_EQ(apply(BuiltinId::Mul, {Value::integer(4), Value::integer(3)})
                .getInt(),
            12);
  EXPECT_EQ(apply(BuiltinId::Div, {Value::integer(7), Value::integer(2)})
                .getInt(),
            3);
  EXPECT_EQ(apply(BuiltinId::Mod, {Value::integer(7), Value::integer(3)})
                .getInt(),
            1);
  EXPECT_EQ(apply(BuiltinId::Neg, {Value::integer(5)}).getInt(), -5);
  EXPECT_EQ(apply(BuiltinId::Abs, {Value::integer(-5)}).getInt(), 5);
  EXPECT_EQ(apply(BuiltinId::Min, {Value::integer(2), Value::integer(9)})
                .getInt(),
            2);
  EXPECT_EQ(apply(BuiltinId::Max, {Value::integer(2), Value::integer(9)})
                .getInt(),
            9);
}

TEST(BuiltinImplsTest, FloatArithmetic) {
  EXPECT_DOUBLE_EQ(
      apply(BuiltinId::Div, {Value::floating(1.0), Value::floating(4.0)})
          .getFloat(),
      0.25);
  EXPECT_DOUBLE_EQ(
      apply(BuiltinId::Add, {Value::floating(0.5), Value::floating(0.25)})
          .getFloat(),
      0.75);
}

TEST(BuiltinImplsTest, DivisionByZeroFails) {
  EvalError Err;
  apply(BuiltinId::Div, {Value::integer(1), Value::integer(0)}, false,
        Err);
  EXPECT_TRUE(Err.Failed);
  EvalError Err2;
  apply(BuiltinId::Mod, {Value::integer(1), Value::integer(0)}, false,
        Err2);
  EXPECT_TRUE(Err2.Failed);
}

TEST(BuiltinImplsTest, MixedKindArithmeticFails) {
  EvalError Err;
  apply(BuiltinId::Add, {Value::integer(1), Value::floating(1.0)}, false,
        Err);
  EXPECT_TRUE(Err.Failed);
}

TEST(BuiltinImplsTest, ComparisonsAndBooleans) {
  EXPECT_TRUE(apply(BuiltinId::Lt, {Value::integer(1), Value::integer(2)})
                  .getBool());
  EXPECT_FALSE(
      apply(BuiltinId::Geq, {Value::integer(1), Value::integer(2)})
          .getBool());
  EXPECT_TRUE(apply(BuiltinId::Eq, {Value::string("a"), Value::string("a")})
                  .getBool());
  EXPECT_TRUE(
      apply(BuiltinId::LAnd, {Value::boolean(true), Value::boolean(true)})
          .getBool());
  EXPECT_TRUE(apply(BuiltinId::LNot, {Value::boolean(false)}).getBool());
}

TEST(BuiltinImplsTest, Conversions) {
  EXPECT_DOUBLE_EQ(apply(BuiltinId::ToFloat, {Value::integer(3)})
                       .getFloat(),
                   3.0);
  EXPECT_EQ(apply(BuiltinId::ToInt, {Value::floating(3.9)}).getInt(), 3);
}

TEST(BuiltinImplsTest, IteSelectsBranch) {
  EXPECT_EQ(apply(BuiltinId::Ite, {Value::boolean(true), Value::integer(1),
                                   Value::integer(2)})
                .getInt(),
            1);
  EXPECT_EQ(apply(BuiltinId::Ite, {Value::boolean(false),
                                   Value::integer(1), Value::integer(2)})
                .getInt(),
            2);
}

TEST(BuiltinImplsTest, PersistentSetOpsPreserveArgument) {
  Value S0 = emptySet(false);
  Value S1 = apply(BuiltinId::SetAdd, {S0, Value::integer(1)});
  Value S2 = apply(BuiltinId::SetAdd, {S1, Value::integer(2)});
  EXPECT_EQ(S0.asSet().size(), 0u) << "argument untouched";
  EXPECT_EQ(S1.asSet().size(), 1u);
  EXPECT_EQ(S2.asSet().size(), 2u);
  EXPECT_NE(S1.aggregateIdentity(), S2.aggregateIdentity()) << "fresh handle";
  EXPECT_TRUE(
      apply(BuiltinId::SetContains, {S2, Value::integer(1)}).getBool());
  Value S3 = apply(BuiltinId::SetRemove, {S2, Value::integer(1)});
  EXPECT_EQ(S2.asSet().size(), 2u);
  EXPECT_EQ(S3.asSet().size(), 1u);
}

TEST(BuiltinImplsTest, DestructiveSetOpsShareHandle) {
  EvalError Err;
  Value S0 = emptySet(true);
  Value One = Value::integer(1);
  Value S1 = applyInPlace(BuiltinId::SetAdd, {&S0, &One}, Err);
  ASSERT_FALSE(Err.Failed);
  EXPECT_EQ(S1.aggregateIdentity(), S0.aggregateIdentity())
      << "destructive update returns the same handle";
  EXPECT_EQ(S0.asSet().size(), 1u) << "argument mutated in place";
}

TEST(BuiltinImplsTest, DestructiveVerdictWithSharedHandlePathCopies) {
  // The static verdict alone is not enough: a dynamically shared handle
  // forces the persistent path even in in-place mode, so the sharer
  // survives unchanged.
  EvalError Err;
  Value S0 = emptySet(true);
  Value Sharer = S0; // use_count == 2
  Value One = Value::integer(1);
  Value S1 = applyInPlace(BuiltinId::SetAdd, {&S0, &One}, Err);
  ASSERT_FALSE(Err.Failed);
  EXPECT_NE(S1.aggregateIdentity(), S0.aggregateIdentity());
  EXPECT_EQ(Sharer.asSet().size(), 0u) << "sharer untouched";
  EXPECT_EQ(S1.asSet().size(), 1u);
}

TEST(BuiltinImplsTest, SetToggle) {
  Value S = emptySet(false);
  S = apply(BuiltinId::SetToggle, {S, Value::integer(4)});
  EXPECT_TRUE(
      apply(BuiltinId::SetContains, {S, Value::integer(4)}).getBool());
  S = apply(BuiltinId::SetToggle, {S, Value::integer(4)});
  EXPECT_FALSE(
      apply(BuiltinId::SetContains, {S, Value::integer(4)}).getBool());
}

TEST(BuiltinImplsTest, SetUpdateWithOptionalArgs) {
  EvalError Err;
  Value S = emptySet(false);
  // Only the add-argument present.
  Value Add = Value::integer(1);
  const Value *Ptrs1[3] = {&S, &Add, nullptr};
  Value S1 = applyBuiltin(BuiltinId::SetUpdate, Ptrs1, 3, false, Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(S1.asSet().size(), 1u);
  // Only the remove-argument present.
  Value Rem = Value::integer(1);
  const Value *Ptrs2[3] = {&S1, nullptr, &Rem};
  Value S2 = applyBuiltin(BuiltinId::SetUpdate, Ptrs2, 3, false, Err);
  ASSERT_FALSE(Err.Failed);
  EXPECT_EQ(S2.asSet().size(), 0u);
}

TEST(BuiltinImplsTest, MapOps) {
  EvalError Err;
  Value M = apply(BuiltinId::MapEmpty, {Value::unit()}, false, Err);
  Value M1 = apply(BuiltinId::MapPut,
                   {M, Value::integer(1), Value::string("a")});
  Value M2 = apply(BuiltinId::MapPut,
                   {M1, Value::integer(1), Value::string("b")});
  EXPECT_EQ(apply(BuiltinId::MapSize, {M2}).getInt(), 1);
  EXPECT_EQ(apply(BuiltinId::MapGet, {M2, Value::integer(1)}).getString(),
            "b");
  EXPECT_EQ(apply(BuiltinId::MapGet, {M1, Value::integer(1)}).getString(),
            "a")
      << "old version keeps the old mapping";
  EXPECT_EQ(apply(BuiltinId::MapGetOrElse,
                  {M2, Value::integer(9), Value::string("dflt")})
                .getString(),
            "dflt");
  EXPECT_TRUE(apply(BuiltinId::MapContains, {M2, Value::integer(1)})
                  .getBool());
  Value M3 = apply(BuiltinId::MapRemove, {M2, Value::integer(1)});
  EXPECT_EQ(apply(BuiltinId::MapSize, {M3}).getInt(), 0);

  EvalError MissErr;
  apply(BuiltinId::MapGet, {M3, Value::integer(1)}, false, MissErr);
  EXPECT_TRUE(MissErr.Failed);
}

TEST(BuiltinImplsTest, QueueOps) {
  EvalError Err;
  Value Q = apply(BuiltinId::QueueEmpty, {Value::unit()}, false, Err);
  Value Q1 = apply(BuiltinId::QueueEnq, {Q, Value::integer(1)});
  Value Q2 = apply(BuiltinId::QueueEnq, {Q1, Value::integer(2)});
  EXPECT_EQ(apply(BuiltinId::QueueSize, {Q2}).getInt(), 2);
  EXPECT_EQ(apply(BuiltinId::QueueFront, {Q2}).getInt(), 1);
  Value Q3 = apply(BuiltinId::QueueDeq, {Q2});
  EXPECT_EQ(apply(BuiltinId::QueueFront, {Q3}).getInt(), 2);
  EXPECT_EQ(apply(BuiltinId::QueueSize, {Q2}).getInt(), 2)
      << "persistent dequeue keeps the old version";

  EvalError EmptyErr;
  apply(BuiltinId::QueueDeq, {Q}, false, EmptyErr);
  EXPECT_TRUE(EmptyErr.Failed);
  EvalError FrontErr;
  apply(BuiltinId::QueueFront, {Q}, false, FrontErr);
  EXPECT_TRUE(FrontErr.Failed);
}

TEST(BuiltinImplsTest, QueueTrim) {
  Value Q = apply(BuiltinId::QueueEmpty, {Value::unit()});
  for (int I = 0; I != 5; ++I)
    Q = apply(BuiltinId::QueueEnq, {Q, Value::integer(I)});
  Value Trimmed = apply(BuiltinId::QueueTrim, {Q, Value::integer(3)});
  EXPECT_EQ(apply(BuiltinId::QueueSize, {Trimmed}).getInt(), 3);
  EXPECT_EQ(apply(BuiltinId::QueueFront, {Trimmed}).getInt(), 2);
  // Trimming below an already-small size shares the handle.
  Value Same = apply(BuiltinId::QueueTrim, {Trimmed, Value::integer(10)});
  EXPECT_EQ(Same.aggregateIdentity(), Trimmed.aggregateIdentity());
  // Destructive trim mutates in place.
  EvalError Err;
  Value MQ = apply(BuiltinId::QueueEmpty, {Value::unit()}, true, Err);
  for (int I = 0; I != 5; ++I) {
    Value E = Value::integer(I);
    MQ = applyInPlace(BuiltinId::QueueEnq, {&MQ, &E}, Err);
  }
  Value Cap = Value::integer(2);
  applyInPlace(BuiltinId::QueueTrim, {&MQ, &Cap}, Err);
  ASSERT_FALSE(Err.Failed);
  EXPECT_EQ(MQ.asQueue().size(), 2u);
}

TEST(BuiltinImplsTest, SetUnionAndDiff) {
  Value A = emptySet(false);
  A = apply(BuiltinId::SetAdd, {A, Value::integer(1)});
  A = apply(BuiltinId::SetAdd, {A, Value::integer(2)});
  Value B = emptySet(false);
  B = apply(BuiltinId::SetAdd, {B, Value::integer(2)});
  B = apply(BuiltinId::SetAdd, {B, Value::integer(3)});

  Value U = apply(BuiltinId::SetUnion, {A, B});
  EXPECT_EQ(U.asSet().size(), 3u);
  EXPECT_EQ(A.asSet().size(), 2u) << "arguments untouched";
  Value D = apply(BuiltinId::SetDiff, {A, B});
  EXPECT_EQ(D.asSet().size(), 1u);
  EXPECT_TRUE(
      apply(BuiltinId::SetContains, {D, Value::integer(1)}).getBool());

  // Destructive mode with a persistent read-side source (arguments may
  // come from different variable families).
  EvalError Err;
  Value M = emptySet(true);
  Value Nine = Value::integer(9);
  M = applyInPlace(BuiltinId::SetAdd, {&M, &Nine}, Err);
  Value MU = applyInPlace(BuiltinId::SetUnion, {&M, &B}, Err);
  ASSERT_FALSE(Err.Failed) << Err.Message;
  EXPECT_EQ(MU.aggregateIdentity(), M.aggregateIdentity());
  EXPECT_EQ(M.asSet().size(), 3u);
}

TEST(BuiltinImplsTest, StringOps) {
  EXPECT_EQ(apply(BuiltinId::StrConcat,
                  {Value::string("foo"), Value::string("bar")})
                .getString(),
            "foobar");
  EXPECT_EQ(apply(BuiltinId::StrLen, {Value::string("hello")}).getInt(),
            5);
}

TEST(BuiltinImplsTest, MergeAndFilterPassThrough) {
  Value S = emptySet(false);
  EXPECT_EQ(apply(BuiltinId::Merge, {S, S}).aggregateIdentity(),
            S.aggregateIdentity());
  Value F = apply(BuiltinId::Filter, {S, Value::boolean(true)});
  EXPECT_EQ(F.aggregateIdentity(), S.aggregateIdentity());
}
