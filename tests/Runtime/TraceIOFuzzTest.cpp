//===- tests/Runtime/TraceIOFuzzTest.cpp ------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Property/fuzz coverage for the textual trace boundary and the shared
/// ingestion batch: random scalar records — every value kind including
/// unit events, hostile strings and extreme timestamps — must survive
/// format -> parse -> format byte-identically (the same untrusting
/// round-trip rigor the .tpb loader gets from SerializeTest), and
/// EventBatch wrapping must preserve record identity, order and session
/// attribution exactly.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// One input stream per scalar value kind.
Spec fuzzSpec() {
  return parseOrDie(R"(
    in i: Int
    in f: Float
    in b: Bool
    in s: String
    in u: Unit
    def t := time(merge(time(i), merge(time(f), merge(time(b),
             merge(time(s), time(u))))))
    out t
  )");
}

/// Random scalar value for input \p Pick (one per kind). Floats are
/// drawn from small decimals; their round-trip is checked through the
/// renderer's own canonical form, so any value the renderer can print
/// unambiguously is fair game.
Value randomValue(unsigned Pick, std::mt19937_64 &Rng) {
  switch (Pick) {
  case 0: {
    // Ints across the whole range, including both extremes.
    switch (Rng() % 4) {
    case 0:
      return Value::integer(std::numeric_limits<int64_t>::max());
    case 1:
      return Value::integer(std::numeric_limits<int64_t>::min());
    default:
      return Value::integer(static_cast<int64_t>(Rng()));
    }
  }
  case 1: {
    // Exactly representable and never integral: an integral Float
    // renders without a decimal point and reparses as Int (the trace
    // grammar is untyped), which is a representation limit of the
    // format, not a round-trip bug.
    double D = static_cast<double>(static_cast<int64_t>(Rng() % 2000001) -
                                   1000000) +
               0.5;
    return Value::floating(D);
  }
  case 2:
    return Value::boolean(Rng() % 2 == 0);
  case 3: {
    // Strings exercising the escaper: quotes, backslashes, newlines,
    // tabs and plain text.
    static const char Alphabet[] = "ab \"\\\n\tz0#:=";
    std::string S;
    for (size_t I = 0, N = Rng() % 12; I != N; ++I)
      S += Alphabet[Rng() % (sizeof(Alphabet) - 1)];
    return Value::string(S);
  }
  default:
    return Value::unit();
  }
}

std::vector<TraceEvent> randomTrace(const Spec &S, size_t Count,
                                    uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  const StreamId Inputs[] = {*S.lookup("i"), *S.lookup("f"),
                             *S.lookup("b"), *S.lookup("s"),
                             *S.lookup("u")};
  std::vector<TraceEvent> Events;
  Events.reserve(Count);
  Time Ts = 0;
  bool Leaped = false;
  for (size_t I = 0; I != Count; ++I) {
    // Strictly increasing small steps (duplicate (stream, ts) pairs
    // would fail the monitor and are a different property); most seeds
    // additionally leap once toward the Time extreme, leaving enough
    // headroom that the remaining steps cannot overflow.
    if (!Leaped && Rng() % 50 == 0) {
      Ts = std::numeric_limits<Time>::max() - 4096;
      Leaped = true;
    } else {
      Ts += 1 + static_cast<Time>(Rng() % 3);
    }
    unsigned Pick = Rng() % 5;
    Events.emplace_back(Inputs[Pick], Ts, randomValue(Pick, Rng));
  }
  return Events;
}

} // namespace

TEST(TraceIOFuzzTest, FormatParseFormatIsIdentity) {
  Spec S = fuzzSpec();
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    auto Events = randomTrace(S, 120, Seed);
    std::vector<OutputEvent> AsOutputs;
    for (const auto &[Id, Ts, V] : Events)
      AsOutputs.push_back({Ts, Id, V.deepCopy()});
    std::string Text = formatOutputs(S, AsOutputs);

    DiagnosticEngine Diags;
    auto Parsed = parseTrace(Text, S, Diags);
    ASSERT_TRUE(Parsed) << Diags.str() << "\nseed " << Seed << "\n"
                        << Text;
    ASSERT_EQ(Parsed->size(), Events.size()) << "seed " << Seed;
    for (size_t I = 0; I != Events.size(); ++I) {
      EXPECT_EQ(std::get<0>((*Parsed)[I]), std::get<0>(Events[I]))
          << "seed " << Seed << " record " << I;
      EXPECT_EQ(std::get<1>((*Parsed)[I]), std::get<1>(Events[I]))
          << "seed " << Seed << " record " << I;
      EXPECT_TRUE(std::get<2>((*Parsed)[I]) == std::get<2>(Events[I]))
          << "seed " << Seed << " record " << I << ": "
          << std::get<2>(Events[I]).str() << " vs "
          << std::get<2>((*Parsed)[I]).str();
    }

    // Second render reaches a fixpoint (canonical form).
    std::vector<OutputEvent> Again;
    for (const auto &[Id, Ts, V] : *Parsed)
      Again.push_back({Ts, Id, V.deepCopy()});
    EXPECT_EQ(formatOutputs(S, Again), Text) << "seed " << Seed;
  }
}

TEST(TraceIOFuzzTest, BatchWrapPreservesRecordsOrderAndSession) {
  Spec S = fuzzSpec();
  for (uint64_t Seed = 50; Seed <= 70; ++Seed) {
    auto Events = randomTrace(S, 200, Seed);
    SessionId Session = Seed * 7919;
    EventBatch B = toBatch(Events, Session);
    EXPECT_FALSE(B.Close);
    EXPECT_EQ(B.size(), Events.size());
    ASSERT_EQ(B.Records.size(), Events.size());
    for (size_t I = 0; I != Events.size(); ++I) {
      EXPECT_EQ(B.Records[I].Session, Session);
      EXPECT_EQ(B.Records[I].Input, std::get<0>(Events[I]));
      EXPECT_EQ(B.Records[I].Ts, std::get<1>(Events[I]));
      EXPECT_TRUE(B.Records[I].V == std::get<2>(Events[I]))
          << "seed " << Seed << " record " << I;
    }
    B.clear();
    EXPECT_TRUE(B.empty());
  }
}

TEST(TraceIOFuzzTest, BatchReplayMatchesEventReplay) {
  // Feeding through the batch path must be observationally identical to
  // the plain event-vector path, extreme timestamps included.
  Spec S = fuzzSpec();
  Program Plan = compileOrDie(S, true);
  for (uint64_t Seed = 80; Seed <= 92; ++Seed) {
    auto Events = randomTrace(S, 150, Seed);
    std::string E1, E2;
    auto FromEvents = runMonitor(Plan, Events, std::nullopt, &E1);
    auto FromBatch =
        runMonitor(Plan, toBatch(Events), std::nullopt, &E2);
    EXPECT_EQ(E1, E2) << "seed " << Seed;
    EXPECT_EQ(formatOutputs(Plan.spec(), FromEvents),
              formatOutputs(Plan.spec(), FromBatch))
        << "seed " << Seed;
    EXPECT_FALSE(FromEvents.empty()) << "vacuous at seed " << Seed;
  }
}

TEST(TraceIOFuzzTest, ParserRejectsWhatItCannotRoundTrip) {
  // The untrusting half: hostile lines must be rejected, not mangled.
  Spec S = fuzzSpec();
  for (const char *Bad :
       {"9223372036854775808: i = 1",      // Time overflow
        "-1: i = 1",                       // negative timestamp
        "1: s = \"unterminated",           // broken string literal
        "1: s = \"bad\\q\"",               // unknown escape
        "1: t = 1",                        // derived stream as input
        "1: nosuch = 1",                   // unknown stream
        "1: i = ", "1: i", "1:", ":"}) {
    DiagnosticEngine Diags;
    EXPECT_FALSE(parseTrace(Bad, S, Diags)) << Bad;
  }
}
