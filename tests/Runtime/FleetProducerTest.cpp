//===- tests/Runtime/FleetProducerTest.cpp ----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The multi-producer half of the fleet contract: N producer threads
/// feeding through their own ProducerHandles — with work stealing
/// enabled and forced — must produce output byte-identical to running
/// every session through its own sequential Monitor, for every producer
/// count and shard count. Plus the ProducerHandle lifecycle, the
/// cross-producer session hand-off, and the shared EventBatch helpers.
///
/// Run under TSan in CI (tsan-fleet job): the producer rings, the steal
/// protocol, and the migration inbox are exactly the code this
/// instruments.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <thread>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

using SessionTraces = std::map<SessionId, std::vector<TraceEvent>>;

std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

/// The reference: each session through its own sequential Monitor,
/// sessions concatenated in ascending id order.
std::string sequentialReference(const Program &Plan,
                                const SessionTraces &Traces) {
  std::string Out;
  for (const auto &[Session, Events] : Traces) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, std::nullopt, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Runs the traces through a fleet with \p Producers real ingest
/// threads: sessions are partitioned round-robin over the producers,
/// and each producer feeds its own sessions in a seed-determined random
/// interleaving (per-session order preserved). Work stealing runs with
/// a deliberately low backlog threshold so donations actually happen.
std::string producerFleetRun(const Program &Plan,
                             const SessionTraces &Traces,
                             unsigned Shards, unsigned Producers,
                             uint64_t Seed,
                             FleetStats *StatsOut = nullptr) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.BatchSize = 5;     // deliberately small: exercise hand-off
  Opts.QueueCapacity = 4; // ... and ring wrap-around + backpressure
  Opts.StealBacklog = 2;  // steal eagerly
  MonitorFleet Fleet(Plan, Opts);

  std::vector<std::vector<std::pair<SessionId, const std::vector<TraceEvent> *>>>
      Partition(Producers);
  size_t I = 0;
  for (const auto &[Session, Events] : Traces)
    Partition[I++ % Producers].emplace_back(Session, &Events);

  std::vector<std::thread> Threads;
  Threads.reserve(Producers);
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      ProducerHandle Handle = Fleet.producer();
      ASSERT_TRUE(Handle.valid());
      auto &Mine = Partition[P];
      std::vector<size_t> Next(Mine.size(), 0);
      size_t Remaining = 0;
      for (const auto &[Session, Events] : Mine)
        Remaining += Events->size();
      std::mt19937_64 Rng(Seed * 131 + P);
      while (Remaining != 0) {
        size_t Pick = Rng() % Mine.size();
        if (Next[Pick] == Mine[Pick].second->size())
          continue;
        const auto &[Id, Ts, V] = (*Mine[Pick].second)[Next[Pick]++];
        EXPECT_TRUE(Handle.feed(Mine[Pick].first, Id, Ts, V));
        --Remaining;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed())
      << (Fleet.errors().empty() ? std::string()
                                 : Fleet.errors().front().Message);
  if (StatsOut)
    *StatsOut = Fleet.stats();
  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  return Out;
}

} // namespace

TEST(FleetProducerTest, DeterministicAcrossProducersAndShards) {
  // >= 30 random specs (half of them with delay streams; queue builtins
  // are on by default), each checked for byte-identity against the
  // sequential engine at every (producer, shard) combination.
  uint64_t StealsSeen = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    testrandom::RandomSpecOptions SpecOpts;
    SpecOpts.WithDelay = (Seed % 2) == 0;
    Spec S = testrandom::randomSpec(Seed, SpecOpts);
    SessionTraces Traces;
    for (SessionId Session = 0; Session != 6; ++Session)
      Traces[Session * 977 + 13] =
          testrandom::randomSpecTrace(S, 100, Seed * 10007 + Session);

    Program Plan = compileOrDie(S, /*Optimize=*/true);
    std::string Reference = sequentialReference(Plan, Traces);
    EXPECT_FALSE(Reference.empty()) << "vacuous comparison at seed " << Seed;
    for (unsigned Producers : {1u, 3u})
      for (unsigned Shards : {2u, 4u}) {
        FleetStats Stats;
        EXPECT_EQ(producerFleetRun(Plan, Traces, Shards, Producers,
                                   Seed * 31 + Shards * 7 + Producers,
                                   &Stats),
                  Reference)
            << "seed " << Seed << " producers=" << Producers
            << " shards=" << Shards << "\n"
            << S.str();
        EXPECT_EQ(Stats.Producers, Producers);
        StealsSeen += Stats.totalSessionsStolen();
      }
  }
  // The sweep must actually exercise migration somewhere, otherwise the
  // "deterministic under stealing" claim is vacuous.
  EXPECT_GT(StealsSeen, 0u);
}

TEST(FleetProducerTest, StolenSessionMatchesSequentialMonitor) {
  // Migration regression: sessions pinned to one home shard, idle peers
  // standing by, an eager steal threshold — a delay-heavy spec stolen
  // mid-trace must replay byte-identically to the unsharded Monitor.
  testrandom::RandomSpecOptions SpecOpts;
  SpecOpts.WithDelay = true;
  Spec S = testrandom::randomSpec(4, SpecOpts);
  Program Plan = compileOrDie(S, /*Optimize=*/true);

  FleetOptions Opts;
  Opts.Shards = 4;
  Opts.BatchSize = 4;
  Opts.QueueCapacity = 2; // backpressure keeps the backlog visible
  Opts.StealBacklog = 1;  // any backlog at a batch boundary donates
  MonitorFleet Fleet(Plan, Opts);

  // All sessions homed on shard 0, so shards 1-3 are idle thieves.
  std::vector<SessionId> Sessions;
  for (SessionId Id = 1; Sessions.size() < 4; ++Id)
    if (Fleet.shardOf(Id) == 0)
      Sessions.push_back(Id);
  SessionTraces Traces;
  for (size_t I = 0; I != Sessions.size(); ++I)
    Traces[Sessions[I]] =
        testrandom::randomSpecTrace(S, 600, 555 + I);

  // Give the idle workers a moment to post their standing steal
  // requests (they do so before sleeping); not required for
  // correctness, just makes the forced-steal assertion robust.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  ProducerHandle Handle = Fleet.producer();
  std::vector<size_t> Next(Sessions.size(), 0);
  std::mt19937_64 Rng(99);
  size_t Remaining = 0;
  for (const auto &[Session, Events] : Traces)
    Remaining += Events.size();
  while (Remaining != 0) {
    size_t Pick = Rng() % Sessions.size();
    const auto &Trace = Traces[Sessions[Pick]];
    if (Next[Pick] == Trace.size())
      continue;
    const auto &[Id, Ts, V] = Trace[Next[Pick]++];
    ASSERT_TRUE(Handle.feed(Sessions[Pick], Id, Ts, V));
    --Remaining;
  }
  Handle.close();
  Fleet.finish();
  ASSERT_FALSE(Fleet.failed());

  const FleetStats &Stats = Fleet.stats();
  ASSERT_EQ(Stats.Shards.size(), 4u);
  EXPECT_GE(Stats.Shards[0].SessionsStolenOut, 1u)
      << "no session was stolen; the migration path went untested\n"
      << Stats.str();
  EXPECT_EQ(Stats.totalSessionsStolen(), Stats.Shards[0].SessionsStolenOut);

  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  EXPECT_EQ(Out, sequentialReference(Plan, Traces));
}

TEST(FleetProducerTest, CrossProducerSessionHandoffKeepsOrder) {
  // Producer A feeds the first half of a session, closes; producer B
  // (obtained before A closed, fed after — the externally synchronized
  // hand-off) continues it. The sequence-merge must replay A's batches
  // before B's.
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, /*Optimize=*/true);
  std::vector<TraceEvent> Trace = tracegen::randomInts(X, 400, 50, 77);

  FleetOptions Opts;
  Opts.Shards = 2;
  Opts.BatchSize = 3;
  MonitorFleet Fleet(Plan, Opts);
  ProducerHandle A = Fleet.producer();
  ProducerHandle B = Fleet.producer();
  const SessionId Session = 9;
  for (size_t I = 0; I != Trace.size() / 2; ++I) {
    const auto &[Id, Ts, V] = Trace[I];
    ASSERT_TRUE(A.feed(Session, Id, Ts, V));
  }
  A.close(); // flushes, then hands the session off
  for (size_t I = Trace.size() / 2; I != Trace.size(); ++I) {
    const auto &[Id, Ts, V] = Trace[I];
    ASSERT_TRUE(B.feed(Session, Id, Ts, V));
  }
  B.close();
  Fleet.finish();
  ASSERT_FALSE(Fleet.failed())
      << (Fleet.errors().empty() ? std::string()
                                 : Fleet.errors().front().Message);

  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  EXPECT_EQ(Out, sequentialReference(Plan, {{Session, Trace}}));
  EXPECT_EQ(Fleet.stats().Producers, 2u);
}

TEST(FleetProducerTest, ProducerHandleLifecycle) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, /*Optimize=*/true);

  // Default-constructed handles are inert.
  ProducerHandle Invalid;
  EXPECT_FALSE(Invalid.valid());
  EXPECT_FALSE(Invalid.feed(1, X, 0, Value::integer(1)));
  Invalid.flush(); // no-op, no crash
  Invalid.close();

  FleetOptions Opts;
  Opts.Shards = 2;
  Opts.MaxProducers = 2;
  MonitorFleet Fleet(Plan, Opts);

  ProducerHandle P1 = Fleet.producer();
  ASSERT_TRUE(P1.valid());
  // Events start at t=1: seenSet's last() only fires from the second
  // calculation on (the t=0 constant tick initializes it).
  EXPECT_TRUE(P1.feed(1, X, 1, Value::integer(4)));

  // Moving transfers the lane; the source is left invalid.
  ProducerHandle P1b = std::move(P1);
  EXPECT_FALSE(P1.valid());
  ASSERT_TRUE(P1b.valid());
  EXPECT_TRUE(P1b.feed(1, X, 2, Value::integer(5)));

  // The slot table is bounded: MaxProducers handles, then invalid.
  ProducerHandle P2 = Fleet.producer();
  EXPECT_TRUE(P2.valid());
  ProducerHandle P3 = Fleet.producer();
  EXPECT_FALSE(P3.valid());

  // close() is idempotent and ends the handle; feed after close fails.
  P1b.close();
  P1b.close();
  EXPECT_FALSE(P1b.valid());
  EXPECT_FALSE(P1b.feed(1, X, 3, Value::integer(6)));

  Fleet.finish();
  EXPECT_FALSE(Fleet.producer().valid()) << "producer() after finish()";
  EXPECT_FALSE(Fleet.failed());
  unsigned Session1Outputs = 0;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    if (E.Session == 1)
      ++Session1Outputs;
  EXPECT_EQ(Session1Outputs, 2u) << "events fed before the move and "
                                    "after it both reached session 1";
}

TEST(FleetProducerTest, StealingCanBeDisabled) {
  // Same forced-steal setup as above, but with WorkStealing off every
  // session must finish on its home shard.
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, /*Optimize=*/true);

  FleetOptions Opts;
  Opts.Shards = 4;
  Opts.BatchSize = 4;
  Opts.QueueCapacity = 2;
  Opts.StealBacklog = 1;
  Opts.WorkStealing = false;
  MonitorFleet Fleet(Plan, Opts);
  std::vector<SessionId> Sessions;
  for (SessionId Id = 1; Sessions.size() < 3; ++Id)
    if (Fleet.shardOf(Id) == 0)
      Sessions.push_back(Id);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ProducerHandle P = Fleet.producer();
  for (const auto &[Id, Ts, V] : tracegen::randomInts(X, 500, 50, 3))
    for (SessionId Session : Sessions)
      ASSERT_TRUE(P.feed(Session, Id, Ts, V));
  P.close();
  Fleet.finish();
  ASSERT_FALSE(Fleet.failed());
  const FleetStats &Stats = Fleet.stats();
  EXPECT_EQ(Stats.totalSessionsStolen(), 0u);
  EXPECT_EQ(Stats.Shards[0].Sessions, Sessions.size());
}

TEST(FleetProducerTest, EventBatchHelpersRoundTrip) {
  // The shared ingestion batch type (Runtime/TraceIO.h): toBatch
  // attributes records, feedBatch and the batch-flavoured runMonitor
  // replay them like the tuple-based path.
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, /*Optimize=*/true);
  std::vector<TraceEvent> Trace = tracegen::randomInts(X, 200, 30, 11);

  EventBatch B = toBatch(Trace, /*Session=*/42);
  ASSERT_EQ(B.size(), Trace.size());
  EXPECT_FALSE(B.empty());
  EXPECT_FALSE(B.Close);
  for (const EventRecord &R : B.Records)
    EXPECT_EQ(R.Session, 42u);
  EXPECT_EQ(std::get<1>(Trace[5]), B.Records[5].Ts);

  std::string ErrTuple, ErrBatch;
  auto RefOut = runMonitor(Plan, Trace, std::nullopt, &ErrTuple);
  auto BatchOut = runMonitor(Plan, B, std::nullopt, &ErrBatch);
  EXPECT_EQ(ErrTuple, "");
  EXPECT_EQ(ErrBatch, "");
  EXPECT_EQ(formatOutputs(S, BatchOut), formatOutputs(S, RefOut));

  Monitor M(Plan);
  EXPECT_TRUE(feedBatch(M, B));
  M.finish();
  EXPECT_EQ(M.inputEvents(), Trace.size());

  B.clear();
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.size(), 0u);
}
