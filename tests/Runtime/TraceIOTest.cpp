//===- tests/Runtime/TraceIOTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

TEST(ValueLiteralTest, ParsesScalars) {
  EXPECT_EQ(parseValueLiteral("42")->getInt(), 42);
  EXPECT_EQ(parseValueLiteral("-3")->getInt(), -3);
  EXPECT_DOUBLE_EQ(parseValueLiteral("2.5")->getFloat(), 2.5);
  EXPECT_EQ(parseValueLiteral("true")->getBool(), true);
  EXPECT_EQ(parseValueLiteral("false")->getBool(), false);
  EXPECT_EQ(parseValueLiteral("()")->kind(), Value::Kind::Unit);
  EXPECT_EQ(parseValueLiteral("\"hi\\n\"")->getString(), "hi\n");
  EXPECT_EQ(parseValueLiteral("  7 ")->getInt(), 7) << "trims whitespace";
}

TEST(ValueLiteralTest, RejectsGarbage) {
  EXPECT_FALSE(parseValueLiteral(""));
  EXPECT_FALSE(parseValueLiteral("4x"));
  EXPECT_FALSE(parseValueLiteral("\"unterminated"));
  EXPECT_FALSE(parseValueLiteral("\"bad\\q\""));
}

TEST(TraceIOTest, ParsesEventsAgainstSpec) {
  Spec S = parseOrDie("in i: Int\nin f: Float\ndef t := time(i)\nout t");
  DiagnosticEngine Diags;
  auto Events = parseTrace(R"(
# comment
0: i = 1
-- another comment
3: f = 2.5

7: i = -4
)",
                           S, Diags);
  ASSERT_TRUE(Events) << Diags.str();
  ASSERT_EQ(Events->size(), 3u);
  EXPECT_EQ(std::get<0>((*Events)[0]), *S.lookup("i"));
  EXPECT_EQ(std::get<1>((*Events)[1]), 3);
  EXPECT_DOUBLE_EQ(std::get<2>((*Events)[1]).getFloat(), 2.5);
  EXPECT_EQ(std::get<2>((*Events)[2]).getInt(), -4);
}

TEST(TraceIOTest, RejectsUnknownAndNonInputStreams) {
  Spec S = parseOrDie("in i: Int\ndef t := time(i)\nout t");
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseTrace("0: nope = 1", S, Diags));
  DiagnosticEngine Diags2;
  EXPECT_FALSE(parseTrace("0: t = 1", S, Diags2))
      << "derived streams cannot be fed";
}

TEST(TraceIOTest, RejectsMalformedLines) {
  Spec S = parseOrDie("in i: Int\ndef t := time(i)\nout t");
  for (const char *Bad : {"i = 1", "x: i = 1", "-1: i = 1", "0: i 1",
                          "0: i = @"}) {
    DiagnosticEngine Diags;
    EXPECT_FALSE(parseTrace(Bad, S, Diags)) << Bad;
  }
}

TEST(TraceIOTest, RoundTripThroughMonitor) {
  Spec S = parseOrDie("in i: Int\ndef x := i + i\nout x");
  DiagnosticEngine Diags;
  auto Events = parseTrace("1: i = 2\n5: i = 10\n", S, Diags);
  ASSERT_TRUE(Events);
  Program Plan = compileOrDie(S);
  auto Out = runMonitor(Plan, *Events);
  EXPECT_EQ(formatOutputs(Plan.spec(), Out), "1: x = 4\n5: x = 20\n");
}
