//===- tests/Runtime/MonitorFleetTest.cpp -----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The fleet runtime's core guarantee: output is byte-identical to
/// running every session through its own sequential Monitor, regardless
/// of the shard count, the ingest interleaving across sessions, and the
/// aggregate representation (Optimize on/off). Plus the observability
/// counters and per-session failure isolation.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

using SessionTraces = std::map<SessionId, std::vector<TraceEvent>>;

/// Renders one session-attributed output line.
std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

/// The reference: each session through its own sequential Monitor,
/// sessions concatenated in ascending id order.
std::string sequentialReference(const Program &Plan,
                                const SessionTraces &Traces,
                                std::optional<Time> Horizon = std::nullopt) {
  std::string Out;
  for (const auto &[Session, Events] : Traces) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, Horizon, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Runs the same traces through a fleet with \p Shards workers, feeding
/// in a seed-determined random interleaving across sessions (per-session
/// order preserved).
std::string fleetRun(const Program &Plan, const SessionTraces &Traces,
                     unsigned Shards, uint64_t InterleaveSeed,
                     FleetStats *StatsOut = nullptr,
                     std::optional<Time> Horizon = std::nullopt) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.BatchSize = 7;     // deliberately small: exercise hand-off
  Opts.QueueCapacity = 4; // ... and ring wrap-around + backpressure
  Opts.Horizon = Horizon;
  MonitorFleet Fleet(Plan, Opts);
  ProducerHandle P = Fleet.producer();

  std::vector<std::pair<SessionId, const std::vector<TraceEvent> *>> Live;
  std::vector<size_t> Next;
  for (const auto &[Session, Events] : Traces) {
    Live.emplace_back(Session, &Events);
    Next.push_back(0);
  }
  std::mt19937_64 Rng(InterleaveSeed);
  size_t Remaining = 0;
  for (const auto &[Session, Events] : Traces)
    Remaining += Events.size();
  while (Remaining != 0) {
    size_t Pick = Rng() % Live.size();
    if (Next[Pick] == Live[Pick].second->size())
      continue;
    const auto &[Id, Ts, V] = (*Live[Pick].second)[Next[Pick]++];
    EXPECT_TRUE(P.feed(Live[Pick].first, Id, Ts, V));
    --Remaining;
  }
  P.close();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed())
      << (Fleet.errors().empty() ? std::string()
                                 : Fleet.errors().front().Message);
  if (StatsOut)
    *StatsOut = Fleet.stats();
  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  return Out;
}

struct CompiledSpec {
  Program Plan;
  uint32_t MutableCount;

  CompiledSpec(const Spec &S, bool Optimize)
      : Plan(compileOrDie(S, Optimize)),
        MutableCount(mutableStreamCount(Plan)) {}
};

} // namespace

TEST(MonitorFleetTest, DeterministicAcrossShardCountsOnWorkloads) {
  // The evaluation workloads with per-session distinct traces.
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  SessionTraces Traces;
  for (SessionId Session = 0; Session != 24; ++Session)
    Traces[Session * 131 + 7] =
        tracegen::randomInts(X, 300, 40, 100 + Session);

  for (bool Optimize : {true, false}) {
    CompiledSpec C(S, Optimize);
    if (Optimize) {
      EXPECT_GT(C.MutableCount, 0u)
          << "optimization did not kick in; test is vacuous";
    }
    std::string Reference = sequentialReference(C.Plan, Traces);
    EXPECT_FALSE(Reference.empty()) << "vacuous comparison";
    for (unsigned Shards : {1u, 2u, 8u})
      EXPECT_EQ(fleetRun(C.Plan, Traces, Shards, 42 + Shards), Reference)
          << "shards=" << Shards << " optimize=" << Optimize;
  }
}

TEST(MonitorFleetTest, DeterministicOnRandomSpecsAndInterleavings) {
  uint32_t TotalMutable = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Spec S = testrandom::randomSpec(Seed);
    SessionTraces Traces;
    for (SessionId Session = 0; Session != 10; ++Session)
      Traces[Session * 977 + 13] = testrandom::randomSpecTrace(
          S, 120, Seed * 10007 + Session);

    for (bool Optimize : {true, false}) {
      CompiledSpec C(S, Optimize);
      if (Optimize)
        TotalMutable += C.MutableCount;
      std::string Reference = sequentialReference(C.Plan, Traces);
      EXPECT_FALSE(Reference.empty())
          << "vacuous comparison at seed " << Seed;
      for (unsigned Shards : {1u, 2u, 8u})
        EXPECT_EQ(fleetRun(C.Plan, Traces, Shards, Seed * 31 + Shards),
                  Reference)
            << "seed " << Seed << " shards=" << Shards
            << " optimize=" << Optimize << "\n"
            << S.str();
    }
  }
  EXPECT_GT(TotalMutable, 0u)
      << "optimization never kicked in; the property is vacuous";
}

TEST(MonitorFleetTest, DeterministicOnDelaySpecs) {
  // Delay firings happen *between* input timestamps; the fleet must
  // reproduce them per session exactly like the sequential engine.
  testrandom::RandomSpecOptions Opts;
  Opts.WithDelay = true;
  for (uint64_t Seed = 2; Seed <= 5; ++Seed) {
    Spec S = testrandom::randomSpec(Seed, Opts);
    SessionTraces Traces;
    for (SessionId Session = 0; Session != 6; ++Session)
      Traces[Session + 1] =
          testrandom::randomSpecTrace(S, 80, Seed * 555 + Session);
    for (bool Optimize : {true, false}) {
      CompiledSpec C(S, Optimize);
      std::string Reference = sequentialReference(C.Plan, Traces);
      EXPECT_FALSE(Reference.empty())
          << "vacuous comparison at seed " << Seed;
      for (unsigned Shards : {1u, 2u, 8u})
        EXPECT_EQ(fleetRun(C.Plan, Traces, Shards, Seed + Shards),
                  Reference)
            << "seed " << Seed << " shards=" << Shards
            << " optimize=" << Optimize;
    }
  }
}

TEST(MonitorFleetTest, StatsAccountForEveryEventAndSession) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  SessionTraces Traces;
  size_t TotalEvents = 0;
  for (SessionId Session = 0; Session != 16; ++Session) {
    Traces[Session] = tracegen::randomInts(X, 50 + Session, 20, Session);
    TotalEvents += Traces[Session].size();
  }
  CompiledSpec C(S, /*Optimize=*/true);
  FleetStats Stats;
  fleetRun(C.Plan, Traces, /*Shards=*/4, /*InterleaveSeed=*/7, &Stats);
  ASSERT_EQ(Stats.Shards.size(), 4u);
  EXPECT_EQ(Stats.totalEvents(), TotalEvents);
  EXPECT_EQ(Stats.totalSessions(), 16u);
  EXPECT_EQ(Stats.totalFailedSessions(), 0u);
  EXPECT_GT(Stats.totalOutputs(), 0u);
  uint64_t Batches = 0, HighWater = 0;
  for (const ShardStats &Sh : Stats.Shards) {
    Batches += Sh.BatchesDrained;
    HighWater = std::max(HighWater, Sh.QueueHighWater);
  }
  EXPECT_GT(Batches, 0u);
  EXPECT_GE(HighWater, 1u);
  EXPECT_NE(Stats.str().find("shard 3"), std::string::npos);
}

TEST(MonitorFleetTest, SessionFailureIsIsolated) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  CompiledSpec C(S, /*Optimize=*/true);
  FleetOptions Opts;
  Opts.Shards = 2;
  Opts.BatchSize = 3;
  MonitorFleet Fleet(C.Plan, Opts);
  ProducerHandle P = Fleet.producer();
  // Session 1: healthy. Session 2: violates timestamp order.
  P.feed(1, X, 1, Value::integer(4));
  P.feed(2, X, 10, Value::integer(5));
  P.feed(2, X, 5, Value::integer(6)); // out of order -> session fails
  P.feed(1, X, 2, Value::integer(4));
  P.close();
  Fleet.finish();
  EXPECT_TRUE(Fleet.failed());
  auto Errors = Fleet.errors();
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].Session, 2u);
  EXPECT_NE(Errors[0].Message.find("order"), std::string::npos);
  // The healthy session produced its full trace.
  unsigned Session1Outputs = 0;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    if (E.Session == 1)
      ++Session1Outputs;
  EXPECT_EQ(Session1Outputs, 2u);
  EXPECT_EQ(Fleet.stats().totalFailedSessions(), 1u);
}

TEST(MonitorFleetTest, FeedAfterFinishRejected) {
  Spec S = seenSet();
  CompiledSpec C(S, true);
  MonitorFleet Fleet(C.Plan);
  ProducerHandle P = Fleet.producer();
  EXPECT_TRUE(P.feed(1, *S.lookup("x"), 1, Value::integer(1)));
  P.close();
  Fleet.finish();
  // A closed handle rejects records, and no new handle is issued.
  EXPECT_FALSE(P.feed(1, *S.lookup("x"), 2, Value::integer(1)));
  EXPECT_FALSE(Fleet.producer().valid());
  Fleet.finish(); // idempotent
}

TEST(MonitorFleetTest, SessionPinningIsStable) {
  Spec S = seenSet();
  CompiledSpec C(S, true);
  FleetOptions Opts;
  Opts.Shards = 8;
  MonitorFleet Fleet(C.Plan, Opts);
  std::map<unsigned, unsigned> Histogram;
  for (SessionId Session = 0; Session != 1000; ++Session) {
    unsigned Shard = Fleet.shardOf(Session);
    EXPECT_EQ(Shard, Fleet.shardOf(Session)); // stable
    ASSERT_LT(Shard, 8u);
    ++Histogram[Shard];
  }
  // The mixer must spread sequential ids over all shards.
  EXPECT_EQ(Histogram.size(), 8u);
  for (const auto &[Shard, N] : Histogram)
    EXPECT_GT(N, 60u) << "shard " << Shard << " is starved";
}

// FleetMode::Auto observes each shard's arrival pattern over a fixed
// record prefix and re-decides the engine at a batch boundary: chunky
// whole-trace replay (long same-session runs) migrates every lane into
// a per-session engine; interleaved live traffic stays batched. The
// verdict is a pure function of the shard's record sequence, so with a
// single shard (no steals, no cross-shard routing) the switch-over is
// exactly reproducible — and the outputs must stay byte-identical to
// the sequential reference through the mid-run engine migration.
TEST(MonitorFleetTest, AutoEngineSwitchOverIsDeterministic) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  CompiledSpec C(S, /*Optimize=*/true);
  SessionTraces Traces;
  for (SessionId Session = 0; Session != 4; ++Session)
    Traces[Session] = tracegen::randomInts(X, 80, 20, 900 + Session);
  std::string Reference = sequentialReference(C.Plan, Traces);

  auto autoRun = [&](bool Chunky) {
    FleetOptions Opts;
    Opts.Shards = 1; // one shard: the verdict sees every record
    Opts.Mode = FleetMode::Auto;
    Opts.AutoObservationRecords = 64; // decide well before the 320 records end
    Opts.AutoChunkThreshold = 8.0;
    MonitorFleet Fleet(C.Plan, Opts);
    ProducerHandle P = Fleet.producer();
    if (Chunky) {
      for (const auto &[Session, Events] : Traces)
        for (const auto &[Id, Ts, V] : Events)
          EXPECT_TRUE(P.feed(Session, Id, Ts, V));
    } else {
      for (size_t I = 0; I != 80; ++I) // round-robin: runs of length 1
        for (const auto &[Session, Events] : Traces) {
          const auto &[Id, Ts, V] = Events[I];
          EXPECT_TRUE(P.feed(Session, Id, Ts, V));
        }
    }
    P.close();
    Fleet.finish();
    EXPECT_FALSE(Fleet.failed());
    FleetStats Stats = Fleet.stats();
    EXPECT_EQ(Stats.Shards.size(), 1u);
    std::map<SessionId, std::vector<std::string>> Lines;
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      Lines[E.Session].push_back(renderLine(C.Plan.spec(), E.Session, E.Event));
    std::string Out;
    for (const auto &[Session, L] : Lines)
      for (const std::string &Line : L)
        Out += Line;
    EXPECT_EQ(Out, Reference) << (Chunky ? "chunky" : "interleaved");
    return Stats.Shards[0].Engine;
  };

  // Whole traces back to back: mean run length 80 >= 8 -> per-session.
  EXPECT_EQ(autoRun(/*Chunky=*/true), "per-session");
  // Strict round-robin: mean run length 1 < 8 -> stays batched.
  EXPECT_EQ(autoRun(/*Chunky=*/false), "batched");
  // The stats line carries the verdict for operators.
  FleetOptions Opts;
  Opts.Shards = 1;
  Opts.Mode = FleetMode::Auto;
  MonitorFleet Fleet(C.Plan, Opts);
  ProducerHandle P = Fleet.producer();
  P.feed(0, X, 1, Value::integer(1));
  P.close();
  Fleet.finish();
  EXPECT_NE(Fleet.stats().str().find("engine="), std::string::npos);
}
