//===- tests/Runtime/ValueTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Containers.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(ValueTest, ScalarConstructionAndAccess) {
  EXPECT_EQ(Value::unit().kind(), Value::Kind::Unit);
  EXPECT_EQ(Value::boolean(true).getBool(), true);
  EXPECT_EQ(Value::integer(-7).getInt(), -7);
  EXPECT_DOUBLE_EQ(Value::floating(1.5).getFloat(), 1.5);
  EXPECT_EQ(Value::string("hi").getString(), "hi");
}

TEST(ValueTest, FromLiteral) {
  EXPECT_EQ(Value::fromLiteral(ConstantLit{int64_t{3}}).getInt(), 3);
  EXPECT_EQ(Value::fromLiteral(ConstantLit{std::monostate{}}).kind(),
            Value::Kind::Unit);
  EXPECT_EQ(Value::fromLiteral(ConstantLit{true}).getBool(), true);
}

TEST(ValueTest, ScalarEqualityAndOrder) {
  EXPECT_EQ(Value::integer(1), Value::integer(1));
  EXPECT_NE(Value::integer(1), Value::integer(2));
  EXPECT_NE(Value::integer(1), Value::floating(1.0)) << "kinds differ";
  EXPECT_LT(compareValues(Value::integer(1), Value::integer(2)), 0);
  EXPECT_GT(compareValues(Value::string("b"), Value::string("a")), 0);
  EXPECT_EQ(compareValues(Value::unit(), Value::unit()), 0);
}

TEST(ValueTest, ScalarRendering) {
  EXPECT_EQ(Value::unit().str(), "()");
  EXPECT_EQ(Value::boolean(false).str(), "false");
  EXPECT_EQ(Value::integer(42).str(), "42");
  EXPECT_EQ(Value::floating(2.5).str(), "2.5");
  EXPECT_EQ(Value::string("a\"b").str(), "\"a\\\"b\"");
}

namespace {

/// Builds a set through the destructive tier (unique handle + in-place
/// verdict: every update mutates nodes directly).
Value inPlaceSetOf(std::initializer_list<int64_t> Items) {
  Value S = Value::emptySet();
  for (int64_t I : Items) {
    SetCow C = S.setCow(true);
    C.add(Value::integer(I));
    S = std::move(C).finish();
  }
  return S;
}

/// Builds a set through the persistent tier (every update path-copies).
Value persistentSetOf(std::initializer_list<int64_t> Items) {
  Value S = Value::emptySet();
  for (int64_t I : Items) {
    SetCow C = S.setCow(false);
    C.add(Value::integer(I));
    S = std::move(C).finish();
  }
  return S;
}

} // namespace

TEST(ValueTest, AggregateEqualityAcrossUpdateTiers) {
  // The differential tests rely on tier-independent equality: a set
  // built destructively equals one built by path-copying updates.
  EXPECT_EQ(inPlaceSetOf({1, 2, 3}), persistentSetOf({3, 2, 1}));
  EXPECT_NE(inPlaceSetOf({1, 2}), persistentSetOf({1, 2, 3}));
  EXPECT_NE(inPlaceSetOf({1, 2}), persistentSetOf({1, 4}));
}

TEST(ValueTest, AggregateCanonicalRendering) {
  // Sorted element order regardless of hash iteration order and update
  // tier.
  EXPECT_EQ(inPlaceSetOf({10, 2, 35}).str(), "{2, 10, 35}");
  EXPECT_EQ(persistentSetOf({10, 2, 35}).str(), "{2, 10, 35}");
  EXPECT_EQ(inPlaceSetOf({}).str(), "{}");
}

TEST(ValueTest, MapRenderingAndEquality) {
  MapCow M1 = Value::emptyMap().mapCow(true);
  M1.put(Value::integer(2), Value::string("b"));
  M1.put(Value::integer(1), Value::string("a"));
  Value A = std::move(M1).finish();

  MapCow M2 = Value::emptyMap().mapCow(false);
  M2.put(Value::integer(1), Value::string("a"));
  M2.put(Value::integer(2), Value::string("b"));
  Value B = std::move(M2).finish();

  EXPECT_EQ(A, B);
  EXPECT_EQ(A.str(), "{1 -> \"a\", 2 -> \"b\"}");
}

TEST(ValueTest, QueueRenderingKeepsOrder) {
  QueueCow Q = Value::emptyQueue().queueCow(true);
  Q.enqueue(Value::integer(3));
  Q.enqueue(Value::integer(1));
  Q.enqueue(Value::integer(2));
  Value A = std::move(Q).finish();
  EXPECT_EQ(A.str(), "<3, 1, 2>");

  QueueCow P = Value::emptyQueue().queueCow(false);
  P.enqueue(Value::integer(3));
  P.enqueue(Value::integer(1));
  P.enqueue(Value::integer(2));
  EXPECT_EQ(std::move(P).finish(), A);

  // Different order -> unequal.
  QueueCow Q2 = Value::emptyQueue().queueCow(true);
  Q2.enqueue(Value::integer(1));
  Q2.enqueue(Value::integer(3));
  Q2.enqueue(Value::integer(2));
  EXPECT_NE(std::move(Q2).finish(), A);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(inPlaceSetOf({5, 6}).hash(), persistentSetOf({6, 5}).hash());
  EXPECT_EQ(Value::integer(9).hash(), Value::integer(9).hash());
  // Hash must distinguish kinds (no Int/Bool collisions by construction).
  EXPECT_NE(Value::integer(1).hash(), Value::boolean(true).hash());
}

TEST(ValueTest, CopySharesStructure) {
  // Copying a Value copies the handle, not the payload.
  Value A = inPlaceSetOf({1});
  Value B = A;
  EXPECT_EQ(A.aggregateIdentity(), B.aggregateIdentity());
  EXPECT_EQ(A.deepCopy().aggregateIdentity(), A.aggregateIdentity())
      << "deepCopy is the identity under COW";
}

TEST(ValueTest, SharedHandleForcesPathCopyEvenWithInPlaceVerdict) {
  // The destructive tier requires *both* the static verdict and dynamic
  // uniqueness. With the handle shared (use_count == 2), setCow(true)
  // must fall back to a fresh wrapper: the sharer is unaffected.
  Value A = inPlaceSetOf({1});
  Value B = A;
  SetCow C = B.setCow(true);
  C.add(Value::integer(2));
  Value B2 = std::move(C).finish();
  EXPECT_EQ(A.asSet().size(), 1u) << "sharer untouched";
  EXPECT_EQ(B2.asSet().size(), 2u);
  EXPECT_NE(A.aggregateIdentity(), B2.aggregateIdentity());
}

TEST(ValueTest, UniqueHandleWithInPlaceVerdictMutatesDestructively) {
  Value A = inPlaceSetOf({1});
  const void *Before = A.aggregateIdentity();
  SetCow C = A.setCow(true);
  C.add(Value::integer(2));
  Value A2 = std::move(C).finish();
  EXPECT_EQ(A2.aggregateIdentity(), Before) << "wrapper reused in place";
  EXPECT_EQ(A2.asSet().size(), 2u);
}

TEST(ValueTest, PersistentVerdictAlwaysCopiesWrapper) {
  // Without the static in-place verdict, even a dynamically unique
  // handle must path-copy (the program may re-read the source slot).
  Value A = inPlaceSetOf({1});
  const void *Before = A.aggregateIdentity();
  SetCow C = A.setCow(false);
  C.add(Value::integer(2));
  Value A2 = std::move(C).finish();
  EXPECT_NE(A2.aggregateIdentity(), Before);
  EXPECT_EQ(A2.asSet().size(), 2u);
}

TEST(ValueTest, ForEachAggregateNodeReportsWrapperAndSpine) {
  Value S = inPlaceSetOf({1, 2, 3, 4, 5, 6, 7, 8});
  size_t Nodes = 0, Bytes = 0;
  S.forEachAggregateNode([&](const void *P, size_t B, uint32_t Owners) {
    EXPECT_NE(P, nullptr);
    EXPECT_GT(B, 0u);
    EXPECT_GE(Owners, 1u);
    ++Nodes;
    Bytes += B;
    return true;
  });
  EXPECT_GE(Nodes, 2u) << "wrapper plus at least one trie node";
  EXPECT_GT(Bytes, sizeof(SetData));
  // Scalars have no aggregate payload.
  Value::integer(1).forEachAggregateNode(
      [](const void *, size_t, uint32_t) -> bool {
        ADD_FAILURE() << "scalar walked";
        return false;
      });
}
