//===- tests/Runtime/ValueTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Containers.h"

#include <gtest/gtest.h>

using namespace tessla;

TEST(ValueTest, ScalarConstructionAndAccess) {
  EXPECT_EQ(Value::unit().kind(), Value::Kind::Unit);
  EXPECT_EQ(Value::boolean(true).getBool(), true);
  EXPECT_EQ(Value::integer(-7).getInt(), -7);
  EXPECT_DOUBLE_EQ(Value::floating(1.5).getFloat(), 1.5);
  EXPECT_EQ(Value::string("hi").getString(), "hi");
}

TEST(ValueTest, FromLiteral) {
  EXPECT_EQ(Value::fromLiteral(ConstantLit{int64_t{3}}).getInt(), 3);
  EXPECT_EQ(Value::fromLiteral(ConstantLit{std::monostate{}}).kind(),
            Value::Kind::Unit);
  EXPECT_EQ(Value::fromLiteral(ConstantLit{true}).getBool(), true);
}

TEST(ValueTest, ScalarEqualityAndOrder) {
  EXPECT_EQ(Value::integer(1), Value::integer(1));
  EXPECT_NE(Value::integer(1), Value::integer(2));
  EXPECT_NE(Value::integer(1), Value::floating(1.0)) << "kinds differ";
  EXPECT_LT(compareValues(Value::integer(1), Value::integer(2)), 0);
  EXPECT_GT(compareValues(Value::string("b"), Value::string("a")), 0);
  EXPECT_EQ(compareValues(Value::unit(), Value::unit()), 0);
}

TEST(ValueTest, ScalarRendering) {
  EXPECT_EQ(Value::unit().str(), "()");
  EXPECT_EQ(Value::boolean(false).str(), "false");
  EXPECT_EQ(Value::integer(42).str(), "42");
  EXPECT_EQ(Value::floating(2.5).str(), "2.5");
  EXPECT_EQ(Value::string("a\"b").str(), "\"a\\\"b\"");
}

namespace {

Value mutableSetOf(std::initializer_list<int64_t> Items) {
  auto Data = makeSetData(true);
  for (int64_t I : Items)
    Data->Mutable.insert(Value::integer(I));
  return Value::set(std::move(Data));
}

Value persistentSetOf(std::initializer_list<int64_t> Items) {
  auto Data = makeSetData(false);
  for (int64_t I : Items)
    Data->Persistent = Data->Persistent.insert(Value::integer(I));
  return Value::set(std::move(Data));
}

} // namespace

TEST(ValueTest, AggregateEqualityAcrossRepresentations) {
  // The differential tests rely on representation-independent equality.
  EXPECT_EQ(mutableSetOf({1, 2, 3}), persistentSetOf({3, 2, 1}));
  EXPECT_NE(mutableSetOf({1, 2}), persistentSetOf({1, 2, 3}));
  EXPECT_NE(mutableSetOf({1, 2}), persistentSetOf({1, 4}));
}

TEST(ValueTest, AggregateCanonicalRendering) {
  // Sorted element order regardless of hash iteration order and
  // representation.
  EXPECT_EQ(mutableSetOf({10, 2, 35}).str(), "{2, 10, 35}");
  EXPECT_EQ(persistentSetOf({10, 2, 35}).str(), "{2, 10, 35}");
  EXPECT_EQ(mutableSetOf({}).str(), "{}");
}

TEST(ValueTest, MapRenderingAndEquality) {
  auto M1 = makeMapData(true);
  M1->Mutable[Value::integer(2)] = Value::string("b");
  M1->Mutable[Value::integer(1)] = Value::string("a");
  auto M2 = makeMapData(false);
  M2->Persistent =
      M2->Persistent.set(Value::integer(1), Value::string("a"));
  M2->Persistent =
      M2->Persistent.set(Value::integer(2), Value::string("b"));
  EXPECT_EQ(Value::map(M1), Value::map(M2));
  EXPECT_EQ(Value::map(M1).str(), "{1 -> \"a\", 2 -> \"b\"}");
}

TEST(ValueTest, QueueRenderingKeepsOrder) {
  auto Q = makeQueueData(true);
  Q->Mutable.push_back(Value::integer(3));
  Q->Mutable.push_back(Value::integer(1));
  Q->Mutable.push_back(Value::integer(2));
  EXPECT_EQ(Value::queue(Q).str(), "<3, 1, 2>");

  auto P = makeQueueData(false);
  P->Persistent =
      P->Persistent.enqueue(Value::integer(3)).enqueue(Value::integer(1));
  P->Persistent = P->Persistent.enqueue(Value::integer(2));
  EXPECT_EQ(Value::queue(P), Value::queue(Q));
  // Different order -> unequal.
  auto Q2 = makeQueueData(true);
  Q2->Mutable.push_back(Value::integer(1));
  Q2->Mutable.push_back(Value::integer(3));
  Q2->Mutable.push_back(Value::integer(2));
  EXPECT_NE(Value::queue(Q2), Value::queue(Q));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(mutableSetOf({5, 6}).hash(), persistentSetOf({6, 5}).hash());
  EXPECT_EQ(Value::integer(9).hash(), Value::integer(9).hash());
  // Hash must distinguish kinds (no Int/Bool collisions by construction).
  EXPECT_NE(Value::integer(1).hash(), Value::boolean(true).hash());
}

TEST(ValueTest, HandleSharingSemantics) {
  // Copying a Value copies the handle, not the payload — the mechanism
  // destructive updates rely on.
  Value A = mutableSetOf({1});
  Value B = A;
  B.getSet()->Mutable.insert(Value::integer(2));
  EXPECT_EQ(A.getSet()->size(), 2u);
  EXPECT_EQ(A.getSet().get(), B.getSet().get());
}
