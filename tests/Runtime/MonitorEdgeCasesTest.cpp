//===- tests/Runtime/MonitorEdgeCasesTest.cpp --------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Corner cases of the triggering section and value lifetime rules that
/// the main monitor tests don't cover: horizons, zero-timestamp traffic,
/// deep recursion through last, and deepCopy semantics.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string run(const Spec &S, const std::vector<TraceEvent> &Events,
                std::optional<Time> Horizon = std::nullopt) {
  Program Plan = compileOrDie(S);
  std::string Error;
  auto Out = runMonitor(Plan, Events, Horizon, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(Plan.spec(), Out);
}

} // namespace

TEST(MonitorEdgeCasesTest, EventsAtTimestampZero) {
  Spec S = parseOrDie(R"(
    in a: Int
    def withDefault := merge(a, -1)
    def t := time(a)
    out withDefault
    out t
  )");
  // An input exactly at 0 merges with the constant's timestamp-0 event;
  // merge prioritizes the input.
  EXPECT_EQ(run(S, {{*S.lookup("a"), 0, Value::integer(7)}}),
            "0: withDefault = 7\n0: t = 0\n");
  // Without an input at 0 the default wins.
  EXPECT_EQ(run(S, {{*S.lookup("a"), 5, Value::integer(7)}}),
            "0: withDefault = -1\n5: withDefault = 7\n5: t = 5\n");
}

TEST(MonitorEdgeCasesTest, HorizonCutsPendingDelays) {
  Spec S = parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    def t := time(d)
    out t
  )");
  // Armed for t=110; horizon 50 drops it, horizon 110 includes it.
  EXPECT_EQ(run(S, {{*S.lookup("r"), 10, Value::integer(100)}}, 50), "");
  EXPECT_EQ(run(S, {{*S.lookup("r"), 10, Value::integer(100)}}, 110),
            "110: t = 110\n");
}

TEST(MonitorEdgeCasesTest, FinishWithoutHorizonDrainsFiniteDelays) {
  Spec S = parseOrDie(R"(
    in r: Int
    def d := delay(r, r)
    def t := time(d)
    out t
  )");
  // Non-periodic delay chain terminates by itself.
  EXPECT_EQ(run(S, {{*S.lookup("r"), 1, Value::integer(5)}}),
            "6: t = 6\n");
}

TEST(MonitorEdgeCasesTest, DeepLastRecursionLongTrace) {
  // Counting through 100k events exercises the last-slot update path and
  // the touched-slot reset without quadratic behavior.
  Spec S = parseOrDie(R"(
    in x: Int
    def c := merge(last(c, x) + 1, 0)
    def final := filter(c, c == 100000)
    out final
  )");
  std::vector<TraceEvent> Events;
  for (int I = 0; I != 100000; ++I)
    Events.emplace_back(*S.lookup("x"), I + 1, Value::integer(0));
  EXPECT_EQ(run(S, Events), "100000: final = 100000\n");
}

TEST(MonitorEdgeCasesTest, DeepCopySharesYetUpdatesStayIsolated) {
  // deepCopy is the identity now (handles share the persistent payload);
  // isolation comes from COW — an in-place-verdict update sees the share
  // and path-copies instead of mutating through the copy.
  SetCow Init = Value::emptySet().setCow(true);
  Init.add(Value::integer(1));
  Value Original = std::move(Init).finish();
  Value Copy = Original.deepCopy();
  EXPECT_EQ(Copy.aggregateIdentity(), Original.aggregateIdentity())
      << "deepCopy shares the payload in O(1)";

  SetCow C = Original.setCow(true);
  C.add(Value::integer(2));
  Original = std::move(C).finish();
  EXPECT_EQ(Original.asSet().size(), 2u);
  EXPECT_EQ(Copy.asSet().size(), 1u) << "copy unaffected by the update";
  EXPECT_NE(Copy.aggregateIdentity(), Original.aggregateIdentity());

  // Scalars are value types anyway.
  EXPECT_EQ(Value::integer(3).deepCopy().getInt(), 3);
}

TEST(MonitorEdgeCasesTest, MultipleOutputsShareTimestampInDefOrder) {
  Spec S = parseOrDie(R"(
    in a: Int
    def x := a + 1
    def y := a * 2
    out y
    out x
  )");
  // Emission follows stream *definition* order (x defined before y),
  // independent of the order of the `out` marks.
  EXPECT_EQ(run(S, {{*S.lookup("a"), 3, Value::integer(10)}}),
            "3: x = 11\n3: y = 20\n");
}

TEST(MonitorEdgeCasesTest, NoInputsNoOutputsIsFine) {
  Spec S = parseOrDie(R"(
    in a: Int
    def t := time(a)
    out t
  )");
  EXPECT_EQ(run(S, {}), "");
}

TEST(MonitorEdgeCasesTest, LargeTimestampGaps) {
  Spec S = parseOrDie(R"(
    in a: Int
    def t := time(a)
    out t
  )");
  std::vector<TraceEvent> Events{
      {*S.lookup("a"), 1, Value::integer(0)},
      {*S.lookup("a"), 4000000000000000000LL, Value::integer(0)}};
  EXPECT_EQ(run(S, Events),
            "1: t = 1\n4000000000000000000: t = 4000000000000000000\n");
}
