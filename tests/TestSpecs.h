//===- tests/TestSpecs.h - Shared specification fixtures --------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-facing wrappers around the evaluation workload specifications
/// (tessla/Eval/Workloads.h) plus a gtest-flavored parse helper.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_TESTS_TESTSPECS_H
#define TESSLA_TESTS_TESTSPECS_H

#include "tessla/Compiler/Compiler.h"
#include "tessla/Eval/Workloads.h"
#include "tessla/Lang/Builder.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Lang/TypeCheck.h"

#include <gtest/gtest.h>

namespace tessla {
namespace testspecs {

/// Parses and type-checks \p Source, failing the test on any diagnostic.
inline Spec parseOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  EXPECT_TRUE(S) << Diags.str();
  if (!S)
    return Spec();
  return std::move(*S);
}

/// Compiles through the embedding API (Compiler/Compiler.h), failing the
/// test on any diagnostic.
inline Program compileOrDie(const Spec &S, bool Optimize = true,
                            unsigned OptLevel = 0) {
  DiagnosticEngine Diags;
  CompileOptions Opts;
  Opts.Optimize = Optimize;
  Opts.OptLevel = OptLevel;
  auto P = compileSpec(S, Opts, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P ? std::move(*P) : Program();
}

/// Number of streams the mutability analysis decided to implement
/// destructively (reading the decision back from the compiled program).
inline uint32_t mutableStreamCount(const Program &P) {
  uint32_t Count = 0;
  for (StreamId Id = 0; Id != P.numStreams(); ++Id)
    Count += P.isMutable(Id) ? 1 : 0;
  return Count;
}

using workloads::dbAccessConstraint;
using workloads::dbTimeConstraint;
using workloads::figure1;
using workloads::figure4Lower;
using workloads::figure4Upper;
using workloads::mapWindow;
using workloads::peakDetection;
using workloads::queueWindow;
using workloads::seenSet;
using workloads::spectrumCalculation;

} // namespace testspecs
} // namespace tessla

#endif // TESSLA_TESTS_TESTSPECS_H
