//===- tests/Tools/TesslaRunTest.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The deployment pipeline end to end: `tesslac --emit=tpb` produces a
/// bundle, the frontend-free `tessla-run` binary executes it, and the
/// output is byte-identical to `tesslac --run` interpreting the same
/// specification — sequential and fleet mode, over the checked-in paper
/// workload specifications (specs/).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <string>

namespace {

std::string tempPath(const std::string &Name) {
  // Pid-unique: ctest runs the test cases of this binary as separate
  // concurrent processes sharing one TempDir.
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + Name;
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
  ASSERT_TRUE(Out.good());
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Runs \p Cmd, captures stdout; \p Err receives stderr when non-null.
std::pair<int, std::string> run(const std::string &Cmd,
                                std::string *Err = nullptr) {
  std::string OutPath = tempPath("tesslarun_out.txt");
  std::string ErrPath = tempPath("tesslarun_err.txt");
  int Rc =
      std::system((Cmd + " > " + OutPath + " 2> " + ErrPath).c_str());
  if (Err)
    *Err = slurp(ErrPath);
  return {Rc, slurp(OutPath)};
}

/// Compiles \p SpecPath to a bundle, runs it through tessla-run with
/// \p RunArgs, and expects output byte-identical to `tesslac --run` with
/// the same arguments.
void expectBundleParity(const std::string &SpecPath,
                        const std::string &TracePath,
                        const std::string &RunArgs = "") {
  std::string Bundle = tempPath("parity.tpb");
  auto [RcEmit, OutEmit] = run(std::string(TESSLAC_PATH) + " " +
                               SpecPath + " -O1 --emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0) << SpecPath;

  auto [RcRef, Ref] = run(std::string(TESSLAC_PATH) + " " + SpecPath +
                          " -O1 --run " + TracePath + " " + RunArgs);
  ASSERT_EQ(RcRef, 0) << SpecPath;

  auto [RcRun, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                          " --trace " + TracePath + " " + RunArgs);
  EXPECT_EQ(RcRun, 0) << SpecPath;
  EXPECT_EQ(Out, Ref) << SpecPath << " " << RunArgs;
  EXPECT_FALSE(Ref.empty()) << "parity over empty output proves nothing";

  // The trace also arrives over stdin when --trace is omitted.
  auto [RcStdin, OutStdin] = run(std::string(TESSLA_RUN_PATH) + " " +
                                 Bundle + " " + RunArgs + " < " +
                                 TracePath);
  EXPECT_EQ(RcStdin, 0);
  EXPECT_EQ(OutStdin, Ref);
}

std::string specsDir() { return TESSLA_SPECS_DIR; }

std::string intTrace(const std::string &Stream, int Count) {
  std::string Text;
  for (int I = 1; I <= Count; ++I)
    Text += std::to_string(I) + ": " + Stream + " = " +
            std::to_string((I * 7) % 23) + "\n";
  return Text;
}

} // namespace

TEST(TesslaRunTest, SeenSetWorkloadParity) {
  std::string Trace = tempPath("run_seen_trace.txt");
  writeFile(Trace, intTrace("x", 40));
  expectBundleParity(specsDir() + "/seen_set.tessla", Trace);
}

TEST(TesslaRunTest, QueueWindowWorkloadParity) {
  std::string Trace = tempPath("run_queue_trace.txt");
  writeFile(Trace, intTrace("x", 40));
  expectBundleParity(specsDir() + "/queue_window.tessla", Trace);
}

TEST(TesslaRunTest, DbAccessWorkloadParity) {
  std::string Trace = tempPath("run_db_trace.txt");
  writeFile(Trace, "1: ins = 5\n2: acc = 5\n3: acc = 6\n4: del = 5\n"
                   "5: acc = 5\n6: ins = 6\n7: acc = 6\n");
  expectBundleParity(specsDir() + "/db_access.tessla", Trace);
}

TEST(TesslaRunTest, FleetReplayParity) {
  std::string Trace = tempPath("run_fleet_trace.txt");
  writeFile(Trace, intTrace("x", 20));
  for (const char *Shards : {"1", "3"})
    expectBundleParity(specsDir() + "/seen_set.tessla", Trace,
                       std::string("--fleet ") + Shards + " --sessions 4");
}

TEST(TesslaRunTest, FleetEngineFlagsParity) {
  // The execution-engine flags ride the bundle path too: a loaded
  // Program must replay byte-identically under both engines.
  std::string Trace = tempPath("run_fleet_engine_trace.txt");
  writeFile(Trace, intTrace("x", 20));
  for (const char *Engine : {"--batched", "--per-session"})
    expectBundleParity(specsDir() + "/seen_set.tessla", Trace,
                       std::string("--fleet 2 --sessions 4 ") + Engine);
}

TEST(TesslaRunTest, PlanPrintsLoadedProgram) {
  std::string Bundle = tempPath("run_plan.tpb");
  auto [RcEmit, OutEmit] =
      run(std::string(TESSLAC_PATH) + " " + specsDir() +
          "/seen_set.tessla -O1 --emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0);
  auto [Rc, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                       " --plan");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("slots:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[fused]"), std::string::npos) << Out;
  // The bundle preserves the plan rendering exactly.
  auto [RcRef, Ref] = run(std::string(TESSLAC_PATH) + " " + specsDir() +
                          "/seen_set.tessla -O1 --emit=plan");
  ASSERT_EQ(RcRef, 0);
  EXPECT_EQ(Out, Ref);
}

TEST(TesslaRunTest, CorruptBundleFailsWithDiagnostic) {
  std::string Bundle = tempPath("run_corrupt.tpb");
  auto [RcEmit, OutEmit] =
      run(std::string(TESSLAC_PATH) + " " + specsDir() +
          "/seen_set.tessla -O1 --emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0);
  std::string Bytes = slurp(Bundle);
  ASSERT_GT(Bytes.size(), 32u);
  Bytes[Bytes.size() / 2] ^= 0x40;
  writeFile(Bundle, Bytes);
  std::string Err;
  auto [Rc, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle, &Err);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Err.find("tpb:"), std::string::npos) << Err;

  // A missing bundle and a non-bundle file fail the same clean way.
  std::string ErrMissing;
  auto [RcMissing, OutMissing] = run(
      std::string(TESSLA_RUN_PATH) + " /definitely/not/here.tpb",
      &ErrMissing);
  EXPECT_NE(RcMissing, 0);
  EXPECT_FALSE(ErrMissing.empty());
  std::string ErrText;
  auto [RcText, OutText] =
      run(std::string(TESSLA_RUN_PATH) + " " + specsDir() +
              "/seen_set.tessla",
          &ErrText);
  EXPECT_NE(RcText, 0);
  EXPECT_NE(ErrText.find("magic"), std::string::npos) << ErrText;
}

TEST(TesslaRunTest, DelaySpecWithHorizon) {
  std::string Trace = tempPath("run_empty_trace.txt");
  writeFile(Trace, "");
  std::string Bundle = tempPath("run_periodic.tpb");
  auto [RcEmit, OutEmit] =
      run(std::string(TESSLAC_PATH) + " " + specsDir() +
          "/periodic.tessla -O1 --emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0);
  auto [Rc, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                       " --trace " + Trace + " --horizon 50");
  EXPECT_EQ(Rc, 0);
  auto [RcRef, Ref] = run(std::string(TESSLAC_PATH) + " " + specsDir() +
                          "/periodic.tessla -O1 --run " + Trace +
                          " --horizon 50");
  ASSERT_EQ(RcRef, 0);
  EXPECT_EQ(Out, Ref);
  EXPECT_NE(Out.find("t = "), std::string::npos) << Out;
}

TEST(TesslaRunTest, NativeEngineBundleParity) {
  // The native tier is deployment-side: a loaded bundle is compiled by
  // the system compiler behind the frontend-free binary and must replay
  // byte-identically to the interpreter — sequentially and in a fleet.
  std::string Trace = tempPath("run_native_trace.txt");
  writeFile(Trace, intTrace("x", 20));
  expectBundleParity(specsDir() + "/seen_set.tessla", Trace,
                     "--engine=native");
  expectBundleParity(specsDir() + "/seen_set.tessla", Trace,
                     "--fleet 2 --sessions 4 --engine=native");
}

TEST(TesslaRunTest, EngineAliasesAndConflictsMatchTesslac) {
  std::string Trace = tempPath("run_engine_alias_trace.txt");
  writeFile(Trace, intTrace("x", 12));
  std::string Bundle = tempPath("engine_alias.tpb");
  auto [RcEmit, OutEmit] = run(std::string(TESSLAC_PATH) + " " +
                               specsDir() + "/seen_set.tessla -O1 "
                               "--emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0);
  auto [RcRef, Ref] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                          " --trace " + Trace);
  ASSERT_EQ(RcRef, 0);
  ASSERT_FALSE(Ref.empty()) << "vacuous comparison";
  // The aliases and their --engine= spellings agree with the default.
  for (const char *Engine : {" --engine=interp", " --engine=batched",
                             " --per-session", " --batched"}) {
    auto [Rc, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                         " --trace " + Trace + Engine);
    EXPECT_EQ(Rc, 0) << Engine;
    EXPECT_EQ(Out, Ref) << Engine;
  }
  // Disagreeing selections are rejected, same wording as tesslac.
  std::string Err;
  auto [RcConflict, OutConflict] =
      run(std::string(TESSLA_RUN_PATH) + " " + Bundle + " --trace " +
              Trace + " --per-session --engine=native",
          &Err);
  EXPECT_NE(RcConflict, 0);
  EXPECT_NE(Err.find("conflicting engine selections '--per-session' and "
                     "'--engine=native'"),
            std::string::npos)
      << Err;
}

TEST(TesslaRunTest, ServeConnectCheckpointMigration) {
  // The service lifecycle across real processes: serve a bundle on a
  // Unix socket, feed the first half of a trace, take a live
  // checkpoint, kill the server, re-serve the checkpoint in a *new*
  // server with a different shard count, feed the rest, and the
  // finished trace is byte-identical to an uninterrupted local fleet
  // run of the same bundle.
  std::string Bundle = tempPath("serve.tpb");
  auto [RcEmit, OutEmit] = run(std::string(TESSLAC_PATH) + " " +
                               specsDir() + "/seen_set.tessla -O1 "
                               "--emit=tpb -o " + Bundle);
  ASSERT_EQ(RcEmit, 0);
  std::string Trace = tempPath("serve_trace.txt");
  writeFile(Trace, intTrace("x", 40));

  auto [RcRef, Ref] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                          " --trace " + Trace + " --fleet 2 --sessions 4");
  ASSERT_EQ(RcRef, 0);
  ASSERT_FALSE(Ref.empty()) << "uninterrupted reference is vacuous";

  // Await a background server's socket (they bind before accepting).
  auto AwaitSocket = [](const std::string &Path) {
    for (int I = 0; I != 200 && ::access(Path.c_str(), F_OK) != 0; ++I)
      ::usleep(50 * 1000);
    return ::access(Path.c_str(), F_OK) == 0;
  };

  std::string SockA = tempPath("serve_a.sock");
  std::string LogA = tempPath("serve_a.log");
  ASSERT_EQ(std::system((std::string(TESSLA_RUN_PATH) + " " + Bundle +
                         " --serve " + SockA + " --fleet 2 > " + LogA +
                         " 2>&1 &")
                            .c_str()),
            0);
  ASSERT_TRUE(AwaitSocket(SockA)) << slurp(LogA);

  // Feed the head (ts <= 20) from two concurrent producer processes.
  auto [RcFeed, OutFeed] = run(std::string(TESSLA_RUN_PATH) + " " +
                               Bundle + " --connect " + SockA +
                               " --trace " + Trace +
                               " --sessions 4 --producers 2"
                               " --feed-until 20");
  EXPECT_EQ(RcFeed, 0) << slurp(LogA);

  std::string Ck = tempPath("serve.tcp");
  std::string CkErr;
  auto [RcCk, OutCk] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                               " --connect " + SockA +
                               " --checkpoint-to " + Ck + " --stats",
                           &CkErr);
  EXPECT_EQ(RcCk, 0) << CkErr;
  EXPECT_NE(CkErr.find("checkpoint:"), std::string::npos) << CkErr;
  ASSERT_EQ(::access(Ck.c_str(), F_OK), 0);

  auto [RcDown, OutDown] = run(std::string(TESSLA_RUN_PATH) + " " +
                               Bundle + " --connect " + SockA +
                               " --shutdown");
  EXPECT_EQ(RcDown, 0) << slurp(LogA);

  // Second server: different shard count, seeded from the checkpoint.
  std::string SockB = tempPath("serve_b.sock");
  std::string LogB = tempPath("serve_b.log");
  ASSERT_EQ(std::system((std::string(TESSLA_RUN_PATH) + " " + Bundle +
                         " --serve " + SockB + " --fleet 3" +
                         " --restore-from " + Ck + " > " + LogB +
                         " 2>&1 &")
                            .c_str()),
            0);
  ASSERT_TRUE(AwaitSocket(SockB)) << slurp(LogB);

  auto [RcTail, OutTail] = run(std::string(TESSLA_RUN_PATH) + " " +
                               Bundle + " --connect " + SockB +
                               " --trace " + Trace +
                               " --sessions 4 --producers 2"
                               " --skip-until 20");
  EXPECT_EQ(RcTail, 0) << slurp(LogB);

  auto [RcFin, Out] = run(std::string(TESSLA_RUN_PATH) + " " + Bundle +
                          " --connect " + SockB + " --finish");
  EXPECT_EQ(RcFin, 0) << slurp(LogB);
  EXPECT_EQ(Out, Ref)
      << "checkpoint-migrated service run diverged from the "
         "uninterrupted local fleet";

  auto [RcDownB, OutDownB] = run(std::string(TESSLA_RUN_PATH) + " " +
                                 Bundle + " --connect " + SockB +
                                 " --shutdown");
  EXPECT_EQ(RcDownB, 0) << slurp(LogB);
}

TEST(TesslaRunTest, ConnectRejectsForeignBundle) {
  // The HelloAck carries the server program's checksum: a client armed
  // with a different bundle must refuse before feeding anything.
  std::string BundleA = tempPath("mismatch_a.tpb");
  std::string BundleB = tempPath("mismatch_b.tpb");
  ASSERT_EQ(run(std::string(TESSLAC_PATH) + " " + specsDir() +
                "/seen_set.tessla -O1 --emit=tpb -o " + BundleA)
                .first,
            0);
  ASSERT_EQ(run(std::string(TESSLAC_PATH) + " " + specsDir() +
                "/queue_window.tessla -O1 --emit=tpb -o " + BundleB)
                .first,
            0);

  std::string Sock = tempPath("mismatch.sock");
  std::string Log = tempPath("mismatch.log");
  ASSERT_EQ(std::system((std::string(TESSLA_RUN_PATH) + " " + BundleA +
                         " --serve " + Sock + " > " + Log + " 2>&1 &")
                            .c_str()),
            0);
  for (int I = 0; I != 200 && ::access(Sock.c_str(), F_OK) != 0; ++I)
    ::usleep(50 * 1000);
  ASSERT_EQ(::access(Sock.c_str(), F_OK), 0) << slurp(Log);

  std::string Err;
  auto [RcBad, OutBad] = run(std::string(TESSLA_RUN_PATH) + " " +
                                 BundleB + " --connect " + Sock +
                                 " --stats",
                             &Err);
  EXPECT_NE(RcBad, 0);
  EXPECT_NE(Err.find("bundle mismatch"), std::string::npos) << Err;

  auto [RcDown, OutDown] = run(std::string(TESSLA_RUN_PATH) + " " +
                               BundleA + " --connect " + Sock +
                               " --shutdown");
  EXPECT_EQ(RcDown, 0) << slurp(Log);
}
