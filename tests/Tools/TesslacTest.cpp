//===- tests/Tools/TesslacTest.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Drives the tesslac compiler binary end to end (report/flat/dot/plan/
/// cpp emission and trace execution).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <string>

namespace {

std::string tempPath(const std::string &Name) {
  // Pid-unique: ctest runs the test cases of this binary as separate
  // concurrent processes sharing one TempDir.
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + Name;
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
  ASSERT_TRUE(Out.good());
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Runs tesslac with \p Args, captures stdout, returns (exit, output).
/// \p Err receives stderr when non-null.
std::pair<int, std::string> runTool(const std::string &Args,
                                    std::string *Err = nullptr) {
  std::string OutPath = tempPath("tesslac_out.txt");
  std::string ErrPath = tempPath("tesslac_err.txt");
  std::string Cmd = std::string(TESSLAC_PATH) + " " + Args + " > " +
                    OutPath + " 2> " + ErrPath;
  int Rc = std::system(Cmd.c_str());
  if (Err)
    *Err = slurp(ErrPath);
  return {Rc, slurp(OutPath)};
}

const char *SeenSetSource = R"(
in x: Int
def prev := last(merge(y, setEmpty()), x)
def seen := setContains(prev, x)
def y    := setToggle(prev, x)
out seen
)";

std::string specFile() {
  std::string Path = tempPath("seen.tessla");
  writeFile(Path, SeenSetSource);
  return Path;
}

} // namespace

TEST(TesslacTest, DefaultReportsMutability) {
  auto [Rc, Out] = runTool(specFile());
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("mutability analysis report"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("mutable"), std::string::npos);
}

TEST(TesslacTest, EmitFlat) {
  auto [Rc, Out] = runTool(specFile() + " --emit=flat");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("prev = last("), std::string::npos) << Out;
}

TEST(TesslacTest, EmitDot) {
  auto [Rc, Out] = runTool(specFile() + " --emit=dot");
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out.substr(0, 7), "digraph");
}

TEST(TesslacTest, DumpAnalysisPrintsFactsAndMemorySummary) {
  auto [Rc, Out] = runTool(specFile() + " --dump-analysis");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("analysis facts:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("tick=var"), std::string::npos) << Out;
  EXPECT_NE(Out.find("clock="), std::string::npos) << Out;
  // The seen-set accumulator grows without bound; the dump names the
  // growth cycle.
  EXPECT_NE(Out.find("memory: unbounded growth at"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("cycle: "), std::string::npos) << Out;
}

TEST(TesslacTest, DumpAnalysisDotAnnotatesNodes) {
  auto [Rc, Out] = runTool(specFile() + " --dump-analysis=dot");
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out.substr(0, 16), "digraph analysis") << Out;
  EXPECT_NE(Out.find("tick=var"), std::string::npos) << Out;
  // Unbounded aggregates are drawn red-ish for at-a-glance triage.
  EXPECT_NE(Out.find("lightpink"), std::string::npos) << Out;
}

TEST(TesslacTest, DumpAnalysisReflectsOptimizationLevel) {
  // At -O1 the tautological filter folds away; the optimized program's
  // facts show the comparison stream gone (tick=never, no step) while
  // the baseline still carries it.
  std::string Path = tempPath("taut.tessla");
  writeFile(Path, "in x: Int\n"
                  "def keep := filter(x, x == x)\n"
                  "out keep\n");
  auto [Rc0, Out0] = runTool(Path + " --dump-analysis -O0");
  EXPECT_EQ(Rc0, 0);
  EXPECT_EQ(Out0.find("_t0: tick=never"), std::string::npos) << Out0;
  auto [Rc1, Out1] = runTool(Path + " --dump-analysis -O1");
  EXPECT_EQ(Rc1, 0);
  EXPECT_NE(Out1.find("_t0: tick=never"), std::string::npos) << Out1;
}

TEST(TesslacTest, EmitPlanShowsInPlace) {
  auto [Rc, Out] = runTool(specFile() + " --emit=plan");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("[in-place]"), std::string::npos) << Out;
  auto [RcBase, OutBase] =
      runTool(specFile() + " --emit=plan --baseline");
  EXPECT_EQ(RcBase, 0);
  EXPECT_EQ(OutBase.find("[in-place]"), std::string::npos) << OutBase;
}

TEST(TesslacTest, EmitSourceRoundTrips) {
  auto [Rc, Out] = runTool(specFile() + " --emit=source");
  EXPECT_EQ(Rc, 0);
  // The emitted source is itself a valid spec: feed it back in.
  std::string Path = tempPath("roundtrip.tessla");
  writeFile(Path, Out);
  auto [Rc2, Out2] = runTool(Path + " --emit=source");
  EXPECT_EQ(Rc2, 0);
  EXPECT_EQ(Out, Out2);
}

TEST(TesslacTest, EmitStats) {
  auto [Rc, Out] = runTool(specFile() + " --emit=stats");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("mutable streams:"), std::string::npos) << Out;
}

TEST(TesslacTest, EmitCppWithMain) {
  auto [Rc, Out] = runTool(specFile() + " --emit=cpp --main");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("class GeneratedMonitor"), std::string::npos);
  EXPECT_NE(Out.find("int main()"), std::string::npos);
}

TEST(TesslacTest, RunTrace) {
  std::string TracePath = tempPath("seen_trace.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n3: x = 6\n");
  auto [Rc, Out] = runTool(specFile() + " --run " + TracePath);
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out, "1: seen = false\n2: seen = true\n3: seen = false\n");
  // Optimized and baseline agree.
  auto [RcB, OutB] =
      runTool(specFile() + " --baseline --run " + TracePath);
  EXPECT_EQ(RcB, 0);
  EXPECT_EQ(Out, OutB);
}

TEST(TesslacTest, FleetReplayMatchesSequentialPerSession) {
  std::string TracePath = tempPath("seen_trace_fleet.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n3: x = 6\n");
  auto [RcSeq, OutSeq] = runTool(specFile() + " --run " + TracePath);
  ASSERT_EQ(RcSeq, 0);
  // Every session replays the same trace; the merged output is the
  // per-session sequential trace with an "s<id>| " prefix, sessions in
  // ascending order — independent of the shard count.
  std::string Expected;
  for (int Session = 0; Session != 3; ++Session) {
    std::istringstream Lines(OutSeq);
    std::string Line;
    while (std::getline(Lines, Line))
      Expected += "s" + std::to_string(Session) + "| " + Line + "\n";
  }
  for (const char *Shards : {"1", "2", "4"}) {
    auto [Rc, Out] = runTool(specFile() + " --run " + TracePath +
                             " --fleet " + Shards + " --sessions 3");
    EXPECT_EQ(Rc, 0);
    EXPECT_EQ(Out, Expected) << "shards=" << Shards;
  }
}

TEST(TesslacTest, FleetEngineFlagsAreByteIdentical) {
  // --batched (the default via Auto) and --per-session must both be
  // accepted and produce byte-identical replay output.
  std::string TracePath = tempPath("seen_trace_engine.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n3: x = 6\n4: x = 5\n");
  std::string Base =
      specFile() + " --run " + TracePath + " --fleet 2 --sessions 4";
  auto [RcDefault, OutDefault] = runTool(Base);
  ASSERT_EQ(RcDefault, 0);
  ASSERT_FALSE(OutDefault.empty()) << "vacuous comparison";
  for (const char *Engine : {" --batched", " --per-session"}) {
    auto [Rc, Out] = runTool(Base + Engine);
    EXPECT_EQ(Rc, 0) << Engine;
    EXPECT_EQ(Out, OutDefault) << Engine;
  }
}

TEST(TesslacTest, OptimizedPlanShowsFusedSteps) {
  auto [Rc, Out] = runTool(specFile() + " --emit=plan -O1");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("[fused]"), std::string::npos) << Out;
  // The orphaned last step is gone and the slot table is compacted.
  EXPECT_EQ(Out.find("prev = last("), std::string::npos) << Out;
  EXPECT_NE(Out.find("slots: value=6 last=1 delay=0"),
            std::string::npos)
      << Out;
}

TEST(TesslacTest, DumpPassesPrintsStatistics) {
  std::string Err;
  auto [Rc, Out] =
      runTool(specFile() + " --emit=plan -O1 --dump-passes", &Err);
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Err.find("constant-fold: steps 7 -> 7"), std::string::npos)
      << Err;
  EXPECT_NE(Err.find("step-fusion: steps 7 -> 7 (fused 2)"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("dead-step-elim: steps 7 -> 6 (eliminated 1)"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("total: steps 7 -> 6"), std::string::npos) << Err;
}

TEST(TesslacTest, OptimizedRunMatchesUnoptimized) {
  std::string TracePath = tempPath("seen_trace_opt.txt");
  writeFile(TracePath,
            "1: x = 5\n2: x = 5\n3: x = 6\n4: x = 5\n5: x = 6\n");
  auto [Rc0, Out0] = runTool(specFile() + " --run " + TracePath);
  auto [Rc1, Out1] = runTool(specFile() + " --run " + TracePath + " -O1");
  EXPECT_EQ(Rc0, 0);
  EXPECT_EQ(Rc1, 0);
  EXPECT_EQ(Out0, Out1);
  EXPECT_FALSE(Out0.empty());
}

TEST(TesslacTest, OptimizedCppEmission) {
  auto [Rc0, Out0] = runTool(specFile() + " --emit=cpp");
  auto [Rc1, Out1] = runTool(specFile() + " --emit=cpp -O1");
  EXPECT_EQ(Rc0, 0);
  EXPECT_EQ(Rc1, 0);
  // The fused program drops the last-step intermediate variable.
  EXPECT_NE(Out0.find("v_prev"), std::string::npos);
  EXPECT_EQ(Out1.find("v_prev"), std::string::npos) << Out1;
  EXPECT_NE(Out1.find("[fused]"), std::string::npos) << Out1;
}

TEST(TesslacTest, LintWarnsOnStderr) {
  std::string Path = tempPath("lint.tessla");
  writeFile(Path, "in x: Int\n"
                  "def unused := x + 1\n"
                  "out x\n");
  std::string Err;
  auto [Rc, Out] = runTool(Path + " --lint --emit=flat", &Err);
  EXPECT_EQ(Rc, 0) << "plain --lint must not change the exit code";
  EXPECT_NE(Err.find("warning 2:1: stream 'unused' is never read"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("[unused-stream]"), std::string::npos) << Err;
}

TEST(TesslacTest, WerrorFailsTheBuild) {
  std::string Path = tempPath("lint_werror.tessla");
  writeFile(Path, "in x: Int\n"
                  "def unused := x + 1\n"
                  "out x\n");
  std::string Err;
  auto [Rc, Out] = runTool(Path + " --werror --emit=flat", &Err);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Err.find("error 2:1: stream 'unused' is never read"),
            std::string::npos)
      << Err;
  // A clean spec passes --werror.
  std::string CleanErr;
  auto [RcClean, OutClean] =
      runTool(specFile() + " --werror --emit=flat", &CleanErr);
  EXPECT_EQ(RcClean, 0) << CleanErr;
  EXPECT_EQ(CleanErr, "");
}

TEST(TesslacTest, OutputFlagWritesFile) {
  // -o routes any emission to a file instead of stdout, byte-identical.
  std::string OutPath = tempPath("emit_o.plan");
  auto [RcStdout, OutStdout] = runTool(specFile() + " --emit=plan -O1");
  ASSERT_EQ(RcStdout, 0);
  auto [RcFile, OutFile] =
      runTool(specFile() + " --emit=plan -O1 -o " + OutPath);
  EXPECT_EQ(RcFile, 0);
  EXPECT_EQ(OutFile, "") << "-o must leave stdout empty";
  EXPECT_EQ(slurp(OutPath), OutStdout);
  // An unwritable destination is a clean error, not a crash.
  std::string Err;
  auto [RcBad, OutBad] = runTool(
      specFile() + " --emit=plan -o /definitely/not/a/dir/x.plan", &Err);
  EXPECT_NE(RcBad, 0);
  EXPECT_FALSE(Err.empty());
}

TEST(TesslacTest, EmitTpbWritesBundle) {
  std::string Bundle = tempPath("emit_tpb.tpb");
  auto [Rc, Out] =
      runTool(specFile() + " -O1 --emit=tpb -o " + Bundle);
  EXPECT_EQ(Rc, 0);
  std::string Bytes = slurp(Bundle);
  ASSERT_GT(Bytes.size(), 16u);
  EXPECT_EQ(Bytes.substr(0, 3), "TPB");
  EXPECT_EQ(Bytes[3], '\x1a');
  // Without -o the raw bundle goes to stdout.
  auto [RcStdout, OutStdout] = runTool(specFile() + " -O1 --emit=tpb");
  EXPECT_EQ(RcStdout, 0);
  EXPECT_EQ(OutStdout, Bytes);
}

TEST(TesslacTest, RunAliasesEmitRunWithTrace) {
  // --run <trace> is shorthand for --emit=run --trace <trace>.
  std::string TracePath = tempPath("alias_trace.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n3: x = 6\n");
  auto [RcShort, OutShort] = runTool(specFile() + " --run " + TracePath);
  auto [RcLong, OutLong] =
      runTool(specFile() + " --emit=run --trace " + TracePath);
  EXPECT_EQ(RcShort, 0);
  EXPECT_EQ(RcLong, 0);
  EXPECT_EQ(OutShort, OutLong);
  EXPECT_FALSE(OutShort.empty());
  // --emit=run without a trace is a usage error.
  std::string Err;
  auto [RcNoTrace, OutNoTrace] =
      runTool(specFile() + " --emit=run", &Err);
  EXPECT_NE(RcNoTrace, 0);
  EXPECT_NE(Err.find("--trace"), std::string::npos) << Err;
}

TEST(TesslacTest, ErrorsOnBadInput) {
  std::string BadPath = tempPath("bad.tessla");
  writeFile(BadPath, "def x := nope\nout x\n");
  auto [Rc, Out] = runTool(BadPath);
  EXPECT_NE(Rc, 0);
  auto [Rc2, Out2] = runTool("/definitely/not/here.tessla");
  EXPECT_NE(Rc2, 0);
  auto [Rc3, Out3] = runTool(specFile() + " --emit=nonsense");
  EXPECT_NE(Rc3, 0);
}

TEST(TesslacTest, EngineFlagUnifiesSelection) {
  // --engine= is the one knob; --batched / --per-session are aliases.
  // Every selection replays byte-identically, sequential and fleet.
  std::string TracePath = tempPath("seen_trace_engine_flag.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n3: x = 6\n4: x = 5\n");
  std::string Seq = specFile() + " --run " + TracePath;
  auto [RcSeq, OutSeq] = runTool(Seq);
  ASSERT_EQ(RcSeq, 0);
  ASSERT_FALSE(OutSeq.empty()) << "vacuous comparison";
  for (const char *Engine :
       {" --engine=interp", " --engine=batched", " --engine=native"}) {
    auto [Rc, Out] = runTool(Seq + Engine);
    EXPECT_EQ(Rc, 0) << Engine;
    EXPECT_EQ(Out, OutSeq) << Engine;
  }
  std::string Fleet = Seq + " --fleet 2 --sessions 3";
  auto [RcFleet, OutFleet] = runTool(Fleet);
  ASSERT_EQ(RcFleet, 0);
  for (const char *Engine :
       {" --engine=interp", " --engine=batched", " --engine=native",
        " --batched", " --per-session"}) {
    auto [Rc, Out] = runTool(Fleet + Engine);
    EXPECT_EQ(Rc, 0) << Engine;
    EXPECT_EQ(Out, OutFleet) << Engine;
  }
}

TEST(TesslacTest, ConflictingEngineSelectionsRejected) {
  std::string TracePath = tempPath("seen_trace_engine_conflict.txt");
  writeFile(TracePath, "1: x = 5\n");
  std::string Err;
  auto [Rc, Out] = runTool(
      specFile() + " --run " + TracePath + " --batched --engine=native",
      &Err);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Err.find("conflicting engine selections '--batched' and "
                     "'--engine=native'"),
            std::string::npos)
      << Err;
  // Agreeing selections are not a conflict.
  auto [RcAgree, OutAgree] = runTool(
      specFile() + " --run " + TracePath + " --batched --engine=batched");
  EXPECT_EQ(RcAgree, 0);
  // Unknown engines die with usage, not a silent default.
  Err.clear();
  auto [RcBad, OutBad] = runTool(
      specFile() + " --run " + TracePath + " --engine=warp", &Err);
  EXPECT_NE(RcBad, 0);
  EXPECT_NE(Err.find("unknown engine 'warp'"), std::string::npos) << Err;
}

TEST(TesslacTest, NativeEngineFallsBackWithoutCompiler) {
  // With the native compiler pointed at a nonexistent binary, the run
  // must still succeed through the interpreter, with one diagnostic.
  std::string TracePath = tempPath("seen_trace_native_fb.txt");
  writeFile(TracePath, "1: x = 5\n2: x = 5\n");
  auto [RcRef, OutRef] = runTool(specFile() + " --run " + TracePath);
  ASSERT_EQ(RcRef, 0);
  // runTool() prepends the binary, so build this command by hand to put
  // the env override in front of it.
  std::string OutPath = tempPath("native_fb_out.txt");
  std::string ErrPath = tempPath("native_fb_err.txt");
  int Rc = std::system(("env TESSLA_NATIVE_CXX=/nonexistent-tessla-cxx " +
                        std::string(TESSLAC_PATH) + " " + specFile() +
                        " --run " + TracePath + " --engine=native > " +
                        OutPath + " 2> " + ErrPath)
                           .c_str());
  std::string Out = slurp(OutPath);
  std::string Err = slurp(ErrPath);
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out, OutRef);
  EXPECT_NE(Err.find("native engine unavailable"), std::string::npos)
      << Err;
  EXPECT_NE(Err.find("falling back to the interpreter"),
            std::string::npos)
      << Err;
}
