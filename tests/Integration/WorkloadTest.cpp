//===- tests/Integration/WorkloadTest.cpp -----------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end behavior of the evaluation workloads (§V) checked against
/// direct C++ reference simulations.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::vector<OutputEvent> run(const Spec &S,
                             const std::vector<TraceEvent> &Events) {
  Program Plan = compileOrDie(S);
  std::string Error;
  auto Out = runMonitor(Plan, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return Out;
}

} // namespace

TEST(WorkloadTest, SeenSetMatchesReferenceSimulation) {
  Spec S = seenSet();
  auto Events = tracegen::randomInts(*S.lookup("x"), 3000, 40, 21);
  auto Out = run(S, Events);
  ASSERT_EQ(Out.size(), Events.size());
  std::set<int64_t> Ref;
  for (size_t I = 0; I != Events.size(); ++I) {
    int64_t V = std::get<2>(Events[I]).getInt();
    bool Seen = Ref.count(V) != 0;
    EXPECT_EQ(Out[I].V.getBool(), Seen) << "event " << I;
    if (Seen)
      Ref.erase(V);
    else
      Ref.insert(V);
  }
}

TEST(WorkloadTest, MapWindowEmitsNthLastValue) {
  constexpr int64_t N = 8;
  Spec S = mapWindow(N);
  auto Events = tracegen::randomInts(*S.lookup("x"), 500, 1000, 22);
  auto Out = run(S, Events);
  // Verify against a reference ring buffer: before a slot is first
  // filled the spec emits the -1 default, afterwards the value stored N
  // events ago.
  std::vector<int64_t> Values;
  for (auto &[Id, Ts, V] : Events)
    Values.push_back(V.getInt());
  std::map<int64_t, int64_t> Ring;
  size_t OutIdx = 0;
  for (size_t I = 0; I != Values.size(); ++I) {
    int64_t C = static_cast<int64_t>(I) + 1;
    int64_t Slot = C % N;
    int64_t Expected = Ring.count(Slot) ? Ring[Slot] : -1;
    ASSERT_LT(OutIdx, Out.size());
    EXPECT_EQ(Out[OutIdx].V.getInt(), Expected) << "event " << I;
    ++OutIdx;
    Ring[Slot] = Values[I];
  }
  EXPECT_EQ(OutIdx, Out.size());
}

TEST(WorkloadTest, QueueWindowEmitsOldestWhenFull) {
  constexpr int64_t N = 8;
  Spec S = queueWindow(N);
  auto Events = tracegen::randomInts(*S.lookup("x"), 500, 1000, 23);
  auto Out = run(S, Events);
  std::deque<int64_t> Ref;
  size_t OutIdx = 0;
  for (auto &[Id, Ts, V] : Events) {
    Ref.push_back(V.getInt());
    if (Ref.size() > static_cast<size_t>(N)) {
      ASSERT_LT(OutIdx, Out.size());
      EXPECT_EQ(Out[OutIdx].V.getInt(), Ref.front());
      ++OutIdx;
      Ref.pop_front();
    }
  }
  EXPECT_EQ(OutIdx, Out.size());
}

TEST(WorkloadTest, DbAccessConstraintFlagsExactlyTheBadAccesses) {
  Spec S = dbAccessConstraint();
  tracegen::DbLogConfig Config;
  Config.Count = 4000;
  Config.Seed = 24;
  auto Events = tracegen::dbLog(*S.lookup("ins"), *S.lookup("del"),
                                *S.lookup("acc"), Config);
  auto Out = run(S, Events);
  // Reference: live set simulation.
  std::set<int64_t> Live;
  std::vector<Time> ExpectedViolations;
  StreamId Ins = *S.lookup("ins"), Del = *S.lookup("del"),
           Acc = *S.lookup("acc");
  for (auto &[Id, Ts, V] : Events) {
    int64_t Record = V.getInt();
    if (Id == Ins)
      Live.insert(Record);
    else if (Id == Del)
      Live.erase(Record);
    else if (Id == Acc && !Live.count(Record))
      ExpectedViolations.push_back(Ts);
  }
  ASSERT_EQ(Out.size(), ExpectedViolations.size());
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I].Ts, ExpectedViolations[I]);
  EXPECT_GT(Out.size(), 0u);
}

TEST(WorkloadTest, DbTimeConstraintFlagsLateInserts) {
  Spec S = dbTimeConstraint();
  tracegen::DbPairConfig Config;
  Config.Count = 2000;
  Config.Seed = 25;
  auto Events = tracegen::dbPairLog(*S.lookup("db2"), *S.lookup("db3"),
                                    Config);
  auto Out = run(S, Events);
  // Reference.
  std::map<int64_t, Time> Db2Times;
  StreamId Db2 = *S.lookup("db2");
  std::vector<Time> Expected;
  for (auto &[Id, Ts, V] : Events) {
    if (Id == Db2) {
      Db2Times[V.getInt()] = Ts;
      continue;
    }
    auto It = Db2Times.find(V.getInt());
    Time Age = It == Db2Times.end() ? 2000000 + Ts : Ts - It->second;
    if (Age > 60)
      Expected.push_back(Ts);
  }
  ASSERT_EQ(Out.size(), Expected.size());
  EXPECT_GT(Out.size(), 0u);
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I].Ts, Expected[I]);
}

TEST(WorkloadTest, PeakDetectionFindsInjectedPeaks) {
  constexpr int64_t W = 16;
  Spec S = peakDetection(W);
  tracegen::PowerConfig Config;
  Config.Count = 3000;
  Config.PeakProb = 0.01;
  Config.PeakScale = 4.0;
  Config.Seed = 26;
  auto Events = tracegen::powerSignal(*S.lookup("p"), Config);
  auto Out = run(S, Events);
  // Reference simulation of the spec's own definition: when a sample
  // leaves the W-window, flag it if it deviates >40% from the current
  // window mean.
  std::deque<double> Window;
  double Sum = 0;
  std::vector<Time> Expected;
  for (auto &[Id, Ts, V] : Events) {
    double X = V.getFloat();
    Window.push_back(X);
    Sum += X;
    if (Window.size() > static_cast<size_t>(W)) {
      double Dropped = Window.front();
      Window.pop_front();
      Sum -= Dropped;
      double Mean = Sum / static_cast<double>(W);
      if (std::abs(Dropped - Mean) > Mean * 0.4)
        Expected.push_back(Ts);
    }
  }
  ASSERT_EQ(Out.size(), Expected.size());
  EXPECT_GT(Out.size(), 0u) << "injected peaks must be detected";
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I].Ts, Expected[I]);
}

TEST(WorkloadTest, SpectrumCountsAboveThreshold) {
  Spec S = spectrumCalculation();
  tracegen::PowerConfig Config;
  Config.Count = 3000;
  Config.PeakProb = 0.02;
  Config.PeakScale = 3.0;
  Config.Seed = 27;
  auto Events = tracegen::powerSignal(*S.lookup("p"), Config);
  auto Out = run(S, Events);
  // The 'above' counter emits at every sample (plus t=0); its final value
  // must equal the reference count.
  int64_t Expected = 0;
  for (auto &[Id, Ts, V] : Events)
    if (V.getFloat() > 100.0)
      ++Expected;
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out.back().V.getInt(), Expected);
  EXPECT_GT(Expected, 0);
}
