//===- tests/Integration/BatchedDifferentialTest.cpp ------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The batched engine's contract (Runtime/BatchedMonitor.h): a fleet in
/// Batched mode is *byte-identical* to the per-session engine — which is
/// itself pinned to the sequential Monitor by MonitorFleetTest. We prove
/// it differentially on a randomized corpus (delay, queue and map
/// builtins; both mutability modes; -O0 and -O1), under forced lane
/// migration (all sessions pinned to one home shard of a multi-shard
/// fleet, so idle peers steal lanes mid-run) and mid-stream session
/// joins (lanes added while others are deep into their traces). The
/// corpus size and seed are env-overridable (TESSLA_CORPUS_SPECS /
/// TESSLA_CORPUS_SEED); a failing pair is shrunk by the corpus
/// minimizer, which prints a standalone tesslac repro command.
///
/// CI runs this suite under ASan/UBSan and TSan (the batched-differential
/// job), so "byte-identical" is also checked against the engines' actual
/// memory behavior, not just their outputs.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>

// The native tier dlopen()s code built by the *system* compiler, which
// carries no sanitizer instrumentation. TSan in particular cannot model
// synchronization inside an uninstrumented library, so the native axis
// is skipped under TSan (the CI native job runs it without sanitizers
// and under ASan/UBSan instead).
#if defined(__SANITIZE_THREAD__)
#define TESSLA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TESSLA_TSAN 1
#endif
#endif
#ifndef TESSLA_TSAN
#define TESSLA_TSAN 0
#endif

using namespace tessla;
using namespace tessla::testspecs;
using namespace tessla::testrandom;

namespace {

/// One corpus compile configuration: mutability mode x opt level.
struct Config {
  bool Optimize;
  unsigned OptLevel;
};
constexpr Config Configs[] = {
    {false, 0}, {false, 1}, {true, 0}, {true, 1}};

std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

/// Ground truth: every session through its own sequential Monitor.
std::string sequentialReference(const Program &Plan,
                                const std::vector<CorpusRecord> &Records) {
  std::map<SessionId, std::vector<TraceEvent>> PerSession;
  for (const CorpusRecord &R : Records)
    PerSession[R.Session].emplace_back(*Plan.spec().lookup(R.Input), R.Ts,
                                       R.V);
  std::string Out;
  for (const auto &[Session, Events] : PerSession) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, std::nullopt, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Migration-hostile fleet shape: 4 shards but every session pinned to
/// one home shard, tiny batches and a hair-trigger steal threshold, so
/// the three idle peers steal lanes (and the home shard then forwards
/// the stolen sessions' records) essentially every run.
FleetOptions migrationHostileOptions(FleetMode Mode) {
  FleetOptions Opts;
  Opts.Shards = 4;
  Opts.BatchSize = 4;
  Opts.QueueCapacity = 4;
  Opts.StealBacklog = 1;
  Opts.Mode = Mode;
  return Opts;
}

/// Session ids that all hash-pin to shard 0 of a 4-shard fleet.
std::vector<SessionId> pinnedSessions(const Program &Plan, size_t Count) {
  MonitorFleet Probe(Plan, migrationHostileOptions(FleetMode::PerSession));
  std::vector<SessionId> Ids;
  for (SessionId Id = 0; Ids.size() < Count && Id < 100000; ++Id)
    if (Probe.shardOf(Id) == 0)
      Ids.push_back(Id);
  EXPECT_EQ(Ids.size(), Count);
  Probe.finish();
  return Ids;
}

/// Runs \p Records (already in the desired arrival order) through a
/// fleet in \p Mode and returns the rendered output trace. For
/// FleetMode::Native the caller passes the engine factory (the library
/// is compiled once per (spec, config) and shared across runs).
std::string fleetRun(const Program &Plan,
                     const std::vector<CorpusRecord> &Records,
                     FleetMode Mode, FleetStats *StatsOut = nullptr,
                     EngineFactory Native = {}) {
  FleetOptions FOpts = migrationHostileOptions(Mode);
  FOpts.NativeFactory = std::move(Native);
  MonitorFleet Fleet(Plan, FOpts);
  EXPECT_EQ(Fleet.mode(), Mode);
  ProducerHandle P = Fleet.producer();
  for (const CorpusRecord &R : Records)
    EXPECT_TRUE(
        P.feed(R.Session, *Plan.spec().lookup(R.Input), R.Ts, R.V));
  P.close();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed())
      << (Fleet.errors().empty() ? std::string()
                                 : Fleet.errors().front().Message);
  if (StatsOut)
    *StatsOut = Fleet.stats();
  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  return Out;
}

/// Interleaves per-session traces into one arrival order: round-robin
/// with a seeded random pick, per-session order preserved. \p JoinStride
/// staggers session starts — session k joins only after k*JoinStride
/// records of earlier sessions were fed (mid-stream joins / sparse
/// activation: late lanes are added while early lanes are deep into
/// their traces, and at any moment only part of the fleet is active).
std::vector<CorpusRecord>
interleave(const Spec &S, const std::vector<SessionId> &Sessions,
           const std::vector<std::vector<TraceEvent>> &Traces,
           uint64_t Seed, size_t JoinStride = 0) {
  std::mt19937_64 Rng(Seed);
  std::vector<size_t> Next(Traces.size(), 0);
  std::vector<CorpusRecord> Out;
  size_t Remaining = 0;
  for (const auto &T : Traces)
    Remaining += T.size();
  Out.reserve(Remaining);
  while (Remaining != 0) {
    size_t Pick = Rng() % Traces.size();
    if (Pick * JoinStride > Out.size())
      continue; // session Pick has not joined yet
    if (Next[Pick] == Traces[Pick].size())
      continue;
    const auto &[Id, Ts, V] = Traces[Pick][Next[Pick]++];
    Out.push_back({Sessions[Pick], S.stream(Id).Name, Ts, V});
    --Remaining;
  }
  return Out;
}

/// The corpus check for one (spec, records, config): batched fleet ==
/// per-session fleet == sequential reference, byte for byte. On
/// mismatch, shrinks the pair and reports the repro. \returns false on
/// failure so the caller can stop the sweep.
bool checkOneConfig(uint64_t Seed, const Spec &S,
                    const std::vector<CorpusRecord> &Records,
                    Config Cfg, const char *TestBinary,
                    uint64_t *StealsOut, uint32_t *MutableOut,
                    size_t *OutputBytes) {
  Program Plan = compileOrDie(S, Cfg.Optimize, Cfg.OptLevel);
  if (MutableOut)
    *MutableOut += mutableStreamCount(Plan);
  std::string Reference = sequentialReference(Plan, Records);
  FleetStats Stats;
  std::string Batched = fleetRun(Plan, Records, FleetMode::Batched, &Stats);
  std::string PerSession = fleetRun(Plan, Records, FleetMode::PerSession);
  if (StealsOut)
    *StealsOut += Stats.totalSessionsStolen();
  if (OutputBytes)
    *OutputBytes += Reference.size();
  if (Batched == Reference && PerSession == Reference)
    return true;

  const bool BatchedDiverged = Batched != Reference;
  CorpusFailure Info;
  Info.Seed = Seed;
  Info.Baseline = !Cfg.Optimize;
  Info.OptLevel = Cfg.OptLevel;
  Info.TestBinary = TestBinary;
  auto Fails = [&](const Spec &Shrunk,
                   const std::vector<CorpusRecord> &R) {
    Program P = compileOrDie(Shrunk, Cfg.Optimize, Cfg.OptLevel);
    std::string Ref = sequentialReference(P, R);
    std::string Got =
        fleetRun(P, R,
                 BatchedDiverged ? FleetMode::Batched
                                 : FleetMode::PerSession);
    return Got != Ref;
  };
  ADD_FAILURE() << (BatchedDiverged ? "batched" : "per-session")
                << " fleet diverged from the sequential reference (seed "
                << Seed << ", " << (Cfg.Optimize ? "optimized" : "baseline")
                << ", -O" << Cfg.OptLevel << ")\n"
                << minimizeAndReport(S, Records, Fails, Info);
  return false;
}

} // namespace

// The headline property: >= 50 random specs (queue ops always on, delay
// streams on every third seed) x both mutability modes x -O0/-O1, under
// forced lane migration. Guards vacuity three ways: outputs nonempty,
// steals actually happened, and the mutability optimization actually
// fired somewhere in the corpus.
TEST(BatchedDifferentialTest, CorpusByteIdenticalUnderMigration) {
  const uint64_t Seed0 = corpusSeed();
  const size_t NumSpecs = corpusSpecs(50);
  uint64_t Steals = 0;
  uint32_t TotalMutable = 0;
  size_t OutputBytes = 0;
  for (uint64_t Seed = Seed0; Seed != Seed0 + NumSpecs; ++Seed) {
    RandomSpecOptions Opts;
    Opts.WithQueueOps = true;
    Opts.WithDelay = Seed % 3 == 0;
    Spec S = randomSpec(Seed, Opts);

    std::vector<std::vector<TraceEvent>> Traces;
    for (unsigned Session = 0; Session != 6; ++Session)
      Traces.push_back(
          randomSpecTrace(S, 80, Seed * 10007 + Session));
    Program Probe = compileOrDie(S, true);
    std::vector<SessionId> Sessions = pinnedSessions(Probe, Traces.size());
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, Seed * 31 + 7);

    for (Config Cfg : Configs)
      if (!checkOneConfig(Seed, S, Records, Cfg,
                          "integration_batched_differential_test",
                          &Steals, &TotalMutable, &OutputBytes))
        return; // one shrunken repro beats 50 raw failures
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
  EXPECT_GT(Steals, 0u)
      << "no lane was ever migrated; the migration axis is vacuous";
  EXPECT_GT(TotalMutable, 0u)
      << "optimization never kicked in; the mutability axis is vacuous";
}

// The three-way tentpole property: >= 50 random specs x -O0/-O1, each
// run through the interpreter reference, the batched fleet AND the
// native compiled tier (CppEmitter -> system compiler -> dlopen), byte
// for byte. The native library is compiled once per (spec, opt level)
// and shared by all its runs; a machine without a working system
// compiler skips with the compileNative diagnostic rather than failing.
// Native lanes cannot migrate (supportsMigration() is false), so the
// steal pressure of the hostile fleet shape is exercised but inert on
// this axis — the batched run in the same comparison keeps it honest.
TEST(BatchedDifferentialTest, CorpusThreeWayNativeByteIdentical) {
#if TESSLA_TSAN
  GTEST_SKIP() << "native tier runs uninstrumented code; not a TSan axis";
#endif
  const uint64_t Seed0 = corpusSeed();
  const size_t NumSpecs = corpusSpecs(50);
  size_t OutputBytes = 0;
  for (uint64_t Seed = Seed0; Seed != Seed0 + NumSpecs; ++Seed) {
    RandomSpecOptions Opts;
    Opts.WithQueueOps = true;
    Opts.WithDelay = Seed % 3 == 0;
    Spec S = randomSpec(Seed, Opts);

    std::vector<std::vector<TraceEvent>> Traces;
    for (unsigned Session = 0; Session != 4; ++Session)
      Traces.push_back(randomSpecTrace(S, 60, Seed * 10007 + Session));
    Program Probe = compileOrDie(S, true);
    std::vector<SessionId> Sessions = pinnedSessions(Probe, Traces.size());
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, Seed * 31 + 7);

    // Alternate the mutability mode with the seed (both native code
    // paths face the reference) while sweeping the -O0/-O1 axis.
    for (Config Cfg : {Config{Seed % 2 == 0, 0}, Config{Seed % 2 == 0, 1}}) {
      Program Plan = compileOrDie(S, Cfg.Optimize, Cfg.OptLevel);
      std::string NativeErr;
      std::shared_ptr<NativeMonitorLibrary> Lib =
          compileNative(Plan, NativeCompileOptions(), NativeErr);
      if (!Lib)
        GTEST_SKIP() << "native tier unavailable: " << NativeErr;
      std::string Reference = sequentialReference(Plan, Records);
      std::string Batched = fleetRun(Plan, Records, FleetMode::Batched);
      std::string Native = fleetRun(Plan, Records, FleetMode::Native,
                                    nullptr, makeNativeEngineFactory(Lib));
      OutputBytes += Reference.size();
      if (Batched == Reference && Native == Reference)
        continue;

      const bool NativeDiverged = Native != Reference;
      CorpusFailure Info;
      Info.Seed = Seed;
      Info.Baseline = !Cfg.Optimize;
      Info.OptLevel = Cfg.OptLevel;
      Info.TestBinary = "integration_batched_differential_test";
      auto Fails = [&](const Spec &Shrunk,
                       const std::vector<CorpusRecord> &R) {
        Program P = compileOrDie(Shrunk, Cfg.Optimize, Cfg.OptLevel);
        std::string Ref = sequentialReference(P, R);
        if (!NativeDiverged)
          return fleetRun(P, R, FleetMode::Batched) != Ref;
        // Each shrink candidate is a new Program, so the native tier
        // recompiles per step — slow, but only on the failure path.
        std::string Err;
        auto ShrunkLib = compileNative(P, NativeCompileOptions(), Err);
        if (!ShrunkLib)
          return false; // a spec the compiler rejects is not a repro
        return fleetRun(P, R, FleetMode::Native, nullptr,
                        makeNativeEngineFactory(ShrunkLib)) != Ref;
      };
      ADD_FAILURE() << (NativeDiverged ? "native" : "batched")
                    << " fleet diverged from the sequential reference "
                    << "(seed " << Seed << ", "
                    << (Cfg.Optimize ? "optimized" : "baseline") << ", -O"
                    << Cfg.OptLevel << ")\n"
                    << minimizeAndReport(S, Records, Fails, Info);
      return; // one shrunken repro beats 50 raw failures
    }
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
}

// Mid-stream joins: sessions enter one by one while earlier lanes are
// already hundreds of records in, so the batched engine keeps adding
// lanes (sparse activation) mid-run. Timestamps are per-session clocks —
// a late join's t=0 calculation runs after its neighbors' clocks are far
// ahead, which is exactly the "lanes advance on their own timelines"
// contract.
TEST(BatchedDifferentialTest, MidStreamJoinsByteIdentical) {
  const uint64_t Seed0 = corpusSeed();
  const size_t NumSpecs = corpusSpecs(50) / 4 + 1;
  size_t OutputBytes = 0;
  for (uint64_t Seed = Seed0; Seed != Seed0 + NumSpecs; ++Seed) {
    RandomSpecOptions Opts;
    Opts.WithDelay = Seed % 2 == 0;
    Spec S = randomSpec(Seed, Opts);
    std::vector<std::vector<TraceEvent>> Traces;
    for (unsigned Session = 0; Session != 10; ++Session)
      Traces.push_back(randomSpecTrace(S, 60, Seed * 555 + Session));
    Program Probe = compileOrDie(S, true);
    std::vector<SessionId> Sessions = pinnedSessions(Probe, Traces.size());
    // Session k joins after ~50 earlier records: the last session joins
    // when the first ones are nearly done. (The stride must stay below
    // the per-session trace length, or a late session could wait on
    // records that will never be fed.)
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, Seed * 13 + 1, /*JoinStride=*/50);

    for (Config Cfg : {Config{true, 1}, Config{false, 0}})
      if (!checkOneConfig(Seed, S, Records, Cfg,
                          "integration_batched_differential_test",
                          nullptr, nullptr, &OutputBytes))
        return;
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
}

// Whole-aggregate outputs through the batched engine: canonical set /
// map / queue renderings must match the sequential engine byte for byte
// (sizes alone could mask ordering or representation leaks).
TEST(BatchedDifferentialTest, WholeAggregateOutputsByteIdentical) {
  Spec S = parseOrDie(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def y := setToggle(prev, x)
    def qprev := last(merge(q, queueEmpty()), x)
    def q := queueTrim(queueEnq(qprev, x), 5)
    def mprev := last(merge(m, mapEmpty()), x)
    def m := mapPut(mprev, x % 7, x)
    out y
    out q
    out m
  )");
  StreamId X = *S.lookup("x");
  std::vector<std::vector<TraceEvent>> Traces;
  for (unsigned Session = 0; Session != 5; ++Session)
    Traces.push_back(tracegen::randomInts(X, 400, 25, 77 + Session));
  size_t OutputBytes = 0;
  for (Config Cfg : Configs) {
    Program Plan = compileOrDie(S, Cfg.Optimize, Cfg.OptLevel);
    std::vector<SessionId> Sessions = pinnedSessions(Plan, Traces.size());
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, 99);
    std::string Reference = sequentialReference(Plan, Records);
    EXPECT_EQ(fleetRun(Plan, Records, FleetMode::Batched), Reference);
    EXPECT_EQ(fleetRun(Plan, Records, FleetMode::PerSession), Reference);
#if !TESSLA_TSAN
    // Canonical aggregate renderings must also survive the C boundary of
    // the native tier (values are re-parsed from their textual form on
    // the way back into the fleet).
    std::string NativeErr;
    if (auto Lib = compileNative(Plan, NativeCompileOptions(), NativeErr)) {
      EXPECT_EQ(fleetRun(Plan, Records, FleetMode::Native, nullptr,
                         makeNativeEngineFactory(Lib)),
                Reference);
    }
#endif
    OutputBytes += Reference.size();
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
}

// Failure isolation parity: a session that violates timestamp order
// must fail with the same message, at the same point, in both engines —
// and its lane's failure must not perturb healthy lanes' outputs.
TEST(BatchedDifferentialTest, FailureIsolationMatchesPerSession) {
  Spec S = seenSet();
  StreamId X = *S.lookup("x");
  Program Plan = compileOrDie(S, true);
  for (FleetMode Mode : {FleetMode::Batched, FleetMode::PerSession}) {
    FleetOptions Opts;
    Opts.Shards = 2;
    Opts.BatchSize = 3;
    Opts.Mode = Mode;
    MonitorFleet Fleet(Plan, Opts);
    ProducerHandle P = Fleet.producer();
    P.feed(1, X, 1, Value::integer(4));
    P.feed(2, X, 10, Value::integer(5));
    P.feed(2, X, 5, Value::integer(6)); // out of order: session fails
    P.feed(1, X, 2, Value::integer(4));
    P.close();
    Fleet.finish();
    EXPECT_TRUE(Fleet.failed());
    auto Errors = Fleet.errors();
    ASSERT_EQ(Errors.size(), 1u);
    EXPECT_EQ(Errors[0].Session, 2u);
    EXPECT_NE(Errors[0].Message.find("order"), std::string::npos);
    unsigned Session1Outputs = 0;
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      if (E.Session == 1)
        ++Session1Outputs;
    EXPECT_EQ(Session1Outputs, 2u) << "mode " << static_cast<int>(Mode);
  }
}
