//===- tests/Integration/NativeEngineTest.cpp -------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Failure paths and lifecycle of the native execution tier
/// (CodeGen/NativeCompile.h). The happy path — byte-identity against the
/// interpreter over a randomized corpus — lives in
/// BatchedDifferentialTest and CodegenParityTest; this file proves the
/// edges the corpus cannot reach: a missing or broken system compiler
/// degrades to a diagnostic (never a crash), a stale or foreign cache
/// entry is rebuilt rather than trusted, the fleet falls back to the
/// interpreter when Native mode has no factory, and engines keep the
/// dlopen()d library alive for as long as any lane can still execute
/// code from it (the CI job runs this under ASan, so a dlclose ordering
/// mistake is a use-after-unmap report, not a silent pass).
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceIO.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sys/stat.h>
#include <vector>

using namespace tessla;
using namespace tessla::testspecs;

// Like everywhere else, the native tier stays off the TSan axis: the
// shared object carries no instrumentation.
#if defined(__SANITIZE_THREAD__)
#define TESSLA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TESSLA_TSAN 1
#endif
#endif
#ifndef TESSLA_TSAN
#define TESSLA_TSAN 0
#endif

namespace {

std::string freshDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "tessla_native_" + Tag + "_XXXXXX";
  std::vector<char> Buf(Dir.begin(), Dir.end());
  Buf.push_back('\0');
  const char *Result = mkdtemp(Buf.data());
  EXPECT_NE(Result, nullptr);
  return Result ? Result : std::string();
}

Program simpleProgram() {
  return compileOrDie(parseOrDie(R"(
    in x: Int
    def s := merge(last(s, x) + x, x)
    out s
  )"));
}

std::vector<TraceEvent> simpleTrace(const Spec &S) {
  StreamId X = *S.lookup("x");
  std::vector<TraceEvent> Events;
  for (int64_t I = 0; I != 20; ++I)
    Events.push_back({X, I * 3, Value::integer(I)});
  return Events;
}

/// Runs \p Engine over \p Events (one lane) and renders the outputs.
std::string engineOutput(ShardEngine &Engine,
                         const std::vector<TraceEvent> &Events,
                         const Spec &S) {
  EventBatch Batch;
  for (const auto &[Id, Ts, V] : Events)
    Batch.Records.push_back({0, Id, Ts, V});
  std::string Error;
  auto Outputs = runEngineSingle(Engine, Batch, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(S, Outputs);
}

} // namespace

TEST(NativeEngineTest, MissingCompilerReportsDiagnostic) {
  Program P = simpleProgram();
  NativeCompileOptions Opts;
  Opts.Compiler = "/nonexistent/tessla-missing-cxx";
  Opts.CacheDir = freshDir("missing");
  std::string Error;
  EXPECT_EQ(compileNative(P, Opts, Error), nullptr);
  EXPECT_NE(Error.find("not found"), std::string::npos) << Error;
  EXPECT_NE(Error.find("/nonexistent/tessla-missing-cxx"),
            std::string::npos)
      << Error;

  // The factory convenience degrades the same way: empty factory plus
  // the diagnostic, so callers can fall back to the interpreter.
  Error.clear();
  EngineFactory Factory = makeNativeEngineFactory(P, Opts, Error);
  EXPECT_FALSE(Factory);
  EXPECT_NE(Error.find("not found"), std::string::npos) << Error;
}

TEST(NativeEngineTest, BrokenCompilerDiagnosticCarriesStderr) {
  std::string Dir = freshDir("broken");
  std::string Fake = Dir + "/failing-cxx";
  {
    std::ofstream Out(Fake);
    Out << "#!/bin/sh\necho 'synthetic frontend explosion' >&2\nexit 1\n";
  }
  ASSERT_EQ(::chmod(Fake.c_str(), 0755), 0);

  Program P = simpleProgram();
  NativeCompileOptions Opts;
  Opts.Compiler = Fake;
  Opts.CacheDir = Dir;
  std::string Error;
  EXPECT_EQ(compileNative(P, Opts, Error), nullptr);
  EXPECT_NE(Error.find("failed"), std::string::npos) << Error;
  EXPECT_NE(Error.find("synthetic frontend explosion"), std::string::npos)
      << "compiler stderr must reach the diagnostic: " << Error;
}

#if !TESSLA_TSAN

TEST(NativeEngineTest, StaleCacheEntryIsRebuilt) {
  Program P = simpleProgram();
  std::vector<TraceEvent> Events = simpleTrace(P.spec());
  std::string Error;
  std::string Expected =
      formatOutputs(P.spec(), runMonitor(P, Events, std::nullopt, &Error));
  ASSERT_EQ(Error, "");
  ASSERT_FALSE(Expected.empty());

  // Plant garbage bytes in the exact slot compileNative() will probe:
  // dlopen fails on it, and the loader must unlink and rebuild instead
  // of surfacing the corrupt file as an error.
  uint64_t Checksum = 0;
  {
    NativeCompileOptions Opts;
    Opts.CacheDir = freshDir("stale");
    std::string Slot = nativeCachePathFor(P, Opts);
    {
      std::ofstream Out(Slot, std::ios::binary);
      Out << "this is not a shared object";
    }
    auto Lib = compileNative(P, Opts, Error);
    ASSERT_TRUE(Lib) << Error;
    EXPECT_EQ(Lib->path(), Slot);
    Checksum = Lib->checksum();
    auto Engine = makeNativeEngineFactory(Lib)(P, true);
    EXPECT_EQ(engineOutput(*Engine, Events, P.spec()), Expected);
  }

  // A *valid* shared object built from a different Program occupying the
  // slot (a fresh cache dir, so nothing is mapped there yet — clobbering
  // a live mapping in place is undefined for any dlopen user): the
  // library loads, but the checksum stamp mismatches, which must equally
  // count as stale and trigger a rebuild.
  NativeCompileOptions Opts;
  Opts.CacheDir = freshDir("foreign");
  Program Other = compileOrDie(parseOrDie(R"(
    in x: Int
    def doubled := x * 2
    out doubled
  )"));
  std::string OtherErr;
  auto OtherLib = compileNative(Other, Opts, OtherErr);
  ASSERT_TRUE(OtherLib) << OtherErr;
  std::string OtherPath = OtherLib->path();
  OtherLib.reset(); // unmap before we copy its bytes around
  std::string Slot = nativeCachePathFor(P, Opts);
  {
    std::ifstream In(OtherPath, std::ios::binary);
    std::ofstream Out(Slot, std::ios::binary);
    Out << In.rdbuf();
  }
  auto Rebuilt = compileNative(P, Opts, Error);
  ASSERT_TRUE(Rebuilt) << Error;
  EXPECT_EQ(Rebuilt->checksum(), Checksum);
  auto Engine2 = makeNativeEngineFactory(Rebuilt)(P, true);
  EXPECT_EQ(engineOutput(*Engine2, Events, P.spec()), Expected);
}

TEST(NativeEngineTest, CacheHitAndForceRebuild) {
  Program P = simpleProgram();
  NativeCompileOptions Opts;
  Opts.CacheDir = freshDir("hit");
  std::string Error;
  auto First = compileNative(P, Opts, Error);
  ASSERT_TRUE(First) << Error;
  auto Second = compileNative(P, Opts, Error);
  ASSERT_TRUE(Second) << Error;
  EXPECT_EQ(Second->path(), First->path());
  EXPECT_EQ(Second->checksum(), First->checksum());

  Opts.Force = true;
  auto Forced = compileNative(P, Opts, Error);
  ASSERT_TRUE(Forced) << Error;
  EXPECT_EQ(Forced->checksum(), First->checksum());
}

// The dlclose ordering contract: a ShardEngine (and through it the
// fleet) keeps the library mapped while any lane can still run. Drop
// every other owner — the factory, the caller's shared_ptr — and the
// engine must still execute; under ASan a premature dlclose turns this
// into a hard failure.
TEST(NativeEngineTest, EngineKeepsLibraryAliveAfterFactoryDies) {
  Program P = simpleProgram();
  std::vector<TraceEvent> Events = simpleTrace(P.spec());
  std::string Error;
  std::string Expected =
      formatOutputs(P.spec(), runMonitor(P, Events, std::nullopt, &Error));
  ASSERT_EQ(Error, "");

  NativeCompileOptions Opts;
  Opts.CacheDir = freshDir("alive");
  std::unique_ptr<ShardEngine> Engine;
  {
    auto Lib = compileNative(P, Opts, Error);
    ASSERT_TRUE(Lib) << Error;
    EngineFactory Factory = makeNativeEngineFactory(std::move(Lib));
    Engine = Factory(P, true);
    // Factory and Lib die here; Engine holds the last reference.
  }
  ASSERT_TRUE(Engine);
  EXPECT_EQ(engineOutput(*Engine, Events, P.spec()), Expected);
  Engine.reset(); // instances must be destroyed before the dlclose
}

// Native feed validation parity: the host-side mirror of Monitor::feed
// must reject malformed input with Monitor's exact wording *before*
// crossing the C boundary, and the failed lane must not disturb others.
TEST(NativeEngineTest, FeedValidationMatchesMonitor) {
  Program P = simpleProgram();
  StreamId X = *P.spec().lookup("x");
  NativeCompileOptions Opts;
  Opts.CacheDir = freshDir("validate");
  std::string Error;
  auto Lib = compileNative(P, Opts, Error);
  ASSERT_TRUE(Lib) << Error;
  auto Engine = makeNativeEngineFactory(Lib)(P, true);

  Engine->addLane(1);
  Engine->addLane(2);
  EXPECT_TRUE(Engine->feed(0, X, 10, Value::integer(1)));
  EXPECT_FALSE(Engine->feed(0, X, 5, Value::integer(2))); // out of order
  EXPECT_TRUE(Engine->laneFailed(0));
  EXPECT_EQ(Engine->laneError(0),
            "at t=5, stream 'x': input events must arrive in timestamp order");
  // The healthy lane keeps running through the same engine.
  EXPECT_TRUE(Engine->feed(1, X, 3, Value::integer(7)));
  Engine->finishAll(std::nullopt);
  EXPECT_FALSE(Engine->laneFailed(1));
  EXPECT_GT(Engine->laneOutputEvents(1), 0u);
}

#endif // !TESSLA_TSAN

TEST(NativeEngineTest, FleetNativeModeWithoutFactoryFallsBack) {
  Program P = simpleProgram();
  FleetOptions Opts;
  Opts.Shards = 2;
  Opts.Mode = FleetMode::Native;
  // No Opts.NativeFactory: the fleet must degrade to the per-session
  // interpreter and say why, instead of constructing a dead fleet.
  MonitorFleet Fleet(P, Opts);
  EXPECT_EQ(Fleet.mode(), FleetMode::PerSession);
  EXPECT_FALSE(Fleet.engineFallbackReason().empty());
  StreamId X = *P.spec().lookup("x");
  ProducerHandle Prod = Fleet.producer();
  EXPECT_TRUE(Prod.feed(7, X, 1, Value::integer(4)));
  Prod.close();
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed());
  EXPECT_FALSE(Fleet.takeOutputs().empty());
}
