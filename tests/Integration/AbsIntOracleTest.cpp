//===- tests/Integration/AbsIntOracleTest.cpp -------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The soundness oracle for the abstract-interpretation framework
/// (Analysis/AbsInt.h): static facts are *claims about every execution*,
/// so any single execution is a free counterexample generator. The
/// harness runs randomized specifications (scalar/aggregate mixes, queue
/// operations, delays) through the interpreter and asserts that every
/// observed fact is contained in the corresponding static fact:
///
///  * an event on a stream refutes tick=never;
///  * an event past timestamp 0 refutes tick=unit;
///  * a missing event at timestamp 0 refutes the must-fire-at-0 bit;
///  * an event value outside range()/knownValue() refutes the range and
///    constant channels;
///  * an aggregate whose element count exceeds sizeBound() refutes the
///    bound analysis (queue high-water marks, set/map growth);
///  * a tick of U unaccompanied by V refutes a proven clockSubset(U, V)
///    (sampled over the first streams to bound the quadratic pair walk).
///
/// At -O0 every stream of a copied spec is marked output, so the whole
/// slot state is observable; at -O1 the original outputs are checked
/// against facts recomputed over the *optimized* program — a rewrite
/// that invalidates the facts the next pass consumes shows up here.
/// Violations minimize to a standalone repro via the shared corpus
/// driver (TESSLA_CORPUS_SEED / TESSLA_CORPUS_SPECS override the sweep).
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/AbsInt.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Runtime/Containers.h"
#include "tessla/Runtime/Monitor.h"

#include "../RandomSpecGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

using namespace tessla;
using namespace tessla::absint;
using namespace tessla::testrandom;

namespace {

uint64_t aggregateElements(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Set:
    return V.asSet().size();
  case Value::Kind::Map:
    return V.asMap().size();
  case Value::Kind::Queue:
    return V.asQueue().size();
  default:
    return 0;
  }
}

/// Everything one execution revealed about one stream.
struct StreamObservation {
  std::vector<Time> Ticks; ///< sorted, unique
  std::vector<Value> Values;
};

std::optional<Program> compileQuiet(const Spec &S, unsigned OptLevel) {
  DiagnosticEngine Diags;
  CompileOptions Opts;
  Opts.Optimize = OptLevel > 0;
  Opts.OptLevel = OptLevel;
  return compileSpec(S, Opts, Diags);
}

/// Runs \p Events through a fresh monitor over \p Prog, recording every
/// output event with a deep-copied value (mutable aggregates behind the
/// borrowed handler reference are destructively updated later).
std::map<StreamId, StreamObservation>
observe(const Program &Prog,
        const std::vector<std::tuple<StreamId, Time, Value>> &Events,
        std::string &Error) {
  std::map<StreamId, StreamObservation> Obs;
  Monitor M(Prog);
  M.setOutputHandler([&](Time T, StreamId Id, const Value &V) {
    StreamObservation &O = Obs[Id];
    O.Ticks.push_back(T);
    O.Values.push_back(V.deepCopy());
  });
  for (const auto &[Id, T, V] : Events)
    if (!M.feed(Id, T, V))
      break;
  M.finish();
  if (M.failed())
    Error = M.errorMessage();
  return Obs;
}

std::string describe(const Spec &S, StreamId Id, AnalysisFacts &Facts) {
  return "stream '" + S.stream(Id).Name + "' (" + Facts.factString(Id) +
         ")";
}

/// Checks one (program, trace) execution against the static facts.
/// Returns the first violation found, or nullopt when the execution is
/// contained in the facts.
std::optional<std::string>
checkExecution(const Program &Prog,
               const std::vector<std::tuple<StreamId, Time, Value>> &Events) {
  AnalysisFacts Facts = AnalysisFacts::compute(Prog);
  const Spec &S = Prog.spec();

  std::string Error;
  std::map<StreamId, StreamObservation> Obs = observe(Prog, Events, Error);
  if (!Error.empty())
    return "monitor failed: " + Error;

  for (auto &[Id, O] : Obs) {
    std::sort(O.Ticks.begin(), O.Ticks.end());
    O.Ticks.erase(std::unique(O.Ticks.begin(), O.Ticks.end()),
                  O.Ticks.end());

    // Nil reachability: any event refutes tick=never; any event past 0
    // refutes tick=unit.
    if (!Facts.canFire(Id))
      return "event observed on provably-silent " + describe(S, Id, Facts);
    if (Facts.tick(Id) == TickKind::Unit &&
        (O.Ticks.size() != 1 || O.Ticks[0] != 0))
      return "non-unit tick pattern on unit-clock " +
             describe(S, Id, Facts);

    const Value *Known = Facts.knownValue(Id);
    const ValueRange &R = Facts.range(Id);
    const SizeBound &B = Facts.sizeBound(Id);
    for (const Value &V : O.Values) {
      if (Known && !(V == *Known))
        return "event value " + V.str() + " differs from known constant " +
               Known->str() + " on " + describe(S, Id, Facts);
      if (!R.contains(V))
        return "event value " + V.str() + " outside range on " +
               describe(S, Id, Facts);
      if (!B.Unbounded && aggregateElements(V) > B.Max)
        return "aggregate with " + std::to_string(aggregateElements(V)) +
               " elements exceeds bound on " + describe(S, Id, Facts);
    }
  }

  // Must-fire-at-0: timestamp 0 is always evaluated, so a proved At0 bit
  // guarantees an event at 0 on every observable stream.
  for (const auto &[Id, O] : Obs)
    if (Facts.alwaysInitialized(Id) &&
        !std::binary_search(O.Ticks.begin(), O.Ticks.end(), Time(0)))
      return "no event at timestamp 0 on provably-initialized " +
             describe(S, Id, Facts);
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).IsOutput && Facts.alwaysInitialized(Id) &&
        !Obs.count(Id))
      return "no event at all on provably-initialized " +
             describe(S, Id, Facts);

  // Clock domination, sampled: for proven subsets among the first
  // observable streams, every tick of U past 0 must coincide with a tick
  // of V (and including 0 for the Incl0 variant).
  std::vector<StreamId> Sample;
  for (const auto &[Id, O] : Obs) {
    Sample.push_back(Id);
    if (Sample.size() == 12)
      break;
  }
  auto ticksAt = [&](StreamId Id, Time T) {
    const std::vector<Time> &Ticks = Obs[Id].Ticks;
    return std::binary_search(Ticks.begin(), Ticks.end(), T);
  };
  for (StreamId U : Sample)
    for (StreamId V : Sample) {
      if (U == V)
        continue;
      bool Sub = Facts.clockSubset(U, V);
      bool Sub0 = Sub && Facts.clockSubsetIncl0(U, V);
      if (!Sub)
        continue;
      for (Time T : Obs[U].Ticks)
        if ((T != 0 || Sub0) && !ticksAt(V, T))
          return "tick of '" + S.stream(U).Name + "' at t=" +
                 std::to_string(static_cast<long long>(T)) +
                 " unaccompanied by '" + S.stream(V).Name +
                 "' despite proven clock subset (" +
                 Facts.formulaString(U) + " => " + Facts.formulaString(V) +
                 ")";
    }

  return std::nullopt;
}

/// Full check of one spec + trace at one optimization level. At -O0 the
/// spec is copied with every named stream marked output (full slot
/// observability); at -O1 the original outputs are checked over the
/// optimized program.
std::optional<std::string>
checkSpec(const Spec &S,
          const std::vector<std::tuple<StreamId, Time, Value>> &Events,
          unsigned OptLevel) {
  Spec Checked = S;
  if (OptLevel == 0)
    for (StreamId Id = 0; Id != Checked.numStreams(); ++Id)
      if (Checked.stream(Id).Kind != StreamKind::Input)
        Checked.stream(Id).IsOutput = true;
  std::optional<Program> Prog = compileQuiet(Checked, OptLevel);
  if (!Prog)
    return std::nullopt; // shrunken candidate stopped compiling
  return checkExecution(*Prog, Events);
}

std::vector<CorpusRecord>
toRecords(const Spec &S,
          const std::vector<TraceEvent> &Events) {
  std::vector<CorpusRecord> Records;
  Records.reserve(Events.size());
  for (const auto &[Id, T, V] : Events)
    Records.push_back({0, S.stream(Id).Name, T, V});
  return Records;
}

std::vector<std::tuple<StreamId, Time, Value>>
toEvents(const Spec &S, const std::vector<CorpusRecord> &Records) {
  std::vector<std::tuple<StreamId, Time, Value>> Events;
  Events.reserve(Records.size());
  for (const CorpusRecord &R : Records)
    if (std::optional<StreamId> Id = S.lookup(R.Input))
      Events.emplace_back(*Id, R.Ts, R.V);
  return Events;
}

} // namespace

TEST(AbsIntOracleTest, StaticFactsContainEveryExecution) {
  const size_t NumSpecs = corpusSpecs(50);
  const uint64_t Seed0 = corpusSeed();
  for (size_t I = 0; I != NumSpecs; ++I) {
    const uint64_t Seed = Seed0 + I;
    RandomSpecOptions Opts;
    Opts.WithQueueOps = true;
    Opts.WithDelay = I % 2 == 1;
    Spec S = randomSpec(Seed, Opts);
    std::vector<TraceEvent> Events = randomSpecTrace(S, 150, Seed * 9137);

    for (unsigned OptLevel : {0u, 1u}) {
      std::optional<std::string> Violation =
          checkSpec(S, Events, OptLevel);
      if (!Violation)
        continue;
      CorpusFailure Info;
      Info.Seed = Seed;
      Info.Baseline = false;
      Info.OptLevel = OptLevel;
      Info.TestBinary = "integration_absint_oracle_test";
      auto Fails = [OptLevel](const Spec &Shrunk,
                              const std::vector<CorpusRecord> &Rs) {
        return checkSpec(Shrunk, toEvents(Shrunk, Rs), OptLevel)
            .has_value();
      };
      ADD_FAILURE() << "soundness violation at -O" << OptLevel << ": "
                    << *Violation << "\n"
                    << minimizeAndReport(S, toRecords(S, Events), Fails,
                                         Info);
      return;
    }
  }
}

TEST(AbsIntOracleTest, WorkloadTracesAreContained) {
  // The hand-written evaluation specs exercise idioms the generator does
  // not (map windows, db constraints); same containment argument.
  struct Case {
    const char *Source;
    const char *Input;
  };
  const Case Cases[] = {
      {"in x: Int\n"
       "def c := merge(last(c, x) + 1, 0)\n"
       "def even := filter(c, c % 2 == 0)\n"
       "out c\nout even\n",
       "x"},
      {"in x: Int\n"
       "def q := last(merge(w, queueEmpty()), x)\n"
       "def w := queueTrim(queueEnq(q, x), 4)\n"
       "def n := queueSize(w)\n"
       "out n\n",
       "x"},
  };
  for (const Case &C : Cases) {
    DiagnosticEngine Diags;
    std::optional<Spec> S = parseSpec(C.Source, Diags);
    ASSERT_TRUE(S) << Diags.str();
    DiagnosticEngine TDiags;
    ASSERT_TRUE(typecheck(*S, TDiags)) << TDiags.str();
    std::vector<TraceEvent> Events;
    std::mt19937_64 Rng(99);
    Time T = 0;
    for (int I = 0; I != 200; ++I) {
      T += 1 + Rng() % 2;
      Events.emplace_back(*S->lookup(C.Input), T,
                          Value::integer(static_cast<int64_t>(Rng() % 9)));
    }
    for (unsigned OptLevel : {0u, 1u}) {
      std::optional<std::string> Violation =
          checkSpec(*S, Events, OptLevel);
      EXPECT_FALSE(Violation) << "at -O" << OptLevel << ": " << *Violation;
    }
  }
}
