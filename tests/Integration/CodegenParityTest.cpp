//===- tests/Integration/CodegenParityTest.cpp ------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Differential parity between the two execution backends: both consume
/// the same lowered Program, so for any specification the generated C++
/// monitor must produce event-for-event identical output to the
/// interpreter. Exercised over a corpus of random specifications
/// (tests/RandomSpecGen.h), including delay specs, each compiled with the
/// system compiler and run on a random trace.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/CppEmitter.h"
#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Opt/PassManager.h"
#include "tessla/Runtime/ExecutionEngine.h"
#include "tessla/Runtime/TraceGen.h"
#include "tessla/Runtime/TraceIO.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace tessla;
using namespace tessla::testrandom;
using namespace tessla::testspecs;

namespace {

std::string tempDir() {
  std::string Dir = ::testing::TempDir() + "tessla_parity_XXXXXX";
  std::vector<char> Buf(Dir.begin(), Dir.end());
  Buf.push_back('\0');
  const char *Result = mkdtemp(Buf.data());
  EXPECT_NE(Result, nullptr);
  return Result ? Result : std::string();
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
  ASSERT_TRUE(Out.good());
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

// The native tier loads uninstrumented code; keep it off the TSan axis
// (see BatchedDifferentialTest.cpp for the rationale).
#if defined(__SANITIZE_THREAD__)
#define TESSLA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TESSLA_TSAN 1
#endif
#endif
#ifndef TESSLA_TSAN
#define TESSLA_TSAN 0
#endif

/// Third backend: the same Program through the native execution tier
/// (CppEmitter shim -> system compiler -> dlopen, wrapped as a
/// ShardEngine). Unlike the EmitMain path below this crosses the C shim
/// boundary — outputs are rendered to text inside the library and
/// re-parsed on the way back — so it proves the full deployment path,
/// not just the emitted calculation bodies.
void expectNativeParity(uint64_t Seed, const Spec &S, const Program &P,
                        const std::vector<TraceEvent> &Events,
                        const std::string &Expected) {
#if TESSLA_TSAN
  (void)Seed, (void)S, (void)P, (void)Events, (void)Expected;
#else
  std::string Error;
  auto Lib = compileNative(P, NativeCompileOptions(), Error);
  ASSERT_TRUE(Lib) << "seed " << Seed << ": " << Error;
  std::unique_ptr<ShardEngine> Engine = makeNativeEngineFactory(Lib)(P, true);
  EventBatch Batch;
  for (const auto &[Id, Ts, V] : Events)
    Batch.Records.push_back({0, Id, Ts, V});
  auto Outputs = runEngineSingle(*Engine, Batch, std::nullopt, &Error);
  ASSERT_EQ(Error, "") << "seed " << Seed;
  EXPECT_EQ(formatOutputs(S, Outputs), Expected)
      << "native tier diverged at seed " << Seed << "\n" << S.str();
#endif
}

/// Runs both backends over the same Program on \p Events and expects
/// byte-identical output. The host compiler runs at -O0 to keep the
/// corpus-sized compile bill small; correctness does not depend on it.
/// With \p OptLevel >= 1 the *program* optimizer runs first, and the
/// expectation is computed from the unoptimized interpreter — one call
/// checks interpreter -O0 == interpreter -O1 == generated C++ -O1
/// == the dlopen()ed native tier at the same opt level.
void expectParity(uint64_t Seed, const Spec &S, bool Optimize,
                  const std::vector<TraceEvent> &Events,
                  unsigned OptLevel = 0) {
  Program P = compileOrDie(S, Optimize);

  std::string Error;
  auto Interpreted = runMonitor(P, Events, std::nullopt, &Error);
  ASSERT_EQ(Error, "") << "seed " << Seed;
  std::string Expected = formatOutputs(S, Interpreted);

  if (OptLevel >= 1) {
    P = compileOrDie(S, Optimize, OptLevel);
    auto OptOut = runMonitor(P, Events, std::nullopt, &Error);
    ASSERT_EQ(Error, "") << "seed " << Seed;
    ASSERT_EQ(formatOutputs(S, OptOut), Expected)
        << "interpreter -O1 diverged at seed " << Seed << "\n" << S.str();
  }

  expectNativeParity(Seed, S, P, Events, Expected);
  if (::testing::Test::HasFatalFailure())
    return;

  CppEmitterOptions Opts;
  Opts.EmitMain = true;
  DiagnosticEngine Diags;
  auto Source = emitCppMonitor(P, Opts, Diags);
  ASSERT_TRUE(Source) << "seed " << Seed << "\n" << Diags.str();

  std::string Dir = tempDir();
  writeFile(Dir + "/monitor.cpp", *Source);
  std::string TraceText;
  for (const auto &[Id, Ts, V] : Events)
    TraceText += std::to_string(Ts) + ": " + S.stream(Id).Name + " = " +
                 V.str() + "\n";
  writeFile(Dir + "/trace.txt", TraceText);

  std::string Compile = "c++ -std=c++20 -O0 -I " TESSLA_INCLUDE_DIR " " +
                        Dir + "/monitor.cpp -o " + Dir +
                        "/monitor 2> " + Dir + "/compile.log";
  int CompileRc = std::system(Compile.c_str());
  ASSERT_EQ(CompileRc, 0) << "seed " << Seed << "\n"
                          << readFile(Dir + "/compile.log");

  std::string Run = Dir + "/monitor < " + Dir + "/trace.txt > " + Dir +
                    "/out.txt";
  ASSERT_EQ(std::system(Run.c_str()), 0) << "seed " << Seed;
  EXPECT_EQ(readFile(Dir + "/out.txt"), Expected) << "seed " << Seed;
}

void parityCorpus(uint64_t FirstSeed, uint64_t LastSeed,
                  const RandomSpecOptions &Opts, unsigned OptLevel = 0) {
  for (uint64_t Seed = FirstSeed; Seed <= LastSeed; ++Seed) {
    Spec S = randomSpec(Seed, Opts);
    auto Events = randomSpecTrace(S, 120, Seed * 31 + 7);
    // Alternate the mutability optimization so both the destructive and
    // the persistent code paths face the interpreter.
    expectParity(Seed, S, /*Optimize=*/Seed % 2 == 0, Events, OptLevel);
  }
}

} // namespace

TEST(CodegenParityTest, RandomSpecs1To10) {
  parityCorpus(1, 10, RandomSpecOptions());
}

TEST(CodegenParityTest, RandomSpecs11To20) {
  parityCorpus(11, 20, RandomSpecOptions());
}

TEST(CodegenParityTest, RandomDelaySpecs) {
  RandomSpecOptions Opts;
  Opts.WithDelay = true;
  parityCorpus(101, 110, Opts);
}

// --- Program optimizer (-O1) parity ---------------------------------------
//
// The optimized Program carries opcodes only the optimizer produces
// (ConstTick, FusedLastLift, FusedLiftLift) and compacted slot tables;
// the generated C++ must keep matching the unoptimized interpreter.

TEST(CodegenParityTest, OptimizedRandomSpecs) {
  parityCorpus(201, 210, RandomSpecOptions(), /*OptLevel=*/1);
}

TEST(CodegenParityTest, OptimizedRandomDelaySpecs) {
  RandomSpecOptions Opts;
  Opts.WithDelay = true;
  parityCorpus(301, 306, Opts, /*OptLevel=*/1);
}

TEST(CodegenParityTest, OptimizedWorkloads) {
  // The Fig. 9 workloads hit all three fused/folded opcode families in
  // the emitter (ConstTick on mapWindow/queueWindow, FusedLastLift and
  // FusedLiftLift on all three).
  uint64_t Seed = 400;
  for (const Spec &S : {seenSet(), mapWindow(4), queueWindow(4)}) {
    auto Events =
        tracegen::randomInts(*S.lookup("x"), 400, 13, ++Seed);
    expectParity(Seed, S, /*Optimize=*/true, Events, /*OptLevel=*/1);
  }
}
