//===- tests/Integration/ForkDifferentialTest.cpp ---------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The session-fork headline property: forking a live session at a
/// mid-stream point and feeding the identical tail to both lanes is
/// byte-identical to two independent sessions fed the full trace — the
/// forked lane carries the head's recorded outputs and the O(1)
/// structure-shared aggregate state, and the copy-on-write
/// representation keeps the two lanes from observing each other's later
/// updates. Proven differentially over a randomized corpus (queue and
/// map builtins, delay streams on every third seed; both mutability
/// modes; -O0 and -O1) on the per-session and batched engines under the
/// migration-hostile fleet shape, so forked lanes are also stolen
/// across shards mid-run. The corpus size and seed are env-overridable
/// (TESSLA_CORPUS_SPECS / TESSLA_CORPUS_SEED).
///
/// The native tier is the deliberate odd one out: compiled lanes are
/// not migratable, so forkSession must refuse — checked here so the
/// error contract is pinned alongside the property it protects.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Runtime/MonitorFleet.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>

#if defined(__SANITIZE_THREAD__)
#define TESSLA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TESSLA_TSAN 1
#endif
#endif
#ifndef TESSLA_TSAN
#define TESSLA_TSAN 0
#endif

using namespace tessla;
using namespace tessla::testspecs;
using namespace tessla::testrandom;

namespace {

/// One corpus compile configuration: mutability mode x opt level.
struct Config {
  bool Optimize;
  unsigned OptLevel;
};

std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

/// Ground truth: every session through its own sequential Monitor.
std::string sequentialReference(const Program &Plan,
                                const std::vector<CorpusRecord> &Records) {
  std::map<SessionId, std::vector<TraceEvent>> PerSession;
  for (const CorpusRecord &R : Records)
    PerSession[R.Session].emplace_back(*Plan.spec().lookup(R.Input), R.Ts,
                                       R.V);
  std::string Out;
  for (const auto &[Session, Events] : PerSession) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, std::nullopt, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Migration-hostile shape (same as BatchedDifferentialTest): sessions
/// pin to shard 0, idle peers steal, tiny batches and rings.
FleetOptions hostileOptions(FleetMode Mode) {
  FleetOptions Opts;
  Opts.Shards = 4;
  Opts.BatchSize = 4;
  Opts.QueueCapacity = 4;
  Opts.StealBacklog = 1;
  Opts.Mode = Mode;
  return Opts;
}

/// Session ids that all hash-pin to shard 0 of a 4-shard fleet.
std::vector<SessionId> pinnedSessions(const Program &Plan, size_t Count) {
  MonitorFleet Probe(Plan, hostileOptions(FleetMode::PerSession));
  std::vector<SessionId> Ids;
  for (SessionId Id = 0; Ids.size() < Count && Id < 100000; ++Id)
    if (Probe.shardOf(Id) == 0)
      Ids.push_back(Id);
  EXPECT_EQ(Ids.size(), Count);
  Probe.finish();
  return Ids;
}

/// Interleaves per-session traces into one arrival order: round-robin
/// with a seeded random pick, per-session order preserved. Any prefix of
/// the result is itself a valid arrival order, which makes the fork cut
/// below well-formed.
std::vector<CorpusRecord>
interleave(const Spec &S, const std::vector<SessionId> &Sessions,
           const std::vector<std::vector<TraceEvent>> &Traces,
           uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<size_t> Next(Traces.size(), 0);
  std::vector<CorpusRecord> Out;
  size_t Remaining = 0;
  for (const auto &T : Traces)
    Remaining += T.size();
  Out.reserve(Remaining);
  while (Remaining != 0) {
    size_t Pick = Rng() % Traces.size();
    if (Next[Pick] == Traces[Pick].size())
      continue;
    const auto &[Id, Ts, V] = Traces[Pick][Next[Pick]++];
    Out.push_back({Sessions[Pick], S.stream(Id).Name, Ts, V});
    --Remaining;
  }
  return Out;
}

/// The forked run: feed the first \p SplitAt records, close the
/// producer, fork \p Src into \p Dst, then feed the tail — with every
/// tail record of \p Src duplicated to \p Dst. \returns the rendered
/// outputs, or nullopt (with a test failure recorded) on any stage
/// error.
std::optional<std::string>
forkedRun(const Program &Plan, FleetMode Mode,
          const std::vector<CorpusRecord> &Records, size_t SplitAt,
          SessionId Src, SessionId Dst, uint64_t *StealsOut) {
  MonitorFleet Fleet(Plan, hostileOptions(Mode));
  EXPECT_EQ(Fleet.mode(), Mode);
  {
    ProducerHandle P = Fleet.producer();
    for (size_t I = 0; I != SplitAt; ++I) {
      const CorpusRecord &R = Records[I];
      EXPECT_TRUE(
          P.feed(R.Session, *Plan.spec().lookup(R.Input), R.Ts, R.V));
    }
    P.close();
  }
  std::string Err;
  if (!Fleet.forkSession(Src, Dst, &Err)) {
    ADD_FAILURE() << "fork failed: " << Err;
    Fleet.finish();
    return std::nullopt;
  }
  {
    ProducerHandle P = Fleet.producer();
    for (size_t I = SplitAt; I != Records.size(); ++I) {
      const CorpusRecord &R = Records[I];
      StreamId Id = *Plan.spec().lookup(R.Input);
      EXPECT_TRUE(P.feed(R.Session, Id, R.Ts, R.V));
      if (R.Session == Src) {
        EXPECT_TRUE(P.feed(Dst, Id, R.Ts, R.V));
      }
    }
    P.close();
  }
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed())
      << (Fleet.errors().empty() ? std::string()
                                 : Fleet.errors().front().Message);
  if (StealsOut)
    *StealsOut += Fleet.stats().totalSessionsStolen();
  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(Plan.spec(), E.Session, E.Event);
  return Out;
}

} // namespace

// The acceptance property: random specs x {baseline, optimized} x
// -O0/-O1 x {per-session, batched}, each forked at a mid-stream point;
// the forked run must be byte-identical to the sequential reference in
// which the fork destination is an independent session fed the source's
// full trace. Guards vacuity: outputs nonempty, steals happened on the
// hostile shape.
TEST(ForkDifferentialTest, ForkEqualsReplayAcrossEnginesAndOptLevels) {
  const uint64_t Seed0 = corpusSeed();
  const size_t NumSpecs = corpusSpecs(12);
  uint64_t Steals = 0;
  size_t OutputBytes = 0;
  for (uint64_t Seed = Seed0; Seed != Seed0 + NumSpecs; ++Seed) {
    RandomSpecOptions Opts;
    Opts.WithQueueOps = true;
    Opts.WithDelay = Seed % 3 == 0;
    Spec S = randomSpec(Seed, Opts);

    std::vector<std::vector<TraceEvent>> Traces;
    for (unsigned Session = 0; Session != 2; ++Session)
      Traces.push_back(randomSpecTrace(S, 60, Seed * 10007 + Session));
    Program Probe = compileOrDie(S, true);
    // Three pinned ids: two live sessions plus the fork destination.
    std::vector<SessionId> Ids = pinnedSessions(Probe, 3);
    std::vector<SessionId> Sessions(Ids.begin(), Ids.begin() + 2);
    const SessionId Src = Ids[0], Dst = Ids[2];
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, Seed * 31 + 7);

    // Cut at a seed-dependent point strictly inside the trace, so the
    // corpus sweeps early, middle and late forks.
    size_t SplitAt = 1 + (Seed * 2654435761u) % (Records.size() - 1);

    // The reference trace set: both live sessions in full, plus the
    // fork destination as an independent replay of the source.
    std::vector<CorpusRecord> WithDst = Records;
    for (const CorpusRecord &R : Records)
      if (R.Session == Src)
        WithDst.push_back({Dst, R.Input, R.Ts, R.V});

    for (Config Cfg : {Config{Seed % 2 == 0, 0}, Config{Seed % 2 == 0, 1}})
      for (FleetMode Mode : {FleetMode::PerSession, FleetMode::Batched}) {
        Program Plan = compileOrDie(S, Cfg.Optimize, Cfg.OptLevel);
        std::string Reference = sequentialReference(Plan, WithDst);
        auto Forked =
            forkedRun(Plan, Mode, Records, SplitAt, Src, Dst, &Steals);
        if (!Forked)
          return;
        if (*Forked != Reference) {
          ADD_FAILURE()
              << "forked run diverged from the replay reference (seed "
              << Seed << ", "
              << (Cfg.Optimize ? "optimized" : "baseline") << ", -O"
              << Cfg.OptLevel << ", "
              << (Mode == FleetMode::Batched ? "batched" : "per-session")
              << ", split at " << SplitAt << "/" << Records.size()
              << ")\n"
              << S.str();
          return; // one diverging seed beats the whole sweep
        }
        OutputBytes += Reference.size();
      }
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
  EXPECT_GT(Steals, 0u)
      << "no lane was ever migrated; the migration axis is vacuous";
}

// The native tier refuses to fork: compiled lanes are not migratable,
// so the error contract — not a hang, not a crash — is the property.
TEST(ForkDifferentialTest, NativeFleetRefusesFork) {
#if TESSLA_TSAN
  GTEST_SKIP() << "native tier skipped under TSan (uninstrumented dlopen)";
#else
  Program Plan = compileOrDie(seenSet(), true, 1);
  std::string NativeErr;
  std::shared_ptr<NativeMonitorLibrary> Lib =
      compileNative(Plan, NativeCompileOptions(), NativeErr);
  if (!Lib)
    GTEST_SKIP() << "native tier unavailable: " << NativeErr;

  FleetOptions Opts = hostileOptions(FleetMode::Native);
  Opts.NativeFactory = makeNativeEngineFactory(Lib);
  MonitorFleet Fleet(Plan, Opts);
  ASSERT_EQ(Fleet.mode(), FleetMode::Native);
  StreamId X = *Plan.spec().lookup("x");
  {
    ProducerHandle P = Fleet.producer();
    EXPECT_TRUE(P.feed(1, X, 1, Value::integer(3)));
    P.close();
  }
  std::string Err;
  EXPECT_FALSE(Fleet.forkSession(1, 2, &Err));
  EXPECT_NE(Err.find("native"), std::string::npos) << Err;
  Fleet.finish();
  EXPECT_FALSE(Fleet.failed());
#endif
}
