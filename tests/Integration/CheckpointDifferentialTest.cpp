//===- tests/Integration/CheckpointDifferentialTest.cpp ---------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The checkpoint/restore headline property: run-to-T + suspend +
/// serialize (`.tcp`) + load + restore into a fleet of a *different*
/// shard count + run-to-end is byte-identical to an uninterrupted run —
/// proven differentially over a randomized corpus (delay, queue and map
/// builtins; -O0 and -O1) under the migration-hostile fleet shape
/// (every session pinned to one home shard, tiny rings, hair-trigger
/// stealing), so lanes are stolen both before the suspend and after the
/// restore. The corpus size and seed are env-overridable
/// (TESSLA_CORPUS_SPECS / TESSLA_CORPUS_SEED).
///
/// CI runs this suite under ASan/UBSan and TSan: the suspend drain, the
/// serialize of live engine state and the restore adoption handshake
/// are all checked against the engines' actual memory behavior.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Checkpoint.h"
#include "tessla/Runtime/MonitorFleet.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>

using namespace tessla;
using namespace tessla::testspecs;
using namespace tessla::testrandom;

namespace {

std::string renderLine(const Spec &S, SessionId Session,
                       const OutputEvent &E) {
  return "s" + std::to_string(Session) + "| " + formatEvent(S, E) + "\n";
}

/// Ground truth: every session through its own sequential Monitor.
std::string sequentialReference(const Program &Plan,
                                const std::vector<CorpusRecord> &Records) {
  std::map<SessionId, std::vector<TraceEvent>> PerSession;
  for (const CorpusRecord &R : Records)
    PerSession[R.Session].emplace_back(*Plan.spec().lookup(R.Input), R.Ts,
                                       R.V);
  std::string Out;
  for (const auto &[Session, Events] : PerSession) {
    std::string Error;
    auto Outputs = runMonitor(Plan, Events, std::nullopt, &Error);
    EXPECT_EQ(Error, "") << "session " << Session;
    for (const OutputEvent &E : Outputs)
      Out += renderLine(Plan.spec(), Session, E);
  }
  return Out;
}

/// Migration-hostile shape (same as BatchedDifferentialTest): sessions
/// pin to shard 0, idle peers steal, tiny batches and rings.
FleetOptions hostileOptions(unsigned Shards) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.BatchSize = 4;
  Opts.QueueCapacity = 4;
  Opts.StealBacklog = 1;
  Opts.Mode = FleetMode::PerSession;
  return Opts;
}

/// Session ids that all hash-pin to shard 0 of a 4-shard fleet.
std::vector<SessionId> pinnedSessions(const Program &Plan, size_t Count) {
  MonitorFleet Probe(Plan, hostileOptions(4));
  std::vector<SessionId> Ids;
  for (SessionId Id = 0; Ids.size() < Count && Id < 100000; ++Id)
    if (Probe.shardOf(Id) == 0)
      Ids.push_back(Id);
  EXPECT_EQ(Ids.size(), Count);
  Probe.finish();
  return Ids;
}

/// Interleaves per-session traces into one arrival order: round-robin
/// with a seeded random pick, per-session order preserved. Any prefix of
/// the result is itself a valid arrival order, which is what makes the
/// mid-stream cut below well-formed.
std::vector<CorpusRecord>
interleave(const Spec &S, const std::vector<SessionId> &Sessions,
           const std::vector<std::vector<TraceEvent>> &Traces,
           uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<size_t> Next(Traces.size(), 0);
  std::vector<CorpusRecord> Out;
  size_t Remaining = 0;
  for (const auto &T : Traces)
    Remaining += T.size();
  Out.reserve(Remaining);
  while (Remaining != 0) {
    size_t Pick = Rng() % Traces.size();
    if (Next[Pick] == Traces[Pick].size())
      continue;
    const auto &[Id, Ts, V] = Traces[Pick][Next[Pick]++];
    Out.push_back({Sessions[Pick], S.stream(Id).Name, Ts, V});
    --Remaining;
  }
  return Out;
}

/// Feeds \p Records into \p Fleet through one handle.
void feedAll(MonitorFleet &Fleet, const Program &Plan,
             const std::vector<CorpusRecord> &Records) {
  ProducerHandle P = Fleet.producer();
  for (const CorpusRecord &R : Records)
    EXPECT_TRUE(
        P.feed(R.Session, *Plan.spec().lookup(R.Input), R.Ts, R.V));
  P.close();
}

std::string takeRendered(MonitorFleet &Fleet, const Spec &S) {
  std::string Out;
  for (const SessionOutputEvent &E : Fleet.takeOutputs())
    Out += renderLine(S, E.Session, E.Event);
  return Out;
}

/// The interrupted run: feed the first \p SplitAt records into a
/// 4-shard hostile fleet, suspend, serialize, load, restore into a
/// 2-shard hostile fleet, feed the rest, finish. \returns the rendered
/// full trace, or nullopt (with a test failure recorded) on any stage
/// error.
std::optional<std::string>
migratedRun(const Program &Plan, const std::vector<CorpusRecord> &Records,
            size_t SplitAt, uint64_t *StealsOut) {
  std::vector<CorpusRecord> Head(Records.begin(),
                                 Records.begin() + SplitAt);
  std::vector<CorpusRecord> Tail(Records.begin() + SplitAt,
                                 Records.end());

  MonitorFleet FleetA(Plan, hostileOptions(4));
  feedAll(FleetA, Plan, Head);
  std::string Err;
  FleetCheckpoint C;
  C.ProgramChecksum = programChecksum(Plan);
  C.SourceShards = 4;
  C.Lanes = FleetA.suspend(&Err);
  if (!Err.empty()) {
    ADD_FAILURE() << "suspend failed: " << Err;
    return std::nullopt;
  }
  FleetStats StatsA = FleetA.stats();

  // Across the byte boundary: the restored fleet sees only the bytes.
  std::vector<uint8_t> Bytes = serializeCheckpoint(C);
  DiagnosticEngine Diags;
  auto Loaded = loadCheckpoint(Bytes, Plan, Diags);
  if (!Loaded) {
    ADD_FAILURE() << "checkpoint did not load: " << Diags.str();
    return std::nullopt;
  }

  MonitorFleet FleetB(Plan, hostileOptions(2));
  if (!FleetB.restore(std::move(Loaded->Lanes))) {
    ADD_FAILURE() << "restore rejected";
    FleetB.finish();
    return std::nullopt;
  }
  feedAll(FleetB, Plan, Tail);
  FleetB.finish();
  EXPECT_FALSE(FleetB.failed())
      << (FleetB.errors().empty() ? std::string()
                                  : FleetB.errors().front().Message);
  if (StealsOut)
    *StealsOut +=
        StatsA.totalSessionsStolen() + FleetB.stats().totalSessionsStolen();
  return takeRendered(FleetB, Plan.spec());
}

} // namespace

// The acceptance property: >= 30 random specs (queue/map ops always on,
// delay streams on every third seed) x -O0/-O1, each cut at a
// mid-stream point, checkpointed out of a 4-shard fleet and resumed in
// a 2-shard fleet, byte-identical to the sequential reference. Guards
// vacuity: outputs nonempty, suspended lanes nonempty, steals happened
// on the hostile shape.
TEST(CheckpointDifferentialTest, CorpusByteIdenticalAcrossMigration) {
  const uint64_t Seed0 = corpusSeed();
  const size_t NumSpecs = corpusSpecs(30);
  uint64_t Steals = 0;
  size_t OutputBytes = 0;
  for (uint64_t Seed = Seed0; Seed != Seed0 + NumSpecs; ++Seed) {
    RandomSpecOptions Opts;
    Opts.WithQueueOps = true;
    Opts.WithDelay = Seed % 3 == 0;
    Spec S = randomSpec(Seed, Opts);

    std::vector<std::vector<TraceEvent>> Traces;
    for (unsigned Session = 0; Session != 5; ++Session)
      Traces.push_back(randomSpecTrace(S, 60, Seed * 10007 + Session));
    Program Probe = compileOrDie(S, true);
    std::vector<SessionId> Sessions = pinnedSessions(Probe, Traces.size());
    std::vector<CorpusRecord> Records =
        interleave(S, Sessions, Traces, Seed * 31 + 7);

    // Cut at a seed-dependent point strictly inside the trace, so the
    // corpus sweeps early, middle and late checkpoints.
    size_t SplitAt = 1 + (Seed * 2654435761u) % (Records.size() - 1);

    for (unsigned OptLevel : {0u, 1u}) {
      Program Plan = compileOrDie(S, /*Optimize=*/true, OptLevel);
      std::string Reference = sequentialReference(Plan, Records);
      auto Migrated = migratedRun(Plan, Records, SplitAt, &Steals);
      if (!Migrated)
        return;
      if (*Migrated != Reference) {
        ADD_FAILURE()
            << "checkpointed run diverged from the sequential reference "
            << "(seed " << Seed << ", -O" << OptLevel << ", split at "
            << SplitAt << "/" << Records.size() << ")\n"
            << S.str();
        return; // one diverging seed beats 30 raw failures
      }
      OutputBytes += Reference.size();
    }
  }
  EXPECT_GT(OutputBytes, 0u) << "vacuous comparison";
  EXPECT_GT(Steals, 0u)
      << "no lane was ever migrated; the migration axis is vacuous";
}

// The empty edge: checkpoint a fleet that never saw a record, restore,
// run the whole trace after the restore. Exercises zero-lane
// checkpoints end to end.
TEST(CheckpointDifferentialTest, EmptyCheckpointRestoresCleanly) {
  Spec S = randomSpec(1, RandomSpecOptions());
  Program Plan = compileOrDie(S, true, 1);

  MonitorFleet FleetA(Plan, hostileOptions(4));
  std::string Err;
  FleetCheckpoint C;
  C.ProgramChecksum = programChecksum(Plan);
  C.SourceShards = 4;
  C.Lanes = FleetA.suspend(&Err);
  ASSERT_EQ(Err, "");
  EXPECT_TRUE(C.Lanes.empty());

  std::vector<uint8_t> Bytes = serializeCheckpoint(C);
  DiagnosticEngine Diags;
  auto Loaded = loadCheckpoint(Bytes, Plan, Diags);
  ASSERT_TRUE(Loaded) << Diags.str();

  auto Trace = randomSpecTrace(S, 40, 99);
  std::vector<CorpusRecord> Records;
  for (const auto &[Id, Ts, V] : Trace)
    Records.push_back({7, S.stream(Id).Name, Ts, V});

  MonitorFleet FleetB(Plan, hostileOptions(2));
  ASSERT_TRUE(FleetB.restore(std::move(Loaded->Lanes)));
  feedAll(FleetB, Plan, Records);
  FleetB.finish();
  ASSERT_FALSE(FleetB.failed());
  EXPECT_EQ(takeRendered(FleetB, Plan.spec()),
            sequentialReference(Plan, Records));
}
