//===- tests/Integration/SemanticsOracleTest.cpp ----------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// An independent semantics oracle: a *denotational* evaluator computing
/// each stream's value at each timestamp directly from the operator
/// definitions of §II (streams as functions T -> D + bottom; `last`
/// searches the previous event by recursion over earlier timestamps).
/// It shares no code with the incremental monitor engine beyond the
/// builtin value functions, so agreement is strong evidence that the
/// engine's calculation/triggering sections implement the semantics.
///
/// Delay-free specifications only (the oracle's timestamp universe is
/// the input timestamps plus 0).
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

/// Recursive, memoized evaluation of stream values at timestamps.
class Oracle {
public:
  Oracle(const Spec &S, const std::vector<TraceEvent> &Events) : S(S) {
    std::set<Time> Ts{0};
    for (const auto &[Id, T, V] : Events) {
      Inputs[{Id, T}] = V;
      Ts.insert(T);
    }
    Timestamps.assign(Ts.begin(), Ts.end());
  }

  /// The value of stream \p Id at time \p T, or nullopt (bottom).
  std::optional<Value> eval(StreamId Id, Time T) {
    auto Key = std::make_pair(Id, T);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    // Seed the memo to cut (invalid-by-construction) cycles defensively.
    Memo[Key] = std::nullopt;
    std::optional<Value> Result = compute(Id, T);
    Memo[Key] = Result;
    return Result;
  }

  const std::vector<Time> &timestamps() const { return Timestamps; }

private:
  const Spec &S;
  std::map<std::pair<StreamId, Time>, Value> Inputs;
  std::map<std::pair<StreamId, Time>, std::optional<Value>> Memo;
  std::vector<Time> Timestamps;

  std::optional<Value> compute(StreamId Id, Time T) {
    const StreamDef &D = S.stream(Id);
    switch (D.Kind) {
    case StreamKind::Input: {
      auto It = Inputs.find({Id, T});
      if (It == Inputs.end())
        return std::nullopt;
      return It->second;
    }
    case StreamKind::Nil:
      return std::nullopt;
    case StreamKind::Unit:
      return T == 0 ? std::optional<Value>(Value::unit()) : std::nullopt;
    case StreamKind::Const:
      return T == 0 ? std::optional<Value>(Value::fromLiteral(D.Literal))
                    : std::nullopt;
    case StreamKind::Time:
      if (eval(D.Args[0], T))
        return Value::integer(T);
      return std::nullopt;
    case StreamKind::Last: {
      // last(v, r): r must tick now; the value is v's event at the
      // greatest earlier timestamp carrying one.
      if (!eval(D.Args[1], T))
        return std::nullopt;
      for (auto It = std::lower_bound(Timestamps.begin(),
                                      Timestamps.end(), T);
           It != Timestamps.begin();) {
        --It;
        if (auto V = eval(D.Args[0], *It))
          return V;
      }
      return std::nullopt;
    }
    case StreamKind::Delay:
      ADD_FAILURE() << "oracle does not support delay";
      return std::nullopt;
    case StreamKind::Lift: {
      const BuiltinInfo &Info = builtinInfo(D.Fn);
      std::optional<Value> Vals[3];
      const Value *Ptrs[3] = {nullptr, nullptr, nullptr};
      unsigned Present = 0;
      for (unsigned I = 0; I != Info.Arity; ++I) {
        Vals[I] = eval(D.Args[I], T);
        if (Vals[I]) {
          Ptrs[I] = &*Vals[I];
          ++Present;
        }
      }
      switch (Info.Events) {
      case EventSemantics::All:
        if (Present != Info.Arity)
          return std::nullopt;
        break;
      case EventSemantics::Any:
        if (Present == 0)
          return std::nullopt;
        // merge: first present argument wins.
        return Vals[0] ? Vals[0] : Vals[1];
      case EventSemantics::FirstAndAnyRest:
        if (!Vals[0] || Present < 2)
          return std::nullopt;
        break;
      case EventSemantics::Custom:
        // filter(a, c).
        if (!Vals[0] || !Vals[1] || !Vals[1]->getBool())
          return std::nullopt;
        return Vals[0];
      }
      EvalError Err;
      Value Result = applyBuiltin(D.Fn, Ptrs, Info.Arity,
                                  /*InPlace=*/false, Err);
      EXPECT_FALSE(Err.Failed) << Err.Message;
      return Result;
    }
    }
    return std::nullopt;
  }
};

/// Renders the oracle's output trace in formatOutputs() format.
std::string oracleOutputs(const Spec &S,
                          const std::vector<TraceEvent> &Events) {
  Oracle O(S, Events);
  std::string Out;
  for (Time T : O.timestamps()) {
    for (StreamId Id : S.outputs()) {
      if (auto V = O.eval(Id, T))
        Out += formatEvent(S, {T, Id, *V}) + "\n";
    }
  }
  return Out;
}

std::string engineOutputs(const Spec &S,
                          const std::vector<TraceEvent> &Events,
                          bool Optimize) {
  Program Plan = compileOrDie(S, Optimize);
  std::string Error;
  auto Out = runMonitor(Plan, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(Plan.spec(), Out);
}

void expectOracleAgreement(const Spec &S,
                           const std::vector<TraceEvent> &Events) {
  std::string Expected = oracleOutputs(S, Events);
  EXPECT_EQ(engineOutputs(S, Events, true), Expected);
  EXPECT_EQ(engineOutputs(S, Events, false), Expected);
  EXPECT_FALSE(Expected.empty()) << "vacuous oracle comparison";
}

} // namespace

TEST(SemanticsOracleTest, Figure1) {
  Spec S = figure1();
  expectOracleAgreement(S,
                        tracegen::randomInts(*S.lookup("i"), 200, 15, 51));
}

TEST(SemanticsOracleTest, SeenSet) {
  Spec S = seenSet();
  expectOracleAgreement(S,
                        tracegen::randomInts(*S.lookup("x"), 200, 10, 52));
}

TEST(SemanticsOracleTest, MapWindow) {
  Spec S = mapWindow(5);
  expectOracleAgreement(
      S, tracegen::randomInts(*S.lookup("x"), 150, 100, 53));
}

TEST(SemanticsOracleTest, QueueWindow) {
  Spec S = queueWindow(5);
  expectOracleAgreement(
      S, tracegen::randomInts(*S.lookup("x"), 150, 100, 54));
}

TEST(SemanticsOracleTest, CountingRecursion) {
  Spec S = parseOrDie(R"(
    in x: Int
    def c := merge(last(c, x) + 1, 0)
    def even := filter(c, c % 2 == 0)
    out c
    out even
  )");
  expectOracleAgreement(S,
                        tracegen::randomInts(*S.lookup("x"), 100, 5, 55));
}

TEST(SemanticsOracleTest, MixedOperators) {
  Spec S = parseOrDie(R"(
    in a: Int
    in b: Int
    def t := time(merge(a, b))
    def held := hold(a, b)
    def sum := held + b
    def choice := if sum > 50 then sum else -sum
    out t
    out choice
  )");
  std::mt19937_64 Rng(56);
  std::vector<TraceEvent> Events;
  Time T = 0;
  for (int I = 0; I != 200; ++I) {
    T += 1 + Rng() % 3;
    Events.emplace_back(Rng() % 2 ? *S.lookup("a") : *S.lookup("b"), T,
                        Value::integer(static_cast<int64_t>(Rng() % 60)));
  }
  expectOracleAgreement(S, Events);
}

TEST(SemanticsOracleTest, RandomSpecsAgreeWithOracle) {
  // The shared random-spec generator, restricted to its delay-free
  // subset (the oracle's timestamp universe is the input timestamps plus
  // 0, so delay firings between input events are out of scope). Short
  // traces: the oracle's last() is a linear scan per evaluation.
  testrandom::RandomSpecOptions Opts;
  Opts.WithDelay = false;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Spec S = testrandom::randomSpec(Seed, Opts);
    auto Events = testrandom::randomSpecTrace(S, 120, Seed * 7177);
    expectOracleAgreement(S, Events);
  }
}

TEST(SemanticsOracleTest, SameTimestampOnBothInputs) {
  Spec S = parseOrDie(R"(
    in a: Int
    in b: Int
    def sum := a + b
    def m := merge(a, b)
    def l := last(m, merge(time(a), time(b)))
    out sum
    out m
    out l
  )");
  std::vector<TraceEvent> Events;
  StreamId A = *S.lookup("a"), B = *S.lookup("b");
  // Mix of coinciding and separate timestamps.
  Events.emplace_back(A, 1, Value::integer(1));
  Events.emplace_back(B, 1, Value::integer(2));
  Events.emplace_back(A, 2, Value::integer(3));
  Events.emplace_back(B, 3, Value::integer(4));
  Events.emplace_back(A, 4, Value::integer(5));
  Events.emplace_back(B, 4, Value::integer(6));
  expectOracleAgreement(S, Events);
}
