//===- tests/Integration/DifferentialTest.cpp -------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The paper's implicit correctness claim (§IV-E1): implementing the
/// mutability set with destructive updates must not change observable
/// behavior. We check it differentially — the optimized monitor and the
/// all-persistent baseline must produce byte-identical output traces, on
/// the evaluation workloads and on randomly generated specifications.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <random>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string runWith(const Spec &S, const std::vector<TraceEvent> &Events,
                    bool Optimize, uint32_t *MutableCount = nullptr) {
  MutabilityOptions Opts;
  Opts.Optimize = Optimize;
  AnalysisResult A = analyzeSpec(S, Opts);
  if (MutableCount)
    *MutableCount = A.mutability().mutableCount();
  MonitorPlan Plan = MonitorPlan::compile(A);
  std::string Error;
  auto Out = runMonitor(Plan, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(Plan.spec(), Out);
}

void expectDifferentialEqual(const Spec &S,
                             const std::vector<TraceEvent> &Events,
                             bool ExpectInPlace = true) {
  uint32_t MutableCount = 0;
  std::string Optimized = runWith(S, Events, true, &MutableCount);
  std::string Baseline = runWith(S, Events, false);
  EXPECT_EQ(Optimized, Baseline);
  EXPECT_FALSE(Optimized.empty()) << "vacuous comparison";
  if (ExpectInPlace) {
    EXPECT_GT(MutableCount, 0u)
        << "optimization did not kick in; test is vacuous";
  }
}

} // namespace

TEST(DifferentialTest, Figure1) {
  Spec S = figure1();
  StreamId I = *S.lookup("i");
  expectDifferentialEqual(S, tracegen::randomInts(I, 2000, 40, 1));
}

TEST(DifferentialTest, Figure4Upper) {
  Spec S = figure4Upper();
  auto E1 = tracegen::randomInts(*S.lookup("i1"), 1000, 30, 2);
  auto E2 = tracegen::randomInts(*S.lookup("i2"), 1000, 30, 3);
  // Interleave at odd/even timestamps.
  std::vector<TraceEvent> Events;
  for (size_t I = 0; I != 1000; ++I) {
    auto [S1, T1, V1] = E1[I];
    auto [S2, T2, V2] = E2[I];
    Events.emplace_back(S1, static_cast<Time>(2 * I + 1), V1);
    Events.emplace_back(S2, static_cast<Time>(2 * I + 2), V2);
  }
  expectDifferentialEqual(S, Events);
}

TEST(DifferentialTest, Figure4LowerStaysCorrectWhilePersistent) {
  Spec S = figure4Lower();
  auto E1 = tracegen::randomInts(*S.lookup("i1"), 500, 20, 4);
  auto E2 = tracegen::randomInts(*S.lookup("i2"), 500, 20, 5);
  std::vector<TraceEvent> Events;
  for (size_t I = 0; I != 500; ++I) {
    Events.emplace_back(std::get<0>(E1[I]), static_cast<Time>(2 * I + 1),
                        std::get<2>(E1[I]));
    Events.emplace_back(std::get<0>(E2[I]), static_cast<Time>(2 * I + 2),
                        std::get<2>(E2[I]));
  }
  // The analysis keeps this persistent; outputs still must agree.
  expectDifferentialEqual(S, Events, /*ExpectInPlace=*/false);
}

TEST(DifferentialTest, SeenSet) {
  Spec S = seenSet();
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 60, 6));
}

TEST(DifferentialTest, MapWindow) {
  Spec S = mapWindow(16);
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 1000, 7));
}

TEST(DifferentialTest, QueueWindow) {
  Spec S = queueWindow(16);
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 1000, 8));
}

TEST(DifferentialTest, DbAccessConstraint) {
  Spec S = dbAccessConstraint();
  tracegen::DbLogConfig Config;
  Config.Count = 5000;
  Config.Seed = 9;
  expectDifferentialEqual(S, tracegen::dbLog(*S.lookup("ins"),
                                             *S.lookup("del"),
                                             *S.lookup("acc"), Config));
}

TEST(DifferentialTest, DbTimeConstraint) {
  Spec S = dbTimeConstraint();
  tracegen::DbPairConfig Config;
  Config.Count = 3000;
  Config.Seed = 10;
  expectDifferentialEqual(
      S, tracegen::dbPairLog(*S.lookup("db2"), *S.lookup("db3"), Config));
}

TEST(DifferentialTest, PeakDetection) {
  Spec S = peakDetection(16);
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.PeakProb = 0.01;
  Config.Seed = 11;
  expectDifferentialEqual(S, tracegen::powerSignal(*S.lookup("p"),
                                                   Config));
}

TEST(DifferentialTest, SpectrumCalculation) {
  Spec S = spectrumCalculation();
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.Seed = 12;
  expectDifferentialEqual(S, tracegen::powerSignal(*S.lookup("p"),
                                                   Config));
}

// --- Randomized specifications -------------------------------------------

namespace {

/// Generates a random valid specification over two Int inputs: layered
/// (acyclic) definitions mixing scalar and aggregate operators plus
/// accumulator patterns, with every stream marked as output.
Spec randomSpec(uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  SpecBuilder B;
  std::vector<StreamId> Ints;
  std::vector<StreamId> Bools;
  std::vector<StreamId> Sets;
  std::vector<StreamId> Maps;
  std::vector<StreamId> Queues;

  Ints.push_back(B.input("a", Type::integer()));
  Ints.push_back(B.input("b", Type::integer()));
  StreamId Unit = B.unit("u");
  Sets.push_back(B.lift("e0", BuiltinId::SetEmpty, {Unit}));
  Maps.push_back(B.lift("em0", BuiltinId::MapEmpty, {Unit}));
  Queues.push_back(B.lift("eq0", BuiltinId::QueueEmpty, {Unit}));
  Ints.push_back(B.constant("c0", ConstantLit{int64_t{3}}));

  auto Pick = [&Rng](const std::vector<StreamId> &Pool) {
    return Pool[Rng() % Pool.size()];
  };

  unsigned NumDefs = 8 + Rng() % 20;
  for (unsigned I = 0; I != NumDefs; ++I) {
    std::string Name = "s" + std::to_string(I);
    switch (Rng() % 16) {
    case 0:
      Ints.push_back(B.lift(Name, BuiltinId::Add, {Pick(Ints),
                                                   Pick(Ints)}));
      break;
    case 1:
      Ints.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Ints),
                                                     Pick(Ints)}));
      break;
    case 2:
      Ints.push_back(B.time(Name, Pick(Ints)));
      break;
    case 3:
      Ints.push_back(B.last(Name, Pick(Ints), Pick(Ints)));
      break;
    case 4:
      Bools.push_back(B.lift(Name, BuiltinId::SetContains,
                             {Pick(Sets), Pick(Ints)}));
      break;
    case 5:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetAdd
                                      : BuiltinId::SetToggle,
                            {Pick(Sets), Pick(Ints)}));
      break;
    case 6:
      Sets.push_back(B.lift(Name, BuiltinId::Merge, {Pick(Sets),
                                                     Pick(Sets)}));
      break;
    case 7:
      Sets.push_back(B.last(Name, Pick(Sets), Pick(Ints)));
      break;
    case 8:
      Maps.push_back(B.lift(Name, BuiltinId::MapPut,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 9:
      Ints.push_back(B.lift(Name, BuiltinId::MapGetOrElse,
                            {Pick(Maps), Pick(Ints), Pick(Ints)}));
      break;
    case 10:
      Queues.push_back(B.lift(Name, BuiltinId::QueueEnq,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 11:
      if (!Bools.empty()) {
        Sets.push_back(B.lift(Name, BuiltinId::Filter,
                              {Pick(Sets), Pick(Bools)}));
      } else {
        Ints.push_back(B.lift(Name, BuiltinId::SetSize, {Pick(Sets)}));
      }
      break;
    case 12:
      Sets.push_back(B.lift(Name,
                            Rng() % 2 ? BuiltinId::SetUnion
                                      : BuiltinId::SetDiff,
                            {Pick(Sets), Pick(Sets)}));
      break;
    case 13:
      Queues.push_back(B.lift(Name, BuiltinId::QueueTrim,
                              {Pick(Queues), Pick(Ints)}));
      break;
    case 14:
      Maps.push_back(B.lift(Name, BuiltinId::MapRemove,
                            {Pick(Maps), Pick(Ints)}));
      break;
    case 15:
      Ints.push_back(B.lift(Name, BuiltinId::QueueSize, {Pick(Queues)}));
      break;
    }
  }
  // Anchor the empty-aggregate constructors with one concrete use each so
  // their element types are always inferable.
  B.lift("anchorS", BuiltinId::SetAdd, {Sets[0], Ints[0]});
  B.lift("anchorM", BuiltinId::MapPut, {Maps[0], Ints[0], Ints[0]});
  B.lift("anchorQ", BuiltinId::QueueEnq, {Queues[0], Ints[0]});

  // Also build one accumulator (write-into-last loop) to exercise the
  // interesting mutability pattern.
  StreamId Acc = B.declare("acc");
  StreamId M = B.lift("accm", BuiltinId::Merge,
                      {Acc, B.lift("acce", BuiltinId::SetEmpty, {Unit})});
  StreamId Prev = B.last("accprev", M, Ints[0]);
  B.defineLift(Acc, BuiltinId::SetAdd, {Prev, Ints[0]});
  StreamId Probe = B.lift("accprobe", BuiltinId::SetContains,
                          {Prev, Ints[1 % Ints.size()]});

  // Outputs: every scalar result plus sizes of aggregates (canonical
  // rendering of whole aggregates is exercised separately; sizes keep
  // traces compact).
  for (StreamId Id : Bools)
    B.markOutput(Id);
  for (StreamId Id : Ints)
    B.markOutput(Id);
  B.markOutput(Probe);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  DiagnosticEngine TDiags;
  EXPECT_TRUE(typecheck(S, TDiags)) << TDiags.str();
  return S;
}

} // namespace

TEST(DifferentialTest, RandomSpecsAgree) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Spec S = randomSpec(Seed);
    // Random interleaved trace on both inputs.
    std::mt19937_64 Rng(Seed * 977);
    std::vector<TraceEvent> Events;
    Time Ts = 0;
    for (int I = 0; I != 600; ++I) {
      Ts += 1 + Rng() % 3;
      StreamId In = Rng() % 2 ? *S.lookup("a") : *S.lookup("b");
      Events.emplace_back(In, Ts,
                          Value::integer(static_cast<int64_t>(Rng() % 50)));
    }
    std::string Optimized = runWith(S, Events, true);
    std::string Baseline = runWith(S, Events, false);
    EXPECT_EQ(Optimized, Baseline) << "seed " << Seed << "\n" << S.str();
  }
}

TEST(DifferentialTest, WholeAggregateOutputsAgree) {
  // Render the full aggregate values (canonical form must match across
  // representations).
  Spec S = parseOrDie(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def y := setToggle(prev, x)
    def qprev := last(merge(q, queueEmpty()), x)
    def q := queueTrim(queueEnq(qprev, x), 5)
    def mprev := last(merge(m, mapEmpty()), x)
    def m := mapPut(mprev, x % 7, x)
    out y
    out q
    out m
  )");
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 500, 25, 13));
}
