//===- tests/Integration/DifferentialTest.cpp -------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The paper's implicit correctness claim (§IV-E1): implementing the
/// mutability set with destructive updates must not change observable
/// behavior. We check it differentially — the optimized monitor and the
/// all-persistent baseline must produce byte-identical output traces, on
/// the evaluation workloads and on randomly generated specifications.
///
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include "../RandomSpecGen.h"
#include "../TestSpecs.h"

#include <gtest/gtest.h>

#include <random>

using namespace tessla;
using namespace tessla::testspecs;

namespace {

std::string runWith(const Spec &S, const std::vector<TraceEvent> &Events,
                    bool Optimize, uint32_t *MutableCount = nullptr) {
  Program Plan = compileOrDie(S, Optimize);
  if (MutableCount)
    *MutableCount = mutableStreamCount(Plan);
  std::string Error;
  auto Out = runMonitor(Plan, Events, std::nullopt, &Error);
  EXPECT_EQ(Error, "");
  return formatOutputs(Plan.spec(), Out);
}

void expectDifferentialEqual(const Spec &S,
                             const std::vector<TraceEvent> &Events,
                             bool ExpectInPlace = true) {
  uint32_t MutableCount = 0;
  std::string Optimized = runWith(S, Events, true, &MutableCount);
  std::string Baseline = runWith(S, Events, false);
  EXPECT_EQ(Optimized, Baseline);
  EXPECT_FALSE(Optimized.empty()) << "vacuous comparison";
  if (ExpectInPlace) {
    EXPECT_GT(MutableCount, 0u)
        << "optimization did not kick in; test is vacuous";
  }
}

} // namespace

TEST(DifferentialTest, Figure1) {
  Spec S = figure1();
  StreamId I = *S.lookup("i");
  expectDifferentialEqual(S, tracegen::randomInts(I, 2000, 40, 1));
}

TEST(DifferentialTest, Figure4Upper) {
  Spec S = figure4Upper();
  auto E1 = tracegen::randomInts(*S.lookup("i1"), 1000, 30, 2);
  auto E2 = tracegen::randomInts(*S.lookup("i2"), 1000, 30, 3);
  // Interleave at odd/even timestamps.
  std::vector<TraceEvent> Events;
  for (size_t I = 0; I != 1000; ++I) {
    auto [S1, T1, V1] = E1[I];
    auto [S2, T2, V2] = E2[I];
    Events.emplace_back(S1, static_cast<Time>(2 * I + 1), V1);
    Events.emplace_back(S2, static_cast<Time>(2 * I + 2), V2);
  }
  expectDifferentialEqual(S, Events);
}

TEST(DifferentialTest, Figure4LowerStaysCorrectWhilePersistent) {
  Spec S = figure4Lower();
  auto E1 = tracegen::randomInts(*S.lookup("i1"), 500, 20, 4);
  auto E2 = tracegen::randomInts(*S.lookup("i2"), 500, 20, 5);
  std::vector<TraceEvent> Events;
  for (size_t I = 0; I != 500; ++I) {
    Events.emplace_back(std::get<0>(E1[I]), static_cast<Time>(2 * I + 1),
                        std::get<2>(E1[I]));
    Events.emplace_back(std::get<0>(E2[I]), static_cast<Time>(2 * I + 2),
                        std::get<2>(E2[I]));
  }
  // The analysis keeps this persistent; outputs still must agree.
  expectDifferentialEqual(S, Events, /*ExpectInPlace=*/false);
}

TEST(DifferentialTest, SeenSet) {
  Spec S = seenSet();
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 60, 6));
}

TEST(DifferentialTest, MapWindow) {
  Spec S = mapWindow(16);
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 1000, 7));
}

TEST(DifferentialTest, QueueWindow) {
  Spec S = queueWindow(16);
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 5000, 1000, 8));
}

TEST(DifferentialTest, DbAccessConstraint) {
  Spec S = dbAccessConstraint();
  tracegen::DbLogConfig Config;
  Config.Count = 5000;
  Config.Seed = 9;
  expectDifferentialEqual(S, tracegen::dbLog(*S.lookup("ins"),
                                             *S.lookup("del"),
                                             *S.lookup("acc"), Config));
}

TEST(DifferentialTest, DbTimeConstraint) {
  Spec S = dbTimeConstraint();
  tracegen::DbPairConfig Config;
  Config.Count = 3000;
  Config.Seed = 10;
  expectDifferentialEqual(
      S, tracegen::dbPairLog(*S.lookup("db2"), *S.lookup("db3"), Config));
}

TEST(DifferentialTest, PeakDetection) {
  Spec S = peakDetection(16);
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.PeakProb = 0.01;
  Config.Seed = 11;
  expectDifferentialEqual(S, tracegen::powerSignal(*S.lookup("p"),
                                                   Config));
}

TEST(DifferentialTest, SpectrumCalculation) {
  Spec S = spectrumCalculation();
  tracegen::PowerConfig Config;
  Config.Count = 4000;
  Config.Seed = 12;
  expectDifferentialEqual(S, tracegen::powerSignal(*S.lookup("p"),
                                                   Config));
}

// --- Randomized specifications -------------------------------------------
//
// The generator lives in tests/RandomSpecGen.h (shared with the fleet
// determinism suite and the semantics oracle's delay-free subset).

TEST(DifferentialTest, RandomSpecsAgree) {
  uint32_t TotalMutable = 0;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Spec S = testrandom::randomSpec(Seed);
    auto Events = testrandom::randomSpecTrace(S, 600, Seed * 977);
    uint32_t MutableCount = 0;
    std::string Optimized = runWith(S, Events, true, &MutableCount);
    std::string Baseline = runWith(S, Events, false);
    EXPECT_EQ(Optimized, Baseline) << "seed " << Seed << "\n" << S.str();
    EXPECT_FALSE(Optimized.empty())
        << "vacuous comparison at seed " << Seed;
    TotalMutable += MutableCount;
  }
  // Not every seed must trigger the optimization, but the batch as a
  // whole must — otherwise all 25 comparisons are trivially vacuous.
  EXPECT_GT(TotalMutable, 0u)
      << "optimization never kicked in; the property is vacuous";
}

TEST(DifferentialTest, RandomSpecsWithDelayAgree) {
  // Delay streams make the triggering section fire between input
  // timestamps (§III-B); the firing schedule must not depend on the
  // aggregate representation.
  testrandom::RandomSpecOptions Opts;
  Opts.WithDelay = true;
  uint32_t TotalMutable = 0;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    Spec S = testrandom::randomSpec(Seed, Opts);
    auto Events = testrandom::randomSpecTrace(S, 400, Seed * 1313);
    uint32_t MutableCount = 0;
    std::string Optimized = runWith(S, Events, true, &MutableCount);
    std::string Baseline = runWith(S, Events, false);
    EXPECT_EQ(Optimized, Baseline) << "seed " << Seed << "\n" << S.str();
    EXPECT_FALSE(Optimized.empty())
        << "vacuous comparison at seed " << Seed;
    TotalMutable += MutableCount;
  }
  EXPECT_GT(TotalMutable, 0u)
      << "optimization never kicked in; the property is vacuous";
}

TEST(DifferentialTest, WholeAggregateOutputsAgree) {
  // Render the full aggregate values (canonical form must match across
  // representations).
  Spec S = parseOrDie(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def y := setToggle(prev, x)
    def qprev := last(merge(q, queueEmpty()), x)
    def q := queueTrim(queueEnq(qprev, x), 5)
    def mprev := last(merge(m, mapEmpty()), x)
    def m := mapPut(mprev, x % 7, x)
    out y
    out q
    out m
  )");
  expectDifferentialEqual(
      S, tracegen::randomInts(*S.lookup("x"), 500, 25, 13));
}
