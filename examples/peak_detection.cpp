//===- examples/peak_detection.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The paper's PeakDetection scenario (Table I, ReNuBiL energy data):
/// detect power-consumption samples deviating more than 40% from the
/// moving-average window around them. The window lives in a queue that
/// the analysis maintains in place, paired with a running sum.
///
/// The ReNuBiL log is not public; a synthetic power signal (base load +
/// daily sinusoid + noise + injected peaks) drives the same code path
/// (see DESIGN.md).
///
/// Build & run:  ./build/examples/peak_detection [num_samples]
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Runtime/TraceGen.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace tessla;

int main(int argc, char **argv) {
  size_t NumSamples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  constexpr int W = 30; // window: 30 samples = +-15 min at 1/min rate

  std::string Source = R"(
    in p: Float
    def qprev := last(merge(q, queueEmpty()), p)
    def qenq  := queueEnq(qprev, p)
    def full  := queueSize(qenq) > )" + std::to_string(W) + R"(
    def dropped := queueFront(filter(qenq, full))
    def q     := queueTrim(qenq, )" + std::to_string(W) + R"()
    def dz    := merge(dropped, 0.0 * p)
    def sprev := last(s, p)
    def s     := merge(sprev + p - dz, 0.0)
    def mean  := s / )" + std::to_string(W) + R"(.0
    def dev   := abs(dropped - mean)
    def peak  := filter(dropped, dev > mean * 0.4)
    out peak
  )";

  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  if (!S) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("%s\n", analyzeSpec(*S).report().c_str());

  tracegen::PowerConfig Config;
  Config.Count = NumSamples;
  Config.Period = 60; // one sample per minute
  Config.PeakProb = 0.002;
  Config.PeakScale = 3.5;
  Config.Seed = 7;
  auto Events = tracegen::powerSignal(*S->lookup("p"), Config);

  std::optional<Program> PlanOpt = compileSpec(*S, CompileOptions(), Diags);
  if (!PlanOpt) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Program &Plan = *PlanOpt;
  Monitor M(Plan);
  unsigned Shown = 0;
  uint64_t Total = 0;
  M.setOutputHandler([&](Time Ts, StreamId, const Value &V) {
    ++Total;
    if (Shown < 10) {
      std::printf("peak at t=%llds: %.1f kW leaves the +-40%% band\n",
                  static_cast<long long>(Ts), V.getFloat());
      ++Shown;
    }
  });
  for (const auto &[Id, Ts, V] : Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish();
  if (M.failed()) {
    std::fprintf(stderr, "monitor error: %s\n", M.errorMessage().c_str());
    return 1;
  }
  std::printf("...\n%llu peak(s) in %zu samples\n",
              static_cast<unsigned long long>(Total), Events.size());
  return 0;
}
