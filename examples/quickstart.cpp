//===- examples/quickstart.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: the paper's running example (Fig. 1) end to end.
///
///  1. Parse a TeSSLa specification that accumulates input values in a
///     set and reports whether the current value was seen before.
///  2. Run the aggregate update analysis and print its report — which
///     stream variables may use mutable data structures, and in which
///     order the generated monitor must evaluate.
///  3. Execute the monitor on a small trace and print the outputs.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Runtime/TraceIO.h"

#include <cstdio>

using namespace tessla;

int main() {
  // --- 1. The specification (Fig. 1 of the paper). -----------------------
  const char *Source = R"(
    in i: Int
    def m  := merge(y, setEmpty())        -- default to the empty set
    def yl := last(m, i)                  -- the set as of the previous event
    def y  := setAdd(yl, i)               -- accumulate the current value
    def s  := setContains(yl, i)          -- was it already contained?
    out s
  )";

  DiagnosticEngine Diags;
  std::optional<Spec> S = parseSpec(Source, Diags);
  if (!S) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("Flat specification:\n%s\n", S->str().c_str());

  // --- 2. The aggregate update analysis. ----------------------------------
  // (The report is informational; compileSpec below re-runs the whole
  // pipeline internally — embedders never chain stages by hand.)
  std::printf("%s\n", analyzeSpec(*S).report().c_str());

  // --- 3. Execute the optimized monitor on a trace. -----------------------
  const char *TraceText = R"(
    1: i = 7
    2: i = 3
    3: i = 7
    4: i = 9
    5: i = 3
  )";
  auto Events = parseTrace(TraceText, *S, Diags);
  if (!Events) {
    std::fprintf(stderr, "trace error:\n%s", Diags.str().c_str());
    return 1;
  }

  std::optional<Program> PlanOpt = compileSpec(*S, CompileOptions(), Diags);
  if (!PlanOpt) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  Program &Plan = *PlanOpt;
  Monitor M(Plan);
  M.setOutputHandler([&](Time Ts, StreamId Id, const Value &V) {
    std::printf("%lld: %s = %s\n", static_cast<long long>(Ts),
                Plan.spec().stream(Id).Name.c_str(), V.str().c_str());
  });
  std::printf("Monitor output:\n");
  for (const auto &[Id, Ts, V] : *Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish();
  if (M.failed()) {
    std::fprintf(stderr, "monitor error: %s\n", M.errorMessage().c_str());
    return 1;
  }
  std::printf("\n(%u destructive update step(s) in the compiled plan)\n",
              Plan.inPlaceStepCount());
  return 0;
}
