//===- examples/compile_to_cpp.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The compiler as a tool: reads a TeSSLa specification (from a file or,
/// with no arguments, the built-in Seen Set spec), runs the aggregate
/// update analysis and emits the optimized C++ monitor to stdout — the
/// analogue of the paper's TeSSLa-to-Scala compiler.
///
/// Usage:
///   ./build/examples/compile_to_cpp [spec.tessla] [--baseline] > mon.cpp
///   c++ -std=c++20 -I include mon.cpp -o mon
///   ./mon < trace.txt
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/CodeGen/CppEmitter.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Lang/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace tessla;

int main(int argc, char **argv) {
  std::string Source = R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def seen := setContains(prev, x)
    def y    := setToggle(prev, x)
    out seen
  )";
  bool Optimize = true;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--baseline") == 0) {
      Optimize = false;
      continue;
    }
    std::ifstream In(argv[I]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[I]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  if (!S) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  MutabilityOptions MOpts;
  MOpts.Optimize = Optimize;
  std::fprintf(stderr, "%s\n", analyzeSpec(*S, MOpts).report().c_str());

  CompileOptions Opts;
  Opts.Optimize = Optimize;
  auto Plan = compileSpec(*S, Opts, Diags);
  if (!Plan) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  CppEmitterOptions EOpts;
  EOpts.EmitMain = true;
  auto Code = emitCppMonitor(*Plan, EOpts, Diags);
  if (!Code) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::fputs(Code->c_str(), stdout);
  return 0;
}
