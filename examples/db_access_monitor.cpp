//===- examples/db_access_monitor.cpp ---------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The paper's DBAccessConstraint scenario (Table I): "a record may not
/// be accessed before it was inserted or after it was deleted". The
/// monitor tracks the live record ids in a set; the aggregate update
/// analysis proves the set can be maintained in place.
///
/// The paper ran this on the 14 GB Nokia database log of the RV
/// Competition 2014; this example substitutes a synthetic operation log
/// with the same structure (see DESIGN.md) and reports both correctness
/// results and the optimized-vs-baseline runtime.
///
/// Build & run:  ./build/examples/db_access_monitor [num_operations]
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Runtime/TraceGen.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace tessla;

namespace {

double runSeconds(const Program &Plan,
                  const std::vector<TraceEvent> &Events,
                  uint64_t &Violations) {
  Monitor M(Plan);
  uint64_t Count = 0;
  M.setOutputHandler(
      [&Count](Time, StreamId, const Value &) { ++Count; });
  auto Start = std::chrono::steady_clock::now();
  for (const auto &[Id, Ts, V] : Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish();
  auto End = std::chrono::steady_clock::now();
  if (M.failed())
    std::fprintf(stderr, "monitor error: %s\n", M.errorMessage().c_str());
  Violations = Count;
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  size_t NumOps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  const char *Source = R"(
    in ins: Int                           -- record inserted
    in del: Int                           -- record deleted
    in acc: Int                           -- record accessed
    def anyOp := merge(merge(ins, del), acc)
    def prev  := last(merge(live, setEmpty()), anyOp)
    def live  := setUpdate(prev, ins, del)
    def violation := filter(acc, !setContains(prev, acc))
    out violation
  )";

  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  if (!S) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  std::printf("%s\n", analyzeSpec(*S).report().c_str());

  tracegen::DbLogConfig Config;
  Config.Count = NumOps;
  Config.Seed = 2024;
  auto Events = tracegen::dbLog(*S->lookup("ins"), *S->lookup("del"),
                                *S->lookup("acc"), Config);
  std::printf("synthetic database log: %zu operations\n", Events.size());

  CompileOptions BaseOpts;
  BaseOpts.Optimize = false;
  std::optional<Program> OptPlan = compileSpec(*S, CompileOptions(), Diags);
  std::optional<Program> BasePlan = compileSpec(*S, BaseOpts, Diags);
  if (!OptPlan || !BasePlan) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  uint64_t OptViolations = 0, BaseViolations = 0;
  double OptTime = runSeconds(*OptPlan, Events, OptViolations);
  double BaseTime = runSeconds(*BasePlan, Events, BaseViolations);

  std::printf("violations found: %llu (optimized), %llu (baseline)\n",
              static_cast<unsigned long long>(OptViolations),
              static_cast<unsigned long long>(BaseViolations));
  std::printf("optimized (mutable set):    %.3f s\n", OptTime);
  std::printf("baseline (persistent set):  %.3f s\n", BaseTime);
  std::printf("speedup: %.2fx\n", BaseTime / OptTime);
  return OptViolations == BaseViolations ? 0 : 1;
}
