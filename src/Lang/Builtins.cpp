//===- Lang/Builtins.cpp ----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Builtins.h"

#include <cassert>
#include <unordered_map>

using namespace tessla;

namespace {

// Shorthands for the table below.
Type tv(uint32_t I) { return Type::var(I); }

BuiltinInfo make(BuiltinId Id, std::string_view Name, uint8_t Arity,
                 EventSemantics Ev, std::initializer_list<ArgAccess> Acc,
                 std::initializer_list<Type> Params, Type Result) {
  BuiltinInfo Info;
  Info.Id = Id;
  Info.Name = Name;
  Info.Arity = Arity;
  Info.Events = Ev;
  assert(Acc.size() == Arity && Params.size() == Arity &&
         "access/params must match arity");
  unsigned I = 0;
  for (ArgAccess A : Acc)
    Info.Access[I++] = A;
  I = 0;
  for (const Type &T : Params)
    Info.ParamTypes[I++] = T;
  Info.ResultType = std::move(Result);
  return Info;
}

std::vector<BuiltinInfo> buildTable() {
  using B = BuiltinId;
  using A = ArgAccess;
  const EventSemantics All = EventSemantics::All;
  const EventSemantics Any = EventSemantics::Any;
  const EventSemantics Custom = EventSemantics::Custom;
  const Type I = Type::integer(), F = Type::floating(), Bo = Type::boolean(),
             U = Type::unit();

  std::vector<BuiltinInfo> T;
  // Event combination. merge prioritizes the first stream (f_merge, §II);
  // both arguments may flow through unchanged -> Pass edges.
  T.push_back(make(B::Merge, "merge", 2, Any, {A::Pass, A::Pass},
                   {tv(0), tv(0)}, tv(0)));
  T.push_back(make(B::Ite, "ite", 3, All, {A::None, A::Pass, A::Pass},
                   {Bo, tv(0), tv(0)}, tv(0)));
  // filter(a, c) passes a's event iff c's current value is true; whether an
  // event is produced depends on a *value*, so ev' must treat the defined
  // stream as an atom (Custom).
  T.push_back(make(B::Filter, "filter", 2, Custom, {A::Pass, A::None},
                   {tv(0), Bo}, tv(0)));

  // Arithmetic: polymorphic over Int/Float, checked at runtime.
  T.push_back(make(B::Add, "add", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Sub, "sub", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Mul, "mul", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Div, "div", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Mod, "mod", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Neg, "neg", 1, All, {A::Read}, {tv(0)}, tv(0)));
  T.push_back(make(B::Abs, "abs", 1, All, {A::Read}, {tv(0)}, tv(0)));
  T.push_back(make(B::Min, "min", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));
  T.push_back(make(B::Max, "max", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   tv(0)));

  // Comparisons (Eq/Neq are deep and may read aggregates).
  T.push_back(make(B::Eq, "eq", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));
  T.push_back(make(B::Neq, "neq", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));
  T.push_back(make(B::Lt, "lt", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));
  T.push_back(make(B::Leq, "leq", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));
  T.push_back(make(B::Gt, "gt", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));
  T.push_back(make(B::Geq, "geq", 2, All, {A::Read, A::Read}, {tv(0), tv(0)},
                   Bo));

  // Boolean connectives.
  T.push_back(make(B::LAnd, "and", 2, All, {A::None, A::None}, {Bo, Bo}, Bo));
  T.push_back(make(B::LOr, "or", 2, All, {A::None, A::None}, {Bo, Bo}, Bo));
  T.push_back(make(B::LNot, "not", 1, All, {A::None}, {Bo}, Bo));

  // Conversions.
  T.push_back(make(B::ToFloat, "toFloat", 1, All, {A::None}, {I}, F));
  T.push_back(make(B::ToInt, "toInt", 1, All, {A::None}, {F}, I));

  // Set[T]. The *Empty constructors take the unit stream and mint a fresh
  // aggregate per event (f_emptyset of §II's desugaring example).
  T.push_back(make(B::SetEmpty, "setEmpty", 1, All, {A::None}, {U},
                   Type::set(tv(0))));
  T.push_back(make(B::SetAdd, "setAdd", 2, All, {A::Write, A::None},
                   {Type::set(tv(0)), tv(0)}, Type::set(tv(0))));
  T.push_back(make(B::SetRemove, "setRemove", 2, All, {A::Write, A::None},
                   {Type::set(tv(0)), tv(0)}, Type::set(tv(0))));
  T.push_back(make(B::SetContains, "setContains", 2, All,
                   {A::Read, A::None}, {Type::set(tv(0)), tv(0)}, Bo));
  T.push_back(make(B::SetSize, "setSize", 1, All, {A::Read},
                   {Type::set(tv(0))}, I));
  T.push_back(make(B::SetToggle, "setToggle", 2, All, {A::Write, A::None},
                   {Type::set(tv(0)), tv(0)}, Type::set(tv(0))));
  T.push_back(make(B::SetUpdate, "setUpdate", 3,
                   EventSemantics::FirstAndAnyRest,
                   {A::Write, A::None, A::None},
                   {Type::set(tv(0)), tv(0), tv(0)}, Type::set(tv(0))));
  // Write + Read in one lift: the destructive union may only run if no
  // alias of either argument is consulted afterwards.
  T.push_back(make(B::SetUnion, "setUnion", 2, All, {A::Write, A::Read},
                   {Type::set(tv(0)), Type::set(tv(0))},
                   Type::set(tv(0))));
  T.push_back(make(B::SetDiff, "setDiff", 2, All, {A::Write, A::Read},
                   {Type::set(tv(0)), Type::set(tv(0))},
                   Type::set(tv(0))));

  // Map[K,V].
  T.push_back(make(B::MapEmpty, "mapEmpty", 1, All, {A::None}, {U},
                   Type::map(tv(0), tv(1))));
  T.push_back(make(B::MapPut, "mapPut", 3, All,
                   {A::Write, A::None, A::None},
                   {Type::map(tv(0), tv(1)), tv(0), tv(1)},
                   Type::map(tv(0), tv(1))));
  T.push_back(make(B::MapRemove, "mapRemove", 2, All, {A::Write, A::None},
                   {Type::map(tv(0), tv(1)), tv(0)},
                   Type::map(tv(0), tv(1))));
  T.push_back(make(B::MapGet, "mapGet", 2, All, {A::Read, A::None},
                   {Type::map(tv(0), tv(1)), tv(0)}, tv(1)));
  T.push_back(make(B::MapGetOrElse, "mapGetOrElse", 3, All,
                   {A::Read, A::None, A::None},
                   {Type::map(tv(0), tv(1)), tv(0), tv(1)}, tv(1)));
  T.push_back(make(B::MapContains, "mapContains", 2, All,
                   {A::Read, A::None}, {Type::map(tv(0), tv(1)), tv(0)},
                   Bo));
  T.push_back(make(B::MapSize, "mapSize", 1, All, {A::Read},
                   {Type::map(tv(0), tv(1))}, I));

  // Queue[T].
  T.push_back(make(B::QueueEmpty, "queueEmpty", 1, All, {A::None}, {U},
                   Type::queue(tv(0))));
  T.push_back(make(B::QueueEnq, "queueEnq", 2, All, {A::Write, A::None},
                   {Type::queue(tv(0)), tv(0)}, Type::queue(tv(0))));
  T.push_back(make(B::QueueDeq, "queueDeq", 1, All, {A::Write},
                   {Type::queue(tv(0))}, Type::queue(tv(0))));
  T.push_back(make(B::QueueFront, "queueFront", 1, All, {A::Read},
                   {Type::queue(tv(0))}, tv(0)));
  T.push_back(make(B::QueueSize, "queueSize", 1, All, {A::Read},
                   {Type::queue(tv(0))}, I));
  T.push_back(make(B::QueueTrim, "queueTrim", 2, All, {A::Write, A::None},
                   {Type::queue(tv(0)), I}, Type::queue(tv(0))));

  // Strings.
  const Type Str = Type::string();
  T.push_back(make(B::StrConcat, "strConcat", 2, All, {A::None, A::None},
                   {Str, Str}, Str));
  T.push_back(make(B::StrLen, "strLen", 1, All, {A::None}, {Str}, I));
  return T;
}

} // namespace

const std::vector<BuiltinInfo> &tessla::allBuiltins() {
  static const std::vector<BuiltinInfo> Table = buildTable();
  return Table;
}

const BuiltinInfo &tessla::builtinInfo(BuiltinId Id) {
  const auto &Table = allBuiltins();
  for (const BuiltinInfo &Info : Table)
    if (Info.Id == Id)
      return Info;
  assert(false && "unknown builtin id");
  return Table.front();
}

std::optional<BuiltinId> tessla::builtinByName(std::string_view Name) {
  static const std::unordered_map<std::string_view, BuiltinId> ByName = [] {
    std::unordered_map<std::string_view, BuiltinId> M;
    for (const BuiltinInfo &Info : allBuiltins())
      M.emplace(Info.Name, Info.Id);
    return M;
  }();
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}
