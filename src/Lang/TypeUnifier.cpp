//===- Lang/TypeUnifier.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/TypeUnifier.h"

#include <cassert>

using namespace tessla;

Type TypeUnifier::instantiate(const Type &T,
                              std::unordered_map<uint32_t, Type> &Renaming) {
  if (T.isVar()) {
    auto [It, Inserted] = Renaming.try_emplace(T.varId(), Type());
    if (Inserted)
      It->second = freshVar();
    return It->second;
  }
  switch (T.kind()) {
  case TypeKind::Set:
    return Type::set(instantiate(T.params()[0], Renaming));
  case TypeKind::Map:
    return Type::map(instantiate(T.params()[0], Renaming),
                     instantiate(T.params()[1], Renaming));
  case TypeKind::Queue:
    return Type::queue(instantiate(T.params()[0], Renaming));
  default:
    return T;
  }
}

Type TypeUnifier::resolve(Type T) const {
  while (T.isVar()) {
    auto It = Subst.find(T.varId());
    if (It == Subst.end())
      return T;
    T = It->second;
  }
  return T;
}

bool TypeUnifier::unify(const Type &RawA, const Type &RawB) {
  Type A = resolve(RawA), B = resolve(RawB);
  if (A == B)
    return true;
  if (A.isVar()) {
    // Occurs check against the applied form of B.
    if (apply(B).contains(A.varId()))
      return false;
    Subst.emplace(A.varId(), B);
    return true;
  }
  if (B.isVar())
    return unify(B, A);
  if (A.kind() != B.kind() || A.params().size() != B.params().size())
    return false;
  for (size_t I = 0, E = A.params().size(); I != E; ++I)
    if (!unify(A.params()[I], B.params()[I]))
      return false;
  return true;
}

Type TypeUnifier::apply(const Type &T) const {
  Type R = resolve(T);
  switch (R.kind()) {
  case TypeKind::Set:
    return Type::set(apply(R.params()[0]));
  case TypeKind::Map:
    return Type::map(apply(R.params()[0]), apply(R.params()[1]));
  case TypeKind::Queue:
    return Type::queue(apply(R.params()[0]));
  default:
    return R;
  }
}
