//===- Lang/Parser.cpp ------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Parser.h"

#include "tessla/Lang/Flatten.h"
#include "tessla/Lang/Lexer.h"
#include "tessla/Lang/TypeCheck.h"
#include "tessla/Support/Format.h"

using namespace tessla;
using namespace tessla::ast;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Module run() {
    Module M;
    while (!at(TokenKind::Eof)) {
      if (at(TokenKind::KwIn)) {
        parseInput(M);
      } else if (at(TokenKind::KwDef)) {
        parseDef(M);
      } else if (at(TokenKind::KwOut)) {
        parseOut(M);
      } else {
        error(formatString("expected 'in', 'def' or 'out', got %s",
                           std::string(tokenKindName(peek().Kind)).c_str()));
        synchronize();
      }
    }
    return M;
  }

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind K) const { return peek().is(K); }
  Token advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  void error(std::string Msg) { Diags.error(peek().Loc, std::move(Msg)); }

  bool expect(TokenKind K) {
    if (at(K)) {
      advance();
      return true;
    }
    error(formatString("expected %s, got %s",
                       std::string(tokenKindName(K)).c_str(),
                       std::string(tokenKindName(peek().Kind)).c_str()));
    return false;
  }

  /// Skips to the next declaration keyword after a parse error.
  void synchronize() {
    while (!at(TokenKind::Eof) && !at(TokenKind::KwIn) &&
           !at(TokenKind::KwDef) && !at(TokenKind::KwOut))
      advance();
  }

  std::optional<std::string> expectIdent() {
    if (!at(TokenKind::Identifier)) {
      error(formatString("expected identifier, got %s",
                         std::string(tokenKindName(peek().Kind)).c_str()));
      return std::nullopt;
    }
    return advance().Text;
  }

  void parseInput(Module &M) {
    SourceLocation Loc = peek().Loc;
    advance(); // in
    auto Name = expectIdent();
    if (!Name || !expect(TokenKind::Colon)) {
      synchronize();
      return;
    }
    auto Ty = parseType();
    if (!Ty) {
      synchronize();
      return;
    }
    M.Inputs.push_back({std::move(*Name), std::move(*Ty), Loc});
  }

  void parseDef(Module &M) {
    SourceLocation Loc = peek().Loc;
    advance(); // def
    auto Name = expectIdent();
    if (!Name || !expect(TokenKind::Define)) {
      synchronize();
      return;
    }
    ExprPtr Body = parseExpr();
    if (!Body) {
      synchronize();
      return;
    }
    M.Defs.push_back({std::move(*Name), std::move(Body), Loc});
  }

  void parseOut(Module &M) {
    SourceLocation Loc = peek().Loc;
    advance(); // out
    auto Name = expectIdent();
    if (!Name) {
      synchronize();
      return;
    }
    M.Outputs.push_back({std::move(*Name), Loc});
  }

  std::optional<Type> parseType() {
    if (!at(TokenKind::Identifier)) {
      error("expected a type name");
      return std::nullopt;
    }
    Token T = advance();
    const std::string &N = T.Text;
    if (N == "Int")
      return Type::integer();
    if (N == "Float")
      return Type::floating();
    if (N == "Bool")
      return Type::boolean();
    if (N == "String")
      return Type::string();
    if (N == "Unit")
      return Type::unit();
    if (N == "Set" || N == "Queue") {
      if (!expect(TokenKind::LBracket))
        return std::nullopt;
      auto Elem = parseType();
      if (!Elem || !expect(TokenKind::RBracket))
        return std::nullopt;
      return N == "Set" ? Type::set(std::move(*Elem))
                        : Type::queue(std::move(*Elem));
    }
    if (N == "Map") {
      if (!expect(TokenKind::LBracket))
        return std::nullopt;
      auto Key = parseType();
      if (!Key || !expect(TokenKind::Comma))
        return std::nullopt;
      auto Val = parseType();
      if (!Val || !expect(TokenKind::RBracket))
        return std::nullopt;
      return Type::map(std::move(*Key), std::move(*Val));
    }
    Diags.error(T.Loc, formatString("unknown type '%s'", N.c_str()));
    return std::nullopt;
  }

  ExprPtr makeExpr(ExprKind K, SourceLocation Loc) {
    auto E = std::make_unique<Expr>();
    E->Kind = K;
    E->Loc = Loc;
    return E;
  }

  ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args,
                   SourceLocation Loc) {
    ExprPtr E = makeExpr(ExprKind::Call, Loc);
    E->Callee = std::move(Callee);
    E->Args = std::move(Args);
    return E;
  }

  ExprPtr parseExpr() {
    if (at(TokenKind::KwIf)) {
      SourceLocation Loc = advance().Loc;
      ExprPtr C = parseExpr();
      if (!C || !expect(TokenKind::KwThen))
        return nullptr;
      ExprPtr A = parseExpr();
      if (!A || !expect(TokenKind::KwElse))
        return nullptr;
      ExprPtr B = parseExpr();
      if (!B)
        return nullptr;
      std::vector<ExprPtr> Args;
      Args.push_back(std::move(C));
      Args.push_back(std::move(A));
      Args.push_back(std::move(B));
      return makeCall("ite", std::move(Args), Loc);
    }
    return parseOr();
  }

  ExprPtr parseBinaryChain(ExprPtr (Parser::*Sub)(),
                           std::initializer_list<std::pair<TokenKind,
                                                           const char *>> Ops,
                           bool Chain = true) {
    ExprPtr Lhs = (this->*Sub)();
    if (!Lhs)
      return nullptr;
    for (;;) {
      const char *Name = nullptr;
      for (auto &[K, N] : Ops)
        if (at(K)) {
          Name = N;
          break;
        }
      if (!Name)
        return Lhs;
      SourceLocation Loc = advance().Loc;
      ExprPtr Rhs = (this->*Sub)();
      if (!Rhs)
        return nullptr;
      std::vector<ExprPtr> Args;
      Args.push_back(std::move(Lhs));
      Args.push_back(std::move(Rhs));
      Lhs = makeCall(Name, std::move(Args), Loc);
      if (!Chain)
        return Lhs;
    }
  }

  ExprPtr parseOr() {
    return parseBinaryChain(&Parser::parseAnd, {{TokenKind::OrOr, "or"}});
  }
  ExprPtr parseAnd() {
    return parseBinaryChain(&Parser::parseCmp, {{TokenKind::AndAnd, "and"}});
  }
  ExprPtr parseCmp() {
    return parseBinaryChain(&Parser::parseAdd,
                            {{TokenKind::EqEq, "eq"},
                             {TokenKind::NotEq, "neq"},
                             {TokenKind::Lt, "lt"},
                             {TokenKind::LtEq, "leq"},
                             {TokenKind::Gt, "gt"},
                             {TokenKind::GtEq, "geq"}},
                            /*Chain=*/false);
  }
  ExprPtr parseAdd() {
    return parseBinaryChain(&Parser::parseMul, {{TokenKind::Plus, "add"},
                                                {TokenKind::Minus, "sub"}});
  }
  ExprPtr parseMul() {
    return parseBinaryChain(&Parser::parseUnary,
                            {{TokenKind::Star, "mul"},
                             {TokenKind::Slash, "div"},
                             {TokenKind::Percent, "mod"}});
  }

  ExprPtr parseUnary() {
    if (at(TokenKind::Minus) || at(TokenKind::Bang)) {
      bool IsNeg = at(TokenKind::Minus);
      SourceLocation Loc = advance().Loc;
      // Fold "-<literal>" into a literal.
      if (IsNeg && at(TokenKind::IntLiteral)) {
        Token T = advance();
        ExprPtr E = makeExpr(ExprKind::Literal, Loc);
        E->Lit.V = -T.IntValue;
        return E;
      }
      if (IsNeg && at(TokenKind::FloatLiteral)) {
        Token T = advance();
        ExprPtr E = makeExpr(ExprKind::Literal, Loc);
        E->Lit.V = -T.FloatValue;
        return E;
      }
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      std::vector<ExprPtr> Args;
      Args.push_back(std::move(Sub));
      return makeCall(IsNeg ? "neg" : "not", std::move(Args), Loc);
    }
    return parsePrimary();
  }

  /// Parses "(" e1, .., en ")" into \p Args. Returns false on error.
  bool parseArgs(std::vector<ExprPtr> &Args) {
    if (!expect(TokenKind::LParen))
      return false;
    if (at(TokenKind::RParen)) {
      advance();
      return true;
    }
    for (;;) {
      ExprPtr A = parseExpr();
      if (!A)
        return false;
      Args.push_back(std::move(A));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      return expect(TokenKind::RParen);
    }
  }

  ExprPtr parsePrimary() {
    SourceLocation Loc = peek().Loc;
    switch (peek().Kind) {
    case TokenKind::IntLiteral: {
      Token T = advance();
      ExprPtr E = makeExpr(ExprKind::Literal, Loc);
      E->Lit.V = T.IntValue;
      return E;
    }
    case TokenKind::FloatLiteral: {
      Token T = advance();
      ExprPtr E = makeExpr(ExprKind::Literal, Loc);
      E->Lit.V = T.FloatValue;
      return E;
    }
    case TokenKind::StringLiteral: {
      Token T = advance();
      ExprPtr E = makeExpr(ExprKind::Literal, Loc);
      E->Lit.V = std::move(T.Text);
      return E;
    }
    case TokenKind::KwTrue:
    case TokenKind::KwFalse: {
      bool B = at(TokenKind::KwTrue);
      advance();
      ExprPtr E = makeExpr(ExprKind::Literal, Loc);
      E->Lit.V = B;
      return E;
    }
    case TokenKind::KwUnit:
      advance();
      return makeExpr(ExprKind::UnitVal, Loc);
    case TokenKind::KwNil:
      advance();
      return makeExpr(ExprKind::NilVal, Loc);
    case TokenKind::KwTime:
    case TokenKind::KwLast:
    case TokenKind::KwDelay: {
      TokenKind K = advance().Kind;
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      unsigned Want = K == TokenKind::KwTime ? 1 : 2;
      if (Args.size() != Want) {
        Diags.error(Loc, formatString("operator takes %u argument(s), got "
                                      "%zu",
                                      Want, Args.size()));
        return nullptr;
      }
      ExprPtr E = makeExpr(K == TokenKind::KwTime    ? ExprKind::TimeOp
                           : K == TokenKind::KwLast ? ExprKind::LastOp
                                                    : ExprKind::DelayOp,
                           Loc);
      E->Args = std::move(Args);
      return E;
    }
    case TokenKind::KwDefault: {
      // default(x, e) == merge(x, e-as-constant-stream); with e a general
      // expression it is plain merge.
      advance();
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      if (Args.size() != 2) {
        Diags.error(Loc, formatString("default takes 2 arguments, got %zu",
                                      Args.size()));
        return nullptr;
      }
      return makeCall("merge", std::move(Args), Loc);
    }
    case TokenKind::Identifier: {
      Token T = advance();
      if (!at(TokenKind::LParen)) {
        ExprPtr E = makeExpr(ExprKind::Ident, Loc);
        E->Callee = std::move(T.Text);
        return E;
      }
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      return makeCall(std::move(T.Text), std::move(Args), Loc);
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      return E;
    }
    default:
      error(formatString("expected an expression, got %s",
                         std::string(tokenKindName(peek().Kind)).c_str()));
      return nullptr;
    }
  }
};

} // namespace

std::optional<ast::Module> tessla::parseModule(std::string_view Source,
                                               DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  std::vector<Token> Tokens = tokenize(Source, Diags);
  Module M = Parser(std::move(Tokens), Diags).run();
  if (Diags.errorCount() != Before)
    return std::nullopt;
  return M;
}

std::optional<Spec> tessla::parseSpec(std::string_view Source,
                                      DiagnosticEngine &Diags) {
  auto M = parseModule(Source, Diags);
  if (!M)
    return std::nullopt;
  auto S = lowerModule(*M, Diags);
  if (!S)
    return std::nullopt;
  if (!typecheck(*S, Diags))
    return std::nullopt;
  return S;
}
