//===- Lang/Type.cpp --------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Type.h"

using namespace tessla;

bool Type::isConcrete() const {
  if (Kind == TypeKind::Var)
    return false;
  for (const Type &P : Params)
    if (!P.isConcrete())
      return false;
  return true;
}

bool Type::contains(uint32_t Id) const {
  if (Kind == TypeKind::Var)
    return VarId == Id;
  for (const Type &P : Params)
    if (P.contains(Id))
      return true;
  return false;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Unit:
    return "Unit";
  case TypeKind::Bool:
    return "Bool";
  case TypeKind::Int:
    return "Int";
  case TypeKind::Float:
    return "Float";
  case TypeKind::String:
    return "String";
  case TypeKind::Set:
    return "Set[" + Params[0].str() + "]";
  case TypeKind::Map:
    return "Map[" + Params[0].str() + ", " + Params[1].str() + "]";
  case TypeKind::Queue:
    return "Queue[" + Params[0].str() + "]";
  case TypeKind::Var:
    return "'" + std::to_string(VarId);
  }
  return "?";
}

bool tessla::operator==(const Type &A, const Type &B) {
  if (A.Kind != B.Kind)
    return false;
  if (A.Kind == TypeKind::Var)
    return A.VarId == B.VarId;
  return A.Params == B.Params;
}
