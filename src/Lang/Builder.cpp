//===- Lang/Builder.cpp -----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Builder.h"

#include "tessla/Support/Format.h"

#include <cassert>

using namespace tessla;

StreamId SpecBuilder::addStream(std::string Name, SourceLocation Loc) {
  assert(!Name.empty() && "streams need names; use freshName()");
  StreamId Id = Built.numStreams();
  auto [It, Inserted] = Built.ByName.emplace(Name, Id);
  (void)It;
  assert(Inserted && "duplicate stream name");
  StreamDef D;
  D.Name = std::move(Name);
  D.Loc = Loc;
  Built.Defs.push_back(std::move(D));
  Defined.push_back(false);
  return Id;
}

void SpecBuilder::define(StreamId Id, StreamKind K,
                         std::vector<StreamId> Args) {
  assert(Id < Built.numStreams() && "unknown stream");
  assert(!Defined[Id] && "stream defined twice");
  StreamDef &D = Built.stream(Id);
  D.Kind = K;
  D.Args = std::move(Args);
  Defined[Id] = true;
}

StreamId SpecBuilder::input(std::string Name, Type Ty, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  Built.stream(Id).Kind = StreamKind::Input;
  Built.stream(Id).Ty = std::move(Ty);
  Defined[Id] = true;
  return Id;
}

StreamId SpecBuilder::declare(std::string Name, SourceLocation Loc) {
  return addStream(std::move(Name), Loc);
}

StreamId SpecBuilder::nil(std::string Name, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Nil, {});
  return Id;
}

StreamId SpecBuilder::unit(std::string Name, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Unit, {});
  return Id;
}

StreamId SpecBuilder::constant(std::string Name, ConstantLit Lit,
                               SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Const, {});
  Built.stream(Id).Literal = std::move(Lit);
  return Id;
}

StreamId SpecBuilder::time(std::string Name, StreamId Arg,
                           SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Time, {Arg});
  return Id;
}

StreamId SpecBuilder::lift(std::string Name, BuiltinId Fn,
                           std::vector<StreamId> Args, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  defineLift(Id, Fn, std::move(Args));
  return Id;
}

StreamId SpecBuilder::last(std::string Name, StreamId Value,
                           StreamId Trigger, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Last, {Value, Trigger});
  return Id;
}

StreamId SpecBuilder::delay(std::string Name, StreamId Delays,
                            StreamId Reset, SourceLocation Loc) {
  StreamId Id = addStream(std::move(Name), Loc);
  define(Id, StreamKind::Delay, {Delays, Reset});
  return Id;
}

void SpecBuilder::defineNil(StreamId Id) { define(Id, StreamKind::Nil, {}); }
void SpecBuilder::defineUnit(StreamId Id) {
  define(Id, StreamKind::Unit, {});
}
void SpecBuilder::defineConstant(StreamId Id, ConstantLit Lit) {
  define(Id, StreamKind::Const, {});
  Built.stream(Id).Literal = std::move(Lit);
}
void SpecBuilder::defineTime(StreamId Id, StreamId Arg) {
  define(Id, StreamKind::Time, {Arg});
}
void SpecBuilder::defineLift(StreamId Id, BuiltinId Fn,
                             std::vector<StreamId> Args) {
  define(Id, StreamKind::Lift, std::move(Args));
  Built.stream(Id).Fn = Fn;
}
void SpecBuilder::defineLast(StreamId Id, StreamId Value, StreamId Trigger) {
  define(Id, StreamKind::Last, {Value, Trigger});
}
void SpecBuilder::defineDelay(StreamId Id, StreamId Delays, StreamId Reset) {
  define(Id, StreamKind::Delay, {Delays, Reset});
}

std::string SpecBuilder::freshName() {
  for (;;) {
    std::string Name = "_t" + std::to_string(NextTemp++);
    if (!Built.lookup(Name))
      return Name;
  }
}

StreamId SpecBuilder::canonicalUnit() {
  if (!UnitStream)
    UnitStream = unit(freshName() + "_unit");
  return *UnitStream;
}

Spec SpecBuilder::finish(DiagnosticEngine &Diags) {
  for (StreamId Id = 0; Id != Built.numStreams(); ++Id)
    if (!Defined[Id])
      Diags.error(Built.stream(Id).Loc,
                  formatString("stream '%s' is declared but never defined",
                               Built.stream(Id).Name.c_str()));
  if (!Diags.hasErrors())
    Built.validate(Diags);
  return std::move(Built);
}
