//===- Lang/Spec.cpp --------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Spec.h"

#include "tessla/ADT/GraphAlgos.h"
#include "tessla/Support/Format.h"

using namespace tessla;

std::string ConstantLit::str() const {
  struct Renderer {
    std::string operator()(std::monostate) const { return "()"; }
    std::string operator()(bool B) const { return B ? "true" : "false"; }
    std::string operator()(int64_t I) const { return std::to_string(I); }
    std::string operator()(double D) const {
      std::string S = formatDouble(D);
      // Keep a decimal marker so the literal re-parses as a Float
      // ("2.0", not "2").
      if (S.find_first_not_of("-0123456789") == std::string::npos)
        S += ".0";
      return S;
    }
    std::string operator()(const std::string &S) const {
      return "\"" + escapeString(S) + "\"";
    }
  };
  return std::visit(Renderer{}, V);
}

std::optional<Spec> Spec::fromDefs(std::vector<StreamDef> Defs,
                                   DiagnosticEngine &Diags) {
  Spec S;
  S.Defs = std::move(Defs);
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const std::string &Name = S.Defs[Id].Name;
    if (Name.empty()) {
      Diags.error(formatString("stream #%u has no name", Id));
      return std::nullopt;
    }
    auto [It, Inserted] = S.ByName.emplace(Name, Id);
    (void)It;
    if (!Inserted) {
      Diags.error("duplicate stream name '" + Name + "'");
      return std::nullopt;
    }
  }
  if (!S.validate(Diags))
    return std::nullopt;
  return S;
}

std::optional<StreamId> Spec::lookup(std::string_view Name) const {
  auto It = ByName.find(std::string(Name));
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

std::vector<StreamId> Spec::inputs() const {
  std::vector<StreamId> Out;
  for (StreamId Id = 0; Id != numStreams(); ++Id)
    if (Defs[Id].Kind == StreamKind::Input)
      Out.push_back(Id);
  return Out;
}

std::vector<StreamId> Spec::outputs() const {
  std::vector<StreamId> Out;
  for (StreamId Id = 0; Id != numStreams(); ++Id)
    if (Defs[Id].IsOutput)
      Out.push_back(Id);
  return Out;
}

static unsigned expectedArity(const StreamDef &D) {
  switch (D.Kind) {
  case StreamKind::Input:
  case StreamKind::Nil:
  case StreamKind::Unit:
  case StreamKind::Const:
    return 0;
  case StreamKind::Time:
    return 1;
  case StreamKind::Lift:
    return builtinInfo(D.Fn).Arity;
  case StreamKind::Last:
  case StreamKind::Delay:
    return 2;
  }
  return 0;
}

bool Spec::validate(DiagnosticEngine &Diags) const {
  unsigned Before = Diags.errorCount();
  uint32_t N = numStreams();
  for (StreamId Id = 0; Id != N; ++Id) {
    const StreamDef &D = Defs[Id];
    if (D.Name.empty())
      Diags.error(D.Loc, formatString("stream #%u has no name", Id));
    if (D.Args.size() != expectedArity(D))
      Diags.error(D.Loc,
                  formatString("stream '%s' has %zu arguments, expected %u",
                               D.Name.c_str(), D.Args.size(),
                               expectedArity(D)));
    for (StreamId A : D.Args)
      if (A >= N)
        Diags.error(D.Loc,
                    formatString("stream '%s' references out-of-range id %u",
                                 D.Name.c_str(), A));
    if (D.Kind == StreamKind::Input && !D.Ty.isConcrete())
      Diags.error(D.Loc, formatString(
                             "input stream '%s' needs a concrete type",
                             D.Name.c_str()));
  }
  if (Diags.errorCount() != Before)
    return false;

  // Recursion check: the usage graph without special edges (first argument
  // of last/delay) must be acyclic (§II, §III Def. 2).
  Adjacency Adj(N);
  for (StreamId Id = 0; Id != N; ++Id) {
    const StreamDef &D = Defs[Id];
    for (size_t AI = 0, AE = D.Args.size(); AI != AE; ++AI) {
      bool Special =
          (D.Kind == StreamKind::Last || D.Kind == StreamKind::Delay) &&
          AI == 0;
      if (!Special)
        Adj[D.Args[AI]].push_back(Id);
    }
  }
  std::vector<uint32_t> Cycle = findCycle(Adj);
  if (!Cycle.empty()) {
    std::vector<std::string> Names;
    for (uint32_t Id : Cycle)
      Names.push_back(Defs[Id].Name);
    Diags.error(formatString("invalid recursion (must pass through the "
                             "first argument of last/delay): %s",
                             join(Names, " -> ").c_str()));
    return false;
  }
  return true;
}

std::string Spec::str() const {
  std::string Out;
  for (StreamId Id = 0; Id != numStreams(); ++Id) {
    const StreamDef &D = Defs[Id];
    auto ArgName = [&](unsigned I) { return Defs[D.Args[I]].Name; };
    std::string Rhs;
    switch (D.Kind) {
    case StreamKind::Input:
      Rhs = "<input " + D.Ty.str() + ">";
      break;
    case StreamKind::Nil:
      Rhs = "nil";
      break;
    case StreamKind::Unit:
      Rhs = "unit";
      break;
    case StreamKind::Const:
      Rhs = "const " + D.Literal.str();
      break;
    case StreamKind::Time:
      Rhs = "time(" + ArgName(0) + ")";
      break;
    case StreamKind::Lift: {
      std::vector<std::string> Args;
      for (unsigned I = 0; I != D.Args.size(); ++I)
        Args.push_back(ArgName(I));
      Rhs = std::string(builtinInfo(D.Fn).Name) + "(" + join(Args, ", ") +
            ")";
      break;
    }
    case StreamKind::Last:
      Rhs = "last(" + ArgName(0) + ", " + ArgName(1) + ")";
      break;
    case StreamKind::Delay:
      Rhs = "delay(" + ArgName(0) + ", " + ArgName(1) + ")";
      break;
    }
    Out += (D.IsOutput ? "out " : "    ") + D.Name + " = " + Rhs + "\n";
  }
  return Out;
}
