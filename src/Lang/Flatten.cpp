//===- Lang/Flatten.cpp -----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Flatten.h"

#include "tessla/Lang/Builder.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace tessla;
using namespace tessla::ast;

namespace {

class Lowering {
public:
  Lowering(const Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {}

  std::optional<Spec> run() {
    unsigned Before = Diags.errorCount();

    for (const InputDecl &In : M.Inputs) {
      if (B.lookup(In.Name)) {
        Diags.error(In.Loc, formatString("duplicate stream name '%s'",
                                         In.Name.c_str()));
        continue;
      }
      B.input(In.Name, In.Ty, In.Loc);
    }
    for (const StreamDecl &D : M.Defs) {
      if (B.lookup(D.Name)) {
        Diags.error(D.Loc, formatString("duplicate stream name '%s'",
                                        D.Name.c_str()));
        continue;
      }
      B.declare(D.Name, D.Loc);
    }
    if (Diags.errorCount() != Before)
      return std::nullopt;

    for (const StreamDecl &D : M.Defs)
      lowerDef(D);
    for (const OutputDecl &Out : M.Outputs) {
      auto Id = B.lookup(Out.Name);
      if (!Id) {
        Diags.error(Out.Loc, formatString("unknown output stream '%s'",
                                          Out.Name.c_str()));
        continue;
      }
      B.markOutput(*Id);
    }
    if (Diags.errorCount() != Before)
      return std::nullopt;

    Spec S = B.finish(Diags);
    if (Diags.errorCount() != Before)
      return std::nullopt;
    return S;
  }

private:
  const Module &M;
  DiagnosticEngine &Diags;
  SpecBuilder B;
  std::unordered_map<std::string, StreamId> LiteralCache;
  // (literal stream, trigger stream) -> held-constant stream.
  std::map<std::pair<StreamId, StreamId>, StreamId> HeldCache;

  /// Defines the already-declared stream \p Target as \p E.
  void lowerDef(const StreamDecl &D) {
    StreamId Target = *B.lookup(D.Name);
    const Expr &E = *D.Body;
    switch (E.Kind) {
    case ExprKind::Ident: {
      auto Ref = resolveIdent(E);
      if (!Ref)
        return;
      // Alias: merge(b, b) is the identity stream transformation.
      B.defineLift(Target, BuiltinId::Merge, {*Ref, *Ref});
      return;
    }
    case ExprKind::Literal:
      B.defineConstant(Target, E.Lit);
      return;
    case ExprKind::UnitVal:
      B.defineUnit(Target);
      return;
    case ExprKind::NilVal:
      B.defineNil(Target);
      return;
    case ExprKind::TimeOp: {
      auto A = lowerExpr(*E.Args[0]);
      if (A)
        B.defineTime(Target, *A);
      return;
    }
    case ExprKind::LastOp:
    case ExprKind::DelayOp: {
      auto A0 = lowerExpr(*E.Args[0]);
      auto A1 = lowerExpr(*E.Args[1]);
      if (!A0 || !A1)
        return;
      if (E.Kind == ExprKind::LastOp) {
        B.defineLast(Target, *A0, *A1);
      } else {
        if (E.Args[0]->Kind == ExprKind::Literal)
          A0 = heldConstant(*A0, delayTrigger(*A1, Target, E.Loc));
        B.defineDelay(Target, *A0, *A1);
      }
      return;
    }
    case ExprKind::Call: {
      if (E.Callee == "hold") {
        auto Args = lowerHoldArgs(E);
        if (Args)
          B.defineLift(Target, BuiltinId::Merge, {Args->first,
                                                  Args->second});
        return;
      }
      auto Parts = lowerCallParts(E);
      if (Parts)
        B.defineLift(Target, Parts->first, std::move(Parts->second));
      return;
    }
    }
  }

  /// hold(x, t) — the signal-holding idiom merge(x, last(x, t)): x's
  /// value, refreshed at t's events. Returns the merge's two operands.
  std::optional<std::pair<StreamId, StreamId>>
  lowerHoldArgs(const Expr &E) {
    if (E.Args.size() != 2) {
      Diags.error(E.Loc, formatString("'hold' takes 2 arguments, got %zu",
                                      E.Args.size()));
      return std::nullopt;
    }
    auto X = lowerExpr(*E.Args[0]);
    auto T = lowerExpr(*E.Args[1]);
    if (!X || !T)
      return std::nullopt;
    StreamId LastX = B.last(B.freshName(), *X, *T, E.Loc);
    return std::make_pair(*X, LastX);
  }

  std::optional<StreamId> resolveIdent(const Expr &E) {
    auto Id = B.lookup(E.Callee);
    if (!Id)
      Diags.error(E.Loc,
                  formatString("unknown stream '%s'", E.Callee.c_str()));
    return Id;
  }

  /// Turns the constant stream \p Lit into a *held* constant with events
  /// at \p Trigger's timestamps (plus 0): merge(c, last(c, trigger)).
  /// This is the signal-semantics desugaring surface TeSSLa applies when
  /// mixing constants into lifted operators — under pure event semantics
  /// the constant would only tick at timestamp 0 and an All-lift would
  /// never fire.
  StreamId heldConstant(StreamId Lit, StreamId Trigger) {
    auto [It, Inserted] =
        HeldCache.try_emplace({Lit, Trigger}, StreamId(0));
    if (!Inserted)
      return It->second;
    StreamId LastC = B.last(B.freshName(), Lit, Trigger);
    StreamId Held =
        B.lift(B.freshName(), BuiltinId::Merge, {Lit, LastC});
    It->second = Held;
    return Held;
  }

  /// Trigger for a literal delay amount: the timer re-arms on any reset,
  /// i.e. on events of the reset stream *or* the delay stream itself
  /// (§III-B) — the latter makes `delay(10, unit)` a periodic clock.
  StreamId delayTrigger(StreamId Reset, StreamId DelayStream,
                        SourceLocation Loc) {
    return makeTrigger({Reset, DelayStream}, Loc);
  }

  /// Builds a trigger stream whose events cover the union of \p Ids'
  /// events. Mixed types are normalized through time().
  StreamId makeTrigger(const std::vector<StreamId> &Ids,
                       SourceLocation Loc) {
    assert(!Ids.empty() && "trigger needs at least one source");
    if (Ids.size() == 1)
      return Ids.front();
    StreamId Acc = B.time(B.freshName(), Ids[0], Loc);
    for (size_t I = 1; I != Ids.size(); ++I) {
      StreamId Next = B.time(B.freshName(), Ids[I], Loc);
      Acc = B.lift(B.freshName(), BuiltinId::Merge, {Acc, Next}, Loc);
    }
    return Acc;
  }

  /// Resolves a call's builtin and lowers its arguments, applying the
  /// nullary aggregate-constructor desugaring and the held-constant
  /// desugaring for literal operands.
  std::optional<std::pair<BuiltinId, std::vector<StreamId>>>
  lowerCallParts(const Expr &E) {
    auto Fn = builtinByName(E.Callee);
    if (!Fn) {
      Diags.error(E.Loc,
                  formatString("unknown function '%s'", E.Callee.c_str()));
      return std::nullopt;
    }
    const BuiltinInfo &Info = builtinInfo(*Fn);
    std::vector<StreamId> Args;
    std::vector<bool> IsLiteral;
    bool ImplicitUnit =
        (*Fn == BuiltinId::SetEmpty || *Fn == BuiltinId::MapEmpty ||
         *Fn == BuiltinId::QueueEmpty) &&
        E.Args.empty();
    if (ImplicitUnit) {
      Args.push_back(B.canonicalUnit());
      IsLiteral.push_back(false);
    }
    for (const ExprPtr &A : E.Args) {
      auto Id = lowerExpr(*A);
      if (!Id)
        return std::nullopt;
      Args.push_back(*Id);
      IsLiteral.push_back(A->Kind == ExprKind::Literal);
    }
    if (Args.size() != Info.Arity) {
      Diags.error(E.Loc, formatString("'%s' takes %u argument(s), got %zu",
                                      E.Callee.c_str(), Info.Arity,
                                      Args.size()));
      return std::nullopt;
    }
    // Hold literal operands at the other operands' event times. merge is
    // exempt: default(x, lit) deliberately means "lit at timestamp 0".
    if (*Fn != BuiltinId::Merge) {
      std::vector<StreamId> NonLiterals;
      for (size_t I = 0; I != Args.size(); ++I)
        if (!IsLiteral[I])
          NonLiterals.push_back(Args[I]);
      bool AnyLiteral =
          std::find(IsLiteral.begin(), IsLiteral.end(), true) !=
          IsLiteral.end();
      if (AnyLiteral && !NonLiterals.empty()) {
        StreamId Trigger = makeTrigger(NonLiterals, E.Loc);
        for (size_t I = 0; I != Args.size(); ++I)
          if (IsLiteral[I])
            Args[I] = heldConstant(Args[I], Trigger);
      }
    }
    return std::make_pair(*Fn, std::move(Args));
  }

  /// Lowers a nested expression to a stream id, materializing temporaries.
  std::optional<StreamId> lowerExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Ident:
      return resolveIdent(E);
    case ExprKind::Literal: {
      // The variant index disambiguates literals with equal rendering
      // (int 30 vs float 30.0).
      std::string Key =
          std::to_string(E.Lit.V.index()) + ":" + E.Lit.str();
      auto It = LiteralCache.find(Key);
      if (It != LiteralCache.end())
        return It->second;
      StreamId Id = B.constant(B.freshName(), E.Lit, E.Loc);
      LiteralCache.emplace(std::move(Key), Id);
      return Id;
    }
    case ExprKind::UnitVal:
      return B.canonicalUnit();
    case ExprKind::NilVal:
      return B.nil(B.freshName(), E.Loc);
    case ExprKind::TimeOp: {
      auto A = lowerExpr(*E.Args[0]);
      if (!A)
        return std::nullopt;
      return B.time(B.freshName(), *A, E.Loc);
    }
    case ExprKind::LastOp:
    case ExprKind::DelayOp: {
      auto A0 = lowerExpr(*E.Args[0]);
      auto A1 = lowerExpr(*E.Args[1]);
      if (!A0 || !A1)
        return std::nullopt;
      if (E.Kind == ExprKind::LastOp)
        return B.last(B.freshName(), *A0, *A1, E.Loc);
      if (E.Args[0]->Kind != ExprKind::Literal)
        return B.delay(B.freshName(), *A0, *A1, E.Loc);
      StreamId Fresh = B.declare(B.freshName(), E.Loc);
      StreamId Held = heldConstant(*A0, delayTrigger(*A1, Fresh, E.Loc));
      B.defineDelay(Fresh, Held, *A1);
      return Fresh;
    }
    case ExprKind::Call: {
      if (E.Callee == "hold") {
        auto Args = lowerHoldArgs(E);
        if (!Args)
          return std::nullopt;
        return B.lift(B.freshName(), BuiltinId::Merge,
                      {Args->first, Args->second}, E.Loc);
      }
      auto Parts = lowerCallParts(E);
      if (!Parts)
        return std::nullopt;
      return B.lift(B.freshName(), Parts->first, std::move(Parts->second),
                    E.Loc);
    }
    }
    return std::nullopt;
  }
};

} // namespace

std::optional<Spec> tessla::lowerModule(const ast::Module &M,
                                        DiagnosticEngine &Diags) {
  return Lowering(M, Diags).run();
}
