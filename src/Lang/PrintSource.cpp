//===- Lang/PrintSource.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/PrintSource.h"

#include "tessla/Support/Format.h"

using namespace tessla;

std::string tessla::printSpecSource(const Spec &S) {
  std::string Out;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    auto Arg = [&](unsigned I) { return S.stream(D.Args[I]).Name; };
    switch (D.Kind) {
    case StreamKind::Input:
      Out += "in " + D.Name + ": " + D.Ty.str() + "\n";
      continue;
    case StreamKind::Nil:
      Out += "def " + D.Name + " := nil\n";
      continue;
    case StreamKind::Unit:
      Out += "def " + D.Name + " := unit\n";
      continue;
    case StreamKind::Const:
      // Unit constants canonicalize to the unit stream (see header).
      if (std::holds_alternative<std::monostate>(D.Literal.V))
        Out += "def " + D.Name + " := unit\n";
      else
        Out += "def " + D.Name + " := " + D.Literal.str() + "\n";
      continue;
    case StreamKind::Time:
      Out += "def " + D.Name + " := time(" + Arg(0) + ")\n";
      continue;
    case StreamKind::Last:
      Out += "def " + D.Name + " := last(" + Arg(0) + ", " + Arg(1) +
             ")\n";
      continue;
    case StreamKind::Delay:
      Out += "def " + D.Name + " := delay(" + Arg(0) + ", " + Arg(1) +
             ")\n";
      continue;
    case StreamKind::Lift: {
      std::vector<std::string> Args;
      for (unsigned I = 0; I != D.Args.size(); ++I)
        Args.push_back(Arg(I));
      Out += "def " + D.Name + " := " +
             std::string(builtinInfo(D.Fn).Name) + "(" +
             join(Args, ", ") + ")\n";
      continue;
    }
    }
  }
  for (StreamId Id : S.outputs())
    Out += "out " + S.stream(Id).Name + "\n";
  return Out;
}
