//===- Lang/Lexer.cpp -------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/Lexer.h"

#include "tessla/Support/Format.h"

#include <cctype>
#include <unordered_map>

using namespace tessla;

namespace {

const std::unordered_map<std::string_view, TokenKind> Keywords = {
    {"in", TokenKind::KwIn},         {"def", TokenKind::KwDef},
    {"out", TokenKind::KwOut},       {"if", TokenKind::KwIf},
    {"then", TokenKind::KwThen},     {"else", TokenKind::KwElse},
    {"true", TokenKind::KwTrue},     {"false", TokenKind::KwFalse},
    {"unit", TokenKind::KwUnit},     {"nil", TokenKind::KwNil},
    {"time", TokenKind::KwTime},     {"last", TokenKind::KwLast},
    {"delay", TokenKind::KwDelay},   {"default", TokenKind::KwDefault},
};

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      skipTrivia();
      Token T = next();
      bool IsEof = T.is(TokenKind::Eof);
      Tokens.push_back(std::move(T));
      if (IsEof)
        return Tokens;
    }
  }

private:
  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  SourceLocation here() const { return SourceLocation(Line, Col); }

  void skipTrivia() {
    for (;;) {
      if (atEnd())
        return;
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      // Comments: "--" or "#" to end of line.
      if (C == '#' || (C == '-' && peek(1) == '-')) {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind K, SourceLocation Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    if (atEnd())
      return make(TokenKind::Eof, here());
    SourceLocation Loc = here();
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identifier(C, Loc);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number(C, Loc);

    switch (C) {
    case '(': return make(TokenKind::LParen, Loc);
    case ')': return make(TokenKind::RParen, Loc);
    case '[': return make(TokenKind::LBracket, Loc);
    case ']': return make(TokenKind::RBracket, Loc);
    case ',': return make(TokenKind::Comma, Loc);
    case '+': return make(TokenKind::Plus, Loc);
    case '-': return make(TokenKind::Minus, Loc);
    case '*': return make(TokenKind::Star, Loc);
    case '/': return make(TokenKind::Slash, Loc);
    case '%': return make(TokenKind::Percent, Loc);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokenKind::Define, Loc);
      }
      return make(TokenKind::Colon, Loc);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokenKind::EqEq, Loc);
      }
      Diags.error(Loc, "unexpected '='; definitions use ':='");
      return make(TokenKind::Define, Loc);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokenKind::NotEq, Loc);
      }
      return make(TokenKind::Bang, Loc);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokenKind::LtEq, Loc);
      }
      return make(TokenKind::Lt, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokenKind::GtEq, Loc);
      }
      return make(TokenKind::Gt, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokenKind::AndAnd, Loc);
      }
      Diags.error(Loc, "expected '&&'");
      return make(TokenKind::AndAnd, Loc);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokenKind::OrOr, Loc);
      }
      Diags.error(Loc, "expected '||'");
      return make(TokenKind::OrOr, Loc);
    case '"':
      return stringLiteral(Loc);
    default:
      Diags.error(Loc, formatString("unexpected character '%c'", C));
      return next();
    }
  }

  Token identifier(char First, SourceLocation Loc) {
    std::string Text(1, First);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return make(It->second, Loc);
    Token T = make(TokenKind::Identifier, Loc);
    T.Text = std::move(Text);
    return T;
  }

  Token number(char First, SourceLocation Loc) {
    std::string Text(1, First);
    bool IsFloat = false;
    while (!atEnd()) {
      char C = peek();
      if (std::isdigit(static_cast<unsigned char>(C))) {
        Text += advance();
        continue;
      }
      // A '.' only continues the number when a digit follows (so "1.foo"
      // still lexes as "1" "." ...; we have no '.' token, so report).
      if (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) &&
          !IsFloat) {
        IsFloat = true;
        Text += advance();
        continue;
      }
      if ((C == 'e' || C == 'E') &&
          (std::isdigit(static_cast<unsigned char>(peek(1))) ||
           ((peek(1) == '+' || peek(1) == '-') &&
            std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        IsFloat = true;
        Text += advance(); // e
        if (peek() == '+' || peek() == '-')
          Text += advance();
        continue;
      }
      break;
    }
    if (IsFloat) {
      Token T = make(TokenKind::FloatLiteral, Loc);
      if (!parseDouble(Text, T.FloatValue))
        Diags.error(Loc, formatString("invalid float literal '%s'",
                                      Text.c_str()));
      return T;
    }
    Token T = make(TokenKind::IntLiteral, Loc);
    if (!parseInt64(Text, T.IntValue))
      Diags.error(Loc,
                  formatString("invalid integer literal '%s'", Text.c_str()));
    return T;
  }

  Token stringLiteral(SourceLocation Loc) {
    std::string Text;
    for (;;) {
      if (atEnd() || peek() == '\n') {
        Diags.error(Loc, "unterminated string literal");
        break;
      }
      char C = advance();
      if (C == '"')
        break;
      if (C == '\\') {
        char E = atEnd() ? '\0' : advance();
        switch (E) {
        case 'n': Text += '\n'; break;
        case 't': Text += '\t'; break;
        case 'r': Text += '\r'; break;
        case '"': Text += '"'; break;
        case '\\': Text += '\\'; break;
        default:
          Diags.error(here(), formatString("unknown escape '\\%c'", E));
        }
        continue;
      }
      Text += C;
    }
    Token T = make(TokenKind::StringLiteral, Loc);
    T.Text = std::move(Text);
    return T;
  }
};

} // namespace

std::vector<Token> tessla::tokenize(std::string_view Source,
                                    DiagnosticEngine &Diags) {
  return Lexer(Source, Diags).run();
}

std::string_view tessla::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "float literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::KwIn: return "'in'";
  case TokenKind::KwDef: return "'def'";
  case TokenKind::KwOut: return "'out'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwThen: return "'then'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwUnit: return "'unit'";
  case TokenKind::KwNil: return "'nil'";
  case TokenKind::KwTime: return "'time'";
  case TokenKind::KwLast: return "'last'";
  case TokenKind::KwDelay: return "'delay'";
  case TokenKind::KwDefault: return "'default'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Colon: return "':'";
  case TokenKind::Define: return "':='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::Lt: return "'<'";
  case TokenKind::LtEq: return "'<='";
  case TokenKind::Gt: return "'>'";
  case TokenKind::GtEq: return "'>='";
  case TokenKind::AndAnd: return "'&&'";
  case TokenKind::OrOr: return "'||'";
  case TokenKind::Bang: return "'!'";
  }
  return "?";
}
