//===- Lang/TypeCheck.cpp ---------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Lang/TypeCheck.h"

#include "tessla/Lang/TypeUnifier.h"
#include "tessla/Support/Format.h"

using namespace tessla;

static Type literalType(const ConstantLit &Lit) {
  struct Visitor {
    Type operator()(std::monostate) const { return Type::unit(); }
    Type operator()(bool) const { return Type::boolean(); }
    Type operator()(int64_t) const { return Type::integer(); }
    Type operator()(double) const { return Type::floating(); }
    Type operator()(const std::string &) const { return Type::string(); }
  };
  return std::visit(Visitor{}, Lit.V);
}

/// Rejects aggregates whose parameters are themselves aggregates (see file
/// header of TypeCheck.h).
static bool checkNoNestedAggregates(const Type &T) {
  if (T.isComplex()) {
    for (const Type &P : T.params())
      if (P.isComplex())
        return false;
  }
  for (const Type &P : T.params())
    if (!checkNoNestedAggregates(P))
      return false;
  return true;
}

bool tessla::typecheck(Spec &S, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  TypeUnifier U;
  uint32_t N = S.numStreams();

  // One variable per stream. Stream variables occupy ids >= 2e6 to stay
  // clear of both signature-local ids (0..1) and TypeUnifier fresh vars.
  auto StreamVar = [](StreamId Id) { return Type::var(2000000 + Id); };

  for (StreamId Id = 0; Id != N; ++Id) {
    const StreamDef &D = S.stream(Id);
    Type V = StreamVar(Id);
    auto Mismatch = [&](const std::string &What) {
      Diags.error(D.Loc, formatString("type mismatch in '%s': %s",
                                      D.Name.c_str(), What.c_str()));
    };
    switch (D.Kind) {
    case StreamKind::Input:
      if (!U.unify(V, D.Ty))
        Mismatch("input type conflicts with use");
      break;
    case StreamKind::Nil:
      break; // any type; must become concrete through uses
    case StreamKind::Unit:
      if (!U.unify(V, Type::unit()))
        Mismatch("unit stream used at non-Unit type");
      break;
    case StreamKind::Const:
      if (!U.unify(V, literalType(D.Literal)))
        Mismatch("literal type conflicts with use");
      break;
    case StreamKind::Time:
      if (!U.unify(V, Type::integer()))
        Mismatch("time(...) must have type Int");
      break;
    case StreamKind::Lift: {
      const BuiltinInfo &Info = builtinInfo(D.Fn);
      std::unordered_map<uint32_t, Type> Renaming;
      for (unsigned I = 0; I != Info.Arity; ++I) {
        Type Param = U.instantiate(Info.ParamTypes[I], Renaming);
        if (!U.unify(StreamVar(D.Args[I]), Param))
          Mismatch(formatString(
              "argument %u of %s does not fit the expected type %s", I + 1,
              std::string(Info.Name).c_str(),
              U.apply(Param).str().c_str()));
      }
      Type Result = U.instantiate(Info.ResultType, Renaming);
      if (!U.unify(V, Result))
        Mismatch(formatString("result of %s does not fit its uses",
                              std::string(Info.Name).c_str()));
      break;
    }
    case StreamKind::Last:
      if (!U.unify(V, StreamVar(D.Args[0])))
        Mismatch("last(v, r) must have v's type");
      break;
    case StreamKind::Delay:
      if (!U.unify(StreamVar(D.Args[0]), Type::integer()))
        Mismatch("delay amounts must have type Int");
      if (!U.unify(V, Type::unit()))
        Mismatch("delay(...) must have type Unit");
      break;
    }
  }
  if (Diags.errorCount() != Before)
    return false;

  // Resolve and write back.
  for (StreamId Id = 0; Id != N; ++Id) {
    StreamDef &D = S.stream(Id);
    Type Resolved = U.apply(StreamVar(Id));
    if (!Resolved.isConcrete()) {
      Diags.error(D.Loc,
                  formatString("cannot infer a concrete type for stream "
                               "'%s' (got %s); add uses or annotations",
                               D.Name.c_str(), Resolved.str().c_str()));
      continue;
    }
    if (!checkNoNestedAggregates(Resolved)) {
      Diags.error(D.Loc,
                  formatString("stream '%s' has nested aggregate type %s; "
                               "aggregate elements must be scalar",
                               D.Name.c_str(), Resolved.str().c_str()));
      continue;
    }
    D.Ty = Resolved;
  }
  return Diags.errorCount() == Before;
}
