//===- Support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Support/Diagnostics.h"

using namespace tessla;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::str() const {
  std::string Out = severityName(Severity);
  if (Loc.isValid()) {
    Out += " ";
    Out += Loc.str();
  }
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
