//===- Support/Format.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Support/Format.h"

#include <cassert>
#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tessla;

std::string tessla::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "invalid format string");
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

// join/formatDouble/escapeString moved to Format.h as inline definitions:
// they back the canonical value rendering in CodeGen/RuntimeSupport.h,
// which standalone generated monitors (and the native tier's shared
// objects) compile without linking Format.cpp.

bool tessla::parseInt64(std::string_view S, int64_t &Out) {
  if (S.empty())
    return false;
  const char *Begin = S.data(), *End = S.data() + S.size();
  auto [Ptr, Ec] = std::from_chars(Begin, End, Out);
  return Ec == std::errc() && Ptr == End;
}

bool tessla::parseDouble(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  // std::from_chars for double is available in libstdc++ 11+.
  std::string Buf(S);
  char *EndPtr = nullptr;
  errno = 0;
  Out = std::strtod(Buf.c_str(), &EndPtr);
  return errno == 0 && EndPtr == Buf.c_str() + Buf.size();
}
