//===- Eval/Workloads.cpp ---------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Eval/Workloads.h"

#include "tessla/Lang/Parser.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace tessla;

Spec workloads::buildSpec(std::string_view Source) {
  DiagnosticEngine Diags;
  auto S = parseSpec(Source, Diags);
  if (!S) {
    std::fprintf(stderr, "internal workload spec failed to build:\n%s",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*S);
}

Spec workloads::figure1() {
  return buildSpec(R"(
    in i: Int
    def m  := merge(y, setEmpty())
    def yl := last(m, i)
    def y  := setAdd(yl, i)
    def s  := setContains(yl, i)
    out s
  )");
}

Spec workloads::figure4Upper() {
  return buildSpec(R"(
    in i1: Int
    in i2: Int
    def m  := merge(y, setEmpty())
    def yl := last(m, i1)
    def y  := setAdd(yl, i1)
    def yr := last(m, i2)
    def s  := setContains(yr, i2)
    out s
  )");
}

Spec workloads::figure4Lower() {
  return buildSpec(R"(
    in i1: Int
    in i2: Int
    def m  := merge(y, setEmpty())
    def yl := last(m, i1)
    def y  := setAdd(yl, i1)
    def yr := last(m, i2)
    def s  := setAdd(yr, i2)
    out s
  )");
}

Spec workloads::seenSet() {
  return buildSpec(R"(
    in x: Int
    def prev := last(merge(y, setEmpty()), x)
    def seen := setContains(prev, x)
    def y    := setToggle(prev, x)
    out seen
  )");
}

Spec workloads::mapWindow(int64_t N) {
  std::string NS = std::to_string(N);
  return buildSpec(R"(
    in x: Int
    def c    := merge(last(c, x) + 1, 0)
    def prev := last(merge(m, mapEmpty()), x)
    def m    := mapPut(prev, c % )" + NS + R"(, x)
    def nth  := mapGetOrElse(prev, c % )" + NS + R"(, -1)
    out nth
  )");
}

Spec workloads::queueWindow(int64_t N) {
  std::string NS = std::to_string(N);
  return buildSpec(R"(
    in x: Int
    def qpre  := last(merge(q, queueEmpty()), x)
    def qenq  := queueEnq(qpre, x)
    def front := queueFront(filter(qenq, queueSize(qenq) > )" + NS + R"())
    def q     := queueTrim(qenq, )" + NS + R"()
    out front
  )");
}

Spec workloads::dbAccessConstraint() {
  return buildSpec(R"(
    in ins: Int
    in del: Int
    in acc: Int
    def anyOp := merge(merge(ins, del), acc)
    def prev  := last(merge(live, setEmpty()), anyOp)
    def live  := setUpdate(prev, ins, del)
    def violation := filter(acc, !setContains(prev, acc))
    out violation
  )");
}

Spec workloads::dbTimeConstraint() {
  return buildSpec(R"(
    in db2: Int
    in db3: Int
    def anyOp := merge(db2, db3)
    def prev  := last(merge(times, mapEmpty()), anyOp)
    def times := mapPut(prev, db2, time(db2))
    def age   := time(db3) - mapGetOrElse(prev, db3, -1000000)
    def violation := filter(db3, age > 60)
    out violation
  )");
}

Spec workloads::peakDetection(int64_t W) {
  std::string WS = std::to_string(W);
  return buildSpec(R"(
    in p: Float
    def qprev := last(merge(q, queueEmpty()), p)
    def qenq  := queueEnq(qprev, p)
    def full  := queueSize(qenq) > )" + WS + R"(
    def dropped := queueFront(filter(qenq, full))
    def q     := queueTrim(qenq, )" + WS + R"()
    def dz    := merge(dropped, 0.0 * p)
    def sprev := last(s, p)
    def s     := merge(sprev + p - dz, 0.0)
    def mean  := s / )" + WS + R"(.0
    def dev   := abs(dropped - mean)
    def peak  := filter(dropped, dev > mean * 0.4)
    out peak
  )");
}

Spec workloads::spectrumCalculation() {
  return buildSpec(R"(
    in p: Float
    def bucket := toInt(p / 10.0)
    def prev   := last(merge(hist, mapEmpty()), p)
    def hist   := mapPut(prev, bucket, mapGetOrElse(prev, bucket, 0) + 1)
    def above  := merge(last(above, p) + (if p > 100.0 then 1 else 0), 0)
    out above
  )");
}
