//===- Analysis/Statistics.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Statistics.h"

#include "tessla/Support/Format.h"

#include <set>

using namespace tessla;

AnalysisStatistics tessla::collectStatistics(AnalysisResult &Analysis) {
  AnalysisStatistics Stats;
  const Spec &S = Analysis.spec();
  const UsageGraph &G = Analysis.graph();
  const MutabilityResult &Mut = Analysis.mutability();

  Stats.Streams = S.numStreams();
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Ty.isComplex())
      ++Stats.AggregateStreams;

  Stats.Edges = static_cast<uint32_t>(G.edges().size());
  for (const UsageEdge &E : G.edges()) {
    switch (E.Kind) {
    case EdgeKind::Write:
      ++Stats.WriteEdges;
      break;
    case EdgeKind::Read:
      ++Stats.ReadEdges;
      break;
    case EdgeKind::Pass:
      ++Stats.PassEdges;
      break;
    case EdgeKind::Last:
      ++Stats.LastEdges;
      break;
    case EdgeKind::Plain:
      break;
    }
    if (E.Special)
      ++Stats.SpecialEdges;
  }

  std::set<uint32_t> Families;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Ty.isComplex())
      Families.insert(Mut.FamilyRep[Id]);
  Stats.AggregateFamilies = static_cast<uint32_t>(Families.size());

  Stats.MutableStreams = Mut.mutableCount();
  Stats.PersistentFamilies =
      static_cast<uint32_t>(Mut.PersistentFamilies.size());
  Stats.ReadBeforeWriteConstraints =
      static_cast<uint32_t>(Mut.ReadBeforeWrite.size());
  Stats.ImplicationFastPath = Analysis.triggers().implicationFastPathHits();
  Stats.ImplicationSat = Analysis.triggers().implicationSatQueries();
  return Stats;
}

std::string AnalysisStatistics::str() const {
  std::string Out;
  Out += formatString("streams: %u (aggregates: %u)\n", Streams,
                      AggregateStreams);
  Out += formatString(
      "edges: %u (W: %u, R: %u, P: %u, L: %u, special: %u)\n", Edges,
      WriteEdges, ReadEdges, PassEdges, LastEdges, SpecialEdges);
  Out += formatString("aggregate families: %u (forced persistent: %u)\n",
                      AggregateFamilies, PersistentFamilies);
  Out += formatString("mutable streams: %u\n", MutableStreams);
  Out += formatString("read-before-write constraints: %u\n",
                      ReadBeforeWriteConstraints);
  Out += formatString(
      "implication checks: %llu fast-path, %llu via SAT\n",
      static_cast<unsigned long long>(ImplicationFastPath),
      static_cast<unsigned long long>(ImplicationSat));
  return Out;
}

std::string PassStatistics::str() const {
  std::string Out = formatString("%s: steps %u -> %u", Pass.c_str(),
                                 StepsBefore, StepsAfter);
  if (Folded)
    Out += formatString(" (folded %u)", Folded);
  if (Fused)
    Out += formatString(" (fused %u)", Fused);
  if (Eliminated)
    Out += formatString(" (eliminated %u)", Eliminated);
  if (ValueSlotsBefore != ValueSlotsAfter ||
      LastSlotsBefore != LastSlotsAfter ||
      DelaySlotsBefore != DelaySlotsAfter)
    Out += formatString(" slots value=%u->%u last=%u->%u delay=%u->%u",
                        ValueSlotsBefore, ValueSlotsAfter, LastSlotsBefore,
                        LastSlotsAfter, DelaySlotsBefore, DelaySlotsAfter);
  return Out;
}

uint32_t OptStatistics::totalFolded() const {
  uint32_t N = 0;
  for (const PassStatistics &P : Passes)
    N += P.Folded;
  return N;
}

uint32_t OptStatistics::totalFused() const {
  uint32_t N = 0;
  for (const PassStatistics &P : Passes)
    N += P.Fused;
  return N;
}

uint32_t OptStatistics::totalEliminated() const {
  uint32_t N = 0;
  for (const PassStatistics &P : Passes)
    N += P.Eliminated;
  return N;
}

std::string OptStatistics::str() const {
  std::string Out;
  for (const PassStatistics &P : Passes)
    Out += P.str() + "\n";
  if (!Passes.empty()) {
    const PassStatistics &First = Passes.front();
    const PassStatistics &Last = Passes.back();
    Out += formatString(
        "total: steps %u -> %u, slots value=%u->%u last=%u->%u "
        "delay=%u->%u\n",
        First.StepsBefore, Last.StepsAfter, First.ValueSlotsBefore,
        Last.ValueSlotsAfter, First.LastSlotsBefore, Last.LastSlotsAfter,
        First.DelaySlotsBefore, Last.DelaySlotsAfter);
  }
  return Out;
}
