//===- Analysis/Statistics.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Statistics.h"

#include "tessla/Support/Format.h"

#include <set>

using namespace tessla;

AnalysisStatistics tessla::collectStatistics(AnalysisResult &Analysis) {
  AnalysisStatistics Stats;
  const Spec &S = Analysis.spec();
  const UsageGraph &G = Analysis.graph();
  const MutabilityResult &Mut = Analysis.mutability();

  Stats.Streams = S.numStreams();
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Ty.isComplex())
      ++Stats.AggregateStreams;

  Stats.Edges = static_cast<uint32_t>(G.edges().size());
  for (const UsageEdge &E : G.edges()) {
    switch (E.Kind) {
    case EdgeKind::Write:
      ++Stats.WriteEdges;
      break;
    case EdgeKind::Read:
      ++Stats.ReadEdges;
      break;
    case EdgeKind::Pass:
      ++Stats.PassEdges;
      break;
    case EdgeKind::Last:
      ++Stats.LastEdges;
      break;
    case EdgeKind::Plain:
      break;
    }
    if (E.Special)
      ++Stats.SpecialEdges;
  }

  std::set<uint32_t> Families;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Ty.isComplex())
      Families.insert(Mut.FamilyRep[Id]);
  Stats.AggregateFamilies = static_cast<uint32_t>(Families.size());

  Stats.MutableStreams = Mut.mutableCount();
  Stats.PersistentFamilies =
      static_cast<uint32_t>(Mut.PersistentFamilies.size());
  Stats.ReadBeforeWriteConstraints =
      static_cast<uint32_t>(Mut.ReadBeforeWrite.size());
  Stats.ImplicationFastPath = Analysis.triggers().implicationFastPathHits();
  Stats.ImplicationSat = Analysis.triggers().implicationSatQueries();
  return Stats;
}

std::string AnalysisStatistics::str() const {
  std::string Out;
  Out += formatString("streams: %u (aggregates: %u)\n", Streams,
                      AggregateStreams);
  Out += formatString(
      "edges: %u (W: %u, R: %u, P: %u, L: %u, special: %u)\n", Edges,
      WriteEdges, ReadEdges, PassEdges, LastEdges, SpecialEdges);
  Out += formatString("aggregate families: %u (forced persistent: %u)\n",
                      AggregateFamilies, PersistentFamilies);
  Out += formatString("mutable streams: %u\n", MutableStreams);
  Out += formatString("read-before-write constraints: %u\n",
                      ReadBeforeWriteConstraints);
  Out += formatString(
      "implication checks: %llu fast-path, %llu via SAT\n",
      static_cast<unsigned long long>(ImplicationFastPath),
      static_cast<unsigned long long>(ImplicationSat));
  return Out;
}
