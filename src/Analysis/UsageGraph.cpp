//===- Analysis/UsageGraph.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/UsageGraph.h"

#include <algorithm>
#include <set>

using namespace tessla;

std::string_view tessla::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Plain:
    return "-";
  case EdgeKind::Write:
    return "W";
  case EdgeKind::Read:
    return "R";
  case EdgeKind::Last:
    return "L";
  case EdgeKind::Pass:
    return "P";
  }
  return "?";
}

/// Maps a builtin argument access class to an edge kind (only consulted
/// for aggregate-typed operands).
static EdgeKind accessToKind(ArgAccess A) {
  switch (A) {
  case ArgAccess::None:
    return EdgeKind::Plain;
  case ArgAccess::Read:
    return EdgeKind::Read;
  case ArgAccess::Write:
    return EdgeKind::Write;
  case ArgAccess::Pass:
    return EdgeKind::Pass;
  }
  return EdgeKind::Plain;
}

UsageGraph::UsageGraph(const Spec &Spec_) : S(Spec_) {
  uint32_t N = S.numStreams();
  Out.resize(N);
  In.resize(N);
  NonSpecial.resize(N);
  PassLast.resize(N);
  PassLastRev.resize(N);

  // Deduplicate parallel edges with identical classification (they arise
  // from e.g. merge(b, b) aliases and carry no extra information).
  std::set<std::tuple<StreamId, StreamId, EdgeKind, bool>> Seen;
  auto addEdge = [&](StreamId From, StreamId To, EdgeKind Kind,
                     bool Special) {
    if (!Seen.insert({From, To, Kind, Special}).second)
      return;
    uint32_t Index = static_cast<uint32_t>(Edges.size());
    Edges.push_back({From, To, Kind, Special});
    Out[From].push_back(Index);
    In[To].push_back(Index);
    if (!Special)
      NonSpecial[From].push_back(To);
    if (Kind == EdgeKind::Pass || Kind == EdgeKind::Last) {
      PassLast[From].push_back(To);
      PassLastRev[To].push_back(From);
    }
  };

  for (StreamId V = 0; V != N; ++V) {
    const StreamDef &D = S.stream(V);
    switch (D.Kind) {
    case StreamKind::Input:
    case StreamKind::Nil:
    case StreamKind::Unit:
    case StreamKind::Const:
      break;
    case StreamKind::Time:
      addEdge(D.Args[0], V, EdgeKind::Plain, /*Special=*/false);
      break;
    case StreamKind::Lift: {
      const BuiltinInfo &Info = builtinInfo(D.Fn);
      for (unsigned I = 0; I != D.Args.size(); ++I) {
        StreamId U = D.Args[I];
        EdgeKind Kind = S.stream(U).Ty.isComplex()
                            ? accessToKind(Info.Access[I])
                            : EdgeKind::Plain;
        addEdge(U, V, Kind, /*Special=*/false);
      }
      break;
    }
    case StreamKind::Last: {
      StreamId Value = D.Args[0], Trigger = D.Args[1];
      EdgeKind Kind = S.stream(Value).Ty.isComplex() ? EdgeKind::Last
                                                     : EdgeKind::Plain;
      addEdge(Value, V, Kind, /*Special=*/true);
      addEdge(Trigger, V, EdgeKind::Plain, /*Special=*/false);
      break;
    }
    case StreamKind::Delay:
      addEdge(D.Args[0], V, EdgeKind::Plain, /*Special=*/true);
      addEdge(D.Args[1], V, EdgeKind::Plain, /*Special=*/false);
      break;
    }
  }
}

std::string UsageGraph::str() const {
  std::string OutStr;
  for (const UsageEdge &E : Edges) {
    OutStr += S.stream(E.From).Name;
    OutStr += " -";
    OutStr += edgeKindName(E.Kind);
    OutStr += E.Special ? "*-> " : "-> ";
    OutStr += S.stream(E.To).Name;
    OutStr += '\n';
  }
  return OutStr;
}
