//===- Analysis/AbsIntTransfer.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Transfer functions of the three lattice analyses over Program steps.
// All three are may-over-approximations (tick sets, value ranges, size
// bounds) plus two refinement channels (exact constants, the must-fire-
// at-0 bit); every transfer recomputes a stream's facts purely from its
// operands' facts, so the worklist engine can run them combined and in
// any order. Soundness rests on forced upward movement: the engine
// stops only when every stream's facts absorb a recomputation, i.e. the
// final state is a post-fixpoint of the final transfer functions, which
// for a may-analysis always contains the concrete behavior.
//
// The must-channels go the other way (an At0 bit is a proof, not a
// possibility), so they run as a separate least fixpoint *after* the
// over-approximating channels converged — see computeAt0.
//
//===----------------------------------------------------------------------===//

#include "AbsIntImpl.h"

#include "tessla/Runtime/Containers.h"

using namespace tessla;
using namespace tessla::absint;
using namespace tessla::absint::detail;

//===----------------------------------------------------------------------===//
// ValueRange arithmetic
//===----------------------------------------------------------------------===//

namespace {

constexpr int64_t NegInf = ValueRange::NegInf;
constexpr int64_t PosInf = ValueRange::PosInf;

/// Saturating int64 arithmetic: results clamp to the representable
/// extremes, which double as the interval infinities — saturation only
/// ever widens a bound, so it is always sound.
int64_t satClamp(__int128 V) {
  if (V <= static_cast<__int128>(NegInf))
    return NegInf;
  if (V >= static_cast<__int128>(PosInf))
    return PosInf;
  return static_cast<int64_t>(V);
}
int64_t satAdd(int64_t A, int64_t B) {
  return satClamp(static_cast<__int128>(A) + B);
}
int64_t satMul(int64_t A, int64_t B) {
  return satClamp(static_cast<__int128>(A) * B);
}
int64_t satNeg(int64_t A) { return satClamp(-static_cast<__int128>(A)); }

ValueRange addR(const ValueRange &A, const ValueRange &B) {
  return ValueRange::interval(satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi));
}
ValueRange subR(const ValueRange &A, const ValueRange &B) {
  return ValueRange::interval(satAdd(A.Lo, satNeg(B.Hi)),
                              satAdd(A.Hi, satNeg(B.Lo)));
}
ValueRange mulR(const ValueRange &A, const ValueRange &B) {
  int64_t C[4] = {satMul(A.Lo, B.Lo), satMul(A.Lo, B.Hi),
                  satMul(A.Hi, B.Lo), satMul(A.Hi, B.Hi)};
  int64_t Lo = C[0], Hi = C[0];
  for (int64_t V : C) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  return ValueRange::interval(Lo, Hi);
}
ValueRange negR(const ValueRange &A) {
  return ValueRange::interval(satNeg(A.Hi), satNeg(A.Lo));
}
ValueRange absR(const ValueRange &A) {
  if (A.Lo >= 0)
    return A;
  if (A.Hi <= 0)
    return negR(A);
  return ValueRange::interval(0, std::max(satNeg(A.Lo), A.Hi));
}
ValueRange minR(const ValueRange &A, const ValueRange &B) {
  return ValueRange::interval(std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
}
ValueRange maxR(const ValueRange &A, const ValueRange &B) {
  return ValueRange::interval(std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}
/// Division by a constant non-zero divisor is monotone per sign; every
/// other divisor shape stays Top (runtime division by zero is a monitor
/// failure, not a value).
ValueRange divR(const ValueRange &A, const ValueRange &B) {
  if (B.Lo != B.Hi || B.Lo == 0 || B.Lo == NegInf || B.Lo == PosInf ||
      A.Lo == NegInf || A.Hi == PosInf)
    return ValueRange::top();
  int64_t X = A.Lo / B.Lo, Y = A.Hi / B.Lo;
  return ValueRange::interval(std::min(X, Y), std::max(X, Y));
}
/// C++ remainder: sign follows the dividend, magnitude below |divisor|.
ValueRange modR(const ValueRange &A, const ValueRange &B) {
  if (B.Lo == NegInf || B.Hi == PosInf)
    return ValueRange::top();
  int64_t M = std::max(satNeg(B.Lo), B.Hi); // max |divisor|
  if (M <= 0)
    return ValueRange::top();
  int64_t Mag = satAdd(M, -1);
  int64_t Lo = A.Lo >= 0 ? 0 : satNeg(Mag);
  int64_t Hi = A.Hi <= 0 ? 0 : Mag;
  if (A.Lo >= 0 && A.Hi != PosInf)
    Hi = std::min(Hi, A.Hi);
  return ValueRange::interval(Lo, Hi);
}

/// Effective Bool view of a range (Top reads as "either").
bool boolView(const ValueRange &R, bool &CanTrue, bool &CanFalse) {
  if (R.K == ValueRange::Kind::Bool) {
    CanTrue = R.CanTrue;
    CanFalse = R.CanFalse;
    return true;
  }
  if (R.K == ValueRange::Kind::Top) {
    CanTrue = CanFalse = true;
    return true;
  }
  return false; // Bottom or Int — caller bails to Top
}

ValueRange compareR(BuiltinId Fn, const ValueRange &A, const ValueRange &B) {
  if (A.K != ValueRange::Kind::Int || B.K != ValueRange::Kind::Int)
    return ValueRange::boolRange(true, true);
  bool T = true, F = true;
  switch (Fn) {
  case BuiltinId::Lt:
    T = A.Lo < B.Hi;
    F = A.Hi >= B.Lo;
    break;
  case BuiltinId::Leq:
    T = A.Lo <= B.Hi;
    F = A.Hi > B.Lo;
    break;
  case BuiltinId::Gt:
    T = A.Hi > B.Lo;
    F = A.Lo <= B.Hi;
    break;
  case BuiltinId::Geq:
    T = A.Hi >= B.Lo;
    F = A.Lo < B.Hi;
    break;
  case BuiltinId::Eq:
    T = A.Lo <= B.Hi && B.Lo <= A.Hi;
    F = !(A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo);
    break;
  case BuiltinId::Neq:
    F = A.Lo <= B.Hi && B.Lo <= A.Hi;
    T = !(A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo);
    break;
  default:
    break;
  }
  return ValueRange::boolRange(T, F);
}

bool isComparison(BuiltinId Fn) {
  switch (Fn) {
  case BuiltinId::Eq:
  case BuiltinId::Neq:
  case BuiltinId::Lt:
  case BuiltinId::Leq:
  case BuiltinId::Gt:
  case BuiltinId::Geq:
    return true;
  default:
    return false;
  }
}

uint64_t aggregateSize(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Set:
    return V.asSet().size();
  case Value::Kind::Map:
    return V.asMap().size();
  case Value::Kind::Queue:
    return V.asQueue().size();
  default:
    return 0;
  }
}

/// [0, bound] of one aggregate operand (exact for a known constant).
ValueRange sizeRange(const State &St, StreamId Id) {
  if (const Value *K = St.known(Id); K && K->isAggregate()) {
    int64_t N = static_cast<int64_t>(aggregateSize(*K));
    return ValueRange::intConst(N);
  }
  const SizeBound &B = St.Bound[Id];
  if (B.Unbounded)
    return ValueRange::interval(0, PosInf);
  return ValueRange::interval(
      0, satClamp(static_cast<__int128>(B.Max)));
}

} // namespace

//===----------------------------------------------------------------------===//
// ValueRange members
//===----------------------------------------------------------------------===//

bool ValueRange::contains(const Value &V) const {
  switch (K) {
  case Kind::Top:
    return true;
  case Kind::Bottom:
    return false;
  case Kind::Int:
    return V.kind() == Value::Kind::Int && Lo <= V.getInt() &&
           V.getInt() <= Hi;
  case Kind::Bool:
    return V.kind() == Value::Kind::Bool &&
           (V.getBool() ? CanTrue : CanFalse);
  }
  return true;
}

ValueRange ValueRange::join(const ValueRange &O) const {
  if (K == Kind::Bottom)
    return O;
  if (O.K == Kind::Bottom)
    return *this;
  if (K == Kind::Top || O.K == Kind::Top || K != O.K)
    return top();
  if (K == Kind::Int)
    return interval(std::min(Lo, O.Lo), std::max(Hi, O.Hi));
  return boolRange(CanTrue || O.CanTrue, CanFalse || O.CanFalse);
}

ValueRange ValueRange::widen(const ValueRange &Old) const {
  ValueRange J = join(Old);
  if (J.K != Kind::Int || Old.K != Kind::Int)
    return J; // Bool/Top/kind-jump chains are finite already
  return interval(J.Lo < Old.Lo ? NegInf : J.Lo,
                  J.Hi > Old.Hi ? PosInf : J.Hi);
}

std::string ValueRange::str() const {
  switch (K) {
  case Kind::Bottom:
    return "_|_";
  case Kind::Top:
    return "T";
  case Kind::Bool:
    if (CanTrue && CanFalse)
      return "{true, false}";
    if (CanTrue)
      return "{true}";
    if (CanFalse)
      return "{false}";
    return "{}";
  case Kind::Int: {
    std::string L = Lo == NegInf ? "-inf" : std::to_string(Lo);
    std::string H = Hi == PosInf ? "+inf" : std::to_string(Hi);
    return "[" + L + ", " + H + "]";
  }
  }
  return "T";
}

std::string SizeBound::str() const {
  return Unbounded ? "unbounded" : "<= " + std::to_string(Max);
}

//===----------------------------------------------------------------------===//
// State
//===----------------------------------------------------------------------===//

void State::init(const Program &Prog) {
  P = &Prog;
  S = &Prog.spec();
  uint32_t N = S->numStreams();
  StepOf.assign(N, -1);
  for (size_t I = 0; I != Prog.steps().size(); ++I)
    StepOf[Prog.steps()[I].Id] = static_cast<int32_t>(I);
  Tick.assign(N, TickKind::Never);
  HasKnown.assign(N, 0);
  KnownDamaged.assign(N, 0);
  Known.assign(N, Value());
  Range.assign(N, ValueRange::bottom());
  Bound.assign(N, SizeBound{});
  At0.assign(N, 0);
  WidenedSeen.assign(N, 0);
  WidenedUnbounded.clear();
}

bool State::setKnown(StreamId Id, const Value *V) {
  if (!V || KnownDamaged[Id]) {
    // Losing a constant (an operand left the constant world) damages
    // the channel so it cannot flip back and forth.
    if (HasKnown[Id]) {
      HasKnown[Id] = 0;
      KnownDamaged[Id] = 1;
      return true;
    }
    return false;
  }
  if (HasKnown[Id]) {
    if (Known[Id] == *V)
      return false;
    HasKnown[Id] = 0;
    KnownDamaged[Id] = 1;
    return true;
  }
  Known[Id] = *V;
  HasKnown[Id] = 1;
  return true;
}

ValueRange detail::operandRange(const State &St, StreamId Id) {
  if (const Value *K = St.known(Id)) {
    if (K->kind() == Value::Kind::Int)
      return ValueRange::intConst(K->getInt());
    if (K->kind() == Value::Kind::Bool)
      return ValueRange::boolConst(K->getBool());
  }
  return St.Range[Id];
}

//===----------------------------------------------------------------------===//
// Tick + constant propagation
//===----------------------------------------------------------------------===//

namespace {

TickKind joinTick(TickKind A, TickKind B) { return std::max(A, B); }

/// All-semantics combination: silent if any operand is silent, within
/// {0} if any operand is (a conjunction of tick sets).
TickKind allTick(TickKind Acc, TickKind Arg) {
  if (Acc == TickKind::Never || Arg == TickKind::Never)
    return TickKind::Never;
  if (Acc == TickKind::Unit || Arg == TickKind::Unit)
    return TickKind::Unit;
  return TickKind::Var;
}

TickKind lastTick(const State &St, StreamId V, StreamId R) {
  // last(v, r) fires at r's events past timestamp 0 once v has a
  // previous value: silent when v never fires, and silent when r fires
  // at most at timestamp 0 (last is strictly last).
  if (St.never(V) || St.Tick[R] != TickKind::Var)
    return TickKind::Never;
  return TickKind::Var;
}

/// "This stream provably carries exactly one event, at timestamp 0, so
/// its presence in a timestamp-0 evaluation is definite."
bool definiteUnit(const State &St, StreamId Id) {
  return St.atMostUnit(Id) && St.At0[Id] && !St.never(Id);
}

const Value *applyKnown(BuiltinId Fn, const Value *Args[3], unsigned N,
                        Value &Storage) {
  EvalError Err;
  Storage = applyBuiltin(Fn, Args, N, /*InPlace=*/false, Err);
  // A statically-failing evaluation must keep failing at run time; the
  // stream keeps its unknown value.
  return Err.Failed ? nullptr : &Storage;
}

} // namespace

bool TickConstAnalysis::transfer(const ProgramStep &Step) {
  State &St = this->St;
  const StreamId Id = Step.Id;
  TickKind NewTick = TickKind::Never;
  const Value *NewKnown = nullptr;
  Value Storage;

  switch (Step.Op) {
  case Opcode::Skip:
    NewTick = Step.Kind == StreamKind::Input ? TickKind::Var
                                             : TickKind::Never;
    break;
  case Opcode::Const:
    NewTick = TickKind::Unit;
    NewKnown = &Step.ConstVal;
    break;
  case Opcode::ConstTick:
    NewTick = St.never(Step.Args[0]) ? TickKind::Unit : TickKind::Var;
    NewKnown = &Step.ConstVal;
    break;
  case Opcode::Time:
    NewTick = St.Tick[Step.Args[0]];
    if (St.atMostUnit(Step.Args[0])) {
      Storage = Value::integer(0);
      NewKnown = &Storage;
    }
    break;
  case Opcode::Last:
    NewTick = lastTick(St, Step.Args[0], Step.Args[1]);
    NewKnown = St.known(Step.Args[0]);
    break;
  case Opcode::Delay:
    NewTick = (St.never(Step.Args[0]) || St.never(Step.Args[1]))
                  ? TickKind::Never
                  : TickKind::Var;
    Storage = Value::unit();
    NewKnown = &Storage;
    break;
  case Opcode::LiftAll: {
    NewTick = TickKind::Var;
    bool AllKnown = true;
    const Value *Args[3] = {nullptr, nullptr, nullptr};
    for (unsigned I = 0; I != Step.NumArgs; ++I) {
      NewTick = allTick(NewTick, St.Tick[Step.Args[I]]);
      Args[I] = St.known(Step.Args[I]);
      AllKnown = AllKnown && Args[I];
    }
    if (NewTick != TickKind::Never && AllKnown && Step.NumArgs)
      NewKnown = applyKnown(Step.Fn, Args, Step.NumArgs, Storage);
    break;
  }
  case Opcode::LiftMerge: {
    for (unsigned I = 0; I != Step.NumArgs; ++I)
      NewTick = joinTick(NewTick, St.Tick[Step.Args[I]]);
    // First present wins. Two ways the value is static: every arm that
    // can fire carries the same constant, or the first live arm fires
    // definitely at 0 and every other live arm can only fire at 0.
    const Value *Equal = nullptr;
    bool AllEqual = true;
    StreamId FirstLive = Id;
    bool HaveFirst = false, OthersUnit = true;
    for (unsigned I = 0; I != Step.NumArgs; ++I) {
      StreamId A = Step.Args[I];
      if (St.never(A))
        continue;
      if (!HaveFirst) {
        HaveFirst = true;
        FirstLive = A;
      } else {
        OthersUnit = OthersUnit && St.atMostUnit(A);
      }
      const Value *K = St.known(A);
      if (!K || (Equal && !(*Equal == *K)))
        AllEqual = false;
      else if (!Equal)
        Equal = K;
    }
    if (NewTick != TickKind::Never) {
      if (AllEqual && Equal)
        NewKnown = Equal;
      else if (HaveFirst && OthersUnit && St.At0[FirstLive] &&
               St.known(FirstLive))
        NewKnown = St.known(FirstLive);
    }
    break;
  }
  case Opcode::LiftFirstRest: {
    StreamId First = Step.Args[0];
    TickKind RestJoin = TickKind::Never;
    for (unsigned I = 1; I != Step.NumArgs; ++I)
      RestJoin = joinTick(RestJoin, St.Tick[Step.Args[I]]);
    if (St.never(First) || RestJoin == TickKind::Never)
      NewTick = TickKind::Never;
    else if (St.atMostUnit(First) || RestJoin == TickKind::Unit)
      NewTick = TickKind::Unit;
    else
      NewTick = TickKind::Var;
    // The constant case needs *definite* presence: one timestamp-0
    // evaluation whose presence pattern is statically exact (absent
    // arguments evaluate as null, like the interpreter's partial call).
    bool Foldable = definiteUnit(St, First) && St.known(First);
    bool AnyRest = false;
    const Value *Args[3] = {nullptr, nullptr, nullptr};
    Args[0] = St.known(First);
    for (unsigned I = 1; Foldable && I != Step.NumArgs; ++I) {
      StreamId A = Step.Args[I];
      if (St.never(A))
        continue;
      if (definiteUnit(St, A) && St.known(A)) {
        Args[I] = St.known(A);
        AnyRest = true;
      } else {
        Foldable = false;
      }
    }
    if (NewTick != TickKind::Never && Foldable && AnyRest)
      NewKnown = applyKnown(Step.Fn, Args, Step.NumArgs, Storage);
    break;
  }
  case Opcode::LiftFilter: {
    StreamId A = Step.Args[0], C = Step.Args[1];
    if (St.never(A) || St.never(C) ||
        operandRange(St, C).alwaysFalse())
      NewTick = TickKind::Never;
    else if (St.atMostUnit(A) || St.atMostUnit(C))
      NewTick = TickKind::Unit;
    else
      NewTick = TickKind::Var;
    if (NewTick != TickKind::Never)
      NewKnown = St.known(A);
    break;
  }
  case Opcode::FusedLastLift: {
    // The consumer half of last(v, r) fused into a LiftAll: the virtual
    // first argument is the last, the rest follow after r.
    NewTick = lastTick(St, Step.Args[0], Step.Args[1]);
    bool AllKnown = St.known(Step.Args[0]) != nullptr;
    const Value *Args[3] = {St.known(Step.Args[0]), nullptr, nullptr};
    for (unsigned I = 1; I != Step.NumArgs; ++I) {
      StreamId A = Step.Args[I + 1];
      NewTick = allTick(NewTick, St.Tick[A]);
      Args[I] = St.known(A);
      AllKnown = AllKnown && Args[I];
    }
    if (NewTick != TickKind::Never && AllKnown)
      NewKnown = applyKnown(Step.Fn, Args, Step.NumArgs, Storage);
    break;
  }
  case Opcode::FusedLiftLift: {
    NewTick = TickKind::Var;
    bool AllKnown = true;
    const Value *Inner[3] = {nullptr, nullptr, nullptr};
    for (unsigned I = 0; I != Step.NumArgs; ++I) {
      NewTick = allTick(NewTick, St.Tick[Step.Args[I]]);
      const Value *K = St.known(Step.Args[I]);
      AllKnown = AllKnown && K;
      if (I < Step.FusedArity)
        Inner[I] = K;
    }
    if (NewTick != TickKind::Never && AllKnown) {
      Value InnerStorage;
      if (const Value *IV = applyKnown(Step.Fn2, Inner, Step.FusedArity,
                                       InnerStorage)) {
        const Value *Outer[3] = {IV, nullptr, nullptr};
        unsigned OuterN = 1;
        for (unsigned I = Step.FusedArity; I != Step.NumArgs; ++I)
          Outer[OuterN++] = St.known(Step.Args[I]);
        NewKnown = applyKnown(Step.Fn, Outer, OuterN, Storage);
      }
    }
    break;
  }
  }

  bool Changed = false;
  TickKind Up = joinTick(St.Tick[Id], NewTick);
  if (Up != St.Tick[Id]) {
    St.Tick[Id] = Up;
    Changed = true;
  }
  if (St.Tick[Id] == TickKind::Never)
    NewKnown = nullptr; // silent streams carry no constant
  Changed |= St.setKnown(Id, NewKnown);
  return Changed;
}

//===----------------------------------------------------------------------===//
// Value ranges
//===----------------------------------------------------------------------===//

namespace {

ValueRange rangeFromConst(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Int:
    return ValueRange::intConst(V.getInt());
  case Value::Kind::Bool:
    return ValueRange::boolConst(V.getBool());
  default:
    return ValueRange::top();
  }
}

ValueRange inputSeedRange(const Type &Ty) {
  switch (Ty.kind()) {
  case TypeKind::Int:
    return ValueRange::interval(NegInf, PosInf);
  case TypeKind::Bool:
    return ValueRange::boolRange(true, true);
  default:
    return ValueRange::top();
  }
}

} // namespace

ValueRange detail::liftRange(const State &St, BuiltinId Fn,
                             const std::vector<StreamId> &Args,
                             size_t ArgBegin, size_t ArgEnd) {
  size_t N = ArgEnd - ArgBegin;
  auto R = [&](size_t I) { return operandRange(St, Args[ArgBegin + I]); };
  auto Id = [&](size_t I) { return Args[ArgBegin + I]; };

  if (isComparison(Fn) && N == 2) {
    // A stream compared with itself sees the same event value on both
    // sides. Restricted to Int operands: Float would trip over NaN.
    if (Id(0) == Id(1) &&
        St.S->stream(Id(0)).Ty.kind() == TypeKind::Int) {
      bool True = Fn == BuiltinId::Eq || Fn == BuiltinId::Leq ||
                  Fn == BuiltinId::Geq;
      return ValueRange::boolConst(True);
    }
    return compareR(Fn, R(0), R(1));
  }

  switch (Fn) {
  case BuiltinId::Add:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return addR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Sub:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return subR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Mul:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return mulR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Div:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return divR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Mod:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return modR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Neg:
    if (R(0).K == ValueRange::Kind::Int)
      return negR(R(0));
    return ValueRange::top();
  case BuiltinId::Abs:
    if (R(0).K == ValueRange::Kind::Int)
      return absR(R(0));
    return ValueRange::top();
  case BuiltinId::Min:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return minR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::Max:
    if (R(0).K == ValueRange::Kind::Int && R(1).K == ValueRange::Kind::Int)
      return maxR(R(0), R(1));
    return ValueRange::top();
  case BuiltinId::LAnd:
  case BuiltinId::LOr: {
    bool T0, F0, T1, F1;
    if (!boolView(R(0), T0, F0) || !boolView(R(1), T1, F1))
      return ValueRange::boolRange(true, true);
    if (Fn == BuiltinId::LAnd)
      return ValueRange::boolRange(T0 && T1, F0 || F1);
    return ValueRange::boolRange(T0 || T1, F0 && F1);
  }
  case BuiltinId::LNot: {
    bool T, F;
    if (!boolView(R(0), T, F))
      return ValueRange::boolRange(true, true);
    return ValueRange::boolRange(F, T);
  }
  case BuiltinId::Ite: {
    bool T, F;
    if (boolView(R(0), T, F)) {
      if (T && !F)
        return R(1);
      if (F && !T)
        return R(2);
    }
    return R(1).join(R(2));
  }
  case BuiltinId::SetSize:
  case BuiltinId::MapSize:
  case BuiltinId::QueueSize:
    return sizeRange(St, Id(0));
  case BuiltinId::StrLen:
    return ValueRange::interval(0, PosInf);
  case BuiltinId::SetContains:
  case BuiltinId::MapContains:
    return ValueRange::boolRange(true, true);
  case BuiltinId::ToInt:
    return ValueRange::interval(NegInf, PosInf);
  default:
    return ValueRange::top();
  }
}

ValueRange RangeAnalysis::compute(const ProgramStep &Step) const {
  const State &St = this->St;
  if (St.never(Step.Id))
    return ValueRange::bottom();
  switch (Step.Op) {
  case Opcode::Skip:
    return Step.Kind == StreamKind::Input
               ? inputSeedRange(St.S->stream(Step.Id).Ty)
               : ValueRange::bottom();
  case Opcode::Const:
  case Opcode::ConstTick:
    return rangeFromConst(Step.ConstVal);
  case Opcode::Time:
    return St.atMostUnit(Step.Args[0])
               ? ValueRange::intConst(0)
               : ValueRange::interval(0, PosInf);
  case Opcode::Last:
    return operandRange(St, Step.Args[0]);
  case Opcode::Delay:
    return ValueRange::top(); // unit-valued events
  case Opcode::LiftAll:
    return liftRange(St, Step.Fn, Step.Args, 0, Step.Args.size());
  case Opcode::LiftMerge: {
    ValueRange J = ValueRange::bottom();
    for (StreamId A : Step.Args)
      if (!St.never(A))
        J = J.join(operandRange(St, A));
    return J;
  }
  case Opcode::LiftFirstRest:
    return ValueRange::top(); // value depends on the presence pattern
  case Opcode::LiftFilter:
    return operandRange(St, Step.Args[0]);
  case Opcode::FusedLastLift: {
    // Consumer evaluation over (last(v, r), rest...): last passes v's
    // values through, so rebuild the consumer's operand list as
    // {v, rest...} and reuse the lift rules.
    std::vector<StreamId> Ops;
    Ops.push_back(Step.Args[0]);
    for (size_t I = 2; I < Step.Args.size(); ++I)
      Ops.push_back(Step.Args[I]);
    return liftRange(St, Step.Fn, Ops, 0, Ops.size());
  }
  case Opcode::FusedLiftLift: {
    // Arithmetic composition would need a range for the anonymous inner
    // result; the interesting fused shapes are aggregate updates, which
    // the range domain does not model. Comparisons and sizes of the
    // *outer* function still work when its extra operands are real
    // streams — conservatively Top otherwise.
    return ValueRange::top();
  }
  }
  return ValueRange::top();
}

bool RangeAnalysis::transfer(const ProgramStep &Step) {
  ValueRange New = compute(Step).join(St.Range[Step.Id]);
  if (New != St.Range[Step.Id]) {
    St.Range[Step.Id] = New;
    return true;
  }
  return false;
}

bool RangeAnalysis::widen(const ProgramStep &Step) {
  ValueRange New = compute(Step).widen(St.Range[Step.Id]);
  if (New != St.Range[Step.Id]) {
    St.Range[Step.Id] = New;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Size bounds
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t BoundCap = UINT64_MAX / 4; // saturation guard

SizeBound boundedMax(uint64_t N) {
  return SizeBound{false, std::min(N, BoundCap)};
}

SizeBound satAddBound(const SizeBound &A, uint64_t Delta) {
  if (A.Unbounded)
    return A;
  return boundedMax(A.Max + Delta);
}

SizeBound joinBound(const SizeBound &A, const SizeBound &B) {
  if (A.Unbounded || B.Unbounded)
    return SizeBound{true, 0};
  return boundedMax(std::max(A.Max, B.Max));
}

/// Bound of one lift application given the operand streams.
SizeBound liftBound(const State &St, BuiltinId Fn,
                    const std::vector<StreamId> &Args, size_t ArgBegin) {
  auto B = [&](size_t I) { return St.Bound[Args[ArgBegin + I]]; };
  switch (Fn) {
  case BuiltinId::SetEmpty:
  case BuiltinId::MapEmpty:
  case BuiltinId::QueueEmpty:
    return SizeBound{false, 0};
  case BuiltinId::SetAdd:
  case BuiltinId::SetToggle:
  case BuiltinId::SetUpdate:
  case BuiltinId::MapPut:
  case BuiltinId::QueueEnq:
    return satAddBound(B(0), 1);
  case BuiltinId::SetRemove:
  case BuiltinId::MapRemove:
  case BuiltinId::SetDiff:
    return B(0);
  case BuiltinId::QueueDeq: {
    SizeBound Q = B(0);
    if (!Q.Unbounded && Q.Max > 0)
      --Q.Max;
    return Q;
  }
  case BuiltinId::QueueTrim: {
    SizeBound Q = B(0);
    ValueRange N = operandRange(St, Args[ArgBegin + 1]);
    if (N.K == ValueRange::Kind::Int && N.Hi != PosInf) {
      uint64_t Cap = N.Hi <= 0 ? 0 : static_cast<uint64_t>(N.Hi);
      if (Q.Unbounded || Q.Max > Cap)
        Q = boundedMax(Cap);
    }
    return Q;
  }
  case BuiltinId::SetUnion:
    if (B(0).Unbounded || B(1).Unbounded)
      return SizeBound{true, 0};
    return boundedMax(B(0).Max + B(1).Max);
  case BuiltinId::Merge:
    // handled by the LiftMerge opcode; kept for fused inner calls
    return joinBound(B(0), B(1));
  case BuiltinId::Ite:
    return joinBound(B(1), B(2));
  case BuiltinId::Filter:
    return B(0);
  default:
    // Unknown aggregate-producing function (e.g. an aggregate pulled
    // out of a map): no element-count tracking.
    return SizeBound{true, 0};
  }
}

} // namespace

SizeBound BoundAnalysis::compute(const ProgramStep &Step) const {
  const State &St = this->St;
  const StreamId Id = Step.Id;
  if (!St.S->stream(Id).Ty.isComplex() || St.never(Id))
    return SizeBound{false, 0};
  // An exact aggregate constant beats any rule.
  if (const Value *K = St.known(Id); K && K->isAggregate())
    return boundedMax(aggregateSize(*K));
  switch (Step.Op) {
  case Opcode::Skip:
    // Aggregate-typed inputs are fed from outside; nothing bounds them.
    return Step.Kind == StreamKind::Input ? SizeBound{true, 0}
                                          : SizeBound{false, 0};
  case Opcode::Const:
  case Opcode::ConstTick:
    return boundedMax(aggregateSize(Step.ConstVal));
  case Opcode::Time:
  case Opcode::Delay:
    return SizeBound{false, 0}; // scalar-valued
  case Opcode::Last:
  case Opcode::LiftFilter:
    return St.Bound[Step.Args[0]];
  case Opcode::LiftMerge: {
    SizeBound J{false, 0};
    bool Any = false;
    for (StreamId A : Step.Args)
      if (!St.never(A)) {
        J = Any ? joinBound(J, St.Bound[A]) : St.Bound[A];
        Any = true;
      }
    return J;
  }
  case Opcode::LiftAll:
  case Opcode::LiftFirstRest:
    return liftBound(St, Step.Fn, Step.Args, 0);
  case Opcode::FusedLastLift: {
    std::vector<StreamId> Ops;
    Ops.push_back(Step.Args[0]); // last passes v's aggregate through
    for (size_t I = 2; I < Step.Args.size(); ++I)
      Ops.push_back(Step.Args[I]);
    return liftBound(St, Step.Fn, Ops, 0);
  }
  case Opcode::FusedLiftLift: {
    // Inner result feeds the outer's first operand; compose through a
    // scratch bound table is overkill — the only aggregate-shape the
    // fuser produces keeps the aggregate in position 0, so chain the
    // two rules on the same operand list.
    SizeBound Inner = liftBound(St, Step.Fn2, Step.Args, 0);
    if (builtinInfo(Step.Fn).Arity == 1)
      return Inner;
    // Conservative: the outer may grow the inner by one per event.
    SizeBound Outer = satAddBound(Inner, 1);
    return Outer;
  }
  }
  return SizeBound{true, 0};
}

bool BoundAnalysis::transfer(const ProgramStep &Step) {
  SizeBound New = joinBound(compute(Step), St.Bound[Step.Id]);
  if (!(New == St.Bound[Step.Id])) {
    St.Bound[Step.Id] = New;
    return true;
  }
  return false;
}

bool BoundAnalysis::widen(const ProgramStep &Step) {
  SizeBound New = joinBound(compute(Step), St.Bound[Step.Id]);
  if (New == St.Bound[Step.Id])
    return false;
  // Still growing past the threshold: give up to unbounded and remember
  // the stream for the growth-cycle diagnostic.
  if (!New.Unbounded) {
    New = SizeBound{true, 0};
    if (New == St.Bound[Step.Id])
      return false;
  }
  if (!St.WidenedSeen[Step.Id]) {
    St.WidenedSeen[Step.Id] = 1;
    St.WidenedUnbounded.push_back(Step.Id);
  }
  St.Bound[Step.Id] = New;
  return true;
}

//===----------------------------------------------------------------------===//
// Must-fire-at-0 (phase 2)
//===----------------------------------------------------------------------===//

void detail::computeAt0(State &St) {
  const std::vector<ProgramStep> &Steps = St.P->steps();
  auto at0Of = [&](const ProgramStep &Step) -> bool {
    switch (Step.Op) {
    case Opcode::Skip:
    case Opcode::Last:
    case Opcode::Delay:
    case Opcode::FusedLastLift:
      return false;
    case Opcode::Const:
    case Opcode::ConstTick:
      return true;
    case Opcode::Time:
      return St.At0[Step.Args[0]];
    case Opcode::LiftAll:
    case Opcode::FusedLiftLift: {
      bool All = Step.NumArgs != 0;
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        All = All && St.At0[Step.Args[I]];
      return All;
    }
    case Opcode::LiftMerge: {
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        if (St.At0[Step.Args[I]])
          return true;
      return false;
    }
    case Opcode::LiftFirstRest: {
      if (!St.At0[Step.Args[0]])
        return false;
      for (unsigned I = 1; I != Step.NumArgs; ++I)
        if (St.At0[Step.Args[I]])
          return true;
      return false;
    }
    case Opcode::LiftFilter:
      // Provably fires at 0 only when both sides do AND the condition's
      // value is provably true — which is why this runs after the range
      // fixpoint converged.
      return St.At0[Step.Args[0]] && St.At0[Step.Args[1]] &&
             operandRange(St, Step.Args[1]).alwaysTrue();
    }
    return false;
  };
  for (uint32_t Iter = 0; Iter != St.S->numStreams() + 2; ++Iter) {
    bool Changed = false;
    for (const ProgramStep &Step : Steps) {
      if (!St.At0[Step.Id] && at0Of(Step)) {
        St.At0[Step.Id] = 1;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
}
