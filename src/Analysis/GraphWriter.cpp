//===- Analysis/GraphWriter.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/GraphWriter.h"

#include "tessla/Support/Format.h"

using namespace tessla;

static const char *edgeColor(EdgeKind K) {
  switch (K) {
  case EdgeKind::Write:
    return "red";
  case EdgeKind::Read:
    return "blue";
  case EdgeKind::Pass:
    return "darkgreen";
  case EdgeKind::Last:
    return "black";
  case EdgeKind::Plain:
    return "gray50";
  }
  return "black";
}

std::string
tessla::writeUsageGraphDot(const UsageGraph &G,
                           const MutabilityResult *Mutability) {
  const Spec &S = G.spec();
  std::string Out = "digraph usage {\n"
                    "  rankdir=LR;\n"
                    "  node [fontname=\"Helvetica\", fontsize=11];\n";
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    std::string Shape = D.Ty.isComplex() ? "box" : "ellipse";
    std::string Style;
    if (Mutability && D.Ty.isComplex())
      Style = Mutability->Mutable[Id]
                  ? ", style=filled, fillcolor=palegreen"
                  : ", style=filled, fillcolor=mistyrose";
    Out += formatString(
        "  n%u [label=\"%s\\n%s\", shape=%s%s];\n", Id, D.Name.c_str(),
        D.Ty.str().c_str(), Shape.c_str(), Style.c_str());
  }
  for (const UsageEdge &E : G.edges()) {
    std::string Attrs = formatString("color=%s", edgeColor(E.Kind));
    if (E.Kind != EdgeKind::Plain) {
      Attrs += formatString(", label=\"%s\"",
                            std::string(edgeKindName(E.Kind)).c_str());
    }
    if (E.Special)
      Attrs += ", style=dashed";
    Out += formatString("  n%u -> n%u [%s];\n", E.From, E.To,
                        Attrs.c_str());
  }
  if (Mutability) {
    for (auto [Reader, Writer] : Mutability->ReadBeforeWrite)
      Out += formatString("  n%u -> n%u [style=dotted, color=blue, "
                          "label=\"before\"];\n",
                          Reader, Writer);
  }
  Out += "}\n";
  return Out;
}
