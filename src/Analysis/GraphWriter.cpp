//===- Analysis/GraphWriter.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/GraphWriter.h"

#include "tessla/Support/Format.h"

using namespace tessla;

static const char *edgeColor(EdgeKind K) {
  switch (K) {
  case EdgeKind::Write:
    return "red";
  case EdgeKind::Read:
    return "blue";
  case EdgeKind::Pass:
    return "darkgreen";
  case EdgeKind::Last:
    return "black";
  case EdgeKind::Plain:
    return "gray50";
  }
  return "black";
}

std::string
tessla::writeUsageGraphDot(const UsageGraph &G,
                           const MutabilityResult *Mutability) {
  const Spec &S = G.spec();
  std::string Out = "digraph usage {\n"
                    "  rankdir=LR;\n"
                    "  node [fontname=\"Helvetica\", fontsize=11];\n";
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    std::string Shape = D.Ty.isComplex() ? "box" : "ellipse";
    std::string Style;
    if (Mutability && D.Ty.isComplex())
      Style = Mutability->Mutable[Id]
                  ? ", style=filled, fillcolor=palegreen"
                  : ", style=filled, fillcolor=mistyrose";
    Out += formatString(
        "  n%u [label=\"%s\\n%s\", shape=%s%s];\n", Id, D.Name.c_str(),
        D.Ty.str().c_str(), Shape.c_str(), Style.c_str());
  }
  for (const UsageEdge &E : G.edges()) {
    std::string Attrs = formatString("color=%s", edgeColor(E.Kind));
    if (E.Kind != EdgeKind::Plain) {
      Attrs += formatString(", label=\"%s\"",
                            std::string(edgeKindName(E.Kind)).c_str());
    }
    if (E.Special)
      Attrs += ", style=dashed";
    Out += formatString("  n%u -> n%u [%s];\n", E.From, E.To,
                        Attrs.c_str());
  }
  if (Mutability) {
    for (auto [Reader, Writer] : Mutability->ReadBeforeWrite)
      Out += formatString("  n%u -> n%u [style=dotted, color=blue, "
                          "label=\"before\"];\n",
                          Reader, Writer);
  }
  Out += "}\n";
  return Out;
}

static std::string dotEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size());
  for (char C : In) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string
tessla::writeAnalysisFactsDot(const UsageGraph &G,
                              const absint::AnalysisFacts &Facts) {
  const Spec &S = G.spec();
  std::string Out = "digraph analysis {\n"
                    "  rankdir=LR;\n"
                    "  node [fontname=\"Helvetica\", fontsize=10, "
                    "shape=box];\n";
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    std::string Label = D.Name + " : " + D.Ty.str();
    std::string Tick = Facts.tick(Id) == absint::TickKind::Never ? "never"
                       : Facts.tick(Id) == absint::TickKind::Unit
                           ? "unit"
                           : "var";
    Label += "\\ntick=" + Tick +
             (Facts.alwaysInitialized(Id) ? " at0" : "");
    if (const Value *K = Facts.knownValue(Id))
      Label += "\\n= " + dotEscape(K->str());
    else if (Facts.range(Id).K != absint::ValueRange::Kind::Bottom &&
             Facts.range(Id).K != absint::ValueRange::Kind::Top)
      Label += "\\nrange " + dotEscape(Facts.range(Id).str());
    if (D.Ty.isComplex())
      Label += "\\nbound " + Facts.sizeBound(Id).str();
    std::string Style;
    if (!Facts.canFire(Id))
      Style = ", style=filled, fillcolor=gray85, fontcolor=gray40";
    else if (D.Ty.isComplex() && Facts.sizeBound(Id).Unbounded)
      Style = ", style=filled, fillcolor=lightpink";
    else if (D.Ty.isComplex())
      Style = ", style=filled, fillcolor=palegreen";
    Out += formatString("  n%u [label=\"%s\"%s];\n", Id, Label.c_str(),
                        Style.c_str());
  }
  for (const UsageEdge &E : G.edges()) {
    std::string Attrs = formatString("color=%s", edgeColor(E.Kind));
    if (E.Special)
      Attrs += ", style=dashed";
    Out += formatString("  n%u -> n%u [%s];\n", E.From, E.To,
                        Attrs.c_str());
  }
  Out += "}\n";
  return Out;
}
