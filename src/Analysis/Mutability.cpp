//===- Analysis/Mutability.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Mutability.h"

#include "tessla/Analysis/TranslationOrder.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace tessla;

namespace {

/// One candidate family for step 4's minimum-weight removal.
struct CandidateGroup {
  uint32_t Rep;       // family representative
  uint32_t Weight;    // family size
  std::vector<std::pair<StreamId, StreamId>> Edges; // its E' edges
};

/// Step-4 solver: choose the min-weight subset of candidate groups to drop
/// so that Base + remaining E' edges is acyclic.
class EdgeRemovalSolver {
public:
  EdgeRemovalSolver(const Adjacency &Base,
                    std::vector<CandidateGroup> Groups)
      : Base(Base), Groups(std::move(Groups)) {}

  /// Exact branch-and-bound. Candidate count must be <= 64.
  std::vector<uint32_t> solveExact() {
    assert(Groups.size() <= 64 && "too many candidates for exact search");
    BestMask = (Groups.size() == 64) ? ~uint64_t{0}
                                     : ((uint64_t{1} << Groups.size()) - 1);
    BestWeight = totalWeight(BestMask);
    search(0, 0);
    return maskToReps(BestMask);
  }

  /// Greedy: break cycles by always dropping the lightest family on the
  /// current cycle.
  std::vector<uint32_t> solveGreedy() {
    uint64_t Removed = 0;
    for (;;) {
      std::vector<uint32_t> Cycle = findCycle(buildAdj(Removed));
      if (Cycle.empty())
        return maskToReps(Removed);
      uint64_t OnCycle = candidatesOnCycle(Cycle, Removed);
      assert(OnCycle != 0 && "cycle without removable E' edge");
      uint32_t Lightest = 0;
      uint32_t LightestWeight = ~0u;
      for (uint32_t I = 0; I != Groups.size(); ++I)
        if ((OnCycle >> I) & 1)
          if (Groups[I].Weight < LightestWeight) {
            Lightest = I;
            LightestWeight = Groups[I].Weight;
          }
      Removed |= uint64_t{1} << Lightest;
    }
  }

private:
  const Adjacency &Base;
  std::vector<CandidateGroup> Groups;
  uint64_t BestMask = 0;
  uint32_t BestWeight = ~0u;

  uint32_t totalWeight(uint64_t Mask) const {
    uint32_t W = 0;
    for (uint32_t I = 0; I != Groups.size(); ++I)
      if ((Mask >> I) & 1)
        W += Groups[I].Weight;
    return W;
  }

  Adjacency buildAdj(uint64_t Removed) const {
    Adjacency Adj = Base;
    for (uint32_t I = 0; I != Groups.size(); ++I) {
      if ((Removed >> I) & 1)
        continue;
      for (auto [From, To] : Groups[I].Edges)
        Adj[From].push_back(To);
    }
    return Adj;
  }

  /// Bitmask of not-yet-removed groups with an edge on \p Cycle that is
  /// not shadowed by a base edge (removing a group only helps if the
  /// cycle edge disappears with it).
  uint64_t candidatesOnCycle(const std::vector<uint32_t> &Cycle,
                             uint64_t Removed) const {
    uint64_t Result = 0;
    auto OnCycle = [&](StreamId From, StreamId To) {
      for (size_t I = 0, E = Cycle.size(); I != E; ++I)
        if (Cycle[I] == From && Cycle[(I + 1) % E] == To)
          return true;
      return false;
    };
    for (size_t I = 0, E = Cycle.size(); I != E; ++I) {
      StreamId From = Cycle[I], To = Cycle[(I + 1) % E];
      bool InBase =
          std::find(Base[From].begin(), Base[From].end(), To) !=
          Base[From].end();
      if (InBase)
        continue;
      for (uint32_t GI = 0; GI != Groups.size(); ++GI) {
        if ((Removed >> GI) & 1)
          continue;
        for (auto [GFrom, GTo] : Groups[GI].Edges)
          if (GFrom == From && GTo == To && OnCycle(From, To))
            Result |= uint64_t{1} << GI;
      }
    }
    return Result;
  }

  void search(uint64_t Removed, uint32_t Weight) {
    if (Weight >= BestWeight)
      return;
    std::vector<uint32_t> Cycle = findCycle(buildAdj(Removed));
    if (Cycle.empty()) {
      BestWeight = Weight;
      BestMask = Removed;
      return;
    }
    uint64_t OnCycle = candidatesOnCycle(Cycle, Removed);
    // Every cycle must contain at least one removable E' edge (the base
    // graph is acyclic); if none remains this branch is infeasible.
    for (uint32_t I = 0; I != Groups.size(); ++I)
      if ((OnCycle >> I) & 1)
        search(Removed | (uint64_t{1} << I), Weight + Groups[I].Weight);
  }

  std::vector<uint32_t> maskToReps(uint64_t Mask) const {
    std::vector<uint32_t> Out;
    for (uint32_t I = 0; I != Groups.size(); ++I)
      if ((Mask >> I) & 1)
        Out.push_back(Groups[I].Rep);
    return Out;
  }
};

} // namespace

uint32_t MutabilityResult::mutableCount() const {
  uint32_t Count = 0;
  for (bool M : Mutable)
    Count += M ? 1 : 0;
  return Count;
}

MutabilityResult tessla::computeMutability(const UsageGraph &G,
                                           TriggerAnalysis &Triggers,
                                           AliasAnalysis &Aliases,
                                           const MutabilityOptions &Opts) {
  (void)Triggers; // consumed indirectly through the alias analysis
  const Spec &S = G.spec();
  uint32_t N = G.numNodes();

  MutabilityResult R;
  R.Mutable.assign(N, false);

  // Step 1: variable families (consistent mutability, Def. 7 rule 3).
  UnionFind Families(N);
  for (const UsageEdge &E : G.edges())
    if (E.Kind == EdgeKind::Write || E.Kind == EdgeKind::Pass ||
        E.Kind == EdgeKind::Last)
      Families.unite(E.From, E.To);

  R.FamilyRep.resize(N);
  for (StreamId Id = 0; Id != N; ++Id)
    R.FamilyRep[Id] = Families.find(Id);

  if (!Opts.Optimize) {
    // Baseline: every aggregate persistent; plain Def. 2 order.
    auto Order = computeTranslationOrder(G);
    assert(Order && "validated specs always have a translation order");
    R.Order = std::move(*Order);
    return R;
  }

  // Steps 2 and 3: traverse write edges, inspect aliases.
  std::set<uint32_t> ForcedPersistent; // family reps (rule 1)
  std::set<std::pair<StreamId, StreamId>> ReadBeforeWrite;
  for (const UsageEdge &WriteEdge : G.edges()) {
    if (WriteEdge.Kind != EdgeKind::Write)
      continue;
    StreamId U = WriteEdge.From, V = WriteEdge.To;
    for (StreamId UAlias : Aliases.potentialAliases(U)) {
      for (uint32_t EI : G.outEdges(UAlias)) {
        const UsageEdge &E = G.edge(EI);
        bool SameEdge = UAlias == U && E.To == V &&
                        E.Kind == EdgeKind::Write;
        if ((E.Kind == EdgeKind::Write || E.Kind == EdgeKind::Last) &&
            !SameEdge) {
          // Rule 1: the aliased structure is written or reproduced
          // elsewhere; no order can make the in-place write safe.
          ForcedPersistent.insert(Families.find(U));
        }
        if (E.Kind == EdgeKind::Read)
          ReadBeforeWrite.insert({E.To, V}); // Rule 2: read node first.
      }
    }
  }
  R.ReadBeforeWrite.assign(ReadBeforeWrite.begin(), ReadBeforeWrite.end());
  for (uint32_t Rep : ForcedPersistent)
    R.PersistentFamilies.push_back({Rep, PersistentReason::DoubleWrite});

  // Step 4: group remaining constraints by the written family and find
  // the cheapest set whose removal leaves the order constraints acyclic.
  std::map<uint32_t, CandidateGroup> ByFamily;
  Adjacency Base = G.nonSpecialAdjacency();
  for (auto [Reader, Writer] : ReadBeforeWrite) {
    uint32_t Rep = Families.find(Writer);
    if (ForcedPersistent.count(Rep))
      continue; // already persistent: constraint void
    auto &Group = ByFamily[Rep];
    Group.Rep = Rep;
    Group.Weight = Families.setSize(Writer);
    Group.Edges.push_back({Reader, Writer});
  }
  std::vector<CandidateGroup> Groups;
  for (auto &[Rep, Group] : ByFamily)
    Groups.push_back(std::move(Group));

  std::vector<uint32_t> Dropped;
  EdgeRemovalSolver Solver(Base, Groups);
  if (Opts.ExactEdgeRemoval && Groups.size() <= Opts.MaxExactCandidates &&
      Groups.size() <= 64) {
    Dropped = Solver.solveExact();
    R.UsedExactRemoval = true;
  } else {
    Dropped = Solver.solveGreedy();
    R.UsedExactRemoval = false;
  }
  std::set<uint32_t> DroppedSet(Dropped.begin(), Dropped.end());
  for (uint32_t Rep : Dropped)
    R.PersistentFamilies.push_back({Rep, PersistentReason::OrderConflict});

  // Mutability per stream and final order: keep the constraints of
  // families that stay mutable.
  std::vector<std::pair<StreamId, StreamId>> KeptEdges;
  for (auto [Reader, Writer] : ReadBeforeWrite) {
    uint32_t Rep = Families.find(Writer);
    if (!ForcedPersistent.count(Rep) && !DroppedSet.count(Rep))
      KeptEdges.push_back({Reader, Writer});
  }
  auto Order = computeTranslationOrder(G, KeptEdges);
  assert(Order && "step 4 guarantees an acyclic constraint graph");
  R.Order = std::move(*Order);

  for (StreamId Id = 0; Id != N; ++Id) {
    if (!S.stream(Id).Ty.isComplex())
      continue;
    uint32_t Rep = Families.find(Id);
    R.Mutable[Id] = !ForcedPersistent.count(Rep) && !DroppedSet.count(Rep);
  }
  return R;
}

std::string MutabilityResult::report(const Spec &S) const {
  std::string Out;
  Out += "mutability analysis report\n";
  Out += "==========================\n";

  // Families restricted to aggregate streams.
  std::map<uint32_t, std::vector<StreamId>> Families;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Ty.isComplex())
      Families[FamilyRep[Id]].push_back(Id);

  for (auto &[Rep, Members] : Families) {
    std::vector<std::string> Names;
    for (StreamId Id : Members)
      Names.push_back(S.stream(Id).Name);
    bool IsMutable = Mutable[Members.front()];
    std::string Reason;
    for (auto [PRep, PReason] : PersistentFamilies)
      if (PRep == Rep)
        Reason = PReason == PersistentReason::DoubleWrite
                     ? " (double write/reproduction)"
                     : " (read-before-write conflict)";
    Out += formatString("  family {%s}: %s%s\n",
                        join(Names, ", ").c_str(),
                        IsMutable ? "mutable" : "persistent",
                        Reason.c_str());
  }

  std::vector<std::string> OrderNames;
  for (StreamId Id : Order)
    OrderNames.push_back(S.stream(Id).Name);
  Out += "  translation order: " + join(OrderNames, " < ") + "\n";

  if (!ReadBeforeWrite.empty()) {
    std::vector<std::string> Constraints;
    for (auto [Reader, Writer] : ReadBeforeWrite)
      Constraints.push_back(S.stream(Reader).Name + " < " +
                            S.stream(Writer).Name);
    Out += "  read-before-write constraints: " + join(Constraints, ", ") +
           "\n";
  }
  return Out;
}
