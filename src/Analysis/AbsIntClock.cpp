//===- Analysis/AbsIntClock.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Clock-calculus formulas: per stream, one boolean formula over input
// tick atoms describing at which timestamps t >= 1 the stream carries an
// event, and a second formula for the timestamp-0 evaluation (which is
// special: constants fire there and lasts never do).
//
// The formulas are *exact* under the induced assignment of a concrete
// timestamp — each input atom is "that input fired at t", each opaque
// atom is "that value-dependent gate was open at t" — so formula
// implication proves tick-set inclusion, and for formulas ranging over
// input atoms only, a failed implication is a genuine refutation (some
// input pattern makes the left stream fire without the right one).
//
//===----------------------------------------------------------------------===//

#include "AbsIntImpl.h"

using namespace tessla;
using namespace tessla::absint;
using namespace tessla::absint::detail;

void detail::buildClockFormulas(const State &St, BoolExprContext &Ctx,
                                std::vector<ClockInfo> &Out) {
  const uint32_t N = St.S->numStreams();
  const AtomSpace AS{N};
  Out.assign(N, ClockInfo{Ctx.falseExpr(), Ctx.falseExpr(), true});
  std::vector<uint8_t> Done(N, 0);

  // Operand accessors. Translation order guarantees operands precede
  // their step except last/delay back edges; a not-yet-done operand (a
  // back edge consulted defensively) degrades to an opaque atom.
  auto opF = [&](StreamId A, bool &InputOnly) -> BoolExprRef {
    if (Done[A]) {
      InputOnly = InputOnly && Out[A].InputOnly;
      return Out[A].F;
    }
    InputOnly = false;
    return Ctx.atom(AS.opaqueAtom(A));
  };
  auto opAt0F = [&](StreamId A, bool &InputOnly) -> BoolExprRef {
    if (Done[A]) {
      InputOnly = InputOnly && Out[A].InputOnly;
      return Out[A].At0F;
    }
    InputOnly = false;
    return Ctx.atom(AS.opaque0Atom(A));
  };

  for (const ProgramStep &Step : St.P->steps()) {
    const StreamId Id = Step.Id;
    ClockInfo CI;
    CI.F = Ctx.falseExpr();
    CI.At0F = Ctx.falseExpr();
    CI.InputOnly = true;

    // A proven-silent stream has the exact formula "false" on both
    // sides, whatever its structure says.
    if (St.never(Id)) {
      Out[Id] = CI;
      Done[Id] = 1;
      continue;
    }

    switch (Step.Op) {
    case Opcode::Skip:
      if (Step.Kind == StreamKind::Input) {
        CI.F = Ctx.atom(AS.tickAtom(Id));
        CI.At0F = Ctx.atom(AS.tick0Atom(Id));
      }
      break;
    case Opcode::Const:
      CI.F = Ctx.falseExpr();
      CI.At0F = Ctx.trueExpr();
      break;
    case Opcode::ConstTick:
      CI.F = opF(Step.Args[0], CI.InputOnly);
      CI.At0F = Ctx.trueExpr();
      break;
    case Opcode::Time:
      CI.F = opF(Step.Args[0], CI.InputOnly);
      CI.At0F = opAt0F(Step.Args[0], CI.InputOnly);
      break;
    case Opcode::Last: {
      // Fires at r's events once v holds a previous value. If v
      // provably fires at 0, the hold is unconditional for t >= 1;
      // otherwise an opaque "initialized yet" gate remains.
      BoolExprRef R = opF(Step.Args[1], CI.InputOnly);
      if (St.At0[Step.Args[0]]) {
        CI.F = R;
      } else {
        CI.F = Ctx.conj(R, Ctx.atom(AS.opaqueAtom(Id)));
        CI.InputOnly = false;
      }
      CI.At0F = Ctx.falseExpr();
      break;
    }
    case Opcode::Delay:
      // Timer expiry is value-dependent through and through.
      CI.F = Ctx.atom(AS.opaqueAtom(Id));
      CI.At0F = Ctx.falseExpr();
      CI.InputOnly = false;
      break;
    case Opcode::LiftAll: {
      std::vector<BoolExprRef> Fs, As;
      for (unsigned I = 0; I != Step.NumArgs; ++I) {
        Fs.push_back(opF(Step.Args[I], CI.InputOnly));
        As.push_back(opAt0F(Step.Args[I], CI.InputOnly));
      }
      CI.F = Ctx.conj(Fs);
      CI.At0F = Ctx.conj(As);
      break;
    }
    case Opcode::LiftMerge: {
      std::vector<BoolExprRef> Fs, As;
      for (unsigned I = 0; I != Step.NumArgs; ++I) {
        Fs.push_back(opF(Step.Args[I], CI.InputOnly));
        As.push_back(opAt0F(Step.Args[I], CI.InputOnly));
      }
      CI.F = Ctx.disj(Fs);
      CI.At0F = Ctx.disj(As);
      break;
    }
    case Opcode::LiftFirstRest: {
      std::vector<BoolExprRef> RFs, RAs;
      for (unsigned I = 1; I != Step.NumArgs; ++I) {
        RFs.push_back(opF(Step.Args[I], CI.InputOnly));
        RAs.push_back(opAt0F(Step.Args[I], CI.InputOnly));
      }
      CI.F = Ctx.conj(opF(Step.Args[0], CI.InputOnly), Ctx.disj(RFs));
      CI.At0F =
          Ctx.conj(opAt0F(Step.Args[0], CI.InputOnly), Ctx.disj(RAs));
      break;
    }
    case Opcode::LiftFilter: {
      BoolExprRef Base = Ctx.conj(opF(Step.Args[0], CI.InputOnly),
                                  opF(Step.Args[1], CI.InputOnly));
      BoolExprRef Base0 = Ctx.conj(opAt0F(Step.Args[0], CI.InputOnly),
                                   opAt0F(Step.Args[1], CI.InputOnly));
      if (operandRange(St, Step.Args[1]).alwaysTrue()) {
        // The condition is provably true whenever present: the filter
        // is clock-exact, no value gate.
        CI.F = Base;
        CI.At0F = Base0;
      } else {
        CI.F = Ctx.conj(Base, Ctx.atom(AS.opaqueAtom(Id)));
        CI.At0F = Ctx.conj(Base0, Ctx.atom(AS.opaque0Atom(Id)));
        CI.InputOnly = false;
      }
      break;
    }
    case Opcode::FusedLastLift: {
      // The fused last's own formula first (its stream id survives in
      // FusedId — use it for the opaque initialization gate), then the
      // consumer's All conjunction over {last, rest...}.
      BoolExprRef LastF = opF(Step.Args[1], CI.InputOnly);
      if (!St.At0[Step.Args[0]]) {
        LastF = Ctx.conj(LastF, Ctx.atom(AS.opaqueAtom(Step.FusedId)));
        CI.InputOnly = false;
      }
      std::vector<BoolExprRef> Fs{LastF};
      std::vector<BoolExprRef> As{Ctx.falseExpr()};
      for (size_t I = 2; I < Step.Args.size(); ++I) {
        Fs.push_back(opF(Step.Args[I], CI.InputOnly));
        As.push_back(opAt0F(Step.Args[I], CI.InputOnly));
      }
      CI.F = Ctx.conj(Fs);
      CI.At0F = Ctx.conj(As); // a last never fires at 0
      break;
    }
    case Opcode::FusedLiftLift: {
      std::vector<BoolExprRef> Fs, As;
      for (unsigned I = 0; I != Step.NumArgs; ++I) {
        Fs.push_back(opF(Step.Args[I], CI.InputOnly));
        As.push_back(opAt0F(Step.Args[I], CI.InputOnly));
      }
      CI.F = Ctx.conj(Fs);
      CI.At0F = Ctx.conj(As);
      break;
    }
    }

    Out[Id] = CI;
    Done[Id] = 1;
  }
}
