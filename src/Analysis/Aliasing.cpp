//===- Analysis/Aliasing.cpp ------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Aliasing.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace tessla;

namespace {

/// Collects all nodes that reach \p Start in \p Rev (including Start).
std::vector<StreamId> collectReachable(const Adjacency &Adj,
                                       StreamId Start) {
  std::vector<bool> Seen = reachableFrom(Adj, Start);
  std::vector<StreamId> Out;
  for (StreamId V = 0; V != Seen.size(); ++V)
    if (Seen[V])
      Out.push_back(V);
  return Out;
}

/// Detects a cycle within the subgraph of \p Adj induced by \p Region.
bool regionHasCycle(const Adjacency &Adj, const std::vector<bool> &Region) {
  Adjacency Induced(Adj.size());
  for (StreamId U = 0; U != Adj.size(); ++U) {
    if (!Region[U])
      continue;
    for (StreamId V : Adj[U])
      if (Region[V])
        Induced[U].push_back(V);
  }
  return !findCycle(Induced).empty();
}

} // namespace

bool AliasAnalysis::safeOriented(const LastSeq &Long, const LastSeq &Short) {
  if (Long.size() < Short.size() + 1)
    return false;
  // All lasts on the shorter path must be non-replicating: a replicating
  // last could re-emit the value later, letting the longer path's copy
  // catch up (Def. 6, second condition).
  for (StreamId L : Short)
    if (Triggers.isReplicatingLast(L))
      return false;
  // Greedy increasing matching of cut points: for the i-th last of the
  // shorter path find the earliest unused last of the longer path whose
  // events imply it (ev(u_i) subset of ev(v_i)). One last of the longer
  // path must remain after the final match — the extra `last` that keeps
  // the longer path strictly behind.
  size_t J = 0;
  for (size_t I = 0; I != Short.size(); ++I) {
    for (;; ++J) {
      if (J + (Short.size() - I) > Long.size() - 1)
        return false; // not enough lasts left (incl. the trailing one)
      if (Triggers.implies(Long[J], Short[I])) {
        ++J;
        break;
      }
    }
  }
  return true;
}

bool AliasAnalysis::safePair(const LastSeq &A, const LastSeq &B) {
  if (A.size() > B.size())
    return safeOriented(A, B);
  if (B.size() > A.size())
    return safeOriented(B, A);
  // Equal last counts: both paths deliver the common ancestor's value at
  // potentially the same timestamps.
  return false;
}

const AliasAnalysis::Result &AliasAnalysis::compute(StreamId U) {
  auto It = Cache.find(U);
  if (It != Cache.end())
    return It->second;
  Result R;

  const Adjacency &Fwd = G.passLastAdjacency();
  const Adjacency &Rev = G.passLastReverse();

  // Common ancestors are exactly the nodes that reach U via Pass/Last
  // edges (including U itself with the empty path).
  std::vector<StreamId> UpSet = collectReachable(Rev, U);

  // The whole region touched: ancestors plus everything they reach.
  std::vector<bool> Region(G.numNodes(), false);
  for (StreamId C : UpSet)
    for (StreamId V : collectReachable(Fwd, C))
      Region[V] = true;
  for (StreamId C : UpSet)
    Region[C] = true;

  std::set<StreamId> Aliases;
  Aliases.insert(U); // a variable always aliases itself

  if (regionHasCycle(Fwd, Region)) {
    // Recursive hold pattern: looping paths would accumulate unbounded
    // last counts; treat every value-flow-connected node as an alias.
    R.Fallback = true;
    for (StreamId V = 0; V != G.numNodes(); ++V)
      if (Region[V])
        Aliases.insert(V);
    R.Aliases.assign(Aliases.begin(), Aliases.end());
    It = Cache.emplace(U, std::move(R)).first;
    return It->second;
  }

  // Per ancestor: enumerate every path (the region is a DAG, so paths are
  // finite) and record the last-node sequence per reached node.
  for (StreamId C : UpSet) {
    std::unordered_map<StreamId, std::vector<LastSeq>> PathsTo;
    size_t NumPaths = 0;
    bool Overflow = false;

    // DFS carrying the last-sequence of the current path.
    LastSeq CurLasts;
    auto Dfs = [&](auto &&Self, StreamId Node) -> void {
      if (Overflow)
        return;
      if (++NumPaths > MaxPaths) {
        Overflow = true;
        return;
      }
      PathsTo[Node].push_back(CurLasts);
      for (uint32_t EI : G.outEdges(Node)) {
        const UsageEdge &E = G.edge(EI);
        if (E.Kind != EdgeKind::Pass && E.Kind != EdgeKind::Last)
          continue;
        bool IsLast = E.Kind == EdgeKind::Last;
        if (IsLast)
          CurLasts.push_back(E.To);
        Self(Self, E.To);
        if (IsLast)
          CurLasts.pop_back();
      }
    };
    Dfs(Dfs, C);

    if (Overflow) {
      R.Fallback = true;
      for (StreamId V : collectReachable(Fwd, C))
        Aliases.insert(V);
      continue;
    }

    auto PathsToU = PathsTo.find(U);
    if (PathsToU == PathsTo.end())
      continue; // defensive; C reaches U by construction

    for (const auto &[Candidate, CandPaths] : PathsTo) {
      if (Aliases.count(Candidate))
        continue;
      bool Safe = true;
      for (const LastSeq &PU : PathsToU->second) {
        for (const LastSeq &PC : CandPaths) {
          if (!safePair(PU, PC)) {
            Safe = false;
            break;
          }
        }
        if (!Safe)
          break;
      }
      if (!Safe)
        Aliases.insert(Candidate);
    }
  }

  R.Aliases.assign(Aliases.begin(), Aliases.end());
  It = Cache.emplace(U, std::move(R)).first;
  return It->second;
}

const std::vector<StreamId> &AliasAnalysis::potentialAliases(StreamId U) {
  return compute(U).Aliases;
}

bool AliasAnalysis::mayAlias(StreamId A, StreamId B) {
  const std::vector<StreamId> &Aliases = potentialAliases(A);
  return std::binary_search(Aliases.begin(), Aliases.end(), B);
}

bool AliasAnalysis::usedFallback(StreamId U) { return compute(U).Fallback; }
