//===- Analysis/Pipeline.cpp ------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"

using namespace tessla;

AnalysisResult::AnalysisResult(std::shared_ptr<const Spec> Spec_,
                               const MutabilityOptions &Opts)
    : S(std::move(Spec_)), Graph(std::make_unique<UsageGraph>(*S)),
      Triggers(std::make_unique<TriggerAnalysis>(*S)),
      Aliases(std::make_unique<AliasAnalysis>(*Graph, *Triggers)),
      Mutability(computeMutability(*Graph, *Triggers, *Aliases, Opts)) {}

AnalysisResult tessla::analyzeSpec(Spec S, const MutabilityOptions &Opts) {
  return AnalysisResult(std::make_shared<const Spec>(std::move(S)), Opts);
}
