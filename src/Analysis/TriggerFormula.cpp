//===- Analysis/TriggerFormula.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/TriggerFormula.h"

#include <cassert>

using namespace tessla;

TriggerAnalysis::TriggerAnalysis(const Spec &Spec_)
    : S(Spec_), Checker(Ctx) {
  computeInitialized();
  computeFormulas();
}

void TriggerAnalysis::computeInitialized() {
  uint32_t N = S.numStreams();
  Initialized.assign(N, false);
  // Memoized DFS. Recursion only follows non-special edges (last/delay are
  // never initialized at 0), which are acyclic by spec validation; the
  // Visiting state is a defensive guard anyway.
  enum class State : uint8_t { Unvisited, Visiting, Done };
  std::vector<State> States(N, State::Unvisited);

  // Iterative DFS with explicit result computation via recursion-free
  // post-order is overkill here; the natural recursion depth is bounded by
  // the spec's expression depth. Use a small recursive lambda.
  auto Compute = [&](auto &&Self, StreamId Id) -> bool {
    if (States[Id] == State::Done)
      return Initialized[Id];
    if (States[Id] == State::Visiting)
      return false; // defensive: cycles are never initialized
    States[Id] = State::Visiting;
    const StreamDef &D = S.stream(Id);
    bool Result = false;
    switch (D.Kind) {
    case StreamKind::Unit:
    case StreamKind::Const:
      Result = true;
      break;
    case StreamKind::Time:
      Result = Self(Self, D.Args[0]);
      break;
    case StreamKind::Lift: {
      EventSemantics Ev = builtinInfo(D.Fn).Events;
      if (Ev == EventSemantics::All) {
        Result = true;
        for (StreamId A : D.Args)
          Result = Self(Self, A) && Result;
      } else if (Ev == EventSemantics::Any) {
        Result = false;
        for (StreamId A : D.Args)
          Result = Self(Self, A) || Result;
      } else if (Ev == EventSemantics::FirstAndAnyRest) {
        bool AnyRest = false;
        for (size_t I = 1; I != D.Args.size(); ++I)
          AnyRest = Self(Self, D.Args[I]) || AnyRest;
        Result = Self(Self, D.Args[0]) && AnyRest;
      } else {
        Result = false; // value-dependent lifts may drop the event
      }
      break;
    }
    case StreamKind::Input:  // inputs need not start at 0
    case StreamKind::Nil:
    case StreamKind::Last:   // strictly-last: no event at 0
    case StreamKind::Delay:  // delays fire strictly after their reset
      Result = false;
      break;
    }
    Initialized[Id] = Result;
    States[Id] = State::Done;
    return Result;
  };
  for (StreamId Id = 0; Id != N; ++Id)
    Compute(Compute, Id);
}

void TriggerAnalysis::computeFormulas() {
  uint32_t N = S.numStreams();
  constexpr BoolExprRef Unset = ~0u;
  Formulas.assign(N, Unset);

  // Memoized DFS over the (acyclic, see computeInitialized) recursion
  // structure: lift/time arguments and last triggers.
  enum class State : uint8_t { Unvisited, Visiting, Done };
  std::vector<State> States(N, State::Unvisited);

  auto Compute = [&](auto &&Self, StreamId Id) -> BoolExprRef {
    if (States[Id] == State::Done)
      return Formulas[Id];
    if (States[Id] == State::Visiting)
      return Ctx.atom(Id); // defensive: break unexpected cycles as atoms
    States[Id] = State::Visiting;
    const StreamDef &D = S.stream(Id);
    BoolExprRef F = Ctx.falseExpr();
    switch (D.Kind) {
    case StreamKind::Nil:
      F = Ctx.falseExpr();
      break;
    case StreamKind::Time:
      F = Self(Self, D.Args[0]);
      break;
    case StreamKind::Lift: {
      EventSemantics Ev = builtinInfo(D.Fn).Events;
      if (Ev == EventSemantics::Custom) {
        F = Ctx.atom(Id);
        break;
      }
      std::vector<BoolExprRef> Parts;
      for (StreamId A : D.Args)
        Parts.push_back(Self(Self, A));
      if (Ev == EventSemantics::All) {
        F = Ctx.conj(std::move(Parts));
      } else if (Ev == EventSemantics::Any) {
        F = Ctx.disj(std::move(Parts));
      } else {
        assert(Ev == EventSemantics::FirstAndAnyRest);
        std::vector<BoolExprRef> Rest(Parts.begin() + 1, Parts.end());
        F = Ctx.conj(Parts[0], Ctx.disj(std::move(Rest)));
      }
      break;
    }
    case StreamKind::Last:
      // last(v, r) ticks with r — provided v always has a value, i.e. is
      // provably initialized at timestamp 0 (§IV-C).
      F = Initialized[D.Args[0]] ? Self(Self, D.Args[1]) : Ctx.atom(Id);
      break;
    case StreamKind::Input:
    case StreamKind::Unit:
    case StreamKind::Const:
    case StreamKind::Delay:
      F = Ctx.atom(Id);
      break;
    }
    Formulas[Id] = F;
    States[Id] = State::Done;
    return F;
  };
  for (StreamId Id = 0; Id != N; ++Id)
    Compute(Compute, Id);
}

bool TriggerAnalysis::implies(StreamId U, StreamId V) {
  return Checker.implies(Formulas[U], Formulas[V]);
}

bool TriggerAnalysis::isReplicatingLast(StreamId Id) {
  const StreamDef &D = S.stream(Id);
  if (D.Kind != StreamKind::Last)
    return false;
  // Def. 5: replicating iff possibly ev(s) not subset of ev(v); we prove
  // the negation via the formula implication.
  return !implies(Id, D.Args[0]);
}

std::string TriggerAnalysis::formulaString(StreamId Id) const {
  std::vector<std::string> Names;
  Names.reserve(S.numStreams());
  for (const StreamDef &D : S.streams())
    Names.push_back(D.Name);
  return Ctx.str(Formulas[Id], &Names);
}
