//===- Analysis/AbsIntImpl.h - AbsInt internals ----------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Shared state of the abstract-interpretation translation units: the
// per-stream lattice channels the three fixpoint analyses write
// (AbsIntTransfer.cpp), the at-timestamp-0 pass, and the clock-formula
// construction (AbsIntClock.cpp), all orchestrated by
// AnalysisFacts::compute (AbsInt.cpp). Not installed; everything here is
// an implementation detail behind tessla/Analysis/AbsInt.h.
//
//===----------------------------------------------------------------------===//

#ifndef TESSLA_SRC_ANALYSIS_ABSINTIMPL_H
#define TESSLA_SRC_ANALYSIS_ABSINTIMPL_H

#include "tessla/Analysis/AbsInt.h"

namespace tessla {
namespace absint {
namespace detail {

/// The mutable per-stream channels the analyses converge on. Every
/// channel is indexed by StreamId; streams without a program step stay
/// at their bottom (Never / no-known / Bottom / 0-bound).
struct State {
  const Program *P = nullptr;
  const Spec *S = nullptr;
  /// StreamId -> index into P->steps(), or -1 (no step computes it).
  std::vector<int32_t> StepOf;

  std::vector<TickKind> Tick;
  std::vector<uint8_t> HasKnown;
  std::vector<uint8_t> KnownDamaged;
  std::vector<Value> Known;
  std::vector<ValueRange> Range;
  std::vector<SizeBound> Bound;
  std::vector<uint8_t> At0;

  /// Streams whose size bound was widened to unbounded, in widening
  /// order (deduplicated).
  std::vector<StreamId> WidenedUnbounded;
  std::vector<uint8_t> WidenedSeen;

  void init(const Program &Prog);

  TickKind tick(StreamId Id) const { return Tick[Id]; }
  bool never(StreamId Id) const { return Tick[Id] == TickKind::Never; }
  /// Tick set provably within {0}.
  bool atMostUnit(StreamId Id) const { return Tick[Id] <= TickKind::Unit; }
  const Value *known(StreamId Id) const {
    return HasKnown[Id] ? &Known[Id] : nullptr;
  }
  /// Records a freshly computed constant, damaging the channel on
  /// conflict (a damaged stream never regains a constant).
  bool setKnown(StreamId Id, const Value *V);
};

/// Tick lattice + constant propagation (one analysis: the constant
/// channel's merge rules read tick facts of sibling arms, so splitting
/// them would just duplicate the dispatch).
class TickConstAnalysis : public Analysis {
public:
  explicit TickConstAnalysis(State &St) : St(St) {}
  std::string_view name() const override { return "tick-const"; }
  bool transfer(const ProgramStep &Step) override;
  bool widen(const ProgramStep &Step) override { return transfer(Step); }

private:
  State &St;
};

/// Interval/constant range over Int (plus two-point Bool) values.
class RangeAnalysis : public Analysis {
public:
  explicit RangeAnalysis(State &St) : St(St) {}
  std::string_view name() const override { return "range"; }
  bool transfer(const ProgramStep &Step) override;
  bool widen(const ProgramStep &Step) override;

private:
  State &St;
  ValueRange compute(const ProgramStep &Step) const;
};

/// Aggregate element-count bounds.
class BoundAnalysis : public Analysis {
public:
  explicit BoundAnalysis(State &St) : St(St) {}
  std::string_view name() const override { return "size-bound"; }
  bool transfer(const ProgramStep &Step) override;
  bool widen(const ProgramStep &Step) override;
  /// Bounds climb one element per trip around an accumulator cycle until
  /// a queueTrim cap is reached; give them room for real window sizes
  /// before declaring the queue unbounded.
  unsigned widenAfter() const override { return 256; }

private:
  State &St;
  SizeBound compute(const ProgramStep &Step) const;
};

/// Phase 2: the must-fire-at-timestamp-0 bit, as a separate least
/// fixpoint AFTER the over-approximating channels converged — its filter
/// rule reads a condition's final range, and reading a still-growing
/// range from an under-approximating pass would be unsound.
void computeAt0(State &St);

/// Phase 3 result: ev' formulas (t >= 1 and t = 0) per stream.
struct ClockInfo {
  BoolExprRef F = 0;
  BoolExprRef At0F = 0;
  /// Both formulas range over input-stream atoms only (no opaque
  /// filter/delay/uninitialized-last atoms) — the precondition for exact
  /// refutation.
  bool InputOnly = true;
};

/// Atom id spaces inside the shared BoolExprContext. Streams are atoms
/// for t >= 1; the same stream gets an independent atom for t = 0; both
/// spaces have an "opaque" companion for value-dependent behavior.
struct AtomSpace {
  uint32_t N; // numStreams
  uint32_t tickAtom(StreamId Id) const { return Id; }
  uint32_t opaqueAtom(StreamId Id) const { return N + Id; }
  uint32_t tick0Atom(StreamId Id) const { return 2 * N + Id; }
  uint32_t opaque0Atom(StreamId Id) const { return 3 * N + Id; }
};

/// Builds both formulas per stream in one forward pass over the steps
/// (translation order: operands precede their step, except last/delay
/// back edges, which contribute atoms or At0 bits only).
void buildClockFormulas(const State &St, BoolExprContext &Ctx,
                        std::vector<ClockInfo> &Out);

// --- Shared interval helpers (AbsIntTransfer.cpp) ---------------------

/// Range of a lift's result from its arguments' facts; Top when no rule
/// applies. \p Args are the operand stream ids (spec layout).
ValueRange liftRange(const State &St, BuiltinId Fn,
                     const std::vector<StreamId> &Args, size_t ArgBegin,
                     size_t ArgEnd);

/// Best known range of one operand: the range channel refined by an Int
/// or Bool constant from the known channel.
ValueRange operandRange(const State &St, StreamId Id);

} // namespace detail
} // namespace absint
} // namespace tessla

#endif // TESSLA_SRC_ANALYSIS_ABSINTIMPL_H
