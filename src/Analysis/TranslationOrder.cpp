//===- Analysis/TranslationOrder.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/TranslationOrder.h"

using namespace tessla;

std::optional<std::vector<StreamId>> tessla::computeTranslationOrder(
    const UsageGraph &G,
    const std::vector<std::pair<StreamId, StreamId>> &ExtraEdges) {
  Adjacency Adj = G.nonSpecialAdjacency();
  for (auto [From, To] : ExtraEdges)
    Adj[From].push_back(To);
  std::vector<uint32_t> Order;
  if (!topologicalSort(Adj, Order))
    return std::nullopt;
  return Order;
}
