//===- Analysis/AbsInt.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The fixpoint engine and the AnalysisFacts orchestration: phase 1 runs
// the three lattice analyses (tick/constant, range, size bound) to a
// combined worklist fixpoint; phase 2 derives the must-fire-at-0 bits
// from the converged ranges; phase 3 builds the clock-calculus formulas
// in one forward pass. Clock queries go through the SAT-backed
// implication checker with its syntactic fast path.
//
//===----------------------------------------------------------------------===//

#include "AbsIntImpl.h"

#include <deque>

using namespace tessla;
using namespace tessla::absint;
using namespace tessla::absint::detail;

//===----------------------------------------------------------------------===//
// Fixpoint engine
//===----------------------------------------------------------------------===//

size_t absint::runFixpoint(const Program &P,
                           const std::vector<Analysis *> &Analyses) {
  const std::vector<ProgramStep> &Steps = P.steps();
  const uint32_t NumSteps = static_cast<uint32_t>(Steps.size());

  // Stream -> indices of the steps reading it (Args covers every operand
  // layout, including the fused ones, which is all the dependency
  // structure the transfers consult).
  std::vector<std::vector<uint32_t>> Readers(P.numStreams());
  for (uint32_t I = 0; I != NumSteps; ++I)
    for (StreamId A : Steps[I].Args)
      Readers[A].push_back(I);

  std::deque<uint32_t> Work;
  std::vector<uint8_t> InList(NumSteps, 1);
  for (uint32_t I = 0; I != NumSteps; ++I)
    Work.push_back(I); // translation order: operands first

  std::vector<std::vector<uint32_t>> Visits(
      Analyses.size(), std::vector<uint32_t>(NumSteps, 0));
  size_t Transfers = 0;

  while (!Work.empty()) {
    uint32_t I = Work.front();
    Work.pop_front();
    InList[I] = 0;
    bool Changed = false;
    for (size_t AI = 0; AI != Analyses.size(); ++AI) {
      ++Transfers;
      uint32_t V = ++Visits[AI][I];
      Changed |= V > Analyses[AI]->widenAfter()
                     ? Analyses[AI]->widen(Steps[I])
                     : Analyses[AI]->transfer(Steps[I]);
    }
    if (Changed)
      for (uint32_t R : Readers[Steps[I].Id])
        if (!InList[R]) {
          InList[R] = 1;
          Work.push_back(R);
        }
  }
  return Transfers;
}

//===----------------------------------------------------------------------===//
// Compute
//===----------------------------------------------------------------------===//

namespace {

/// Spec-level reachability: does \p From transitively read \p To?
bool reaches(const Spec &S, StreamId From, StreamId To) {
  std::vector<uint8_t> Seen(S.numStreams(), 0);
  std::vector<StreamId> Stack{From};
  while (!Stack.empty()) {
    StreamId Cur = Stack.back();
    Stack.pop_back();
    if (Cur == To)
      return true;
    if (Seen[Cur])
      continue;
    Seen[Cur] = 1;
    for (StreamId A : S.stream(Cur).Args)
      Stack.push_back(A);
  }
  return false;
}

bool findCycleFrom(const Spec &S, StreamId Start, StreamId Cur,
                   std::vector<uint8_t> &Seen,
                   std::vector<StreamId> &Path) {
  for (StreamId A : S.stream(Cur).Args) {
    if (A == Start)
      return true;
    if (Seen[A] || !S.stream(A).Ty.isComplex())
      continue;
    Seen[A] = 1;
    Path.push_back(A);
    if (findCycleFrom(S, Start, A, Seen, Path))
      return true;
    Path.pop_back();
  }
  return false;
}

std::string streamName(const Spec &S, StreamId Id) {
  const std::string &N = S.stream(Id).Name;
  return N.empty() ? "#" + std::to_string(Id) : N;
}

/// The aggregate-typed dependency cycle through \p Id rendered as
/// "a -> b -> a", or just the name when no cycle is found (a bound that
/// widened without a structural cycle, e.g. through unknown functions).
std::string growthCycle(const Spec &S, StreamId Id) {
  std::vector<uint8_t> Seen(S.numStreams(), 0);
  std::vector<StreamId> Path;
  std::string Out = streamName(S, Id);
  if (findCycleFrom(S, Id, Id, Seen, Path)) {
    for (StreamId P : Path)
      Out += " -> " + streamName(S, P);
    Out += " -> " + streamName(S, Id);
  }
  return Out;
}

} // namespace

AnalysisFacts AnalysisFacts::compute(const Program &P) {
  State St;
  St.init(P);

  // Phase 1: the over-approximating channels, combined (they are
  // mutually recursive: a condition's range decides a filter's tick, a
  // trim argument's range caps a queue's bound).
  TickConstAnalysis Tick(St);
  RangeAnalysis Range(St);
  BoundAnalysis Bound(St);
  runFixpoint(P, {&Tick, &Range, &Bound});

  // Phase 2: the must-fire-at-0 proofs, least fixpoint over the final
  // over-approximations.
  computeAt0(St);

  AnalysisFacts F;
  F.S = P.sharedSpec();
  F.Ctx = std::make_unique<BoolExprContext>();

  // Phase 3: clock formulas in one forward pass.
  std::vector<ClockInfo> Clocks;
  buildClockFormulas(St, *F.Ctx, Clocks);
  F.Checker = std::make_unique<ImplicationChecker>(*F.Ctx);

  const uint32_t N = P.numStreams();
  F.Facts.resize(N);
  for (StreamId Id = 0; Id != N; ++Id) {
    StreamFacts &SF = F.Facts[Id];
    SF.Tick = St.Tick[Id];
    SF.At0 = St.At0[Id];
    SF.HasKnown = St.HasKnown[Id];
    SF.KnownDamaged = St.KnownDamaged[Id];
    if (SF.HasKnown)
      SF.Known = St.Known[Id];
    SF.Range = St.Range[Id];
    SF.Bound = St.Bound[Id];
    SF.Clock = Clocks[Id].F;
    SF.At0F = Clocks[Id].At0F;
    SF.InputAtomsOnly = Clocks[Id].InputOnly;
  }

  for (StreamId Id : St.WidenedUnbounded)
    F.Unbounded.push_back({Id, growthCycle(*F.S, Id)});

  for (const DelaySlot &D : P.delays())
    if (reaches(*F.S, D.ResetArg, D.Id) ||
        reaches(*F.S, D.DelaysArg, D.Id))
      F.Facts[D.Id].SelfArming = true;

  return F;
}

//===----------------------------------------------------------------------===//
// Clock queries
//===----------------------------------------------------------------------===//

bool AnalysisFacts::clockSubset(StreamId U, StreamId V) {
  return Checker->implies(Facts[U].Clock, Facts[V].Clock);
}

bool AnalysisFacts::clockSubsetIncl0(StreamId U, StreamId V) {
  return Checker->implies(Facts[U].Clock, Facts[V].Clock) &&
         Checker->implies(Facts[U].At0F, Facts[V].At0F);
}

ClockRel AnalysisFacts::clockRelation(StreamId U, StreamId V) {
  bool Sub = clockSubsetIncl0(U, V);
  bool Sup = clockSubsetIncl0(V, U);
  if (Sub && Sup)
    return ClockRel::Equal;
  if (Sub)
    return ClockRel::Subset;
  if (Sup)
    return ClockRel::Superset;
  return ClockRel::Unknown;
}

bool AnalysisFacts::provablyTicksWithout(StreamId U, StreamId V) {
  // Exactness precondition: over free input atoms every assignment is
  // realized by some trace, so a failed implication is a witness.
  if (!Facts[U].InputAtomsOnly || !Facts[V].InputAtomsOnly)
    return false;
  return !Checker->implies(Facts[U].Clock, Facts[V].Clock);
}

bool AnalysisFacts::clockCoveredBy(StreamId U,
                                   const std::vector<StreamId> &Vs) {
  std::vector<BoolExprRef> Fs, As;
  for (StreamId V : Vs) {
    Fs.push_back(Facts[V].Clock);
    As.push_back(Facts[V].At0F);
  }
  return Checker->implies(Facts[U].Clock, Ctx->disj(Fs)) &&
         Checker->implies(Facts[U].At0F, Ctx->disj(As));
}

uint64_t AnalysisFacts::implicationFastPathHits() const {
  return Checker ? Checker->fastPathHits() : 0;
}

uint64_t AnalysisFacts::implicationSatQueries() const {
  return Checker ? Checker->satQueries() : 0;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> atomNames(const Spec &S) {
  const uint32_t N = S.numStreams();
  std::vector<std::string> Names(4 * N);
  for (StreamId Id = 0; Id != N; ++Id) {
    std::string Base = streamName(S, Id);
    Names[Id] = Base;                    // ticks at t
    Names[N + Id] = Base + "?";          // opaque value gate at t
    Names[2 * N + Id] = Base + "@0";     // ticks at 0
    Names[3 * N + Id] = Base + "?@0";    // opaque value gate at 0
  }
  return Names;
}

const char *tickName(TickKind K) {
  switch (K) {
  case TickKind::Never:
    return "never";
  case TickKind::Unit:
    return "unit";
  case TickKind::Var:
    return "var";
  }
  return "var";
}

} // namespace

std::string AnalysisFacts::formulaString(StreamId Id) const {
  std::vector<std::string> Names = atomNames(*S);
  return Ctx->str(Facts[Id].Clock, &Names);
}

std::string AnalysisFacts::factString(StreamId Id) const {
  const StreamFacts &F = Facts[Id];
  std::string Out = "tick=";
  Out += tickName(F.Tick);
  Out += F.At0 ? ", at0=yes" : ", at0=no";
  if (F.HasKnown)
    Out += ", value=" + F.Known.str();
  if (F.Range.K != ValueRange::Kind::Bottom)
    Out += ", range=" + F.Range.str();
  if (S->stream(Id).Ty.isComplex())
    Out += ", bound " + F.Bound.str();
  Out += ", clock=" + formulaString(Id);
  return Out;
}

std::string AnalysisFacts::str() const {
  std::vector<std::string> Names = atomNames(*S);
  std::string Out = "analysis facts:\n";
  for (StreamId Id = 0; Id != S->numStreams(); ++Id) {
    const StreamFacts &F = Facts[Id];
    Out += "  " + streamName(*S, Id) + ": tick=" + tickName(F.Tick);
    Out += F.At0 ? " at0=yes" : " at0=no";
    if (F.HasKnown)
      Out += " value=" + F.Known.str();
    if (F.Range.K != ValueRange::Kind::Bottom)
      Out += " range=" + F.Range.str();
    if (S->stream(Id).Ty.isComplex())
      Out += " bound " + F.Bound.str();
    Out += " clock=" + Ctx->str(F.Clock, &Names);
    Out += " clock@0=" + Ctx->str(F.At0F, &Names);
    Out += "\n";
  }
  if (Unbounded.empty()) {
    uint64_t Total = 0;
    bool Any = false;
    for (StreamId Id = 0; Id != S->numStreams(); ++Id)
      if (S->stream(Id).Ty.isComplex() && !Facts[Id].Bound.Unbounded) {
        Total += Facts[Id].Bound.Max;
        Any = true;
      }
    bool AnyUnbounded = false;
    for (StreamId Id = 0; Id != S->numStreams(); ++Id)
      AnyUnbounded |= Facts[Id].Bound.Unbounded;
    if (AnyUnbounded)
      Out += "memory: unbounded (no growth cycle; an aggregate input or "
             "extracted aggregate is untracked)\n";
    else if (Any)
      Out += "memory: bounded, <= " + std::to_string(Total) +
             " aggregate elements/session\n";
    else
      Out += "memory: bounded, no aggregate state\n";
  } else {
    for (const UnboundedGrowth &U : Unbounded)
      Out += "memory: unbounded growth at '" + streamName(*S, U.Id) +
             "' (cycle: " + U.Cycle + ")\n";
  }
  return Out;
}
