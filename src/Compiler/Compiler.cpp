//===- Compiler/Compiler.cpp ------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Compiler/Compiler.h"

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Lang/Parser.h"

using namespace tessla;

std::optional<Program> tessla::compileSpec(const Spec &S,
                                           const CompileOptions &Opts,
                                           DiagnosticEngine &Diags,
                                           OptStatistics *Stats) {
  MutabilityOptions MOpts;
  MOpts.Optimize = Opts.Optimize;
  AnalysisResult Analysis = analyzeSpec(S, MOpts);
  Program P = Program::compile(Analysis);
  if (Opts.OptLevel >= 1) {
    opt::OptOptions OOpts;
    OOpts.Level = Opts.OptLevel;
    OOpts.Verify = Opts.Verify;
    if (!opt::optimizeProgram(P, Analysis, OOpts, Diags, Stats))
      return std::nullopt;
  }
  return P;
}

std::optional<Program> tessla::compileSpec(std::string_view Source,
                                           const CompileOptions &Opts,
                                           DiagnosticEngine &Diags,
                                           OptStatistics *Stats) {
  std::optional<Spec> S = parseSpec(Source, Diags);
  if (!S)
    return std::nullopt;
  return compileSpec(*S, Opts, Diags, Stats);
}
