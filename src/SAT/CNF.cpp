//===- SAT/CNF.cpp ----------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/SAT/CNF.h"

#include <cassert>

using namespace tessla;

Lit TseitinEncoder::trueLit() {
  if (TrueVar == 0) {
    TrueVar = Formula.newVar();
    Formula.addUnit(static_cast<Lit>(TrueVar));
  }
  return static_cast<Lit>(TrueVar);
}

uint32_t TseitinEncoder::atomVar(uint32_t AtomId) {
  auto [It, Inserted] = AtomVars.try_emplace(AtomId, 0);
  if (Inserted)
    It->second = Formula.newVar();
  return It->second;
}

Lit TseitinEncoder::encode(BoolExprRef E) {
  auto Cached = NodeLit.find(E);
  if (Cached != NodeLit.end())
    return Cached->second;

  Lit Result = 0;
  switch (Ctx.kind(E)) {
  case BoolExprKind::True:
    Result = trueLit();
    break;
  case BoolExprKind::False:
    Result = -trueLit();
    break;
  case BoolExprKind::Atom:
    Result = static_cast<Lit>(atomVar(Ctx.atomId(E)));
    break;
  case BoolExprKind::And: {
    // n <-> c1 & ... & ck
    std::vector<Lit> Kids;
    for (BoolExprRef C : Ctx.children(E))
      Kids.push_back(encode(C));
    Lit N = static_cast<Lit>(Formula.newVar());
    std::vector<Lit> Long{N};
    for (Lit C : Kids) {
      Formula.addBinary(-N, C);
      Long.push_back(-C);
    }
    Formula.addClause(std::move(Long));
    Result = N;
    break;
  }
  case BoolExprKind::Or: {
    // n <-> c1 | ... | ck
    std::vector<Lit> Kids;
    for (BoolExprRef C : Ctx.children(E))
      Kids.push_back(encode(C));
    Lit N = static_cast<Lit>(Formula.newVar());
    std::vector<Lit> Long{-N};
    for (Lit C : Kids) {
      Formula.addBinary(N, -C);
      Long.push_back(C);
    }
    Formula.addClause(std::move(Long));
    Result = N;
    break;
  }
  }
  NodeLit.emplace(E, Result);
  return Result;
}
