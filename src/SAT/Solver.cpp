//===- SAT/Solver.cpp -------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/SAT/Solver.h"

#include <algorithm>
#include <cassert>

using namespace tessla;

namespace {

/// Internal DPLL state. Literals are remapped to indices 2v / 2v+1
/// (positive / negative) for dense watch lists.
class DPLL {
public:
  explicit DPLL(const CNF &Formula) : NumVars(Formula.NumVars) {
    Assign.assign(NumVars + 1, Unassigned);
    Watches.assign(2 * (NumVars + 1), {});
    Reason.assign(NumVars + 1, false);
    for (const auto &Clause : Formula.Clauses)
      if (!addClause(Clause))
        Contradiction = true;
  }

  SatResult run(std::vector<bool> &Model, uint64_t &Decisions) {
    Decisions = 0;
    if (Contradiction)
      return SatResult::Unsat;
    if (!propagate())
      return SatResult::Unsat;
    for (;;) {
      uint32_t Var = pickBranchVar();
      if (Var == 0) {
        Model.assign(NumVars + 1, false);
        for (uint32_t V = 1; V <= NumVars; ++V)
          Model[V] = Assign[V] == TrueVal;
        return SatResult::Sat;
      }
      ++Decisions;
      DecisionStack.push_back(Trail.size());
      // Try false first: CNFs from positive-formula implications are
      // falsification searches, where sparse assignments succeed quickly.
      enqueue(-static_cast<Lit>(Var));
      while (!propagate()) {
        // Backtrack: flip the most recent decision still untried.
        if (!backtrack())
          return SatResult::Unsat;
      }
    }
  }

private:
  static constexpr int8_t Unassigned = 0, TrueVal = 1, FalseVal = -1;

  struct ClauseData {
    std::vector<Lit> Lits; // Lits[0], Lits[1] are the watched literals
  };

  uint32_t NumVars;
  bool Contradiction = false;
  std::vector<ClauseData> Clauses;
  std::vector<int8_t> Assign;
  // Watches[litIndex] lists clauses watching that literal.
  std::vector<std::vector<uint32_t>> Watches;
  // Trail of assigned literals (in assignment order).
  std::vector<Lit> Trail;
  size_t PropHead = 0;
  // Trail positions where decisions were made.
  std::vector<size_t> DecisionStack;
  // FlippedAtLevel[i] == true if decision i has already been flipped.
  std::vector<bool> Flipped;
  // Reason[v] unused placeholder kept for symmetry (no learning).
  std::vector<bool> Reason;

  static uint32_t litIndex(Lit L) {
    uint32_t V = static_cast<uint32_t>(L > 0 ? L : -L);
    return 2 * V + (L < 0 ? 1 : 0);
  }

  int8_t value(Lit L) const {
    int8_t A = Assign[L > 0 ? L : -L];
    return L > 0 ? A : static_cast<int8_t>(-A);
  }

  bool addClause(const std::vector<Lit> &In) {
    // Simplify: drop duplicate literals; a clause with l and -l is true.
    std::vector<Lit> Lits(In);
    std::sort(Lits.begin(), Lits.end(),
              [](Lit A, Lit B) { return std::abs(A) < std::abs(B) ||
                                        (std::abs(A) == std::abs(B) && A < B); });
    Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
    for (size_t I = 0; I + 1 < Lits.size(); ++I)
      if (Lits[I] == -Lits[I + 1])
        return true; // tautological clause
    if (Lits.empty())
      return false;
    if (Lits.size() == 1) {
      if (value(Lits[0]) == FalseVal)
        return false;
      if (value(Lits[0]) == Unassigned)
        enqueue(Lits[0]);
      return true;
    }
    uint32_t Idx = static_cast<uint32_t>(Clauses.size());
    Clauses.push_back({std::move(Lits)});
    Watches[litIndex(Clauses[Idx].Lits[0])].push_back(Idx);
    Watches[litIndex(Clauses[Idx].Lits[1])].push_back(Idx);
    return true;
  }

  void enqueue(Lit L) {
    assert(value(L) == Unassigned && "enqueueing assigned literal");
    Assign[L > 0 ? L : -L] = L > 0 ? TrueVal : FalseVal;
    Trail.push_back(L);
  }

  /// Unit propagation. Returns false on conflict.
  bool propagate() {
    while (PropHead < Trail.size()) {
      Lit Assigned = Trail[PropHead++];
      // Clauses watching the falsified literal -Assigned must be visited.
      uint32_t WatchIdx = litIndex(-Assigned);
      std::vector<uint32_t> &WatchList = Watches[WatchIdx];
      size_t Keep = 0;
      bool Conflict = false;
      for (size_t I = 0; I != WatchList.size(); ++I) {
        uint32_t CI = WatchList[I];
        ClauseData &C = Clauses[CI];
        // Normalize so that Lits[0] is the falsified watch.
        if (litIndex(C.Lits[0]) != WatchIdx)
          std::swap(C.Lits[0], C.Lits[1]);
        if (value(C.Lits[1]) == TrueVal) {
          WatchList[Keep++] = CI;
          continue;
        }
        // Search a replacement watch.
        bool Replaced = false;
        for (size_t K = 2; K != C.Lits.size(); ++K) {
          if (value(C.Lits[K]) != FalseVal) {
            std::swap(C.Lits[0], C.Lits[K]);
            Watches[litIndex(C.Lits[0])].push_back(CI);
            Replaced = true;
            break;
          }
        }
        if (Replaced)
          continue;
        // Clause is unit or conflicting.
        WatchList[Keep++] = CI;
        if (value(C.Lits[1]) == FalseVal) {
          // Conflict: keep remaining watches and bail out.
          for (size_t K = I + 1; K != WatchList.size(); ++K)
            WatchList[Keep++] = WatchList[K];
          Conflict = true;
          break;
        }
        enqueue(C.Lits[1]);
      }
      WatchList.resize(Keep);
      if (Conflict)
        return false;
    }
    return true;
  }

  uint32_t pickBranchVar() const {
    for (uint32_t V = 1; V <= NumVars; ++V)
      if (Assign[V] == Unassigned)
        return V;
    return 0;
  }

  /// Undoes to the most recent unflipped decision and flips it.
  /// Returns false if no decision remains (UNSAT).
  bool backtrack() {
    while (!DecisionStack.empty()) {
      size_t Mark = DecisionStack.back();
      bool WasFlipped =
          Flipped.size() >= DecisionStack.size() &&
          Flipped[DecisionStack.size() - 1];
      Lit Decision = Trail[Mark];
      // Undo assignments above (and including) the decision.
      while (Trail.size() > Mark) {
        Lit L = Trail.back();
        Trail.pop_back();
        Assign[L > 0 ? L : -L] = Unassigned;
      }
      PropHead = Trail.size();
      if (!WasFlipped) {
        if (Flipped.size() < DecisionStack.size())
          Flipped.resize(DecisionStack.size(), false);
        Flipped[DecisionStack.size() - 1] = true;
        enqueue(-Decision);
        return true;
      }
      Flipped.resize(DecisionStack.size() - 1);
      DecisionStack.pop_back();
    }
    return false;
  }
};

} // namespace

SatResult SatSolver::solve(const CNF &Formula) {
  DPLL Engine(Formula);
  return Engine.run(Model, Decisions);
}

std::optional<bool> ImplicationChecker::syntacticCheck(BoolExprRef F,
                                                       BoolExprRef G) const {
  if (F == G)
    return true;
  if (F == Ctx.falseExpr() || G == Ctx.trueExpr())
    return true;
  // Positive formulas: only the constant true is a tautology, and only the
  // constant false is unsatisfiable (all-false falsifies, all-true
  // satisfies everything else).
  if (F == Ctx.trueExpr())
    return G == Ctx.trueExpr();
  if (G == Ctx.falseExpr())
    return F == Ctx.falseExpr();
  // F -> G1 & ... & Gk  needs all conjuncts; F1 | ... | Fk -> G needs all
  // disjuncts; both are handled by SAT. Cheap hit: G is a disjunction
  // containing F as a child.
  if (Ctx.kind(G) == BoolExprKind::Or) {
    const auto &Kids = Ctx.children(G);
    if (std::find(Kids.begin(), Kids.end(), F) != Kids.end())
      return true;
  }
  // F is a conjunction containing G as a child.
  if (Ctx.kind(F) == BoolExprKind::And) {
    const auto &Kids = Ctx.children(F);
    if (std::find(Kids.begin(), Kids.end(), G) != Kids.end())
      return true;
  }
  return std::nullopt;
}

bool ImplicationChecker::implies(BoolExprRef F, BoolExprRef G) {
  uint64_t Key = (static_cast<uint64_t>(F) << 32) | G;
  auto Cached = Cache.find(Key);
  if (Cached != Cache.end())
    return Cached->second;

  bool Result;
  if (std::optional<bool> Fast = syntacticCheck(F, G)) {
    ++FastHits;
    Result = *Fast;
  } else {
    ++SatQueries;
    TseitinEncoder Enc(Ctx);
    Lit LF = Enc.encode(F);
    Lit LG = Enc.encode(G);
    Enc.cnf().addUnit(LF);
    Enc.cnf().addUnit(-LG);
    SatSolver Solver;
    Result = Solver.solve(Enc.cnf()) == SatResult::Unsat;
  }
  Cache.emplace(Key, Result);
  return Result;
}
