//===- SAT/BoolExpr.cpp -----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/SAT/BoolExpr.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

using namespace tessla;

BoolExprContext::BoolExprContext() {
  Nodes.push_back({BoolExprKind::False, 0, {}});
  Nodes.push_back({BoolExprKind::True, 0, {}});
}

BoolExprRef BoolExprContext::atom(uint32_t AtomId) {
  auto [It, Inserted] = AtomCache.try_emplace(AtomId, 0);
  if (Inserted) {
    It->second = static_cast<BoolExprRef>(Nodes.size());
    Nodes.push_back({BoolExprKind::Atom, AtomId, {}});
  }
  return It->second;
}

uint32_t BoolExprContext::atomId(BoolExprRef E) const {
  assert(Nodes[E].Kind == BoolExprKind::Atom && "not an atom");
  return Nodes[E].AtomId;
}

const std::vector<BoolExprRef> &
BoolExprContext::children(BoolExprRef E) const {
  assert((Nodes[E].Kind == BoolExprKind::And ||
          Nodes[E].Kind == BoolExprKind::Or) &&
         "not an and/or node");
  return Nodes[E].Kids;
}

BoolExprRef
BoolExprContext::internNary(BoolExprKind K,
                            std::vector<BoolExprRef> Children) {
  std::sort(Children.begin(), Children.end());
  Children.erase(std::unique(Children.begin(), Children.end()),
                 Children.end());
  if (Children.size() == 1)
    return Children.front();

  std::string Key;
  Key.reserve(1 + Children.size() * sizeof(BoolExprRef));
  Key.push_back(static_cast<char>(K));
  Key.append(reinterpret_cast<const char *>(Children.data()),
             Children.size() * sizeof(BoolExprRef));
  auto [It, Inserted] = NaryCache.try_emplace(std::move(Key), 0);
  if (Inserted) {
    It->second = static_cast<BoolExprRef>(Nodes.size());
    Nodes.push_back({K, 0, std::move(Children)});
  }
  return It->second;
}

BoolExprRef BoolExprContext::conj(std::vector<BoolExprRef> Children) {
  std::vector<BoolExprRef> Flat;
  for (BoolExprRef C : Children) {
    if (C == FalseRef)
      return FalseRef;
    if (C == TrueRef)
      continue;
    if (Nodes[C].Kind == BoolExprKind::And) {
      Flat.insert(Flat.end(), Nodes[C].Kids.begin(), Nodes[C].Kids.end());
      continue;
    }
    Flat.push_back(C);
  }
  if (Flat.empty())
    return TrueRef;
  return internNary(BoolExprKind::And, std::move(Flat));
}

BoolExprRef BoolExprContext::disj(std::vector<BoolExprRef> Children) {
  std::vector<BoolExprRef> Flat;
  for (BoolExprRef C : Children) {
    if (C == TrueRef)
      return TrueRef;
    if (C == FalseRef)
      continue;
    if (Nodes[C].Kind == BoolExprKind::Or) {
      Flat.insert(Flat.end(), Nodes[C].Kids.begin(), Nodes[C].Kids.end());
      continue;
    }
    Flat.push_back(C);
  }
  if (Flat.empty())
    return FalseRef;
  return internNary(BoolExprKind::Or, std::move(Flat));
}

bool BoolExprContext::evaluate(BoolExprRef E,
                               const std::vector<bool> &Assignment) const {
  switch (Nodes[E].Kind) {
  case BoolExprKind::False:
    return false;
  case BoolExprKind::True:
    return true;
  case BoolExprKind::Atom: {
    uint32_t Id = Nodes[E].AtomId;
    return Id < Assignment.size() && Assignment[Id];
  }
  case BoolExprKind::And:
    for (BoolExprRef C : Nodes[E].Kids)
      if (!evaluate(C, Assignment))
        return false;
    return true;
  case BoolExprKind::Or:
    for (BoolExprRef C : Nodes[E].Kids)
      if (evaluate(C, Assignment))
        return true;
    return false;
  }
  return false;
}

std::vector<uint32_t> BoolExprContext::atoms(BoolExprRef E) const {
  std::unordered_set<BoolExprRef> Seen;
  std::vector<BoolExprRef> Worklist{E};
  std::vector<uint32_t> Out;
  while (!Worklist.empty()) {
    BoolExprRef Cur = Worklist.back();
    Worklist.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    const Node &N = Nodes[Cur];
    if (N.Kind == BoolExprKind::Atom)
      Out.push_back(N.AtomId);
    else
      for (BoolExprRef C : N.Kids)
        Worklist.push_back(C);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

size_t BoolExprContext::dagSize(BoolExprRef E) const {
  std::unordered_set<BoolExprRef> Seen;
  std::vector<BoolExprRef> Worklist{E};
  while (!Worklist.empty()) {
    BoolExprRef Cur = Worklist.back();
    Worklist.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    for (BoolExprRef C : Nodes[Cur].Kids)
      Worklist.push_back(C);
  }
  return Seen.size();
}

std::string
BoolExprContext::str(BoolExprRef E,
                     const std::vector<std::string> *AtomNames) const {
  const Node &N = Nodes[E];
  switch (N.Kind) {
  case BoolExprKind::False:
    return "false";
  case BoolExprKind::True:
    return "true";
  case BoolExprKind::Atom:
    if (AtomNames && N.AtomId < AtomNames->size())
      return (*AtomNames)[N.AtomId];
    return "a" + std::to_string(N.AtomId);
  case BoolExprKind::And:
  case BoolExprKind::Or: {
    const char *Op = N.Kind == BoolExprKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      if (I != 0)
        Out += Op;
      Out += str(N.Kids[I], AtomNames);
    }
    Out += ")";
    return Out;
  }
  }
  return "?";
}
