//===- Program/Verify.cpp ---------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The Program IR verifier: checks every invariant the interpreter and the
// C++ emitter rely on, so a buggy rewrite aborts compilation with a
// diagnostic instead of producing a monitor that silently diverges — and
// a corrupted or hand-crafted bundle fails loading instead of executing.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/Verify.h"

using namespace tessla;
using namespace tessla::opt;

namespace {

class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags)
      : P(P), S(P.spec()), Diags(Diags) {}

  bool run() {
    std::vector<bool> DstSeen(P.numValueSlots(), false);
    std::vector<bool> HasStep(S.numStreams(), false);
    for (const ProgramStep &Step : P.steps()) {
      if (Step.Id >= S.numStreams()) {
        fail(Step, "step stream id out of range");
        continue;
      }
      if (HasStep[Step.Id])
        fail(Step, "stream has more than one step");
      HasStep[Step.Id] = true;
      checkShape(Step);
      checkSlots(Step);
      checkDispatch(Step);
      checkAux(Step);
      if (Step.Op != Opcode::Skip) {
        if (Step.Dst >= P.numValueSlots())
          fail(Step, "non-skip step writes the dead slot");
        else if (DstSeen[Step.Dst])
          fail(Step, "two steps write one value slot");
        else
          DstSeen[Step.Dst] = true;
        if (Step.Dst != P.valueSlot(Step.Id))
          fail(Step, "destination disagrees with the stream's value slot");
      }
    }
    for (const OutputSlot &O : P.outputs())
      if (O.Id >= S.numStreams() || O.ValueSlot != P.valueSlot(O.Id))
        Diags.error("verify: output slot of '" + name(O.Id) +
                    "' disagrees with the stream's value slot");
    for (const LastSlot &L : P.lastSlots())
      if (L.Source >= S.numStreams() || L.ValueSlot != P.valueSlot(L.Source))
        Diags.error("verify: last slot of '" + name(L.Source) +
                    "' disagrees with the source's value slot");
    return Ok;
  }

private:
  const Program &P;
  const Spec &S;
  DiagnosticEngine &Diags;
  bool Ok = true;

  std::string name(StreamId Id) const {
    return Id < S.numStreams() ? S.stream(Id).Name : "<invalid>";
  }

  void fail(const ProgramStep &Step, const char *Msg) {
    Diags.error("verify: step '" + name(Step.Id) + "': " + Msg);
    Ok = false;
  }

  void checkShape(const ProgramStep &Step) {
    if (Step.NumArgs > 3)
      fail(Step, "more than three argument slots");
    size_t WantArgs = Step.NumArgs;
    if (Step.Op == Opcode::FusedLastLift)
      WantArgs = static_cast<size_t>(Step.NumArgs) + 1;
    if (Step.Args.size() != WantArgs)
      fail(Step, "argument list does not match the slot count");
    for (StreamId A : Step.Args)
      if (A >= S.numStreams()) {
        fail(Step, "argument stream id out of range");
        return;
      }
    if (Step.Op == Opcode::ConstTick && Step.NumArgs != 1)
      fail(Step, "const-tick must have exactly one trigger argument");
    if (Step.Op == Opcode::FusedLiftLift &&
        (Step.FusedArity < 1 || Step.FusedArity > Step.NumArgs))
      fail(Step, "fused producer arity out of range");
  }

  void checkSlots(const ProgramStep &Step) {
    if (Step.Args.size() != (Step.Op == Opcode::FusedLastLift
                                 ? static_cast<size_t>(Step.NumArgs) + 1
                                 : static_cast<size_t>(Step.NumArgs)))
      return; // shape error already reported
    for (unsigned I = 0; I != Step.NumArgs; ++I) {
      if (Step.ArgSlot[I] > P.numValueSlots()) {
        fail(Step, "argument slot out of range");
        return;
      }
      // ArgSlot[I] must gather the value slot of the stream it stands
      // for; FusedLastLift shifts Args by one (Args[0] is the fused
      // last's value stream, read through the last slot instead).
      StreamId A = Step.Op == Opcode::FusedLastLift ? Step.Args[I + 1]
                                                    : Step.Args[I];
      if (A < S.numStreams() && Step.ArgSlot[I] != P.valueSlot(A))
        fail(Step, "argument slot disagrees with the stream's value slot");
    }
  }

  void checkDispatch(const ProgramStep &Step) {
    switch (Step.Op) {
    case Opcode::LiftAll:
    case Opcode::LiftFirstRest:
    case Opcode::FusedLastLift:
      if (!Step.Impl)
        fail(Step, "lift step without a resolved evaluator");
      break;
    case Opcode::FusedLiftLift:
      if (!Step.Impl)
        fail(Step, "fused step without a resolved consumer evaluator");
      if (!Step.Impl2)
        fail(Step, "fused step without a resolved producer evaluator");
      break;
    default:
      break;
    }
  }

  void checkAux(const ProgramStep &Step) {
    switch (Step.Op) {
    case Opcode::Last:
    case Opcode::FusedLastLift: {
      if (Step.Aux >= P.lastSlots().size()) {
        fail(Step, "last slot index out of range");
        return;
      }
      if (Step.Args.empty() ||
          P.lastSlots()[Step.Aux].Source != Step.Args[0])
        fail(Step, "last slot does not track the step's value stream");
      break;
    }
    case Opcode::Delay: {
      if (Step.Aux >= P.delays().size()) {
        fail(Step, "delay slot index out of range");
        return;
      }
      const DelaySlot &D = P.delays()[Step.Aux];
      if (D.Id != Step.Id)
        fail(Step, "delay slot belongs to another stream");
      else if (Step.Args.size() == 2 &&
               (D.ValueSlot != P.valueSlot(Step.Id) ||
                D.DelaysSlot != P.valueSlot(Step.Args[0]) ||
                D.ResetSlot != P.valueSlot(Step.Args[1])))
        fail(Step, "delay slot operands disagree with the value slots");
      break;
    }
    default:
      break;
    }
  }
};

} // namespace

bool opt::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  return Verifier(P, Diags).run();
}
