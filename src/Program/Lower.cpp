//===- Program/Lower.cpp ----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The analysis→IR lowering (Program::compile). This lives apart from the
// Program data structure on purpose: it is the only part of the IR layer
// that needs the frontend's analysis results, so it sits in its own
// library (tessla_lower) and deployment targets that execute serialized
// bundles (tools/tessla-run) never link it.
//
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Program/Program.h"

#include <cassert>
#include <limits>

using namespace tessla;

Program Program::compile(const AnalysisResult &Analysis) {
  Program P;
  P.S = Analysis.sharedSpec();
  const Spec &S = *P.S;

  const MutabilityResult &Mut = Analysis.mutability();
  assert(Mut.Order.size() == S.numStreams() &&
         "analysis order must cover all streams");
  assert(S.numStreams() <
             std::numeric_limits<SlotId>::max() &&
         "slot ids are 16-bit");
  P.Mutable.assign(Mut.Mutable.begin(), Mut.Mutable.end());

  // --- Dense value slots: every event-carrying stream gets one; all nil
  // streams share the dead slot NumValueSlots, which no step writes. ---
  P.ValueSlots.assign(S.numStreams(), 0);
  SlotId Next = 0;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Kind != StreamKind::Nil)
      P.ValueSlots[Id] = Next++;
  P.NumValueSlots = Next;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Kind == StreamKind::Nil)
      P.ValueSlots[Id] = P.NumValueSlots;

  // --- Dense last/delay slots and outputs, in definition order. ---
  std::vector<SlotId> LastIndex(S.numStreams(), 0);
  std::vector<SlotId> DelayIndex(S.numStreams(), 0);
  std::vector<bool> NeedsLast(S.numStreams(), false);
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    if (D.Kind == StreamKind::Last)
      NeedsLast[D.Args[0]] = true;
    if (D.Kind == StreamKind::Delay) {
      DelayIndex[Id] = static_cast<SlotId>(P.Delays.size());
      P.Delays.push_back({Id, D.Args[0], D.Args[1], P.ValueSlots[Id],
                          P.ValueSlots[D.Args[0]],
                          P.ValueSlots[D.Args[1]]});
    }
    if (D.IsOutput)
      P.Outputs.push_back({Id, P.ValueSlots[Id]});
  }
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (NeedsLast[Id]) {
      LastIndex[Id] = static_cast<SlotId>(P.LastSlots.size());
      P.LastSlots.push_back({Id, P.ValueSlots[Id]});
    }

  // --- Lowered steps in translation order, with dispatch pre-resolved. ---
  for (StreamId Id : Mut.Order) {
    const StreamDef &D = S.stream(Id);
    ProgramStep Step;
    Step.Id = Id;
    Step.Kind = D.Kind;
    Step.Args = D.Args;
    Step.InPlace = Mut.Mutable[Id];
    Step.Dst = P.ValueSlots[Id];
    assert(D.Args.size() <= 3 && "builtin arity is at most 3");
    Step.NumArgs = static_cast<uint8_t>(D.Args.size());
    for (unsigned I = 0; I != Step.NumArgs; ++I)
      Step.ArgSlot[I] = P.ValueSlots[D.Args[I]];
    switch (D.Kind) {
    case StreamKind::Input:
    case StreamKind::Nil:
      Step.Op = Opcode::Skip;
      break;
    case StreamKind::Unit:
      Step.Op = Opcode::Const;
      Step.ConstVal = Value::unit();
      break;
    case StreamKind::Const:
      Step.Op = Opcode::Const;
      Step.ConstVal = Value::fromLiteral(D.Literal);
      break;
    case StreamKind::Time:
      Step.Op = Opcode::Time;
      break;
    case StreamKind::Last:
      Step.Op = Opcode::Last;
      Step.Aux = LastIndex[D.Args[0]];
      break;
    case StreamKind::Delay:
      Step.Op = Opcode::Delay;
      Step.Aux = DelayIndex[Id];
      break;
    case StreamKind::Lift:
      Step.Fn = D.Fn;
      switch (builtinInfo(D.Fn).Events) {
      case EventSemantics::All:
        Step.Op = Opcode::LiftAll;
        Step.Impl = builtinImpl(D.Fn);
        break;
      case EventSemantics::Any:
        Step.Op = Opcode::LiftMerge;
        break;
      case EventSemantics::FirstAndAnyRest:
        Step.Op = Opcode::LiftFirstRest;
        Step.Impl = builtinImpl(D.Fn);
        break;
      case EventSemantics::Custom:
        Step.Op = Opcode::LiftFilter;
        break;
      }
      break;
    }
    P.Steps.push_back(std::move(Step));
  }
  return P;
}
