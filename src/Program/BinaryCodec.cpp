//===- Program/BinaryCodec.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/BinaryCodec.h"

#include "tessla/Runtime/Containers.h"
#include "tessla/Support/Format.h"

#include <algorithm>

using namespace tessla;
using namespace tessla::bc;

std::string bc::fourCCName(uint32_t T) {
  std::string S(4, '?');
  for (unsigned I = 0; I != 4; ++I) {
    char C = static_cast<char>((T >> (8 * I)) & 0xFF);
    S[I] = (C >= 32 && C < 127) ? C : '?';
  }
  return S;
}

void bc::writeValue(ByteWriter &W, const Value &V, ValueEncodeShare *Share) {
  // Pre-order dedup: register the payload *before* encoding its elements
  // so encoder and decoder assign identical indices to nested aggregates.
  if (Share && V.isAggregate()) {
    auto [It, Inserted] = Share->Index.try_emplace(
        V.aggregateIdentity(), static_cast<uint32_t>(Share->Index.size()));
    if (!Inserted) {
      W.u8(ValueBackRefTag);
      W.u32(It->second);
      return;
    }
  }
  W.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::Unit:
    break;
  case Value::Kind::Bool:
    W.u8(V.getBool() ? 1 : 0);
    break;
  case Value::Kind::Int:
    W.i64(V.getInt());
    break;
  case Value::Kind::Float:
    W.f64(V.getFloat());
    break;
  case Value::Kind::String:
    W.str(V.getString());
    break;
  case Value::Kind::Set: {
    std::vector<Value> Items = V.asSet().items();
    std::sort(Items.begin(), Items.end(), [](const Value &A, const Value &B) {
      return compareValues(A, B) < 0;
    });
    W.u32(static_cast<uint32_t>(Items.size()));
    for (const Value &E : Items)
      writeValue(W, E, Share);
    break;
  }
  case Value::Kind::Map: {
    std::vector<std::pair<Value, Value>> Items = V.asMap().items();
    std::sort(Items.begin(), Items.end(),
              [](const auto &A, const auto &B) {
                return compareValues(A.first, B.first) < 0;
              });
    W.u32(static_cast<uint32_t>(Items.size()));
    for (const auto &[K, Val] : Items) {
      writeValue(W, K, Share);
      writeValue(W, Val, Share);
    }
    break;
  }
  case Value::Kind::Queue: {
    std::vector<Value> Items = V.asQueue().items(); // front-first
    W.u32(static_cast<uint32_t>(Items.size()));
    for (const Value &E : Items)
      writeValue(W, E, Share);
    break;
  }
  }
}

namespace {

bool readAggregateCount(ByteReader &R, DecodeContext &Ctx, uint32_t &Count) {
  Count = R.u32();
  if (R.failed() || Count > R.remaining()) {
    Ctx.fail("aggregate element count exceeds the remaining payload");
    return false;
  }
  return true;
}

} // namespace

namespace {

/// Reserves the pre-order share slot for an aggregate about to be
/// decoded; returns its index (or SIZE_MAX without sharing). The slot
/// holds unit until the aggregate is complete, so an in-flight (cyclic)
/// back-reference is detectable.
size_t reserveShareSlot(ValueDecodeShare *Share) {
  if (!Share)
    return SIZE_MAX;
  Share->Values.push_back(Value::unit());
  return Share->Values.size() - 1;
}

void fillShareSlot(ValueDecodeShare *Share, size_t Slot, const Value &V) {
  if (Share)
    Share->Values[Slot] = V;
}

} // namespace

Value bc::readValue(ByteReader &R, DecodeContext &Ctx, unsigned Depth,
                    ValueDecodeShare *Share) {
  if (Depth > MaxNesting) {
    Ctx.fail("value nesting exceeds the format limit");
    return Value::unit();
  }
  uint8_t Kind = R.u8();
  if (R.failed() || !Ctx.Ok) {
    Ctx.fail("truncated value");
    return Value::unit();
  }
  if (Kind == ValueBackRefTag) {
    if (!Share) {
      Ctx.fail("value back-reference outside a shared encoding");
      return Value::unit();
    }
    uint32_t Idx = R.u32();
    if (R.failed() || Idx >= Share->Values.size()) {
      Ctx.fail("value back-reference out of range");
      return Value::unit();
    }
    if (!Share->Values[Idx].isAggregate()) {
      Ctx.fail("value back-reference into an incomplete aggregate");
      return Value::unit();
    }
    return Share->Values[Idx];
  }
  switch (static_cast<Value::Kind>(Kind)) {
  case Value::Kind::Unit:
    return Value::unit();
  case Value::Kind::Bool:
    return Value::boolean(R.u8() != 0);
  case Value::Kind::Int:
    return Value::integer(R.i64());
  case Value::Kind::Float:
    return Value::floating(R.f64());
  case Value::Kind::String:
    return Value::string(R.str());
  case Value::Kind::Set: {
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    size_t Slot = reserveShareSlot(Share);
    SetCow D = Value::emptySet().setCow(true);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I)
      D.add(readValue(R, Ctx, Depth + 1, Share));
    Value Out = std::move(D).finish();
    fillShareSlot(Share, Slot, Out);
    return Out;
  }
  case Value::Kind::Map: {
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    size_t Slot = reserveShareSlot(Share);
    MapCow D = Value::emptyMap().mapCow(true);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I) {
      Value K = readValue(R, Ctx, Depth + 1, Share);
      Value V = readValue(R, Ctx, Depth + 1, Share);
      D.put(std::move(K), std::move(V));
    }
    Value Out = std::move(D).finish();
    fillShareSlot(Share, Slot, Out);
    return Out;
  }
  case Value::Kind::Queue: {
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    size_t Slot = reserveShareSlot(Share);
    QueueCow D = Value::emptyQueue().queueCow(true);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I)
      D.enqueue(readValue(R, Ctx, Depth + 1, Share));
    Value Out = std::move(D).finish();
    fillShareSlot(Share, Slot, Out);
    return Out;
  }
  }
  Ctx.fail(formatString("unknown value kind %u", Kind));
  return Value::unit();
}
