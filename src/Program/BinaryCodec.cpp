//===- Program/BinaryCodec.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/BinaryCodec.h"

#include "tessla/Runtime/Containers.h"
#include "tessla/Support/Format.h"

#include <algorithm>

using namespace tessla;
using namespace tessla::bc;

std::string bc::fourCCName(uint32_t T) {
  std::string S(4, '?');
  for (unsigned I = 0; I != 4; ++I) {
    char C = static_cast<char>((T >> (8 * I)) & 0xFF);
    S[I] = (C >= 32 && C < 127) ? C : '?';
  }
  return S;
}

namespace {

template <typename Items>
void writeSortedValues(ByteWriter &W, Items SortedItems) {
  W.u32(static_cast<uint32_t>(SortedItems.size()));
  for (const Value &V : SortedItems)
    bc::writeValue(W, V);
}

} // namespace

void bc::writeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::Unit:
    break;
  case Value::Kind::Bool:
    W.u8(V.getBool() ? 1 : 0);
    break;
  case Value::Kind::Int:
    W.i64(V.getInt());
    break;
  case Value::Kind::Float:
    W.f64(V.getFloat());
    break;
  case Value::Kind::String:
    W.str(V.getString());
    break;
  case Value::Kind::Set: {
    const SetData &D = *V.getSet();
    W.u8(D.IsMutable ? 1 : 0);
    std::vector<Value> Items = D.items();
    std::sort(Items.begin(), Items.end(), [](const Value &A, const Value &B) {
      return compareValues(A, B) < 0;
    });
    writeSortedValues(W, std::move(Items));
    break;
  }
  case Value::Kind::Map: {
    const MapData &D = *V.getMap();
    W.u8(D.IsMutable ? 1 : 0);
    std::vector<std::pair<Value, Value>> Items = D.items();
    std::sort(Items.begin(), Items.end(),
              [](const auto &A, const auto &B) {
                return compareValues(A.first, B.first) < 0;
              });
    W.u32(static_cast<uint32_t>(Items.size()));
    for (const auto &[K, Val] : Items) {
      writeValue(W, K);
      writeValue(W, Val);
    }
    break;
  }
  case Value::Kind::Queue: {
    const QueueData &D = *V.getQueue();
    W.u8(D.IsMutable ? 1 : 0);
    writeSortedValues(W, D.items()); // front-first, already canonical
    break;
  }
  }
}

namespace {

bool readAggregateCount(ByteReader &R, DecodeContext &Ctx, uint32_t &Count) {
  Count = R.u32();
  if (R.failed() || Count > R.remaining()) {
    Ctx.fail("aggregate element count exceeds the remaining payload");
    return false;
  }
  return true;
}

} // namespace

Value bc::readValue(ByteReader &R, DecodeContext &Ctx, unsigned Depth) {
  if (Depth > MaxNesting) {
    Ctx.fail("value nesting exceeds the format limit");
    return Value::unit();
  }
  uint8_t Kind = R.u8();
  if (R.failed() || !Ctx.Ok) {
    Ctx.fail("truncated value");
    return Value::unit();
  }
  switch (static_cast<Value::Kind>(Kind)) {
  case Value::Kind::Unit:
    return Value::unit();
  case Value::Kind::Bool:
    return Value::boolean(R.u8() != 0);
  case Value::Kind::Int:
    return Value::integer(R.i64());
  case Value::Kind::Float:
    return Value::floating(R.f64());
  case Value::Kind::String:
    return Value::string(R.str());
  case Value::Kind::Set: {
    bool Mut = R.u8() != 0;
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    auto D = makeSetData(Mut);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I) {
      Value V = readValue(R, Ctx, Depth + 1);
      if (Mut)
        D->Mutable.insert(std::move(V));
      else
        D->Persistent = D->Persistent.insert(V);
    }
    return Value::set(std::move(D));
  }
  case Value::Kind::Map: {
    bool Mut = R.u8() != 0;
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    auto D = makeMapData(Mut);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I) {
      Value K = readValue(R, Ctx, Depth + 1);
      Value V = readValue(R, Ctx, Depth + 1);
      if (Mut)
        D->Mutable[std::move(K)] = std::move(V);
      else
        D->Persistent = D->Persistent.set(K, V);
    }
    return Value::map(std::move(D));
  }
  case Value::Kind::Queue: {
    bool Mut = R.u8() != 0;
    uint32_t N;
    if (!readAggregateCount(R, Ctx, N))
      return Value::unit();
    auto D = makeQueueData(Mut);
    for (uint32_t I = 0; I != N && Ctx.Ok && !R.failed(); ++I) {
      Value V = readValue(R, Ctx, Depth + 1);
      if (Mut)
        D->Mutable.push_back(std::move(V));
      else
        D->Persistent = D->Persistent.enqueue(V);
    }
    return Value::queue(std::move(D));
  }
  }
  Ctx.fail(formatString("unknown value kind %u", Kind));
  return Value::unit();
}
